module pqgram

go 1.22
