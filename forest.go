package pqgram

import (
	"io"

	"pqgram/internal/forest"
	"pqgram/internal/store"
)

// Forest is the pq-gram index of a collection of named trees: the relation
// (treeId, pqg, cnt) of the paper plus inverted postings, supporting
// approximate lookups and incremental per-document maintenance. It is safe
// for concurrent use — the postings are sharded across lock stripes and
// each document's bag has its own lock, so lookups run in parallel with
// each other and with incremental updates of other documents. Bulk entry
// points (AddAll, LookupMany, SimilarityJoinWorkers) fan work out across a
// worker pool with results identical to the serial path.
type Forest = forest.Index

// Doc is one named document of a bulk build (Forest.AddAll, Store.AddAll).
type Doc = forest.Doc

// Match is one approximate-lookup result: a tree ID and its pq-gram
// distance to the query.
type Match = forest.Match

// Pair is one result of a similarity join: two indexed tree IDs and their
// pq-gram distance.
type Pair = forest.Pair

// PlanMode selects how Forest lookups and joins gather candidates:
// PlanAuto (the default) uses the threshold-aware pruned path when the
// distance bounds can pay for themselves, PlanExhaustive always
// accumulates full overlaps, PlanPruned forces the pruned path whenever
// it is sound, and PlanMetric answers top-k lookups (Forest.LookupTopK,
// Forest.LookupNearest) through the VP-tree metric index, building it on
// first use. Results are identical in every mode; only the work differs.
// Select with Forest.SetPlanMode.
type PlanMode = forest.PlanMode

// Query-planning modes for Forest.SetPlanMode.
const (
	PlanAuto       = forest.PlanAuto
	PlanExhaustive = forest.PlanExhaustive
	PlanPruned     = forest.PlanPruned
	PlanMetric     = forest.PlanMetric
)

// NewForest creates an empty forest index.
func NewForest(p Params) *Forest { return forest.New(p) }

// SaveForest writes the forest index to w in the checksummed binary format
// of the store package.
func SaveForest(w io.Writer, f *Forest) error { return store.Save(w, f) }

// LoadForest reads a forest index written by SaveForest.
func LoadForest(r io.Reader) (*Forest, error) { return store.Load(r) }

// SaveForestFile writes the index to a file, replacing it atomically.
func SaveForestFile(path string, f *Forest) error { return store.SaveFile(path, f) }

// LoadForestFile reads an index file written by SaveForestFile.
func LoadForestFile(path string) (*Forest, error) { return store.LoadFile(path) }

// ForestSize returns the number of bytes SaveForest would write.
func ForestSize(f *Forest) (int64, error) { return store.Size(f) }
