package fsio

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// OpKind identifies one kind of mutating filesystem operation in a trace.
type OpKind int

const (
	OpCreate   OpKind = iota // a file node came into existence at Path
	OpWrite                  // Data written to Node at Off
	OpTruncate               // Node truncated to Size
	OpSync                   // fsync of Node (a durability barrier marker)
	OpRename                 // directory entry Path atomically renamed to Path2
	OpRemove                 // directory entry Path removed
	OpDirSync                // fsync of directory Path
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpDirSync:
		return "dirsync"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// TraceOp is one recorded mutation. Writes and truncates reference file
// nodes (not paths) so that writes through a handle whose path was
// renamed or unlinked replay correctly.
type TraceOp struct {
	Kind  OpKind
	Node  int    // file node id (Create/Write/Truncate/Sync)
	Path  string // Create/Rename(old)/Remove/DirSync/Sync
	Path2 string // Rename(new)
	Off   int64  // Write
	Data  []byte // Write (a private copy; treat as read-only)
	Size  int64  // Truncate
}

// memNode is the content of one file, independent of its directory entry:
// an open handle keeps writing to its node even after the path is renamed
// over or removed, exactly like a POSIX fd.
type memNode struct {
	id   int
	data []byte
}

// MemFS is an in-memory filesystem that records every mutation since its
// creation. The trace is the ground truth of "what reached the disk, in
// what order": CrashClone materializes the state as of any prefix of it,
// optionally tearing the final write at a byte offset — a deterministic
// power-cut simulator.
//
// The model is an ordered filesystem: operations become durable in the
// order they were issued, and a power cut loses a suffix of them (plus
// the tail of one torn write). Sync operations are recorded as barrier
// markers; they never reorder anything because nothing is ever reordered.
// This makes "everything synced survives" hold by construction, while
// still exercising torn appends, partial compactions and interrupted
// renames — the failure modes the store's recovery logic must handle.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memNode
	base     map[string]*memNode // state at "boot" (trace start); CrashClone replays on top of it
	nextNode int
	nextTemp int
	open     int
	trace    []TraceOp
}

// NewMemFS creates an empty in-memory filesystem with trace recording on.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memNode), base: make(map[string]*memNode)}
}

// snapshotNodes deep-copies a file map, preserving node ids so trace ops
// recorded against those ids keep resolving after the copy.
func snapshotNodes(files map[string]*memNode) map[string]*memNode {
	byID := make(map[int]*memNode)
	out := make(map[string]*memNode, len(files))
	for name, n := range files {
		c, ok := byID[n.id]
		if !ok {
			c = &memNode{id: n.id, data: append([]byte(nil), n.data...)}
			byID[n.id] = c
		}
		out[name] = c
	}
	return out
}

// clean normalizes the path spellings the store produces ("./x" vs "x").
func clean(name string) string {
	for strings.HasPrefix(name, "./") {
		name = name[2:]
	}
	return name
}

func (m *MemFS) record(op TraceOp) { m.trace = append(m.trace, op) }

// OpenFile implements os.OpenFile flag semantics over the in-memory tree.
func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !ok:
		n = &memNode{id: m.nextNode}
		m.nextNode++
		m.files[name] = n
		m.record(TraceOp{Kind: OpCreate, Node: n.id, Path: name})
	}
	if flag&os.O_TRUNC != 0 && len(n.data) > 0 {
		n.data = n.data[:0]
		m.record(TraceOp{Kind: OpTruncate, Node: n.id})
	}
	m.open++
	f := &memFile{fs: m, node: n, name: name}
	switch flag & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR) {
	case os.O_WRONLY:
		f.writable = true
	case os.O_RDWR:
		f.readable, f.writable = true, true
	default:
		f.readable = true
	}
	f.append = flag&os.O_APPEND != 0
	return f, nil
}

// CreateTemp creates a uniquely named file; names are deterministic
// (a counter replaces the trailing "*") so crash tests are reproducible.
func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	seq := m.nextTemp
	m.nextTemp++
	m.mu.Unlock()
	name := strings.Replace(pattern, "*", fmt.Sprintf("%08d", seq), 1)
	if !strings.Contains(pattern, "*") {
		name = pattern + fmt.Sprintf("%08d", seq)
	}
	if dir != "" && dir != "." {
		name = dir + "/" + name
	}
	return m.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
}

// Rename atomically repoints newpath at oldpath's node. A node that was
// renamed over stays alive for any open handles but loses its entry.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = n
	delete(m.files, oldpath)
	m.record(TraceOp{Kind: OpRename, Path: oldpath, Path2: newpath})
	return nil
}

// Remove unlinks a file.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	m.record(TraceOp{Kind: OpRemove, Path: name})
	return nil
}

// Stat reports the current size of a file.
func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return memInfo{name: name, size: int64(len(n.data))}, nil
}

// OpenDir returns a directory barrier handle. Directories are implicit in
// MemFS (any prefix is a directory); the sync is recorded as a trace op.
func (m *MemFS) OpenDir(name string) (Dir, error) {
	return &memDir{fs: m, name: clean(name)}, nil
}

// OpenHandles returns the number of files currently open — the store's
// tests use it to prove error paths do not leak descriptors.
func (m *MemFS) OpenHandles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.open
}

// Paths returns the sorted names of all linked files.
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TraceLen returns the number of mutations recorded so far.
func (m *MemFS) TraceLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.trace)
}

// Trace returns the recorded mutations. The returned slice is a copy but
// shares Data buffers; callers must treat them as read-only.
func (m *MemFS) Trace() []TraceOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TraceOp, len(m.trace))
	copy(out, m.trace)
	return out
}

// CrashClone materializes the filesystem as it would be found after a
// power cut: starting from the state this filesystem booted with, trace
// operations [0, ops) are fully applied, and if partialBytes > 0 and
// operation `ops` is a write, its first partialBytes bytes are applied too
// (a torn write). Every later operation — including any sync the dying
// process never reached — is lost. The clone starts with a fresh trace of
// its own, so recovery runs can themselves be crash-tested (a clone of a
// clone replays the second trace on top of the first clone's boot state).
func (m *MemFS) CrashClone(ops int, partialBytes int) *MemFS {
	m.mu.Lock()
	trace := m.trace
	if ops > len(trace) {
		ops = len(trace)
	}
	prefix := trace[:ops]
	var torn *TraceOp
	if partialBytes > 0 && ops < len(trace) && trace[ops].Kind == OpWrite {
		t := trace[ops]
		torn = &t
	}
	base := snapshotNodes(m.base)
	m.mu.Unlock()

	clone := NewMemFS()
	clone.files = base
	nodes := make(map[int]*memNode)
	for _, n := range base {
		nodes[n.id] = n
		if n.id >= clone.nextNode {
			clone.nextNode = n.id + 1
		}
	}
	apply := func(op TraceOp, limit int) {
		switch op.Kind {
		case OpCreate:
			n := &memNode{id: op.Node}
			nodes[op.Node] = n
			clone.files[op.Path] = n
			if op.Node >= clone.nextNode {
				clone.nextNode = op.Node + 1
			}
		case OpWrite:
			n := nodes[op.Node]
			if n == nil {
				return
			}
			data := op.Data
			if limit >= 0 && limit < len(data) {
				data = data[:limit]
			}
			end := op.Off + int64(len(data))
			if int64(len(n.data)) < end {
				n.data = append(n.data, make([]byte, end-int64(len(n.data)))...)
			}
			copy(n.data[op.Off:end], data)
		case OpTruncate:
			n := nodes[op.Node]
			if n == nil {
				return
			}
			if op.Size < int64(len(n.data)) {
				n.data = n.data[:op.Size]
			} else {
				n.data = append(n.data, make([]byte, op.Size-int64(len(n.data)))...)
			}
		case OpRename:
			if n, ok := clone.files[op.Path]; ok {
				clone.files[op.Path2] = n
				delete(clone.files, op.Path)
			}
		case OpRemove:
			delete(clone.files, op.Path)
		case OpSync, OpDirSync:
			// Barriers carry no state in the ordered model.
		}
	}
	for _, op := range prefix {
		apply(op, -1)
	}
	if torn != nil {
		apply(*torn, partialBytes)
	}
	// The clone's own history starts now; the replayed ops are not part
	// of its trace (they happened before "boot"). Its boot state is the
	// materialized one, so a second-level CrashClone starts from here.
	clone.trace = nil
	clone.base = snapshotNodes(clone.files)
	clone.nextTemp = m.nextTemp
	return clone
}

// --- file and dir handles -------------------------------------------------

type memFile struct {
	fs       *MemFS
	node     *memNode
	name     string
	pos      int64
	readable bool
	writable bool
	append   bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.readable {
		return 0, &os.PathError{Op: "read", Path: f.name, Err: os.ErrPermission}
	}
	if f.pos >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrPermission}
	}
	if f.append {
		f.pos = int64(len(f.node.data))
	}
	end := f.pos + int64(len(p))
	if int64(len(f.node.data)) < end {
		f.node.data = append(f.node.data, make([]byte, end-int64(len(f.node.data)))...)
	}
	copy(f.node.data[f.pos:end], p)
	f.fs.record(TraceOp{Kind: OpWrite, Node: f.node.id, Off: f.pos, Data: append([]byte(nil), p...)})
	f.pos = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.node.data))
	default:
		return 0, fmt.Errorf("fsio: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("fsio: negative seek")
	}
	f.pos = base + offset
	return f.pos, nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if !f.writable {
		return &os.PathError{Op: "truncate", Path: f.name, Err: os.ErrPermission}
	}
	if size < int64(len(f.node.data)) {
		f.node.data = f.node.data[:size]
	} else {
		f.node.data = append(f.node.data, make([]byte, size-int64(len(f.node.data)))...)
	}
	f.fs.record(TraceOp{Kind: OpTruncate, Node: f.node.id, Size: size})
	return nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.fs.record(TraceOp{Kind: OpSync, Node: f.node.id, Path: f.name})
	return nil
}

func (f *memFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return nil, os.ErrClosed
	}
	return memInfo{name: f.name, size: int64(len(f.node.data))}, nil
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	f.fs.open--
	return nil
}

type memDir struct {
	fs   *MemFS
	name string
}

func (d *memDir) Sync() error {
	d.fs.mu.Lock()
	defer d.fs.mu.Unlock()
	d.fs.record(TraceOp{Kind: OpDirSync, Path: d.name})
	return nil
}

func (d *memDir) Close() error { return nil }

type memInfo struct {
	name string
	size int64
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() os.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }
