package fsio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

func TestMemFSBasics(t *testing.T) {
	m := NewMemFS()
	if _, err := m.OpenFile("missing", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f, err := m.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(f)
	if err != nil || string(buf) != "world" {
		t.Fatalf("read back %q, %v", buf, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	fi, err := m.Stat("a")
	if err != nil || fi.Size() != 5 {
		t.Fatalf("stat after truncate: %v, %v", fi, err)
	}
	if _, err := m.OpenFile("a", os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644); !errors.Is(err, os.ErrExist) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	// O_TRUNC empties the file.
	g, err := m.OpenFile("a", os.O_WRONLY|os.O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := g.Stat(); fi.Size() != 0 {
		t.Fatalf("O_TRUNC left %d bytes", fi.Size())
	}
	// Write through a read-only handle is refused.
	r, _ := Open(m, "a")
	if _, err := r.Write([]byte("x")); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("write via O_RDONLY: %v", err)
	}
	for _, h := range []File{f, g, r} {
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if m.OpenHandles() != 0 {
		t.Fatalf("%d handles leaked", m.OpenHandles())
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestMemFSRenameKeepsOrphanNode(t *testing.T) {
	m := NewMemFS()
	WriteFile(m, "old", []byte("victim"), 0o644)
	h, err := m.OpenFile("old", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	WriteFile(m, "new", []byte("replacement"), 0o644)
	if err := m.Rename("new", "old"); err != nil {
		t.Fatal(err)
	}
	// The handle still points at the orphaned node, like a POSIX fd.
	if _, err := h.Write([]byte("X")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(m, "old")
	if err != nil || string(got) != "replacement" {
		t.Fatalf("renamed content = %q, %v", got, err)
	}
	if _, err := m.Rename("gone", "x"), m.Remove("gone"); err == nil {
		t.Fatal("remove of missing file accepted")
	}
}

func TestMemFSCreateTempUnique(t *testing.T) {
	m := NewMemFS()
	a, err := m.CreateTemp(".", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateTemp(".", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == b.Name() {
		t.Fatalf("CreateTemp reused name %q", a.Name())
	}
	a.Close()
	b.Close()
}

// TestCrashCloneBoundaries replays a tiny atomic-replace protocol and
// checks that every cut yields either the old or the new content.
func TestCrashCloneBoundaries(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "f", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp, err := m.CreateTemp(".", ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("newer"))
	tmp.Sync()
	tmp.Close()
	if err := m.Rename(tmp.Name(), "f"); err != nil {
		t.Fatal(err)
	}
	SyncDir(m, ".")

	sawOld, sawNew := false, false
	for cut := 0; cut <= m.TraceLen(); cut++ {
		c := m.CrashClone(cut, 0)
		got, err := ReadFile(c, "f")
		if errors.Is(err, os.ErrNotExist) {
			continue // cut before the file was first created
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		switch string(got) {
		case "", "old": // before or during the initial WriteFile
			if sawNew {
				t.Fatalf("cut %d: state went backwards to %q", cut, got)
			}
			sawOld = sawOld || string(got) == "old"
		case "newer":
			sawNew = true
		default:
			t.Fatalf("cut %d: hybrid content %q", cut, got)
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("coverage hole: old=%v new=%v", sawOld, sawNew)
	}
}

func TestCrashCloneTornWrite(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("j", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("aaaa"))
	f.Write([]byte("bbbb"))
	f.Close()
	trace := m.Trace()
	// Find the second write and tear it after 2 bytes.
	var writeIdx []int
	for i, op := range trace {
		if op.Kind == OpWrite {
			writeIdx = append(writeIdx, i)
		}
	}
	if len(writeIdx) != 2 {
		t.Fatalf("expected 2 writes, trace: %v", trace)
	}
	c := m.CrashClone(writeIdx[1], 2)
	got, err := ReadFile(c, "j")
	if err != nil || string(got) != "aaaabb" {
		t.Fatalf("torn state = %q, %v", got, err)
	}
	// Partial bytes on a non-write op are ignored (ops are atomic).
	c2 := m.CrashClone(len(trace), 3)
	if got, _ := ReadFile(c2, "j"); string(got) != "aaaabbbb" {
		t.Fatalf("full state = %q", got)
	}
}

func TestFaultFSFailsNthOp(t *testing.T) {
	mem := NewMemFS()
	ff := NewFaultFS(mem)
	f, err := ff.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff.FailOp(2, ErrNoSpace)
	if _, err := f.Write([]byte("ok")); err != nil { // op 2 (1 after arming)
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); !errors.Is(err, ErrNoSpace) { // op 3
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := f.Write([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	if ff.Injected() != 1 {
		t.Fatalf("injected = %d", ff.Injected())
	}
	got, _ := ReadFile(mem, "x")
	if string(got) != "okfine" {
		t.Fatalf("content = %q", got)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	mem := NewMemFS()
	ff := NewFaultFS(mem)
	f, err := ff.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff.ShortWrite(1, 3, ErrIO)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrIO) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	got, _ := ReadFile(mem, "x")
	if string(got) != "abc" {
		t.Fatalf("content = %q", got)
	}
}

// TestOSPassthrough exercises the production implementation against a real
// temp dir: same protocol as the MemFS tests, so the two stay in sync.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(OS, dir+"/f", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp, err := OS.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(tmp.Name(), dir+"/f"); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(OS, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(OS, dir+"/f")
	if err != nil || !bytes.Equal(got, []byte("newer")) {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := OS.Stat(dir + "/f"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(dir + "/f"); err != nil {
		t.Fatal(err)
	}
}
