// Package fsio abstracts the filesystem operations the persistence layer
// depends on, so durability code can be exercised against deterministic
// failure models instead of only the happy path the real OS provides.
//
// Two implementations ship with the package:
//
//   - OS: a passthrough to the os package — what production code uses.
//   - MemFS: an in-memory filesystem that records a byte-exact trace of
//     every mutation and can materialize the state the disk would hold if
//     power were cut at any point of that trace (including mid-write, for
//     torn appends). FaultFS wraps any FS and injects deterministic
//     errors: fail the Nth operation with ENOSPC/EIO, or turn a write
//     into a short write.
//
// The interface is intentionally small: exactly the operations the store
// needs (sequential and positioned file I/O, atomic rename, fsync of
// files and directories). Crash-consistency arguments are easier to audit
// when the set of primitives is this narrow.
package fsio

import (
	"io"
	"os"
)

// FS is the filesystem surface the persistence layer is written against.
type FS interface {
	// OpenFile opens name with os.OpenFile flag semantics (O_RDONLY,
	// O_RDWR, O_CREATE, O_TRUNC, O_EXCL, O_APPEND).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new unique file in dir, replacing the last "*"
	// of pattern, as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports file metadata.
	Stat(name string) (os.FileInfo, error)
	// OpenDir opens a directory handle so its entries can be fsynced —
	// required after rename for the new directory entry to be durable.
	OpenDir(name string) (Dir, error)
}

// File is an open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
}

// Dir is an open directory handle, used only to fsync the directory.
type Dir interface {
	Sync() error
	Close() error
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// ReadFile reads the whole file, like os.ReadFile. A Close error is
// reported even after a successful read: on the durability paths this
// package serves, a failing handle is a signal the caller must see.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// WriteFile replaces name with data, like os.WriteFile.
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyncDir fsyncs the directory entry list of dir, making renames and
// creates within it durable. Filesystems that do not support syncing
// directories surface their own error; callers on the crash-consistency
// path must not ignore it.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenDir(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
