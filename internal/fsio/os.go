package fsio

import "os"

// OS is the production filesystem: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	//pqlint:allow fsiocheck osFS is the one legitimate os passthrough
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	//pqlint:allow fsiocheck osFS is the one legitimate os passthrough
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) } //pqlint:allow fsiocheck osFS is the one legitimate os passthrough
func (osFS) Remove(name string) error             { return os.Remove(name) }             //pqlint:allow fsiocheck osFS is the one legitimate os passthrough
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

func (osFS) OpenDir(name string) (Dir, error) {
	d, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osDir{d}, nil
}

// osDir fsyncs a directory. On filesystems where fsync on a directory is
// unsupported the kernel reports EINVAL/ENOTSUP; that error is returned
// as-is so the caller can decide (the store treats it as best-effort).
type osDir struct{ f *os.File }

func (d osDir) Sync() error  { return d.f.Sync() }
func (d osDir) Close() error { return d.f.Close() }
