package fsio

import (
	"os"
	"sync"
	"syscall"
)

// Convenient aliases for the errors a disk actually produces.
var (
	ErrNoSpace = syscall.ENOSPC
	ErrIO      = syscall.EIO
)

// FaultFS wraps another FS and injects deterministic failures. Mutating
// operations (create, write, truncate, sync, rename, remove, dir sync)
// are numbered 1, 2, 3, … in issue order; a rule can fail the Nth one
// with a chosen error, or turn the Nth write into a short write that
// persists only a prefix of its bytes before failing. Read-only
// operations are never failed — the point is to break the write path and
// prove recovery, not to break reading the evidence.
//
// FaultFS is safe for concurrent use if the inner FS is.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	ops      int64 // mutating operations issued so far
	failOp   int64 // fail the op with this number (0 = never)
	failErr  error
	shortOp  int64 // short-write the write with this number (0 = never)
	shortLen int   // bytes that survive of the short write
	shortErr error
	injected int64 // faults actually injected
}

// NewFaultFS wraps inner with no rules armed.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// FailOp arms a rule: the n-th mutating operation from now on fails with
// err (counting continues from the current position; call Reset first for
// absolute numbering).
func (f *FaultFS) FailOp(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOp, f.failErr = f.ops+n, err
}

// ShortWrite arms a rule: the n-th mutating operation from now on, if it
// is a write, persists only keep bytes and then fails with err.
func (f *FaultFS) ShortWrite(n int64, keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortOp, f.shortLen, f.shortErr = f.ops+n, keep, err
}

// Reset disarms all rules and restarts the operation counter.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops, f.failOp, f.shortOp, f.injected = 0, 0, 0, 0
}

// Ops returns the number of mutating operations issued so far.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns how many faults were actually delivered.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// step numbers one mutating op and decides its fate: nil error and
// keep < 0 means proceed normally; keep >= 0 means short-write that many
// bytes then return err.
func (f *FaultFS) step() (keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	switch f.ops {
	case f.failOp:
		f.injected++
		return -1, f.failErr
	case f.shortOp:
		f.injected++
		return f.shortLen, f.shortErr
	}
	return -1, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_RDWR) != 0 {
		if _, err := f.step(); err != nil {
			return nil, err
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.step(); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

func (f *FaultFS) OpenDir(name string) (Dir, error) {
	d, err := f.inner.OpenDir(name)
	if err != nil {
		return nil, err
	}
	return &faultDir{Dir: d, fs: f}, nil
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	keep, err := f.fs.step()
	if err != nil {
		if keep < 0 {
			return 0, err
		}
		if keep > len(p) {
			keep = len(p)
		}
		n, werr := f.File.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.step(); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.step(); err != nil {
		return err
	}
	return f.File.Sync()
}

type faultDir struct {
	Dir
	fs *FaultFS
}

func (d *faultDir) Sync() error {
	if _, err := d.fs.step(); err != nil {
		return err
	}
	return d.Dir.Sync()
}
