// Package serve is the production serving tier over a pq-gram forest
// index: the layer that turns the library into a service built for heavy
// concurrent traffic. It composes three mechanisms in front of the
// planner, in request order:
//
//  1. Admission control (admission.go) — a bounded in-flight semaphore
//     plus a bounded wait queue, with latency-driven backpressure: when
//     the windowed p95 of serve latency crosses the configured budget,
//     new requests are shed immediately (HTTP 429 + Retry-After) instead
//     of queueing behind work the service cannot absorb.
//  2. Result cache (cache.go) — an LRU of lookup/top-k results keyed on
//     (query fingerprint, τ or k, plan mode), validated against the
//     forest's mutation epoch: every incremental Add/Remove/Update
//     advances the epoch, so an entry computed under an older epoch is
//     strictly invalid and is evicted on the next probe. Hits verify the
//     full query bag, so a fingerprint collision degrades to a miss,
//     never a wrong answer.
//  3. Request batching (batch.go) — concurrent lookups with the same key
//     and the same epoch coalesce into a single shared postings
//     traversal; N-1 of them wait for the leader and share its result.
//     A flight is keyed on the epoch it started under, so a request that
//     arrives after a mutation never joins a pre-mutation traversal —
//     read-your-writes holds for every client.
//
// The invariant carried by the differential tests (diff_test.go): for any
// sequential script of mutations and lookups, responses with the cache
// and batcher enabled are byte-identical to responses with them disabled.
// Caching is an optimization, never a semantic.
//
// http.go adds the full HTTP surface (documents, lookups, explain,
// debug endpoints); examples/server and cmd/pqserve are thin wrappers
// over it, so the demo and the production binary cannot drift.
package serve

import (
	"errors"
	"log/slog"
	"sync"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// ErrOverloaded is returned when admission control sheds a request: the
// in-flight queue is full or the latency budget is exceeded. HTTP maps it
// to 429 Too Many Requests with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded")

// Config tunes the serving tier. The zero value disables every
// mechanism: no cache, no admission limits, unbounded bodies — the
// behavior of calling the forest directly.
type Config struct {
	// CacheSize is the maximum number of cached lookup/top-k results.
	// 0 disables the result cache.
	CacheSize int

	// MaxInFlight bounds the lookups executing concurrently. 0 means
	// unlimited (no admission control by count).
	MaxInFlight int

	// MaxQueue bounds how many requests may wait for an in-flight slot
	// beyond MaxInFlight before new arrivals are shed. Only meaningful
	// with MaxInFlight > 0.
	MaxQueue int

	// P95Budget sheds new requests while the windowed p95 of serve
	// latency exceeds it. 0 disables latency-driven shedding.
	P95Budget time.Duration

	// BudgetWindow is the rotation period of the latency window backing
	// the p95 estimate. Defaults to 1s.
	BudgetWindow time.Duration

	// RetryAfter is the client backoff hint attached to shed responses.
	// Defaults to 1s.
	RetryAfter time.Duration

	// MaxBodyBytes bounds HTTP request bodies. Defaults to 8 MiB.
	MaxBodyBytes int64

	// Logger receives one structured line per HTTP request. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Result is one answered query plus how it was answered — the
// serving-tier visibility the load generator and the tests key on.
type Result struct {
	// Matches is the answer. It may be shared with other requests and
	// with the cache; treat it as read-only.
	Matches []forest.Match

	// Cached reports that the answer came from the result cache.
	Cached bool

	// Shared reports that the request joined an in-flight traversal
	// started by a concurrent identical request.
	Shared bool

	// Epoch is the forest mutation epoch the answer is known valid for.
	Epoch uint64
}

// Backend is the durable mutation sink of a store-backed server. Both
// persistent store kinds implement it: the monolithic snapshot+journal
// *store.Store and the segmented *store.Segmented (LSM-style, for
// collections larger than RAM). Queries never go through the backend —
// the forest answers them, merging its storage tier transparently.
//
// Pass a nil Backend (not a typed nil pointer) for a purely in-memory
// server.
type Backend interface {
	Put(id string, t *tree.Tree) (int, error)
	Remove(id string) error
	Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error)
}

// Server is the serving tier over one forest (optionally backed by a
// journaled store). It is safe for concurrent use. Create it with New;
// the zero value is not usable.
type Server struct {
	forest *forest.Index
	store  Backend
	cfg    Config
	col    *obs.Collector

	// storeMu serializes store mutations: the forest is internally
	// synchronized, but the journal is a single append stream.
	storeMu sync.Mutex

	cache *resultCache // nil when disabled
	batch *batcher
	adm   *admission
	m     serveMetrics

	httpState

	// hookFlightStart, when set, runs inside every batch-flight leader
	// before the forest traversal. Tests use it to hold a traversal open
	// deterministically; nil in production.
	hookFlightStart func()
}

// serveMetrics is the serving tier's obs wiring. The collector is always
// non-nil (New substitutes a private one), so the handles are too; they
// are fixed at New, so components hold the struct by value.
type serveMetrics struct {
	requests        *obs.Counter   // serve_requests
	cacheHits       *obs.Counter   // serve_cache_hit
	cacheMisses     *obs.Counter   // serve_cache_miss
	cacheInvalidate *obs.Counter   // serve_cache_invalidate (stale-epoch evictions)
	shed            *obs.Counter   // serve_shed
	batchFlights    *obs.Counter   // serve_batch_flights (traversals executed)
	batchJoined     *obs.Counter   // serve_batch_joined (requests that shared one)
	batchSize       *obs.Histogram // serve_batch_size (requests per traversal)
	lookupNS        *obs.Histogram // serve_lookup_ns (end-to-end, incl. cache hits)
	inflight        *obs.Gauge     // serve_inflight
	queueDepth      *obs.Gauge     // serve_queue_depth
}

// New builds a serving tier over f. If st is non-nil, mutations are
// journaled through it (st.Forest() must be f). A nil collector is
// replaced by a private one, so instrumentation is always on; pass the
// collector you scrape to see it.
func New(f *forest.Index, st Backend, cfg Config, col *obs.Collector) *Server {
	if col == nil {
		col = obs.NewCollector()
	}
	cfg = cfg.withDefaults()
	s := &Server{forest: f, store: st, cfg: cfg, col: col}
	s.m = serveMetrics{
		requests:        col.Counter("serve_requests"),
		cacheHits:       col.Counter("serve_cache_hit"),
		cacheMisses:     col.Counter("serve_cache_miss"),
		cacheInvalidate: col.Counter("serve_cache_invalidate"),
		shed:            col.Counter("serve_shed"),
		batchFlights:    col.Counter("serve_batch_flights"),
		batchJoined:     col.Counter("serve_batch_joined"),
		batchSize:       col.Histogram("serve_batch_size"),
		lookupNS:        col.Histogram("serve_lookup_ns"),
		inflight:        col.Gauge("serve_inflight"),
		queueDepth:      col.Gauge("serve_queue_depth"),
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize, s.m)
	}
	s.batch = newBatcher(s.m)
	s.adm = newAdmission(cfg, s.m)
	col.RegisterFunc("serve_admission", s.adm.stats)
	s.initHTTP()
	return s
}

// Forest returns the index the server answers from.
func (s *Server) Forest() *forest.Index { return s.forest }

// Collector returns the collector the serving tier reports into.
func (s *Server) Collector() *obs.Collector { return s.col }

// query ops. Threshold lookups and top-k lookups are distinct cache
// populations even for equal τ/k values.
const (
	opLookup = iota // threshold lookup: tau is significant
	opTopK          // top-k lookup: k is significant
)

// Lookup answers a threshold lookup through the serving tier: admission
// control, then the result cache, then a (possibly shared) postings
// traversal. The query index must not be mutated while the call runs.
func (s *Server) Lookup(q profile.Index, tau float64) (Result, error) {
	return s.query(opLookup, q, tau, 0)
}

// TopK answers a top-k lookup through the serving tier; see Lookup.
func (s *Server) TopK(q profile.Index, k int) (Result, error) {
	if k <= 0 {
		return Result{Epoch: s.forest.Epoch()}, nil
	}
	return s.query(opTopK, q, 0, k)
}

func (s *Server) query(op uint8, q profile.Index, tau float64, k int) (Result, error) {
	s.m.requests.Inc()
	sp := s.col.StartTrace("serve.query")
	defer sp.Finish()
	sp.SetAttr("op", int64(op))
	if err := s.adm.acquire(); err != nil {
		s.m.shed.Inc()
		sp.SetAttr("shed", 1)
		return Result{}, err
	}
	defer s.adm.release()
	t0 := time.Now()

	key := queryKey{op: op, plan: s.forest.PlanMode(), tau: tau, k: k, fp: fingerprintIndex(q)}
	epoch := s.forest.Epoch()
	if s.cache != nil {
		if out, ok := s.cache.get(key, q, epoch); ok {
			s.m.cacheHits.Inc()
			sp.SetAttr("cache_hit", 1)
			sp.SetAttr("matches", int64(len(out)))
			s.finishTimed(t0)
			return Result{Matches: out, Cached: true, Epoch: epoch}, nil
		}
		s.m.cacheMisses.Inc()
	}

	// Coalesce with concurrent identical requests of the same epoch; the
	// flight leader runs the traversal and re-validates the epoch around
	// it before publishing to the cache.
	out, shared := s.batch.do(key, epoch, func() []forest.Match {
		if s.hookFlightStart != nil {
			s.hookFlightStart()
		}
		e1 := s.forest.Epoch()
		var ms []forest.Match
		if op == opLookup {
			ms = s.forest.LookupIndex(q, tau)
		} else {
			ms = s.forest.LookupIndexTopK(q, k)
		}
		// Publish only results provably computed inside one epoch: a
		// bump during the traversal means a mutation may have completed
		// mid-scan, and such a result must not outlive this response.
		if s.cache != nil && e1 == epoch && s.forest.Epoch() == e1 {
			s.cache.put(key, q, ms, e1)
		}
		return ms
	})
	sp.SetAttr("shared", boolAttr(shared))
	sp.SetAttr("matches", int64(len(out)))
	s.finishTimed(t0)
	return Result{Matches: out, Shared: shared, Epoch: epoch}, nil
}

// finishTimed records one served request's latency into both the
// cumulative histogram and the admission window driving backpressure.
func (s *Server) finishTimed(t0 time.Time) {
	d := time.Since(t0)
	s.m.lookupNS.Observe(d.Nanoseconds())
	s.adm.observe(d)
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- mutations --------------------------------------------------------

// Put indexes t under id, replacing any existing document, journaled when
// the server is store-backed. Every mutation advances the forest epoch,
// strictly invalidating all cached results.
func (s *Server) Put(id string, t *tree.Tree) (grams int, err error) {
	if s.store != nil {
		s.storeMu.Lock()
		defer s.storeMu.Unlock()
		return s.store.Put(id, t)
	}
	return s.forest.Put(id, t), nil
}

// Remove drops a document; see Put for journaling and invalidation.
func (s *Server) Remove(id string) error {
	if s.store != nil {
		s.storeMu.Lock()
		defer s.storeMu.Unlock()
		return s.store.Remove(id)
	}
	return s.forest.Remove(id)
}

// Update incrementally maintains one document's index from an edit log;
// see Put for journaling and invalidation.
func (s *Server) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	if s.store != nil {
		s.storeMu.Lock()
		defer s.storeMu.Unlock()
		return s.store.Update(id, tn, log)
	}
	return s.forest.Update(id, tn, log)
}
