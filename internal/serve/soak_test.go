// The soak battery: the batcher and the admission queue under a worker
// storm with a concurrent writer. The properties proven here are the
// ones a latency histogram cannot show:
//
//   - No dropped responses: every issued request returns exactly once,
//     with either an answer or ErrOverloaded — never both, never
//     neither — and the serving-tier counters account for every one of
//     them exactly (hits + joined flights + led flights = successes).
//   - Monotone epoch invalidation: the epoch attached to successive
//     responses observed by any one client never moves backwards, even
//     while a writer is continuously mutating the index.
//   - Quiescent convergence: once the writer stops, the tier's answer to
//     a fresh query is byte-equal to the forest's own, and a repeat is a
//     cache hit — the storm leaves no stale state behind.
//
// Run under -race by `make test`; serve_test.go covers the same
// mechanisms deterministically, diff_test.go covers semantic
// invisibility.

package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pqgram/internal/gen"
	"pqgram/internal/profile"
)

// TestSoakStormWithWriter is the satellite race/soak test: GOMAXPROCS-
// scaled readers hammer a small query set (maximizing batcher collisions)
// through a deliberately narrow admission queue while one writer
// continuously Puts, Removes and incrementally Updates documents.
func TestSoakStormWithWriter(t *testing.T) {
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	const (
		opsPerWorker = 150
		queryPool    = 6
		mutations    = 200
	)
	// MaxInFlight below the worker count and a finite queue so both the
	// semaphore wait path and the shed path are exercised for real.
	s, docs := newTestServer(t, Config{
		CacheSize:   32,
		MaxInFlight: workers / 2,
		MaxQueue:    workers,
	}, queryPool)

	queries := make([]profile.Index, queryPool)
	for i := range queries {
		queries[i] = queryOf(t, s, docs[i])
	}

	// The writer: a mutation storm over its own document set, so reader
	// queries and writer mutations contend on the postings but document
	// removal cannot starve the query pool.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(99))
		working := gen.DBLP(99, 100)
		for i := 0; i < mutations; i++ {
			// Each triple of iterations puts, incrementally updates, then
			// removes the same document, so every Update targets an id the
			// preceding Put just indexed.
			id := fmt.Sprintf("w-doc-%d", (i/3)%4)
			switch i % 3 {
			case 0:
				if _, err := s.Put(id, working); err != nil {
					t.Errorf("writer put: %v", err)
					return
				}
			case 1:
				tn, log, err := gen.Perturb(rng, working, 2, gen.XMLSafeMix)
				if err != nil {
					t.Errorf("writer perturb: %v", err)
					return
				}
				if _, err := s.Update(id, tn, log); err != nil {
					t.Errorf("writer update: %v", err)
					return
				}
				working = tn
			case 2:
				// Removing an id a previous round already removed fails
				// with "unknown tree" — the writer's only legal error, and
				// irrelevant to the properties under test.
				_ = s.Remove(id)
			}
		}
	}()

	var (
		wg        sync.WaitGroup
		successes atomic.Int64
		sheds     atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < opsPerWorker; i++ {
				q := queries[(w+i)%queryPool]
				var res Result
				var err error
				if i%5 == 4 {
					res, err = s.TopK(q, 3)
				} else {
					res, err = s.Lookup(q, 0.6)
				}
				switch {
				case err == nil:
					successes.Add(1)
					// Monotone epoch invalidation: a response handed to
					// this client must never be for an older epoch than
					// one it already saw.
					if res.Epoch < lastEpoch {
						t.Errorf("worker %d: epoch moved backwards %d -> %d", w, lastEpoch, res.Epoch)
						return
					}
					lastEpoch = res.Epoch
				case errors.Is(err, ErrOverloaded):
					sheds.Add(1)
				default:
					t.Errorf("worker %d op %d: unexpected error %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-writerDone
	if t.Failed() {
		return
	}

	// No dropped responses: every issued request is accounted for ...
	issued := int64(workers * opsPerWorker)
	if got := successes.Load() + sheds.Load(); got != issued {
		t.Fatalf("issued %d requests, %d responded (%d ok + %d shed)",
			issued, got, successes.Load(), sheds.Load())
	}
	if got := s.m.requests.Load(); got != issued {
		t.Fatalf("serve_requests = %d, want %d", got, issued)
	}
	if got := s.m.shed.Load(); got != sheds.Load() {
		t.Fatalf("serve_shed = %d, but %d callers saw ErrOverloaded", got, sheds.Load())
	}
	// ... and every success came from exactly one tier: a cache hit, a
	// joined flight, or a flight this request led. A request lost inside
	// the batcher (a flight that never resolved, a joiner handed nothing)
	// would break this balance.
	hits, joined, flights := s.m.cacheHits.Load(), s.m.batchJoined.Load(), s.m.batchFlights.Load()
	if hits+joined+flights != successes.Load() {
		t.Fatalf("tier accounting: hits %d + joined %d + flights %d != %d successes",
			hits, joined, flights, successes.Load())
	}
	// The storm is over: nothing in flight, nothing queued, no open flights.
	if got := s.m.inflight.Load(); got != 0 {
		t.Fatalf("serve_inflight = %d after the storm, want 0", got)
	}
	if got := s.m.queueDepth.Load(); got != 0 {
		t.Fatalf("serve_queue_depth = %d after the storm, want 0", got)
	}
	s.batch.mu.Lock()
	open := len(s.batch.flights)
	s.batch.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d flights still open after the storm", open)
	}

	// Quiescent convergence: with the writer stopped, the tier must agree
	// with the forest exactly, and a repeat must hit the cache.
	q := queries[0]
	want := s.forest.LookupIndex(q, 0.6)
	r1, err := s.Lookup(q, 0.6)
	if err != nil {
		t.Fatalf("post-storm lookup: %v", err)
	}
	if !reflect.DeepEqual(r1.Matches, want) {
		t.Fatalf("post-storm answer diverged from the forest:\nserve:  %v\nforest: %v", r1.Matches, want)
	}
	r2, err := s.Lookup(q, 0.6)
	if err != nil || !r2.Cached {
		t.Fatalf("post-storm repeat: cached=%v err=%v, want hit", r2.Cached, err)
	}
	if !reflect.DeepEqual(r2.Matches, want) {
		t.Fatal("post-storm cache hit diverged from the forest")
	}
	if err := s.forest.SelfCheck(); err != nil {
		t.Fatalf("post-storm selfcheck: %v", err)
	}
}
