// The result cache of the serving tier: a strict-invalidation LRU over
// lookup and top-k answers.
//
// Keys are (op, plan mode, τ or k, query fingerprint); the fingerprint is
// an order-independent 64-bit hash of the query's (tuple, count) multiset.
// Entries additionally store a clone of the full query bag and the forest
// epoch the answer was computed under. A probe hits only when the epoch
// still matches (otherwise the entry is evicted and counted as an
// invalidation) and the stored bag equals the probe's bag exactly — a
// fingerprint collision therefore costs a miss, never a wrong answer.

package serve

import (
	"container/list"
	"sync"

	"pqgram/internal/forest"
	"pqgram/internal/profile"
)

// queryKey identifies one cacheable computation. τ and k are disjoint by
// op (a threshold lookup zeroes k and vice versa), and the plan mode is
// part of the key because the planner is allowed to answer the same query
// with different work — results are identical, but a mode switch must not
// serve an entry recorded under bounds the operator just turned off.
type queryKey struct {
	op   uint8
	plan forest.PlanMode
	tau  float64
	k    int
	fp   uint64
}

// fingerprintIndex hashes a query bag order-independently: each
// (tuple, count) pair is mixed to a pseudo-random word, and the words are
// combined with commutative operations (sum and xor) so Go's randomized
// map iteration cannot influence the result. Collisions are tolerated —
// the cache verifies the full bag on every hit.
func fingerprintIndex(q profile.Index) uint64 {
	var sum, x uint64
	for lt, c := range q {
		v := mix64(uint64(lt) ^ mix64(uint64(c)))
		sum += v
		x ^= v
	}
	return mix64(sum ^ (x<<32 | x>>32) ^ uint64(len(q)))
}

// mix64 is the SplitMix64 finalizer: a cheap full-avalanche mixer.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// cacheEntry is one cached answer. out is shared with every response that
// hits the entry; it is never mutated after insertion.
type cacheEntry struct {
	key   queryKey
	q     profile.Index  // guarded by resultCache.mu; cloned query bag, verified on every hit
	out   []forest.Match // guarded by resultCache.mu
	epoch uint64         // guarded by resultCache.mu
	elem  *list.Element  // guarded by resultCache.mu
}

// resultCache is a mutex-guarded LRU. The lock is held only for map and
// list surgery plus the bag-equality check — never across a forest
// traversal — so it does not serialize lookups.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[queryKey]*cacheEntry // guarded by mu
	lru     list.List                // guarded by mu; front = most recently used; values are *cacheEntry
	m       serveMetrics             // by value: the handles are fixed at New
}

func newResultCache(max int, m serveMetrics) *resultCache {
	return &resultCache{max: max, entries: make(map[queryKey]*cacheEntry, max), m: m}
}

// get returns the cached answer for key if it was computed under exactly
// the given epoch and its stored query bag equals q. A stale-epoch entry
// is evicted eagerly and counted as an invalidation.
func (c *resultCache) get(key queryKey, q profile.Index, epoch uint64) ([]forest.Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil, false
	}
	if e.epoch != epoch {
		// Strict invalidation: a mutation completed since this entry was
		// computed, so it must never be served again.
		c.removeLocked(e)
		c.m.cacheInvalidate.Inc()
		return nil, false
	}
	if !e.q.Equal(q) {
		// Fingerprint collision: a different query landed on the same
		// key. Treated as a miss; the subsequent put replaces the entry.
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.out, true
}

// put records an answer computed under the given epoch, evicting the
// least-recently-used entries past the capacity. The query bag is cloned;
// the result slice is stored as-is and must be treated as immutable.
func (c *resultCache) put(key queryKey, q profile.Index, out []forest.Match, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.q = q.Clone()
		e.out = out
		e.epoch = epoch
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{key: key, q: q.Clone(), out: out, epoch: epoch}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*cacheEntry))
	}
}

//pqlint:locked c.mu
func (c *resultCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
}

// len returns the number of live entries (tests and the stats endpoint).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
