// Admission control: a bounded in-flight semaphore with a bounded wait
// queue, plus latency-driven backpressure.
//
// The backpressure signal is the p95 of serve latency over a short
// rotating window of internal/obs histograms: the admission layer writes
// every served request's latency into the current window, rotates the
// window every Config.BudgetWindow (allocating a fresh histogram — they
// are a few hundred bytes), and sheds new arrivals while the most recent
// populated window's p95 exceeds Config.P95Budget. Rotation means a
// transient overload stops shedding one window after the latency
// recovers, unlike a cumulative histogram which would hold the p95 high
// forever.

package serve

import (
	"sync/atomic"
	"time"

	"pqgram/internal/obs"
)

// minWindowSamples is the fewest samples a window must hold before its
// p95 is trusted to drive shedding; below it the estimate is noise.
const minWindowSamples = 16

// latencyWindow is one rotation of the backpressure signal: the histogram
// being written (cur) and the last completed one (prev).
type latencyWindow struct {
	start time.Time
	cur   *obs.Histogram
	prev  *obs.Histogram
}

type admission struct {
	sem       chan struct{} // nil = unlimited in-flight
	queued    atomic.Int64
	maxQueue  int64
	budgetNS  int64
	windowDur time.Duration
	win       atomic.Pointer[latencyWindow]
	m         serveMetrics // by value: the handles are fixed at New
}

func newAdmission(cfg Config, m serveMetrics) *admission {
	a := &admission{
		maxQueue:  int64(cfg.MaxQueue),
		budgetNS:  cfg.P95Budget.Nanoseconds(),
		windowDur: cfg.BudgetWindow,
		m:         m,
	}
	if cfg.MaxInFlight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	a.win.Store(&latencyWindow{start: time.Now(), cur: &obs.Histogram{}})
	return a
}

// acquire admits one request or returns ErrOverloaded. Admission is
// two-staged: the latency budget is checked first (shedding must not
// require a free slot to act), then the in-flight semaphore with its
// bounded wait queue.
func (a *admission) acquire() error {
	if a.budgetNS > 0 && a.overBudget() {
		return ErrOverloaded
	}
	if a.sem == nil {
		a.m.inflight.Add(1)
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		a.m.inflight.Add(1)
		return nil
	default:
	}
	// All slots busy: wait in the bounded queue, or shed if it is full.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return ErrOverloaded
	}
	a.m.queueDepth.Add(1)
	a.sem <- struct{}{}
	a.queued.Add(-1)
	a.m.queueDepth.Add(-1)
	a.m.inflight.Add(1)
	return nil
}

func (a *admission) release() {
	a.m.inflight.Add(-1)
	if a.sem != nil {
		<-a.sem
	}
}

// observe feeds one served request's latency into the rotating window.
func (a *admission) observe(d time.Duration) {
	a.window().cur.Observe(d.Nanoseconds())
}

// window returns the current latency window, rotating it first if it is
// stale. Rotation is lock-free: racing rotators CAS the same predecessor
// and exactly one wins; the losers observe into the winner's window.
func (a *admission) window() *latencyWindow {
	w := a.win.Load()
	if w == nil {
		// Unreachable — win is seeded in newAdmission and rotation only
		// stores fresh windows — but the nil contract stays explicit: a
		// throwaway window absorbs the observation instead of panicking.
		return &latencyWindow{start: time.Now(), cur: &obs.Histogram{}}
	}
	if time.Since(w.start) < a.windowDur {
		return w
	}
	nw := &latencyWindow{start: time.Now(), cur: &obs.Histogram{}, prev: w.cur}
	if a.win.CompareAndSwap(w, nw) {
		return nw
	}
	return a.win.Load()
}

// p95 returns the current backpressure estimate: the p95 of the freshest
// window holding at least minWindowSamples samples, or 0 when neither
// window is populated enough to trust.
func (a *admission) p95() int64 {
	w := a.window()
	if w == nil {
		return 0
	}
	if w.cur.Count() >= minWindowSamples {
		return w.cur.Quantile(0.95)
	}
	if w.prev.Count() >= minWindowSamples {
		return w.prev.Quantile(0.95)
	}
	return 0
}

func (a *admission) overBudget() bool {
	return a.p95() > a.budgetNS
}

// AdmissionStats is the computed "serve_admission" metric: the live
// backpressure signal, published through Collector.RegisterFunc so it
// shows up in every metrics snapshot.
type AdmissionStats struct {
	WindowP95NS int64 `json:"window_p95_ns"`
	BudgetNS    int64 `json:"budget_ns"`
	Shedding    bool  `json:"shedding"`
	Queued      int64 `json:"queued"`
}

func (a *admission) stats() any {
	p95 := a.p95()
	return AdmissionStats{
		WindowP95NS: p95,
		BudgetNS:    a.budgetNS,
		Shedding:    a.budgetNS > 0 && p95 > a.budgetNS,
		Queued:      a.queued.Load(),
	}
}
