// FuzzServeRequest holds the HTTP surface to its validation contract:
// whatever a client sends — malformed JSON, huge or NaN τ, absurd k,
// unknown plan names, unparseable XML, pathological document ids — the
// service answers 2xx or 4xx. It never panics and never answers 5xx,
// because a request body must not be able to take the tier down or get
// blamed on the server. Wired into `make fuzz`.

package serve

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

func FuzzServeRequest(f *testing.F) {
	// One shared server across all iterations: mutating endpoints really
	// mutate it, which is the production shape (and a second correctness
	// signal — no input sequence may corrupt the index).
	srv := New(forest.New(profile.Default), nil, Config{CacheSize: 16}, nil)
	for _, id := range []string{"a", "b"} {
		if _, err := srv.Put(id, tree.MustParse("a(b(c) d)")); err != nil {
			f.Fatal(err)
		}
	}

	// Seeds: one well-formed and one hostile request per endpoint family.
	seeds := []struct {
		which uint8
		id    string
		body  string
	}{
		{0, "", `{"xml":"<a><b/></a>","tau":0.5}`},
		{0, "", `{"xml":"<a/>","tau":1e308,"plan":"quantum"}`},
		{0, "", `{"xml":"<a/>","top":2147483647}`},
		{0, "", `{`},
		{1, "", `{"xml":"<a/>","k":3}`},
		{1, "", `{"xml":"<a/>","k":-9000000}`},
		{2, "", `{"xml":"<a><b/></a>","tau":0.4}`},
		{2, "", `{"xml":"<unclosed","k":1000000}`},
		{3, "doc-1", `<a><b/><c/></a>`},
		{3, strings.Repeat("x", 600), `<a/>`},
		{4, "doc-1", ``},
		{5, "a", `{"xml":"<a/>","log":["garbage"]}`},
		{5, "a", `{"xml":"<a(b)>","ids":[1,2],"log":[]}`},
		{6, "", ``},
	}
	for _, s := range seeds {
		f.Add(s.which, s.id, s.body)
	}

	f.Fuzz(func(t *testing.T, which uint8, id, body string) {
		var method, path string
		switch which % 7 {
		case 0:
			method, path = "POST", "/lookup"
		case 1:
			method, path = "POST", "/topk"
		case 2:
			method, path = "POST", "/explain"
		case 3:
			method, path = "PUT", "/docs/"+url.PathEscape(id)
		case 4:
			method, path = "DELETE", "/docs/"+url.PathEscape(id)
		case 5:
			method, path = "POST", "/docs/"+url.PathEscape(id)+"/edits"
		case 6:
			method, path = "GET", "/stats"
		}
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code < 200 || w.Code >= 500 {
			t.Fatalf("%s %s with body %q answered %d (want 2xx-4xx): %s",
				method, path, body, w.Code, w.Body.String())
		}
	})
}
