// Request batching: concurrent identical lookups coalesce into one
// shared postings traversal.
//
// A flight is keyed on (queryKey, forest epoch at request time). The
// first request under a key becomes the leader and runs the traversal;
// requests that arrive with the same key while it is in flight wait for
// the leader and share its result. Because the epoch is part of the key,
// a request admitted after a mutation completed can never join a
// traversal started before it — the coalescing window is exactly one
// epoch, which is what makes batching semantically invisible.

package serve

import (
	"sync"

	"pqgram/internal/forest"
)

type flightKey struct {
	qk    queryKey
	epoch uint64
}

// flight is one in-progress shared traversal. joined and out are written
// under the batcher lock (joined) or strictly before done is closed
// (out), and read only after <-done.
type flight struct {
	done   chan struct{}
	out    []forest.Match
	joined int64 // guarded by batcher.mu; requests sharing this traversal, including the leader
}

type batcher struct {
	mu      sync.Mutex
	flights map[flightKey]*flight // guarded by mu
	m       serveMetrics          // by value: the handles are fixed at New
}

// Serving-tier lock order. The two locks are never actually nested today
// (the batcher runs the traversal unlocked and the cache is consulted
// outside any flight), but the declared order pins the direction future
// code must use.
//
//pqlint:lockorder batcher.mu < resultCache.mu

func newBatcher(m serveMetrics) *batcher {
	return &batcher{flights: make(map[flightKey]*flight), m: m}
}

// do runs fn once for all concurrent callers with the same key and epoch
// and hands every caller the same result. The second return reports
// whether this caller shared another request's traversal. fn must not
// call back into the batcher.
func (b *batcher) do(key queryKey, epoch uint64, fn func() []forest.Match) ([]forest.Match, bool) {
	fk := flightKey{qk: key, epoch: epoch}
	b.mu.Lock()
	if fl, ok := b.flights[fk]; ok {
		fl.joined++
		b.mu.Unlock()
		<-fl.done
		b.m.batchJoined.Inc()
		return fl.out, true
	}
	fl := &flight{done: make(chan struct{})}
	fl.joined = 1
	b.flights[fk] = fl
	b.mu.Unlock()

	// The flight must resolve even if the traversal panics (a joiner
	// blocked on a flight that never closes would hang forever); the
	// panic itself propagates to the leader's caller.
	defer func() {
		b.mu.Lock()
		delete(b.flights, fk)
		joined := fl.joined
		b.mu.Unlock()
		close(fl.done)
		b.m.batchFlights.Inc()
		b.m.batchSize.Observe(joined)
	}()
	fl.out = fn()
	return fl.out, false
}
