// The differential battery: the serving tier's cache and batcher must be
// semantically invisible. For 200 seeded scripts of interleaved
// Put/Remove/Update/Lookup/TopK, every HTTP response from a server with
// the cache enabled must be byte-identical to the response from a server
// with it disabled — including repeats (which hit the cache) and bursts
// of concurrent identical requests (which coalesce in the batcher). Run
// under -race by `make test`; a stale-cache-after-update bug, an epoch
// bump missed by any mutation path, or a batcher leaking results across
// epochs all fail this test.

package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
	"pqgram/internal/xmlconv"
)

const (
	diffSeeds      = 200
	diffOps        = 12
	diffBurst      = 4 // concurrent identical requests per lookup on the cached server
	diffCorpusSize = 5
)

// diffServer pairs a server with the live trees of its corpus so the
// script can derive updates and queries from current document states.
type diffServer struct {
	srv  *Server
	live map[string]*tree.Tree
}

func newDiffServer(cacheSize int) *diffServer {
	return &diffServer{
		srv:  New(forest.New(profile.Default), nil, Config{CacheSize: cacheSize}, nil),
		live: make(map[string]*tree.Tree),
	}
}

func TestDifferentialCacheOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed differential battery")
	}
	for seed := int64(0); seed < diffSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			runDiffScript(t, seed)
		})
	}
}

func runDiffScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cached := newDiffServer(64)
	plain := newDiffServer(0)
	both := []*diffServer{cached, plain}

	// Seed corpus: perturbed variants of one generated document, so
	// queries land near several trees and lookups return real match sets.
	base := gen.DBLP(seed, 80)
	for i := 0; i < diffCorpusSize; i++ {
		doc := mustPerturbT(t, rng, base, 2*i)
		for _, ds := range both {
			ds.put(t, fmt.Sprintf("doc-%d", i), doc)
		}
	}

	for op := 0; op < diffOps; op++ {
		switch rng.Intn(6) {
		case 0: // Put: replace an existing document with a perturbed copy
			id, cur := pickDoc(rng, cached.live)
			doc := mustPerturbT(t, rng, cur, 3)
			for _, ds := range both {
				ds.put(t, id, doc)
			}
		case 1: // Remove, then re-add later puts can resurrect
			if len(cached.live) <= 1 {
				continue
			}
			id, _ := pickDoc(rng, cached.live)
			for _, ds := range both {
				if err := ds.srv.Remove(id); err != nil {
					t.Fatalf("seed %d op %d: remove %s: %v", seed, op, id, err)
				}
				delete(ds.live, id)
			}
		case 2: // Update: incremental maintenance through the edit-log path
			id, cur := pickDoc(rng, cached.live)
			tn, log, err := gen.Perturb(rng, cur, 2, gen.XMLSafeMix)
			if err != nil {
				t.Fatalf("seed %d op %d: perturb: %v", seed, op, err)
			}
			for _, ds := range both {
				if _, err := ds.srv.Update(id, tn, log); err != nil {
					t.Fatalf("seed %d op %d: update %s: %v", seed, op, id, err)
				}
				ds.live[id] = tn
			}
		default: // Lookup or TopK over a noisy copy of a live document
			_, cur := pickDoc(rng, cached.live)
			query := mustPerturbT(t, rng, cur, 1+rng.Intn(3))
			xml, err := xmlconv.WriteString(query)
			if err != nil {
				t.Fatalf("seed %d op %d: serialize query: %v", seed, op, err)
			}
			var path, body string
			if rng.Intn(2) == 0 {
				path = "/lookup"
				b, _ := json.Marshal(LookupRequest{XML: xml, Tau: 0.2 + 0.2*float64(rng.Intn(4))})
				body = string(b)
			} else {
				path = "/topk"
				b, _ := json.Marshal(TopKRequest{XML: xml, K: 1 + rng.Intn(3)})
				body = string(b)
			}
			compareResponses(t, seed, op, cached.srv, plain.srv, path, body)
		}
	}
}

// compareResponses issues the query once against the cache-off server and
// three times against the cached server — twice sequentially (the second
// must be served from the cache) and once as a burst of concurrent
// identical requests (which coalesce) — and requires every status and
// body to be byte-identical.
func compareResponses(t *testing.T, seed int64, op int, cached, plain *Server, path, body string) {
	t.Helper()
	wantCode, wantBody := doPost(plain, path, body)
	for pass := 0; pass < 2; pass++ {
		code, got := doPost(cached, path, body)
		if code != wantCode || got != wantBody {
			t.Fatalf("seed %d op %d pass %d: %s diverged\ncache-on:  %d %s\ncache-off: %d %s",
				seed, op, pass, path, code, got, wantCode, wantBody)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < diffBurst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, got := doPost(cached, path, body)
			if code != wantCode || got != wantBody {
				t.Errorf("seed %d op %d burst: %s diverged\ncache-on:  %d %s\ncache-off: %d %s",
					seed, op, path, code, got, wantCode, wantBody)
			}
		}()
	}
	wg.Wait()
}

func doPost(s *Server, path, body string) (int, string) {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func (ds *diffServer) put(t *testing.T, id string, doc *tree.Tree) {
	t.Helper()
	if _, err := ds.srv.Put(id, doc); err != nil {
		t.Fatalf("put %s: %v", id, err)
	}
	ds.live[id] = doc
}

// pickDoc returns a deterministic random live document: map iteration
// order is randomized, so the candidates are sorted by ID first.
func pickDoc(rng *rand.Rand, live map[string]*tree.Tree) (string, *tree.Tree) {
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sortStrings(ids)
	id := ids[rng.Intn(len(ids))]
	return id, live[id]
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func mustPerturbT(t *testing.T, rng *rand.Rand, base *tree.Tree, n int) *tree.Tree {
	t.Helper()
	out, _, err := gen.Perturb(rng, base, n, gen.XMLSafeMix)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
