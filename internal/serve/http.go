// The HTTP surface of the serving tier. Every query endpoint routes
// through Server.query — admission control, result cache, request
// batching — and mutations route through Server.Put/Remove/Update so the
// journal (when store-backed) and the epoch-based cache invalidation are
// shared with programmatic callers.
//
// Endpoints (JSON unless noted):
//
//	PUT    /docs/{id}          body: XML                  index a document
//	DELETE /docs/{id}                                     drop a document
//	POST   /docs/{id}/edits    {"xml","ids","log"}        incremental update
//	POST   /lookup             {"xml","tau","top","plan"} approximate lookup
//	POST   /topk               {"xml","k","plan"}         k nearest via the planner
//	POST   /explain            {"xml","tau","k"}          run a query traced; plan + work counters
//	GET    /stats                                         index + serving-tier statistics
//	GET    /debug/metrics                                 live metrics snapshot (?format=prom)
//	GET    /debug/trace[?n=16]                            recent query traces
//	GET    /debug/vars                                    expvar (includes "pqgram")
//	GET    /debug/pprof/...                               CPU/heap/goroutine profiles
//
// Input validation is strict — malformed JSON, out-of-range τ or k, and
// unknown plan names all answer 4xx, never 5xx or a panic; the fuzz
// target FuzzServeRequest holds the service to that contract. Shed
// requests answer 429 with a Retry-After hint; answered lookups carry an
// X-Cache header (hit, miss or shared) so load generators can attribute
// latency to the tier that produced it.

package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
	"pqgram/internal/xmlconv"
)

// Request-validation bounds. τ is a normalized distance, so the unit
// interval is the entire meaningful range; k and n are capped so a single
// request cannot demand unbounded allocation.
const (
	maxTopK     = 4096
	maxTraceN   = 1024
	maxDocIDLen = 512
)

// httpState is the HTTP half of the Server: the routing mux plus the
// request-ID and logging plumbing of the middleware.
type httpState struct {
	mux    *http.ServeMux
	reqID  atomic.Int64
	logger *slog.Logger
}

// expvarOnce guards the process-global expvar registration (Publish
// panics on duplicate names; tests build many servers per process).
var expvarOnce sync.Once

// initHTTP wires the routing table and the debug endpoints. Called once
// by New.
func (s *Server) initHTTP() {
	s.mux = http.NewServeMux()
	s.logger = s.cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Sample every 16th traceable operation into a ring of recent traces;
	// /explain traces its query unconditionally regardless of sampling.
	if s.col.Tracer() == nil {
		s.col.SetTracer(obs.NewTracer(16, 64))
	}
	s.mux.HandleFunc("/docs/", s.handleDocs)
	s.mux.HandleFunc("/lookup", s.handleLookup)
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	col := s.col
	expvarOnce.Do(func() {
		expvar.Publish("pqgram", expvar.Func(func() any { return col.Snapshot() }))
	})
}

// statusWriter captures the response status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// ServeHTTP is the request-logging and metrics middleware: it assigns a
// request ID (echoed as X-Request-ID), bounds the request body, times the
// handler, logs one structured line per request, and feeds the HTTP
// counters/histogram.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	sw.Header().Set("X-Request-ID", fmt.Sprintf("req-%06d", id))
	if r.Body != nil {
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
	}
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(t0)
	s.col.Counter("http_requests").Inc()
	if sw.status >= 400 {
		s.col.Counter("http_errors").Inc()
	}
	s.col.Histogram("http_request_ns").Observe(dur.Nanoseconds())
	s.logger.Info("request",
		"id", id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"bytes", sw.bytes,
		"dur", dur,
	)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeOverloaded maps ErrOverloaded to 429 Too Many Requests with the
// configured Retry-After hint.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.FormatInt(int64(math.Ceil(s.cfg.RetryAfter.Seconds())), 10))
	httpError(w, http.StatusTooManyRequests, "overloaded; retry after %s", s.cfg.RetryAfter)
}

// parsePlan resolves a planner-mode name from a request. The empty string
// keeps the active mode; an unknown name is a client error.
func parsePlan(name string) (forest.PlanMode, bool) {
	switch name {
	case "auto":
		return forest.PlanAuto, true
	case "exhaustive":
		return forest.PlanExhaustive, true
	case "pruned":
		return forest.PlanPruned, true
	case "metric":
		return forest.PlanMetric, true
	}
	return 0, false
}

// applyPlan validates and applies a request's optional plan override. All
// modes answer identically (the planner chooses work, not results), so
// switching is always safe; the mode is part of the cache key, so cached
// entries recorded under other modes are simply not consulted.
func (s *Server) applyPlan(w http.ResponseWriter, name string) bool {
	if name == "" {
		return true
	}
	mode, ok := parsePlan(name)
	if !ok {
		httpError(w, http.StatusBadRequest,
			"unknown plan %q (want auto, exhaustive, pruned or metric)", name)
		return false
	}
	s.forest.SetPlanMode(mode)
	return true
}

// parseQueryXML parses a request's query document and builds its pq-gram
// profile under the forest's parameters.
func (s *Server) parseQueryXML(w http.ResponseWriter, xml string) (profile.Index, bool) {
	t, err := xmlconv.ParseString(xml, xmlconv.Options{})
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query document: %v", err)
		return nil, false
	}
	return profile.BuildIndex(t, s.forest.Params()), true
}

// cacheHeader attributes an answered lookup to the tier that produced it.
func cacheHeader(res Result) string {
	switch {
	case res.Cached:
		return "hit"
	case res.Shared:
		return "shared"
	default:
		return "miss"
	}
}

// LookupRequest is the body of POST /lookup. Tau > 0 runs a threshold
// lookup; Top > 0 instead returns the Top nearest trees. Plan optionally
// switches the planner mode (auto, exhaustive, pruned, metric).
type LookupRequest struct {
	XML  string  `json:"xml"`
	Tau  float64 `json:"tau"`
	Top  int     `json:"top"`
	Plan string  `json:"plan,omitempty"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req LookupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if math.IsNaN(req.Tau) || req.Tau < 0 || req.Tau > 1 {
		httpError(w, http.StatusBadRequest, "tau %v out of range [0, 1]", req.Tau)
		return
	}
	if req.Top < 0 || req.Top > maxTopK {
		httpError(w, http.StatusBadRequest, "top %d out of range [0, %d]", req.Top, maxTopK)
		return
	}
	if !s.applyPlan(w, req.Plan) {
		return
	}
	q, ok := s.parseQueryXML(w, req.XML)
	if !ok {
		return
	}
	var res Result
	var err error
	if req.Top > 0 {
		res, err = s.TopK(q, req.Top)
	} else {
		res, err = s.Lookup(q, req.Tau)
	}
	if err != nil {
		s.writeOverloaded(w)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(res))
	writeJSON(w, res.Matches)
}

// TopKRequest is the body of POST /topk. K defaults to 5; Plan optionally
// switches the planner mode.
type TopKRequest struct {
	XML  string `json:"xml"`
	K    int    `json:"k"`
	Plan string `json:"plan,omitempty"`
}

// handleTopK answers k-nearest-neighbour queries. The candidate strategy
// is the planner's: in metric mode the first query builds the VP-tree
// metric index, which is then maintained incrementally by every mutation;
// the response reports whether it is built so operators can see which
// path answered.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TopKRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.K < 0 || req.K > maxTopK {
		httpError(w, http.StatusBadRequest, "k %d out of range [0, %d]", req.K, maxTopK)
		return
	}
	if req.K == 0 {
		req.K = 5
	}
	if !s.applyPlan(w, req.Plan) {
		return
	}
	q, ok := s.parseQueryXML(w, req.XML)
	if !ok {
		return
	}
	res, err := s.TopK(q, req.K)
	if err != nil {
		s.writeOverloaded(w)
		return
	}
	matches := res.Matches
	if matches == nil {
		matches = []forest.Match{}
	}
	w.Header().Set("X-Cache", cacheHeader(res))
	writeJSON(w, map[string]any{
		"k":       req.K,
		"matches": matches,
		"metric":  s.forest.MetricReady(),
	})
}

// ExplainRequest is the body of POST /explain: tau > 0 explains a
// threshold lookup, otherwise k (default 5) explains a top-k lookup.
type ExplainRequest struct {
	XML string  `json:"xml"`
	Tau float64 `json:"tau"`
	K   int     `json:"k"`
}

// handleExplain runs one query with tracing forced on and returns the
// plan decision plus the per-stage work-counter span tree. Explain is a
// diagnostic: it bypasses the cache and the batcher on purpose (a cached
// answer has no work counters to report) but still runs the production
// lookup code. The trace is also published into the tracer's ring buffer
// tagged with this request's ID, correlating with the request log.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if math.IsNaN(req.Tau) || req.Tau < 0 || req.Tau > 1 {
		httpError(w, http.StatusBadRequest, "tau %v out of range [0, 1]", req.Tau)
		return
	}
	if req.K < 0 || req.K > maxTopK {
		httpError(w, http.StatusBadRequest, "k %d out of range [0, %d]", req.K, maxTopK)
		return
	}
	query, err := xmlconv.ParseString(req.XML, xmlconv.Options{})
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query document: %v", err)
		return
	}
	var res forest.ExplainResult
	if req.Tau > 0 {
		res = s.forest.ExplainLookup(query, req.Tau)
	} else {
		if req.K == 0 {
			req.K = 5
		}
		res = s.forest.ExplainTopK(query, req.K)
	}
	reqID := w.Header().Get("X-Request-ID")
	s.col.Tracer().Publish(obs.TraceSnapshot{ID: reqID, Root: res.Trace})
	writeJSON(w, map[string]any{"id": reqID, "explain": res})
}

// EditsRequest is the body of POST /docs/{id}/edits: the paper's
// maintenance inputs — the resulting document, its node identities, and
// the log of inverse edit operations.
type EditsRequest struct {
	XML string        `json:"xml"`
	IDs []tree.NodeID `json:"ids"`
	Log []string      `json:"log"`
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/docs/")
	if id, ok := strings.CutSuffix(rest, "/edits"); ok && r.Method == http.MethodPost {
		if !validDocID(w, id) {
			return
		}
		s.handleEdits(w, r, id)
		return
	}
	id := rest
	if !validDocID(w, id) {
		return
	}
	switch r.Method {
	case http.MethodPut:
		doc, err := xmlconv.Parse(r.Body, xmlconv.Options{})
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad document: %v", err)
			return
		}
		grams, err := s.Put(id, doc)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "persisting: %v", err)
			return
		}
		writeJSON(w, map[string]any{"id": id, "nodes": doc.Size(), "pqgrams": grams})
	case http.MethodDelete:
		if err := s.Remove(id); err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, map[string]string{"removed": id})
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func validDocID(w http.ResponseWriter, id string) bool {
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing document id")
		return false
	}
	if len(id) > maxDocIDLen {
		httpError(w, http.StatusBadRequest, "document id longer than %d bytes", maxDocIDLen)
		return false
	}
	return true
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request, id string) {
	var req EditsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	tn, err := xmlconv.ParseString(req.XML, xmlconv.Options{})
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad document: %v", err)
		return
	}
	if len(req.IDs) > 0 {
		var sb strings.Builder
		for _, nid := range req.IDs {
			fmt.Fprintln(&sb, nid)
		}
		if err := xmlconv.ApplyIDs(strings.NewReader(sb.String()), tn); err != nil {
			httpError(w, http.StatusBadRequest, "bad ids: %v", err)
			return
		}
	}
	ops, err := edit.ReadLog(strings.NewReader(strings.Join(req.Log, "\n")))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad log: %v", err)
		return
	}
	// Vet the log before touching the index: a broken feed must not be
	// able to corrupt it.
	if _, err := edit.VerifyLog(tn, ops); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "log does not apply: %v", err)
		return
	}
	ops = edit.OptimizeLog(tn, ops)
	st, err := s.Update(id, tn, ops)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "update failed: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"id": id, "ops": len(ops),
		"added": st.PlusGrams, "removed": st.MinusGrams,
		"micros": st.Total.Microseconds(),
	})
}

// handleStats reports the index shape plus the serving tier's live state:
// the mutation epoch, the active plan mode, and the result-cache fill.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pr := s.forest.Params()
	cacheLen := 0
	if s.cache != nil {
		cacheLen = s.cache.len()
	}
	writeJSON(w, map[string]any{
		"p": pr.P, "q": pr.Q,
		"docs": s.forest.Len(), "pqgrams": s.forest.Size(),
		"serve": map[string]any{
			"epoch":         s.forest.Epoch(),
			"plan":          int(s.forest.PlanMode()),
			"cache_entries": cacheLen,
			"cache_size":    s.cfg.CacheSize,
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, s.col.Snapshot()); err != nil {
			s.logger.Error("prometheus exposition failed", "err", err)
		}
		return
	}
	writeJSON(w, s.col.Snapshot())
}

// handleTrace serves the tracer's ring buffer of recent traces, newest
// first. /explain traces carry the request ID of the request that ran
// them, correlating with the request log.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 && v <= maxTraceN {
			n = v
		}
	}
	traces := s.col.Tracer().RecentTraces(n)
	if traces == nil {
		traces = []obs.TraceSnapshot{}
	}
	writeJSON(w, traces)
}
