// White-box unit tests of the serving tier's three mechanisms — the
// result cache (hit, strict epoch invalidation, LRU eviction, collision
// safety), the batcher (deterministic coalescing via the flight hook),
// and admission control (queue shedding, latency-budget shedding and
// recovery) — plus the HTTP validation surface. The cross-cutting
// correctness arguments live in diff_test.go (semantic invisibility) and
// soak_test.go (no lost responses under contention).

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
	"pqgram/internal/xmlconv"
)

// newTestServer builds a serving tier over a fresh forest seeded with n
// generated documents, returning the server and the document trees.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, []*tree.Tree) {
	t.Helper()
	f := forest.New(profile.Default)
	rng := rand.New(rand.NewSource(7))
	docs := make([]*tree.Tree, n)
	base := gen.DBLP(7, 120)
	for i := range docs {
		d, _, err := gen.Perturb(rng, base, 2*i, gen.XMLSafeMix)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
		f.Put(fmt.Sprintf("doc-%d", i), d)
	}
	return New(f, nil, cfg, nil), docs
}

func queryOf(t *testing.T, s *Server, doc *tree.Tree) profile.Index {
	t.Helper()
	return profile.BuildIndex(doc, s.forest.Params())
}

func TestCacheHitAndEpochInvalidation(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 8}, 3)
	q := queryOf(t, s, docs[0])

	r1, err := s.Lookup(q, 0.5)
	if err != nil || r1.Cached {
		t.Fatalf("first lookup: cached=%v err=%v, want fresh", r1.Cached, err)
	}
	r2, err := s.Lookup(q, 0.5)
	if err != nil || !r2.Cached {
		t.Fatalf("repeat lookup: cached=%v err=%v, want hit", r2.Cached, err)
	}
	if len(r1.Matches) != len(r2.Matches) {
		t.Fatalf("hit returned %d matches, fresh returned %d", len(r2.Matches), len(r1.Matches))
	}
	if got := s.m.cacheHits.Load(); got != 1 {
		t.Fatalf("serve_cache_hit = %d, want 1", got)
	}

	// Any mutation advances the epoch and must strictly invalidate.
	s.forest.Put("doc-0", docs[1])
	r3, err := s.Lookup(q, 0.5)
	if err != nil || r3.Cached {
		t.Fatalf("post-mutation lookup: cached=%v err=%v, want fresh", r3.Cached, err)
	}
	if got := s.m.cacheInvalidate.Load(); got != 1 {
		t.Fatalf("serve_cache_invalidate = %d, want 1", got)
	}
	if r3.Epoch <= r1.Epoch {
		t.Fatalf("epoch did not advance across mutation: %d -> %d", r1.Epoch, r3.Epoch)
	}
}

func TestCacheDistinguishesOpsAndParams(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 16}, 3)
	q := queryOf(t, s, docs[0])

	if _, err := s.Lookup(q, 0.5); err != nil {
		t.Fatal(err)
	}
	// Same bag, different τ / different op / different k: all misses.
	for name, res := range map[string]func() (Result, error){
		"other tau": func() (Result, error) { return s.Lookup(q, 0.6) },
		"topk":      func() (Result, error) { return s.TopK(q, 2) },
		"other k":   func() (Result, error) { return s.TopK(q, 3) },
	} {
		r, err := res()
		if err != nil || r.Cached {
			t.Fatalf("%s: cached=%v err=%v, want fresh", name, r.Cached, err)
		}
	}
	// And the plan mode is part of the key.
	s.forest.SetPlanMode(forest.PlanExhaustive)
	r, err := s.Lookup(q, 0.5)
	if err != nil || r.Cached {
		t.Fatalf("plan switch: cached=%v err=%v, want fresh", r.Cached, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 2}, 4)
	for i := 0; i < 3; i++ {
		if _, err := s.Lookup(queryOf(t, s, docs[i]), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", got)
	}
	// The first query is the eviction victim; the last two still hit.
	if r, _ := s.Lookup(queryOf(t, s, docs[0]), 0.5); r.Cached {
		t.Fatal("evicted entry served a hit")
	}
	if r, _ := s.Lookup(queryOf(t, s, docs[2]), 0.5); !r.Cached {
		t.Fatal("resident entry missed")
	}
}

func TestCacheCollisionIsMissNotWrongAnswer(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 8}, 2)
	qa := queryOf(t, s, docs[0])
	qb := queryOf(t, s, docs[1])
	key := queryKey{op: opLookup, tau: 0.5}

	// Force both bags onto one key, simulating a fingerprint collision.
	s.cache.put(key, qa, []forest.Match{{TreeID: "a", Distance: 0.1}}, s.forest.Epoch())
	if _, ok := s.cache.get(key, qb, s.forest.Epoch()); ok {
		t.Fatal("colliding bag served another query's answer")
	}
	if out, ok := s.cache.get(key, qa, s.forest.Epoch()); !ok || out[0].TreeID != "a" {
		t.Fatalf("original bag lost its entry: ok=%v out=%v", ok, out)
	}
}

func TestFingerprintOrderIndependentAndDiscriminating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := gen.RandomTree(rng, 60)
	q1 := profile.BuildIndex(base, profile.Default)
	q2 := profile.BuildIndex(base, profile.Default) // fresh map, new iteration order
	if fingerprintIndex(q1) != fingerprintIndex(q2) {
		t.Fatal("fingerprint depends on construction/iteration order")
	}
	seen := map[uint64]bool{fingerprintIndex(q1): true}
	for i := 0; i < 50; i++ {
		fp := fingerprintIndex(profile.BuildIndex(gen.RandomTree(rng, 60), profile.Default))
		if seen[fp] {
			t.Fatalf("fingerprint collision across %d distinct random queries", i+1)
		}
		seen[fp] = true
	}
}

// TestBatchCoalesce holds a traversal open via the flight hook and proves
// that concurrent identical requests join it instead of traversing again.
func TestBatchCoalesce(t *testing.T) {
	const joiners = 3
	s, docs := newTestServer(t, Config{}, 2) // no cache: every request reaches the batcher
	q := queryOf(t, s, docs[0])

	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.hookFlightStart = func() {
		hookOnce.Do(func() { close(entered); <-release })
	}

	results := make(chan Result, joiners+1)
	go func() {
		r, err := s.Lookup(q, 0.5)
		if err != nil {
			t.Error(err)
		}
		results <- r
	}()
	<-entered // the leader is inside its traversal

	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.Lookup(q, 0.5)
			if err != nil {
				t.Error(err)
			}
			results <- r
		}()
	}
	// Wait until every joiner is registered on the open flight, then let
	// the leader finish.
	fk := flightKey{qk: queryKey{op: opLookup, plan: s.forest.PlanMode(), tau: 0.5, fp: fingerprintIndex(q)}, epoch: s.forest.Epoch()}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.batch.mu.Lock()
		fl := s.batch.flights[fk]
		n := int64(0)
		if fl != nil {
			n = fl.joined
		}
		s.batch.mu.Unlock()
		if n == joiners+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight joined = %d, want %d", n, joiners+1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	shared := 0
	first := <-results
	for i := 0; i < joiners; i++ {
		r := <-results
		if r.Shared {
			shared++
		}
		if len(r.Matches) != len(first.Matches) {
			t.Fatalf("coalesced result diverged: %d vs %d matches", len(r.Matches), len(first.Matches))
		}
	}
	if first.Shared {
		shared++
	}
	if shared != joiners {
		t.Fatalf("%d requests report Shared, want %d", shared, joiners)
	}
	if got := s.m.batchFlights.Load(); got != 1 {
		t.Fatalf("serve_batch_flights = %d, want 1 shared traversal", got)
	}
	if got := s.m.batchJoined.Load(); got != joiners {
		t.Fatalf("serve_batch_joined = %d, want %d", got, joiners)
	}
}

// TestAdmissionQueueShed fills the single in-flight slot and the
// one-deep wait queue deterministically, then proves the next arrival is
// shed with ErrOverloaded.
func TestAdmissionQueueShed(t *testing.T) {
	s, docs := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1}, 2)
	q0 := queryOf(t, s, docs[0])
	q1 := queryOf(t, s, docs[1])

	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.hookFlightStart = func() {
		hookOnce.Do(func() { close(entered); <-release })
	}

	done := make(chan error, 2)
	go func() { _, err := s.Lookup(q0, 0.5); done <- err }()
	<-entered // slot holder is mid-traversal

	go func() { _, err := s.Lookup(q1, 0.5); done <- err }()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 1", s.adm.queued.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Slot busy, queue full: the third distinct request must be shed.
	if _, err := s.Lookup(q1, 0.9); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request: err = %v, want ErrOverloaded", err)
	}
	if got := s.m.shed.Load(); got != 1 {
		t.Fatalf("serve_shed = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
}

// TestAdmissionLatencyBudget drives the p95 window directly: a burst of
// over-budget samples starts shedding, and rotation recovers once the
// slow window ages out.
func TestAdmissionLatencyBudget(t *testing.T) {
	m := newTestMetrics()
	a := newAdmission(Config{P95Budget: time.Millisecond, BudgetWindow: 20 * time.Millisecond}.withDefaults(), m)

	if err := a.acquire(); err != nil {
		t.Fatalf("empty window must admit: %v", err)
	}
	a.release()
	for i := 0; i < 2*minWindowSamples; i++ {
		a.observe(10 * time.Millisecond)
	}
	if err := a.acquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("p95 over budget: err = %v, want ErrOverloaded", err)
	}
	st := a.stats().(AdmissionStats)
	if !st.Shedding || st.WindowP95NS <= st.BudgetNS {
		t.Fatalf("stats = %+v, want shedding with p95 > budget", st)
	}

	// Two rotations later the slow samples are gone from both cur and
	// prev, and admission resumes.
	deadline := time.Now().Add(5 * time.Second)
	for a.overBudget() {
		if time.Now().After(deadline) {
			t.Fatal("latency budget never recovered after the slow window aged out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := a.acquire(); err != nil {
		t.Fatalf("recovered window must admit: %v", err)
	}
	a.release()
}

func newTestMetrics() serveMetrics {
	s := New(forest.New(profile.Default), nil, Config{}, nil)
	return s.m
}

// --- HTTP surface -------------------------------------------------------

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func mustBody(t *testing.T, doc *tree.Tree) string {
	t.Helper()
	x, err := xmlconv.WriteString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestHTTPValidation(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 8}, 2)
	xml := mustBody(t, docs[0])
	enc := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"lookup ok", "POST", "/lookup", enc(LookupRequest{XML: xml, Tau: 0.5}), 200},
		{"lookup GET", "GET", "/lookup", "", 405},
		{"bad json", "POST", "/lookup", "{", 400},
		{"tau too big", "POST", "/lookup", enc(LookupRequest{XML: xml, Tau: 7}), 400},
		{"tau negative", "POST", "/lookup", enc(LookupRequest{XML: xml, Tau: -1}), 400},
		{"top too big", "POST", "/lookup", enc(LookupRequest{XML: xml, Top: maxTopK + 1}), 400},
		{"bad plan", "POST", "/lookup", `{"xml":"<a/>","tau":0.5,"plan":"quantum"}`, 400},
		{"good plan", "POST", "/lookup", enc(LookupRequest{XML: xml, Tau: 0.5, Plan: "pruned"}), 200},
		{"bad xml", "POST", "/lookup", `{"xml":"<open","tau":0.5}`, 400},
		{"topk ok", "POST", "/topk", enc(TopKRequest{XML: xml, K: 2}), 200},
		{"k too big", "POST", "/topk", enc(TopKRequest{XML: xml, K: maxTopK + 1}), 400},
		{"k negative", "POST", "/topk", enc(TopKRequest{XML: xml, K: -3}), 400},
		{"topk bad plan", "POST", "/topk", `{"xml":"<a/>","k":1,"plan":""}`, 200},
		{"explain ok", "POST", "/explain", enc(ExplainRequest{XML: xml, Tau: 0.4}), 200},
		{"explain bad tau", "POST", "/explain", enc(ExplainRequest{XML: xml, Tau: 9e99}), 400},
		{"missing doc id", "PUT", "/docs/", "<a/>", 400},
		{"doc id too long", "PUT", "/docs/" + strings.Repeat("x", maxDocIDLen+1), "<a/>", 400},
		{"put ok", "PUT", "/docs/new", "<a><b/></a>", 200},
		{"delete ok", "DELETE", "/docs/new", "", 200},
		{"delete missing", "DELETE", "/docs/nope", "", 404},
		{"docs bad method", "POST", "/docs/new", "", 405},
		{"edits bad json", "POST", "/docs/doc-0/edits", "{", 400},
		{"edits bad log", "POST", "/docs/doc-0/edits", `{"xml":"<a/>","log":["garbage op"]}`, 400},
		{"stats", "GET", "/stats", "", 200},
		{"metrics", "GET", "/debug/metrics", "", 200},
		{"metrics prom", "GET", "/debug/metrics?format=prom", "", 200},
		{"trace", "GET", "/debug/trace?n=4", "", 200},
	}
	for _, tc := range cases {
		w := do(t, s, tc.method, tc.path, tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: %s %s = %d, want %d (body %s)",
				tc.name, tc.method, tc.path, w.Code, tc.want, w.Body.String())
		}
		if w.Header().Get("X-Request-ID") == "" {
			t.Errorf("%s: missing X-Request-ID", tc.name)
		}
	}
}

func TestHTTPCacheHeaderAndRetryAfter(t *testing.T) {
	s, docs := newTestServer(t, Config{CacheSize: 8, MaxInFlight: 1, RetryAfter: 3 * time.Second}, 2)
	body, _ := json.Marshal(LookupRequest{XML: mustBody(t, docs[0]), Tau: 0.5})

	if w := do(t, s, "POST", "/lookup", string(body)); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first lookup X-Cache = %q, want miss", w.Header().Get("X-Cache"))
	}
	if w := do(t, s, "POST", "/lookup", string(body)); w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat lookup X-Cache = %q, want hit", w.Header().Get("X-Cache"))
	}

	// Hold the only slot open and prove the HTTP mapping of a shed: 429
	// with the configured Retry-After.
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.hookFlightStart = func() {
		hookOnce.Do(func() { close(entered); <-release })
	}
	other, _ := json.Marshal(LookupRequest{XML: mustBody(t, docs[1]), Tau: 0.5})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- do(t, s, "POST", "/lookup", string(other)) }()
	<-entered

	w := do(t, s, "POST", "/lookup", `{"xml":"<a/>","tau":0.9}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	close(release)
	if w := <-done; w.Code != 200 {
		t.Fatalf("slot holder = %d, want 200", w.Code)
	}
}
