// Package paperfix builds the running example of Augsten, Böhlen and Gamper
// (VLDB 2006) — the trees, edit operations, profiles and deltas of Figure 2
// and Examples 1–5 — as shared golden fixtures for tests across packages.
package paperfix

import (
	"pqgram/internal/edit"
	"pqgram/internal/fingerprint"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Labels maps the fixture's node IDs n1..n7 to their labels as in Figure 2.
var Labels = map[tree.NodeID]string{
	1: "a", 2: "c", 3: "b", 4: "c", 5: "e", 6: "f", 7: "g",
}

// T0 builds the initial tree of Figure 2:
//
//	n1:a ─ (n2:c, n3:b, n4:c), n3:b ─ (n5:e, n6:f)
func T0() *tree.Tree {
	t := tree.NewWithRootID(1, "a")
	r := t.Root()
	t.AddChildWithID(r, 2, "c", 1)
	n3 := t.AddChildWithID(r, 3, "b", 2)
	t.AddChildWithID(r, 4, "c", 3)
	t.AddChildWithID(n3, 5, "e", 1)
	t.AddChildWithID(n3, 6, "f", 2)
	return t
}

// Script returns the forward edit operations of Figure 2 that are exercised
// by Example 5: e1 = INS(n7:g, n6, 1, 0) (leaf insert) and e2 = DEL(n3).
// The third operation of Figure 2 is not pinned down by the paper's text;
// ScriptWithThird appends a rename for three-step tests.
func Script() edit.Script {
	return edit.Script{
		edit.Ins(7, "g", 6, 1, 0),
		edit.Del(3),
	}
}

// ScriptWithThird returns Script plus e3 = REN(n5, "s"); the label "s"
// appears in the paper's hash-function example (Figure 4a).
func ScriptWithThird() edit.Script {
	return append(Script(), edit.Ren(5, "s"))
}

// T2 applies e1, e2 to T0 and returns the result together with the log of
// inverse operations (ē1 = DEL(n7), ē2 = INS(n3:b, n1, 2, 3)).
func T2() (*tree.Tree, edit.Log) {
	t := T0()
	log, err := Script().Apply(t)
	if err != nil {
		panic(err)
	}
	return t, log
}

// refOf resolves a fixture node ID (0 = null node •) to a profile.NodeRef.
func refOf(id tree.NodeID) profile.NodeRef {
	if id == 0 {
		return profile.NullRef
	}
	l, ok := Labels[id]
	if !ok {
		panic("paperfix: unknown node id")
	}
	return profile.NodeRef{ID: id, Label: fingerprint.Of(l)}
}

// GramOf builds a pq-gram from fixture node IDs (0 denotes •).
func GramOf(ids ...tree.NodeID) profile.Gram {
	g := make(profile.Gram, len(ids))
	for i, id := range ids {
		g[i] = refOf(id)
	}
	return g
}

// ProfileOf builds a profile from a list of grams given as ID tuples.
func ProfileOf(grams ...[]tree.NodeID) profile.Profile {
	p := make(profile.Profile, len(grams))
	for _, ids := range grams {
		g := GramOf(ids...)
		p[g.Key()] = g
	}
	return p
}

// ProfileT0 is P0 of Example 2: the 13 3,3-grams of T0.
func ProfileT0() profile.Profile {
	return ProfileOf(
		[]tree.NodeID{0, 0, 1, 0, 0, 2},
		[]tree.NodeID{0, 0, 1, 0, 2, 3},
		[]tree.NodeID{0, 0, 1, 2, 3, 4},
		[]tree.NodeID{0, 0, 1, 3, 4, 0},
		[]tree.NodeID{0, 0, 1, 4, 0, 0},
		[]tree.NodeID{0, 1, 2, 0, 0, 0},
		[]tree.NodeID{0, 1, 3, 0, 0, 5},
		[]tree.NodeID{0, 1, 3, 0, 5, 6},
		[]tree.NodeID{0, 1, 3, 5, 6, 0},
		[]tree.NodeID{0, 1, 3, 6, 0, 0},
		[]tree.NodeID{1, 3, 5, 0, 0, 0},
		[]tree.NodeID{1, 3, 6, 0, 0, 0},
		[]tree.NodeID{0, 1, 4, 0, 0, 0},
	)
}

// ProfileT2 is P2 of Example 2: the 13 3,3-grams of T2 (the paper's listing
// repeats one line typographically; as a set there are 13).
func ProfileT2() profile.Profile {
	return ProfileOf(
		[]tree.NodeID{0, 0, 1, 0, 0, 2},
		[]tree.NodeID{0, 0, 1, 0, 2, 5},
		[]tree.NodeID{0, 0, 1, 2, 5, 6},
		[]tree.NodeID{0, 0, 1, 5, 6, 4},
		[]tree.NodeID{0, 0, 1, 6, 4, 0},
		[]tree.NodeID{0, 0, 1, 4, 0, 0},
		[]tree.NodeID{0, 1, 2, 0, 0, 0},
		[]tree.NodeID{0, 1, 5, 0, 0, 0},
		[]tree.NodeID{0, 1, 6, 0, 0, 7},
		[]tree.NodeID{0, 1, 6, 0, 7, 0},
		[]tree.NodeID{0, 1, 6, 7, 0, 0},
		[]tree.NodeID{1, 6, 7, 0, 0, 0},
		[]tree.NodeID{0, 1, 4, 0, 0, 0},
	)
}

// DeltaPlus2 is Δ2⁺ of Example 5: the new pq-grams of P2 w.r.t. P0.
func DeltaPlus2() profile.Profile {
	return ProfileOf(
		[]tree.NodeID{0, 0, 1, 0, 2, 5},
		[]tree.NodeID{0, 0, 1, 2, 5, 6},
		[]tree.NodeID{0, 0, 1, 5, 6, 4},
		[]tree.NodeID{0, 0, 1, 6, 4, 0},
		[]tree.NodeID{0, 1, 5, 0, 0, 0},
		[]tree.NodeID{0, 1, 6, 0, 0, 7},
		[]tree.NodeID{0, 1, 6, 0, 7, 0},
		[]tree.NodeID{0, 1, 6, 7, 0, 0},
		[]tree.NodeID{1, 6, 7, 0, 0, 0},
	)
}

// DeltaMinus2 is Δ2⁻ of Example 5: the old pq-grams of P0 not in P2.
func DeltaMinus2() profile.Profile {
	return ProfileOf(
		[]tree.NodeID{0, 0, 1, 0, 2, 3},
		[]tree.NodeID{0, 0, 1, 2, 3, 4},
		[]tree.NodeID{0, 0, 1, 3, 4, 0},
		[]tree.NodeID{0, 1, 3, 0, 0, 5},
		[]tree.NodeID{0, 1, 3, 0, 5, 6},
		[]tree.NodeID{0, 1, 3, 5, 6, 0},
		[]tree.NodeID{0, 1, 3, 6, 0, 0},
		[]tree.NodeID{1, 3, 5, 0, 0, 0},
		[]tree.NodeID{1, 3, 6, 0, 0, 0},
	)
}

// DeltaU2 is 𝒰(Δ2⁺, ē2) of Example 5: the intermediate set after undoing
// the deletion of n3 on the new pq-grams.
func DeltaU2() profile.Profile {
	return ProfileOf(
		[]tree.NodeID{0, 0, 1, 0, 2, 3},
		[]tree.NodeID{0, 0, 1, 2, 3, 4},
		[]tree.NodeID{0, 0, 1, 3, 4, 0},
		[]tree.NodeID{0, 1, 3, 0, 0, 5},
		[]tree.NodeID{0, 1, 3, 0, 5, 6},
		[]tree.NodeID{0, 1, 3, 5, 6, 0},
		[]tree.NodeID{0, 1, 3, 6, 0, 0},
		[]tree.NodeID{1, 3, 5, 0, 0, 0},
		[]tree.NodeID{1, 3, 6, 0, 0, 7},
		[]tree.NodeID{1, 3, 6, 0, 7, 0},
		[]tree.NodeID{1, 3, 6, 7, 0, 0},
		[]tree.NodeID{3, 6, 7, 0, 0, 0},
	)
}

// labelTuples maps rows of label names (with "*" for null) to an index bag.
func labelTuples(rows ...[]string) profile.Index {
	idx := make(profile.Index, len(rows))
	for _, r := range rows {
		idx[profile.TupleOfLabels(r...)]++
	}
	return idx
}

// LambdaDeltaMinus2 is λ(Δ2⁻) of Example 5 as a bag of label tuples.
func LambdaDeltaMinus2() profile.Index {
	return labelTuples(
		[]string{"*", "*", "a", "*", "c", "b"},
		[]string{"*", "*", "a", "c", "b", "c"},
		[]string{"*", "*", "a", "b", "c", "*"},
		[]string{"*", "a", "b", "*", "*", "e"},
		[]string{"*", "a", "b", "*", "e", "f"},
		[]string{"*", "a", "b", "e", "f", "*"},
		[]string{"*", "a", "b", "f", "*", "*"},
		[]string{"a", "b", "e", "*", "*", "*"},
		[]string{"a", "b", "f", "*", "*", "*"},
	)
}

// LambdaDeltaPlus2 is λ(Δ2⁺) of Example 5 as a bag of label tuples.
func LambdaDeltaPlus2() profile.Index {
	return labelTuples(
		[]string{"*", "*", "a", "*", "c", "e"},
		[]string{"*", "*", "a", "c", "e", "f"},
		[]string{"*", "*", "a", "e", "f", "c"},
		[]string{"*", "*", "a", "f", "c", "*"},
		[]string{"*", "a", "e", "*", "*", "*"},
		[]string{"*", "a", "f", "*", "*", "g"},
		[]string{"*", "a", "f", "*", "g", "*"},
		[]string{"*", "a", "f", "g", "*", "*"},
		[]string{"a", "f", "g", "*", "*", "*"},
	)
}
