package gen

import (
	"fmt"
	"math/rand"

	"pqgram/internal/tree"
)

// DBLP generates a bibliography document with the structural profile of the
// DBLP dataset used in the paper's real-world experiments (§9.4): a single
// `dblp` root of extreme fanout whose children are shallow publication
// records (article, inproceedings, ...) with author/title/year/... fields
// and text leaves. The document has approximately approxNodes nodes.
//
// This generator substitutes the real 211MB dblp.xml (11M nodes), which is
// not available offline; what the experiments depend on — a very wide,
// very shallow tree with a skewed label distribution — is preserved.
func DBLP(seed int64, approxNodes int) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	t := tree.New("dblp")
	root := t.Root()
	key := 0
	for t.Size() < approxNodes {
		addPublication(t, rng, root, key)
		key++
	}
	return t
}

var pubKinds = []string{
	"article", "article", "article", // articles dominate
	"inproceedings", "inproceedings",
	"proceedings", "book", "incollection", "phdthesis", "mastersthesis", "www",
}

var surnames = []string{
	"Garcia", "Smith", "Chen", "Mueller", "Rossi", "Tanaka", "Kim", "Novak",
	"Silva", "Kumar", "Ivanov", "Dubois", "Hansen", "Okafor", "Haddad",
}

var givenNames = []string{
	"Ana", "Ben", "Chiara", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
	"Ines", "Jonas", "Katia", "Liam", "Mara", "Noor", "Otto",
}

var venues = []string{
	"VLDB", "SIGMOD", "ICDE", "EDBT", "TODS", "TKDE", "VLDBJ", "CIKM",
	"PODS", "WWW", "ICDT", "DASFAA",
}

func addPublication(t *tree.Tree, rng *rand.Rand, root *tree.Node, key int) {
	kind := pubKinds[rng.Intn(len(pubKinds))]
	pub := t.AddChild(root, kind)
	t.AddChild(pub, fmt.Sprintf("@key=%s/%d", kind, key))
	t.AddChild(pub, fmt.Sprintf("@mdate=200%d-0%d-1%d", rng.Intn(7), 1+rng.Intn(9), rng.Intn(9)))
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		author := t.AddChild(pub, "author")
		t.AddChild(author, "="+givenNames[rng.Intn(len(givenNames))]+" "+surnames[rng.Intn(len(surnames))])
	}
	title := t.AddChild(pub, "title")
	t.AddChild(title, "="+text(rng, 6))
	year := t.AddChild(pub, "year")
	t.AddChild(year, fmt.Sprintf("=%d", 1990+rng.Intn(17)))
	switch kind {
	case "article":
		journal := t.AddChild(pub, "journal")
		t.AddChild(journal, "="+venues[rng.Intn(len(venues))])
		vol := t.AddChild(pub, "volume")
		t.AddChild(vol, fmt.Sprintf("=%d", 1+rng.Intn(40)))
	case "inproceedings", "incollection":
		bt := t.AddChild(pub, "booktitle")
		t.AddChild(bt, "="+venues[rng.Intn(len(venues))])
	case "book", "proceedings":
		publisher := t.AddChild(pub, "publisher")
		t.AddChild(publisher, "="+word(rng))
	}
	if rng.Intn(2) == 0 {
		pages := t.AddChild(pub, "pages")
		lo := 1 + rng.Intn(500)
		t.AddChild(pages, fmt.Sprintf("=%d-%d", lo, lo+4+rng.Intn(20)))
	}
	if rng.Intn(3) == 0 {
		ee := t.AddChild(pub, "ee")
		t.AddChild(ee, fmt.Sprintf("=db/%s/%d", kind, key))
	}
}
