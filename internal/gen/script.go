package gen

import (
	"math/rand"

	"pqgram/internal/edit"
	"pqgram/internal/tree"
)

// OpMix weights the edit operation kinds of a random script. The zero
// value is invalid; use DefaultMix for an even mix.
type OpMix struct {
	Insert, Delete, Rename int

	// XMLSafe restricts the generated operations to ones that keep the
	// tree faithful to the XML information set, so that the result
	// round-trips through serialization and reparsing without change:
	// no inserts under text/attribute leaves or inside the attribute
	// prefix, no deletes that leave two text siblings adjacent (XML
	// parsers merge adjacent character data) or that splice attribute
	// leaves behind elements, and no renames of attribute leaves.
	XMLSafe bool
}

// DefaultMix is an even mix of the three operation kinds.
var DefaultMix = OpMix{Insert: 1, Delete: 1, Rename: 1}

// XMLSafeMix is DefaultMix restricted to XML-faithful operations.
var XMLSafeMix = OpMix{Insert: 1, Delete: 1, Rename: 1, XMLSafe: true}

func isText(label string) bool { return len(label) > 0 && label[0] == '=' }
func isAttr(label string) bool { return len(label) > 0 && label[0] == '@' }

// leadingAttrs counts the attribute leaves at the front of v's child list.
func leadingAttrs(v *tree.Node) int {
	n := 0
	for _, c := range v.Children() {
		if !isAttr(c.Label()) {
			break
		}
		n++
	}
	return n
}

// xmlSafeInsert reports whether inserting at position k under v keeps the
// tree XML-faithful.
func xmlSafeInsert(v *tree.Node, k int) bool {
	l := v.Label()
	if isText(l) || isAttr(l) {
		return false
	}
	return k > leadingAttrs(v)
}

// xmlSafeDelete reports whether deleting n keeps the tree XML-faithful.
func xmlSafeDelete(n *tree.Node) bool {
	if isAttr(n.Label()) {
		return true // removing an attribute is always fine
	}
	for _, c := range n.Children() {
		if isAttr(c.Label()) {
			return false // attributes would splice behind elements
		}
	}
	// The splice must not make two text siblings adjacent.
	v := n.Parent()
	k := n.SiblingPos()
	var seq []string
	if k > 1 {
		seq = append(seq, v.Child(k-1).Label())
	}
	for _, c := range n.Children() {
		seq = append(seq, c.Label())
	}
	if k < v.Fanout() {
		seq = append(seq, v.Child(k+1).Label())
	}
	for i := 1; i < len(seq); i++ {
		if isText(seq[i-1]) && isText(seq[i]) {
			return false
		}
	}
	return true
}

func (m OpMix) total() int { return m.Insert + m.Delete + m.Rename }

// RandomScript generates nOps random edit operations, applies them to t in
// place, and returns the forward script together with the log of inverse
// operations (the input to incremental index maintenance). Inserted node
// IDs are fresh (see edit.CheckFreshIDs); the root is never deleted or
// renamed. Nodes are picked uniformly from the current tree.
func RandomScript(rng *rand.Rand, t *tree.Tree, nOps int, mix OpMix) (edit.Script, edit.Log, error) {
	if mix.total() <= 0 {
		mix = DefaultMix
	}
	script := make(edit.Script, 0, nOps)
	log := make(edit.Log, 0, nOps)
	nextID := t.MaxID() + 1
	for i := 0; i < nOps; i++ {
		op := randomOp(rng, t, &nextID, mix)
		inv, err := op.Apply(t)
		if err != nil {
			return script, log, err
		}
		script = append(script, op)
		log = append(log, inv)
	}
	return script, log, nil
}

// randomOp picks a random operation applicable to t. The tree always has a
// root, and labels come from the generator vocabulary, so the loop
// terminates quickly.
func randomOp(rng *rand.Rand, t *tree.Tree, nextID *tree.NodeID, mix OpMix) edit.Op {
	nodes := t.Nodes()
	for attempt := 0; ; attempt++ {
		if attempt > 100000 {
			panic("gen: no applicable operation found (degenerate tree for the requested mix)")
		}
		r := rng.Intn(mix.total())
		switch {
		case r < mix.Insert:
			v := nodes[rng.Intn(len(nodes))]
			k := 1
			if v.Fanout() > 0 {
				k = rng.Intn(v.Fanout()) + 1
			}
			if mix.XMLSafe {
				if la := leadingAttrs(v); k <= la {
					k = la + 1
				}
				if !xmlSafeInsert(v, k) {
					continue
				}
			}
			m := k - 1
			if rng.Intn(2) == 0 { // half leaf inserts, half adopting inserts
				m = k - 1 + rng.Intn(v.Fanout()-k+2)
			}
			id := *nextID
			*nextID++
			return edit.Ins(id, word(rng), v.ID(), k, m)
		case r < mix.Insert+mix.Delete:
			if t.Size() < 2 {
				continue
			}
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			if mix.XMLSafe && !xmlSafeDelete(n) {
				continue
			}
			return edit.Del(n.ID())
		default:
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			if mix.XMLSafe && isAttr(n.Label()) {
				continue
			}
			l := word(rng)
			if n.Label() == l {
				l = l + "-x"
			}
			return edit.Ren(n.ID(), l)
		}
	}
}

// Perturb clones the tree and applies nOps random operations to the clone,
// returning it together with the log. It is the standard way to build
// "similar document" workloads for lookup and deduplication experiments.
func Perturb(rng *rand.Rand, t *tree.Tree, nOps int, mix OpMix) (*tree.Tree, edit.Log, error) {
	c := t.Clone()
	_, log, err := RandomScript(rng, c, nOps, mix)
	return c, log, err
}

// RandomTree builds a uniformly random tree with n nodes whose labels come
// from the generator vocabulary.
func RandomTree(rng *rand.Rand, n int) *tree.Tree {
	t := tree.New(word(rng))
	nodes := []*tree.Node{t.Root()}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		pos := rng.Intn(parent.Fanout()+1) + 1
		c := t.AddChildAt(parent, word(rng), pos)
		nodes = append(nodes, c)
	}
	return t
}
