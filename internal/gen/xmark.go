// Package gen produces the synthetic workloads of the paper's experiments
// (§9): XMark-shaped auction documents (substituting the xmlgen tool of the
// XML benchmark project), DBLP-shaped bibliographies (substituting the real
// 211MB DBLP dataset), uniformly random trees, and random valid edit
// scripts. All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math/rand"

	"pqgram/internal/tree"
)

// wordPool is a small vocabulary for synthetic text leaves. A bounded
// vocabulary matters: it gives distinct documents overlapping pq-grams,
// like real corpora, so distances spread over (0, 1) instead of clumping
// at 1.
var wordPool = []string{
	"auction", "bid", "seller", "ship", "rare", "vintage", "lot", "mint",
	"price", "open", "close", "item", "offer", "trade", "gold", "silver",
	"paper", "index", "tree", "gram", "query", "match", "data", "node",
}

func word(rng *rand.Rand) string { return wordPool[rng.Intn(len(wordPool))] }

func text(rng *rand.Rand, maxWords int) string {
	n := 1 + rng.Intn(maxWords)
	s := word(rng)
	for i := 1; i < n; i++ {
		s += " " + word(rng)
	}
	return s
}

// XMark generates an auction-site document in the structural style of the
// XMark benchmark: a `site` root with regions, categories, people and
// auctions; items with nested descriptions and mailboxes. The document has
// approximately approxNodes nodes (it stops adding items once the budget
// is reached; the result is never smaller than one item per region).
func XMark(seed int64, approxNodes int) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	t := tree.New("site")
	root := t.Root()

	regions := t.AddChild(root, "regions")
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	regionNodes := make([]*tree.Node, len(regionNames))
	for i, rn := range regionNames {
		regionNodes[i] = t.AddChild(regions, rn)
	}

	categories := t.AddChild(root, "categories")
	numCats := 3 + rng.Intn(5)
	for c := 0; c < numCats; c++ {
		cat := t.AddChild(categories, "category")
		t.AddChild(cat, fmt.Sprintf("@id=cat%d", c))
		name := t.AddChild(cat, "name")
		t.AddChild(name, "="+text(rng, 2))
	}

	people := t.AddChild(root, "people")
	auctions := t.AddChild(root, "open_auctions")

	// Fill with items, persons and auctions until the node budget is spent.
	itemID := 0
	for t.Size() < approxNodes {
		switch rng.Intn(3) {
		case 0:
			addItem(t, rng, regionNodes[rng.Intn(len(regionNodes))], itemID, numCats)
			itemID++
		case 1:
			addPerson(t, rng, people)
		default:
			addAuction(t, rng, auctions)
		}
	}
	return t
}

func addItem(t *tree.Tree, rng *rand.Rand, region *tree.Node, id, numCats int) {
	item := t.AddChild(region, "item")
	t.AddChild(item, fmt.Sprintf("@id=item%d", id))
	loc := t.AddChild(item, "location")
	t.AddChild(loc, "="+word(rng))
	qty := t.AddChild(item, "quantity")
	t.AddChild(qty, fmt.Sprintf("=%d", 1+rng.Intn(9)))
	name := t.AddChild(item, "name")
	t.AddChild(name, "="+text(rng, 3))
	pay := t.AddChild(item, "payment")
	t.AddChild(pay, "="+word(rng))
	desc := t.AddChild(item, "description")
	parlist := t.AddChild(desc, "parlist")
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		li := t.AddChild(parlist, "listitem")
		txt := t.AddChild(li, "text")
		t.AddChild(txt, "="+text(rng, 6))
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		inc := t.AddChild(item, "incategory")
		t.AddChild(inc, fmt.Sprintf("@category=cat%d", rng.Intn(numCats)))
	}
	if rng.Intn(2) == 0 {
		mb := t.AddChild(item, "mailbox")
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			mail := t.AddChild(mb, "mail")
			from := t.AddChild(mail, "from")
			t.AddChild(from, "="+word(rng))
			to := t.AddChild(mail, "to")
			t.AddChild(to, "="+word(rng))
			txt := t.AddChild(mail, "text")
			t.AddChild(txt, "="+text(rng, 5))
		}
	}
}

func addPerson(t *tree.Tree, rng *rand.Rand, people *tree.Node) {
	p := t.AddChild(people, "person")
	name := t.AddChild(p, "name")
	t.AddChild(name, "="+text(rng, 2))
	email := t.AddChild(p, "emailaddress")
	t.AddChild(email, "="+word(rng)+"@example.com")
	if rng.Intn(2) == 0 {
		addr := t.AddChild(p, "address")
		street := t.AddChild(addr, "street")
		t.AddChild(street, "="+text(rng, 2))
		city := t.AddChild(addr, "city")
		t.AddChild(city, "="+word(rng))
		country := t.AddChild(addr, "country")
		t.AddChild(country, "="+word(rng))
	}
}

func addAuction(t *tree.Tree, rng *rand.Rand, auctions *tree.Node) {
	a := t.AddChild(auctions, "open_auction")
	initial := t.AddChild(a, "initial")
	t.AddChild(initial, fmt.Sprintf("=%d.%02d", rng.Intn(200), rng.Intn(100)))
	for i, n := 0, rng.Intn(3); i < n; i++ {
		bid := t.AddChild(a, "bidder")
		inc := t.AddChild(bid, "increase")
		t.AddChild(inc, fmt.Sprintf("=%d.%02d", rng.Intn(50), rng.Intn(100)))
	}
	cur := t.AddChild(a, "current")
	t.AddChild(cur, fmt.Sprintf("=%d.%02d", rng.Intn(400), rng.Intn(100)))
	q := t.AddChild(a, "quantity")
	t.AddChild(q, fmt.Sprintf("=%d", 1+rng.Intn(5)))
}

// XMarkForest generates a collection of XMark documents whose node counts
// sum to approximately totalNodes, split evenly over numDocs documents.
// Each document gets a distinct sub-seed, so documents differ structurally
// but share vocabulary and schema (like a real corpus).
func XMarkForest(seed int64, numDocs, totalNodes int) []*tree.Tree {
	if numDocs < 1 {
		panic("gen: numDocs must be >= 1")
	}
	per := totalNodes / numDocs
	if per < 30 {
		per = 30
	}
	out := make([]*tree.Tree, numDocs)
	for i := range out {
		out[i] = XMark(seed+int64(i)*7919, per)
	}
	return out
}
