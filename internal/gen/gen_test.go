package gen

import (
	"math/rand"
	"testing"

	"pqgram/internal/edit"
	"pqgram/internal/tree"
)

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(42, 500)
	b := XMark(42, 500)
	if !tree.Equal(a, b) {
		t.Fatal("XMark not deterministic for equal seeds")
	}
	c := XMark(43, 500)
	if tree.EqualLabels(a, c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestXMarkSizeAndShape(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		tr := XMark(7, n)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Size() < n {
			t.Fatalf("size %d below budget %d", tr.Size(), n)
		}
		if tr.Size() > n+200 {
			t.Fatalf("size %d overshoots budget %d", tr.Size(), n)
		}
		if tr.Root().Label() != "site" {
			t.Fatal("root should be site")
		}
		if h := tr.Height(); h < 4 {
			t.Fatalf("XMark height = %d, want nested structure", h)
		}
	}
}

func TestDBLPDeterministicAndShape(t *testing.T) {
	a := DBLP(1, 2000)
	b := DBLP(1, 2000)
	if !tree.Equal(a, b) {
		t.Fatal("DBLP not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Root().Label() != "dblp" {
		t.Fatal("root should be dblp")
	}
	// DBLP is wide and shallow: huge root fanout, small height.
	if a.Root().Fanout() < 100 {
		t.Fatalf("root fanout = %d, want wide root", a.Root().Fanout())
	}
	if h := a.Height(); h > 3 {
		t.Fatalf("height = %d, want shallow (<= 3)", h)
	}
}

func TestXMarkForest(t *testing.T) {
	docs := XMarkForest(5, 8, 4000)
	if len(docs) != 8 {
		t.Fatalf("%d docs", len(docs))
	}
	total := 0
	for i, d := range docs {
		if err := d.Validate(); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		total += d.Size()
	}
	if total < 4000 || total > 4000*2 {
		t.Fatalf("total nodes = %d, want around 4000", total)
	}
	if tree.EqualLabels(docs[0], docs[1]) {
		t.Fatal("forest documents should differ")
	}
}

func TestRandomScriptProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		tr := RandomTree(rng, 5+rng.Intn(40))
		orig := tr.Clone()
		script, log, err := RandomScript(rng, tr, 1+rng.Intn(20), DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if len(script) != len(log) {
			t.Fatal("script/log length mismatch")
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := edit.CheckFreshIDs(orig, script); err != nil {
			t.Fatalf("script reuses IDs: %v", err)
		}
		// The log must undo the script exactly.
		if err := log.Undo(tr); err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(tr, orig) {
			t.Fatal("log does not undo script")
		}
	}
}

func TestRandomScriptMixes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := RandomTree(rng, 50)
	script, _, err := RandomScript(rng, tr, 40, OpMix{Rename: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range script {
		if op.Kind != edit.Rename {
			t.Fatalf("rename-only mix produced %v", op)
		}
	}
	tr2 := RandomTree(rng, 50)
	script2, _, err := RandomScript(rng, tr2, 40, OpMix{Insert: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range script2 {
		if op.Kind != edit.Insert {
			t.Fatalf("insert-only mix produced %v", op)
		}
	}
}

func TestRandomScriptZeroMixFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := RandomTree(rng, 20)
	if _, _, err := RandomScript(rng, tr, 5, OpMix{}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbLeavesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := XMark(3, 300)
	orig := tr.Format()
	p, log, err := Perturb(rng, tr, 10, DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Format() != orig {
		t.Fatal("Perturb mutated the original")
	}
	if len(log) != 10 {
		t.Fatalf("log length = %d", len(log))
	}
	if p.Format() == orig {
		t.Fatal("Perturb returned an identical tree (10 ops should change something)")
	}
}

func TestRandomTreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 17, 100} {
		tr := RandomTree(rng, n)
		if tr.Size() != n {
			t.Fatalf("size = %d, want %d", tr.Size(), n)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestXMLSafeScriptsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		var doc *tree.Tree
		if seed%2 == 0 {
			doc = XMark(seed, 400)
		} else {
			doc = DBLP(seed, 400)
		}
		rng := rand.New(rand.NewSource(seed))
		if _, _, err := RandomScript(rng, doc, 40, XMLSafeMix); err != nil {
			t.Fatal(err)
		}
		if err := doc.Validate(); err != nil {
			t.Fatal(err)
		}
		// No adjacent text siblings, no attrs behind non-attrs, no
		// children under data leaves.
		doc.PreOrder(func(n *tree.Node) bool {
			kids := n.Children()
			seenNonAttr := false
			for i, c := range kids {
				l := c.Label()
				if isText(n.Label()) || isAttr(n.Label()) {
					t.Fatalf("seed %d: data leaf %q has children", seed, n.Label())
				}
				if isAttr(l) && seenNonAttr {
					t.Fatalf("seed %d: attribute %q behind non-attribute child", seed, l)
				}
				if !isAttr(l) {
					seenNonAttr = true
				}
				if i > 0 && isText(l) && isText(kids[i-1].Label()) {
					t.Fatalf("seed %d: adjacent text siblings", seed)
				}
			}
			return true
		})
	}
}

func TestSetIDsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tr := RandomTree(rng, 30)
	ids := tr.PreorderIDs()
	// Shift all IDs.
	shifted := make([]tree.NodeID, len(ids))
	for i, id := range ids {
		shifted[i] = id + 1000
	}
	if err := tr.SetIDs(shifted); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.PreorderIDs()
	for i := range got {
		if got[i] != shifted[i] {
			t.Fatalf("id %d = %d, want %d", i, got[i], shifted[i])
		}
	}
	// New nodes must not collide after renumbering.
	n := tr.AddChild(tr.Root(), "fresh")
	if n.ID() <= 1000+tree.NodeID(len(ids)) {
		t.Fatalf("fresh id %d collides with renumbered range", n.ID())
	}
}
