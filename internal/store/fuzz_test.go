package store

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the index loader: it must never panic
// and must either reject the input or return a structurally sound forest.
func FuzzLoad(f *testing.F) {
	// Seed with a real file and a few mutations.
	fo := sampleFuzzForest()
	var buf bytes.Buffer
	if err := Save(&buf, fo); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PQGI"))
	f.Add(valid[:len(valid)/2])
	truncated := append([]byte(nil), valid...)
	truncated[7] ^= 0x40
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: must be internally consistent.
		if err := g.SelfCheck(); err != nil {
			t.Fatalf("loaded forest fails self check: %v", err)
		}
	})
}

func sampleFuzzForest() *forestAlias {
	f := newForest()
	f.AddIndex("a", indexOf("x", "y", "x"))
	f.AddIndex("b", indexOf("y", "z"))
	return f
}
