package store

import (
	"pqgram/internal/forest"
	"pqgram/internal/profile"
)

// Aliases and helpers shared by the fuzz target.
type forestAlias = forest.Index

func newForest() *forestAlias { return forest.New(profile.Params{P: 3, Q: 3}) }

func indexOf(labels ...string) profile.Index {
	idx := make(profile.Index)
	for _, l := range labels {
		idx.Add(profile.TupleOfLabels(l, l, l, "*", "*", "*"))
	}
	return idx
}
