// Segment files: the immutable on-disk runs of the segmented store
// (segstore.go). A segment holds a sorted set of documents — their full
// pq-gram bags and an inverted posting index over them — plus the
// tombstones that were pending when it was flushed, a bloom filter over
// its distinct label-tuple fingerprints, and a whole-file crc32. The
// exact byte layout is specified in STORAGE.md; this file is its
// reference implementation and the two must not drift.
//
// Layout (all integers unsigned varints unless noted; sections in file
// order, section offsets recorded in the fixed-size footer):
//
//	header:  magic "PQGS" | version byte | p | q | seq
//	docs:    numDocs × ( idLen | id | size | distinct | bagLen )   ascending id
//	tombs:   numTombs × ( idLen | id )                             ascending id
//	bags:    per doc, in doc-table order:
//	           distinct × ( tuple delta | cnt )                    ascending tuple
//	posts:   blocks of ≤ segBlockTuples tuples, each self-contained:
//	           numTuples × ( tuple delta (first absolute) | listLen |
//	                         listLen × ( docRef delta (first absolute) | cnt ) )
//	fences:  numBlocks × ( firstTuple delta | blockOff delta | blockLen )
//	bloom:   numWords | numWords × word (uint64 BE)
//	footer:  docsOff bagsOff postsOff fencesOff bloomOff (5 × uint64 BE)
//	         | crc32-IEEE of all preceding bytes (BE) | trailer "SGPQ"
//
// Doc references in posting lists are indexes into the segment's own doc
// table, so a posting entry costs one or two bytes instead of repeating
// the document id. Opening a segment streams the whole file once through
// the checksum while retaining only the doc table, tombstones, fences and
// bloom filter in memory; bags and posting blocks are read positionally
// afterwards through a small decoded-block cache.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"pqgram/internal/fsio"
	"pqgram/internal/profile"
)

var (
	segMagic   = [4]byte{'P', 'Q', 'G', 'S'}
	segTrailer = [4]byte{'S', 'G', 'P', 'Q'}
)

const (
	segVersion = 1
	// segFooterLen is the fixed footer: five uint64 section offsets, the
	// crc32, and the trailer magic.
	segFooterLen = 5*8 + 4 + 4
	// segBlockTuples caps the tuples per posting block: small enough that
	// decoding one block on a point probe stays cheap, large enough that
	// the fence index stays tiny.
	segBlockTuples = 64
	// segBlockCacheCap bounds the decoded posting blocks retained per
	// segment (FIFO eviction). Tuple fingerprints are uniformly hashed,
	// so a similarity query's probes scatter across the whole posting
	// section rather than clustering — the cache must hold a segment's
	// working set of blocks, not a handful of hot ones, or every lookup
	// re-decodes the section from the file. At 64 tuples per block this
	// covers ~256k distinct tuples per segment, a few thousand documents,
	// while keeping the worst-case decoded footprint bounded.
	segBlockCacheCap = 4096
)

// segDoc is one document handed to writeSegment.
type segDoc struct {
	id  string
	bag profile.Index
}

// segDocMeta is a doc-table entry of an open segment.
type segDocMeta struct {
	id       string
	size     int   // bag size (sum of counts)
	distinct int   // distinct tuples in the bag
	bagOff   int64 // offset of the bag region, relative to bagsOff
	bagLen   int64
}

// segFence locates one posting block: the first tuple it contains and its
// byte extent relative to the posts section start.
type segFence struct {
	first uint64
	off   int64
	n     int64
}

// segPosting is one decoded posting-list entry: a doc-table index and the
// tuple's count in that document.
type segPosting struct {
	ref int32
	cnt uint32
}

// segBlock is one decoded posting block.
type segBlock struct {
	tuples []uint64
	lists  [][]segPosting
}

// segment is an open, verified segment file. The metadata fields are
// immutable after openSegment; positioned reads of bags and posting
// blocks are serialized by mu.
type segment struct {
	fs   fsio.FS
	path string
	seq  uint64
	crc  uint32
	size int64

	docs  []segDocMeta
	byID  map[string]int
	tombs []string

	fences []segFence
	bloom  *bloomFilter

	bagsOff  int64
	postsOff int64

	mu    sync.Mutex
	f     fsio.File         // guarded by mu
	cache map[int]*segBlock // guarded by mu
	order []int             // guarded by mu; FIFO eviction order of cache keys
}

// --- counting checksum streams ---------------------------------------

// countingCRCWriter folds position tracking into the checksummed write
// stream, so section offsets are discovered as the writer emits them.
type countingCRCWriter struct {
	w   *bufio.Writer
	h   hash.Hash32
	n   int64
	err error
}

func (c *countingCRCWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.h.Write(p[:n])
	c.n += int64(n)
	c.err = err
	return n, err
}

// countingCRCReader is the read-side twin.
type countingCRCReader struct {
	r *bufio.Reader
	h hash.Hash32
	n int64
}

func (c *countingCRCReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// ReadByte lets binary.ReadUvarint consume single bytes through the crc.
func (c *countingCRCReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
		c.n++
	}
	return b, err
}

func readFull(r io.Reader, p []byte) (int, error) { return io.ReadFull(r, p) }

// --- writer -----------------------------------------------------------

// encodeBag writes one bag region: ascending tuples, delta-encoded, each
// followed by its count. The same per-document encoding as the v1
// snapshot, minus the tuple-count prefix (the doc table carries it).
func encodeBag(buf *bytes.Buffer, bag profile.Index, tuples []uint64) {
	tuples = tuples[:0]
	for lt := range bag {
		tuples = append(tuples, uint64(lt))
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
	prev := uint64(0)
	for _, lt := range tuples {
		putUvarint(buf, lt-prev)
		prev = lt
		putUvarint(buf, uint64(bag[profile.LabelTuple(lt)]))
	}
}

// writeSegment writes a segment file via the atomic temp+fsync+rename+
// dir-fsync protocol and returns its content crc32 and whether the rename
// happened. docs must be sorted ascending by id with non-nil bags; tombs
// must be sorted ascending and disjoint from the doc ids — a segment that
// both stores and deletes the same id would be ambiguous.
func writeSegment(fsys fsio.FS, path string, pr profile.Params, seq uint64, docs []segDoc, tombs []string) (crc uint32, renamed bool, err error) {
	if len(docs) >= 1<<31 {
		return 0, false, fmt.Errorf("store: segment doc count %d exceeds doc-ref range", len(docs))
	}
	// Pre-encode the bag regions (the doc table needs their lengths) and
	// invert the postings. Iterating docs in table order keeps every
	// per-tuple posting list sorted by doc reference with no extra sort.
	bagBufs := make([]bytes.Buffer, len(docs))
	postings := make(map[uint64][]segPosting)
	var scratch []uint64
	for i, d := range docs {
		encodeBag(&bagBufs[i], d.bag, scratch)
		for lt, cnt := range d.bag {
			postings[uint64(lt)] = append(postings[uint64(lt)], segPosting{ref: int32(i), cnt: uint32(cnt)})
		}
	}
	tuples := make([]uint64, 0, len(postings))
	for lt := range postings {
		tuples = append(tuples, lt)
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })

	bloom := newBloom(len(tuples))
	for _, lt := range tuples {
		bloom.add(lt)
	}

	// Posting blocks: each self-contained (first tuple and first doc ref
	// absolute), so a point probe decodes one block and nothing else.
	type fence struct {
		first uint64
		off   int64
		n     int64
	}
	var blocks bytes.Buffer
	var fences []fence
	for start := 0; start < len(tuples); start += segBlockTuples {
		end := start + segBlockTuples
		if end > len(tuples) {
			end = len(tuples)
		}
		off := int64(blocks.Len())
		prevT := uint64(0)
		for _, lt := range tuples[start:end] {
			putUvarint(&blocks, lt-prevT)
			prevT = lt
			list := postings[lt]
			putUvarint(&blocks, uint64(len(list)))
			prevRef := uint64(0)
			for _, pe := range list {
				putUvarint(&blocks, uint64(pe.ref)-prevRef)
				prevRef = uint64(pe.ref)
				putUvarint(&blocks, uint64(pe.cnt))
			}
		}
		fences = append(fences, fence{first: tuples[start], off: off, n: int64(blocks.Len()) - off})
	}

	dir := dirOf(path)
	tmp, err := fsys.CreateTemp(dir, ".pqgram-*")
	if err != nil {
		return 0, false, err
	}
	tmpName := tmp.Name()
	closed := false
	defer func() {
		if !closed {
			// Failure-path cleanup: the write already returned its error
			// and the temp file is about to be removed.
			tmp.Close() //pqlint:allow errcheck-durability failure-path cleanup of a doomed temp file
		}
		// Best effort; after a successful rename the name is gone already.
		fsys.Remove(tmpName) //pqlint:allow errcheck-durability best-effort removal; after rename the name no longer exists
	}()

	cw := &countingCRCWriter{w: bufio.NewWriter(tmp), h: crc32.NewIEEE()}
	cw.Write(segMagic[:])
	cw.Write([]byte{segVersion})
	putUvarint(cw, uint64(pr.P))
	putUvarint(cw, uint64(pr.Q))
	putUvarint(cw, seq)

	docsOff := cw.n
	putUvarint(cw, uint64(len(docs)))
	for i, d := range docs {
		putUvarint(cw, uint64(len(d.id)))
		io.WriteString(cw, d.id)
		putUvarint(cw, uint64(d.bag.Size()))
		putUvarint(cw, uint64(len(d.bag)))
		putUvarint(cw, uint64(bagBufs[i].Len()))
	}
	putUvarint(cw, uint64(len(tombs)))
	for _, id := range tombs {
		putUvarint(cw, uint64(len(id)))
		io.WriteString(cw, id)
	}

	bagsOff := cw.n
	for i := range bagBufs {
		cw.Write(bagBufs[i].Bytes())
	}

	postsOff := cw.n
	cw.Write(blocks.Bytes())

	fencesOff := cw.n
	putUvarint(cw, uint64(len(fences)))
	prevFirst, prevOff := uint64(0), int64(0)
	for _, fe := range fences {
		putUvarint(cw, fe.first-prevFirst)
		prevFirst = fe.first
		putUvarint(cw, uint64(fe.off-prevOff))
		prevOff = fe.off
		putUvarint(cw, uint64(fe.n))
	}

	bloomOff := cw.n
	bloom.marshalInto(cw)

	var foot [5 * 8]byte
	for i, off := range []int64{docsOff, bagsOff, postsOff, fencesOff, bloomOff} {
		binary.BigEndian.PutUint64(foot[i*8:], uint64(off))
	}
	cw.Write(foot[:])
	if cw.err != nil {
		return 0, false, cw.err
	}
	crc = cw.h.Sum32()
	var tail [8]byte
	binary.BigEndian.PutUint32(tail[:4], crc)
	copy(tail[4:], segTrailer[:])
	if _, err := cw.w.Write(tail[:]); err != nil {
		return 0, false, err
	}
	if err := cw.w.Flush(); err != nil {
		return 0, false, err
	}
	// Data must be durable before the rename publishes the name.
	if err := tmp.Sync(); err != nil {
		return 0, false, err
	}
	closed = true
	if err := tmp.Close(); err != nil {
		return 0, false, err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return 0, false, err
	}
	if err := fsio.SyncDir(fsys, dir); err != nil {
		return crc, true, err
	}
	return crc, true, nil
}

// --- reader -----------------------------------------------------------

// openSegment opens and fully verifies a segment file: one sequential
// pass computes the whole-file checksum while parsing the doc table,
// tombstones, fences and bloom filter; bags and posting blocks are only
// length-validated here and read positionally later. pr and seq must
// match the file's header — the manifest says what the segment claims
// to be, and the file has to agree.
func openSegment(fsys fsio.FS, path string, pr profile.Params, seq uint64) (*segment, error) {
	fh, err := fsio.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	s, err := parseSegment(fsys, fh, path, pr, seq)
	if err != nil {
		// Failure-path cleanup of a read-only handle whose content was
		// rejected anyway.
		fh.Close() //pqlint:allow errcheck-durability failure-path cleanup of a rejected read-only handle
		return nil, err
	}
	return s, nil
}

func parseSegment(fsys fsio.FS, fh fsio.File, path string, pr profile.Params, seq uint64) (*segment, error) {
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < segFooterLen+5 {
		return nil, fmt.Errorf("store: segment %s: truncated (%d bytes)", path, size)
	}
	if _, err := fh.Seek(size-segFooterLen, io.SeekStart); err != nil {
		return nil, err
	}
	var foot [segFooterLen]byte
	if _, err := io.ReadFull(fh, foot[:]); err != nil {
		return nil, fmt.Errorf("store: segment %s: reading footer: %w", path, err)
	}
	if [4]byte(foot[44:48]) != segTrailer {
		return nil, fmt.Errorf("store: segment %s: bad trailer %q", path, foot[44:48])
	}
	var offs [5]int64
	for i := range offs {
		v := binary.BigEndian.Uint64(foot[i*8:])
		if v > uint64(size-segFooterLen) {
			return nil, fmt.Errorf("store: segment %s: section offset %d out of range", path, v)
		}
		offs[i] = int64(v)
		if i > 0 && offs[i] < offs[i-1] {
			return nil, fmt.Errorf("store: segment %s: section offsets not ascending", path)
		}
	}
	docsOff, bagsOff, postsOff, fencesOff, bloomOff := offs[0], offs[1], offs[2], offs[3], offs[4]
	wantCRC := binary.BigEndian.Uint32(foot[40:44])

	if _, err := fh.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	cr := &countingCRCReader{r: bufio.NewReaderSize(fh, 1<<16), h: crc32.NewIEEE()}
	var hdr [5]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: segment %s: reading header: %w", path, err)
	}
	if [4]byte(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad magic %q", path, hdr[:4])
	}
	if hdr[4] != segVersion {
		return nil, fmt.Errorf("store: segment %s: unsupported version %d", path, hdr[4])
	}
	p, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading p: %w", path, err)
	}
	q, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading q: %w", path, err)
	}
	if int(p) != pr.P || int(q) != pr.Q {
		return nil, fmt.Errorf("store: segment %s: params %d,%d do not match index %d,%d", path, p, q, pr.P, pr.Q)
	}
	gotSeq, err := getUvarint(cr, 1<<62)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading seq: %w", path, err)
	}
	if gotSeq != seq {
		return nil, fmt.Errorf("store: segment %s: header seq %d, manifest says %d", path, gotSeq, seq)
	}
	if cr.n != docsOff {
		return nil, fmt.Errorf("store: segment %s: doc table at %d, footer says %d", path, cr.n, docsOff)
	}

	numDocs, err := getUvarint(cr, 1<<31-1)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading doc count: %w", path, err)
	}
	hint := numDocs
	if hint > 1<<16 {
		hint = 1 << 16
	}
	docs := make([]segDocMeta, 0, hint)
	byID := make(map[string]int, hint)
	var bagOff int64
	for i := uint64(0); i < numDocs; i++ {
		id, err := readSegString(cr)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: doc %d: %w", path, i, err)
		}
		if i > 0 && id <= docs[i-1].id {
			return nil, fmt.Errorf("store: segment %s: doc ids not ascending at %q", path, id)
		}
		dsize, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: doc %q: reading size: %w", path, id, err)
		}
		distinct, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: doc %q: reading distinct: %w", path, id, err)
		}
		bagLen, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: doc %q: reading bag length: %w", path, id, err)
		}
		docs = append(docs, segDocMeta{id: id, size: int(dsize), distinct: int(distinct), bagOff: bagOff, bagLen: int64(bagLen)})
		byID[id] = int(i)
		bagOff += int64(bagLen)
	}
	numTombs, err := getUvarint(cr, 1<<31-1)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading tombstone count: %w", path, err)
	}
	tombs := make([]string, 0, min64(numTombs, 1<<16))
	for i := uint64(0); i < numTombs; i++ {
		id, err := readSegString(cr)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: tombstone %d: %w", path, i, err)
		}
		if i > 0 && id <= tombs[i-1] {
			return nil, fmt.Errorf("store: segment %s: tombstones not ascending at %q", path, id)
		}
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("store: segment %s: %q is both stored and tombstoned", path, id)
		}
		tombs = append(tombs, id)
	}
	if cr.n != bagsOff {
		return nil, fmt.Errorf("store: segment %s: bags at %d, footer says %d", path, cr.n, bagsOff)
	}
	if bagOff != postsOff-bagsOff {
		return nil, fmt.Errorf("store: segment %s: bag section is %d bytes, doc table sums to %d", path, postsOff-bagsOff, bagOff)
	}
	// Bags and posting blocks are checksummed but not decoded at open.
	if _, err := io.CopyN(io.Discard, cr, fencesOff-bagsOff); err != nil {
		return nil, fmt.Errorf("store: segment %s: checksumming data sections: %w", path, err)
	}

	numBlocks, err := getUvarint(cr, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading fence count: %w", path, err)
	}
	fences := make([]segFence, 0, min64(numBlocks, 1<<16))
	prevFirst, off := uint64(0), int64(0)
	for i := uint64(0); i < numBlocks; i++ {
		fd, err := getUvarint(cr, 1<<63)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: fence %d: %w", path, i, err)
		}
		if i > 0 && fd == 0 {
			return nil, fmt.Errorf("store: segment %s: fence %d: duplicate first tuple", path, i)
		}
		od, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: fence %d: %w", path, i, err)
		}
		n, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: fence %d: %w", path, i, err)
		}
		prevFirst += fd
		off += int64(od)
		fences = append(fences, segFence{first: prevFirst, off: off, n: int64(n)})
		if off+int64(n) > fencesOff-postsOff {
			return nil, fmt.Errorf("store: segment %s: fence %d extends past posts section", path, i)
		}
	}
	if len(fences) > 0 {
		last := fences[len(fences)-1]
		if last.off+last.n != fencesOff-postsOff {
			return nil, fmt.Errorf("store: segment %s: posts section is %d bytes, fences cover %d", path, fencesOff-postsOff, last.off+last.n)
		}
	} else if fencesOff != postsOff {
		return nil, fmt.Errorf("store: segment %s: %d posting bytes with no fences", path, fencesOff-postsOff)
	}
	if cr.n != bloomOff {
		return nil, fmt.Errorf("store: segment %s: bloom at %d, footer says %d", path, cr.n, bloomOff)
	}
	bloom, err := unmarshalBloom(cr)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading bloom filter: %w", path, err)
	}
	if cr.n != size-segFooterLen {
		return nil, fmt.Errorf("store: segment %s: bloom ends at %d, footer starts at %d", path, cr.n, size-segFooterLen)
	}
	// The footer's offset words are covered by the checksum too.
	var footAgain [5 * 8]byte
	if _, err := io.ReadFull(cr, footAgain[:]); err != nil {
		return nil, fmt.Errorf("store: segment %s: re-reading footer: %w", path, err)
	}
	if got := cr.h.Sum32(); got != wantCRC {
		return nil, fmt.Errorf("store: segment %s: checksum mismatch: file %08x, computed %08x", path, wantCRC, got)
	}

	return &segment{
		fs:       fsys,
		path:     path,
		seq:      seq,
		crc:      wantCRC,
		size:     size,
		docs:     docs,
		byID:     byID,
		tombs:    tombs,
		fences:   fences,
		bloom:    bloom,
		bagsOff:  bagsOff,
		postsOff: postsOff,
		f:        fh,
		cache:    make(map[int]*segBlock),
	}, nil
}

func readSegString(cr *countingCRCReader) (string, error) {
	n, err := getUvarint(cr, 1<<20)
	if err != nil {
		return "", fmt.Errorf("reading id length: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr, buf); err != nil {
		return "", fmt.Errorf("reading id: %w", err)
	}
	return string(buf), nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// close releases the segment's file handle.
func (s *segment) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// readAt fills p from the segment file at off. Callers hold s.mu.
//
//pqlint:locked s.mu
func (s *segment) readAt(p []byte, off int64) error {
	if s.f == nil {
		return fmt.Errorf("store: segment %s: read after close", s.path)
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	_, err := io.ReadFull(s.f, p)
	return err
}

// bag reads and decodes one document's bag. The returned index is freshly
// allocated and owned by the caller.
func (s *segment) bag(ref int) (profile.Index, error) {
	if ref < 0 || ref >= len(s.docs) {
		return nil, fmt.Errorf("store: segment %s: doc ref %d out of range", s.path, ref)
	}
	d := s.docs[ref]
	buf := make([]byte, d.bagLen)
	s.mu.Lock()
	err := s.readAt(buf, s.bagsOff+d.bagOff)
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: reading bag of %q: %w", s.path, d.id, err)
	}
	br := bytes.NewReader(buf)
	idx := make(profile.Index, d.distinct)
	prev := uint64(0)
	for j := 0; j < d.distinct; j++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: bag of %q: tuple %d: %w", s.path, d.id, j, err)
		}
		if j > 0 && delta == 0 {
			return nil, fmt.Errorf("store: segment %s: bag of %q: duplicate tuple", s.path, d.id)
		}
		prev += delta
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: bag of %q: count %d: %w", s.path, d.id, j, err)
		}
		if cnt == 0 {
			return nil, fmt.Errorf("store: segment %s: bag of %q: zero count", s.path, d.id)
		}
		idx[profile.LabelTuple(prev)] = int(cnt)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("store: segment %s: bag of %q: %d trailing bytes", s.path, d.id, br.Len())
	}
	return idx, nil
}

// block returns decoded posting block bi through the FIFO block cache.
func (s *segment) block(bi int) (*segBlock, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.cache[bi]; ok {
		return b, nil
	}
	fe := s.fences[bi]
	buf := make([]byte, fe.n)
	if err := s.readAt(buf, s.postsOff+fe.off); err != nil {
		return nil, fmt.Errorf("store: segment %s: reading block %d: %w", s.path, bi, err)
	}
	b, err := decodeBlock(buf, len(s.docs))
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: block %d: %w", s.path, bi, err)
	}
	if len(b.tuples) == 0 || b.tuples[0] != fe.first {
		return nil, fmt.Errorf("store: segment %s: block %d does not start at its fence tuple", s.path, bi)
	}
	if len(s.cache) >= segBlockCacheCap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.cache, oldest)
	}
	s.cache[bi] = b
	s.order = append(s.order, bi)
	return b, nil
}

func decodeBlock(buf []byte, numDocs int) (*segBlock, error) {
	br := bytes.NewReader(buf)
	b := &segBlock{}
	// All posting entries land in one backing array; the per-tuple lists
	// become views into it once decoding is done. A block is decoded on
	// every cache miss of every probe, so the allocation count matters
	// more here than anywhere else in the read path.
	var entries []segPosting
	var starts []int
	prevT := uint64(0)
	for br.Len() > 0 {
		if len(b.tuples) >= segBlockTuples {
			return nil, fmt.Errorf("more than %d tuples", segBlockTuples)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if len(b.tuples) > 0 && delta == 0 {
			return nil, fmt.Errorf("duplicate tuple")
		}
		prevT += delta
		listLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if listLen == 0 || listLen > uint64(numDocs) {
			return nil, fmt.Errorf("posting list length %d out of range", listLen)
		}
		starts = append(starts, len(entries))
		prevRef := uint64(0)
		for j := uint64(0); j < listLen; j++ {
			rd, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if j > 0 && rd == 0 {
				return nil, fmt.Errorf("duplicate doc ref")
			}
			prevRef += rd
			if prevRef >= uint64(numDocs) {
				return nil, fmt.Errorf("doc ref %d out of range", prevRef)
			}
			cnt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if cnt == 0 {
				return nil, fmt.Errorf("zero count")
			}
			entries = append(entries, segPosting{ref: int32(prevRef), cnt: uint32(cnt)})
		}
		b.tuples = append(b.tuples, prevT)
	}
	b.lists = make([][]segPosting, len(b.tuples))
	for i := range b.lists {
		end := len(entries)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b.lists[i] = entries[starts[i]:end:end]
	}
	return b, nil
}

// fenceFor returns the index of the block that could contain lt, or -1.
func (s *segment) fenceFor(lt uint64) int {
	// Last fence with first <= lt.
	lo, hi := 0, len(s.fences)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.fences[mid].first <= lt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// probeBatch looks up a sorted slice of tuple fingerprints and calls hit
// for each one present, with the decoded posting list. The monotone fence
// cursor plus the block cache means each needed block is decoded at most
// once per batch even when the cache is cold.
func (s *segment) probeBatch(sorted []uint64, hit func(lt uint64, list []segPosting)) (scanned int64, err error) {
	bi := -1
	var blk *segBlock
	for _, lt := range sorted {
		fi := s.fenceFor(lt)
		if fi < 0 {
			continue
		}
		if fi != bi {
			blk, err = s.block(fi)
			if err != nil {
				return scanned, err
			}
			bi = fi
		}
		// Binary search lt within the block.
		lo, hi := 0, len(blk.tuples)
		for lo < hi {
			mid := (lo + hi) / 2
			if blk.tuples[mid] < lt {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(blk.tuples) && blk.tuples[lo] == lt {
			scanned += int64(len(blk.lists[lo]))
			hit(lt, blk.lists[lo])
		}
	}
	return scanned, nil
}

// forEachPosting iterates every posting block in ascending tuple order.
func (s *segment) forEachPosting(fn func(lt uint64, list []segPosting) error) error {
	for bi := range s.fences {
		blk, err := s.block(bi)
		if err != nil {
			return err
		}
		for i, lt := range blk.tuples {
			if err := fn(lt, blk.lists[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
