// Instrumentation of the segmented store: journal append/replay counters
// shared with the monolithic store, plus segment lifecycle counters
// (flushes, compactions) and shape gauges (segment count and bytes,
// resident vs evicted documents). Like everywhere else, metrics are
// opt-in through a nil-safe collector resolved once into preallocated
// handles.

package store

import (
	"pqgram/internal/obs"
)

// segMetrics holds the preresolved metric handles of one segmented store.
type segMetrics struct {
	col *obs.Collector

	appends     *obs.Counter   // store_journal_appends
	appendBytes *obs.Counter   // store_journal_append_bytes
	appendNS    *obs.Histogram // store_journal_append_ns

	replays       *obs.Counter   // store_journal_replays
	replayRecords *obs.Counter   // store_journal_replay_records
	replayBytes   *obs.Counter   // store_journal_replay_bytes
	replayNS      *obs.Histogram // store_journal_replay_ns

	replayTorn      *obs.Counter // store_replay_torn_bytes
	replaySkipped   *obs.Counter // store_replay_skipped_records
	replayStale     *obs.Counter // store_replay_stale_discards
	replayResets    *obs.Counter // store_replay_journal_resets
	replayDiscarded *obs.Counter // store_replay_discarded_bytes

	flushes     *obs.Counter   // store_segment_flushes
	flushedDocs *obs.Counter   // store_segment_flushed_docs
	flushNS     *obs.Histogram // store_segment_flush_ns
	compactions *obs.Counter   // store_segment_compactions
	compactNS   *obs.Histogram // store_segment_compact_ns

	segCount     *obs.Gauge // store_segment_count (live segments)
	segBytes     *obs.Gauge // store_segment_bytes (sum of live segment files)
	residentDocs *obs.Gauge // store_resident_docs (memtable population)
	evictedDocs  *obs.Gauge // store_evicted_docs (segment-served population)
	journalBytes *obs.Gauge // store_journal_bytes (current journal length)
}

// SetCollector attaches (or, with nil, detaches) a metrics collector to
// the segmented store and to its in-memory forest. The journal replay
// that OpenSegmented performed is published into the replay metrics on
// first attach, exactly like the monolithic store's SetCollector.
func (s *Segmented) SetCollector(c *obs.Collector) {
	s.forest.SetCollector(c)
	if c == nil {
		s.obs.Store(nil)
		return
	}
	m := &segMetrics{
		col:             c,
		appends:         c.Counter("store_journal_appends"),
		appendBytes:     c.Counter("store_journal_append_bytes"),
		appendNS:        c.Histogram("store_journal_append_ns"),
		replays:         c.Counter("store_journal_replays"),
		replayRecords:   c.Counter("store_journal_replay_records"),
		replayBytes:     c.Counter("store_journal_replay_bytes"),
		replayNS:        c.Histogram("store_journal_replay_ns"),
		replayTorn:      c.Counter("store_replay_torn_bytes"),
		replaySkipped:   c.Counter("store_replay_skipped_records"),
		replayStale:     c.Counter("store_replay_stale_discards"),
		replayResets:    c.Counter("store_replay_journal_resets"),
		replayDiscarded: c.Counter("store_replay_discarded_bytes"),
		flushes:         c.Counter("store_segment_flushes"),
		flushedDocs:     c.Counter("store_segment_flushed_docs"),
		flushNS:         c.Histogram("store_segment_flush_ns"),
		compactions:     c.Counter("store_segment_compactions"),
		compactNS:       c.Histogram("store_segment_compact_ns"),
		segCount:        c.Gauge("store_segment_count"),
		segBytes:        c.Gauge("store_segment_bytes"),
		residentDocs:    c.Gauge("store_resident_docs"),
		evictedDocs:     c.Gauge("store_evicted_docs"),
		journalBytes:    c.Gauge("store_journal_bytes"),
	}
	r := s.recovery
	if r != (RecoveryInfo{}) {
		m.replays.Inc()
		m.replayRecords.Add(r.Records)
		m.replayBytes.Add(r.Bytes)
		m.replayNS.Observe(r.Duration.Nanoseconds())
		m.replayTorn.Add(r.TornBytes)
		m.replaySkipped.Add(r.SkippedRecords)
		m.replayDiscarded.Add(r.DiscardedBytes)
		if r.StaleJournal {
			m.replayStale.Inc()
		}
		if r.JournalReset {
			m.replayResets.Inc()
		}
		c.Event("journal replayed",
			"path", s.path,
			"records", r.Records,
			"bytes", r.Bytes,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale", r.StaleJournal,
			"dur", r.Duration)
		if tr := c.Tracer(); tr != nil {
			sp := obs.StartSpan("store.replay")
			sp.SetAttr("records", r.Records)
			sp.SetAttr("bytes", r.Bytes)
			sp.SetAttr("torn_bytes", r.TornBytes)
			sp.SetAttr("skipped_records", r.SkippedRecords)
			sp.SetAttr("discarded_bytes", r.DiscardedBytes)
			sp.SetAttr("stale_journal", boolAttr(r.StaleJournal))
			sp.SetAttr("journal_reset", boolAttr(r.JournalReset))
			sp.FinishWithDuration(r.Duration)
			tr.Publish(obs.TraceSnapshot{Root: sp.Snapshot()})
		}
	}
	if n, err := s.JournalSize(); err == nil {
		m.journalBytes.Set(n)
	}
	s.publishGauges(m)
	s.obs.Store(m)
}

// publishGauges refreshes the shape gauges from the current bookkeeping.
func (s *Segmented) publishGauges(m *segMetrics) {
	if m == nil {
		return
	}
	s.mu.RLock()
	var bytes int64
	for _, sg := range s.segs {
		bytes += sg.size
	}
	m.segCount.Set(int64(len(s.segs)))
	m.segBytes.Set(bytes)
	m.residentDocs.Set(int64(len(s.dirty)))
	m.evictedDocs.Set(int64(len(s.loc)))
	s.mu.RUnlock()
}

// Collector returns the attached collector, or nil.
func (s *Segmented) Collector() *obs.Collector {
	if m := s.obs.Load(); m != nil {
		return m.col
	}
	return nil
}
