package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

func newStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.pqg")
	s, err := CreateStore(path, p33)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestStoreAddRemoveUpdatePersist(t *testing.T) {
	s, path := newStore(t)
	doc := gen.XMark(1, 300)
	if err := s.Add("doc", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("doc", doc); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := s.Add("gone", tree.MustParse("a(b)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("gone"); err == nil {
		t.Fatal("double remove accepted")
	}

	// Incremental updates, journaled.
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 4; round++ {
		_, log, err := gen.RandomScript(rng, doc, 5+rng.Intn(10), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update("doc", doc, log); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: base + journal replay must reproduce the live state.
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Forest().Len() != 1 {
		t.Fatalf("reopened forest has %d trees", s2.Forest().Len())
	}
	want := profile.BuildIndex(doc, p33)
	if !s2.Forest().TreeIndex("doc").Equal(want) {
		t.Fatal("recovered bag differs from the live document's index")
	}
	if err := s2.Forest().SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUpdateJournalIsSmall(t *testing.T) {
	s, _ := newStore(t)
	doc := gen.DBLP(2, 5000)
	if err := s.Add("doc", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	before, err := s.JournalSize()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	_, log, err := gen.RandomScript(rng, doc, 5, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("doc", doc, log); err != nil {
		t.Fatal(err)
	}
	after, err := s.JournalSize()
	if err != nil {
		t.Fatal(err)
	}
	delta := after - before
	full, err := Size(s.Forest())
	if err != nil {
		t.Fatal(err)
	}
	// The persistent update cost must be a small fraction of the snapshot:
	// that is the "incrementally maintainable" promise made durable.
	if delta*10 > full {
		t.Fatalf("journal grew by %d bytes for 5 edits; full snapshot is %d", delta, full)
	}
}

func TestStoreCompact(t *testing.T) {
	s, path := newStore(t)
	doc := gen.XMark(4, 200)
	if err := s.Add("doc", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		_, log, err := gen.RandomScript(rng, doc, 5, gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update("doc", doc, log); err != nil {
			t.Fatal(err)
		}
	}
	big, _ := s.JournalSize()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	small, _ := s.JournalSize()
	if small >= big || small != int64(journalHeaderLen) {
		t.Fatalf("journal after compact = %d bytes (was %d)", small, big)
	}
	s.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Forest().TreeIndex("doc").Equal(profile.BuildIndex(doc, p33)) {
		t.Fatal("compacted state wrong after reopen")
	}
}

// TestStoreCrashRecovery simulates crashes by truncating the journal at
// every byte offset: reopening must always succeed and recover a state
// equal to some prefix of the committed operations.
func TestStoreCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pqg")
	s, err := CreateStore(path, p33)
	if err != nil {
		t.Fatal(err)
	}
	doc := gen.XMark(6, 150)
	// Committed states: after each operation, snapshot the expected bags.
	type state map[string]profile.Index
	snapshot := func(f *forest.Index) state {
		st := make(state)
		for _, id := range f.IDs() {
			st[id] = f.TreeIndex(id).Clone()
		}
		return st
	}
	var states []state
	var offsets []int64
	mark := func() {
		states = append(states, snapshot(s.Forest()))
		off, err := s.JournalSize()
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	mark()
	if err := s.Add("a", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	mark()
	work := doc.Clone()
	rng := rand.New(rand.NewSource(7))
	_, log, err := gen.RandomScript(rng, work, 8, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("a", work, log); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := s.Add("b", tree.MustParse("x(y z)")); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := s.Remove("b"); err != nil {
		t.Fatal(err)
	}
	mark()
	s.Close()

	full, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		cpath := filepath.Join(dir, fmt.Sprintf("c%d.pqg", cut))
		if err := copyFile(path, cpath); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cpath+".wal", full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := OpenStore(cpath)
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		got := snapshot(rs.Forest())
		rs.Close()
		// The recovered state must equal the committed state whose journal
		// offset is the largest one <= cut.
		wantIdx := 0
		for i, off := range offsets {
			if off <= int64(cut) {
				wantIdx = i
			}
		}
		want := states[wantIdx]
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d trees, want %d (state %d)", cut, len(got), len(want), wantIdx)
		}
		for id, bag := range want {
			if g, ok := got[id]; !ok || !g.Equal(bag) {
				t.Fatalf("cut %d: tree %q diverges from committed state %d", cut, id, wantIdx)
			}
		}
	}
}

func TestStoreRecoveredAppendable(t *testing.T) {
	// After recovering from a torn tail, new appends must work.
	path := filepath.Join(t.TempDir(), "idx.pqg")
	s, err := CreateStore(path, p33)
	if err != nil {
		t.Fatal(err)
	}
	s.Add("a", tree.MustParse("r(x)"))
	s.Add("b", tree.MustParse("r(y)"))
	s.Close()
	// Tear the last record.
	wal, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".wal", wal[:len(wal)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Forest().Len() != 1 || !s2.Forest().Has("a") {
		t.Fatalf("recovered %d trees", s2.Forest().Len())
	}
	if err := s2.Add("c", tree.MustParse("r(z)")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Forest().Len() != 2 || !s3.Forest().Has("c") {
		t.Fatal("append after recovery lost")
	}
}

func TestStoreSyncMode(t *testing.T) {
	s, _ := newStore(t)
	s.SetSync(true)
	if err := s.Add("a", tree.MustParse("r(x)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenStoreMissingBase(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "nope.pqg")); err == nil {
		t.Fatal("missing base accepted")
	}
}

func TestStoreForeignJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pqg")
	if err := SaveFile(path, forest.New(p33)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".wal", []byte("garbage!"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Forest().Len() != 0 {
		t.Fatal("foreign journal produced trees")
	}
	if err := s.Add("a", tree.MustParse("r(x)")); err != nil {
		t.Fatal(err)
	}
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// TestStoreAddAllJournaled: a parallel bulk build journals every addition,
// survives a reopen without compaction, and rejects bad batches before
// touching the journal.
func TestStoreAddAllJournaled(t *testing.T) {
	s, path := newStore(t)
	docs := make([]forest.Doc, 24)
	for i := range docs {
		docs[i] = forest.Doc{ID: fmt.Sprintf("doc-%02d", i), Tree: gen.DBLP(int64(i%5), 60+i)}
	}
	if err := s.AddAll(docs, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAll(docs[:1], 1); err == nil {
		t.Fatal("re-adding an indexed ID accepted")
	}
	dup := []forest.Doc{
		{ID: "fresh", Tree: tree.MustParse("a")},
		{ID: "fresh", Tree: tree.MustParse("b")},
	}
	if err := s.AddAll(dup, 2); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
	js, err := s.JournalSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if js2, _ := s2.JournalSize(); js2 != js {
		t.Fatalf("journal size changed across reopen: %d -> %d (failed batches leaked records?)", js, js2)
	}
	f := s2.Forest()
	if f.Len() != len(docs) {
		t.Fatalf("recovered %d trees, want %d", f.Len(), len(docs))
	}
	for _, d := range docs {
		if !f.TreeIndex(d.ID).Equal(profile.BuildIndex(d.Tree, p33)) {
			t.Fatalf("recovered bag of %s differs", d.ID)
		}
	}
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
