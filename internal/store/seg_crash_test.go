package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/tree"
)

// The segmented engine's crash-consistency harness, the sibling of
// crash_test.go: a scripted workload (adds, updates that promote evicted
// documents, removes that tombstone them, auto- and forced flushes,
// compactions) runs against the tracing in-memory filesystem; then power
// is cut at every operation boundary of the write trace and at sampled
// interior byte offsets of every write — which places cuts inside segment
// writes, the manifest's temp-fsync-rename replace, journal resets and
// appends, and the obsolete-file removals. After each cut the store is
// reopened from the wreckage and checked:
//
//   - recovery never fails once the store exists on disk, and never
//     resurrects a stale segment: the recovered logical state is the
//     committed state after exactly the last acked operation or the one
//     in flight — flushes and compactions are invisible to it;
//   - the recovered index answers Lookup, SimilarityJoin and metric
//     top-k identically to a forest rebuilt from scratch from the
//     surviving documents — never wrong answers, whether a document is
//     resident, evicted, or mid-eviction at the cut;
//   - no file handles leak.

// segCrashWorkload drives the scripted workload and returns the marks.
func segCrashWorkload(t *testing.T, s *Segmented, seed int64) []crashMark {
	t.Helper()
	fs := s.fs.(*fsio.MemFS)
	rng := rand.New(rand.NewSource(seed))
	docs := make(map[string]*tree.Tree)
	marks := []crashMark{{traceEnd: fs.TraceLen(), bags: snapshotBags(s.forest), docs: cloneDocs(docs)}}
	mark := func() {
		marks = append(marks, crashMark{
			traceEnd: fs.TraceLen(),
			bags:     snapshotBags(s.forest),
			docs:     cloneDocs(docs),
		})
	}
	ids := func() []string {
		out := make([]string, 0, len(docs))
		for id := range docs {
			out = append(out, id)
		}
		sort.Strings(out)
		return out
	}
	nextID := 0
	add := func() {
		id := fmt.Sprintf("doc-%02d", nextID)
		tr := gen.XMark(int64(200+nextID), 22+rng.Intn(16))
		nextID++
		if err := s.Add(id, tr.Clone()); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		docs[id] = tr
	}
	flushes, compacts := 0, 0
	const nOps = 34
	for op := 1; op <= nOps; op++ {
		switch {
		case op <= 5: // seed the memtable (threshold 4 ⇒ an auto-flush here)
			add()
			if op == 5 {
				// Force the VP-tree up so every later mutation — including
				// eviction and promotion — maintains it inside the crash window.
				s.Forest().SetPlanMode(forest.PlanMetric)
				if ms := s.Forest().LookupTopK(gen.XMark(991, 40), 3); len(ms) == 0 {
					t.Fatal("metric warm-up lookup returned nothing")
				}
			}
		case op == 12 || op == 24: // forced flush mid-stream
			if err := s.Flush(); err != nil {
				t.Fatalf("op %d flush: %v", op, err)
			}
			flushes++
		case op == 18 || op == 30: // forced compaction mid-stream
			if err := s.Compact(); err != nil {
				t.Fatalf("op %d compact: %v", op, err)
			}
			compacts++
		case rng.Float64() < 0.22 && len(docs) < 12:
			add()
		case rng.Float64() < 0.22 && len(docs) > 3:
			id := ids()[rng.Intn(len(docs))]
			if err := s.Remove(id); err != nil {
				t.Fatalf("op %d remove %s: %v", op, id, err)
			}
			delete(docs, id)
		default:
			id := ids()[rng.Intn(len(docs))]
			_, log, err := gen.RandomScript(rng, docs[id], 2+rng.Intn(3), gen.DefaultMix)
			if err != nil {
				t.Fatalf("op %d script: %v", op, err)
			}
			if _, err := s.Update(id, docs[id], log); err != nil {
				t.Fatalf("op %d update %s: %v", op, id, err)
			}
		}
		mark()
	}
	if flushes < 2 || compacts < 2 {
		t.Fatalf("workload too tame: %d forced flushes, %d compactions", flushes, compacts)
	}
	if st := s.Stats(); st.Segments == 0 {
		t.Fatalf("workload left no live segments: %+v", st)
	}
	return marks
}

func runSegCrashHarness(t *testing.T, syncMode bool, seed int64) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSync(syncMode)
	s.SetFlushThreshold(4)
	marks := segCrashWorkload(t, s, seed)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	trace := fs.Trace()
	query := gen.XMark(991, 40)
	createdAt := marks[0].traceEnd // trace length once the store fully existed

	for _, pt := range crashPoints(trace) {
		name := fmt.Sprintf("cut %d+%db", pt.op, pt.partial)
		crashed := fs.CrashClone(pt.op, pt.partial)
		rs, err := OpenSegmentedFS(crashed, "idx.pqg")
		if err != nil {
			// Only legal before the initial manifest became visible; after
			// that, recovery must always succeed — a torn segment write, a
			// half-replaced manifest or a stale journal are all expected
			// wreckage, never fatal.
			if pt.op >= createdAt {
				t.Fatalf("%s: recovery failed: %v", name, err)
			}
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s: pre-creation recovery error should be NotExist, got: %v", name, err)
			}
			if crashed.OpenHandles() != 0 {
				t.Fatalf("%s: %d handles leaked on failed open", name, crashed.OpenHandles())
			}
			continue
		}
		if err := rs.Forest().SelfCheck(); err != nil {
			t.Fatalf("%s: recovered forest corrupt: %v", name, err)
		}

		// Prefix invariant: the recovered logical state is the committed
		// state after the last acked op (a) or the one in flight (a+1).
		// Flush and Compact appear in the mark list too — with bags equal to
		// their predecessor's, because reorganizing storage changes nothing
		// logical — so a cut inside either resolves to one of those marks.
		a := 0
		for i, mk := range marks {
			if mk.traceEnd <= pt.op {
				a = i
			}
		}
		got := snapshotBags(rs.Forest())
		k := -1
		if bagsEqual(got, marks[a].bags) {
			k = a
		} else if a+1 < len(marks) && bagsEqual(got, marks[a+1].bags) {
			k = a + 1
		}
		if k < 0 {
			t.Fatalf("%s: recovered state matches neither committed state %d (acked, sync=%v) nor %d (in flight)",
				name, a, syncMode, a+1)
		}

		// Differential recovery: the segmented index — with whatever mix of
		// resident and segment-served documents the cut left — must answer
		// identically to an all-in-RAM forest rebuilt from the surviving
		// documents.
		rebuilt := forest.New(p33)
		for id, tr := range marks[k].docs {
			if err := rebuilt.Add(id, tr); err != nil {
				t.Fatalf("%s: rebuild: %v", name, err)
			}
		}
		if got, want := rs.Forest().Lookup(query, 0.75), rebuilt.Lookup(query, 0.75); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Lookup diverges after recovery: %v vs %v", name, got, want)
		}
		if got, want := rs.Forest().SimilarityJoinWorkers(0.8, 2), rebuilt.SimilarityJoinWorkers(0.8, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: SimilarityJoin diverges after recovery: %v vs %v", name, got, want)
		}
		rs.Forest().SetPlanMode(forest.PlanMetric)
		rebuilt.SetPlanMode(forest.PlanExhaustive)
		if got, want := rs.Forest().LookupTopK(query, 5), rebuilt.LookupTopK(query, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: LookupTopK diverges after recovery: %v vs %v", name, got, want)
		}

		// Accounting sanity: the journal is at least a header, the manifest
		// agrees with the open segments, and nothing negative snuck into
		// the recovery stats.
		if js, err := rs.JournalSize(); err != nil || js < journalHeaderLen {
			t.Fatalf("%s: journal size %d, %v", name, js, err)
		}
		ri := rs.Recovery()
		if ri.TornBytes < 0 || ri.Records < 0 || ri.Bytes < 0 || ri.DiscardedBytes < 0 {
			t.Fatalf("%s: negative recovery stats: %+v", name, ri)
		}
		st := rs.Stats()
		if st.ResidentDocs+st.EvictedDocs != rs.Forest().Len() {
			t.Fatalf("%s: %d resident + %d evicted != %d registered",
				name, st.ResidentDocs, st.EvictedDocs, rs.Forest().Len())
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if crashed.OpenHandles() != 0 {
			t.Fatalf("%s: %d handles leaked after recovery", name, crashed.OpenHandles())
		}
	}
	t.Logf("workload: %d ops, %d trace ops, %d crash points",
		len(marks)-1, len(trace), len(crashPoints(trace)))
}

func TestSegCrashConsistencySynced(t *testing.T)   { runSegCrashHarness(t, true, 77) }
func TestSegCrashConsistencyUnsynced(t *testing.T) { runSegCrashHarness(t, false, 1077) }

// TestSegCrashDuringRecovery cuts power again while recovery itself is
// writing (truncating the journal tail, resetting a stale journal,
// retrying obsolete-segment removals): recovery of a recovered-then-
// crashed store must still come up clean.
func TestSegCrashDuringRecovery(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	doc := gen.XMark(3, 50)
	if err := s.Add("a", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", tree.MustParse("x(y z)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	_, log, err := gen.RandomScript(rng, doc, 4, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("a", doc, log); err != nil { // promotes "a" out of the segment
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // second segment + tombstone-free re-store
		t.Fatal(err)
	}
	if err := s.Remove("b"); err != nil { // journaled tombstone of an evicted doc
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // merge + obsolete-file GC
		t.Fatal(err)
	}
	if err := s.Add("c", tree.MustParse("m(n o p)")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	trace := fs.Trace()
	for cut := 0; cut <= len(trace); cut++ {
		first := fs.CrashClone(cut, 0)
		if _, err := OpenSegmentedFS(first, "idx.pqg"); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("cut %d: %v", cut, err)
			}
			continue
		}
		rtrace := first.Trace()
		for rcut := 0; rcut <= len(rtrace); rcut++ {
			second := first.CrashClone(rcut, 0)
			rs, err := OpenSegmentedFS(second, "idx.pqg")
			if err != nil {
				t.Fatalf("cut %d/%d: double-crash recovery failed: %v", cut, rcut, err)
			}
			if err := rs.Forest().SelfCheck(); err != nil {
				t.Fatalf("cut %d/%d: %v", cut, rcut, err)
			}
			rs.Close()
		}
	}
}
