package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// metricFixture builds a store with a built VP-tree and a compacted
// sidecar: 16 clustered XMark documents (4 bases × 4 perturbed versions,
// the near-duplicate shape the metric index exists for).
func metricFixture(t *testing.T) (*fsio.MemFS, *Store) {
	t.Helper()
	fs := fsio.NewMemFS()
	s, err := CreateStoreFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		base := gen.XMark(int64(500+b), 40)
		for v := 0; v < 4; v++ {
			doc := base.Clone()
			if v > 0 {
				if _, _, err := gen.RandomScript(newRand(int64(b*10+v)), doc, v, gen.DefaultMix); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Add(fmt.Sprintf("doc-%d-%d", b, v), doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Forest().SetPlanMode(forest.PlanMetric)
	if ms := s.Forest().LookupTopK(gen.XMark(500, 40), 3); len(ms) != 3 {
		t.Fatalf("warm-up top-k returned %d matches", len(ms))
	}
	if !s.Forest().MetricReady() {
		t.Fatal("metric index not built after a PlanMetric lookup")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	return fs, s
}

func topkDiff(t *testing.T, name string, got, want *forest.Index) {
	t.Helper()
	q := gen.XMark(991, 40)
	got.SetPlanMode(forest.PlanMetric)
	want.SetPlanMode(forest.PlanExhaustive)
	for _, k := range []int{1, 3, 100} {
		if g, w := got.LookupTopK(q, k), want.LookupTopK(q, k); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: top-%d diverges: %v vs %v", name, k, g, w)
		}
	}
}

// TestMetricSidecarRoundTrip proves Compact persists the VP-tree and
// OpenStore reattaches it without a rebuild: the reopened store reports
// MetricRestored, is MetricReady before any lookup, passes SelfCheck, and
// answers top-k identically to an exhaustive scan over a fresh forest.
func TestMetricSidecarRoundTrip(t *testing.T) {
	fs, s := metricFixture(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("idx.pqg.vpt"); err != nil {
		t.Fatalf("no sidecar after compact: %v", err)
	}

	rs, err := OpenStoreFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ri := rs.Recovery()
	if !ri.MetricRestored || ri.MetricDiscarded {
		t.Fatalf("sidecar not restored: %+v", ri)
	}
	if !rs.Forest().MetricReady() {
		t.Fatal("metric index not ready after restore")
	}
	if err := rs.Forest().SelfCheck(); err != nil {
		t.Fatal(err)
	}
	want, err := LoadFileFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	topkDiff(t, "restored", rs.Forest(), want)
}

// TestMetricSidecarReplayMaintains reopens a store whose journal holds
// records appended after the sidecar was written: replay must maintain
// the restored VP-tree incrementally, not invalidate it.
func TestMetricSidecarReplayMaintains(t *testing.T) {
	fs, s := metricFixture(t)
	doc := gen.XMark(700, 35)
	if err := s.Add("late-1", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("doc-2-2"); err != nil {
		t.Fatal(err)
	}
	_, log, err := gen.RandomScript(newRand(77), doc, 3, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("late-1", doc, log); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rs, err := OpenStoreFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ri := rs.Recovery()
	if !ri.MetricRestored {
		t.Fatalf("sidecar not restored: %+v", ri)
	}
	if ri.Records == 0 {
		t.Fatal("expected journal records to replay onto the restored metric index")
	}
	if err := rs.Forest().SelfCheck(); err != nil {
		t.Fatal(err)
	}
	want, err := OpenStoreFS(fsCloneWithoutSidecar(t, fs), "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	topkDiff(t, "replayed", rs.Forest(), want.Forest())
}

// fsCloneWithoutSidecar clones the filesystem state minus the .vpt, so a
// reference store recovers the same content with no restored metric index.
func fsCloneWithoutSidecar(t *testing.T, fs *fsio.MemFS) *fsio.MemFS {
	t.Helper()
	clone := fs.CrashClone(fs.TraceLen(), 0)
	if err := clone.Remove("idx.pqg.vpt"); err != nil {
		t.Fatal(err)
	}
	return clone
}

// TestMetricSidecarStaleAndCorrupt exercises every discard path: a
// sidecar bound to a different base, one with flipped bytes, and one
// truncated mid-node. All must be dropped silently — recovery succeeds,
// the metric index rebuilds lazily, and answers stay exact.
func TestMetricSidecarStaleAndCorrupt(t *testing.T) {
	corrupt := []struct {
		name   string
		mangle func(t *testing.T, fs *fsio.MemFS)
	}{
		{"stale-base", func(t *testing.T, fs *fsio.MemFS) {
			data, err := fsio.ReadFile(fs, "idx.pqg.vpt")
			if err != nil {
				t.Fatal(err)
			}
			data[5] ^= 0xff // embedded base crc
			if err := fsio.WriteFile(fs, "idx.pqg.vpt", data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte", func(t *testing.T, fs *fsio.MemFS) {
			data, err := fsio.ReadFile(fs, "idx.pqg.vpt")
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := fsio.WriteFile(fs, "idx.pqg.vpt", data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, fs *fsio.MemFS) {
			data, err := fsio.ReadFile(fs, "idx.pqg.vpt")
			if err != nil {
				t.Fatal(err)
			}
			if err := fsio.WriteFile(fs, "idx.pqg.vpt", data[:len(data)*2/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			fs, s := metricFixture(t)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, fs)
			rs, err := OpenStoreFS(fs, "idx.pqg")
			if err != nil {
				t.Fatalf("recovery must not fail on a bad sidecar: %v", err)
			}
			defer rs.Close()
			ri := rs.Recovery()
			if ri.MetricRestored || !ri.MetricDiscarded {
				t.Fatalf("bad sidecar not discarded: %+v", ri)
			}
			if rs.Forest().MetricReady() {
				t.Fatal("metric index ready despite a discarded sidecar")
			}
			want, err := LoadFileFS(fs, "idx.pqg")
			if err != nil {
				t.Fatal(err)
			}
			topkDiff(t, tc.name, rs.Forest(), want)
			if err := rs.Forest().SelfCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMetricSidecarAbsent pins the common path: a store that never built
// the metric index writes no sidecar, and reopening it reports neither a
// restore nor a discard.
func TestMetricSidecarAbsent(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateStoreFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", gen.XMark(1, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("idx.pqg.vpt"); err == nil {
		t.Fatal("sidecar written without a built metric index")
	}
	rs, err := OpenStoreFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if ri := rs.Recovery(); ri.MetricRestored || ri.MetricDiscarded {
		t.Fatalf("phantom sidecar recovery: %+v", ri)
	}
}
