package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Store is the durable form of a forest index: a base snapshot (the format
// of Save/Load) plus a write-ahead journal of per-document changes. Every
// mutation appends one journal record before it is applied in memory, so a
// crash at any point loses at most the interrupted record; Open replays
// the intact journal prefix and ignores a torn tail. Compact folds the
// journal into a fresh base snapshot.
//
// This is what makes the paper's index "persistent AND incrementally
// maintainable": an incremental update persists its two small delta bags
// (λ(Δ⁻), λ(Δ⁺)), never the whole index.
//
// Crash-consistency protocol. The journal header binds the journal to the
// exact base snapshot it extends, by recording the snapshot's crc32 (the
// format is deterministic, so the checksum identifies the content).
// Compact first replaces the base atomically (write temp, fsync, rename,
// fsync dir) and only then resets the journal; a crash in between leaves
// a journal whose header names the *old* base — OpenStore sees the
// mismatch and discards it, because every record it holds is already
// folded into the new base. Without the binding, those records would be
// replayed a second time onto a base that already contains them.
// Similarly, a failed or short journal append is rolled back by
// truncating to the previous record boundary, so an ENOSPC cannot leave
// garbage that would wedge later appends between valid records.
type Store struct {
	fs      fsio.FS
	path    string
	forest  *forest.Index
	journal fsio.File
	off     int64 // current journal length: the next record boundary
	sync    bool
	failed  error // sticky: set when the journal state on disk is unknown

	// obs is the attached instrumentation (nil by default); recovery
	// remembers what OpenStore recovered so SetCollector can publish it.
	obs      atomic.Pointer[storeMetrics]
	recovery RecoveryInfo
}

// journal record types.
const (
	recAdd    = 'A' // id, full bag
	recRemove = 'R' // id
	recUpdate = 'U' // id, I⁻ bag, I⁺ bag
)

var journalMagic = [4]byte{'P', 'Q', 'G', 'J'}

// journalVersion 2 introduced the base-binding header: magic, a version
// byte, then the crc32 (big endian) of the base snapshot the journal
// extends. Version-1 journals had no version byte; they are detected as
// foreign (record types are ASCII letters, never 2) and reset.
const (
	journalVersion   = 2
	journalHeaderLen = 4 + 1 + 4
)

func journalHeader(baseCRC uint32) []byte {
	hdr := make([]byte, journalHeaderLen)
	copy(hdr, journalMagic[:])
	hdr[4] = journalVersion
	binary.BigEndian.PutUint32(hdr[5:], baseCRC)
	return hdr
}

// RecoveryInfo describes what OpenStore found and did while bringing the
// store back: how much of the journal was intact, and what had to be
// dropped or reset to get back to a consistent state.
type RecoveryInfo struct {
	Records int64 // intact records replayed onto the base
	Bytes   int64 // bytes of intact records replayed

	TornBytes      int64 // trailing bytes dropped: an append interrupted mid-write
	SkippedRecords int64 // complete records dropped because their checksum failed
	StaleJournal   bool  // journal predated the base (crash during Compact); discarded whole
	JournalReset   bool  // header missing or foreign; journal reinitialized
	DiscardedBytes int64 // bytes thrown away by a stale/reset discard

	MetricRestored  bool // VP-tree sidecar loaded and reattached to the base
	MetricDiscarded bool // a sidecar existed but was stale or corrupt; dropped

	Duration time.Duration // wall time of the replay
}

// CreateStore creates a new empty store at path (base file) and path+".wal"
// (journal). An existing store at that path is replaced.
func CreateStore(path string, pr profile.Params) (*Store, error) {
	return CreateStoreFS(fsio.OS, path, pr)
}

// CreateStoreFS is CreateStore against an injected filesystem.
func CreateStoreFS(fsys fsio.FS, path string, pr profile.Params) (*Store, error) {
	crc, _, err := saveFileCRC(fsys, path, forest.New(pr))
	if err != nil {
		return nil, err
	}
	j, err := fsys.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := j.Write(journalHeader(crc)); err != nil {
		j.Close()
		return nil, err
	}
	return &Store{fs: fsys, path: path, forest: forest.New(pr), journal: j, off: journalHeaderLen}, nil
}

// OpenStore loads the base snapshot and replays the journal. A torn or
// corrupt journal tail (from a crash during an append) is truncated away;
// everything before it is recovered. A journal left behind by a crash
// during Compact — already folded into the base it sits next to — is
// detected via the header's base checksum and discarded.
func OpenStore(path string) (*Store, error) {
	return OpenStoreFS(fsio.OS, path)
}

// OpenStoreFS is OpenStore against an injected filesystem.
func OpenStoreFS(fsys fsio.FS, path string) (*Store, error) {
	f, baseCRC, err := loadFileCRC(fsys, path)
	if err != nil {
		return nil, err
	}
	j, err := fsys.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	data, err := io.ReadAll(j)
	if err != nil {
		j.Close()
		return nil, err
	}

	var info RecoveryInfo
	// Reattach the persisted VP-tree before replaying the journal: the
	// sidecar covers exactly the base snapshot, and replayed records then
	// maintain the restored structure incrementally. Any failure — no
	// sidecar, one bound to another base, torn bytes, a dump that no
	// longer matches the base — just means the metric index rebuilds
	// lazily on the next top-k lookup; correctness never depends on it.
	if dump, merr := loadMetricFile(fsys, path, baseCRC); merr == nil {
		if f.MetricRestore(dump) == nil {
			info.MetricRestored = true
		} else {
			info.MetricDiscarded = true
		}
	} else if !errors.Is(merr, os.ErrNotExist) {
		info.MetricDiscarded = true
	}
	valid := int64(journalHeaderLen)
	reinit := false
	switch {
	case len(data) == 0:
		// Fresh journal (or one whose creation never became durable).
		reinit = true
	case len(data) < journalHeaderLen || [4]byte(data[:4]) != journalMagic || data[4] != journalVersion:
		// Foreign bytes, a torn header, or a pre-versioning journal:
		// nothing in it can be trusted to extend this base.
		info.JournalReset = true
		info.DiscardedBytes = int64(len(data))
		reinit = true
	case binary.BigEndian.Uint32(data[5:9]) != baseCRC:
		// The journal extends a different base snapshot than the one on
		// disk. The only writer that replaces the base is Compact, which
		// folds every journal record into the new base before the journal
		// is reset — so these records are already applied. Replaying them
		// would double-apply; discard instead.
		info.StaleJournal = true
		info.DiscardedBytes = int64(len(data) - journalHeaderLen)
		reinit = true
	default:
		recs, bodyValid, badCRC := scanRecords(data[journalHeaderLen:])
		for i, rec := range recs {
			if err := applyRecord(f, rec); err != nil {
				j.Close()
				return nil, fmt.Errorf("store: journal record %d: %w", i, err)
			}
		}
		info.Records = int64(len(recs))
		info.Bytes = bodyValid
		info.TornBytes = int64(len(data)) - journalHeaderLen - bodyValid
		if badCRC {
			info.SkippedRecords = 1
			// A complete record with a bad checksum is indistinguishable
			// from a torn multi-record tail; everything after it is
			// untrusted and dropped with it.
		}
		valid += bodyValid
	}

	if reinit {
		if err := j.Truncate(0); err != nil {
			j.Close()
			return nil, err
		}
		if _, err := j.Seek(0, io.SeekStart); err != nil {
			j.Close()
			return nil, err
		}
		if _, err := j.Write(journalHeader(baseCRC)); err != nil {
			j.Close()
			return nil, err
		}
		valid = journalHeaderLen
	} else {
		// Drop any torn tail so future appends start at a clean boundary.
		if err := j.Truncate(valid); err != nil {
			j.Close()
			return nil, err
		}
		if _, err := j.Seek(valid, io.SeekStart); err != nil {
			j.Close()
			return nil, err
		}
	}
	info.Duration = time.Since(t0)
	return &Store{fs: fsys, path: path, forest: f, journal: j, off: valid, recovery: info}, nil
}

// Recovery reports what OpenStore found and repaired. Zero for a freshly
// created store.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// SetSync makes every journal append fsync before returning (durability
// over throughput; off by default).
func (s *Store) SetSync(on bool) { s.sync = on }

// Forest returns the live in-memory index. Callers must not mutate it
// directly — use the Store's Add/Remove/Update so changes are journaled.
func (s *Store) Forest() *forest.Index { return s.forest }

// Path returns the base snapshot path.
func (s *Store) Path() string { return s.path }

// Close closes the journal. The store must not be used afterwards.
func (s *Store) Close() error { return s.journal.Close() }

// Add indexes a tree and journals the addition.
func (s *Store) Add(id string, t *tree.Tree) error {
	if s.forest.Has(id) {
		return fmt.Errorf("store: tree %q already indexed", id)
	}
	idx := profile.BuildIndex(t, s.forest.Params())
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, idx)
	if err := s.append(recAdd, buf.Bytes()); err != nil {
		return err
	}
	return s.forest.AddIndex(id, idx)
}

// AddAll bulk-indexes documents: the trees are profiled concurrently on a
// worker pool (forest.BuildIndexes), each addition is journaled, and the
// bags are merged into the sharded postings in parallel. The whole batch
// is validated up front — a duplicate ID rejects it before anything is
// journaled. workers < 1 means GOMAXPROCS.
func (s *Store) AddAll(docs []forest.Doc, workers int) error {
	seen := make(map[string]bool, len(docs))
	ids := make([]string, len(docs))
	for i, d := range docs {
		if s.forest.Has(d.ID) {
			return fmt.Errorf("store: tree %q already indexed", d.ID)
		}
		if seen[d.ID] {
			return fmt.Errorf("store: tree %q appears twice in batch", d.ID)
		}
		seen[d.ID] = true
		ids[i] = d.ID
	}
	bags := forest.BuildIndexes(docs, s.forest.Params(), workers)
	for i, bag := range bags {
		var buf bytes.Buffer
		writeString(&buf, ids[i])
		writeBag(&buf, bag)
		if err := s.append(recAdd, buf.Bytes()); err != nil {
			return err
		}
	}
	return s.forest.AddIndexes(ids, bags, workers)
}

// Remove drops a tree and journals the removal.
func (s *Store) Remove(id string) error {
	if !s.forest.Has(id) {
		return fmt.Errorf("store: tree %q not indexed", id)
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	if err := s.append(recRemove, buf.Bytes()); err != nil {
		return err
	}
	return s.forest.Remove(id)
}

// Put replaces a document, journaling a removal (if the id is indexed)
// followed by an addition. It returns the new document's pq-gram count.
// The two records commit independently: a crash in between recovers to
// the state with the document absent — a prefix of the two sub-steps.
func (s *Store) Put(id string, t *tree.Tree) (int, error) {
	if s.forest.Has(id) {
		if err := s.Remove(id); err != nil {
			return 0, err
		}
	}
	if err := s.Add(id, t); err != nil {
		return 0, err
	}
	grams, _, _ := s.forest.TreeStats(id)
	return grams, nil
}

// Update incrementally maintains one document's index (Algorithm 1) and
// journals only the two delta bags — the persistent-update cost is
// proportional to the log, not to the index.
func (s *Store) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	if !s.forest.Has(id) {
		return core.Stats{}, fmt.Errorf("store: tree %q not indexed", id)
	}
	iPlus, iMinus, st, err := core.Deltas(tn, log, s.forest.Params())
	if err != nil {
		return st, err
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, iMinus)
	writeBag(&buf, iPlus)
	if err := s.append(recUpdate, buf.Bytes()); err != nil {
		return st, err
	}
	return st, s.forest.ApplyDeltas(id, iPlus, iMinus)
}

// JournalSize returns the current journal length in bytes.
func (s *Store) JournalSize() (int64, error) {
	fi, err := s.journal.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Compact folds the journal into a fresh base snapshot: the in-memory
// index is written (atomically) as the new base and the journal is reset
// with a header naming the new base. Crash ordering: the base advances
// first, so a cut between the two steps leaves a journal bound to the old
// base — OpenStore discards it, and the recovered state is exactly the
// compacted one. If the journal reset itself fails after the base has
// advanced, the store is marked failed: appending to a journal that
// OpenStore will discard would silently lose acknowledged operations.
func (s *Store) Compact() error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after earlier failure: %w", s.failed)
	}
	m := s.obs.Load()
	var t0 time.Time
	var sp *obs.Span
	if m != nil {
		t0 = time.Now()
		sp = m.col.StartTrace("store.compact")
		// A deferred finish also publishes traces of failed compactions,
		// which are exactly the ones worth looking at.
		defer sp.Finish()
	}
	crc, renamed, err := saveFileCRC(s.fs, s.path, s.forest)
	if err != nil {
		if renamed {
			// The base advanced but its durability is uncertain.
			s.failed = err
			return fmt.Errorf("store: compact: base replaced but not settled: %w", err)
		}
		return err // old base + intact journal: nothing lost
	}
	// Persist the VP-tree (if built) bound to the new base. The sidecar is
	// an optimization: base and journal are already consistent, and
	// whatever a failed save leaves behind names the wrong base or fails
	// its checksum, so OpenStore discards it and the metric index rebuilds
	// lazily — Compact itself still succeeds.
	if dump := s.forest.MetricDump(); dump != nil {
		if merr := saveMetricFile(s.fs, s.path, crc, dump); merr != nil && m != nil {
			m.col.Event("metric sidecar save failed", "path", metricPath(s.path), "err", merr.Error())
		}
	}
	if err := s.resetJournal(crc); err != nil {
		s.failed = err
		return fmt.Errorf("store: compact: journal reset failed: %w", err)
	}
	if m != nil {
		m.compactions.Inc()
		m.journalBytes.Set(journalHeaderLen)
		if fi, err := s.fs.Stat(s.path); err == nil {
			m.snapshotBytes.Set(fi.Size())
		}
		m.compactNS.ObserveSince(t0)
		sp.SetAttr("snapshot_bytes", m.snapshotBytes.Load())
		m.col.Event("store compacted", "path", s.path, "snapshot_bytes", m.snapshotBytes.Load())
	}
	return nil
}

// resetJournal truncates the journal and writes a fresh header bound to
// baseCRC. Any crash inside leaves an empty, torn or stale journal — all
// of which OpenStore resolves to "no records", which is correct because
// the caller has already made the base contain everything.
func (s *Store) resetJournal(baseCRC uint32) error {
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.journal.Write(journalHeader(baseCRC)); err != nil {
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	s.off = journalHeaderLen
	return nil
}

// append writes one length-prefixed, checksummed record as a single write
// at the current record boundary. On any failure the journal is rolled
// back to that boundary, so a half-written record can never sit between
// valid ones; if even the rollback fails, the store is marked failed and
// refuses further mutations rather than risk journaling onto garbage.
func (s *Store) append(typ byte, payload []byte) error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after earlier failure: %w", s.failed)
	}
	m := s.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	var rec bytes.Buffer
	rec.WriteByte(typ)
	putUvarint(&rec, uint64(len(payload)))
	rec.Write(payload)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	rec.Write(sum[:])

	n, err := s.journal.Write(rec.Bytes())
	if err != nil || n < rec.Len() {
		if err == nil {
			err = io.ErrShortWrite
		}
		s.rollback(n)
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			// The record may or may not be durable; roll it back, and
			// treat the device as untrustworthy from here on (a failed
			// fsync leaves the page cache in an unknown state).
			s.rollback(n)
			s.failed = err
			return err
		}
	}
	s.off += int64(rec.Len())
	if m != nil {
		m.appends.Inc()
		m.appendBytes.Add(int64(rec.Len()))
		m.journalBytes.Add(int64(rec.Len()))
		m.appendNS.ObserveSince(t0)
		if sp := m.col.StartTrace("store.append"); sp != nil {
			// Synthesized after the fact so the un-sampled path does not
			// even start a span inside the write sequence.
			sp.SetAttr("bytes", int64(rec.Len()))
			sp.FinishWithDuration(time.Since(t0))
		}
	}
	return nil
}

// rollback restores the journal to the last record boundary after wrote
// bytes of a failed append. A rollback that itself fails poisons the
// store: the on-disk journal may now end mid-record and later appends
// would be unrecoverable noise after it.
func (s *Store) rollback(wrote int) {
	if wrote > 0 {
		if err := s.journal.Truncate(s.off); err != nil {
			s.failed = err
			return
		}
	}
	if _, err := s.journal.Seek(s.off, io.SeekStart); err != nil {
		s.failed = err
	}
}

// scanRecords parses the journal body (everything after the header) and
// returns the intact records, the offset of the end of the last one, and
// whether scanning stopped at a structurally complete record whose
// checksum failed (as opposed to running out of bytes mid-record).
func scanRecords(data []byte) (recs [][]byte, valid int64, badCRC bool) {
	for {
		rec, n, bad := nextRecord(data[valid:])
		if n == 0 {
			return recs, valid, bad
		}
		recs = append(recs, rec)
		valid += int64(n)
	}
}

// nextRecord parses one record from the front of data, returning the
// payload (with type byte prefixed) and the total record length, or n = 0
// if the data does not contain one intact record. badCRC reports the
// stop reason: all the record's bytes were present but the checksum did
// not match.
func nextRecord(data []byte) (rec []byte, n int, badCRC bool) {
	if len(data) < 1 {
		return nil, 0, false
	}
	typ := data[0]
	plen, lenLen := binary.Uvarint(data[1:])
	if lenLen <= 0 || plen > uint64(len(data)) {
		return nil, 0, false
	}
	start := 1 + lenLen
	end := start + int(plen)
	if end+4 > len(data) {
		return nil, 0, false
	}
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(data[start:end])
	if binary.BigEndian.Uint32(data[end:end+4]) != crc.Sum32() {
		return nil, 0, true
	}
	out := make([]byte, 0, 1+int(plen))
	out = append(out, typ)
	out = append(out, data[start:end]...)
	return out, end + 4, false
}

func applyRecord(f *forest.Index, rec []byte) error {
	r := bytes.NewReader(rec[1:])
	switch rec[0] {
	case recAdd:
		id, err := readString(r)
		if err != nil {
			return err
		}
		bag, err := readBag(r)
		if err != nil {
			return err
		}
		return f.AddIndex(id, bag)
	case recRemove:
		id, err := readString(r)
		if err != nil {
			return err
		}
		return f.Remove(id)
	case recUpdate:
		id, err := readString(r)
		if err != nil {
			return err
		}
		iMinus, err := readBag(r)
		if err != nil {
			return err
		}
		iPlus, err := readBag(r)
		if err != nil {
			return err
		}
		return f.ApplyDeltas(id, iPlus, iMinus)
	}
	return fmt.Errorf("unknown record type %q", rec[0])
}

func writeString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := getUvarint(r, 1<<20)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeBag(buf *bytes.Buffer, idx profile.Index) {
	putUvarint(buf, uint64(len(idx)))
	// Canonical order: a journal record, like the base snapshot, must be
	// byte-identical for identical logical content. Emitting in map order
	// would make the journal — and therefore the crc of a later Compact's
	// input trace — differ between runs of the same workload.
	tuples := make([]uint64, 0, len(idx))
	for lt := range idx {
		tuples = append(tuples, uint64(lt))
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
	for _, lt := range tuples {
		putUvarint(buf, lt)
		putUvarint(buf, uint64(idx[profile.LabelTuple(lt)]))
	}
}

func readBag(r *bytes.Reader) (profile.Index, error) {
	n, err := getUvarint(r, 1<<50)
	if err != nil {
		return nil, err
	}
	hint := n
	if hint > 1<<16 {
		hint = 1 << 16
	}
	idx := make(profile.Index, hint)
	for i := uint64(0); i < n; i++ {
		lt, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		c, err := getUvarint(r, 1<<50)
		if err != nil {
			return nil, err
		}
		if c == 0 {
			return nil, fmt.Errorf("bag entry with zero count")
		}
		idx[profile.LabelTuple(lt)] += int(c)
	}
	return idx, nil
}
