package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Store is the durable form of a forest index: a base snapshot (the format
// of Save/Load) plus a write-ahead journal of per-document changes. Every
// mutation appends one journal record before it is applied in memory, so a
// crash at any point loses at most the interrupted record; Open replays
// the intact journal prefix and ignores a torn tail. Compact folds the
// journal into a fresh base snapshot.
//
// This is what makes the paper's index "persistent AND incrementally
// maintainable": an incremental update persists its two small delta bags
// (λ(Δ⁻), λ(Δ⁺)), never the whole index.
type Store struct {
	path    string
	forest  *forest.Index
	journal *os.File
	sync    bool

	// obs is the attached instrumentation (nil by default); replayed
	// remembers what OpenStore recovered so SetCollector can publish it.
	obs      atomic.Pointer[storeMetrics]
	replayed replayInfo
}

// journal record types.
const (
	recAdd    = 'A' // id, full bag
	recRemove = 'R' // id
	recUpdate = 'U' // id, I⁻ bag, I⁺ bag
)

var journalMagic = [4]byte{'P', 'Q', 'G', 'J'}

// CreateStore creates a new empty store at path (base file) and path+".wal"
// (journal). An existing store at that path is replaced.
func CreateStore(path string, pr profile.Params) (*Store, error) {
	if err := SaveFile(path, forest.New(pr)); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := j.Write(journalMagic[:]); err != nil {
		j.Close()
		return nil, err
	}
	return &Store{path: path, forest: forest.New(pr), journal: j}, nil
}

// OpenStore loads the base snapshot and replays the journal. A torn or
// corrupt journal tail (from a crash during an append) is truncated away;
// everything before it is recovered.
func OpenStore(path string) (*Store, error) {
	f, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	j, err := os.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	valid, records, err := replayJournal(j, f)
	if err != nil {
		j.Close()
		return nil, err
	}
	// Drop any torn tail so future appends start at a clean boundary.
	if err := j.Truncate(valid); err != nil {
		j.Close()
		return nil, err
	}
	if _, err := j.Seek(valid, io.SeekStart); err != nil {
		j.Close()
		return nil, err
	}
	s := &Store{path: path, forest: f, journal: j}
	s.replayed = replayInfo{
		records: int64(records),
		bytes:   valid - int64(len(journalMagic)),
		dur:     time.Since(t0),
	}
	return s, nil
}

// SetSync makes every journal append fsync before returning (durability
// over throughput; off by default).
func (s *Store) SetSync(on bool) { s.sync = on }

// Forest returns the live in-memory index. Callers must not mutate it
// directly — use the Store's Add/Remove/Update so changes are journaled.
func (s *Store) Forest() *forest.Index { return s.forest }

// Path returns the base snapshot path.
func (s *Store) Path() string { return s.path }

// Close closes the journal. The store must not be used afterwards.
func (s *Store) Close() error { return s.journal.Close() }

// Add indexes a tree and journals the addition.
func (s *Store) Add(id string, t *tree.Tree) error {
	if s.forest.Has(id) {
		return fmt.Errorf("store: tree %q already indexed", id)
	}
	idx := profile.BuildIndex(t, s.forest.Params())
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, idx)
	if err := s.append(recAdd, buf.Bytes()); err != nil {
		return err
	}
	return s.forest.AddIndex(id, idx)
}

// AddAll bulk-indexes documents: the trees are profiled concurrently on a
// worker pool (forest.BuildIndexes), each addition is journaled, and the
// bags are merged into the sharded postings in parallel. The whole batch
// is validated up front — a duplicate ID rejects it before anything is
// journaled. workers < 1 means GOMAXPROCS.
func (s *Store) AddAll(docs []forest.Doc, workers int) error {
	seen := make(map[string]bool, len(docs))
	ids := make([]string, len(docs))
	for i, d := range docs {
		if s.forest.Has(d.ID) {
			return fmt.Errorf("store: tree %q already indexed", d.ID)
		}
		if seen[d.ID] {
			return fmt.Errorf("store: tree %q appears twice in batch", d.ID)
		}
		seen[d.ID] = true
		ids[i] = d.ID
	}
	bags := forest.BuildIndexes(docs, s.forest.Params(), workers)
	for i, bag := range bags {
		var buf bytes.Buffer
		writeString(&buf, ids[i])
		writeBag(&buf, bag)
		if err := s.append(recAdd, buf.Bytes()); err != nil {
			return err
		}
	}
	return s.forest.AddIndexes(ids, bags, workers)
}

// Remove drops a tree and journals the removal.
func (s *Store) Remove(id string) error {
	if !s.forest.Has(id) {
		return fmt.Errorf("store: tree %q not indexed", id)
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	if err := s.append(recRemove, buf.Bytes()); err != nil {
		return err
	}
	return s.forest.Remove(id)
}

// Update incrementally maintains one document's index (Algorithm 1) and
// journals only the two delta bags — the persistent-update cost is
// proportional to the log, not to the index.
func (s *Store) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	if !s.forest.Has(id) {
		return core.Stats{}, fmt.Errorf("store: tree %q not indexed", id)
	}
	iPlus, iMinus, st, err := core.Deltas(tn, log, s.forest.Params())
	if err != nil {
		return st, err
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, iMinus)
	writeBag(&buf, iPlus)
	if err := s.append(recUpdate, buf.Bytes()); err != nil {
		return st, err
	}
	return st, s.forest.ApplyDeltas(id, iPlus, iMinus)
}

// JournalSize returns the current journal length in bytes.
func (s *Store) JournalSize() (int64, error) {
	fi, err := s.journal.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Compact folds the journal into a fresh base snapshot: the in-memory
// index is written (atomically) as the new base and the journal is reset.
func (s *Store) Compact() error {
	m := s.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	if err := SaveFile(s.path, s.forest); err != nil {
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.journal.Write(journalMagic[:]); err != nil {
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	if m != nil {
		m.compactions.Inc()
		m.journalBytes.Set(int64(len(journalMagic)))
		if fi, err := os.Stat(s.path); err == nil {
			m.snapshotBytes.Set(fi.Size())
		}
		m.compactNS.ObserveSince(t0)
		m.col.Event("store compacted", "path", s.path, "snapshot_bytes", m.snapshotBytes.Load())
	}
	return nil
}

// append writes one length-prefixed, checksummed record.
func (s *Store) append(typ byte, payload []byte) error {
	m := s.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	var hdr bytes.Buffer
	hdr.WriteByte(typ)
	putUvarint(&hdr, uint64(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	// One Write call per section keeps a torn append detectable via the
	// length prefix + checksum; ordering within the file is sequential.
	if _, err := s.journal.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := s.journal.Write(payload); err != nil {
		return err
	}
	if _, err := s.journal.Write(sum[:]); err != nil {
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	if m != nil {
		m.appends.Inc()
		m.appendBytes.Add(int64(hdr.Len() + len(payload) + len(sum)))
		m.journalBytes.Add(int64(hdr.Len() + len(payload) + len(sum)))
		m.appendNS.ObserveSince(t0)
	}
	return nil
}

// replayJournal applies intact records to f and returns the byte offset of
// the end of the last intact record. It only errors on I/O problems or on
// records that are intact but semantically inapplicable (a corrupted
// database, as opposed to a torn append).
func replayJournal(j *os.File, f *forest.Index) (valid int64, records int, err error) {
	if _, err := j.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	data, err := io.ReadAll(j)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(journalMagic) || [4]byte(data[:4]) != journalMagic {
		// Fresh or foreign journal: treat as empty, rewrite the magic.
		if _, err := j.Seek(0, io.SeekStart); err != nil {
			return 0, 0, err
		}
		if err := j.Truncate(0); err != nil {
			return 0, 0, err
		}
		if _, err := j.Write(journalMagic[:]); err != nil {
			return 0, 0, err
		}
		return int64(len(journalMagic)), 0, nil
	}
	pos := int64(4)
	rest := data[4:]
	for {
		rec, n := nextRecord(rest)
		if n == 0 {
			return pos, records, nil // torn or empty tail
		}
		if err := applyRecord(f, rec); err != nil {
			return 0, 0, fmt.Errorf("store: journal record at offset %d: %w", pos, err)
		}
		records++
		pos += int64(n)
		rest = rest[n:]
	}
}

// nextRecord parses one record from the front of data, returning the
// payload (with type byte prefixed) and the total record length, or n = 0
// if the data does not contain one intact record.
func nextRecord(data []byte) (rec []byte, n int) {
	if len(data) < 1 {
		return nil, 0
	}
	typ := data[0]
	plen, lenLen := binary.Uvarint(data[1:])
	if lenLen <= 0 || plen > uint64(len(data)) {
		return nil, 0
	}
	start := 1 + lenLen
	end := start + int(plen)
	if end+4 > len(data) {
		return nil, 0
	}
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(data[start:end])
	if binary.BigEndian.Uint32(data[end:end+4]) != crc.Sum32() {
		return nil, 0
	}
	out := make([]byte, 0, 1+int(plen))
	out = append(out, typ)
	out = append(out, data[start:end]...)
	return out, end + 4
}

func applyRecord(f *forest.Index, rec []byte) error {
	r := bytes.NewReader(rec[1:])
	switch rec[0] {
	case recAdd:
		id, err := readString(r)
		if err != nil {
			return err
		}
		bag, err := readBag(r)
		if err != nil {
			return err
		}
		return f.AddIndex(id, bag)
	case recRemove:
		id, err := readString(r)
		if err != nil {
			return err
		}
		return f.Remove(id)
	case recUpdate:
		id, err := readString(r)
		if err != nil {
			return err
		}
		iMinus, err := readBag(r)
		if err != nil {
			return err
		}
		iPlus, err := readBag(r)
		if err != nil {
			return err
		}
		return f.ApplyDeltas(id, iPlus, iMinus)
	}
	return fmt.Errorf("unknown record type %q", rec[0])
}

func writeString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := getUvarint(r, 1<<20)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeBag(buf *bytes.Buffer, idx profile.Index) {
	putUvarint(buf, uint64(len(idx)))
	for lt, c := range idx {
		putUvarint(buf, uint64(lt))
		putUvarint(buf, uint64(c))
	}
}

func readBag(r *bytes.Reader) (profile.Index, error) {
	n, err := getUvarint(r, 1<<50)
	if err != nil {
		return nil, err
	}
	hint := n
	if hint > 1<<16 {
		hint = 1 << 16
	}
	idx := make(profile.Index, hint)
	for i := uint64(0); i < n; i++ {
		lt, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		c, err := getUvarint(r, 1<<50)
		if err != nil {
			return nil, err
		}
		if c == 0 {
			return nil, fmt.Errorf("bag entry with zero count")
		}
		idx[profile.LabelTuple(lt)] += int(c)
	}
	return idx, nil
}
