// The segmented store: an LSM-style storage engine that keeps only
// recently mutated documents resident in the forest's in-memory postings
// and serves the rest from immutable on-disk segments (segment.go).
//
// Durable state is three kinds of file, all reached through the injected
// fsio.FS:
//
//   - the manifest (manifest.go) — the single source of truth for which
//     segment files are live, replaced atomically;
//   - segment files — immutable sorted runs of documents (bags + inverted
//     postings + tombstones + bloom filter), written once, never edited;
//   - the journal — the same record format as the monolithic store
//     (journal.go), with its header bound to the manifest's content crc
//     the way the monolithic journal binds to the snapshot crc.
//
// The memtable is the forest itself: every document mutated since the
// last flush is resident (its postings live in the in-memory shards), and
// the dirty set tracks exactly that population. Flush writes the dirty
// documents plus the pending tombstones as one new segment, publishes it
// through an atomic manifest replace, evicts the flushed documents from
// the forest (forest.Evict — the bags drop, the registry entries stay),
// and resets the journal against the new manifest. Crash ordering:
//
//	segment durable → manifest replace → forest swap → journal reset
//
// A power cut between the manifest replace and the journal reset leaves a
// journal bound to the old manifest — OpenSegmented sees the crc mismatch
// and discards it, which is correct because the flush folded every
// journal record into the new segment before advancing the manifest. A
// cut before the manifest replace leaves at most an orphan segment file
// the manifest never names; the next flush reuses its sequence number and
// renames over it. Stale segments are therefore discarded, never
// resurrected, and the recovered state is always a prefix of the
// acknowledged operations.
//
// Mutating methods (Add, AddAll, Put, Remove, Update, Flush, Compact)
// must be serialized by the caller, exactly like the monolithic Store;
// lookups through the forest are concurrent with them. The store is the
// forest's storage tier (forest.Tier): Overlaps, Bag and ForEachPosting
// are called by the forest with its registry lock held, read only the
// immutable segments under the store's read lock, and panic on a read
// failure — a checksummed immutable file failing mid-read after its
// open-time verification means the storage itself is gone, and
// fabricating an empty answer would silently corrupt query results.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// segLoc locates one evicted document: the live segment serving it and
// its index in that segment's doc table.
type segLoc struct {
	seg *segment
	ref int
}

// Segmented is a durable forest index that scales beyond RAM: a resident
// memtable (the forest) plus immutable on-disk segments, coordinated by a
// manifest and a write-ahead journal. See the package comment above for
// the crash-ordering contract.
type Segmented struct {
	fs      fsio.FS
	path    string
	forest  *forest.Index
	journal fsio.File
	off     int64 // current journal length: the next record boundary
	sync    bool
	failed  error // sticky: set when the durable state on disk is unknown

	// flushDocs, when positive, auto-flushes after a mutation leaves at
	// least that many documents resident. Zero means flush only on demand.
	flushDocs int

	// mu guards the segment bookkeeping below. Lock order: the forest's
	// registry lock is always taken before mu (tier reads run under the
	// registry lock; Evict/Promote swap callbacks take mu inside it) —
	// a cross-package edge, so it lives here in prose rather than in the
	// package //pqlint:lockorder manifest.
	mu       sync.RWMutex
	segs     []*segment        // guarded by mu; live segments, ascending seq
	loc      map[string]segLoc // guarded by mu; evicted doc → live segment copy
	tombs    map[string]bool   // guarded by mu; flushed ids deleted/promoted since the last flush
	dirty    map[string]bool   // guarded by mu; resident ids (mutated since the last flush)
	nextSeq  uint64            // guarded by mu
	manCRC   uint32            // guarded by mu; crc of the live manifest; the journal header binds to it
	obsolete []uint64          // guarded by mu; superseded segment files whose removal is still pending

	obs      atomic.Pointer[segMetrics]
	recovery RecoveryInfo
}

// Store-internal lock order: tier reads hold the store lock while they
// fault posting blocks in through a segment's block cache.
//
//pqlint:lockorder Segmented.mu < segment.mu

// IsSegmented reports whether path names a segmented store, by probing
// for its manifest file on the host filesystem. Tools use it to pick the
// right opener for an existing index.
func IsSegmented(path string) bool {
	_, err := os.Stat(manifestPath(path))
	return err == nil
}

// CreateSegmented creates a new empty segmented store rooted at path:
// path+".manifest", path+".wal", and path+".NNNNNN.seg" files as flushes
// happen.
func CreateSegmented(path string, pr profile.Params) (*Segmented, error) {
	return CreateSegmentedFS(fsio.OS, path, pr)
}

// CreateSegmentedFS is CreateSegmented against an injected filesystem.
func CreateSegmentedFS(fsys fsio.FS, path string, pr profile.Params) (*Segmented, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	crc, _, err := writeManifestFile(fsys, manifestPath(path), &manifest{pr: pr, nextSeq: 1})
	if err != nil {
		return nil, err
	}
	j, err := fsys.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := j.Write(journalHeader(crc)); err != nil {
		j.Close() //pqlint:allow errcheck-durability failure-path cleanup of a journal that was never used
		return nil, err
	}
	f := forest.New(pr)
	s := &Segmented{
		fs: fsys, path: path, forest: f, journal: j, off: journalHeaderLen,
		loc: make(map[string]segLoc), tombs: make(map[string]bool), dirty: make(map[string]bool),
		nextSeq: 1, manCRC: crc,
	}
	f.SetTier(s)
	return s, nil
}

// OpenSegmented loads the manifest, opens and verifies every live
// segment, rebuilds the forest registry (resident docs from the journal,
// evicted ones as size-only entries), and replays the journal. Stale
// journals and orphan segment files left by a crash are discarded.
func OpenSegmented(path string) (*Segmented, error) {
	return OpenSegmentedFS(fsio.OS, path)
}

// OpenSegmentedFS is OpenSegmented against an injected filesystem.
func OpenSegmentedFS(fsys fsio.FS, path string) (*Segmented, error) {
	man, manCRC, err := loadManifestFile(fsys, manifestPath(path))
	if err != nil {
		return nil, err
	}
	segs := make([]*segment, 0, len(man.segs))
	closeSegs := func() {
		for _, sg := range segs {
			// Failure-path cleanup of read-only handles during an open that
			// already returned its error.
			sg.close() //pqlint:allow errcheck-durability failure-path cleanup of read-only segment handles
		}
	}
	for _, ms := range man.segs {
		sg, err := openSegment(fsys, segmentPath(path, ms.seq), man.pr, ms.seq)
		if err != nil {
			closeSegs()
			return nil, err
		}
		if sg.crc != ms.crc {
			segs = append(segs, sg)
			closeSegs()
			return nil, fmt.Errorf("store: segment %s: content crc %08x, manifest says %08x", sg.path, sg.crc, ms.crc)
		}
		segs = append(segs, sg)
	}

	// Newer segments shadow older copies; a segment's tombstones kill
	// copies in older segments (within one segment doc ids and tombstones
	// are disjoint, so per-segment order does not matter).
	loc := make(map[string]segLoc)
	for _, sg := range segs {
		for ref := range sg.docs {
			loc[sg.docs[ref].id] = segLoc{seg: sg, ref: ref}
		}
		for _, id := range sg.tombs {
			delete(loc, id)
		}
	}

	f := forest.New(man.pr)
	ids := make([]string, 0, len(loc))
	for id := range loc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := loc[id].seg.docs[loc[id].ref]
		if err := f.AddEvicted(id, d.size, d.distinct); err != nil {
			closeSegs()
			return nil, err
		}
	}

	s := &Segmented{
		fs: fsys, path: path, forest: f,
		segs: segs, loc: loc, tombs: make(map[string]bool), dirty: make(map[string]bool),
		nextSeq: man.nextSeq, manCRC: manCRC,
	}
	f.SetTier(s)
	// Retry the removal of segments a previous compaction superseded; the
	// files are invisible to recovery either way.
	s.gcObsolete(man.obsolete)

	j, err := fsys.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		closeSegs()
		return nil, err
	}
	t0 := time.Now()
	data, err := io.ReadAll(j)
	if err != nil {
		j.Close() //pqlint:allow errcheck-durability failure-path cleanup; the open already failed
		closeSegs()
		return nil, err
	}

	var info RecoveryInfo
	valid := int64(journalHeaderLen)
	reinit := false
	switch {
	case len(data) == 0:
		// Fresh journal (or one whose creation never became durable).
		reinit = true
	case len(data) < journalHeaderLen || [4]byte(data[:4]) != journalMagic || data[4] != journalVersion:
		// Foreign bytes or a torn header: nothing in it can be trusted.
		info.JournalReset = true
		info.DiscardedBytes = int64(len(data))
		reinit = true
	case binary.BigEndian.Uint32(data[5:9]) != manCRC:
		// The journal extends a different manifest than the one on disk.
		// The only writers that replace the manifest are Flush and Compact,
		// and both fold every journal record into the new segment set
		// before the replace — so these records are already applied.
		info.StaleJournal = true
		info.DiscardedBytes = int64(len(data) - journalHeaderLen)
		reinit = true
	default:
		recs, bodyValid, badCRC := scanRecords(data[journalHeaderLen:])
		for i, rec := range recs {
			if err := s.applyRecoveredRecord(rec); err != nil {
				j.Close() //pqlint:allow errcheck-durability failure-path cleanup; the open already failed
				closeSegs()
				return nil, fmt.Errorf("store: journal record %d: %w", i, err)
			}
		}
		info.Records = int64(len(recs))
		info.Bytes = bodyValid
		info.TornBytes = int64(len(data)) - journalHeaderLen - bodyValid
		if badCRC {
			info.SkippedRecords = 1
		}
		valid += bodyValid
	}

	if reinit {
		err = j.Truncate(0)
		if err == nil {
			_, err = j.Seek(0, io.SeekStart)
		}
		if err == nil {
			_, err = j.Write(journalHeader(manCRC))
		}
		valid = journalHeaderLen
	} else {
		// Drop any torn tail so future appends start at a clean boundary.
		err = j.Truncate(valid)
		if err == nil {
			_, err = j.Seek(valid, io.SeekStart)
		}
	}
	if err != nil {
		j.Close() //pqlint:allow errcheck-durability failure-path cleanup; the open already failed
		closeSegs()
		return nil, err
	}
	info.Duration = time.Since(t0)
	s.journal = j
	s.off = valid
	s.recovery = info
	return s, nil
}

// applyRecoveredRecord replays one journal record during open, aware that
// the record may touch a document whose previous version lives in a
// segment: removals tombstone the segment copy, updates promote it back
// into the memtable first (exactly what the live paths did before the
// record was appended).
func (s *Segmented) applyRecoveredRecord(rec []byte) error {
	r := bytes.NewReader(rec[1:])
	switch rec[0] {
	case recAdd:
		id, err := readString(r)
		if err != nil {
			return err
		}
		bag, err := readBag(r)
		if err != nil {
			return err
		}
		if err := s.forest.AddIndex(id, bag); err != nil {
			return err
		}
		s.mu.Lock()
		s.dirty[id] = true
		s.mu.Unlock()
		return nil
	case recRemove:
		id, err := readString(r)
		if err != nil {
			return err
		}
		return s.removeApplied(id)
	case recUpdate:
		id, err := readString(r)
		if err != nil {
			return err
		}
		iMinus, err := readBag(r)
		if err != nil {
			return err
		}
		iPlus, err := readBag(r)
		if err != nil {
			return err
		}
		if err := s.promoteIfEvicted(id); err != nil {
			return err
		}
		return s.forest.ApplyDeltas(id, iPlus, iMinus)
	}
	return fmt.Errorf("unknown record type %q", rec[0])
}

// Recovery reports what OpenSegmented found and repaired. Zero for a
// freshly created store.
func (s *Segmented) Recovery() RecoveryInfo { return s.recovery }

// SetSync makes every journal append fsync before returning (durability
// over throughput; off by default).
func (s *Segmented) SetSync(on bool) { s.sync = on }

// SetFlushThreshold sets the auto-flush trigger: after a mutation, if at
// least docs documents are resident, Flush runs inline. Zero (the
// default) disables auto-flush; Flush and Compact remain available.
func (s *Segmented) SetFlushThreshold(docs int) { s.flushDocs = docs }

// Forest returns the live in-memory index. Callers must not mutate it
// directly — use the store's Add/Remove/Update so changes are journaled.
func (s *Segmented) Forest() *forest.Index { return s.forest }

// Path returns the store's base path (the manifest is path+".manifest").
func (s *Segmented) Path() string { return s.path }

// JournalSize returns the current journal length in bytes.
func (s *Segmented) JournalSize() (int64, error) {
	fi, err := s.journal.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the journal and every open segment. The store must not be
// used afterwards.
func (s *Segmented) Close() error {
	err := s.journal.Close()
	s.mu.Lock()
	for _, sg := range s.segs {
		if cerr := sg.close(); err == nil {
			err = cerr
		}
	}
	s.segs = nil
	s.mu.Unlock()
	return err
}

// --- mutations ---------------------------------------------------------

// Add indexes a tree and journals the addition.
func (s *Segmented) Add(id string, t *tree.Tree) error {
	if s.forest.Has(id) {
		return fmt.Errorf("store: tree %q already indexed", id)
	}
	idx := profile.BuildIndex(t, s.forest.Params())
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, idx)
	if err := s.append(recAdd, buf.Bytes()); err != nil {
		return err
	}
	if err := s.forest.AddIndex(id, idx); err != nil {
		return err
	}
	s.mu.Lock()
	s.dirty[id] = true
	s.mu.Unlock()
	return s.maybeFlush()
}

// AddAll bulk-indexes documents: profiled concurrently, journaled one
// record per document, merged into the postings in parallel. The batch is
// validated up front; workers < 1 means GOMAXPROCS.
func (s *Segmented) AddAll(docs []forest.Doc, workers int) error {
	seen := make(map[string]bool, len(docs))
	ids := make([]string, len(docs))
	for i, d := range docs {
		if s.forest.Has(d.ID) {
			return fmt.Errorf("store: tree %q already indexed", d.ID)
		}
		if seen[d.ID] {
			return fmt.Errorf("store: tree %q appears twice in batch", d.ID)
		}
		seen[d.ID] = true
		ids[i] = d.ID
	}
	bags := forest.BuildIndexes(docs, s.forest.Params(), workers)
	for i, bag := range bags {
		var buf bytes.Buffer
		writeString(&buf, ids[i])
		writeBag(&buf, bag)
		if err := s.append(recAdd, buf.Bytes()); err != nil {
			return err
		}
	}
	if err := s.forest.AddIndexes(ids, bags, workers); err != nil {
		return err
	}
	s.mu.Lock()
	for _, id := range ids {
		s.dirty[id] = true
	}
	s.mu.Unlock()
	return s.maybeFlush()
}

// Remove drops a tree and journals the removal. If the document's bag
// lives in a segment, the copy is tombstoned: the next flush makes the
// deletion durable in segment form, and until then the journal record
// carries it.
func (s *Segmented) Remove(id string) error {
	if !s.forest.Has(id) {
		return fmt.Errorf("store: tree %q not indexed", id)
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	if err := s.append(recRemove, buf.Bytes()); err != nil {
		return err
	}
	return s.removeApplied(id)
}

// removeApplied applies a removal whose journal record is already
// durable: drop the forest entry, then the tier location (with a
// tombstone, if a segment holds a copy). Lookups racing the two steps can
// see the tier serve an id the registry no longer has; every query path
// nil-guards that.
func (s *Segmented) removeApplied(id string) error {
	if err := s.forest.Remove(id); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.loc[id]; ok {
		delete(s.loc, id)
		s.tombs[id] = true
	}
	delete(s.dirty, id)
	s.mu.Unlock()
	return nil
}

// Put replaces a document, journaling a removal (if the id is indexed)
// followed by an addition, and returns the new document's pq-gram count.
// A crash in between recovers to the state with the document absent — a
// prefix of the two sub-steps.
func (s *Segmented) Put(id string, t *tree.Tree) (int, error) {
	if s.forest.Has(id) {
		if err := s.Remove(id); err != nil {
			return 0, err
		}
	}
	if err := s.Add(id, t); err != nil {
		return 0, err
	}
	grams, _, _ := s.forest.TreeStats(id)
	return grams, nil
}

// Update incrementally maintains one document's index (Algorithm 1),
// journaling only the two delta bags. A flushed document is promoted back
// into the memtable first — promotion changes no content and is not
// journaled; replay re-promotes when it reaches the update record.
func (s *Segmented) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	if !s.forest.Has(id) {
		return core.Stats{}, fmt.Errorf("store: tree %q not indexed", id)
	}
	iPlus, iMinus, st, err := core.Deltas(tn, log, s.forest.Params())
	if err != nil {
		return st, err
	}
	// Promote before journaling: if it fails, nothing was appended and
	// nothing changed; a crash right after it recovers the document as
	// still evicted, which is the same content.
	if err := s.promoteIfEvicted(id); err != nil {
		return st, err
	}
	var buf bytes.Buffer
	writeString(&buf, id)
	writeBag(&buf, iMinus)
	writeBag(&buf, iPlus)
	if err := s.append(recUpdate, buf.Bytes()); err != nil {
		return st, err
	}
	if err := s.forest.ApplyDeltas(id, iPlus, iMinus); err != nil {
		return st, err
	}
	return st, s.maybeFlush()
}

// promoteIfEvicted pulls a flushed document's bag out of its segment and
// back into the memtable, tombstoning the segment copy under the same
// registry write lock (forest.Promote's swap callback) so no lookup can
// count the document twice.
func (s *Segmented) promoteIfEvicted(id string) error {
	s.mu.RLock()
	l, ok := s.loc[id]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	bag, err := l.seg.bag(l.ref)
	if err != nil {
		return err
	}
	return s.forest.Promote(id, bag, func() {
		s.mu.Lock()
		delete(s.loc, id)
		s.tombs[id] = true
		s.dirty[id] = true
		s.mu.Unlock()
	})
}

// maybeFlush runs Flush when auto-flush is enabled and the resident
// population reached the threshold.
func (s *Segmented) maybeFlush() error {
	if s.flushDocs <= 0 {
		return nil
	}
	s.mu.RLock()
	n := len(s.dirty)
	s.mu.RUnlock()
	if n < s.flushDocs {
		return nil
	}
	return s.Flush()
}

// --- flush and compaction ----------------------------------------------

// Flush writes every resident document plus the pending tombstones as one
// new segment, publishes it through an atomic manifest replace, evicts
// the flushed documents from the memtable, and resets the journal against
// the new manifest. A no-op when nothing is resident and no tombstones
// are pending. See the package comment for the crash ordering.
func (s *Segmented) Flush() error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after earlier failure: %w", s.failed)
	}
	s.mu.RLock()
	ids := make([]string, 0, len(s.dirty))
	for id := range s.dirty {
		ids = append(ids, id)
	}
	tombsOut := make([]string, 0, len(s.tombs))
	for id := range s.tombs {
		// A tombstoned id that is also resident (promoted, then kept) is
		// re-stored by this very segment; the newer copy shadows the old
		// one, so no tombstone is needed.
		if !s.dirty[id] {
			tombsOut = append(tombsOut, id)
		}
	}
	seq := s.nextSeq
	liveSegs := make([]manifestSeg, 0, len(s.segs)+1)
	for _, sg := range s.segs {
		liveSegs = append(liveSegs, manifestSeg{seq: sg.seq, crc: sg.crc})
	}
	pending := append([]uint64(nil), s.obsolete...)
	s.mu.RUnlock()
	if len(ids) == 0 && len(tombsOut) == 0 {
		return nil
	}
	m := s.obs.Load()
	var t0 time.Time
	var sp *obs.Span
	if m != nil {
		t0 = time.Now()
		sp = m.col.StartTrace("store.flush")
		defer sp.Finish()
	}
	sort.Strings(ids)
	sort.Strings(tombsOut)
	docs := make([]segDoc, len(ids))
	for i, id := range ids {
		bag := s.forest.TreeIndex(id)
		if bag == nil {
			return fmt.Errorf("store: flush: resident tree %q not indexed", id)
		}
		docs[i] = segDoc{id: id, bag: bag}
	}

	segName := segmentPath(s.path, seq)
	crc, _, err := writeSegment(s.fs, segName, s.forest.Params(), seq, docs, tombsOut)
	if err != nil {
		// Whether or not the rename happened, the manifest does not name
		// this segment: the store's durable state is untouched and the
		// next flush renames over the same sequence number.
		return err
	}
	// Open-verify before publishing: the manifest must never name a
	// segment that does not read back byte-exact.
	sg, err := openSegment(s.fs, segName, s.forest.Params(), seq)
	if err != nil {
		return fmt.Errorf("store: flush: verifying new segment: %w", err)
	}
	if sg.crc != crc {
		sg.close() //pqlint:allow errcheck-durability failure-path cleanup of a rejected read-only handle
		return fmt.Errorf("store: flush: segment %s read back with crc %08x, wrote %08x", segName, sg.crc, crc)
	}

	man := &manifest{
		pr:       s.forest.Params(),
		nextSeq:  seq + 1,
		segs:     append(liveSegs, manifestSeg{seq: seq, crc: crc}),
		obsolete: pending,
	}
	manCRC, renamed, err := writeManifestFile(s.fs, manifestPath(s.path), man)
	if err != nil {
		sg.close() //pqlint:allow errcheck-durability failure-path cleanup of a read-only handle; the segment stays unpublished
		if renamed {
			// The live segment set advanced on disk but its durability is
			// uncertain, and memory no longer matches it.
			s.failed = err
			return fmt.Errorf("store: flush: manifest replaced but not settled: %w", err)
		}
		return err // old manifest + intact journal: nothing lost
	}
	if err := s.forest.Evict(ids, func() {
		s.mu.Lock()
		s.segs = append(s.segs, sg)
		for i, id := range ids {
			s.loc[id] = segLoc{seg: sg, ref: i}
		}
		s.tombs = make(map[string]bool)
		s.dirty = make(map[string]bool)
		s.nextSeq = seq + 1
		s.manCRC = manCRC
		s.mu.Unlock()
	}); err != nil {
		// The manifest already advanced; a memtable that refuses to match
		// it cannot accept further writes safely.
		s.failed = err
		return fmt.Errorf("store: flush: evicting flushed documents: %w", err)
	}
	if err := s.resetJournal(manCRC); err != nil {
		s.failed = err
		return fmt.Errorf("store: flush: journal reset failed: %w", err)
	}
	if m != nil {
		m.flushes.Inc()
		m.flushedDocs.Add(int64(len(ids)))
		m.flushNS.ObserveSince(t0)
		m.journalBytes.Set(journalHeaderLen)
		s.publishGauges(m)
		sp.SetAttr("seq", int64(seq))
		sp.SetAttr("docs", int64(len(ids)))
		sp.SetAttr("tombstones", int64(len(tombsOut)))
		sp.SetAttr("segment_bytes", sg.size)
		m.col.Event("segment flushed",
			"path", segName, "seq", seq, "docs", len(ids),
			"tombstones", len(tombsOut), "bytes", sg.size)
	}
	return nil
}

// Compact merges the memtable and every live segment into one new
// segment with no tombstones, replaces the manifest with exactly that
// segment (naming the superseded files obsolete), and resets the journal.
// The same crash ordering as Flush applies; superseded segment files are
// removed best-effort afterwards, and the manifest's obsolete list lets
// the next open retry any removal that did not stick.
func (s *Segmented) Compact() error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after earlier failure: %w", s.failed)
	}
	m := s.obs.Load()
	var t0 time.Time
	var sp *obs.Span
	if m != nil {
		t0 = time.Now()
		sp = m.col.StartTrace("store.compact")
		defer sp.Finish()
	}
	s.mu.RLock()
	resident := make([]string, 0, len(s.dirty))
	for id := range s.dirty {
		resident = append(resident, id)
	}
	all := make([]string, 0, len(s.dirty)+len(s.loc))
	all = append(all, resident...)
	for id := range s.loc {
		all = append(all, id)
	}
	seq := s.nextSeq
	oldSegs := append([]*segment(nil), s.segs...)
	pending := append([]uint64(nil), s.obsolete...)
	s.mu.RUnlock()
	sort.Strings(resident)
	sort.Strings(all)

	docs := make([]segDoc, len(all))
	for i, id := range all {
		bag := s.forest.TreeIndex(id)
		if bag == nil {
			return fmt.Errorf("store: compact: tree %q not indexed", id)
		}
		docs[i] = segDoc{id: id, bag: bag}
	}

	obsolete := pending
	for _, sg := range oldSegs {
		obsolete = append(obsolete, sg.seq)
	}
	sort.Slice(obsolete, func(i, j int) bool { return obsolete[i] < obsolete[j] })

	man := &manifest{pr: s.forest.Params(), nextSeq: seq, obsolete: obsolete}
	var sg *segment
	if len(docs) > 0 {
		segName := segmentPath(s.path, seq)
		crc, _, err := writeSegment(s.fs, segName, s.forest.Params(), seq, docs, nil)
		if err != nil {
			return err
		}
		sg, err = openSegment(s.fs, segName, s.forest.Params(), seq)
		if err != nil {
			return fmt.Errorf("store: compact: verifying new segment: %w", err)
		}
		if sg.crc != crc {
			sg.close() //pqlint:allow errcheck-durability failure-path cleanup of a rejected read-only handle
			return fmt.Errorf("store: compact: segment %s read back with crc %08x, wrote %08x", segName, sg.crc, crc)
		}
		man.nextSeq = seq + 1
		man.segs = []manifestSeg{{seq: seq, crc: crc}}
	}
	manCRC, renamed, err := writeManifestFile(s.fs, manifestPath(s.path), man)
	if err != nil {
		if sg != nil {
			sg.close() //pqlint:allow errcheck-durability failure-path cleanup of a read-only handle; the segment stays unpublished
		}
		if renamed {
			s.failed = err
			return fmt.Errorf("store: compact: manifest replaced but not settled: %w", err)
		}
		return err
	}
	if err := s.forest.Evict(resident, func() {
		s.mu.Lock()
		for _, og := range oldSegs {
			// Read-only handles of superseded files; their content is
			// durable in the new segment already.
			og.close() //pqlint:allow errcheck-durability read-only handle of a superseded segment; its content is in the new one
		}
		s.segs = nil
		s.loc = make(map[string]segLoc, len(all))
		if sg != nil {
			s.segs = []*segment{sg}
			for i, id := range all {
				s.loc[id] = segLoc{seg: sg, ref: i}
			}
		}
		s.tombs = make(map[string]bool)
		s.dirty = make(map[string]bool)
		s.nextSeq = man.nextSeq
		s.manCRC = manCRC
		s.obsolete = obsolete
		s.mu.Unlock()
	}); err != nil {
		s.failed = err
		return fmt.Errorf("store: compact: evicting documents: %w", err)
	}
	if err := s.resetJournal(manCRC); err != nil {
		s.failed = err
		return fmt.Errorf("store: compact: journal reset failed: %w", err)
	}
	s.gcObsolete(obsolete)
	if m != nil {
		m.compactions.Inc()
		m.compactNS.ObserveSince(t0)
		m.journalBytes.Set(journalHeaderLen)
		s.publishGauges(m)
		sp.SetAttr("seq", int64(seq))
		sp.SetAttr("docs", int64(len(all)))
		sp.SetAttr("merged_segments", int64(len(oldSegs)))
		m.col.Event("segments compacted",
			"path", s.path, "seq", seq, "docs", len(all), "merged", len(oldSegs))
	}
	return nil
}

// gcObsolete attempts to remove the named superseded segment files and
// records the ones whose removal must be retried later. A file already
// gone counts as removed.
func (s *Segmented) gcObsolete(seqs []uint64) {
	var remain []uint64
	for _, seq := range seqs {
		if err := s.fs.Remove(segmentPath(s.path, seq)); err != nil && !errors.Is(err, os.ErrNotExist) {
			remain = append(remain, seq)
		}
	}
	s.mu.Lock()
	s.obsolete = remain
	s.mu.Unlock()
}

// --- journal plumbing (mirrors the monolithic store's) ------------------

// resetJournal truncates the journal and writes a fresh header bound to
// manCRC. Any crash inside leaves an empty, torn or stale journal — all
// of which OpenSegmented resolves to "no records", which is correct
// because the caller has already made the segments contain everything.
func (s *Segmented) resetJournal(manCRC uint32) error {
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.journal.Write(journalHeader(manCRC)); err != nil {
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	s.off = journalHeaderLen
	return nil
}

// append writes one length-prefixed, checksummed record as a single write
// at the current record boundary, with the same rollback-or-poison
// contract as the monolithic store's append.
func (s *Segmented) append(typ byte, payload []byte) error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after earlier failure: %w", s.failed)
	}
	m := s.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	var rec bytes.Buffer
	rec.WriteByte(typ)
	putUvarint(&rec, uint64(len(payload)))
	rec.Write(payload)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	rec.Write(sum[:])

	n, err := s.journal.Write(rec.Bytes())
	if err != nil || n < rec.Len() {
		if err == nil {
			err = io.ErrShortWrite
		}
		s.rollback(n)
		return err
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			s.rollback(n)
			s.failed = err
			return err
		}
	}
	s.off += int64(rec.Len())
	if m != nil {
		m.appends.Inc()
		m.appendBytes.Add(int64(rec.Len()))
		m.journalBytes.Add(int64(rec.Len()))
		m.appendNS.ObserveSince(t0)
		if sp := m.col.StartTrace("store.append"); sp != nil {
			sp.SetAttr("bytes", int64(rec.Len()))
			sp.FinishWithDuration(time.Since(t0))
		}
	}
	return nil
}

// rollback restores the journal to the last record boundary after wrote
// bytes of a failed append; a rollback that itself fails poisons the
// store.
func (s *Segmented) rollback(wrote int) {
	if wrote > 0 {
		if err := s.journal.Truncate(s.off); err != nil {
			s.failed = err
			return
		}
	}
	if _, err := s.journal.Seek(s.off, io.SeekStart); err != nil {
		s.failed = err
	}
}

// --- the forest.Tier implementation ------------------------------------

// Overlaps implements forest.Tier: the overlap of the query bag with
// every live evicted document, accumulated per segment with a bloom
// pre-filter and batched, fence-guided block probes. Called by the forest
// with its registry lock held; panics on a segment read failure (see the
// package comment).
func (s *Segmented) Overlaps(q profile.Index) (map[string]int, forest.TierStats) {
	var st forest.TierStats
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.segs) == 0 || len(q) == 0 {
		return nil, st
	}
	tuples := make([]uint64, 0, len(q))
	for lt := range q {
		tuples = append(tuples, uint64(lt))
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
	out := make(map[string]int)
	passed := make([]uint64, 0, len(tuples))
	var ovs []int // per-ref overlap accumulator, reused across segments
	for _, sg := range s.segs {
		passed = passed[:0]
		for _, lt := range tuples {
			st.BloomChecks++
			if sg.bloom.mayContain(lt) {
				passed = append(passed, lt)
			} else {
				st.BloomSkips++
			}
		}
		if len(passed) == 0 {
			continue
		}
		st.SegmentsProbed++
		// Accumulate by integer doc ref first — the per-tuple inner loop
		// is the hottest code in a tier lookup, and hashing the id string
		// there (instead of once per overlapping doc below) dominates it.
		if cap(ovs) < len(sg.docs) {
			ovs = make([]int, len(sg.docs))
		} else {
			ovs = ovs[:len(sg.docs)]
			for i := range ovs {
				ovs[i] = 0
			}
		}
		scanned, err := sg.probeBatch(passed, func(lt uint64, list []segPosting) {
			qc := q[profile.LabelTuple(lt)]
			for _, pe := range list {
				ov := int(pe.cnt)
				if ov > qc {
					ov = qc
				}
				ovs[pe.ref] += ov
			}
		})
		st.PostingsScanned += scanned
		if err != nil {
			panic(fmt.Sprintf("store: segment %s: unrecoverable read during lookup: %v", sg.path, err))
		}
		for ref, ov := range ovs {
			if ov == 0 {
				continue
			}
			id := sg.docs[ref].id
			if l, ok := s.loc[id]; !ok || l.seg != sg {
				continue // shadowed by a newer segment, deleted, or promoted
			}
			out[id] += ov
		}
	}
	return out, st
}

// Bag implements forest.Tier: a fresh copy of one evicted document's bag.
// Panics on a segment read failure.
func (s *Segmented) Bag(id string) (profile.Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.loc[id]
	if !ok {
		return nil, false
	}
	bag, err := l.seg.bag(l.ref)
	if err != nil {
		panic(fmt.Sprintf("store: segment %s: unrecoverable read during lookup: %v", l.seg.path, err))
	}
	return bag, true
}

// ForEachPosting implements forest.Tier: a k-way merge of every live
// segment's posting blocks in ascending tuple order, entries filtered to
// live documents and sorted by id. Panics on a segment read failure.
func (s *Segmented) ForEachPosting(fn func(lt profile.LabelTuple, entries []forest.TierPosting) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type cursor struct {
		seg *segment
		bi  int
		ti  int
		blk *segBlock
	}
	curs := make([]*cursor, 0, len(s.segs))
	for _, sg := range s.segs {
		if len(sg.fences) == 0 {
			continue
		}
		blk, err := sg.block(0)
		if err != nil {
			panic(fmt.Sprintf("store: segment %s: unrecoverable read during join: %v", sg.path, err))
		}
		curs = append(curs, &cursor{seg: sg, blk: blk})
	}
	var entries []forest.TierPosting
	for len(curs) > 0 {
		lo := curs[0].blk.tuples[curs[0].ti]
		for _, c := range curs[1:] {
			if t := c.blk.tuples[c.ti]; t < lo {
				lo = t
			}
		}
		entries = entries[:0]
		for _, c := range curs {
			if c.blk.tuples[c.ti] != lo {
				continue
			}
			for _, pe := range c.blk.lists[c.ti] {
				id := c.seg.docs[pe.ref].id
				if l, ok := s.loc[id]; !ok || l.seg != c.seg {
					continue
				}
				entries = append(entries, forest.TierPosting{ID: id, Cnt: int(pe.cnt)})
			}
		}
		if len(entries) > 0 {
			// A document has exactly one live copy, so ids are unique here;
			// sorting keeps the contract deterministic across segments.
			sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
			if err := fn(profile.LabelTuple(lo), entries); err != nil {
				return err
			}
		}
		live := curs[:0]
		for _, c := range curs {
			if c.blk.tuples[c.ti] == lo {
				c.ti++
				if c.ti >= len(c.blk.tuples) {
					c.bi++
					c.ti = 0
					if c.bi >= len(c.seg.fences) {
						continue // segment exhausted
					}
					blk, err := c.seg.block(c.bi)
					if err != nil {
						panic(fmt.Sprintf("store: segment %s: unrecoverable read during join: %v", c.seg.path, err))
					}
					c.blk = blk
				}
			}
			live = append(live, c)
		}
		curs = live
	}
	return nil
}

// --- introspection ------------------------------------------------------

// SegmentStats summarizes the segmented store's current shape, for
// `pqindex info` and the serve tier's stats endpoint.
type SegmentStats struct {
	Segments          int    `json:"segments"`
	SegmentBytes      int64  `json:"segment_bytes"`
	ResidentDocs      int    `json:"resident_docs"`
	EvictedDocs       int    `json:"evicted_docs"`
	PendingTombstones int    `json:"pending_tombstones"`
	NextSeq           uint64 `json:"next_seq"`
}

// Stats returns the store's current segment shape.
func (s *Segmented) Stats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := SegmentStats{
		Segments:          len(s.segs),
		ResidentDocs:      len(s.dirty),
		EvictedDocs:       len(s.loc),
		PendingTombstones: len(s.tombs),
		NextSeq:           s.nextSeq,
	}
	for _, sg := range s.segs {
		st.SegmentBytes += sg.size
	}
	return st
}
