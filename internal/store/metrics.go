// Instrumentation of the durable store: journal append/replay/compaction
// counts, bytes and latencies. Like the forest, metrics are opt-in through
// a nil-safe collector resolved once into preallocated handles.
package store

import (
	"time"

	"pqgram/internal/obs"
)

// storeMetrics holds the preresolved metric handles of one store.
type storeMetrics struct {
	col *obs.Collector

	appends     *obs.Counter   // store_journal_appends
	appendBytes *obs.Counter   // store_journal_append_bytes
	appendNS    *obs.Histogram // store_journal_append_ns

	replays       *obs.Counter   // store_journal_replays
	replayRecords *obs.Counter   // store_journal_replay_records
	replayBytes   *obs.Counter   // store_journal_replay_bytes
	replayNS      *obs.Histogram // store_journal_replay_ns

	compactions   *obs.Counter   // store_compactions
	compactNS     *obs.Histogram // store_compact_ns
	snapshotBytes *obs.Gauge     // store_snapshot_bytes (size of the last base snapshot)
	journalBytes  *obs.Gauge     // store_journal_bytes (current journal length)
}

// replayInfo remembers what OpenStore recovered, so the numbers can be
// published when a collector is attached after the fact (replay happens
// before any collector can exist on a fresh store handle).
type replayInfo struct {
	records int64
	bytes   int64
	dur     time.Duration
}

// SetCollector attaches (or, with nil, detaches) a metrics collector to
// the store and to its in-memory forest. The journal replay that OpenStore
// performed is published into the replay metrics on first attach. Attach a
// collector once per store handle; re-attaching the same collector would
// re-publish the replay numbers.
func (s *Store) SetCollector(c *obs.Collector) {
	s.forest.SetCollector(c)
	if c == nil {
		s.obs.Store(nil)
		return
	}
	m := &storeMetrics{
		col:           c,
		appends:       c.Counter("store_journal_appends"),
		appendBytes:   c.Counter("store_journal_append_bytes"),
		appendNS:      c.Histogram("store_journal_append_ns"),
		replays:       c.Counter("store_journal_replays"),
		replayRecords: c.Counter("store_journal_replay_records"),
		replayBytes:   c.Counter("store_journal_replay_bytes"),
		replayNS:      c.Histogram("store_journal_replay_ns"),
		compactions:   c.Counter("store_compactions"),
		compactNS:     c.Histogram("store_compact_ns"),
		snapshotBytes: c.Gauge("store_snapshot_bytes"),
		journalBytes:  c.Gauge("store_journal_bytes"),
	}
	if s.replayed.records > 0 || s.replayed.bytes > 0 {
		m.replays.Inc()
		m.replayRecords.Add(s.replayed.records)
		m.replayBytes.Add(s.replayed.bytes)
		m.replayNS.Observe(s.replayed.dur.Nanoseconds())
		c.Event("journal replayed",
			"path", s.path,
			"records", s.replayed.records,
			"bytes", s.replayed.bytes,
			"dur", s.replayed.dur)
	}
	if n, err := s.JournalSize(); err == nil {
		m.journalBytes.Set(n)
	}
	s.obs.Store(m)
}

// Collector returns the attached collector, or nil.
func (s *Store) Collector() *obs.Collector {
	if m := s.obs.Load(); m != nil {
		return m.col
	}
	return nil
}
