// Instrumentation of the durable store: journal append/replay/compaction
// counts, bytes and latencies. Like the forest, metrics are opt-in through
// a nil-safe collector resolved once into preallocated handles.

package store

import (
	"pqgram/internal/obs"
)

// storeMetrics holds the preresolved metric handles of one store.
type storeMetrics struct {
	col *obs.Collector

	appends     *obs.Counter   // store_journal_appends
	appendBytes *obs.Counter   // store_journal_append_bytes
	appendNS    *obs.Histogram // store_journal_append_ns

	replays       *obs.Counter   // store_journal_replays
	replayRecords *obs.Counter   // store_journal_replay_records
	replayBytes   *obs.Counter   // store_journal_replay_bytes
	replayNS      *obs.Histogram // store_journal_replay_ns

	// Recovery-anomaly counters: what OpenStore had to drop to get back
	// to a consistent state. All zero on a clean reopen.
	replayTorn      *obs.Counter // store_replay_torn_bytes
	replaySkipped   *obs.Counter // store_replay_skipped_records
	replayStale     *obs.Counter // store_replay_stale_discards
	replayResets    *obs.Counter // store_replay_journal_resets
	replayDiscarded *obs.Counter // store_replay_discarded_bytes

	compactions   *obs.Counter   // store_compactions
	compactNS     *obs.Histogram // store_compact_ns
	snapshotBytes *obs.Gauge     // store_snapshot_bytes (size of the last base snapshot)
	journalBytes  *obs.Gauge     // store_journal_bytes (current journal length)
}

// SetCollector attaches (or, with nil, detaches) a metrics collector to
// the store and to its in-memory forest. The journal replay that OpenStore
// performed is published into the replay metrics on first attach. Attach a
// collector once per store handle; re-attaching the same collector would
// re-publish the replay numbers.
func (s *Store) SetCollector(c *obs.Collector) {
	s.forest.SetCollector(c)
	if c == nil {
		s.obs.Store(nil)
		return
	}
	m := &storeMetrics{
		col:             c,
		appends:         c.Counter("store_journal_appends"),
		appendBytes:     c.Counter("store_journal_append_bytes"),
		appendNS:        c.Histogram("store_journal_append_ns"),
		replays:         c.Counter("store_journal_replays"),
		replayRecords:   c.Counter("store_journal_replay_records"),
		replayBytes:     c.Counter("store_journal_replay_bytes"),
		replayNS:        c.Histogram("store_journal_replay_ns"),
		replayTorn:      c.Counter("store_replay_torn_bytes"),
		replaySkipped:   c.Counter("store_replay_skipped_records"),
		replayStale:     c.Counter("store_replay_stale_discards"),
		replayResets:    c.Counter("store_replay_journal_resets"),
		replayDiscarded: c.Counter("store_replay_discarded_bytes"),
		compactions:     c.Counter("store_compactions"),
		compactNS:       c.Histogram("store_compact_ns"),
		snapshotBytes:   c.Gauge("store_snapshot_bytes"),
		journalBytes:    c.Gauge("store_journal_bytes"),
	}
	r := s.recovery
	if r != (RecoveryInfo{}) {
		m.replays.Inc()
		m.replayRecords.Add(r.Records)
		m.replayBytes.Add(r.Bytes)
		m.replayNS.Observe(r.Duration.Nanoseconds())
		m.replayTorn.Add(r.TornBytes)
		m.replaySkipped.Add(r.SkippedRecords)
		m.replayDiscarded.Add(r.DiscardedBytes)
		if r.StaleJournal {
			m.replayStale.Inc()
		}
		if r.JournalReset {
			m.replayResets.Inc()
		}
		c.Event("journal replayed",
			"path", s.path,
			"records", r.Records,
			"bytes", r.Bytes,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale", r.StaleJournal,
			"dur", r.Duration)
		// The replay happened inside OpenStore, before any collector (or
		// tracer) could exist, so its trace is synthesized here from
		// RecoveryInfo and published with the recorded wall time.
		if tr := c.Tracer(); tr != nil {
			sp := obs.StartSpan("store.replay")
			sp.SetAttr("records", r.Records)
			sp.SetAttr("bytes", r.Bytes)
			sp.SetAttr("torn_bytes", r.TornBytes)
			sp.SetAttr("skipped_records", r.SkippedRecords)
			sp.SetAttr("discarded_bytes", r.DiscardedBytes)
			sp.SetAttr("stale_journal", boolAttr(r.StaleJournal))
			sp.SetAttr("journal_reset", boolAttr(r.JournalReset))
			sp.SetAttr("metric_restored", boolAttr(r.MetricRestored))
			sp.SetAttr("metric_discarded", boolAttr(r.MetricDiscarded))
			sp.FinishWithDuration(r.Duration)
			tr.Publish(obs.TraceSnapshot{Root: sp.Snapshot()})
		}
	}
	if n, err := s.JournalSize(); err == nil {
		m.journalBytes.Set(n)
	}
	s.obs.Store(m)
}

// boolAttr encodes a recovery flag as a 0/1 span attribute.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Collector returns the attached collector, or nil.
func (s *Store) Collector() *obs.Collector {
	if m := s.obs.Load(); m != nil {
		return m.col
	}
	return nil
}
