package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// TestSegmentedLifecycleOnDisk exercises the real-filesystem constructors
// end to end: create, bulk-add, auto-detect via IsSegmented, reopen, and
// query a store whose documents all live in segment files.
func TestSegmentedLifecycleOnDisk(t *testing.T) {
	base := filepath.Join(t.TempDir(), "idx.pqg")
	if IsSegmented(base) {
		t.Fatal("IsSegmented true before creation")
	}
	s, err := CreateSegmented(base, p33)
	if err != nil {
		t.Fatal(err)
	}
	if s.Path() != base {
		t.Fatalf("Path = %q", s.Path())
	}
	docs := make([]forest.Doc, 6)
	for i := range docs {
		docs[i] = forest.Doc{ID: fmt.Sprintf("doc-%d", i), Tree: gen.XMark(int64(i), 25)}
	}
	if err := s.AddAll(docs, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAll([]forest.Doc{{ID: "doc-0", Tree: docs[0].Tree}}, 1); err == nil {
		t.Fatal("AddAll accepted a duplicate id")
	}
	if err := s.AddAll([]forest.Doc{{ID: "x", Tree: docs[0].Tree}, {ID: "x", Tree: docs[1].Tree}}, 1); err == nil {
		t.Fatal("AddAll accepted an in-batch duplicate")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // idempotent no-op: nothing resident
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.ResidentDocs != 0 || st.EvictedDocs != 6 {
		t.Fatalf("after flush: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if !IsSegmented(base) {
		t.Fatal("IsSegmented false after creation")
	}
	rs, err := OpenSegmented(base)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Forest().Len() != 6 {
		t.Fatalf("reopened with %d docs", rs.Forest().Len())
	}
	if ms := rs.Forest().Lookup(docs[3].Tree, 0.5); len(ms) == 0 || ms[0].TreeID != "doc-3" {
		t.Fatalf("segment-served lookup: %v", ms)
	}
	if err := rs.Forest().SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedPutAndErrors covers Put's replace semantics and the
// mutation error paths shared with the monolithic store.
func TestSegmentedPutAndErrors(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	grams, err := s.Put("a", tree.MustParse("r(x y)"))
	if err != nil || grams == 0 {
		t.Fatalf("fresh Put: %d grams, %v", grams, err)
	}
	if err := s.Add("a", tree.MustParse("r(z)")); err == nil {
		t.Fatal("Add accepted an existing id")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Put of an evicted document: journaled remove (tombstone) + add.
	if _, err := s.Put("a", tree.MustParse("r(x y z)")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ResidentDocs != 1 || st.EvictedDocs != 0 || st.PendingTombstones != 1 {
		t.Fatalf("after evicted Put: %+v", st)
	}
	if err := s.Remove("ghost"); err == nil {
		t.Fatal("Remove accepted an unknown id")
	}
	if _, err := s.Update("ghost", tree.MustParse("g"), nil); err == nil {
		t.Fatal("Update accepted an unknown id")
	}
	// Flush writes the new copy; the tombstone is unnecessary (same id is
	// re-stored) and must not shadow it.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if ms := s.Forest().Lookup(tree.MustParse("r(x y z)"), 0.2); len(ms) != 1 || ms[0].TreeID != "a" {
		t.Fatalf("replaced doc lost: %v", ms)
	}
}

// TestSegmentedEmptyCompact: compacting a store whose every document was
// removed publishes a segment-less manifest, and the store reopens empty.
func TestSegmentedEmptyCompact(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", tree.MustParse("r(x)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments != 0 || st.EvictedDocs != 0 || st.ResidentDocs != 0 {
		t.Fatalf("empty compact left %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenSegmentedFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Forest().Len() != 0 {
		t.Fatalf("reopened with %d docs", rs.Forest().Len())
	}
	rs.Close()
	if fs.OpenHandles() != 0 {
		t.Fatalf("%d handles leaked", fs.OpenHandles())
	}
}

// TestSegmentedMetrics: the collector sees the segment lifecycle — flush
// and compaction counters, shape gauges, and the replayed-journal metrics
// on reattach after a recovery.
func TestSegmentedMetrics(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSync(true) // cover the sync branches of append and resetJournal
	col := obs.NewCollector()
	col.SetTracer(obs.NewTracer(1, 16))
	s.SetCollector(col)
	if s.Collector() != col {
		t.Fatal("Collector() did not return the attached collector")
	}
	for i := 0; i < 5; i++ {
		if err := s.Add(fmt.Sprintf("doc-%d", i), gen.XMark(int64(i), 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("late", gen.XMark(99, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	for name, want := range map[string]int64{
		"store_segment_flushes":      1,
		"store_segment_flushed_docs": 5,
		"store_segment_compactions":  1,
		"store_journal_appends":      6,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
	if snap.Gauges["store_segment_count"] != 1 || snap.Gauges["store_evicted_docs"] != 6 {
		t.Fatalf("shape gauges: count=%d evicted=%d",
			snap.Gauges["store_segment_count"], snap.Gauges["store_evicted_docs"])
	}
	if snap.Gauges["store_segment_bytes"] <= 0 {
		t.Fatalf("store_segment_bytes = %d", snap.Gauges["store_segment_bytes"])
	}
	if snap.Gauges["store_journal_bytes"] != journalHeaderLen {
		t.Fatalf("store_journal_bytes = %d after compact", snap.Gauges["store_journal_bytes"])
	}

	// Leave a journaled mutation unflushed, reopen, and reattach: the
	// replay must be published, including its synthesized trace span.
	if err := s.Add("tail", gen.XMark(100, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenSegmentedFS(fs, "idx.pqg")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	col2 := obs.NewCollector()
	col2.SetTracer(obs.NewTracer(1, 16))
	rs.SetCollector(col2)
	snap2 := col2.Snapshot()
	if snap2.Counters["store_journal_replays"] != 1 || snap2.Counters["store_journal_replay_records"] != 1 {
		t.Fatalf("replay counters: %d replays, %d records",
			snap2.Counters["store_journal_replays"], snap2.Counters["store_journal_replay_records"])
	}
	found := false
	for _, tr := range col2.Tracer().RecentTraces(16) {
		if tr.Root.Name == "store.replay" {
			found = true
		}
	}
	if !found {
		t.Fatal("no synthesized store.replay trace after reattach")
	}
	// Detach: the metrics pointer drops and mutations keep working.
	rs.SetCollector(nil)
	if rs.Collector() != nil {
		t.Fatal("Collector() non-nil after detach")
	}
	if err := rs.Add("post-detach", gen.XMark(101, 15)); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedTierSpans: with tracing on, a lookup over segment-served
// documents produces forest spans that carry the tier's bloom and probe
// counters (the forest_bloom_* / tier counter plumbing end to end).
func TestSegmentedTierSpans(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.Add(fmt.Sprintf("doc-%d", i), gen.XMark(int64(i), 25)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	s.SetCollector(col)
	if ms := s.Forest().Lookup(gen.XMark(0, 25), 0.8); len(ms) == 0 {
		t.Fatal("lookup found nothing")
	}
	snap := col.Snapshot()
	if snap.Counters["forest_tier_segments_probed"] == 0 {
		t.Fatalf("no segments probed: %v", snap.Counters)
	}
	if snap.Counters["forest_bloom_checks"] == 0 {
		t.Fatalf("no bloom checks recorded: %v", snap.Counters)
	}
}

// TestSegmentedOrphanSegmentInvisible: a crash can leave a segment file
// the manifest never adopted; the next flush must rename over it and the
// orphan must never influence answers in between.
func TestSegmentedOrphanSegmentInvisible(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", tree.MustParse("r(x y)")); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan at the sequence number the next flush will use,
	// holding a document the store was never given.
	orphan := []segDoc{{id: "phantom", bag: profile.BuildIndex(tree.MustParse("q(a b c)"), p33)}}
	if _, _, err := writeSegment(fs, segmentPath("idx.pqg", s.Stats().NextSeq), p33, s.Stats().NextSeq, orphan, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenSegmentedFS(fs, "idx.pqg")
	if err != nil {
		t.Fatalf("open with orphan present: %v", err)
	}
	if rs.Forest().Has("phantom") {
		t.Fatal("orphan segment resurrected a document")
	}
	if err := rs.Flush(); err != nil { // renames over the orphan
		t.Fatal(err)
	}
	if rs.Forest().Has("phantom") || rs.Forest().Len() != 1 {
		t.Fatalf("after reclaiming flush: %d docs", rs.Forest().Len())
	}
	if ms := rs.Forest().Lookup(tree.MustParse("r(x y)"), 0.5); len(ms) != 1 || ms[0].TreeID != "a" {
		t.Fatalf("lookup after orphan reclaim: %v", ms)
	}
	rs.Close()
}
