package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// runInstrumentedWorkload drives one store through a fixed add/lookup/
// update/compact sequence, optionally with a collector attached, and
// returns the store for further inspection. The workload is deterministic
// so two runs are comparable byte-for-byte.
func runInstrumentedWorkload(t *testing.T, path string, col *obs.Collector) *Store {
	t.Helper()
	s, err := CreateStore(path, p33)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		s.SetCollector(col)
	}
	docs := make([]*forest.Doc, 3)
	for i := range docs {
		d := gen.XMark(int64(10+i), 200)
		if err := s.Add([]string{"a", "b", "c"}[i], d); err != nil {
			t.Fatal(err)
		}
		docs[i] = &forest.Doc{ID: []string{"a", "b", "c"}[i], Tree: d}
	}
	q := gen.XMark(10, 200)
	s.Forest().Lookup(q, 0.6)
	s.Forest().Lookup(q, 0.9)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2; i++ {
		_, log, err := gen.RandomScript(rng, docs[i].Tree, 5, gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update(docs[i].ID, docs[i].Tree, log); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMetricDeltas drives an instrumented store through a known op sequence
// and checks the counters record exactly those operations, including the
// replay metrics published when a collector attaches to a reopened store.
func TestMetricDeltas(t *testing.T) {
	profile.SetCollector(nil)
	col := obs.NewCollector()
	profile.SetCollector(col)
	t.Cleanup(func() { profile.SetCollector(nil) })

	path := filepath.Join(t.TempDir(), "idx.pqg")
	s := runInstrumentedWorkload(t, path, col)

	want := map[string]int64{
		"forest_adds":           3,
		"forest_lookups":        2,
		"forest_updates":        2,
		"store_journal_appends": 5, // 3 adds + 2 updates; Compact rewrites the base instead
		"store_compactions":     1,
	}
	snap := col.Snapshot()
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	// Every add and update builds a pq-gram profile through the global hook.
	if got := snap.Counters["profile_builds"]; got < 5 {
		t.Errorf("profile_builds = %d, want >= 5", got)
	}
	if h, ok := snap.Histograms["forest_lookup_ns"]; !ok || h.Count != 2 {
		t.Errorf("forest_lookup_ns count = %+v, want 2 samples", h)
	}
	if snap.Counters["store_journal_replays"] != 0 {
		t.Errorf("unexpected replay on a freshly created store")
	}
	// Stripe-load is a computed metric, registered at SetCollector time.
	if _, ok := snap.Values["forest_stripe_load"]; !ok {
		t.Error("forest_stripe_load missing from snapshot values")
	}

	// One post-compaction update, then reopen: the replay of that single
	// journal record must be published when the new collector attaches.
	// Doc "c" was never updated above, so its live tree is still gen.XMark(12).
	rng := rand.New(rand.NewSource(8))
	c := gen.XMark(12, 200)
	_, log, err := gen.RandomScript(rng, c, 3, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("c", c, log); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	col2 := obs.NewCollector()
	s2.SetCollector(col2)
	snap2 := col2.Snapshot()
	if got := snap2.Counters["store_journal_replays"]; got != 1 {
		t.Errorf("store_journal_replays = %d, want 1", got)
	}
	if got := snap2.Counters["store_journal_replay_records"]; got != 1 {
		t.Errorf("store_journal_replay_records = %d, want 1", got)
	}
	if got := snap2.Counters["store_journal_replay_bytes"]; got <= 0 {
		t.Errorf("store_journal_replay_bytes = %d, want > 0", got)
	}
}

// TestMetricsDifferentialSnapshot is the differential guarantee of the
// instrumentation layer: running the identical workload with metrics on and
// with metrics off must produce byte-identical index snapshots. Observation
// may never change what is observed.
func TestMetricsDifferentialSnapshot(t *testing.T) {
	dir := t.TempDir()
	plain := runInstrumentedWorkload(t, filepath.Join(dir, "plain.pqg"), nil)
	defer plain.Close()
	instr := runInstrumentedWorkload(t, filepath.Join(dir, "instr.pqg"), obs.NewCollector())
	defer instr.Close()

	var a, b bytes.Buffer
	if err := Save(&a, plain.Forest()); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, instr.Forest()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots diverge with metrics enabled: %d vs %d bytes", a.Len(), b.Len())
	}
}

// TestRecoveryMetricDeltas damages a store in each of the recoverable ways
// and checks that attaching a collector after reopen publishes exactly the
// matching anomaly counters.
func TestRecoveryMetricDeltas(t *testing.T) {
	build := func() *fsio.MemFS {
		mem := fsio.NewMemFS()
		s, err := CreateStoreFS(mem, "idx.pqg", p33)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add("a", tree.MustParse("r(x y)")); err != nil {
			t.Fatal(err)
		}
		if err := s.Add("b", tree.MustParse("r(z w)")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return mem
	}
	mangleWal := func(mem *fsio.MemFS, f func(wal []byte) []byte) {
		wal, err := fsio.ReadFile(mem, "idx.pqg.wal")
		if err != nil {
			t.Fatal(err)
		}
		if err := fsio.WriteFile(mem, "idx.pqg.wal", f(wal), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name    string
		mangle  func(mem *fsio.MemFS)
		want    map[string]int64 // counter -> exact delta
		nonzero []string         // counter -> any positive delta
	}{
		{
			name:    "torn-tail",
			mangle:  func(mem *fsio.MemFS) { mangleWal(mem, func(w []byte) []byte { return w[:len(w)-3] }) },
			want:    map[string]int64{"store_journal_replay_records": 1, "store_replay_skipped_records": 0},
			nonzero: []string{"store_replay_torn_bytes"},
		},
		{
			name: "checksum-mismatch",
			mangle: func(mem *fsio.MemFS) {
				mangleWal(mem, func(w []byte) []byte { w[len(w)-1] ^= 0xff; return w })
			},
			want:    map[string]int64{"store_journal_replay_records": 1, "store_replay_skipped_records": 1},
			nonzero: []string{"store_replay_torn_bytes"},
		},
		{
			name: "stale-journal-after-compact-crash",
			mangle: func(mem *fsio.MemFS) {
				// Advance the base without resetting the journal — the disk
				// state a crash between Compact's two steps leaves behind.
				f := forest.New(p33)
				if err := f.Add("other", tree.MustParse("q(r)")); err != nil {
					t.Fatal(err)
				}
				if err := SaveFileFS(mem, "idx.pqg", f); err != nil {
					t.Fatal(err)
				}
			},
			want:    map[string]int64{"store_journal_replay_records": 0, "store_replay_stale_discards": 1},
			nonzero: []string{"store_replay_discarded_bytes"},
		},
		{
			name: "foreign-journal",
			mangle: func(mem *fsio.MemFS) {
				mangleWal(mem, func([]byte) []byte { return []byte("garbage!") })
			},
			want: map[string]int64{
				"store_journal_replay_records": 0,
				"store_replay_journal_resets":  1,
				"store_replay_discarded_bytes": 8,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := build()
			tc.mangle(mem)
			s, err := OpenStoreFS(mem, "idx.pqg")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			col := obs.NewCollector()
			before := col.Snapshot()
			s.SetCollector(col)
			deltas := col.Snapshot().CounterDeltas(before)
			if deltas["store_journal_replays"] != 1 {
				t.Fatalf("store_journal_replays delta = %d, want 1 (all: %v)",
					deltas["store_journal_replays"], deltas)
			}
			for name, want := range tc.want {
				if got := deltas[name]; got != want {
					t.Errorf("%s delta = %d, want %d (all: %v)", name, got, want, deltas)
				}
			}
			for _, name := range tc.nonzero {
				if deltas[name] <= 0 {
					t.Errorf("%s delta = %d, want > 0 (all: %v)", name, deltas[name], deltas)
				}
			}
		})
	}
}
