// Bloom filter over the label-tuple fingerprints of one segment. Every
// segment (segment.go) embeds one so a lookup can skip probing segments
// that provably contain none of the query's tuples: a negative answer is
// exact, a positive one is wrong with probability ~1% at the parameters
// below. Filters are immutable once a segment is written, sized at build
// time from the segment's distinct-tuple count.
//
// The keys are profile.LabelTuple values — already 64-bit Karp-Rabin
// fingerprints (internal/fingerprint) — so the filter does not rehash the
// tuple content; it derives its probe positions from the fingerprint with
// a splitmix64-style finalizer and double hashing:
//
//	h1 = mix(fp), h2 = mix(h1) | 1, bit_i = (h1 + i·h2) mod m
//
// which gives bloomHashes well-spread positions from one 64-bit input.
package store

import "encoding/binary"

const (
	// bloomBitsPerKey sizes the filter: ~10 bits per distinct tuple.
	bloomBitsPerKey = 10
	// bloomHashes is the number of probe positions per key (k). With 10
	// bits/key, k=6 sits near the optimum and yields ~1% false positives.
	bloomHashes = 6
)

// bloomFilter is a classic m-bit Bloom filter with k=bloomHashes probes.
type bloomFilter struct {
	bits  []uint64
	nbits uint64 // len(bits) * 64
}

// newBloom sizes an empty filter for n keys.
func newBloom(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := uint64(n) * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	words := (nbits + 63) / 64
	return &bloomFilter{bits: make([]uint64, words), nbits: words * 64}
}

// bloomMix is the splitmix64 finalizer: a cheap bijective scrambler that
// decorrelates the probe positions from the arithmetic structure of the
// Karp-Rabin fingerprints.
func bloomMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add inserts one fingerprint.
func (b *bloomFilter) add(fp uint64) {
	h1 := bloomMix(fp)
	h2 := bloomMix(h1) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % b.nbits
		b.bits[bit>>6] |= 1 << (bit & 63)
	}
}

// mayContain reports whether fp may have been added: false is exact,
// true is probabilistic.
func (b *bloomFilter) mayContain(fp uint64) bool {
	h1 := bloomMix(fp)
	h2 := bloomMix(h1) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes is the marshaled size of the filter's bit array.
func (b *bloomFilter) sizeBytes() int { return len(b.bits) * 8 }

// marshalInto appends the filter to w (numWords varint, then the words
// big endian). The encoding is deterministic, so it is covered by the
// segment's content checksum like every other section.
func (b *bloomFilter) marshalInto(w *countingCRCWriter) {
	putUvarint(w, uint64(len(b.bits)))
	var buf [8]byte
	for _, word := range b.bits {
		binary.BigEndian.PutUint64(buf[:], word)
		w.Write(buf[:])
	}
}

// unmarshalBloom reads a filter written by marshalInto.
func unmarshalBloom(r *countingCRCReader) (*bloomFilter, error) {
	words, err := getUvarint(r, 1<<32)
	if err != nil {
		return nil, err
	}
	b := &bloomFilter{bits: make([]uint64, words), nbits: words * 64}
	var buf [8]byte
	for i := range b.bits {
		if _, err := readFull(r, buf[:]); err != nil {
			return nil, err
		}
		b.bits[i] = binary.BigEndian.Uint64(buf[:])
	}
	return b, nil
}
