package store

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"testing"

	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
)

// segTestDocs builds n deterministic documents with their pq-gram bags,
// ids ascending, ready for writeSegment.
func segTestDocs(n int) []segDoc {
	docs := make([]segDoc, n)
	for i := range docs {
		docs[i] = segDoc{
			id:  fmt.Sprintf("doc-%03d", i),
			bag: profile.BuildIndex(gen.XMark(int64(1000+i), 25+i%30), p33),
		}
	}
	return docs
}

func readFileBytes(t *testing.T, fs fsio.FS, path string) []byte {
	t.Helper()
	fh, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	data, err := io.ReadAll(fh)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileBytes(t *testing.T, fs fsio.FS, path string, data []byte) {
	t.Helper()
	fh, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRoundTrip writes a segment and reads every access path back:
// the doc table, per-doc bags, tombstones, batched postings probes and the
// bloom filter's no-false-negative contract over the stored tuples.
func TestSegmentRoundTrip(t *testing.T) {
	fs := fsio.NewMemFS()
	docs := segTestDocs(9)
	tombs := []string{"gone-a", "gone-b"}
	crc, renamed, err := writeSegment(fs, "x.000007.seg", p33, 7, docs, tombs)
	if err != nil {
		t.Fatal(err)
	}
	if !renamed {
		t.Fatal("writeSegment did not rename into place")
	}
	sg, err := openSegment(fs, "x.000007.seg", p33, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.close()
	if sg.crc != crc {
		t.Fatalf("open crc %08x, write reported %08x", sg.crc, crc)
	}
	if len(sg.docs) != len(docs) {
		t.Fatalf("%d docs, want %d", len(sg.docs), len(docs))
	}
	if len(sg.tombs) != 2 || sg.tombs[0] != "gone-a" || sg.tombs[1] != "gone-b" {
		t.Fatalf("tombstones %v", sg.tombs)
	}

	// Bags round-trip exactly, and the doc table carries the right
	// size/distinct summary for forest.AddEvicted.
	union := make(map[uint64][]segPosting) // tuple -> expected postings
	for ref, d := range docs {
		got, err := sg.bag(ref)
		if err != nil {
			t.Fatalf("bag(%d): %v", ref, err)
		}
		if !got.Equal(d.bag) {
			t.Fatalf("bag(%d) differs after round trip", ref)
		}
		if sg.docs[ref].id != d.id || sg.docs[ref].size != d.bag.Size() || sg.docs[ref].distinct != len(d.bag) {
			t.Fatalf("doc meta %d: %+v", ref, sg.docs[ref])
		}
		for lt, c := range d.bag {
			union[uint64(lt)] = append(union[uint64(lt)], segPosting{ref: int32(ref), cnt: uint32(c)})
		}
	}

	// Bloom: every stored tuple must pass.
	for lt := range union {
		if !sg.bloom.mayContain(lt) {
			t.Fatalf("bloom false negative for stored tuple %016x", lt)
		}
	}

	// Probe every stored tuple in one sorted batch and compare the posting
	// lists (ref-ascending within a tuple, by construction).
	tuples := make([]uint64, 0, len(union))
	for lt := range union {
		tuples = append(tuples, lt)
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
	seen := make(map[uint64]int)
	_, err = sg.probeBatch(tuples, func(lt uint64, list []segPosting) {
		seen[lt] = len(list)
		want := union[lt]
		if len(list) != len(want) {
			t.Fatalf("tuple %016x: %d postings, want %d", lt, len(list), len(want))
		}
		for i := range list {
			if list[i] != want[i] {
				t.Fatalf("tuple %016x entry %d: %+v, want %+v", lt, i, list[i], want[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(union) {
		t.Fatalf("probe visited %d tuples, want %d", len(seen), len(union))
	}

	// Full enumeration visits exactly the union, in ascending tuple order.
	var last uint64
	enumerated := 0
	if err := sg.forEachPosting(func(lt uint64, list []segPosting) error {
		if enumerated > 0 && lt <= last {
			t.Fatalf("forEachPosting out of order: %016x after %016x", lt, last)
		}
		last = lt
		enumerated++
		if len(list) != len(union[lt]) {
			t.Fatalf("forEachPosting tuple %016x: %d postings, want %d", lt, len(list), len(union[lt]))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if enumerated != len(union) {
		t.Fatalf("forEachPosting visited %d tuples, want %d", enumerated, len(union))
	}

	// Probing tuples the segment does not hold must hit nothing and not error.
	if _, err := sg.probeBatch([]uint64{0, ^uint64(0)}, func(lt uint64, _ []segPosting) {
		if _, ok := union[lt]; !ok {
			t.Fatalf("probe surfaced absent tuple %016x", lt)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentEveryByteFlipRejected: the footer checksum covers the entire
// file ahead of it and the trailer is verified literally, so flipping any
// single byte of a segment must make openSegment fail. This is what lets
// tier reads treat an open-verified segment as incorruptible.
func TestSegmentEveryByteFlipRejected(t *testing.T) {
	fs := fsio.NewMemFS()
	docs := segTestDocs(4)
	if _, _, err := writeSegment(fs, "x.000001.seg", p33, 1, docs, []string{"dead"}); err != nil {
		t.Fatal(err)
	}
	orig := readFileBytes(t, fs, "x.000001.seg")
	for off := range orig {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		writeFileBytes(t, fs, "corrupt.seg", mut)
		sg, err := openSegment(fs, "corrupt.seg", p33, 1)
		if err == nil {
			sg.close()
			t.Fatalf("byte %d/%d flipped: openSegment accepted a corrupt segment", off, len(orig))
		}
	}
}

// TestSegmentTruncationRejected: every proper prefix of a segment file is
// rejected (footer missing, sections out of bounds, or crc mismatch).
func TestSegmentTruncationRejected(t *testing.T) {
	fs := fsio.NewMemFS()
	if _, _, err := writeSegment(fs, "x.000001.seg", p33, 1, segTestDocs(3), nil); err != nil {
		t.Fatal(err)
	}
	orig := readFileBytes(t, fs, "x.000001.seg")
	for _, cut := range []int{0, 1, segFooterLen - 1, len(orig) / 3, len(orig) / 2, len(orig) - 1} {
		writeFileBytes(t, fs, "cut.seg", orig[:cut])
		if sg, err := openSegment(fs, "cut.seg", p33, 1); err == nil {
			sg.close()
			t.Fatalf("truncated to %d/%d bytes: accepted", cut, len(orig))
		}
	}
}

// TestSegmentIdentityChecks: a segment opened under the wrong sequence
// number or the wrong pq-gram parameters is rejected even though its bytes
// are intact — the manifest's naming must match the file's self-description.
func TestSegmentIdentityChecks(t *testing.T) {
	fs := fsio.NewMemFS()
	if _, _, err := writeSegment(fs, "x.000005.seg", p33, 5, segTestDocs(2), nil); err != nil {
		t.Fatal(err)
	}
	if sg, err := openSegment(fs, "x.000005.seg", p33, 6); err == nil {
		sg.close()
		t.Fatal("accepted wrong sequence number")
	}
	if sg, err := openSegment(fs, "x.000005.seg", profile.Params{P: 2, Q: 4}, 5); err == nil {
		sg.close()
		t.Fatal("accepted wrong parameters")
	}
}

// TestManifestRoundTrip: encode → write → load preserves params, the next
// sequence number, the live segment list and the obsolete list; the load
// reports the same content crc the writer computed (the value journal
// headers bind to).
func TestManifestRoundTrip(t *testing.T) {
	fs := fsio.NewMemFS()
	man := &manifest{
		pr:       p33,
		nextSeq:  42,
		segs:     []manifestSeg{{seq: 3, crc: 0xdeadbeef}, {seq: 41, crc: 1}},
		obsolete: []uint64{1, 2},
	}
	crc, renamed, err := writeManifestFile(fs, "idx.manifest", man)
	if err != nil {
		t.Fatal(err)
	}
	if !renamed {
		t.Fatal("manifest not renamed into place")
	}
	got, gotCRC, err := loadManifestFile(fs, "idx.manifest")
	if err != nil {
		t.Fatal(err)
	}
	if gotCRC != crc {
		t.Fatalf("load crc %08x, write reported %08x", gotCRC, crc)
	}
	if got.pr != man.pr || got.nextSeq != man.nextSeq {
		t.Fatalf("manifest header differs: %+v", got)
	}
	if len(got.segs) != 2 || got.segs[0] != man.segs[0] || got.segs[1] != man.segs[1] {
		t.Fatalf("segment list %+v", got.segs)
	}
	if len(got.obsolete) != 2 || got.obsolete[0] != 1 || got.obsolete[1] != 2 {
		t.Fatalf("obsolete list %+v", got.obsolete)
	}
}

// TestManifestEveryByteFlipRejected: the manifest ends in a crc over all
// preceding bytes, so any single-byte corruption must be detected.
func TestManifestEveryByteFlipRejected(t *testing.T) {
	fs := fsio.NewMemFS()
	man := &manifest{pr: p33, nextSeq: 9, segs: []manifestSeg{{seq: 8, crc: 77}}}
	if _, _, err := writeManifestFile(fs, "idx.manifest", man); err != nil {
		t.Fatal(err)
	}
	orig := readFileBytes(t, fs, "idx.manifest")
	for off := range orig {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x01
		writeFileBytes(t, fs, "bad.manifest", mut)
		if _, _, err := loadManifestFile(fs, "bad.manifest"); err == nil {
			t.Fatalf("byte %d/%d flipped: loadManifestFile accepted corruption", off, len(orig))
		}
	}
	// Trailing garbage after a valid manifest is corruption too.
	writeFileBytes(t, fs, "bad.manifest", append(append([]byte(nil), orig...), 0x00))
	if _, _, err := loadManifestFile(fs, "bad.manifest"); err == nil {
		t.Fatal("accepted trailing bytes after the manifest crc")
	}
	// And every truncation.
	for cut := 0; cut < len(orig); cut++ {
		writeFileBytes(t, fs, "bad.manifest", orig[:cut])
		if _, _, err := loadManifestFile(fs, "bad.manifest"); err == nil {
			t.Fatalf("truncated to %d/%d bytes: accepted", cut, len(orig))
		}
	}
}

// TestSegmentPathNaming pins the file-naming scheme STORAGE.md documents.
func TestSegmentPathNaming(t *testing.T) {
	if got := segmentPath("idx.pqg", 7); got != "idx.pqg.000007.seg" {
		t.Fatalf("segmentPath = %q", got)
	}
	if got := manifestPath("idx.pqg"); got != "idx.pqg.manifest" {
		t.Fatalf("manifestPath = %q", got)
	}
	if !strings.HasPrefix(segmentPath("a", 1234567), "a.") {
		t.Fatal("segmentPath lost its base prefix")
	}
}
