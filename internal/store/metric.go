// Persistence of the VP-tree metric index (forest/metric.go) as a
// sidecar next to the base snapshot. The sidecar stores only the tree
// *shape* — preorder node ids plus routing integers; the bags are
// reattached from the base on restore — so it stays a small fraction of
// the snapshot and never duplicates checksummed content.
//
// Crash-consistency: like the journal, the sidecar embeds the crc32 of
// the base snapshot it was dumped against. Compact writes it (atomically)
// only after the new base has been renamed into place, so every crash
// window resolves cleanly on open: a sidecar naming a different base is
// simply discarded and the metric index rebuilds lazily — losing the
// sidecar can cost a rebuild, never correctness.
//
// Layout (integers are unsigned varints unless noted):
//
//	magic "PQGV" | version byte | baseCRC (4 bytes big endian) | numNodes
//	numNodes × ( idLen | id bytes | children byte |
//	             radius | szMin | szMax | inLo | inHi | outLo | outHi )
//	crc32-IEEE of everything above (4 bytes big endian)
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
)

var metricMagic = [4]byte{'P', 'Q', 'G', 'V'}

const metricVersion = 1

// metricPath is the sidecar name for a base snapshot path.
func metricPath(base string) string { return base + ".vpt" }

// saveMetric writes the dump bound to baseCRC.
func saveMetric(w io.Writer, baseCRC uint32, dump []forest.MetricNodeDump) error {
	cw := &crcWriter{w: bufio.NewWriter(w), h: crc32.NewIEEE()}
	if _, err := cw.Write(metricMagic[:]); err != nil {
		return err
	}
	if _, err := cw.Write([]byte{metricVersion}); err != nil {
		return err
	}
	var base [4]byte
	binary.BigEndian.PutUint32(base[:], baseCRC)
	if _, err := cw.Write(base[:]); err != nil {
		return err
	}
	putUvarint(cw, uint64(len(dump)))
	for _, n := range dump {
		putUvarint(cw, uint64(len(n.ID)))
		if _, err := io.WriteString(cw, n.ID); err != nil {
			return err
		}
		if _, err := cw.Write([]byte{n.Children}); err != nil {
			return err
		}
		for _, v := range [...]int{n.Radius, n.SzMin, n.SzMax, n.InLo, n.InHi, n.OutLo, n.OutHi} {
			if v < 0 {
				return fmt.Errorf("store: negative metric field %d in node %q", v, n.ID)
			}
			putUvarint(cw, uint64(v))
		}
	}
	if cw.err != nil {
		return cw.err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], cw.h.Sum32())
	if _, err := cw.w.Write(sum[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// loadMetric reads a sidecar and verifies both checksums: the trailing
// crc32 (bytes intact) and the embedded base binding (dump taken against
// the snapshot identified by baseCRC). Any mismatch is an error; callers
// treat every error as "no sidecar" and rebuild lazily.
func loadMetric(r io.Reader, baseCRC uint32) ([]forest.MetricNodeDump, error) {
	cr := &crcReader{r: bufio.NewReader(r), h: crc32.NewIEEE()}
	var hdr [9]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: reading metric header: %w", err)
	}
	if [4]byte(hdr[:4]) != metricMagic {
		return nil, fmt.Errorf("store: bad metric magic %q", hdr[:4])
	}
	if hdr[4] != metricVersion {
		return nil, fmt.Errorf("store: unsupported metric version %d", hdr[4])
	}
	if got := binary.BigEndian.Uint32(hdr[5:9]); got != baseCRC {
		return nil, fmt.Errorf("store: metric sidecar bound to base %08x, have %08x", got, baseCRC)
	}
	numNodes, err := getUvarint(cr, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("store: reading metric node count: %w", err)
	}
	// The declared count is untrusted until the data is actually read: cap
	// the allocation hint so a corrupt header cannot exhaust memory.
	hint := numNodes
	if hint > 1<<16 {
		hint = 1 << 16
	}
	dump := make([]forest.MetricNodeDump, 0, hint)
	for i := uint64(0); i < numNodes; i++ {
		idLen, err := getUvarint(cr, 1<<20)
		if err != nil {
			return nil, fmt.Errorf("store: metric node %d: reading id length: %w", i, err)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(cr, idBuf); err != nil {
			return nil, fmt.Errorf("store: metric node %d: reading id: %w", i, err)
		}
		children, err := cr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: metric node %q: reading children: %w", idBuf, err)
		}
		if children&^(forest.MetricChildInside|forest.MetricChildOutside) != 0 {
			return nil, fmt.Errorf("store: metric node %q: unknown child flags %#x", idBuf, children)
		}
		n := forest.MetricNodeDump{ID: string(idBuf), Children: children}
		for _, field := range [...]*int{&n.Radius, &n.SzMin, &n.SzMax, &n.InLo, &n.InHi, &n.OutLo, &n.OutHi} {
			v, err := getUvarint(cr, 1<<50)
			if err != nil {
				return nil, fmt.Errorf("store: metric node %q: reading routing field: %w", idBuf, err)
			}
			*field = int(v)
		}
		dump = append(dump, n)
	}
	want := cr.h.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return nil, fmt.Errorf("store: reading metric checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("store: metric checksum mismatch: file %08x, computed %08x", got, want)
	}
	return dump, nil
}

// saveMetricFile atomically replaces the sidecar for base path via the
// same temp-write/fsync/rename/dirsync protocol as the base snapshot.
func saveMetricFile(fsys fsio.FS, path string, baseCRC uint32, dump []forest.MetricNodeDump) error {
	dir := dirOf(path)
	tmp, err := fsys.CreateTemp(dir, ".pqgram-vpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	closed := false
	defer func() {
		if !closed {
			// Failure-path cleanup: the write already returned its error and
			// the temp file is about to be removed, so this close cannot
			// lose durable state.
			tmp.Close() //pqlint:allow errcheck-durability failure-path cleanup of a doomed temp file
		}
		// Best effort; after a successful rename the name is gone already.
		fsys.Remove(tmpName) //pqlint:allow errcheck-durability best-effort removal; after rename the name no longer exists
	}()
	if err := saveMetric(tmp, baseCRC, dump); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	closed = true
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmpName, metricPath(path)); err != nil {
		return err
	}
	return fsio.SyncDir(fsys, dir)
}

// loadMetricFile reads the sidecar for base path, bound to baseCRC.
func loadMetricFile(fsys fsio.FS, path string, baseCRC uint32) ([]forest.MetricNodeDump, error) {
	fh, err := fsio.Open(fsys, metricPath(path))
	if err != nil {
		return nil, err
	}
	dump, err := loadMetric(fh, baseCRC)
	if cerr := fh.Close(); err == nil && cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	return dump, nil
}
