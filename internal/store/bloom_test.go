package store

import (
	"bufio"
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestBloomNoFalseNegatives is the filter's hard contract: a key that was
// added is always reported as possibly present. A false negative would
// make a lookup skip a segment that holds real postings — a wrong answer,
// not a performance bug.
func TestBloomNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 2, 17, 256, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		bf := newBloom(n)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			bf.add(keys[i])
		}
		for _, k := range keys {
			if !bf.mayContain(k) {
				t.Fatalf("n=%d: false negative for key %016x", n, k)
			}
		}
	}
}

// TestBloomFalsePositiveRate checks the sizing: at 10 bits/key with 6
// hashes the theoretical false-positive rate is under 1%; allow 3% to keep
// the property test robust across seeds.
func TestBloomFalsePositiveRate(t *testing.T) {
	const n, probes = 2000, 20000
	rng := rand.New(rand.NewSource(7))
	bf := newBloom(n)
	member := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		member[k] = true
		bf.add(k)
	}
	fp := 0
	for i := 0; i < probes; i++ {
		k := rng.Uint64()
		if member[k] {
			continue
		}
		if bf.mayContain(k) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false-positive rate %.4f exceeds 3%% (%d/%d)", rate, fp, probes)
	}
}

// TestBloomEmptyAndClamp: an empty filter rejects everything, and the
// sizing clamps (n<1, tiny n) never produce a filter below one word.
func TestBloomEmptyAndClamp(t *testing.T) {
	for _, n := range []int{-5, 0, 1} {
		bf := newBloom(n)
		if len(bf.bits) < 1 {
			t.Fatalf("newBloom(%d): %d words, want >= 1", n, len(bf.bits))
		}
		if bf.mayContain(12345) {
			t.Fatalf("newBloom(%d): empty filter claims membership", n)
		}
	}
}

// TestBloomMarshalRoundTrip: the serialized filter reproduces exactly the
// same bit array — and therefore the same membership answers — after
// unmarshal.
func TestBloomMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bf := newBloom(300)
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = rng.Uint64()
		bf.add(keys[i])
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cw := &countingCRCWriter{w: bw, h: crc32.NewIEEE()}
	bf.marshalInto(cw)
	if cw.err != nil {
		t.Fatal(cw.err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	cr := &countingCRCReader{r: bufio.NewReader(bytes.NewReader(buf.Bytes())), h: crc32.NewIEEE()}
	got, err := unmarshalBloom(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.bits) != len(bf.bits) {
		t.Fatalf("word count %d != %d", len(got.bits), len(bf.bits))
	}
	for i := range bf.bits {
		if got.bits[i] != bf.bits[i] {
			t.Fatalf("word %d differs after round trip", i)
		}
	}
	for _, k := range keys {
		if !got.mayContain(k) {
			t.Fatalf("false negative after round trip: %016x", k)
		}
	}
}
