// Package store persists pq-gram forest indexes — the durable form of the
// relation (treeId, pqg, cnt) of Figure 4 of the paper — through two
// engines: the monolithic snapshot-plus-journal store of this file and
// journal.go, and the segmented out-of-core engine of segstore.go. Every
// on-disk format of both engines is specified in STORAGE.md.
//
// This file is the monolithic snapshot codec: one compact, checksummed
// file holding the whole index. The format is deterministic (trees and
// tuples are sorted), so the serialized size is a stable measure for the
// index-size experiment (Figure 14, left) and the trailing checksum
// identifies the snapshot's exact content.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic "PQGI" | version byte | p | q | numTrees
//	numTrees × ( idLen | id bytes | numTuples |
//	             numTuples × ( tuple fingerprint delta (varint) | cnt ) )
//	crc32-IEEE of everything above (4 bytes big endian)
//
// Tuples are 64-bit fingerprints (profile.LabelTuple); within a tree they
// are written in ascending order and delta-encoded, which keeps the stored
// index well below the size of the document it indexes.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/profile"
)

var magic = [4]byte{'P', 'Q', 'G', 'I'}

const version = 1

// maxParam bounds p and q in files to reject corrupt headers early.
const maxParam = 64

// Save writes the forest index to w. Concurrent incremental updates are
// tolerated per tree (each bag is serialized under its read lock), but the
// snapshot is only cross-tree consistent if no Add/Remove/Update runs
// during Save — a quiescent forest is the caller's responsibility, as with
// any backup.
func Save(w io.Writer, f *forest.Index) error {
	_, err := saveCRC(w, f)
	return err
}

// saveCRC is Save, additionally returning the crc32 written at the end of
// the stream. Because the format is deterministic, that checksum identifies
// the snapshot's exact content — the journal header records it so a journal
// can prove which base it belongs to (see OpenStoreFS).
func saveCRC(w io.Writer, f *forest.Index) (uint32, error) {
	cw := &crcWriter{w: bufio.NewWriter(w), h: crc32.NewIEEE()}
	if _, err := cw.Write(magic[:]); err != nil {
		return 0, err
	}
	if _, err := cw.Write([]byte{version}); err != nil {
		return 0, err
	}
	pr := f.Params()
	putUvarint(cw, uint64(pr.P))
	putUvarint(cw, uint64(pr.Q))
	putUvarint(cw, uint64(f.Len()))
	// ForEachTree walks the sharded index in ascending ID order without
	// copying the per-tree bags; the forest read-locks each bag for the
	// duration of the callback.
	var tuples []uint64
	err := f.ForEachTree(func(id string, idx profile.Index) error {
		putUvarint(cw, uint64(len(id)))
		if _, err := io.WriteString(cw, id); err != nil {
			return err
		}
		tuples = tuples[:0]
		for lt := range idx {
			tuples = append(tuples, uint64(lt))
		}
		sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
		putUvarint(cw, uint64(len(tuples)))
		prev := uint64(0)
		for _, lt := range tuples {
			putUvarint(cw, lt-prev)
			prev = lt
			putUvarint(cw, uint64(idx[profile.LabelTuple(lt)]))
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if cw.err != nil {
		return 0, cw.err
	}
	crc := cw.h.Sum32()
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc)
	if _, err := cw.w.Write(sum[:]); err != nil {
		return 0, err
	}
	return crc, cw.w.Flush()
}

// Load reads a forest index written by Save.
func Load(r io.Reader) (*forest.Index, error) {
	f, _, err := loadCRC(r)
	return f, err
}

// loadCRC is Load, additionally returning the snapshot's crc32 — the
// content identity the journal header is checked against.
func loadCRC(r io.Reader) (*forest.Index, uint32, error) {
	cr := &crcReader{r: bufio.NewReader(r), h: crc32.NewIEEE()}
	var hdr [5]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("store: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, 0, fmt.Errorf("store: bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return nil, 0, fmt.Errorf("store: unsupported version %d", hdr[4])
	}
	p, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading p: %w", err)
	}
	q, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading q: %w", err)
	}
	pr := profile.Params{P: int(p), Q: int(q)}
	if err := pr.Validate(); err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	f := forest.New(pr)
	numTrees, err := getUvarint(cr, 1<<40)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading tree count: %w", err)
	}
	for i := uint64(0); i < numTrees; i++ {
		idLen, err := getUvarint(cr, 1<<20)
		if err != nil {
			return nil, 0, fmt.Errorf("store: tree %d: reading id length: %w", i, err)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(cr, idBuf); err != nil {
			return nil, 0, fmt.Errorf("store: tree %d: reading id: %w", i, err)
		}
		numTuples, err := getUvarint(cr, 1<<50)
		if err != nil {
			return nil, 0, fmt.Errorf("store: tree %q: reading tuple count: %w", idBuf, err)
		}
		// The declared count is untrusted until the data is actually read:
		// cap the allocation hint so a corrupt header cannot exhaust memory.
		hint := numTuples
		if hint > 1<<16 {
			hint = 1 << 16
		}
		idx := make(profile.Index, hint)
		prev := uint64(0)
		for j := uint64(0); j < numTuples; j++ {
			delta, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, 0, fmt.Errorf("store: tree %q: reading tuple %d: %w", idBuf, j, err)
			}
			if j > 0 && delta == 0 {
				return nil, 0, fmt.Errorf("store: tree %q: duplicate tuple %d", idBuf, j)
			}
			prev += delta
			cnt, err := getUvarint(cr, 1<<50)
			if err != nil {
				return nil, 0, fmt.Errorf("store: tree %q: reading count %d: %w", idBuf, j, err)
			}
			if cnt == 0 {
				return nil, 0, fmt.Errorf("store: tree %q: tuple with zero count", idBuf)
			}
			idx[profile.LabelTuple(prev)] = int(cnt)
		}
		if err := f.AddIndex(string(idBuf), idx); err != nil {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
	}
	want := cr.h.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return nil, 0, fmt.Errorf("store: reading checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, 0, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return f, want, nil
}

// SaveFile writes the index to a file, replacing it atomically via a
// temporary file in the same directory.
func SaveFile(path string, f *forest.Index) error {
	return SaveFileFS(fsio.OS, path, f)
}

// SaveFileFS is SaveFile against an injected filesystem. The replacement
// is all-or-nothing: the snapshot is written to a temporary file, fsynced,
// renamed over path, and the directory entry is fsynced — a crash at any
// point leaves either the complete old file or the complete new one.
func SaveFileFS(fsys fsio.FS, path string, f *forest.Index) error {
	_, _, err := saveFileCRC(fsys, path, f)
	return err
}

// saveFileCRC implements the atomic-replace protocol and reports the
// snapshot's crc32 and whether the rename happened. The distinction
// matters to Compact: an error before the rename leaves the old state
// fully intact, an error after it means the base has already advanced.
func saveFileCRC(fsys fsio.FS, path string, f *forest.Index) (crc uint32, renamed bool, err error) {
	dir := dirOf(path)
	tmp, err := fsys.CreateTemp(dir, ".pqgram-*")
	if err != nil {
		return 0, false, err
	}
	tmpName := tmp.Name()
	closed := false
	defer func() {
		if !closed {
			// Failure-path cleanup: the write already returned its error and
			// the temp file is about to be removed, so this close cannot
			// lose durable state.
			tmp.Close() //pqlint:allow errcheck-durability failure-path cleanup of a doomed temp file
		}
		// Best effort; after a successful rename the name is gone already.
		fsys.Remove(tmpName) //pqlint:allow errcheck-durability best-effort removal; after rename the name no longer exists
	}()
	crc, err = saveCRC(tmp, f)
	if err != nil {
		return 0, false, err
	}
	// The data must be durable before the rename: otherwise a crash could
	// persist the new directory entry pointing at unwritten content.
	if err := tmp.Sync(); err != nil {
		return 0, false, err
	}
	closed = true
	if err := tmp.Close(); err != nil {
		return 0, false, err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return 0, false, err
	}
	// And the rename itself must be durable: fsync the directory entry.
	if err := fsio.SyncDir(fsys, dir); err != nil {
		return crc, true, err
	}
	return crc, true, nil
}

// LoadFile reads an index file written by SaveFile.
func LoadFile(path string) (*forest.Index, error) {
	return LoadFileFS(fsio.OS, path)
}

// LoadFileFS is LoadFile against an injected filesystem.
func LoadFileFS(fsys fsio.FS, path string) (*forest.Index, error) {
	f, _, err := loadFileCRC(fsys, path)
	return f, err
}

func loadFileCRC(fsys fsio.FS, path string) (*forest.Index, uint32, error) {
	fh, err := fsio.Open(fsys, path)
	if err != nil {
		return nil, 0, err
	}
	f, crc, err := loadCRC(fh)
	if cerr := fh.Close(); err == nil && cerr != nil {
		// The snapshot was read and checksummed, but a close failing even
		// on a read-only handle signals an unhealthy device; surface it
		// rather than hand back state from hardware that is misbehaving.
		return nil, 0, cerr
	}
	if err != nil {
		return nil, 0, err
	}
	return f, crc, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Size returns the number of bytes Save would write for the index.
func Size(f *forest.Index) (int64, error) {
	var cw countWriter
	if err := Save(&cw, f); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

type crcWriter struct {
	w   *bufio.Writer
	h   hash.Hash32
	err error
}

func (c *crcWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.h.Write(p[:n])
	c.err = err
	return n, err
}

type crcReader struct {
	r *bufio.Reader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	return n, err
}

// ReadByte lets binary.ReadUvarint consume single bytes through the crc.
func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
	}
	return b, err
}

func putUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func getUvarint(r io.ByteReader, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("value %d exceeds bound %d", v, max)
	}
	return v, nil
}
