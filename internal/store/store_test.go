package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
)

var p33 = profile.Params{P: 3, Q: 3}

func sampleForest(t *testing.T) *forest.Index {
	t.Helper()
	f := forest.New(p33)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		if err := f.Add(fmt.Sprintf("doc-%d", i), gen.RandomTree(rng, 20+rng.Intn(60))); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func forestsEqual(a, b *forest.Index) bool {
	if a.Params() != b.Params() || a.Len() != b.Len() {
		return false
	}
	for _, id := range a.IDs() {
		bi := b.TreeIndex(id)
		if bi == nil || !a.TreeIndex(id).Equal(bi) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	f := sampleForest(t)
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsEqual(f, g) {
		t.Fatal("round trip changed the index")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	f := forest.New(profile.Params{P: 1, Q: 2})
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 || g.Params() != f.Params() {
		t.Fatal("empty round trip wrong")
	}
}

func TestDeterministicOutput(t *testing.T) {
	f := sampleForest(t)
	var b1, b2 bytes.Buffer
	if err := Save(&b1, f); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b2, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Save output not deterministic")
	}
}

func TestLoadedLookupWorks(t *testing.T) {
	f := forest.New(p33)
	base := gen.XMark(7, 120)
	f.Add("base", base)
	rng := rand.New(rand.NewSource(8))
	p, _, err := gen.Perturb(rng, base, 4, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	f.Add("near", p)

	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Postings are rebuilt on load: lookups must work.
	top := g.LookupTop(base, 1)
	if len(top) != 1 || top[0].TreeID != "base" || top[0].Distance != 0 {
		t.Fatalf("lookup on loaded index = %+v", top)
	}
}

func TestCorruptionDetected(t *testing.T) {
	f := sampleForest(t)
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte in the middle of the payload.
	corrupt := make([]byte, len(data))
	copy(corrupt, data)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("payload corruption not detected")
	}
	// Flip a checksum byte.
	copy(corrupt, data)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("checksum corruption not detected")
	}
}

func TestTruncationDetected(t *testing.T) {
	f := sampleForest(t)
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 1, 4, 5, 7, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestBadHeaders(t *testing.T) {
	bad := [][]byte{
		[]byte("NOPE\x01"),
		append([]byte("PQGI"), 99),         // bad version
		append([]byte("PQGI\x01"), 0, 3),   // p = 0
		append([]byte("PQGI\x01"), 200, 3), // p > maxParam (varint 200 is 2 bytes... use 65)
	}
	for i, b := range bad {
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("bad header %d accepted", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	f := sampleForest(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.pqg")
	if err := SaveFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsEqual(f, g) {
		t.Fatal("file round trip changed the index")
	}
	// Atomic replace: no temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files left in dir, want 1", len(entries))
	}
	// Overwrite works.
	if err := SaveFile(path, forest.New(p33)); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 0 {
		t.Fatal("overwrite did not replace content")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.pqg")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestSizeMatchesSave(t *testing.T) {
	f := sampleForest(t)
	n, err := Size(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Size = %d, Save wrote %d", n, buf.Len())
	}
}

func TestIndexSmallerThanDocument(t *testing.T) {
	// The headline of Figure 14 (left): the index is significantly smaller
	// than the tree for 3,3-grams on realistic documents.
	tr := gen.DBLP(11, 20000)
	f := forest.New(p33)
	f.Add("dblp", tr)
	idxBytes, err := Size(f)
	if err != nil {
		t.Fatal(err)
	}
	docBytes := int64(len(tr.Format()))
	if idxBytes >= docBytes {
		t.Fatalf("index (%d bytes) not smaller than document (%d bytes)", idxBytes, docBytes)
	}
}

func TestDirOf(t *testing.T) {
	if d := dirOf("a/b/c.pqg"); d != "a/b" {
		t.Errorf("dirOf = %q", d)
	}
	if d := dirOf("c.pqg"); d != "." {
		t.Errorf("dirOf = %q", d)
	}
}
