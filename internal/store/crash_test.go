package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// The crash-consistency proof harness. A scripted workload
// (Add/Update/Remove/Compact) runs against the tracing in-memory
// filesystem; then power is cut at every operation boundary of the write
// trace and at sampled byte offsets inside every write (torn appends),
// the store is reopened from the materialized wreckage, and the recovered
// state is checked against the invariants:
//
//   - recovery never fails and never panics once the store exists;
//   - the recovered state equals the committed state after exactly some
//     prefix of the workload's operations — never a hybrid, never a
//     reordering, and (with SetSync on) never less than what was
//     acknowledged before the cut;
//   - Compact is invisible: a crash anywhere inside it recovers either
//     the pre- or post-compaction representation of the same state;
//   - the recovered index is byte-identical (via the deterministic
//     snapshot format) to a forest rebuilt from scratch from the
//     surviving documents, and answers Lookup and SimilarityJoin
//     identically to it — the differential-recovery guarantee;
//   - no file handles leak, whether recovery succeeds or fails.

// crashMark captures the committed state after each workload operation.
type crashMark struct {
	traceEnd int                      // fs trace length when the op returned
	bags     map[string]profile.Index // committed per-tree bags
	docs     map[string]*tree.Tree    // live document versions (clones)
}

func snapshotBags(f *forest.Index) map[string]profile.Index {
	out := make(map[string]profile.Index)
	for _, id := range f.IDs() {
		out[id] = f.TreeIndex(id).Clone()
	}
	return out
}

func cloneDocs(docs map[string]*tree.Tree) map[string]*tree.Tree {
	out := make(map[string]*tree.Tree, len(docs))
	for id, tr := range docs {
		out[id] = tr.Clone()
	}
	return out
}

func bagsEqual(a, b map[string]profile.Index) bool {
	if len(a) != len(b) {
		return false
	}
	for id, bag := range a {
		ob, ok := b[id]
		if !ok || !bag.Equal(ob) {
			return false
		}
	}
	return true
}

// crashWorkload runs the scripted ≥50-op workload and returns the marks.
// The script is deterministic; it forces Compact at fixed positions and
// keeps a floor of live documents so removes and updates always apply.
func crashWorkload(t *testing.T, s *Store, seed int64) []crashMark {
	t.Helper()
	fs := s.fs.(*fsio.MemFS)
	rng := rand.New(rand.NewSource(seed))
	docs := make(map[string]*tree.Tree)
	marks := []crashMark{{traceEnd: fs.TraceLen(), bags: snapshotBags(s.forest), docs: cloneDocs(docs)}}
	mark := func() {
		marks = append(marks, crashMark{
			traceEnd: fs.TraceLen(),
			bags:     snapshotBags(s.forest),
			docs:     cloneDocs(docs),
		})
	}
	ids := func() []string {
		out := make([]string, 0, len(docs))
		for id := range docs {
			out = append(out, id)
		}
		sort.Strings(out)
		return out
	}
	nextID := 0
	add := func() {
		id := fmt.Sprintf("doc-%02d", nextID)
		tr := gen.XMark(int64(100+nextID), 30+rng.Intn(20))
		nextID++
		if err := s.Add(id, tr.Clone()); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		docs[id] = tr
	}
	compacts := 0
	const nOps = 54
	for op := 1; op <= nOps; op++ {
		switch {
		case op <= 6: // seed the forest
			add()
			if op == 6 {
				// Force the VP-tree up: every later mutation now maintains
				// it, and the forced Compacts below persist its sidecar —
				// putting the .vpt write protocol inside the crash window.
				s.Forest().SetPlanMode(forest.PlanMetric)
				if ms := s.Forest().LookupTopK(gen.XMark(991, 40), 3); len(ms) == 0 {
					t.Fatal("metric warm-up lookup returned nothing")
				}
			}
		case op == 20 || op == 40: // forced compactions mid-stream
			if err := s.Compact(); err != nil {
				t.Fatalf("op %d compact: %v", op, err)
			}
			compacts++
		case rng.Float64() < 0.18 && len(docs) < 12:
			add()
		case rng.Float64() < 0.18 && len(docs) > 3:
			id := ids()[rng.Intn(len(docs))]
			if err := s.Remove(id); err != nil {
				t.Fatalf("op %d remove %s: %v", op, id, err)
			}
			delete(docs, id)
		default:
			id := ids()[rng.Intn(len(docs))]
			_, log, err := gen.RandomScript(rng, docs[id], 2+rng.Intn(4), gen.DefaultMix)
			if err != nil {
				t.Fatalf("op %d script: %v", op, err)
			}
			if _, err := s.Update(id, docs[id], log); err != nil {
				t.Fatalf("op %d update %s: %v", op, id, err)
			}
		}
		mark()
	}
	if len(marks)-1 < 50 || compacts < 2 {
		t.Fatalf("workload too small: %d ops, %d compacts", len(marks)-1, compacts)
	}
	return marks
}

// crashPoint is one simulated power cut: trace ops [0, op) applied, plus
// partial bytes of op `op` when it is a write.
type crashPoint struct {
	op      int
	partial int
}

// crashPoints enumerates every trace-operation boundary plus >= 8 sampled
// interior byte offsets of every write (journal appends, snapshot writes
// and header rewrites alike — each journal record is a single write, so
// this satisfies "per record" with room to spare).
func crashPoints(trace []fsio.TraceOp) []crashPoint {
	pts := make([]crashPoint, 0, len(trace)*9)
	for i := 0; i <= len(trace); i++ {
		pts = append(pts, crashPoint{op: i})
	}
	for i, op := range trace {
		if op.Kind != fsio.OpWrite || len(op.Data) < 2 {
			continue
		}
		seen := map[int]bool{}
		for k := 0; k < 8; k++ {
			off := 1 + k*(len(op.Data)-1)/8
			if off >= len(op.Data) {
				off = len(op.Data) - 1
			}
			if !seen[off] {
				seen[off] = true
				pts = append(pts, crashPoint{op: i, partial: off})
			}
		}
	}
	return pts
}

func runCrashHarness(t *testing.T, syncMode bool, seed int64) {
	fs := fsio.NewMemFS()
	s, err := CreateStoreFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSync(syncMode)
	marks := crashWorkload(t, s, seed)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	trace := fs.Trace()
	walRecords := 0
	for _, op := range trace {
		if op.Kind == fsio.OpWrite && len(op.Data) > 0 && op.Data[0] != journalMagic[0] {
			walRecords++ // journal record appends (single-write records)
		}
	}
	query := gen.XMark(991, 40)
	createdAt := marks[0].traceEnd // trace length once the store fully existed

	for _, pt := range crashPoints(trace) {
		name := fmt.Sprintf("cut %d+%db", pt.op, pt.partial)
		crashed := fs.CrashClone(pt.op, pt.partial)
		rs, err := OpenStoreFS(crashed, "idx.pqg")
		if err != nil {
			// Only legal before the store's initial base snapshot became
			// visible; after that, recovery must always succeed.
			if pt.op >= createdAt {
				t.Fatalf("%s: recovery failed: %v", name, err)
			}
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s: pre-creation recovery error should be NotExist, got: %v", name, err)
			}
			if crashed.OpenHandles() != 0 {
				t.Fatalf("%s: %d handles leaked on failed open", name, crashed.OpenHandles())
			}
			continue
		}
		if err := rs.Forest().SelfCheck(); err != nil {
			t.Fatalf("%s: recovered forest corrupt: %v", name, err)
		}

		// Invariant: the recovered state is the committed state of some
		// prefix of operations — specifically the last acked one (a) or
		// the one that was in flight (a+1). Anything else is a lost
		// acknowledged op, a hybrid, or time travel.
		a := 0
		for i, mk := range marks {
			if mk.traceEnd <= pt.op {
				a = i
			}
		}
		got := snapshotBags(rs.Forest())
		k := -1
		if bagsEqual(got, marks[a].bags) {
			k = a
		} else if a+1 < len(marks) && bagsEqual(got, marks[a+1].bags) {
			k = a + 1
		}
		if k < 0 {
			t.Fatalf("%s: recovered state matches neither committed state %d (acked, sync=%v) nor %d (in flight)",
				name, a, syncMode, a+1)
		}

		// Differential recovery: rebuild a forest from scratch from the
		// surviving documents. The recovered index must be byte-identical
		// to it (deterministic snapshot format) and answer approximate
		// lookups and the similarity join identically.
		rebuilt := forest.New(p33)
		for id, tr := range marks[k].docs {
			if err := rebuilt.Add(id, tr); err != nil {
				t.Fatalf("%s: rebuild: %v", name, err)
			}
		}
		var rb, bb bytes.Buffer
		if err := Save(&rb, rs.Forest()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Save(&bb, rebuilt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(rb.Bytes(), bb.Bytes()) {
			t.Fatalf("%s: recovered snapshot differs from rebuilt-from-scratch (state %d)", name, k)
		}
		if got, want := rs.Forest().Lookup(query, 0.75), rebuilt.Lookup(query, 0.75); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Lookup diverges after recovery: %v vs %v", name, got, want)
		}
		if got, want := rs.Forest().SimilarityJoinWorkers(0.8, 2), rebuilt.SimilarityJoinWorkers(0.8, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: SimilarityJoin diverges after recovery: %v vs %v", name, got, want)
		}

		// Top-k differential across recovery: whether the VP-tree sidecar
		// survived the cut, was discarded as stale, or never existed, a
		// metric-planned top-k on the recovered store must equal the
		// exhaustive scan over the rebuilt-from-scratch forest. SelfCheck
		// above already validated a restored sidecar's structure; this
		// proves its answers.
		ri := rs.Recovery()
		if ri.MetricRestored && ri.MetricDiscarded {
			t.Fatalf("%s: sidecar both restored and discarded: %+v", name, ri)
		}
		rs.Forest().SetPlanMode(forest.PlanMetric)
		rebuilt.SetPlanMode(forest.PlanExhaustive)
		if got, want := rs.Forest().LookupTopK(query, 5), rebuilt.LookupTopK(query, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: LookupTopK diverges after recovery (restored=%v): %v vs %v",
				name, ri.MetricRestored, got, want)
		}
		if err := rs.Forest().SelfCheck(); err != nil {
			t.Fatalf("%s: forest corrupt after metric top-k: %v", name, err)
		}

		// Recovery accounting must be internally consistent.
		if js, err := rs.JournalSize(); err != nil || js < journalHeaderLen {
			t.Fatalf("%s: journal size %d, %v", name, js, err)
		}
		if ri.TornBytes < 0 || ri.Records < 0 || ri.Bytes < 0 {
			t.Fatalf("%s: negative recovery stats: %+v", name, ri)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if crashed.OpenHandles() != 0 {
			t.Fatalf("%s: %d handles leaked after recovery", name, crashed.OpenHandles())
		}
	}
	t.Logf("workload: %d ops, %d journal-record writes, %d trace ops, %d crash points",
		len(marks)-1, walRecords, len(trace), len(crashPoints(trace)))
}

func TestCrashConsistencySynced(t *testing.T)   { runCrashHarness(t, true, 42) }
func TestCrashConsistencyUnsynced(t *testing.T) { runCrashHarness(t, false, 1042) }

// TestCrashDuringRecovery cuts power a second time while recovery itself
// is writing (truncating the tail, resetting a stale journal): recovery
// of a recovered-then-crashed store must still satisfy the invariants.
func TestCrashDuringRecovery(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateStoreFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	doc := gen.XMark(3, 60)
	if err := s.Add("a", doc.Clone()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	_, log, err := gen.RandomScript(rng, doc, 4, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("a", doc, log); err != nil {
		t.Fatal(err)
	}
	// Build the VP-tree so the Compact below also writes its sidecar and
	// the double-crash sweep crosses the .vpt replace protocol too.
	s.Forest().SetPlanMode(forest.PlanMetric)
	if _, ok := s.Forest().LookupNearest(doc); !ok {
		t.Fatal("metric warm-up lookup found nothing")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", tree.MustParse("x(y z)")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	trace := fs.Trace()
	for cut := 0; cut <= len(trace); cut++ {
		first := fs.CrashClone(cut, 0)
		if _, err := OpenStoreFS(first, "idx.pqg"); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("cut %d: %v", cut, err)
			}
			continue
		}
		// Crash at every point of the recovery's own write activity.
		rtrace := first.Trace()
		for rcut := 0; rcut <= len(rtrace); rcut++ {
			second := first.CrashClone(rcut, 0)
			rs, err := OpenStoreFS(second, "idx.pqg")
			if err != nil {
				t.Fatalf("cut %d/%d: double-crash recovery failed: %v", cut, rcut, err)
			}
			if err := rs.Forest().SelfCheck(); err != nil {
				t.Fatalf("cut %d/%d: %v", cut, rcut, err)
			}
			rs.Close()
		}
	}
}
