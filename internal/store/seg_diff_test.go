package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// The differential proof of the segmented engine: for 200 random
// workloads, a segmented store (auto-flushing into multiple segments,
// promoting, tombstoning, compacting, reopening) must answer every query
// kind byte-identically to a plain in-RAM forest fed the same mutations.
// Equality is reflect.DeepEqual over the full result structs — ids,
// distances and order — so any divergence in the tier merge, the bloom
// pre-filter, liveness filtering or recovery shows up as a hard failure.

// diffQueries compares every lookup surface of the two indexes.
func diffQueries(t *testing.T, tag string, seg, ref *forest.Index, queries []*tree.Tree) {
	t.Helper()
	if seg.Len() != ref.Len() {
		t.Fatalf("%s: %d docs vs %d", tag, seg.Len(), ref.Len())
	}
	for qi, q := range queries {
		for _, tau := range []float64{0.3, 0.6, 0.9} {
			if got, want := seg.Lookup(q, tau), ref.Lookup(q, tau); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Lookup(q%d, %.1f) diverges:\n got %v\nwant %v", tag, qi, tau, got, want)
			}
		}
		if got, want := seg.LookupTop(q, 4), ref.LookupTop(q, 4); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: LookupTop(q%d) diverges:\n got %v\nwant %v", tag, qi, got, want)
		}
		seg.SetPlanMode(forest.PlanMetric)
		ref.SetPlanMode(forest.PlanExhaustive)
		if got, want := seg.LookupTopK(q, 5), ref.LookupTopK(q, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: LookupTopK(q%d) diverges:\n got %v\nwant %v", tag, qi, got, want)
		}
		seg.SetPlanMode(forest.PlanAuto)
		ref.SetPlanMode(forest.PlanAuto)
	}
	if got, want := seg.SimilarityJoinWorkers(0.8, 2), ref.SimilarityJoinWorkers(0.8, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: SimilarityJoin diverges:\n got %v\nwant %v", tag, got, want)
	}
}

// runSegDifferential drives one seeded workload against both engines.
func runSegDifferential(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFlushThreshold(3) // small, so the workload crosses many segments
	ref := forest.New(p33)

	docs := make(map[string]*tree.Tree)
	ids := func() []string { return ref.IDs() } // sorted
	nextID := 0
	queries := []*tree.Tree{gen.XMark(991, 35), gen.XMark(992, 20)}

	nOps := 16 + rng.Intn(10)
	for op := 0; op < nOps; op++ {
		switch r := rng.Float64(); {
		case op < 4 || (r < 0.35 && len(docs) < 14):
			id := fmt.Sprintf("doc-%02d", nextID)
			tr := gen.XMark(seed*100+int64(nextID), 18+rng.Intn(25))
			nextID++
			if err := s.Add(id, tr.Clone()); err != nil {
				t.Fatalf("seg add %s: %v", id, err)
			}
			if err := ref.Add(id, tr.Clone()); err != nil {
				t.Fatalf("ref add %s: %v", id, err)
			}
			docs[id] = tr
		case r < 0.50 && len(docs) > 3:
			id := ids()[rng.Intn(len(docs))]
			if err := s.Remove(id); err != nil {
				t.Fatalf("seg remove %s: %v", id, err)
			}
			if err := ref.Remove(id); err != nil {
				t.Fatalf("ref remove %s: %v", id, err)
			}
			delete(docs, id)
		case r < 0.60:
			if err := s.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		case r < 0.70:
			if err := s.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
		default:
			id := ids()[rng.Intn(len(docs))]
			_, log, err := gen.RandomScript(rng, docs[id], 1+rng.Intn(4), gen.DefaultMix)
			if err != nil {
				t.Fatalf("script: %v", err)
			}
			if _, err := s.Update(id, docs[id], log); err != nil {
				t.Fatalf("seg update %s: %v", id, err)
			}
			if _, err := ref.Update(id, docs[id], log); err != nil {
				t.Fatalf("ref update %s: %v", id, err)
			}
		}
	}
	// Make sure the final state actually exercises the tier: at least one
	// flush happened (threshold 3 with >=4 adds guarantees it), and some
	// documents are evicted right now.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments == 0 || st.EvictedDocs == 0 {
		t.Fatalf("workload never evicted: %+v", st)
	}
	diffQueries(t, fmt.Sprintf("seed %d live", seed), s.Forest(), ref, queries)
	if err := s.Forest().SelfCheck(); err != nil {
		t.Fatalf("seed %d: segmented forest self-check: %v", seed, err)
	}

	// Reopen from disk: recovery must reproduce the identical answers.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenSegmentedFS(fs, "idx.pqg")
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	diffQueries(t, fmt.Sprintf("seed %d reopened", seed), rs.Forest(), ref, queries)

	// Compact down to one segment and compare once more.
	if err := rs.Compact(); err != nil {
		t.Fatalf("seed %d: final compact: %v", seed, err)
	}
	if st := rs.Stats(); st.Segments > 1 || st.ResidentDocs != 0 {
		t.Fatalf("seed %d: compact left %+v", seed, st)
	}
	diffQueries(t, fmt.Sprintf("seed %d compacted", seed), rs.Forest(), ref, queries)
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.OpenHandles() != 0 {
		t.Fatalf("seed %d: %d file handles leaked", seed, fs.OpenHandles())
	}
}

// TestSegmentedDifferential200 sweeps 200 seeds (25 under -short).
func TestSegmentedDifferential200(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			runSegDifferential(t, int64(seed))
		})
	}
}

// TestSegmentedBloomSkips proves the bloom pre-filter actually skips
// segment probes for disjoint queries: a query sharing no tuples with a
// flushed segment must record bloom skips and touch no postings.
func TestSegmentedBloomSkips(t *testing.T) {
	fs := fsio.NewMemFS()
	s, err := CreateSegmentedFS(fs, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Add(fmt.Sprintf("doc-%d", i), gen.XMark(int64(i), 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// A single-node document with a label no XMark tree uses: its pq-gram
	// tuples cannot appear in the segment, so every check must skip.
	alien := tree.MustParse("zzz_alien_label")
	out, st := s.Overlaps(profile.BuildIndex(alien, p33))
	if len(out) != 0 {
		t.Fatalf("alien query overlapped %v", out)
	}
	if st.BloomChecks == 0 || st.BloomSkips != st.BloomChecks {
		t.Fatalf("expected all %d bloom checks to skip, got %d skips", st.BloomChecks, st.BloomSkips)
	}
	if st.SegmentsProbed != 0 || st.PostingsScanned != 0 {
		t.Fatalf("alien query probed segments anyway: %+v", st)
	}
}
