package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/tree"
)

// faultSweepWorkload drives one store through a fixed mutation script
// (adds, updates, a remove, a compaction, more mutations) on a
// fault-injecting filesystem. Individual operations are allowed to fail —
// a failed op is simply not acknowledged. The invariant checked at the
// end is the durability contract: reopening from the underlying disk
// state recovers exactly the acknowledged operations, no matter which
// single filesystem op was broken. Returns the number of mutating fs ops
// the workload issued, so callers can sweep a fault across every one.
func faultSweepWorkload(t *testing.T, syncMode bool, arm func(*fsio.FaultFS)) int64 {
	t.Helper()
	mem := fsio.NewMemFS()
	ffs := fsio.NewFaultFS(mem)
	if arm != nil {
		arm(ffs)
	}
	s, err := CreateStoreFS(ffs, "idx.pqg", p33)
	if err != nil {
		// Creation failed under the fault: acceptable, as long as nothing
		// leaked. There is no store to check a recovery contract against.
		if n := mem.OpenHandles(); n != 0 {
			t.Fatalf("create failed (%v) with %d handles still open", err, n)
		}
		return ffs.Ops()
	}
	s.SetSync(syncMode)

	ids := []string{"d0", "d1", "d2", "d3", "d4"}
	docs := make([]*tree.Tree, len(ids))
	for i := range docs {
		docs[i] = gen.DBLP(int64(20+i), 50)
	}
	rng := rand.New(rand.NewSource(21))
	update := func(i int) {
		// The script is generated (and the rng advanced) whether or not
		// the update is acknowledged, so every sweep run sees the same ops.
		_, log, err := gen.RandomScript(rng, docs[i], 4, gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		s.Update(ids[i], docs[i], log)
	}
	for i := 0; i < 4; i++ {
		s.Add(ids[i], docs[i].Clone())
	}
	update(0)
	s.Remove("d1")
	s.Compact()
	s.Add("d4", docs[4].Clone())
	update(2)

	// The contract: the disk state recovers to exactly the acknowledged
	// operations — which is, by construction, the live in-memory forest.
	s.Close()
	re, err := OpenStoreFS(mem, "idx.pqg")
	if err != nil {
		t.Fatalf("reopen after faulted workload: %v", err)
	}
	var live, recovered bytes.Buffer
	if err := Save(&live, s.forest); err != nil {
		t.Fatal(err)
	}
	if err := Save(&recovered, re.Forest()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatalf("recovered state diverges from acknowledged state (%d vs %d snapshot bytes)",
			recovered.Len(), live.Len())
	}
	if err := re.Forest().SelfCheck(); err != nil {
		t.Fatal(err)
	}
	re.Close()
	if n := mem.OpenHandles(); n != 0 {
		t.Fatalf("%d handles leaked", n)
	}
	return ffs.Ops()
}

// TestJournalFaultSweep breaks every single filesystem operation of a
// mixed workload, once with ENOSPC and once with a torn 3-byte write
// followed by EIO, in both sync modes: acknowledged operations must
// always survive a reopen, failed ones must never partially apply.
func TestJournalFaultSweep(t *testing.T) {
	for _, syncMode := range []bool{false, true} {
		total := faultSweepWorkload(t, syncMode, nil)
		if total < 15 {
			t.Fatalf("workload issued only %d fs ops; sweep would prove little", total)
		}
		for n := int64(1); n <= total; n++ {
			n := n
			t.Run(fmt.Sprintf("sync=%v/enospc@%d", syncMode, n), func(t *testing.T) {
				faultSweepWorkload(t, syncMode, func(f *fsio.FaultFS) { f.FailOp(n, fsio.ErrNoSpace) })
			})
			t.Run(fmt.Sprintf("sync=%v/torn@%d", syncMode, n), func(t *testing.T) {
				faultSweepWorkload(t, syncMode, func(f *fsio.FaultFS) { f.ShortWrite(n, 3, fsio.ErrIO) })
			})
		}
	}
}

func sweepForest(ids ...string) *forest.Index {
	f := forest.New(p33)
	for i, id := range ids {
		if err := f.Add(id, gen.DBLP(int64(i), 40)); err != nil {
			panic(err)
		}
	}
	return f
}

func snapshotBytes(t *testing.T, f *forest.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSaveFileAllOrNothing fails every filesystem op of an atomic snapshot
// replacement in turn: the file on disk must afterwards hold either the
// complete old snapshot or the complete new one — never a blend, never a
// truncation — and no handle may leak.
func TestSaveFileAllOrNothing(t *testing.T) {
	oldF := sweepForest("a", "b")
	newF := sweepForest("a", "b", "c", "d")
	oldBytes := snapshotBytes(t, oldF)
	newBytes := snapshotBytes(t, newF)

	// Count the ops of one replacement.
	probe := fsio.NewFaultFS(fsio.NewMemFS())
	if err := SaveFileFS(probe, "x.pqg", newF); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	for n := int64(1); n <= total; n++ {
		mem := fsio.NewMemFS()
		if err := SaveFileFS(mem, "x.pqg", oldF); err != nil {
			t.Fatal(err)
		}
		ffs := fsio.NewFaultFS(mem)
		ffs.FailOp(n, fsio.ErrNoSpace)
		err := SaveFileFS(ffs, "x.pqg", newF)

		got, lerr := fsio.ReadFile(mem, "x.pqg")
		if lerr != nil {
			t.Fatalf("op %d: snapshot unreadable after fault: %v", n, lerr)
		}
		switch {
		case bytes.Equal(got, oldBytes):
			if err == nil {
				t.Fatalf("op %d: SaveFile reported success but old snapshot survived", n)
			}
		case bytes.Equal(got, newBytes):
			// New snapshot in place; the error (if any) hit after the rename.
		default:
			t.Fatalf("op %d: snapshot is neither old nor new (%d bytes)", n, len(got))
		}
		if handles := mem.OpenHandles(); handles != 0 {
			t.Fatalf("op %d: %d handles leaked (err: %v)", n, handles, err)
		}
	}
}

// TestCreateStoreErrorPathsNoLeak fails every op of store creation: any
// outcome must leave zero open handles behind.
func TestCreateStoreErrorPathsNoLeak(t *testing.T) {
	probe := fsio.NewFaultFS(fsio.NewMemFS())
	if _, err := CreateStoreFS(probe, "idx.pqg", p33); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	for n := int64(1); n <= total; n++ {
		mem := fsio.NewMemFS()
		ffs := fsio.NewFaultFS(mem)
		ffs.FailOp(n, fsio.ErrIO)
		s, err := CreateStoreFS(ffs, "idx.pqg", p33)
		if err == nil {
			s.Close()
		}
		if handles := mem.OpenHandles(); handles != 0 {
			t.Fatalf("op %d: %d handles leaked (err: %v)", n, handles, err)
		}
	}
}

// TestOpenStoreErrorPathsNoLeak fails every op of a reopen — both the
// clean-journal path (truncate to the last boundary) and the
// reinitialize path (foreign journal) — and checks for leaked handles.
func TestOpenStoreErrorPathsNoLeak(t *testing.T) {
	mem := fsio.NewMemFS()
	s, err := CreateStoreFS(mem, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", tree.MustParse("r(x y)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", tree.MustParse("r(z)")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	scenarios := []struct {
		name    string
		prepare func(fs *fsio.MemFS)
	}{
		{"clean", func(fs *fsio.MemFS) {}},
		{"foreign-journal", func(fs *fsio.MemFS) {
			if err := fsio.WriteFile(fs, "idx.pqg.wal", []byte("garbage!"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, sc := range scenarios {
		probeFS := mem.CrashClone(mem.TraceLen(), 0)
		sc.prepare(probeFS)
		probe := fsio.NewFaultFS(probeFS)
		ps, err := OpenStoreFS(probe, "idx.pqg")
		if err != nil {
			t.Fatalf("%s: unfaulted reopen failed: %v", sc.name, err)
		}
		ps.Close()
		total := probe.Ops()
		for n := int64(1); n <= total; n++ {
			clone := mem.CrashClone(mem.TraceLen(), 0)
			sc.prepare(clone)
			ffs := fsio.NewFaultFS(clone)
			ffs.FailOp(n, fsio.ErrIO)
			rs, err := OpenStoreFS(ffs, "idx.pqg")
			if err == nil {
				rs.Close()
			}
			if handles := clone.OpenHandles(); handles != 0 {
				t.Fatalf("%s op %d: %d handles leaked (err: %v)", sc.name, n, handles, err)
			}
		}
	}
}

// TestRenameIsFollowedByDirSync: replacing the base snapshot must fsync
// the directory after the rename, or the new entry can evaporate in a
// power cut that the file data survives.
func TestRenameIsFollowedByDirSync(t *testing.T) {
	check := func(name string, mem *fsio.MemFS) {
		t.Helper()
		trace := mem.Trace()
		lastRename := -1
		for i, op := range trace {
			if op.Kind == fsio.OpRename {
				lastRename = i
			}
		}
		if lastRename < 0 {
			t.Fatalf("%s: no rename in trace", name)
		}
		for _, op := range trace[lastRename+1:] {
			if op.Kind == fsio.OpDirSync {
				return
			}
		}
		t.Fatalf("%s: rename at trace op %d has no directory fsync after it", name, lastRename)
	}

	mem := fsio.NewMemFS()
	if err := SaveFileFS(mem, "idx.pqg", sweepForest("a")); err != nil {
		t.Fatal(err)
	}
	check("SaveFileFS", mem)

	mem2 := fsio.NewMemFS()
	s, err := CreateStoreFS(mem2, "idx.pqg", p33)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("a", tree.MustParse("r(x)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	check("Compact", mem2)
}
