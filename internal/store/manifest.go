// The manifest of a segmented store: the single small file that says
// which segments are live. Everything else about the segmented store's
// durable state derives from it — segment files not named by the current
// manifest do not exist as far as recovery is concerned, and the
// journal's header binds to the manifest's content checksum exactly the
// way the monolithic store's journal binds to its snapshot checksum.
// The manifest is replaced atomically (temp + fsync + rename + dir
// fsync), so a crash anywhere leaves either the complete old manifest or
// the complete new one; see STORAGE.md for the recovery matrix.
//
// Layout (varints unless noted):
//
//	magic "PQGM" | version byte | p | q | nextSeq
//	| numSegs  × ( seq | segment file crc32 (4 bytes BE) )   ascending seq
//	| numObsolete × seq                                      ascending seq
//	| crc32-IEEE of everything above (4 bytes BE)
//
// The obsolete list names segment files superseded by a compaction whose
// removal may not have happened yet (file removal is best-effort): the
// next open retries the removal, and the next manifest write drops the
// list. The trailing crc32 is the manifest's identity — writeManifestFile
// returns it, the journal header records it.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pqgram/internal/fsio"
	"pqgram/internal/profile"
)

var manMagic = [4]byte{'P', 'Q', 'G', 'M'}

const manVersion = 1

// manifestSeg names one live segment: its sequence number (which is its
// file name) and the content crc32 its file must carry.
type manifestSeg struct {
	seq uint64
	crc uint32
}

// manifest is the decoded form of the manifest file.
type manifest struct {
	pr       profile.Params
	nextSeq  uint64
	segs     []manifestSeg // ascending seq
	obsolete []uint64      // ascending seq; files pending removal
}

// manifestPath returns the manifest file for a segmented store rooted at
// base; segmentPath the file of one segment.
func manifestPath(base string) string { return base + ".manifest" }

func segmentPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%06d.seg", base, seq)
}

// encodeManifest renders m and returns the bytes plus the trailing crc.
func encodeManifest(m *manifest) ([]byte, uint32) {
	var buf bytes.Buffer
	buf.Write(manMagic[:])
	buf.WriteByte(manVersion)
	putUvarint(&buf, uint64(m.pr.P))
	putUvarint(&buf, uint64(m.pr.Q))
	putUvarint(&buf, m.nextSeq)
	putUvarint(&buf, uint64(len(m.segs)))
	var crcBuf [4]byte
	for _, s := range m.segs {
		putUvarint(&buf, s.seq)
		binary.BigEndian.PutUint32(crcBuf[:], s.crc)
		buf.Write(crcBuf[:])
	}
	putUvarint(&buf, uint64(len(m.obsolete)))
	for _, seq := range m.obsolete {
		putUvarint(&buf, seq)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	binary.BigEndian.PutUint32(crcBuf[:], crc)
	buf.Write(crcBuf[:])
	return buf.Bytes(), crc
}

// writeManifestFile atomically replaces the manifest at path and returns
// its content crc and whether the rename happened — the same distinction
// saveFileCRC draws: an error before the rename leaves the old manifest
// fully intact, an error after it means the live segment set has already
// advanced durably.
func writeManifestFile(fsys fsio.FS, path string, m *manifest) (crc uint32, renamed bool, err error) {
	data, crc := encodeManifest(m)
	dir := dirOf(path)
	tmp, err := fsys.CreateTemp(dir, ".pqgram-*")
	if err != nil {
		return 0, false, err
	}
	tmpName := tmp.Name()
	closed := false
	defer func() {
		if !closed {
			// Failure-path cleanup: the write already returned its error
			// and the temp file is about to be removed.
			tmp.Close() //pqlint:allow errcheck-durability failure-path cleanup of a doomed temp file
		}
		// Best effort; after a successful rename the name is gone already.
		fsys.Remove(tmpName) //pqlint:allow errcheck-durability best-effort removal; after rename the name no longer exists
	}()
	if _, err := tmp.Write(data); err != nil {
		return 0, false, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, false, err
	}
	closed = true
	if err := tmp.Close(); err != nil {
		return 0, false, err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return 0, false, err
	}
	if err := fsio.SyncDir(fsys, dir); err != nil {
		return crc, true, err
	}
	return crc, true, nil
}

// loadManifestFile reads and verifies the manifest at path, returning it
// with its content crc.
func loadManifestFile(fsys fsio.FS, path string) (*manifest, uint32, error) {
	fh, err := fsio.Open(fsys, path)
	if err != nil {
		return nil, 0, err
	}
	m, crc, err := parseManifest(bufio.NewReader(fh))
	if cerr := fh.Close(); err == nil && cerr != nil {
		return nil, 0, cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: manifest %s: %w", path, err)
	}
	return m, crc, nil
}

func parseManifest(r *bufio.Reader) (*manifest, uint32, error) {
	cr := &crcReader{r: r, h: crc32.NewIEEE()}
	var hdr [5]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != manMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if hdr[4] != manVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", hdr[4])
	}
	p, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, 0, fmt.Errorf("reading p: %w", err)
	}
	q, err := getUvarint(cr, maxParam)
	if err != nil {
		return nil, 0, fmt.Errorf("reading q: %w", err)
	}
	m := &manifest{pr: profile.Params{P: int(p), Q: int(q)}}
	if err := m.pr.Validate(); err != nil {
		return nil, 0, err
	}
	if m.nextSeq, err = getUvarint(cr, 1<<62); err != nil {
		return nil, 0, fmt.Errorf("reading nextSeq: %w", err)
	}
	numSegs, err := getUvarint(cr, 1<<20)
	if err != nil {
		return nil, 0, fmt.Errorf("reading segment count: %w", err)
	}
	var crcBuf [4]byte
	for i := uint64(0); i < numSegs; i++ {
		seq, err := getUvarint(cr, 1<<62)
		if err != nil {
			return nil, 0, fmt.Errorf("segment %d: reading seq: %w", i, err)
		}
		if i > 0 && seq <= m.segs[i-1].seq {
			return nil, 0, fmt.Errorf("segment seqs not ascending at %d", seq)
		}
		if seq >= m.nextSeq {
			return nil, 0, fmt.Errorf("segment seq %d not below nextSeq %d", seq, m.nextSeq)
		}
		if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
			return nil, 0, fmt.Errorf("segment %d: reading crc: %w", i, err)
		}
		m.segs = append(m.segs, manifestSeg{seq: seq, crc: binary.BigEndian.Uint32(crcBuf[:])})
	}
	numObs, err := getUvarint(cr, 1<<20)
	if err != nil {
		return nil, 0, fmt.Errorf("reading obsolete count: %w", err)
	}
	for i := uint64(0); i < numObs; i++ {
		seq, err := getUvarint(cr, 1<<62)
		if err != nil {
			return nil, 0, fmt.Errorf("obsolete %d: reading seq: %w", i, err)
		}
		if i > 0 && seq <= m.obsolete[i-1] {
			return nil, 0, fmt.Errorf("obsolete seqs not ascending at %d", seq)
		}
		m.obsolete = append(m.obsolete, seq)
	}
	want := cr.h.Sum32()
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("reading checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(crcBuf[:]); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch: file %08x, computed %08x", got, want)
	}
	// Anything after the checksum is corruption, not padding.
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("trailing bytes after checksum")
	}
	return m, want, nil
}
