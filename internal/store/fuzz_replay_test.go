package store

import (
	"bytes"
	"math/rand"
	"testing"

	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/tree"
)

// fuzzReplayFixture builds one real store on a MemFS and returns its base
// snapshot bytes and journal bytes. The journal's header names exactly that
// base (via the snapshot crc32), so corpus entries derived from it exercise
// the replay path proper, not just the header checks.
func fuzzReplayFixture(f *testing.F) (base, wal []byte) {
	f.Helper()
	fs := fsio.NewMemFS()
	s, err := CreateStoreFS(fs, "idx.pqg", p33)
	if err != nil {
		f.Fatal(err)
	}
	doc := gen.XMark(11, 80)
	if err := s.Add("a", doc.Clone()); err != nil {
		f.Fatal(err)
	}
	if err := s.Add("b", tree.MustParse("x(y z)")); err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	_, log, err := gen.RandomScript(rng, doc, 5, gen.DefaultMix)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Update("a", doc, log); err != nil {
		f.Fatal(err)
	}
	if err := s.Remove("b"); err != nil {
		f.Fatal(err)
	}
	s.Close()
	base, err = fsio.ReadFile(fs, "idx.pqg")
	if err != nil {
		f.Fatal(err)
	}
	wal, err = fsio.ReadFile(fs, "idx.pqg.wal")
	if err != nil {
		f.Fatal(err)
	}
	return base, wal
}

// FuzzJournalReplay feeds arbitrary bytes as the journal of an otherwise
// valid store. Invariants, regardless of input:
//
//   - scanRecords never panics and never claims more valid bytes than it
//     was given; parsing a truncation of the input yields a prefix of the
//     full parse (recovery is monotone in how much of the journal survived).
//   - OpenStoreFS either fails with an error or returns a store whose
//     forest passes SelfCheck — never a panic, never a corrupt index.
//   - Both outcomes leave zero open file handles behind.
func FuzzJournalReplay(f *testing.F) {
	base, wal := fuzzReplayFixture(f)

	f.Add(wal)                                  // the intact journal
	f.Add(wal[:len(wal)-3])                     // torn final record
	f.Add(wal[:journalHeaderLen])               // header only
	f.Add([]byte{})                             // journal never created
	f.Add([]byte("PQGJ"))                       // torn header
	f.Add([]byte("PQGJ\x01garbage-v1-journal")) // pre-versioning journal
	f.Add(append([]byte(nil), base[:9]...))     // base magic where a journal should be
	stale := append([]byte(nil), wal...)
	stale[5] ^= 0xff // wrong base crc in the header
	f.Add(stale)
	badcrc := append([]byte(nil), wal...)
	badcrc[len(badcrc)-1] ^= 0xff // last record structurally fine, checksum bad
	f.Add(badcrc)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, _ := scanRecords(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("scanRecords claims %d valid bytes of %d", valid, len(data))
		}
		half, halfValid, _ := scanRecords(data[:len(data)/2])
		if halfValid > valid || len(half) > len(recs) {
			t.Fatalf("truncated scan found more than the full scan: %d/%d bytes, %d/%d records",
				halfValid, valid, len(half), len(recs))
		}
		for i, r := range half {
			if !bytes.Equal(r, recs[i]) {
				t.Fatalf("truncated scan record %d differs from full scan", i)
			}
		}

		mfs := fsio.NewMemFS()
		if err := fsio.WriteFile(mfs, "idx.pqg", base, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fsio.WriteFile(mfs, "idx.pqg.wal", data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStoreFS(mfs, "idx.pqg")
		if err == nil {
			if err := s.Forest().SelfCheck(); err != nil {
				t.Fatalf("recovered forest fails self check: %v", err)
			}
			r := s.Recovery()
			if r.Records < 0 || r.Bytes < 0 || r.TornBytes < 0 || r.DiscardedBytes < 0 {
				t.Fatalf("negative recovery stats: %+v", r)
			}
			s.Close()
		}
		if n := mfs.OpenHandles(); n != 0 {
			t.Fatalf("%d file handles leaked (open err: %v)", n, err)
		}
	})
}
