// Package fingerprint implements a Karp–Rabin style fingerprint function for
// node labels (Karp and Rabin, IBM J. Res. Dev. 1987), as used by the
// pq-gram index (Augsten et al., VLDB 2006, §3.2): labels of arbitrary
// length are mapped to fixed-width hash values that are unique with high
// probability, and the only operation ever performed on them is an equality
// check.
package fingerprint

import "math/bits"

// Hash is the fixed-width fingerprint of a label.
type Hash uint64

// Null is the fingerprint reserved for the null label "*" of dummy nodes in
// the extended tree (the paper's λ(•) = *, hashed to 0 in Figure 4). Of
// never returns Null for a real label.
const Null Hash = 0

// mersenne61 is the modulus 2^61-1 of the fingerprint field. A Mersenne
// prime admits a cheap reduction after 128-bit multiplication.
const mersenne61 = (1 << 61) - 1

// base is the fixed radix of the polynomial fingerprint. Any value in
// (256, mersenne61) works; this one is a large odd constant.
const base = 0x1fffffffffffe7

func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Reduce a 125-bit value modulo 2^61-1: fold the top bits down.
	r := (lo & mersenne61) + (lo>>61 | hi<<3)
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// Combine folds a sequence of fingerprints into a single fixed-width
// fingerprint, Karp–Rabin style. It is used to fingerprint the label-tuple
// of a pq-gram (the concatenation of p+q label hashes, Figure 4 of the
// paper) so that the index stores one machine word per tuple. Combine is
// order- and length-sensitive and deterministic across processes.
func Combine(hs []Hash) Hash {
	var h uint64
	for _, x := range hs {
		h = mulmod(h, base)
		h += uint64(x) + 1
		if h >= mersenne61 {
			h -= mersenne61
		}
	}
	return Hash(h)
}

// Of returns the fingerprint of a label. It is deterministic across
// processes and never returns Null.
func Of(label string) Hash {
	var h uint64
	for i := 0; i < len(label); i++ {
		h = mulmod(h, base)
		h += uint64(label[i]) + 1
		if h >= mersenne61 {
			h -= mersenne61
		}
	}
	// Mix in the length so that, e.g., "a" and "a\x00" stay distinct even
	// though byte values are offset, and lift the value out of Null.
	h = mulmod(h, base) + uint64(len(label)) + 1
	if h >= mersenne61 {
		h -= mersenne61
	}
	if Hash(h) == Null {
		h = 1
	}
	return Hash(h)
}
