package fingerprint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	for _, s := range []string{"", "a", "dblp", "inproceedings", "日本語", "*"} {
		if Of(s) != Of(s) {
			t.Errorf("Of(%q) not deterministic", s)
		}
	}
}

func TestNeverNull(t *testing.T) {
	inputs := []string{"", "a", "b", "*", "\x00", "\x00\x00"}
	for _, s := range inputs {
		if Of(s) == Null {
			t.Errorf("Of(%q) = Null", s)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		if Of(string(b)) == Null {
			t.Fatalf("Of(%x) = Null", b)
		}
	}
}

func TestDistinctSmallLabels(t *testing.T) {
	// All labels up to length 2 over a small alphabet must be collision-free;
	// these are exactly the label shapes of XML element names and our
	// generators, where a collision would silently corrupt test expectations.
	seen := make(map[Hash]string)
	alphabet := "abcdefghijklmnopqrstuvwxyz_0123456789"
	var check func(s string, depth int)
	check = func(s string, depth int) {
		h := Of(s)
		if prev, ok := seen[h]; ok && prev != s {
			t.Fatalf("collision: %q and %q -> %d", prev, s, h)
		}
		seen[h] = s
		if depth == 0 {
			return
		}
		for i := 0; i < len(alphabet); i++ {
			check(s+string(alphabet[i]), depth-1)
		}
	}
	check("", 2)
}

func TestLengthSensitivity(t *testing.T) {
	// Prefix-padding must change the hash: "a" vs "a\x00" etc.
	pairs := [][2]string{
		{"a", "a\x00"},
		{"", "\x00"},
		{"ab", "ab\x00"},
	}
	for _, p := range pairs {
		if Of(p[0]) == Of(p[1]) {
			t.Errorf("Of(%q) == Of(%q)", p[0], p[1])
		}
	}
}

func TestRandomCollisionFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := make(map[Hash]string, 200000)
	for i := 0; i < 200000; i++ {
		s := fmt.Sprintf("label-%d-%d", i, rng.Int63())
		h := Of(s)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[h] = s
	}
}

func TestQuickInequality(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return Of(a) == Of(b)
		}
		return Of(a) != Of(b) // collision over random strings: astronomically unlikely
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashBelowModulus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if h := uint64(Of(string(b))); h >= mersenne61 {
			t.Fatalf("hash %d exceeds field modulus", h)
		}
	}
}

func BenchmarkOf(b *testing.B) {
	label := "inproceedings"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Of(label)
	}
}
