package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestNilSpanNoOp proves the traced-off contract: every Span method on a
// nil receiver is a valid no-op, so instrumented code never nil-guards.
func TestNilSpanNoOp(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", 1)
	sp.AddAttr("k", 1)
	sp.SetTraceID("id")
	sp.Finish()
	sp.FinishWithDuration(time.Second)
	if c := sp.Child("child"); c != nil {
		t.Fatalf("nil.Child() = %v, want nil", c)
	}
	if got := sp.Snapshot(); !reflect.DeepEqual(got, SpanSnapshot{}) {
		t.Fatalf("nil.Snapshot() = %+v, want zero", got)
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	sp := StartSpan("root")
	sp.SetAttr("plan", 2)
	sp.SetAttr("plan", 3) // replace, not append
	sp.AddAttr("work", 5)
	sp.AddAttr("work", 7) // accumulate
	gen := sp.Child("generate")
	gen.SetAttr("postings", 100)
	gen.Finish()
	verify := sp.Child("verify")
	verify.SetAttr("candidates", 4)
	verify.Finish()
	sp.Finish()
	sp.Finish() // idempotent

	got := sp.Snapshot()
	if got.Name != "root" || got.Attrs["plan"] != 3 || got.Attrs["work"] != 12 {
		t.Fatalf("root snapshot = %+v", got)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "generate" || got.Children[1].Name != "verify" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Children[0].Attrs["postings"] != 100 || got.Children[1].Attrs["candidates"] != 4 {
		t.Fatalf("child attrs = %+v", got.Children)
	}
	if got.SumAttr("work") != 12 || got.SumAttr("postings") != 100 || got.SumAttr("nosuch") != 0 {
		t.Fatalf("SumAttr: work=%d postings=%d", got.SumAttr("work"), got.SumAttr("postings"))
	}
}

// TestFinishWithDurationIdempotent pins the explicit-duration form used by
// the synthesized store.replay / store.append traces: the first finish
// wins and later ones (including plain Finish) do not overwrite it.
func TestFinishWithDurationIdempotent(t *testing.T) {
	sp := StartSpan("x")
	sp.FinishWithDuration(42 * time.Nanosecond)
	sp.FinishWithDuration(7 * time.Hour)
	sp.Finish()
	if got := sp.Snapshot().DurationNS; got != 42 {
		t.Fatalf("DurationNS = %d, want 42", got)
	}
}

// TestStripDurations proves the comparison form: every duration zeroed,
// everything else intact, and the copy deep enough that mutating it does
// not touch the original.
func TestStripDurations(t *testing.T) {
	sp := StartSpan("root")
	sp.SetAttr("n", 1)
	c := sp.Child("c")
	c.SetAttr("m", 2)
	c.FinishWithDuration(time.Millisecond)
	sp.FinishWithDuration(time.Second)

	orig := sp.Snapshot()
	stripped := orig.StripDurations()
	if stripped.DurationNS != 0 || stripped.Children[0].DurationNS != 0 {
		t.Fatalf("durations survive StripDurations: %+v", stripped)
	}
	if stripped.Attrs["n"] != 1 || stripped.Children[0].Attrs["m"] != 2 {
		t.Fatalf("attrs lost: %+v", stripped)
	}
	stripped.Attrs["n"] = 99
	stripped.Children[0].Attrs["m"] = 99
	if orig.Attrs["n"] != 1 || orig.Children[0].Attrs["m"] != 2 {
		t.Fatal("StripDurations shares maps with the original")
	}
	a, _ := json.Marshal(sp.Snapshot().StripDurations())
	b, _ := json.Marshal(stripped)
	if string(a) == string(b) {
		t.Fatal("mutated copy still marshals equal — deep copy broken")
	}
}

// TestTracerSampling pins the deterministic every-Nth contract: of the
// Start calls, numbers 1, every+1, 2·every+1, ... are sampled.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3, 64)
	var sampled []int
	for i := 1; i <= 10; i++ {
		if sp := tr.Start("q"); sp != nil {
			sampled = append(sampled, i)
			sp.Finish()
		}
	}
	if want := []int{1, 4, 7, 10}; !reflect.DeepEqual(sampled, want) {
		t.Fatalf("sampled calls %v, want %v", sampled, want)
	}
	// every < 1 clamps to trace-everything.
	all := NewTracer(0, 64)
	for i := 0; i < 5; i++ {
		if all.Start("q") == nil {
			t.Fatalf("every=0 tracer skipped call %d", i+1)
		}
	}
}

func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	if sp := tr.Start("q"); sp != nil {
		t.Fatalf("nil.Start() = %v, want nil", sp)
	}
	tr.Publish(TraceSnapshot{})
	if got := tr.RecentTraces(5); got != nil {
		t.Fatalf("nil.RecentTraces() = %v, want nil", got)
	}
}

// TestRootSpanPublishes proves the root-span lifecycle: a sampled span
// publishes its snapshot (with trace ID) into the ring at Finish.
func TestRootSpanPublishes(t *testing.T) {
	tr := NewTracer(1, 64)
	sp := tr.Start("forest.lookup")
	sp.SetTraceID("req-000001")
	sp.SetAttr("candidates", 9)
	sp.Finish()

	got := tr.RecentTraces(10)
	if len(got) != 1 {
		t.Fatalf("RecentTraces = %d traces, want 1", len(got))
	}
	ts := got[0]
	if ts.Seq != 1 || ts.ID != "req-000001" || ts.Root.Name != "forest.lookup" || ts.Root.Attrs["candidates"] != 9 {
		t.Fatalf("published trace = %+v", ts)
	}
}

// TestRingEviction fills the striped ring far past capacity and checks
// that RecentTraces returns the newest traces, newest first, and that the
// retained set is exactly the highest sequence numbers each stripe row
// can hold.
func TestRingEviction(t *testing.T) {
	const capacity = 16 // 2 slots per stripe
	tr := NewTracer(1, capacity)
	const published = 100
	for i := 0; i < published; i++ {
		sp := tr.Start("q")
		sp.SetAttr("i", int64(i))
		sp.Finish()
	}
	got := tr.RecentTraces(published)
	if len(got) != capacity {
		t.Fatalf("retained %d traces, want %d", len(got), capacity)
	}
	for i, ts := range got {
		if want := int64(published - i); ts.Seq != want {
			t.Fatalf("trace %d has seq %d, want %d (newest first)", i, ts.Seq, want)
		}
	}
	// Truncation: asking for fewer returns the newest ones only.
	top := tr.RecentTraces(3)
	if len(top) != 3 || top[0].Seq != published || top[2].Seq != published-2 {
		t.Fatalf("RecentTraces(3) = %+v", top)
	}
	if tr.RecentTraces(0) != nil {
		t.Fatal("RecentTraces(0) != nil")
	}
}

// TestPublishExternalSnapshot covers the direct-Publish path used by the
// store's synthesized replay trace and the server's explain handler.
func TestPublishExternalSnapshot(t *testing.T) {
	tr := NewTracer(4, 8) // sampling must not gate direct publishes
	sp := StartSpan("store.replay")
	sp.SetAttr("records", 12)
	sp.FinishWithDuration(time.Millisecond)
	tr.Publish(TraceSnapshot{ID: "boot", Root: sp.Snapshot()})
	tr.Publish(TraceSnapshot{ID: "boot2", Root: sp.Snapshot()})
	got := tr.RecentTraces(2)
	if len(got) != 2 || got[0].ID != "boot2" || got[1].ID != "boot" || got[1].Root.Attrs["records"] != 12 {
		t.Fatalf("RecentTraces = %+v", got)
	}
}

// TestCollectorStartTrace walks the full attach path: no collector, no
// tracer, tracer attached, tracer detached.
func TestCollectorStartTrace(t *testing.T) {
	var nilCol *Collector
	if sp := nilCol.StartTrace("q"); sp != nil {
		t.Fatal("nil collector produced a span")
	}
	if nilCol.Tracer() != nil {
		t.Fatal("nil collector has a tracer")
	}
	nilCol.SetTracer(NewTracer(1, 8)) // must not panic

	col := NewCollector()
	if sp := col.StartTrace("q"); sp != nil {
		t.Fatal("collector without tracer produced a span")
	}
	tr := NewTracer(1, 8)
	col.SetTracer(tr)
	if col.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}
	sp := col.StartTrace("q")
	if sp == nil {
		t.Fatal("collector with tracer produced no span")
	}
	sp.Finish()
	if got := tr.RecentTraces(1); len(got) != 1 || got[0].Root.Name != "q" {
		t.Fatalf("RecentTraces = %+v", got)
	}
	col.SetTracer(nil)
	if sp := col.StartTrace("q"); sp != nil {
		t.Fatal("detached tracer still produces spans")
	}
}

// TestTracerConcurrent hammers Start/Finish/Publish/RecentTraces from
// many goroutines; the -race run proves the striped ring is safe and the
// final sequence number accounts for every publish.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(2, 32)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if sp := tr.Start("q"); sp != nil {
					sp.AddAttr("n", 1)
					sp.Finish()
				}
				if i%32 == 0 {
					tr.RecentTraces(8)
				}
			}
		}()
	}
	wg.Wait()
	published := tr.seq.Load()
	if want := int64(workers * perWorker / 2); published != want {
		t.Fatalf("published %d traces, want %d (every=2 of %d starts)", published, want, workers*perWorker)
	}
	got := tr.RecentTraces(1000)
	if len(got) != 32 {
		t.Fatalf("retained %d traces, want capacity 32", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq <= got[i].Seq {
			t.Fatalf("RecentTraces not strictly newest-first at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestUnfinishedSnapshot documents that snapshotting a live span reports
// elapsed-so-far rather than zero.
func TestUnfinishedSnapshot(t *testing.T) {
	sp := StartSpan("live")
	time.Sleep(time.Millisecond)
	if got := sp.Snapshot().DurationNS; got <= 0 {
		t.Fatalf("unfinished span DurationNS = %d, want > 0", got)
	}
}
