// Package obs is the observability layer of the index: atomic counters,
// gauges, bounded log2-bucket latency histograms, a named-metric registry
// with deterministic snapshots, and an optional structured-log event sink.
//
// The package is dependency-free and allocation-conscious: recording a
// sample is a handful of atomic operations on preallocated state, and every
// metric type is safe for concurrent use. Instrumentation throughout the
// repository is opt-in — a nil *Collector (and the nil metric handles it
// hands out) is a valid no-op, so the uninstrumented fast path costs one
// nil check and nothing else.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous value (queue depth, pool width). The zero value
// is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// numBuckets is the number of log2 histogram buckets: bucket 0 holds the
// value 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i − 1]. 64 value
// buckets cover the whole non-negative int64 range, so Observe never
// clamps.
const numBuckets = 65

// Histogram is a bounded log2-bucket histogram of non-negative values
// (typically latencies in nanoseconds). Recording a sample is four atomic
// adds plus two bounded CAS loops for min/max; the memory footprint is
// fixed at construction. The zero value is ready to use; a nil *Histogram
// is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only while count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return int64(1) << (i - 1), int64(1)<<i - 1
}

// Observe records one sample. Negative values count as 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First sample initializes min/max; racing observers fix any
		// interleaving through the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Nanoseconds())
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the recorded samples by
// linear interpolation inside the target log2 bucket. The estimate is exact
// to within the bucket's resolution (a factor of 2). It returns 0 when the
// histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	est := h.max.Load()
	cum := int64(0)
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			// Position of the target rank inside this bucket, in (0, 1].
			pos := float64(rank-cum) / float64(n)
			est = lo + int64(pos*float64(hi-lo))
			break
		}
		cum += n
	}
	// The interpolated estimate can overshoot what was actually observed
	// (the bucket bound is an upper envelope); clamp to the true range.
	if max := h.max.Load(); est > max {
		est = max
	}
	if min := h.min.Load(); est < min {
		est = min
	}
	return est
}

// Bucket is one non-empty histogram bucket in a snapshot: the inclusive
// value range [Lo, Hi] and its sample count.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram, ready for JSON.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram state. Concurrent Observe calls are
// tolerated; each field is read atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.P99 = h.Quantile(0.99)
	}
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
