package obs

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-buckets plus _sum and _count. Families are
// emitted in sorted name order and buckets in ascending bound order, so
// equal snapshots render to identical bytes. Computed metrics
// (RegisterFunc) render as untyped samples when their value is an
// integer or float and are skipped otherwise — their shape is arbitrary
// JSON, which the text format cannot carry.
func WritePrometheus(w io.Writer, s Snapshot) error {
	pw := &promWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		pw.printf("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pw.printf("# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pw.printf("# TYPE %s histogram\n", name)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			pw.printf("%s_bucket{le=\"%d\"} %d\n", name, b.Hi, cum)
		}
		pw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		pw.printf("%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	for _, name := range sortedKeys(s.Values) {
		switch v := s.Values[name].(type) {
		case int:
			pw.printf("# TYPE %s untyped\n%s %d\n", name, name, v)
		case int64:
			pw.printf("# TYPE %s untyped\n%s %d\n", name, name, v)
		case uint64:
			pw.printf("# TYPE %s untyped\n%s %d\n", name, name, v)
		case float64:
			pw.printf("# TYPE %s untyped\n%s %g\n", name, name, v)
		}
	}
	return pw.err
}

// promWriter sticks to the first write error so the render loop stays
// unconditional.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
