package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
)

// Collector is the handle instrumented subsystems record through: a metric
// registry plus an optional structured-log event sink. A nil *Collector is
// a fully valid no-op — every method is nil-safe and the metric handles it
// returns are nil-safe no-ops too — so call sites need exactly one nil
// check (or none, if they tolerate the no-op handles).
type Collector struct {
	reg    *Registry
	logger atomic.Pointer[slog.Logger]
	tracer atomic.Pointer[Tracer]
}

// NewCollector creates a collector with a fresh registry and no log sink.
func NewCollector() *Collector {
	return &Collector{reg: NewRegistry()}
}

// Registry returns the underlying registry; nil on a nil collector.
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Counter resolves a named counter; nil (no-op) on a nil collector.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.Counter(name)
}

// Gauge resolves a named gauge; nil (no-op) on a nil collector.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.reg.Gauge(name)
}

// Histogram resolves a named histogram; nil (no-op) on a nil collector.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.Histogram(name)
}

// RegisterFunc registers a computed metric; no-op on a nil collector.
func (c *Collector) RegisterFunc(name string, fn func() any) {
	if c == nil {
		return
	}
	c.reg.RegisterFunc(name, fn)
}

// SetLogger attaches a structured-log sink for Event calls. A nil logger
// detaches the sink. No-op on a nil collector.
func (c *Collector) SetLogger(l *slog.Logger) {
	if c == nil {
		return
	}
	c.logger.Store(l)
}

// Logger returns the attached sink, or nil.
func (c *Collector) Logger() *slog.Logger {
	if c == nil {
		return nil
	}
	return c.logger.Load()
}

// SetTracer attaches a per-query tracer; a nil tracer detaches it.
// No-op on a nil collector.
func (c *Collector) SetTracer(t *Tracer) {
	if c == nil {
		return
	}
	c.tracer.Store(t)
}

// Tracer returns the attached tracer, or nil.
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer.Load()
}

// StartTrace starts a sampled root span through the attached tracer.
// Returns nil — a valid no-op span — on a nil collector, with no tracer
// attached, or when the call is not sampled, so the traced-off fast path
// is one atomic load plus one nil check and allocates nothing.
func (c *Collector) StartTrace(name string) *Span {
	if c == nil {
		return nil
	}
	return c.tracer.Load().Start(name)
}

// Event emits one structured log record at Info level if a sink is
// attached; otherwise it is free. args are slog key/value pairs.
func (c *Collector) Event(msg string, args ...any) {
	if c == nil {
		return
	}
	if l := c.logger.Load(); l != nil {
		l.LogAttrs(context.Background(), slog.LevelInfo, msg, argsToAttrs(args)...)
	}
}

func argsToAttrs(args []any) []slog.Attr {
	if len(args) == 0 {
		return nil
	}
	attrs := make([]slog.Attr, 0, len(args)/2)
	for i := 0; i+1 < len(args); i += 2 {
		key, ok := args[i].(string)
		if !ok {
			key = "!BADKEY"
		}
		attrs = append(attrs, slog.Any(key, args[i+1]))
	}
	return attrs
}

// Snapshot captures every metric of the collector's registry; the zero
// Snapshot on a nil collector.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return c.reg.Snapshot()
}

// Reset zeroes every metric; no-op on a nil collector.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.reg.Reset()
}
