// Per-query tracing: a Trace is a deterministic tree of Spans, each
// carrying a name, a monotonic duration and a bag of integer work
// attributes (candidates examined, postings scanned, VP-tree nodes
// visited, journal records replayed, ...). Aggregate metrics answer "how
// is the index doing"; traces answer "why did THIS query cost what it
// did" — which plan the planner chose, which bounds fired, where the
// candidates died.
//
// Collection is opt-in per query through a Tracer attached to the
// Collector: Tracer.Start samples deterministically (every Nth call) and
// returns nil for the rest, and every Span method is nil-safe, so the
// traced-off fast path stays one nil check and allocates nothing. Root
// spans publish their finished snapshot into a bounded lock-striped ring
// buffer read back with RecentTraces.
//
// # Determinism contract
//
// Work attributes record logical work (counts of candidates, postings,
// nodes), never wall-clock, so for a fixed corpus, query and plan mode
// the attribute tree is byte-identical across runs; only DurationNS
// varies. SpanSnapshot.StripDurations returns the comparable form, and
// the explain differential tests hold every plan mode to it.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanAttr is one integer work attribute of a span.
type SpanAttr struct {
	Key   string
	Value int64
}

// Span is one node of a trace: a named piece of work with integer
// attributes and child spans. A nil *Span is a fully valid no-op — every
// method nil-checks — so instrumented code creates spans unconditionally
// and pays nothing when tracing is off.
//
// A span is not safe for concurrent use; concurrent work records into
// per-goroutine child spans or not at all.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	finished bool
	attrs    []SpanAttr
	children []*Span

	// Root-span fields: the tracer to publish into at Finish (nil for
	// standalone spans from StartSpan) and an optional correlation ID
	// (e.g. the HTTP request ID).
	tracer *Tracer
	id     string
}

// StartSpan starts a standalone root span, traced unconditionally and
// published nowhere: the caller reads it back with Snapshot after Finish.
// The explain path uses it so EXPLAIN works without any tracer attached.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a sub-span. Returns nil (a valid no-op) on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// SetAttr sets an integer work attribute, replacing any previous value
// under the same key. No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: v})
}

// AddAttr adds delta to an integer work attribute, creating it at the
// delta if absent. No-op on a nil span.
func (s *Span) AddAttr(key string, delta int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += delta
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: delta})
}

// SetTraceID attaches a correlation ID (e.g. an HTTP request ID) carried
// on the published TraceSnapshot. Meaningful on root spans; no-op on nil.
func (s *Span) SetTraceID(id string) {
	if s == nil {
		return
	}
	s.id = id
}

// Finish records the span's duration. Finishing a root span that came
// from a Tracer publishes the whole trace into the tracer's ring buffer.
// Finish is idempotent; no-op on a nil span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishWithDuration(time.Since(s.start))
}

// FinishWithDuration is Finish with an explicit duration, for spans
// synthesized after the fact (e.g. the journal-replay trace, whose work
// happened before any collector could be attached).
func (s *Span) FinishWithDuration(d time.Duration) {
	if s == nil || s.finished {
		return
	}
	s.finished = true
	s.dur = d
	if s.tracer != nil {
		s.tracer.Publish(TraceSnapshot{ID: s.id, Root: s.Snapshot()})
	}
}

// SpanSnapshot is the immutable, JSON-ready form of a finished span tree.
// Attrs serialize with sorted keys (encoding/json sorts map keys), so
// equal work records marshal to identical bytes.
type SpanSnapshot struct {
	Name       string           `json:"name"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []SpanSnapshot   `json:"children,omitempty"`
}

// Snapshot captures the span subtree. Intended after Finish; an
// unfinished span reports its elapsed time so far. Zero value on nil.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	d := s.dur
	if !s.finished {
		d = time.Since(s.start)
	}
	out := SpanSnapshot{Name: s.name, DurationNS: d.Nanoseconds()}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	if len(s.children) > 0 {
		out.Children = make([]SpanSnapshot, len(s.children))
		for i, c := range s.children {
			out.Children[i] = c.Snapshot()
		}
	}
	return out
}

// StripDurations returns a deep copy with every DurationNS zeroed — the
// deterministic comparison form of the trace: for a fixed corpus, query
// and plan mode two stripped snapshots marshal to identical bytes.
func (s SpanSnapshot) StripDurations() SpanSnapshot {
	out := s
	out.DurationNS = 0
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.Attrs))
		for k, v := range s.Attrs {
			out.Attrs[k] = v
		}
	}
	if len(s.Children) > 0 {
		out.Children = make([]SpanSnapshot, len(s.Children))
		for i, c := range s.Children {
			out.Children[i] = c.StripDurations()
		}
	}
	return out
}

// SumAttr returns the sum of the named attribute over the whole span
// tree — how the bench harness cross-checks traced work counters against
// the registry's counter deltas.
func (s SpanSnapshot) SumAttr(key string) int64 {
	n := s.Attrs[key]
	for _, c := range s.Children {
		n += c.SumAttr(key)
	}
	return n
}

// TraceSnapshot is one published trace: a monotone sequence number (the
// ring-buffer eviction order), an optional correlation ID, and the root
// span tree.
type TraceSnapshot struct {
	Seq  int64        `json:"seq"`
	ID   string       `json:"id,omitempty"`
	Root SpanSnapshot `json:"root"`
}

// traceStripes is the number of ring-buffer lock stripes. Publishes are
// striped by sequence number, so concurrent traced queries contend on a
// stripe only one-in-traceStripes of the time.
const traceStripes = 8

type traceStripe struct {
	mu  sync.Mutex
	buf []TraceSnapshot // guarded by mu; ring of the stripe's most recent traces
}

// Tracer samples queries for tracing and retains the most recent traces
// in a bounded lock-striped ring buffer. A nil *Tracer is a valid no-op.
// Sampling is deterministic: of the Start calls observed, the 1st,
// (every+1)th, (2·every+1)th, ... are traced — no randomness, so a test
// or a replay harness sees the same queries traced every run.
type Tracer struct {
	every     int64
	calls     atomic.Int64
	seq       atomic.Int64
	perStripe int
	stripes   [traceStripes]traceStripe
}

// NewTracer creates a tracer sampling every Nth Start call (every ≤ 1
// traces all) and retaining about `capacity` recent traces (at least one
// per stripe).
func NewTracer(every, capacity int) *Tracer {
	if every < 1 {
		every = 1
	}
	per := capacity / traceStripes
	if per < 1 {
		per = 1
	}
	return &Tracer{every: int64(every), perStripe: per}
}

// Start begins a root span if this call is sampled, nil otherwise (and
// on a nil tracer). The returned span publishes itself at Finish.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	if (t.calls.Add(1)-1)%t.every != 0 {
		return nil
	}
	return &Span{name: name, start: time.Now(), tracer: t}
}

// Publish inserts a finished trace into the ring buffer, assigning its
// sequence number. Root spans call it from Finish; the explain path and
// the store's replay synthesis call it directly with snapshots they
// built themselves. No-op on a nil tracer.
func (t *Tracer) Publish(ts TraceSnapshot) {
	if t == nil {
		return
	}
	ts.Seq = t.seq.Add(1)
	st := &t.stripes[ts.Seq%traceStripes]
	st.mu.Lock()
	if len(st.buf) < t.perStripe {
		st.buf = append(st.buf, ts)
	} else {
		// Per-stripe ring: sequence numbers arrive striped, so within a
		// stripe they ascend and the slot cycles oldest-first.
		st.buf[(ts.Seq/traceStripes)%int64(t.perStripe)] = ts
	}
	st.mu.Unlock()
}

// RecentTraces returns up to n of the most recent traces, newest first.
// Nil on a nil tracer or before anything was published.
func (t *Tracer) RecentTraces(n int) []TraceSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	var out []TraceSnapshot
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		out = append(out, st.buf...)
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if n < len(out) {
		out = out[:n]
	}
	return out
}
