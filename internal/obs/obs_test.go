package obs_test

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"pqgram/internal/obs"
)

// TestHistogramBucketBoundaries pins the log2 bucketing: 0 is its own
// bucket, and every bucket i ≥ 1 covers exactly [2^(i-1), 2^i − 1].
func TestHistogramBucketBoundaries(t *testing.T) {
	h := &obs.Histogram{}
	// One observation per boundary value of the first few buckets.
	values := []int64{0, 1, 2, 3, 4, 7, 8, 15, 16, 1023, 1024}
	for _, v := range values {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(values)) {
		t.Fatalf("count = %d, want %d", s.Count, len(values))
	}
	want := map[[2]int64]int64{
		{0, 0}:       1, // 0
		{1, 1}:       1, // 1
		{2, 3}:       2, // 2, 3
		{4, 7}:       2, // 4, 7
		{8, 15}:      2, // 8, 15
		{16, 31}:     1, // 16
		{512, 1023}:  1, // 1023
		{1024, 2047}: 1, // 1024
	}
	got := map[[2]int64]int64{}
	for _, b := range s.Buckets {
		got[[2]int64{b.Lo, b.Hi}] = b.Count
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("bucket [%d,%d] = %d, want %d", k[0], k[1], got[k], n)
		}
	}
	if s.Min != 0 || s.Max != 1024 {
		t.Errorf("min/max = %d/%d, want 0/1024", s.Min, s.Max)
	}
}

// TestHistogramQuantiles checks that quantile estimates stay within the
// bucket resolution (a factor of two) and inside the observed range.
func TestHistogramQuantiles(t *testing.T) {
	h := &obs.Histogram{}
	// 100 samples of value 100 (bucket [64,127]): every quantile must be in
	// the observed range — and with one distinct value, exactly 100.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) of constant-100 = %d, want 100 (clamped to observed range)", q, got)
		}
	}

	// Uniform 1..1000: p50 must land within a factor of 2 of 500, p99
	// within a factor of 2 of 990, and neither may exceed the max.
	h = &obs.Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	checks := []struct {
		q     float64
		exact int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%v) = %d, want within [%d, %d]", c.q, got, c.exact/2, c.exact*2)
		}
		if got > 1000 {
			t.Errorf("Quantile(%v) = %d exceeds observed max 1000", c.q, got)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("Quantile(1) = %d, want 1000", h.Quantile(1))
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; with -race this doubles as the data-race proof.
func TestConcurrentCounters(t *testing.T) {
	c := obs.NewCollector()
	counter := c.Counter("ops")
	gauge := c.Gauge("depth")
	hist := c.Histogram("lat")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				counter.Inc()
				gauge.Set(int64(i))
				hist.Observe(int64(i % 512))
			}
		}(w)
	}
	wg.Wait()
	if got := counter.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := hist.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if g := gauge.Load(); g < 0 || g >= perWorker {
		t.Errorf("gauge = %d, want in [0,%d)", g, perWorker)
	}
}

// TestNilSafety calls every method on nil handles: none may panic, reads
// return zero values.
func TestNilSafety(t *testing.T) {
	var col *obs.Collector
	col.Counter("x").Inc()
	col.Counter("x").Add(5)
	col.Gauge("y").Set(3)
	col.Gauge("y").Add(-1)
	col.Histogram("z").Observe(42)
	col.RegisterFunc("f", func() any { return 1 })
	col.SetLogger(slog.Default())
	col.Event("nothing happens", "k", "v")
	col.Reset()
	if col.Logger() != nil {
		t.Error("nil collector returned a logger")
	}
	if got := col.Counter("x").Load(); got != 0 {
		t.Errorf("nil counter Load = %d", got)
	}
	if got := col.Histogram("z").Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %d", got)
	}
	snap := col.Snapshot()
	if snap.Counters != nil || snap.Histograms != nil {
		t.Errorf("nil collector snapshot not empty: %+v", snap)
	}

	var reg *obs.Registry
	reg.Counter("a").Inc()
	reg.Reset()
	if names := reg.Names(); names != nil {
		t.Errorf("nil registry Names = %v", names)
	}
}

// TestSnapshotDeterminism feeds two registries identically and requires
// byte-identical JSON snapshots, the property BENCH_*.json diffs rely on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.NewRegistry()
		// Register in different orders to prove order-insensitivity.
		names := []string{"alpha", "beta", "gamma", "delta"}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("depth").Set(7)
		for i := int64(1); i <= 100; i++ {
			r.Histogram("lat").Observe(i * 3)
		}
		return r
	}
	buildReversed := func() *obs.Registry {
		r := obs.NewRegistry()
		for i := int64(1); i <= 100; i++ {
			r.Histogram("lat").Observe(i * 3)
		}
		r.Gauge("depth").Set(7)
		names := []string{"delta", "gamma", "beta", "alpha"}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
		}
		return r
	}
	a, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildReversed().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("snapshots differ:\n%s\n%s", a, b)
	}
}

// TestRegistryResetKeepsHandles proves that Reset zeroes values but keeps
// resolved handles live — instrumented code must not need re-resolution.
func TestRegistryResetKeepsHandles(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("ops")
	h := r.Histogram("lat")
	c.Add(5)
	h.Observe(9)
	r.Reset()
	if c.Load() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: counter=%d hist=%d", c.Load(), h.Count())
	}
	c.Inc()
	h.Observe(3)
	if r.Counter("ops") != c {
		t.Error("counter handle changed identity across Reset")
	}
	if c.Load() != 1 || h.Count() != 1 {
		t.Errorf("handles dead after reset: counter=%d hist=%d", c.Load(), h.Count())
	}
}

// TestRegisterFunc checks computed metrics land under Values.
func TestRegisterFunc(t *testing.T) {
	c := obs.NewCollector()
	c.RegisterFunc("answer", func() any { return 42 })
	snap := c.Snapshot()
	if got := snap.Values["answer"]; got != 42 {
		t.Errorf("Values[answer] = %v, want 42", got)
	}
}

// TestEventSink checks the slog sink receives events with their attrs.
func TestEventSink(t *testing.T) {
	var buf strings.Builder
	c := obs.NewCollector()
	c.Event("dropped", "k", 1) // no sink yet: must not panic
	c.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	c.Event("compacted", "bytes", 123)
	if out := buf.String(); !strings.Contains(out, "compacted") || !strings.Contains(out, "bytes=123") {
		t.Errorf("event not logged: %q", out)
	}
}

// TestQuantileEmptyAndEdge covers empty histograms and out-of-range q.
func TestQuantileEmptyAndEdge(t *testing.T) {
	h := &obs.Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d", got)
	}
	h.Observe(64)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 64 {
			t.Errorf("Quantile(%v) = %d, want 64", q, got)
		}
	}
}

// TestCounterNames smoke-checks Names ordering.
func TestCounterNames(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("b")
	r.Counter("a")
	r.Histogram("c")
	got := fmt.Sprint(r.Names())
	if got != "[a b c]" {
		t.Errorf("Names = %s, want [a b c]", got)
	}
}

// TestCounterDeltas: only moved counters appear in the delta, including
// counters that did not exist in the earlier snapshot.
func TestCounterDeltas(t *testing.T) {
	r := obs.NewRegistry()
	a, b := r.Counter("a"), r.Counter("b")
	a.Add(3)
	b.Add(1)
	before := r.Snapshot()
	a.Add(2)
	r.Counter("c").Inc()
	after := r.Snapshot()
	got := fmt.Sprint(after.CounterDeltas(before))
	if got != "map[a:2 c:1]" {
		t.Errorf("CounterDeltas = %s, want map[a:2 c:1]", got)
	}
	if len((obs.Snapshot{}).CounterDeltas(before)) != 0 {
		t.Error("empty snapshot should have no deltas")
	}
}
