package obs

import (
	"sort"
	"sync"
)

// Registry is a named-metric registry. Metric handles are created on first
// use and stable afterwards, so instrumented code resolves its handles once
// and records through pointers — the registry lock is never on a hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	funcs    map[string]func() any // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a computed metric: fn is invoked at snapshot time
// and its result included verbatim under Values. The result must be
// JSON-marshalable. Re-registering a name replaces the function. No-op on a
// nil registry.
func (r *Registry) RegisterFunc(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time view of every registered metric, shaped for
// JSON. Map iteration feeds sorted keys, and encoding/json sorts map keys
// on marshal, so equal metric states serialize to identical bytes — the
// determinism tests and the BENCH_*.json artifacts rely on that.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Values     map[string]any               `json:"values,omitempty"`
}

// CounterDeltas returns how much each counter grew from prev to s,
// omitting counters that did not move (counters absent from prev count
// from zero). Metric-delta tests use it to assert exactly which counters
// an operation touched without depending on absolute values.
func (s Snapshot) CounterDeltas(prev Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// Snapshot captures every metric. Computed metrics (RegisterFunc) are
// evaluated without the registry lock held, so they may themselves read
// instrumented structures.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	fns := make(map[string]func() any, len(r.funcs))
	for name, fn := range r.funcs {
		fns[name] = fn
	}
	r.mu.RUnlock()
	if len(fns) > 0 {
		s.Values = make(map[string]any, len(fns))
		for name, fn := range fns {
			s.Values[name] = fn()
		}
	}
	return s
}

// Reset zeroes every counter, gauge and histogram, keeping registrations
// (and resolved handles) intact. Computed metrics are untouched.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Names returns the sorted names of all registered metrics, for reports.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	for name := range r.funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
