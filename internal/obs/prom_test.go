package obs

import (
	"errors"
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition format on a hand-built
// snapshot: family order is sorted within each kind, histogram buckets
// are cumulative with a +Inf terminator, and non-numeric computed values
// are skipped.
func TestWritePrometheusFormat(t *testing.T) {
	s := Snapshot{
		Counters: map[string]int64{"forest_lookups": 3, "forest_adds": 2},
		Gauges:   map[string]int64{"store_journal_bytes": 512},
		Histograms: map[string]HistogramSnapshot{
			"forest_lookup_ns": {
				Count: 5, Sum: 90,
				Buckets: []Bucket{{Lo: 0, Hi: 15, Count: 2}, {Lo: 16, Hi: 31, Count: 2}},
			},
		},
		Values: map[string]any{
			"v_float":  1.5,
			"v_int":    3,
			"v_int64":  int64(9),
			"v_skip":   "not a number",
			"v_uint64": uint64(4),
		},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE forest_adds counter
forest_adds 2
# TYPE forest_lookups counter
forest_lookups 3
# TYPE store_journal_bytes gauge
store_journal_bytes 512
# TYPE forest_lookup_ns histogram
forest_lookup_ns_bucket{le="15"} 2
forest_lookup_ns_bucket{le="31"} 4
forest_lookup_ns_bucket{le="+Inf"} 5
forest_lookup_ns_sum 90
forest_lookup_ns_count 5
# TYPE v_float untyped
v_float 1.5
# TYPE v_int untyped
v_int 3
# TYPE v_int64 untyped
v_int64 9
# TYPE v_uint64 untyped
v_uint64 4
`
	if got := b.String(); got != want {
		t.Fatalf("WritePrometheus output:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic renders a live registry twice — the
// maps inside the snapshot must not leak iteration order into the text.
func TestWritePrometheusDeterministic(t *testing.T) {
	col := NewCollector()
	for _, name := range []string{"z_total", "a_total", "m_total"} {
		col.Counter(name).Inc()
	}
	col.Gauge("depth").Set(4)
	h := col.Histogram("lat_ns")
	for _, v := range []int64{1, 2, 100, 5000} {
		h.Observe(v)
	}
	col.RegisterFunc("computed", func() any { return 7 })

	render := func() string {
		var b strings.Builder
		if err := WritePrometheus(&b, col.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, "# TYPE a_total counter") || !strings.Contains(first, "lat_ns_bucket{le=\"+Inf\"} 4") {
		t.Fatalf("unexpected render:\n%s", first)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

// TestWritePrometheusError proves the sticky-error writer surfaces the
// first failure instead of silently truncating the exposition.
func TestWritePrometheusError(t *testing.T) {
	s := Snapshot{Counters: map[string]int64{"a": 1, "b": 2, "c": 3}}
	err := WritePrometheus(&failWriter{n: 1}, s)
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	if err := WritePrometheus(&strings.Builder{}, Snapshot{}); err != nil {
		t.Fatalf("empty snapshot: %v", err)
	}
}
