package jsonconv

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("parsed tree invalid: %v", err)
	}
	return tr
}

func TestParseScalars(t *testing.T) {
	cases := map[string]string{
		`"hi"`:  `=hi`,
		`12.50`: `#12.50`,
		`true`:  TrueLabel,
		`false`: FalseLabel,
		`null`:  NullLabel,
	}
	for in, wantLabel := range cases {
		tr := mustParse(t, in)
		if tr.Size() != 1 || tr.Root().Label() != wantLabel {
			t.Errorf("Parse(%s) root = %q, want %q", in, tr.Root().Label(), wantLabel)
		}
	}
}

func TestParseObjectSortedMembers(t *testing.T) {
	tr := mustParse(t, `{"z": 1, "a": 2}`)
	r := tr.Root()
	if r.Label() != ObjectLabel || r.Fanout() != 2 {
		t.Fatalf("root = %q fanout %d", r.Label(), r.Fanout())
	}
	if r.Child(1).Label() != "a" || r.Child(2).Label() != "z" {
		t.Fatalf("members not sorted: %q, %q", r.Child(1).Label(), r.Child(2).Label())
	}
	if r.Child(1).Child(1).Label() != "#2" {
		t.Fatalf("value = %q", r.Child(1).Child(1).Label())
	}
}

func TestParseNested(t *testing.T) {
	tr := mustParse(t, `{"items": [1, {"x": null}], "on": true}`)
	want := `{}(items([](#1 {}(x(~)))) on(!true))`
	if got := tr.Format(); got != want {
		t.Fatalf("tree = %q, want %q", got, want)
	}
}

func TestMemberOrderIrrelevant(t *testing.T) {
	a := mustParse(t, `{"x": 1, "y": [2, 3]}`)
	b := mustParse(t, `{"y": [2, 3], "x": 1}`)
	if !tree.EqualLabels(a, b) {
		t.Fatal("member order changed the tree")
	}
	// Array order stays significant.
	c := mustParse(t, `{"x": 1, "y": [3, 2]}`)
	if tree.EqualLabels(a, c) {
		t.Fatal("array order should matter")
	}
}

func TestRoundTrip(t *testing.T) {
	docs := []string{
		`"scalar"`,
		`123`,
		`-0.5e3`,
		`true`,
		`null`,
		`[]`,
		`{}`,
		`[1, "two", null, [3], {"k": false}]`,
		`{"a": {"b": {"c": [1, 2, 3]}}, "d": "text with spaces"}`,
	}
	for _, doc := range docs {
		tr := mustParse(t, doc)
		out, err := WriteString(tr)
		if err != nil {
			t.Fatalf("Write(%s): %v", doc, err)
		}
		var want, got any
		if err := json.Unmarshal([]byte(doc), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(out), &got); err != nil {
			t.Fatalf("output %q is not JSON: %v", out, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round trip changed value: %s -> %s", doc, out)
		}
	}
}

func TestNumberLiteralPreserved(t *testing.T) {
	tr := mustParse(t, `[1e2, 0.10]`)
	out, err := WriteString(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1e2") || !strings.Contains(out, "0.10") {
		t.Fatalf("number literals not preserved: %s", out)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{``, `{`, `[1,`, `{"a"}`, `1 2`, `[] []`} {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded", s)
		}
	}
}

func TestWriteRejectsForeignTrees(t *testing.T) {
	for _, s := range []string{"a", "{}(member)", "{}(k(=v =w))"} {
		tr := tree.MustParse(s)
		if _, err := WriteString(tr); err == nil {
			t.Errorf("WriteString(%s) succeeded", s)
		}
	}
}

func TestConfigDriftDistance(t *testing.T) {
	// The motivating use: JSON config drift is measurable and monotone.
	base := mustParse(t, `{"db": {"host": "a", "port": 5432}, "cache": {"ttl": 60}, "flags": ["x", "y"]}`)
	small := mustParse(t, `{"db": {"host": "b", "port": 5432}, "cache": {"ttl": 60}, "flags": ["x", "y"]}`)
	big := mustParse(t, `{"db": {"host": "b", "port": 1}, "cache": {"ttl": 5, "size": 10}, "flags": ["z"]}`)
	p33 := profile.Params{P: 3, Q: 3}
	d0 := profile.BuildIndex(base, p33)
	ds := d0.Distance(profile.BuildIndex(small, p33))
	db := d0.Distance(profile.BuildIndex(big, p33))
	if !(0 < ds && ds < db && db < 1) {
		t.Fatalf("drift distances not ordered: small=%g big=%g", ds, db)
	}
}
