// Package jsonconv converts JSON documents to the ordered labeled trees of
// package tree and back, so JSON data (configuration files, API payloads,
// serialized ASTs) gets the same approximate-matching and incremental
// indexing machinery as XML.
//
// The mapping is deterministic and invertible:
//
//   - an object becomes a node labeled "{}" whose children are the members
//     sorted by key; each member is a node labeled with the raw key and
//     has exactly one child, the value;
//   - an array becomes a node labeled "[]" with the elements in order;
//   - scalars become leaves: strings "=text", numbers "#123.5" (original
//     literal preserved), booleans "!true"/"!false", null "~".
//
// Sorting object members makes semantically equal documents structurally
// equal regardless of member order — the right behavior for similarity.
package jsonconv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pqgram/internal/tree"
)

// Labels of the structural nodes.
const (
	ObjectLabel = "{}"
	ArrayLabel  = "[]"
	NullLabel   = "~"
	TrueLabel   = "!true"
	FalseLabel  = "!false"
)

// Parse reads one JSON value from r and returns it as a tree. Numbers keep
// their original literals (no float rounding).
func Parse(r io.Reader) (*tree.Tree, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("jsonconv: %w", err)
	}
	// Reject trailing content.
	if dec.More() {
		return nil, fmt.Errorf("jsonconv: trailing content after JSON value")
	}
	t := tree.New(labelOf(v))
	if err := addChildren(t, t.Root(), v); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*tree.Tree, error) { return Parse(strings.NewReader(s)) }

func labelOf(v any) string {
	switch x := v.(type) {
	case map[string]any:
		return ObjectLabel
	case []any:
		return ArrayLabel
	case string:
		return "=" + x
	case json.Number:
		return "#" + x.String()
	case bool:
		if x {
			return TrueLabel
		}
		return FalseLabel
	case nil:
		return NullLabel
	}
	return fmt.Sprintf("?%T", v)
}

func addChildren(t *tree.Tree, n *tree.Node, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			member := t.AddChild(n, k)
			val := x[k]
			child := t.AddChild(member, labelOf(val))
			if err := addChildren(t, child, val); err != nil {
				return err
			}
		}
	case []any:
		for _, el := range x {
			child := t.AddChild(n, labelOf(el))
			if err := addChildren(t, child, el); err != nil {
				return err
			}
		}
	}
	return nil
}

// Write serializes a tree produced by Parse back to JSON. Trees that do
// not follow the package's label conventions are rejected.
func Write(w io.Writer, t *tree.Tree) error {
	v, err := valueOf(t.Root())
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// WriteString serializes the tree to a JSON string (no trailing newline).
func WriteString(t *tree.Tree) (string, error) {
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		return "", err
	}
	return strings.TrimRight(buf.String(), "\n"), nil
}

func valueOf(n *tree.Node) (any, error) {
	label := n.Label()
	switch {
	case label == ObjectLabel:
		obj := make(map[string]any, n.Fanout())
		for _, member := range n.Children() {
			if member.Fanout() != 1 {
				return nil, fmt.Errorf("jsonconv: member %q has %d values", member.Label(), member.Fanout())
			}
			v, err := valueOf(member.Child(1))
			if err != nil {
				return nil, err
			}
			obj[member.Label()] = v
		}
		return obj, nil
	case label == ArrayLabel:
		arr := make([]any, 0, n.Fanout())
		for _, el := range n.Children() {
			v, err := valueOf(el)
			if err != nil {
				return nil, err
			}
			arr = append(arr, v)
		}
		return arr, nil
	case label == NullLabel:
		return nil, nil
	case label == TrueLabel:
		return true, nil
	case label == FalseLabel:
		return false, nil
	case strings.HasPrefix(label, "="):
		return label[1:], nil
	case strings.HasPrefix(label, "#"):
		return json.Number(label[1:]), nil
	}
	return nil, fmt.Errorf("jsonconv: node label %q is not in the JSON mapping", label)
}
