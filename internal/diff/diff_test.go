package diff

import (
	"math/rand"
	"testing"

	"pqgram/internal/core"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/ted"
	"pqgram/internal/tree"
)

func mustScript(t *testing.T, aStr, bStr string) (edited *tree.Tree, n int) {
	t.Helper()
	a, b := tree.MustParse(aStr), tree.MustParse(bStr)
	want := ted.Distance(a, b)
	script, log, err := Script(a, b)
	if err != nil {
		t.Fatalf("Script(%s, %s): %v", aStr, bStr, err)
	}
	if len(script) != want {
		t.Fatalf("Script(%s, %s) has %d ops, TED is %d\nscript: %v", aStr, bStr, len(script), want, script)
	}
	if len(log) != len(script) {
		t.Fatalf("log length mismatch")
	}
	if !tree.EqualLabels(a, b) {
		t.Fatalf("Script(%s, %s) result %s != target", aStr, bStr, a.Format())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a, len(script)
}

func TestScriptIdentity(t *testing.T) {
	if _, n := mustScript(t, "a(b c)", "a(b c)"); n != 0 {
		t.Fatalf("identity diff has %d ops", n)
	}
}

func TestScriptSingleOps(t *testing.T) {
	cases := [][2]string{
		{"a(b)", "a(c)"},        // rename
		{"a(b c)", "a(c)"},      // delete leaf
		{"a(b(c d))", "a(c d)"}, // delete inner (children splice)
		{"a(b)", "a(b c)"},      // insert leaf
		{"a(b c)", "a(x(b c))"}, // insert inner adopting both
		{"a(b c d)", "a(b x(c) d)"},
	}
	for _, c := range cases {
		mustScript(t, c[0], c[1])
	}
}

func TestScriptCombined(t *testing.T) {
	cases := [][2]string{
		{"a(b(c d) e)", "a(x(c) e f)"},
		{"r(a b c d e)", "r(e d c b a)"},
		{"r(a(b(c(d))))", "r(d(c(b(a))))"},
		{"site(regions(item item) people)", "site(regions(item) people(person))"},
	}
	for _, c := range cases {
		mustScript(t, c[0], c[1])
	}
}

func TestScriptRootRestrictions(t *testing.T) {
	a, b := tree.MustParse("a(b)"), tree.MustParse("z(b)")
	if _, _, err := Script(a, b); err == nil {
		t.Fatal("root label change accepted")
	}
}

func TestScriptRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 120; iter++ {
		base := gen.RandomTree(rng, 2+rng.Intn(25))
		mutant, _, err := gen.Perturb(rng, base, 1+rng.Intn(10), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		want := ted.Distance(base, mutant)
		work := base.Clone()
		script, log, err := Script(work, mutant)
		if err != nil {
			// The only legitimate failure: the optimal mapping cannot keep
			// the root fixed (possible when perturbation renamed near the
			// root in a tiny tree). Skip those.
			continue
		}
		if len(script) != want {
			t.Fatalf("iter %d: %d ops, TED %d\nbase: %s\nmutant: %s",
				iter, len(script), want, base.Format(), mutant.Format())
		}
		if !tree.EqualLabels(work, mutant) {
			t.Fatalf("iter %d: diff result differs from target", iter)
		}
		// The inverse log must restore the original.
		if err := log.Undo(work); err != nil {
			t.Fatalf("iter %d: undo: %v", iter, err)
		}
		if !tree.Equal(work, base) {
			t.Fatalf("iter %d: undo did not restore the base", iter)
		}
	}
}

// TestDiffDrivesIndexMaintenance is the full change-detection pipeline:
// two document versions, no edit feed — diff them, and use the recovered
// log for incremental index maintenance.
func TestDiffDrivesIndexMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p33 := profile.Params{P: 3, Q: 3}
	for iter := 0; iter < 40; iter++ {
		v1 := gen.XMark(int64(iter), 150)
		v2, _, err := gen.Perturb(rng, v1, 1+rng.Intn(15), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		i0 := profile.BuildIndex(v1, p33)

		work := v1.Clone()
		_, log, err := Script(work, v2)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		in, err := core.UpdateIndex(i0, work, log, p33)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !in.Equal(profile.BuildIndex(work, p33)) {
			t.Fatalf("iter %d: diff-driven update differs from rebuild", iter)
		}
		// And the maintained document really is version 2 (by labels).
		if !tree.EqualLabels(work, v2) {
			t.Fatalf("iter %d: diff did not reach v2", iter)
		}
	}
}

func TestScriptCheapterThanPerturbation(t *testing.T) {
	// The recovered script is minimal: never longer than the perturbation
	// that produced the mutant.
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 40; iter++ {
		base := gen.RandomTree(rng, 10+rng.Intn(30))
		k := 1 + rng.Intn(8)
		mutant, _, err := gen.Perturb(rng, base, k, gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		work := base.Clone()
		script, _, err := Script(work, mutant)
		if err != nil {
			continue
		}
		if len(script) > k {
			t.Fatalf("iter %d: recovered %d ops for a %d-op perturbation", iter, len(script), k)
		}
	}
}
