// Package diff computes minimal edit scripts between trees: the missing
// producer side of the paper's pipeline. The paper consumes logs of edit
// operations from a change feed; diff generates such a script when only
// the two document versions are available (the "change detection" scenario
// of the paper's related work), by extracting a minimum-cost Zhang–Shasha
// edit mapping and converting it into an applicable sequence of the
// standard node operations INS, DEL, REN.
//
// The generated script has exactly TreeEditDistance(a, b) operations,
// transforms a into b (up to node identities: inserted nodes get fresh
// IDs), and its inverse log drives incremental index maintenance.
package diff

import (
	"fmt"
	"sort"

	"pqgram/internal/edit"
	"pqgram/internal/ted"
	"pqgram/internal/tree"
)

// Script computes a minimal edit script that transforms a into b, applying
// it to a in place (a becomes label-equal to b). It returns the script and
// the log of inverse operations — the exact inputs the incremental index
// maintenance needs.
//
// Restrictions inherited from the paper's operation model (the root is
// never changed): the minimum-cost mapping must pair the two roots and
// keep the root label. Document versions share their root element in
// practice; Script reports an error otherwise.
func Script(a, b *tree.Tree) (edit.Script, edit.Log, error) {
	pairs, _ := ted.Mapping(a, b)

	aToB := make(map[tree.NodeID]tree.NodeID, len(pairs))
	bToA := make(map[tree.NodeID]tree.NodeID, len(pairs))
	for _, p := range pairs {
		aToB[p.A] = p.B
		bToA[p.B] = p.A
	}
	rootA, rootB := a.Root(), b.Root()
	if aToB[rootA.ID()] != rootB.ID() {
		return nil, nil, fmt.Errorf("diff: the minimal mapping does not pair the roots; the paper's operation model cannot change the root")
	}
	if rootA.Label() != rootB.Label() {
		return nil, nil, fmt.Errorf("diff: root label changes from %q to %q; the paper's operation model cannot rename the root", rootA.Label(), rootB.Label())
	}

	// Preorder index of every b node, and the end of each subtree's
	// preorder interval, to decide adoption ranges for inserts.
	bPre := make(map[tree.NodeID]int, b.Size())
	bEnd := make(map[tree.NodeID]int, b.Size())
	i := 0
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		bPre[n.ID()] = i
		i++
		for _, c := range n.Children() {
			walk(c)
		}
		bEnd[n.ID()] = i - 1
	}
	walk(rootB)

	var script edit.Script
	var log edit.Log
	apply := func(op edit.Op) error {
		inv, err := op.Apply(a)
		if err != nil {
			return fmt.Errorf("diff: generated operation %v not applicable: %w", op, err)
		}
		script = append(script, op)
		log = append(log, inv)
		return nil
	}

	// 1. Renames: mapped pairs whose labels differ.
	for _, p := range pairs {
		an, bn := a.Node(p.A), b.Node(p.B)
		if an == nil || bn == nil {
			return nil, nil, fmt.Errorf("diff: mapping references unknown node")
		}
		if an.Label() != bn.Label() {
			if err := apply(edit.Ren(p.A, bn.Label())); err != nil {
				return script, log, err
			}
		}
	}

	// 2. Deletes: unmapped nodes of a, children before parents so every
	// DEL splices its current children upward (the mapping's semantics).
	var unmappedA []*tree.Node
	a.PostOrder(func(n *tree.Node) bool {
		if _, ok := aToB[n.ID()]; !ok {
			unmappedA = append(unmappedA, n)
		}
		return true
	})
	for _, n := range unmappedA {
		if err := apply(edit.Del(n.ID())); err != nil {
			return script, log, err
		}
	}

	// corr maps nodes of the working tree to their b counterparts.
	corr := make(map[tree.NodeID]tree.NodeID, b.Size())
	for aid, bid := range aToB {
		corr[aid] = bid
	}
	image := make(map[tree.NodeID]tree.NodeID, b.Size()) // b node -> working-tree node
	for bid, aid := range bToA {
		image[bid] = aid
	}

	// 3. Inserts: unmapped nodes of b in preorder, each as INS(n, v, k, m)
	// adopting the current children of v that belong under it.
	nextID := a.MaxID() + 1
	var unmappedB []*tree.Node
	b.PreOrder(func(n *tree.Node) bool {
		if _, ok := bToA[n.ID()]; !ok {
			unmappedB = append(unmappedB, n)
		}
		return true
	})
	sort.SliceStable(unmappedB, func(i, j int) bool {
		return bPre[unmappedB[i].ID()] < bPre[unmappedB[j].ID()]
	})
	for _, vb := range unmappedB {
		pb := vb.Parent() // non-nil: b's root is mapped
		pa, ok := image[pb.ID()]
		if !ok {
			return script, log, fmt.Errorf("diff: parent of b-node %d not materialized", vb.ID())
		}
		paNode := a.Node(pa)
		lo, hi := bPre[vb.ID()], bEnd[vb.ID()]
		k, m := 0, 0
		adopting := false
		for idx, c := range paNode.Children() {
			cb, ok := corr[c.ID()]
			if !ok {
				return script, log, fmt.Errorf("diff: working-tree node %d has no b counterpart", c.ID())
			}
			switch pre := bPre[cb]; {
			case pre < lo:
				if adopting {
					return script, log, fmt.Errorf("diff: adoption range for b-node %d not contiguous", vb.ID())
				}
				k = idx + 2 // insert after this child
			case pre > hi:
				// after the subtree; nothing to do
			default:
				if !adopting {
					adopting = true
					k = idx + 1
				} else if m != idx { // previous adopted child must be adjacent
					return script, log, fmt.Errorf("diff: adoption range for b-node %d not contiguous", vb.ID())
				}
				m = idx + 1
			}
		}
		if !adopting {
			if k == 0 {
				k = 1
			}
			m = k - 1
		}
		id := nextID
		nextID++
		if err := apply(edit.Ins(id, vb.Label(), pa, k, m)); err != nil {
			return script, log, err
		}
		corr[id] = vb.ID()
		image[vb.ID()] = id
	}
	return script, log, nil
}
