// Metric-space index over the forest: a vantage-point tree that answers
// exact top-k / nearest-neighbor queries by pq-gram distance without
// scoring every document.
//
// # Which distance the tree is built on
//
// The normalized pq-gram distance (Definition 3) violates the triangle
// inequality (see internal/profile/metric.go for the counterexample), so
// a VP-tree pruning on it directly would be unsound. The tree is instead
// organized by the *absolute* bag distance
//
//	D(I, I') = |I| + |I'| − 2·|I ∩ I'|,
//
// the L1 distance between multiplicity vectors — a true metric. Each
// subtree stores the interval of D-distances to its vantage plus the
// range of bag sizes below it; a query lower-bounds the *normalized*
// distance of everything in a subtree from those integers by evaluating
// profile.DistanceFrom — the exact scoring expression — at the best
// feasible (size, overlap) integer points. A subtree is skipped only when
// that bound strictly exceeds the current k-th best distance, so the
// result is byte-identical to the brute-force scan, ties and all.
//
// # Incremental maintenance
//
// The structure is maintained incrementally once built (lazily on the
// first metric-planned query, or restored from a store snapshot):
//
//   - Add buffers the document in a pending list that queries scan
//     linearly; the buffer is flushed into the tree by routed inserts
//     once it grows past a fraction of the tree.
//   - Remove tombstones the document's node; dead nodes keep routing
//     (their bag still anchors the stored distance intervals) but are
//     never reported.
//   - Update tombstones the old node and re-buffers the document with the
//     deltas applied, so stored intervals never go stale.
//   - Each flush rebuilds any subtree whose members are mostly dead.
//
// Every bag the metric index holds is metric-owned (cloned on entry), so
// concurrent in-place maintenance of the live bags can never invalidate a
// stored routing distance.
//
// # Locking
//
// metricIndex.mu nests strictly inside the registry lock and the tree
// entry locks: mutation hooks run under f.mu (write) or f.mu (read) +
// e.mu and take mi.mu last; queries hold f.mu (read) + mi.mu (read) and
// touch no entry or shard locks. Building happens only under f.mu held
// for writing. No code path acquires an entry or shard lock while holding
// mi.mu, so the order registry → entry → shard/metric is acyclic.

package forest

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

const (
	// metricMinTrees is the smallest collection for which PlanAuto
	// considers the VP-tree for a top-k lookup; below it the brute-force
	// scan is already cheap and building the tree is pure overhead.
	metricMinTrees = 64
	// metricKFactor: PlanAuto descends the VP-tree only when k is at most
	// 1/metricKFactor of the collection — for larger k most of the forest
	// is in the answer and the scan wins.
	metricKFactor = 8
	// metricFlushBase bounds the pending buffer: it is flushed into the
	// tree once it exceeds metricFlushBase plus 1/8 of the tree.
	metricFlushBase = 32
)

// vpItem is one document handed to the VP-tree builder: a metric-owned
// bag and its cached cardinality.
type vpItem struct {
	id   string
	bag  profile.Index
	size int
}

// vpNode is one VP-tree node. The node's own document is the vantage of
// its subtree: members with D(vantage, x) ≤ radius live inside, the rest
// outside. All aggregate fields cover the whole subtree including the
// vantage itself; they are extended by inserts and never shrunk by
// tombstones, so they stay conservative (supersets of the live values)
// until a rebuild tightens them.
type vpNode struct {
	id   string
	bag  profile.Index // metric-owned; never mutated while reachable
	size int
	dead bool

	radius          int
	inside, outside *vpNode
	parent          *vpNode

	total, live  int // subtree node counts (incl. self; live ≤ total)
	szMin, szMax int // bag-size range over the subtree
	inLo, inHi   int // D(vantage, x) range over the inside subtree
	outLo, outHi int // D(vantage, x) range over the outside subtree
}

// metricEntry is one buffered (pending) document.
type metricEntry struct {
	bag  profile.Index // metric-owned
	size int
}

// metricIndex is the VP-tree plus its pending buffer. The `built` flag is
// written only under f.mu held for writing and read under at least f.mu
// read, so it needs no atomics of its own.
type metricIndex struct {
	mu      sync.RWMutex
	built   bool
	root    *vpNode
	byID    map[string]*vpNode      // live documents resident in the tree
	pending map[string]*metricEntry // buffered documents, disjoint from byID
	dead    int                     // tombstones in the tree
}

// metricDist returns the absolute distance D(q, bag) and the overlap it
// was derived from, so scorers can evaluate profile.DistanceFrom on the
// exact same integers the postings paths use.
func metricDist(q profile.Index, qSize int, bag profile.Index, bagSize int) (d, ov int) {
	ov = q.IntersectSize(bag)
	return profile.MetricDistanceFrom(qSize, bagSize, ov), ov
}

// idHash64 is FNV-1a over the id, the deterministic pseudo-random key
// used to pick vantages (ties broken by larger id).
func idHash64(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return h
}

// buildVP constructs a VP-tree over the items. Construction is
// deterministic and independent of the input order: the vantage is the
// item with the largest id hash, and members are partitioned around the
// median of (distance, id). Items at the median distance all go inside,
// so the invariant "inside ⇔ D ≤ radius" is exact.
func buildVP(items []vpItem, parent *vpNode) *vpNode {
	if len(items) == 0 {
		return nil
	}
	vi := 0
	vh := idHash64(items[0].id)
	for i := 1; i < len(items); i++ {
		if h := idHash64(items[i].id); h > vh || (h == vh && items[i].id > items[vi].id) {
			vi, vh = i, h
		}
	}
	items[0], items[vi] = items[vi], items[0]
	v := items[0]
	n := &vpNode{
		id: v.id, bag: v.bag, size: v.size, parent: parent,
		total: len(items), live: len(items),
		szMin: v.size, szMax: v.size,
	}
	rest := items[1:]
	if len(rest) == 0 {
		return n
	}
	type distItem struct {
		d  int
		it vpItem
	}
	ds := make([]distItem, len(rest))
	for i, it := range rest {
		d, _ := metricDist(v.bag, v.size, it.bag, it.size)
		ds[i] = distItem{d, it}
		if it.size < n.szMin {
			n.szMin = it.size
		}
		if it.size > n.szMax {
			n.szMax = it.size
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].it.id < ds[j].it.id
	})
	h := (len(ds) + 1) / 2
	for h < len(ds) && ds[h].d == ds[h-1].d {
		h++
	}
	n.radius = ds[h-1].d
	n.inLo, n.inHi = ds[0].d, ds[h-1].d
	in := make([]vpItem, h)
	for i := 0; i < h; i++ {
		in[i] = ds[i].it
	}
	n.inside = buildVP(in, n)
	if h < len(ds) {
		n.outLo, n.outHi = ds[h].d, ds[len(ds)-1].d
		out := make([]vpItem, len(ds)-h)
		for i := h; i < len(ds); i++ {
			out[i-h] = ds[i].it
		}
		n.outside = buildVP(out, n)
	}
	return n
}

// indexByID records every node of the subtree in byID (live nodes only).
func indexByID(n *vpNode, byID map[string]*vpNode) {
	if n == nil {
		return
	}
	if !n.dead {
		byID[n.id] = n
	}
	indexByID(n.inside, byID)
	indexByID(n.outside, byID)
}

// collectLive gathers the live items of a subtree.
func collectLive(n *vpNode, out []vpItem) []vpItem {
	if n == nil {
		return out
	}
	if !n.dead {
		out = append(out, vpItem{id: n.id, bag: n.bag, size: n.size})
	}
	out = collectLive(n.inside, out)
	return collectLive(n.outside, out)
}

// treeLive returns the number of live documents resident in the tree.
func (mi *metricIndex) treeLive() int {
	if mi.root == nil {
		return 0
	}
	return mi.root.live
}

// buildLocked (re)builds the whole structure from the given items, which
// become metric-owned. Requires mi.mu held for writing (or exclusive
// access during construction).
func (mi *metricIndex) buildLocked(items []vpItem) {
	mi.root = buildVP(items, nil)
	mi.byID = make(map[string]*vpNode, len(items))
	indexByID(mi.root, mi.byID)
	mi.pending = make(map[string]*metricEntry)
	mi.dead = 0
	mi.built = true
}

// add buffers a new document. bag is cloned; the caller keeps ownership
// of its map. No-op until the index is built.
func (mi *metricIndex) add(id string, bag profile.Index) {
	if !mi.built {
		return
	}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	mi.pending[id] = &metricEntry{bag: bag.Clone(), size: bag.Size()}
	mi.flushLocked(false)
}

// remove drops a document: pending entries are deleted, tree residents
// tombstoned. No-op until the index is built.
func (mi *metricIndex) remove(id string) {
	if !mi.built {
		return
	}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if _, ok := mi.pending[id]; ok {
		delete(mi.pending, id)
		return
	}
	mi.tombstoneLocked(id)
}

// tombstoneLocked marks the tree-resident node of id dead and propagates
// the live-count decrement to the root. Requires mi.mu held for writing.
func (mi *metricIndex) tombstoneLocked(id string) {
	n := mi.byID[id]
	if n == nil {
		return
	}
	delete(mi.byID, id)
	n.dead = true
	mi.dead++
	for p := n; p != nil; p = p.parent {
		p.live--
	}
}

// applyDeltas maintains the metric copy of one document's bag after an
// incremental update (Algorithm 1 deltas). Pending entries are updated in
// place; tree residents are tombstoned — their frozen bag still anchors
// the stored routing intervals — and re-buffered with the deltas applied.
// No-op until the index is built.
func (mi *metricIndex) applyDeltas(id string, iPlus, iMinus profile.Index) error {
	if !mi.built {
		return nil
	}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	e := mi.pending[id]
	if e == nil {
		n := mi.byID[id]
		if n == nil {
			return fmt.Errorf("forest: metric index has no document %q", id)
		}
		e = &metricEntry{bag: n.bag.Clone(), size: n.size}
		mi.tombstoneLocked(id)
		mi.pending[id] = e
	}
	if err := core.ApplyDeltas(e.bag, iPlus, iMinus); err != nil {
		return fmt.Errorf("forest: metric index: %w", err)
	}
	e.size += iPlus.Size() - iMinus.Size()
	mi.flushLocked(false)
	return nil
}

// flushLocked empties the pending buffer into the tree by routed inserts
// (in ascending id order, so the structure is deterministic for a given
// operation history) and then rebuilds any subtree whose members are
// mostly dead. With force it flushes regardless of the buffer size — the
// store uses that before serializing. Requires mi.mu held for writing.
func (mi *metricIndex) flushLocked(force bool) {
	if !force && len(mi.pending) <= metricFlushBase+mi.treeLive()/8 {
		return
	}
	ids := make([]string, 0, len(mi.pending))
	for id := range mi.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := mi.pending[id]
		mi.insertLocked(vpItem{id: id, bag: e.bag, size: e.size})
	}
	mi.pending = make(map[string]*metricEntry)
	if mi.dead > 0 {
		mi.root = mi.rebuildDirtyLocked(mi.root, nil)
	}
}

// insertLocked routes one item from the root to a leaf position,
// extending the aggregates along the path. Requires mi.mu held for
// writing.
func (mi *metricIndex) insertLocked(it vpItem) {
	if mi.root == nil {
		mi.root = &vpNode{
			id: it.id, bag: it.bag, size: it.size,
			total: 1, live: 1, szMin: it.size, szMax: it.size,
		}
		mi.byID[it.id] = mi.root
		return
	}
	n := mi.root
	for {
		n.total++
		n.live++
		if it.size < n.szMin {
			n.szMin = it.size
		}
		if it.size > n.szMax {
			n.szMax = it.size
		}
		d, _ := metricDist(n.bag, n.size, it.bag, it.size)
		if n.inside == nil && n.outside == nil {
			// Fresh leaf: the first child defines the radius.
			n.radius = d
		}
		leaf := &vpNode{
			id: it.id, bag: it.bag, size: it.size, parent: n,
			total: 1, live: 1, szMin: it.size, szMax: it.size,
		}
		if d <= n.radius {
			if n.inside == nil {
				n.inside, n.inLo, n.inHi = leaf, d, d
				mi.byID[it.id] = leaf
				return
			}
			if d < n.inLo {
				n.inLo = d
			}
			if d > n.inHi {
				n.inHi = d
			}
			n = n.inside
		} else {
			if n.outside == nil {
				n.outside, n.outLo, n.outHi = leaf, d, d
				mi.byID[it.id] = leaf
				return
			}
			if d < n.outLo {
				n.outLo = d
			}
			if d > n.outHi {
				n.outHi = d
			}
			n = n.outside
		}
	}
}

// rebuildDirtyLocked rebuilds every highest subtree in which tombstones
// outnumber live members, dropping the dead nodes and tightening the
// aggregates. Ancestor totals are fixed up by the caller loop via the
// returned replacement. Requires mi.mu held for writing.
func (mi *metricIndex) rebuildDirtyLocked(n, parent *vpNode) *vpNode {
	if n == nil {
		return nil
	}
	if dead := n.total - n.live; dead*2 > n.total {
		items := collectLive(n, make([]vpItem, 0, n.live))
		mi.dead -= dead
		fresh := buildVP(items, parent)
		indexByID(fresh, mi.byID)
		for p := parent; p != nil; p = p.parent {
			p.total -= dead
		}
		return fresh
	}
	n.inside = mi.rebuildDirtyLocked(n.inside, n)
	n.outside = mi.rebuildDirtyLocked(n.outside, n)
	return n
}

// worseMatch reports whether a ranks strictly after b in the top-k order
// (greater distance, ties by greater id). It is the exact complement of
// the sortMatches order, so the heap and the final sort agree on every
// tie.
func worseMatch(a, b Match) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.TreeID > b.TreeID
}

// vpSearch is the state of one top-k descent: a bounded max-heap of the
// best k matches seen (worst at the root) plus the pruning counters.
type vpSearch struct {
	q       profile.Index
	qSize   int
	k       int
	heap    []Match
	visited int64 // distance computations (tree nodes + pending entries)
	pruned  int64 // subtrees skipped by the triangle/size bound
}

// offer considers one scored document for the top-k set.
func (s *vpSearch) offer(m Match) {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, m)
		for i := len(s.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !worseMatch(s.heap[i], s.heap[p]) {
				break
			}
			s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
			i = p
		}
		return
	}
	if !worseMatch(s.heap[0], m) {
		return
	}
	s.heap[0] = m
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(s.heap) && worseMatch(s.heap[l], s.heap[w]) {
			w = l
		}
		if r < len(s.heap) && worseMatch(s.heap[r], s.heap[w]) {
			w = r
		}
		if w == i {
			return
		}
		s.heap[i], s.heap[w] = s.heap[w], s.heap[i]
		i = w
	}
}

// full reports whether the heap holds k matches; worst is only a pruning
// bound once it does.
func (s *vpSearch) full() bool { return len(s.heap) == s.k }

// normLowerBound lower-bounds the normalized pq-gram distance of any
// document whose absolute distance to the query is at least dlb and whose
// bag size lies in [szMin, szMax]. It evaluates profile.DistanceFrom —
// the exact scoring expression — at the feasible integer points where the
// real-valued bound attains its minimum (the size best matching the
// query, the size where the triangle and size bounds cross, the interval
// endpoints, and their parity neighbors), so a prune decided against it
// can never disagree with the scoring path by even an ulp.
func normLowerBound(qSize, dlb, szMin, szMax int) float64 {
	best := math.Inf(1)
	try := func(s int) {
		if s < szMin {
			s = szMin
		}
		if s > szMax {
			s = szMax
		}
		u := qSize + s
		if u < dlb {
			// D ≤ |I|+|I'| always, so no document of this size can be at
			// distance ≥ dlb; the size is infeasible for this subtree.
			return
		}
		ov := qSize
		if s < ov {
			ov = s
		}
		if o := (u - dlb) / 2; o < ov {
			ov = o
		}
		if ov < 0 {
			ov = 0
		}
		if d := profile.DistanceFrom(qSize, s, ov); d < best {
			best = d
		}
	}
	for _, s := range [...]int{
		szMin, szMin + 1, szMax - 1, szMax,
		qSize - 1, qSize, qSize + 1,
		qSize + dlb - 1, qSize + dlb, qSize + dlb + 1,
		dlb - qSize, dlb - qSize + 1,
	} {
		try(s)
	}
	return best
}

// childBound lower-bounds the normalized distance of every document in
// the child subtree, given dq = D(query, vantage) and the stored interval
// [lo, hi] of vantage distances. A negative result means the subtree is
// empty of live documents and can be skipped outright.
func childBound(child *vpNode, dq, lo, hi, qSize int) float64 {
	if child == nil || child.live == 0 {
		return -1
	}
	dlb := 0
	if d := dq - hi; d > dlb {
		dlb = d
	}
	if d := lo - dq; d > dlb {
		dlb = d
	}
	return normLowerBound(qSize, dlb, child.szMin, child.szMax)
}

// visit descends one subtree, scoring the vantage and recursing into the
// children in ascending bound order, skipping any child whose bound
// strictly exceeds the current k-th best distance.
func (s *vpSearch) visit(n *vpNode) {
	if n == nil || n.live == 0 {
		return
	}
	dq, ov := metricDist(s.q, s.qSize, n.bag, n.size)
	s.visited++
	if !n.dead {
		s.offer(Match{TreeID: n.id, Distance: profile.DistanceFrom(s.qSize, n.size, ov)})
	}
	inB := childBound(n.inside, dq, n.inLo, n.inHi, s.qSize)
	outB := childBound(n.outside, dq, n.outLo, n.outHi, s.qSize)
	first, second := n.inside, n.outside
	fb, sb := inB, outB
	if outB >= 0 && (inB < 0 || outB < inB) {
		first, second = n.outside, n.inside
		fb, sb = outB, inB
	}
	if fb >= 0 {
		if s.full() && fb > s.heap[0].Distance {
			s.pruned++
		} else {
			s.visit(first)
		}
	}
	if sb >= 0 {
		if s.full() && sb > s.heap[0].Distance {
			s.pruned++
		} else {
			s.visit(second)
		}
	}
}

// lookupTopMetricLocked answers a top-k lookup through the VP-tree:
// pending documents are scored linearly, then the tree is descended with
// best-bound-first ordering and strict-inequality pruning. Requires f.mu
// held (read suffices) and a built metric index. The result is identical
// to lookupTopExhaustiveLocked on the same forest state.
func (f *Index) lookupTopMetricLocked(q profile.Index, qSize, k int, m *metrics, sp *obs.Span) []Match {
	mi := &f.metric
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	descent := sp.Child("vp_descent")
	s := &vpSearch{q: q, qSize: qSize, k: k}
	for id, e := range mi.pending {
		_, ov := metricDist(q, qSize, e.bag, e.size)
		s.visited++
		s.offer(Match{TreeID: id, Distance: profile.DistanceFrom(qSize, e.size, ov)})
	}
	s.visit(mi.root)
	out := make([]Match, len(s.heap))
	copy(out, s.heap)
	sortMatches(out)
	descent.SetAttr("pending", int64(len(mi.pending)))
	descent.SetAttr("nodes_visited", s.visited)
	descent.SetAttr("pruned_triangle", s.pruned)
	descent.Finish()
	if m != nil {
		m.metricNodesVisited.Add(s.visited)
		m.metricPrunedTriangle.Add(s.pruned)
	}
	return out
}

// buildMetric builds the VP-tree from the current forest under the
// registry write lock (so no bag can change mid-clone). It is a no-op if
// another builder got there first.
func (f *Index) buildMetric() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.metric.built {
		return
	}
	items := make([]vpItem, 0, len(f.trees))
	for _, id := range f.idsLocked() {
		e := f.trees[id]
		var bag profile.Index
		if e.idx != nil {
			bag = e.idx.Clone()
		} else {
			// Evicted: the tier already hands back a private copy. A tier
			// inconsistency here would answer top-k queries wrongly, so it
			// is fatal rather than skipped.
			fetched, err := f.bagOfLocked(id, e)
			if err != nil {
				panic(err)
			}
			bag = fetched
		}
		items = append(items, vpItem{id: id, bag: bag, size: bag.Size()})
	}
	f.metric.buildLocked(items)
	if m := f.obs.Load(); m != nil {
		m.metricBuilds.Inc()
	}
}

// MetricReady reports whether the VP-tree metric index is currently
// built. It is built lazily by the first metric-planned top-k lookup, or
// restored by the store; until then top-k queries fall back to the
// exhaustive scan and mutations carry no metric overhead.
func (f *Index) MetricReady() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.metric.built
}

// LookupNearest returns the single nearest indexed tree to the query by
// pq-gram distance (ties by smallest ID), or ok=false on an empty forest.
func (f *Index) LookupNearest(query *tree.Tree) (Match, bool) {
	out := f.LookupIndexTopK(profile.BuildIndex(query, f.pr), 1)
	if len(out) == 0 {
		return Match{}, false
	}
	return out[0], true
}

// LookupTopK returns the k indexed trees nearest to the query by pq-gram
// distance (fewer if the forest is smaller), sorted by ascending distance
// with ties broken by ID. The candidate strategy is a planner decision
// (PlanMode): the exhaustive scan scores every document through the
// postings, the metric path descends the VP-tree; results are identical
// either way.
func (f *Index) LookupTopK(query *tree.Tree, k int) []Match {
	return f.LookupIndexTopK(profile.BuildIndex(query, f.pr), k)
}

// LookupIndexTopK is LookupTopK for a precomputed query index.
func (f *Index) LookupIndexTopK(q profile.Index, k int) []Match {
	m := f.obs.Load()
	var sp *obs.Span
	if m != nil {
		sp = m.col.StartTrace("forest.topk")
	}
	out, _ := f.lookupIndexTopKSpanned(q, k, m, sp)
	sp.Finish()
	return out
}

// lookupIndexTopKSpanned is the LookupIndexTopK body with the trace span
// threaded through; see lookupIndexSpanned.
func (f *Index) lookupIndexTopKSpanned(q profile.Index, k int, m *metrics, sp *obs.Span) ([]Match, string) {
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	qSize := q.Size()
	f.mu.RLock()
	if k <= 0 || len(f.trees) == 0 {
		f.mu.RUnlock()
		return nil, planExhaustive
	}
	useMetric := f.useMetricLocked(k)
	if useMetric && !f.metric.built {
		f.mu.RUnlock()
		f.buildMetric()
		f.mu.RLock()
	}
	sp.SetAttr("q_size", int64(qSize))
	sp.SetAttr("trees", int64(len(f.trees)))
	sp.SetAttr("k", int64(k))
	var out []Match
	var plan string
	if useMetric && f.metric.built && len(f.trees) > 0 {
		plan = planMetric
		out = f.lookupTopMetricLocked(q, qSize, k, m, sp)
	} else {
		plan = planExhaustive
		out = f.lookupTopExhaustiveLocked(q, qSize, k, m, sp)
	}
	f.mu.RUnlock()
	sp.SetAttr("plan", int64(planCode(plan)))
	sp.SetAttr("matches", int64(len(out)))
	if m != nil {
		m.lookups.Inc()
		m.topkLookups.Inc()
		m.lookupMatches.Add(int64(len(out)))
		m.lookupNS.ObserveSince(t0)
	}
	if len(out) == 0 {
		return nil, plan
	}
	return out, plan
}

// lookupTopExhaustiveLocked scores every indexed tree through the
// postings and keeps the k best — the brute-force reference the metric
// path must match. Requires f.mu held (read suffices) and k > 0.
//
//pqlint:locked f.mu:r
func (f *Index) lookupTopExhaustiveLocked(q profile.Index, qSize, k int, m *metrics, sp *obs.Span) []Match {
	scan := sp.Child("scan")
	overlaps, scanned := f.overlapsLocked(q)
	f.tierOverlapsLocked(q, overlaps, m, sp)
	scan.SetAttr("postings_scanned", scanned)
	scan.SetAttr("candidates", int64(len(f.trees)))
	defer scan.Finish()
	if m != nil {
		m.lookupCandidates.Add(int64(len(f.trees)))
	}
	out := make([]Match, 0, len(f.trees))
	for id, e := range f.trees {
		out = append(out, Match{TreeID: id, Distance: distanceFrom(qSize, int(e.size.Load()), overlaps[id])})
	}
	sortMatches(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MetricNodeDump is one VP-tree node in the serialized form of the metric
// index: the document id plus the routing fields, listed in preorder
// (vantage, inside subtree, outside subtree). Bags are not included — a
// restore reattaches them from the forest itself, whose content the
// store's base snapshot already persists and checksums.
type MetricNodeDump struct {
	ID                       string
	Radius                   int
	SzMin, SzMax             int
	InLo, InHi, OutLo, OutHi int
	Children                 byte // metricChildInside / metricChildOutside flags
}

// Children flags of a MetricNodeDump: which subtrees follow in preorder.
const (
	MetricChildInside  = 1 << 0
	MetricChildOutside = 1 << 1
)

// MetricDump serializes the VP-tree for persistence, or returns nil when
// the metric index is not built. The pending buffer is flushed and every
// tombstone purged first, so the dump covers exactly the indexed
// documents and the restored structure is as tight as a fresh build.
func (f *Index) MetricDump() []MetricNodeDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	mi := &f.metric
	if !mi.built {
		return nil
	}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	mi.flushLocked(true)
	if mi.dead > 0 {
		// Rebuild from the live members: a dump must not carry tombstones,
		// because restore reattaches bags from the forest and a dead node's
		// document no longer has one.
		mi.buildLocked(collectLive(mi.root, make([]vpItem, 0, mi.treeLive())))
	}
	out := make([]MetricNodeDump, 0, mi.treeLive())
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		if n == nil {
			return
		}
		d := MetricNodeDump{
			ID: n.id, Radius: n.radius, SzMin: n.szMin, SzMax: n.szMax,
			InLo: n.inLo, InHi: n.inHi, OutLo: n.outLo, OutHi: n.outHi,
		}
		if n.inside != nil {
			d.Children |= MetricChildInside
		}
		if n.outside != nil {
			d.Children |= MetricChildOutside
		}
		out = append(out, d)
		walk(n.inside)
		walk(n.outside)
	}
	walk(mi.root)
	return out
}

// MetricRestore rebuilds the metric index from a dump taken against the
// same forest content, reattaching each node's bag (cloned) from the live
// forest. The dump is validated structurally — it must name exactly the
// indexed documents, once each — and rejected with an error otherwise,
// leaving the index unbuilt so the next metric-planned lookup rebuilds it
// from scratch; restoring a stale dump would silently answer queries from
// wrong routing intervals.
func (f *Index) MetricRestore(dump []MetricNodeDump) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(dump) != len(f.trees) {
		return fmt.Errorf("forest: metric dump covers %d documents, forest has %d", len(dump), len(f.trees))
	}
	var root *vpNode
	if len(dump) > 0 {
		seen := make(map[string]bool, len(dump))
		pos := 0
		var build func(parent *vpNode) (*vpNode, error)
		build = func(parent *vpNode) (*vpNode, error) {
			d := dump[pos]
			pos++
			e, ok := f.trees[d.ID]
			if !ok {
				return nil, fmt.Errorf("forest: metric dump names unknown document %q", d.ID)
			}
			if seen[d.ID] {
				return nil, fmt.Errorf("forest: metric dump lists document %q twice", d.ID)
			}
			seen[d.ID] = true
			var bag profile.Index
			if e.idx != nil {
				bag = e.idx.Clone()
			} else {
				var err error
				if bag, err = f.bagOfLocked(d.ID, e); err != nil {
					return nil, err
				}
			}
			n := &vpNode{
				id: d.ID, bag: bag, size: bag.Size(), parent: parent,
				radius: d.Radius, szMin: d.SzMin, szMax: d.SzMax,
				inLo: d.InLo, inHi: d.InHi, outLo: d.OutLo, outHi: d.OutHi,
				total: 1, live: 1,
			}
			if n.szMin > n.szMax || n.size < n.szMin || n.size > n.szMax {
				return nil, fmt.Errorf("forest: metric dump size range at %q excludes the vantage", d.ID)
			}
			for _, bit := range [...]byte{MetricChildInside, MetricChildOutside} {
				if d.Children&bit == 0 {
					continue
				}
				if pos >= len(dump) {
					return nil, fmt.Errorf("forest: metric dump truncated below %q", d.ID)
				}
				c, err := build(n)
				if err != nil {
					return nil, err
				}
				if bit == MetricChildInside {
					n.inside = c
				} else {
					n.outside = c
				}
				n.total += c.total
				n.live += c.live
			}
			return n, nil
		}
		var err error
		if root, err = build(nil); err != nil {
			return err
		}
		if pos != len(dump) {
			return fmt.Errorf("forest: metric dump has %d trailing nodes", len(dump)-pos)
		}
	}
	mi := &f.metric
	mi.mu.Lock()
	defer mi.mu.Unlock()
	mi.root = root
	mi.byID = make(map[string]*vpNode, len(dump))
	indexByID(root, mi.byID)
	mi.pending = make(map[string]*metricEntry)
	mi.dead = 0
	mi.built = true
	return nil
}

// metricSelfCheckLocked verifies the metric index against the forest:
// every indexed document appears exactly once (tree or pending) with a
// bag equal to the live one, every routing interval and subtree aggregate
// contains the true values, and the partition invariant D ≤ radius ⇔
// inside holds. Requires f.mu held for writing and the index built.
//
//pqlint:locked f.mu
func (f *Index) metricSelfCheckLocked() error {
	mi := &f.metric
	seen := make(map[string]bool, len(f.trees))
	check := func(id string, bag profile.Index, size int) error {
		if seen[id] {
			return fmt.Errorf("forest: metric index lists document %q twice", id)
		}
		seen[id] = true
		e, ok := f.trees[id]
		if !ok {
			return fmt.Errorf("forest: metric index has unknown document %q", id)
		}
		live, err := f.bagOfLocked(id, e)
		if err != nil {
			return err
		}
		if !bag.Equal(live) {
			return fmt.Errorf("forest: metric bag of %q diverged from the live bag", id)
		}
		if size != bag.Size() {
			return fmt.Errorf("forest: metric size of %q is %d, want %d", id, size, bag.Size())
		}
		return nil
	}
	for id, e := range mi.pending {
		if err := check(id, e.bag, e.size); err != nil {
			return err
		}
	}
	var walk func(n *vpNode) error
	walk = func(n *vpNode) error {
		if n == nil {
			return nil
		}
		if !n.dead {
			if mi.byID[n.id] != n {
				return fmt.Errorf("forest: metric byID out of sync for %q", n.id)
			}
			if err := check(n.id, n.bag, n.size); err != nil {
				return err
			}
		}
		live, total := 1, 1
		if n.dead {
			live = 0
		}
		for _, c := range []*vpNode{n.inside, n.outside} {
			if c == nil {
				continue
			}
			if c.parent != n {
				return fmt.Errorf("forest: metric parent link broken at %q", c.id)
			}
			live += c.live
			total += c.total
			if c.szMin < n.szMin || c.szMax > n.szMax {
				return fmt.Errorf("forest: metric size range of %q not contained in parent", c.id)
			}
		}
		if live != n.live || total != n.total {
			return fmt.Errorf("forest: metric counts at %q are live=%d total=%d, want %d/%d",
				n.id, n.live, n.total, live, total)
		}
		if n.size < n.szMin || n.size > n.szMax {
			return fmt.Errorf("forest: metric size range at %q excludes the vantage", n.id)
		}
		verify := func(c *vpNode, lo, hi int, in bool) error {
			var err error
			var sub func(x *vpNode)
			sub = func(x *vpNode) {
				if x == nil || err != nil {
					return
				}
				d, _ := metricDist(n.bag, n.size, x.bag, x.size)
				if d < lo || d > hi {
					err = fmt.Errorf("forest: metric interval at %q excludes member %q", n.id, x.id)
				} else if in && d > n.radius {
					err = fmt.Errorf("forest: inside member %q of %q beyond the radius", x.id, n.id)
				} else if !in && d <= n.radius {
					err = fmt.Errorf("forest: outside member %q of %q within the radius", x.id, n.id)
				}
				sub(x.inside)
				sub(x.outside)
			}
			sub(c)
			return err
		}
		if err := verify(n.inside, n.inLo, n.inHi, true); err != nil {
			return err
		}
		if err := verify(n.outside, n.outLo, n.outHi, false); err != nil {
			return err
		}
		if err := walk(n.inside); err != nil {
			return err
		}
		return walk(n.outside)
	}
	if err := walk(mi.root); err != nil {
		return err
	}
	if len(seen) != len(f.trees) {
		return fmt.Errorf("forest: metric index covers %d documents, forest has %d", len(seen), len(f.trees))
	}
	return nil
}
