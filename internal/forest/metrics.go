// Instrumentation of the forest index. Metrics are opt-in: SetCollector
// resolves every handle once into a metrics struct behind an atomic
// pointer, so the uninstrumented fast path costs a single nil check per
// operation and the instrumented path records through preresolved pointers
// without touching the registry.

package forest

import (
	"sort"

	"pqgram/internal/obs"
)

// metrics holds the preresolved metric handles of one forest index. All
// fields are nil-safe no-ops when unset, but in practice the struct is
// either fully populated or the pointer to it is nil.
type metrics struct {
	col *obs.Collector

	lookups       *obs.Counter   // forest_lookups
	lookupNS      *obs.Histogram // forest_lookup_ns
	lookupMatches *obs.Counter   // forest_lookup_matches
	batchLookups  *obs.Counter   // forest_batch_lookups (LookupMany calls)

	// Query-planner visibility (planner.go): how many candidate trees a
	// lookup actually touched, and how many of those the bounds killed.
	lookupCandidates    *obs.Counter // forest_lookup_candidates_examined
	lookupPrunedSize    *obs.Counter // forest_lookup_pruned_size (size window)
	lookupPrunedAbandon *obs.Counter // forest_lookup_pruned_abandon (overlap bound)
	joinPrunedSize      *obs.Counter // forest_join_pruned_size (pair emissions skipped)

	// Storage-tier visibility (tier.go): per-segment bloom membership
	// tests and the probes they skipped, segments actually probed, and
	// tier posting entries merged into lookups.
	bloomChecks         *obs.Counter // forest_bloom_checks
	bloomSkips          *obs.Counter // forest_bloom_skips
	tierSegmentsProbed  *obs.Counter // forest_tier_segments_probed
	tierPostingsScanned *obs.Counter // forest_tier_postings_scanned

	// Metric-index visibility (metric.go): top-k lookups answered, VP-tree
	// nodes whose distance was computed, subtrees skipped by the
	// triangle/size bound, and full builds of the structure.
	topkLookups          *obs.Counter // forest_topk_lookups
	metricNodesVisited   *obs.Counter // forest_metric_nodes_visited
	metricPrunedTriangle *obs.Counter // forest_metric_pruned_triangle
	metricBuilds         *obs.Counter // forest_metric_builds

	distOps *obs.Counter   // forest_dist_ops
	distNS  *obs.Histogram // forest_dist_ns

	joins     *obs.Counter   // forest_joins
	joinNS    *obs.Histogram // forest_join_ns
	joinPairs *obs.Counter   // forest_join_pairs

	updates          *obs.Counter   // forest_updates
	updateNS         *obs.Histogram // forest_update_ns
	updateGramsPlus  *obs.Counter   // forest_update_grams_plus
	updateGramsMinus *obs.Counter   // forest_update_grams_minus

	adds      *obs.Counter // forest_adds (trees added, incl. bulk)
	removes   *obs.Counter // forest_removes
	puts      *obs.Counter // forest_puts
	bulkOps   *obs.Counter // forest_bulk_ops (AddAll/AddIndexes batches)
	poolDepth *obs.Gauge   // forest_pool_depth (pending items in worker pools)
}

// SetCollector attaches (or, with nil, detaches) a metrics collector. It
// may be called at any time, including while operations are in flight;
// in-flight operations keep using the handles they resolved at entry.
// Attaching also registers a computed "forest_stripe_load" metric that
// reports the distribution of distinct tuples over the postings stripes at
// snapshot time — the contention-visibility counterpart of the lock
// striping.
func (f *Index) SetCollector(c *obs.Collector) {
	if c == nil {
		f.obs.Store(nil)
		return
	}
	m := &metrics{
		col:                  c,
		lookups:              c.Counter("forest_lookups"),
		lookupNS:             c.Histogram("forest_lookup_ns"),
		lookupMatches:        c.Counter("forest_lookup_matches"),
		batchLookups:         c.Counter("forest_batch_lookups"),
		lookupCandidates:     c.Counter("forest_lookup_candidates_examined"),
		lookupPrunedSize:     c.Counter("forest_lookup_pruned_size"),
		lookupPrunedAbandon:  c.Counter("forest_lookup_pruned_abandon"),
		joinPrunedSize:       c.Counter("forest_join_pruned_size"),
		bloomChecks:          c.Counter("forest_bloom_checks"),
		bloomSkips:           c.Counter("forest_bloom_skips"),
		tierSegmentsProbed:   c.Counter("forest_tier_segments_probed"),
		tierPostingsScanned:  c.Counter("forest_tier_postings_scanned"),
		topkLookups:          c.Counter("forest_topk_lookups"),
		metricNodesVisited:   c.Counter("forest_metric_nodes_visited"),
		metricPrunedTriangle: c.Counter("forest_metric_pruned_triangle"),
		metricBuilds:         c.Counter("forest_metric_builds"),
		distOps:              c.Counter("forest_dist_ops"),
		distNS:               c.Histogram("forest_dist_ns"),
		joins:                c.Counter("forest_joins"),
		joinNS:               c.Histogram("forest_join_ns"),
		joinPairs:            c.Counter("forest_join_pairs"),
		updates:              c.Counter("forest_updates"),
		updateNS:             c.Histogram("forest_update_ns"),
		updateGramsPlus:      c.Counter("forest_update_grams_plus"),
		updateGramsMinus:     c.Counter("forest_update_grams_minus"),
		adds:                 c.Counter("forest_adds"),
		removes:              c.Counter("forest_removes"),
		puts:                 c.Counter("forest_puts"),
		bulkOps:              c.Counter("forest_bulk_ops"),
		poolDepth:            c.Gauge("forest_pool_depth"),
	}
	c.RegisterFunc("forest_stripe_load", f.StripeLoad)
	f.obs.Store(m)
}

// Collector returns the attached collector, or nil.
func (f *Index) Collector() *obs.Collector {
	if m := f.obs.Load(); m != nil {
		return m.col
	}
	return nil
}

// StripeLoadStats summarizes how the distinct posting tuples spread over
// the lock stripes. A Max far above Mean means one stripe is hot and
// writers serialize there; the paper-default fingerprinting keeps the
// spread tight.
type StripeLoadStats struct {
	Stripes  int     `json:"stripes"`
	Keys     int     `json:"keys"`     // total distinct tuples
	Postings int     `json:"postings"` // total posting entries (tuple, tree) pairs
	Min      int     `json:"min"`      // distinct tuples on the lightest stripe
	Max      int     `json:"max"`
	Mean     float64 `json:"mean"`
	P99      int     `json:"p99"` // 99th percentile stripe, by distinct tuples
}

// StripeLoad reports the current postings-stripe load distribution. It
// read-locks each stripe briefly and never blocks writers for longer than
// one stripe scan. The result is declared as `any` so it can be registered
// as a computed metric.
func (f *Index) StripeLoad() any {
	var st StripeLoadStats
	st.Stripes = numShards
	loads := make([]int, numShards)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		loads[i] = len(s.postings)
		for _, m := range s.postings {
			st.Postings += len(m)
		}
		s.mu.RUnlock()
	}
	sort.Ints(loads)
	st.Min = loads[0]
	st.Max = loads[numShards-1]
	st.P99 = loads[(numShards*99)/100]
	for _, n := range loads {
		st.Keys += n
	}
	st.Mean = float64(st.Keys) / float64(numShards)
	return st
}
