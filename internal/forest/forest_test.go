package forest_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

var p33 = profile.Params{P: 3, Q: 3}

func buildForest(t *testing.T, trees map[string]*tree.Tree) *forest.Index {
	t.Helper()
	f := forest.New(p33)
	for id, tr := range trees {
		if err := f.Add(id, tr); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestAddRemoveHas(t *testing.T) {
	f := forest.New(p33)
	tr := tree.MustParse("a(b c)")
	if err := f.Add("doc1", tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("doc1", tr); err == nil {
		t.Fatal("duplicate add succeeded")
	}
	if !f.Has("doc1") || f.Len() != 1 {
		t.Fatal("Has/Len wrong after add")
	}
	if err := f.Remove("doc1"); err != nil {
		t.Fatal(err)
	}
	if f.Has("doc1") || f.Len() != 0 {
		t.Fatal("Has/Len wrong after remove")
	}
	if err := f.Remove("doc1"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if f.Size() != 0 {
		t.Fatal("Size not zero after removal")
	}
}

func TestIDsSorted(t *testing.T) {
	f := buildForest(t, map[string]*tree.Tree{
		"c": tree.MustParse("a"), "a": tree.MustParse("a"), "b": tree.MustParse("a"),
	})
	ids := f.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	trees := make(map[string]*tree.Tree)
	base := gen.XMark(1, 150)
	trees["base"] = base
	for i := 0; i < 12; i++ {
		p, _, err := gen.Perturb(rng, base, 1+rng.Intn(20), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		trees[fmt.Sprintf("perturbed-%02d", i)] = p
	}
	trees["unrelated"] = gen.DBLP(9, 120)
	f := buildForest(t, trees)

	query, _, err := gen.Perturb(rng, base, 3, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	qIdx := profile.BuildIndex(query, p33)

	for _, tau := range []float64{0.0, 0.2, 0.5, 0.9, 1.0, 1.5} {
		got := f.Lookup(query, tau)
		// Brute force: compute distance per tree directly.
		want := make(map[string]float64)
		for id, tr := range trees {
			if d := qIdx.Distance(profile.BuildIndex(tr, p33)); d < tau {
				want[id] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("tau=%g: %d matches, want %d", tau, len(got), len(want))
		}
		for i, m := range got {
			d, ok := want[m.TreeID]
			if !ok || math.Abs(d-m.Distance) > 1e-12 {
				t.Fatalf("tau=%g: match %q dist %g, want %g (present %v)", tau, m.TreeID, m.Distance, d, ok)
			}
			if i > 0 && got[i-1].Distance > m.Distance {
				t.Fatalf("tau=%g: results not sorted", tau)
			}
		}
	}
}

func TestLookupSelfIsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := gen.XMark(2, 120)
	trees := map[string]*tree.Tree{"self": base}
	for i := 0; i < 5; i++ {
		p, _, err := gen.Perturb(rng, base, 5+i*5, gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		trees[fmt.Sprintf("other-%d", i)] = p
	}
	f := buildForest(t, trees)
	top := f.LookupTop(base, 1)
	if len(top) != 1 || top[0].TreeID != "self" || top[0].Distance != 0 {
		t.Fatalf("top = %+v, want self at distance 0", top)
	}
}

func TestLookupTopK(t *testing.T) {
	f := buildForest(t, map[string]*tree.Tree{
		"x": tree.MustParse("a(b c)"),
		"y": tree.MustParse("a(b d)"),
		"z": tree.MustParse("q(w e)"),
	})
	top := f.LookupTop(tree.MustParse("a(b c)"), 2)
	if len(top) != 2 {
		t.Fatalf("got %d results", len(top))
	}
	if top[0].TreeID != "x" || top[0].Distance != 0 {
		t.Fatalf("top1 = %+v", top[0])
	}
	if top[1].TreeID != "y" {
		t.Fatalf("top2 = %+v", top[1])
	}
	all := f.LookupTop(tree.MustParse("a(b c)"), 99)
	if len(all) != 3 {
		t.Fatalf("LookupTop with large k returned %d", len(all))
	}
}

func TestLookupThresholdOne(t *testing.T) {
	// tau = 1 excludes trees sharing no pq-gram; tau > 1 includes them.
	f := buildForest(t, map[string]*tree.Tree{
		"near": tree.MustParse("a(b c)"),
		"far":  tree.MustParse("q(w e)"),
	})
	q := tree.MustParse("a(b c)")
	if got := f.Lookup(q, 1.0); len(got) != 1 || got[0].TreeID != "near" {
		t.Fatalf("tau=1: %+v", got)
	}
	if got := f.Lookup(q, 1.01); len(got) != 2 {
		t.Fatalf("tau>1: %+v", got)
	}
}

func TestDistanceAccessors(t *testing.T) {
	f := buildForest(t, map[string]*tree.Tree{
		"x": tree.MustParse("a(b c)"),
		"y": tree.MustParse("a(b c)"),
		"z": tree.MustParse("z(z z)"),
	})
	if d, err := f.Distance("x", "y"); err != nil || d != 0 {
		t.Fatalf("Distance(x,y) = %g, %v", d, err)
	}
	if d, err := f.Distance("x", "z"); err != nil || d != 1 {
		t.Fatalf("Distance(x,z) = %g, %v", d, err)
	}
	if _, err := f.Distance("x", "nope"); err == nil {
		t.Fatal("missing tree not reported")
	}
	if d, err := f.DistanceTo(tree.MustParse("a(b c)"), "x"); err != nil || d != 0 {
		t.Fatalf("DistanceTo = %g, %v", d, err)
	}
	if _, err := f.DistanceTo(tree.MustParse("a"), "nope"); err == nil {
		t.Fatal("missing tree not reported")
	}
}

func TestUpdateMaintainsForest(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	base := gen.XMark(3, 200)
	f := forest.New(p33)
	doc := base.Clone()
	if err := f.Add("doc", doc); err != nil {
		t.Fatal(err)
	}
	other := gen.XMark(4, 150)
	if err := f.Add("other", other); err != nil {
		t.Fatal(err)
	}

	// Edit the document several times, updating incrementally.
	for round := 0; round < 5; round++ {
		_, log, err := gen.RandomScript(rng, doc, 1+rng.Intn(10), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Update("doc", doc, log); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// The maintained per-tree bag must equal a rebuild.
		if !f.TreeIndex("doc").Equal(profile.BuildIndex(doc, p33)) {
			t.Fatalf("round %d: maintained bag differs from rebuild", round)
		}
		// Postings must be consistent: lookup of the current document
		// returns itself at distance 0.
		top := f.LookupTop(doc, 1)
		if len(top) != 1 || top[0].TreeID != "doc" || top[0].Distance != 0 {
			t.Fatalf("round %d: lookup after update = %+v", round, top)
		}
	}
}

func TestUpdateUnknownTree(t *testing.T) {
	f := forest.New(p33)
	if _, err := f.Update("nope", tree.MustParse("a"), nil); err == nil {
		t.Fatal("update of unknown tree succeeded")
	}
}

func TestUpdateBadLogErrors(t *testing.T) {
	f := forest.New(p33)
	tr := tree.MustParse("a(b c)")
	if err := f.Add("doc", tr); err != nil {
		t.Fatal(err)
	}
	// A log that does not belong to the tree must error and leave the
	// per-tree bag untouched.
	bad := edit.Log{edit.Ins(99, "z", 88, 1, 0)}
	if _, err := f.Update("doc", tr, bad); err == nil {
		t.Fatal("bad log did not error")
	}
	if !f.TreeIndex("doc").Equal(profile.BuildIndex(tr, p33)) {
		t.Fatal("failed update corrupted the bag")
	}
}

func TestEmptyForestLookup(t *testing.T) {
	f := forest.New(p33)
	if got := f.Lookup(tree.MustParse("a"), 0.5); len(got) != 0 {
		t.Fatalf("lookup on empty forest = %v", got)
	}
	if got := f.LookupTop(tree.MustParse("a"), 3); len(got) != 0 {
		t.Fatalf("top on empty forest = %v", got)
	}
}

func TestSizeAccounting(t *testing.T) {
	f := forest.New(p33)
	a := tree.MustParse("a(b c)")
	b := tree.MustParse("x(y)")
	f.Add("a", a)
	f.Add("b", b)
	want := profile.Count(a, p33) + profile.Count(b, p33)
	if f.Size() != want {
		t.Fatalf("Size = %d, want %d", f.Size(), want)
	}
}

func TestSimilarityJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	trees := make(map[string]*tree.Tree)
	base := gen.XMark(21, 120)
	for i := 0; i < 10; i++ {
		p, _, err := gen.Perturb(rng, base, 1+rng.Intn(25), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		trees[fmt.Sprintf("d%02d", i)] = p
	}
	trees["far"] = gen.DBLP(5, 100)
	f := buildForest(t, trees)

	for _, tau := range []float64{0.05, 0.3, 0.8, 1.0, 1.5} {
		got := f.SimilarityJoin(tau)
		// Brute force over all pairs.
		ids := f.IDs()
		want := make(map[[2]string]float64)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d, err := f.Distance(ids[i], ids[j])
				if err != nil {
					t.Fatal(err)
				}
				if d < tau {
					want[[2]string{ids[i], ids[j]}] = d
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("tau=%g: %d pairs, want %d", tau, len(got), len(want))
		}
		for i, p := range got {
			d, ok := want[[2]string{p.A, p.B}]
			if !ok || math.Abs(d-p.Distance) > 1e-12 {
				t.Fatalf("tau=%g: pair %s-%s dist %g, want %g (present %v)", tau, p.A, p.B, p.Distance, d, ok)
			}
			if i > 0 && got[i-1].Distance > p.Distance {
				t.Fatalf("tau=%g: pairs not sorted", tau)
			}
		}
	}
}

func TestSimilarityJoinEmptyAndSingle(t *testing.T) {
	f := forest.New(p33)
	if got := f.SimilarityJoin(0.5); len(got) != 0 {
		t.Fatal("join on empty forest")
	}
	f.Add("only", tree.MustParse("a(b)"))
	if got := f.SimilarityJoin(0.5); len(got) != 0 {
		t.Fatal("join with one tree")
	}
}

func TestSelfCheckDetectsCorruption(t *testing.T) {
	f := buildForest(t, map[string]*tree.Tree{
		"x": tree.MustParse("a(b c)"),
		"y": tree.MustParse("a(b d)"),
	})
	if err := f.SelfCheck(); err != nil {
		t.Fatalf("fresh forest fails self check: %v", err)
	}
	// Corrupt a per-tree bag behind the postings' back (test-only hook;
	// the public API hands out copies).
	forest.CorruptBagForTest(f, "x")
	if err := f.SelfCheck(); err == nil {
		t.Fatal("corruption not detected")
	}
}

// TestTreeIndexReturnsCopy: the bag handed out by TreeIndex is the
// caller's; mutating it must not corrupt the forest (this was a real
// aliasing bug — the internal map used to escape).
func TestTreeIndexReturnsCopy(t *testing.T) {
	tr := tree.MustParse("a(b c(d) e)")
	f := buildForest(t, map[string]*tree.Tree{"x": tr, "y": tree.MustParse("a(b)")})
	idx := f.TreeIndex("x")
	for lt := range idx {
		idx[lt] += 7
	}
	idx[profile.TupleOfLabels("*", "*", "zzz", "*", "*", "*")] = 3
	if err := f.SelfCheck(); err != nil {
		t.Fatalf("mutating the returned bag corrupted the forest: %v", err)
	}
	if !f.TreeIndex("x").Equal(profile.BuildIndex(tr, p33)) {
		t.Fatal("forest bag changed through the returned copy")
	}
	if f.TreeIndex("nope") != nil {
		t.Fatal("unknown id should return nil")
	}
	size, distinct, ok := f.TreeStats("x")
	if !ok || size != profile.Count(tr, p33) || distinct == 0 {
		t.Fatalf("TreeStats = (%d, %d, %v)", size, distinct, ok)
	}
}

// TestMetamorphicForestOps: a random sequence of add/remove/update keeps
// the index internally consistent and lookups exact.
func TestMetamorphicForestOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := forest.New(p33)
	live := make(map[string]*tree.Tree)
	for step := 0; step < 120; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0: // add
			id := fmt.Sprintf("doc-%03d", step)
			d := gen.RandomTree(rng, 5+rng.Intn(60))
			if err := f.Add(id, d); err != nil {
				t.Fatal(err)
			}
			live[id] = d
		case op == 1: // remove
			for id := range live {
				if err := f.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		default: // incremental update
			for id, d := range live {
				_, log, err := gen.RandomScript(rng, d, 1+rng.Intn(8), gen.DefaultMix)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Update(id, d, log); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		if step%20 == 19 {
			if err := f.SelfCheck(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			for id, d := range live {
				if !f.TreeIndex(id).Equal(profile.BuildIndex(d, p33)) {
					t.Fatalf("step %d: bag of %s diverged", step, id)
				}
			}
		}
	}
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != len(live) {
		t.Fatalf("forest has %d trees, want %d", f.Len(), len(live))
	}
}
