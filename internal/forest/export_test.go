package forest

// CorruptBagForTest bumps one tuple count in id's bag (and the cached
// size) behind the postings' back. TreeIndex returns a copy precisely so
// that callers cannot do this; tests use the hook to prove SelfCheck
// would catch such corruption.
func CorruptBagForTest(f *Index, id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.trees[id]
	for lt := range e.idx {
		e.idx[lt]++
		e.size.Add(1)
		break
	}
}

// NumShardsForTest exposes the stripe count for shard-distribution tests.
const NumShardsForTest = numShards

// SortMatchesForTest exposes the canonical (distance, id) result order so
// differential tests can rank their independently computed references
// with the exact comparator the lookup paths use.
func SortMatchesForTest(ms []Match) { sortMatches(ms) }
