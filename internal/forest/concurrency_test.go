package forest_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/store"
	"pqgram/internal/tree"
)

// TestForestConcurrentMix is the race-detector stress test: concurrent
// readers (Lookup, LookupTop, Distance, IDs, TreeIndex, Size) against
// concurrent writers (Add, Remove, Update, Put) over XMark-shaped trees.
// Each writer owns a disjoint set of documents, mirroring the serving
// contract that updates to one document form a single coherent sequence.
// Run under -race; afterwards SelfCheck must pass and every maintained bag
// must equal a rebuild of its final document.
func TestForestConcurrentMix(t *testing.T) {
	const (
		nDocs     = 12
		writers   = 4
		readers   = 4
		writerIts = 40
		readerIts = 150
	)
	f := forest.New(p33)
	docs := make([]*tree.Tree, nDocs)
	ids := make([]string, nDocs)
	for i := range docs {
		docs[i] = gen.XMark(int64(i+1), 80)
		ids[i] = fmt.Sprintf("doc-%02d", i)
		if err := f.Add(ids[i], docs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers*writerIts)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for it := 0; it < writerIts; it++ {
				i := w + writers*rng.Intn(nDocs/writers) // own partition only
				switch rng.Intn(4) {
				case 0, 1: // incremental update
					_, log, err := gen.RandomScript(rng, docs[i], 1+rng.Intn(5), gen.DefaultMix)
					if err != nil {
						errs <- err
						return
					}
					if _, err := f.Update(ids[i], docs[i], log); err != nil {
						errs <- fmt.Errorf("update %s: %w", ids[i], err)
						return
					}
				case 2: // drop and re-add
					if err := f.Remove(ids[i]); err != nil {
						errs <- err
						return
					}
					if err := f.Add(ids[i], docs[i]); err != nil {
						errs <- err
						return
					}
				default: // atomic replace
					f.Put(ids[i], docs[i])
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + r)))
			query := gen.XMark(int64(50+r), 60)
			for it := 0; it < readerIts; it++ {
				switch it % 6 {
				case 0:
					f.Lookup(query, 0.9)
				case 1:
					f.LookupTop(query, 3)
				case 2:
					// A concurrently removed tree is a legal miss.
					f.Distance(ids[rng.Intn(nDocs)], ids[rng.Intn(nDocs)])
				case 3:
					if got := f.IDs(); len(got) > nDocs {
						errs <- fmt.Errorf("IDs grew to %d", len(got))
						return
					}
				case 4:
					f.TreeIndex(ids[rng.Intn(nDocs)])
				default:
					f.Size()
					f.DistanceTo(query, ids[rng.Intn(nDocs)])
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := f.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after concurrent mix: %v", err)
	}
	for i := range docs {
		if !f.TreeIndex(ids[i]).Equal(profile.BuildIndex(docs[i], p33)) {
			t.Fatalf("bag of %s diverged from its document", ids[i])
		}
	}
}

// TestUpdateEquivalentToRebuild is the differential test of the paper's
// Theorem 1 at the forest layer: for ~200 random edit scripts, the
// incrementally maintained forest must be byte-identical (serialized
// through the store) to a forest that handles every edit by Remove+Add
// rebuild of the edited tree.
func TestUpdateEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := map[string]*tree.Tree{
		"xmark": gen.XMark(1, 110),
		"dblp":  gen.DBLP(2, 90),
		"rand":  gen.RandomTree(rng, 70),
	}
	inc := forest.New(p33)     // maintained via Update
	rebuilt := forest.New(p33) // maintained via Remove+Add
	ids := make([]string, 0, len(docs))
	for id, d := range docs {
		ids = append(ids, id)
		if err := inc.Add(id, d); err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.Add(id, d); err != nil {
			t.Fatal(err)
		}
	}

	saved := func(f *forest.Index) []byte {
		var buf bytes.Buffer
		if err := store.Save(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for round := 0; round < 200; round++ {
		id := ids[round%len(ids)]
		doc := docs[id]
		_, log, err := gen.RandomScript(rng, doc, 1+rng.Intn(6), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Update(id, doc, log); err != nil {
			t.Fatalf("round %d: update %s: %v", round, id, err)
		}
		if err := rebuilt.Remove(id); err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.Add(id, doc); err != nil {
			t.Fatal(err)
		}
		if !inc.TreeIndex(id).Equal(rebuilt.TreeIndex(id)) {
			t.Fatalf("round %d: maintained bag of %s differs from rebuild", round, id)
		}
		if !bytes.Equal(saved(inc), saved(rebuilt)) {
			t.Fatalf("round %d: serialized forests differ", round)
		}
		if round%25 == 24 {
			if err := inc.SelfCheck(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if err := inc.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// dblpDocs builds a DBLP-shaped corpus with near-duplicate clusters (the
// seeds repeat) so similarity joins have real results.
func dblpDocs(n int) []forest.Doc {
	docs := make([]forest.Doc, n)
	for i := range docs {
		docs[i] = forest.Doc{
			ID:   fmt.Sprintf("d%03d", i),
			Tree: gen.DBLP(int64(i%40), 50+i%30),
		}
	}
	return docs
}

// TestParallelEquivalence: AddAll and SimilarityJoin at workers=1 versus
// workers=GOMAXPROCS produce identical forests (byte-for-byte through the
// store) and identical sorted join results on a 500-tree DBLP-shaped
// corpus; LookupMany matches per-query Lookup.
func TestParallelEquivalence(t *testing.T) {
	docs := dblpDocs(500)
	wide := runtime.GOMAXPROCS(0)

	f1 := forest.New(p33)
	if err := f1.AddAll(docs, 1); err != nil {
		t.Fatal(err)
	}
	fN := forest.New(p33)
	if err := fN.AddAll(docs, wide); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*forest.Index{f1, fN} {
		if err := f.SelfCheck(); err != nil {
			t.Fatal(err)
		}
	}
	var b1, bN bytes.Buffer
	if err := store.Save(&b1, f1); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(&bN, fN); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), bN.Bytes()) {
		t.Fatal("AddAll workers=1 and workers=N serialized differently")
	}

	for _, tau := range []float64{0.3, 0.6} {
		j1 := f1.SimilarityJoinWorkers(tau, 1)
		jN := fN.SimilarityJoinWorkers(tau, wide)
		if !reflect.DeepEqual(j1, jN) {
			t.Fatalf("tau=%g: parallel join differs from serial (%d vs %d pairs)", tau, len(j1), len(jN))
		}
		if tau == 0.6 && len(j1) == 0 {
			t.Fatal("join fixture produced no pairs — corpus too sparse to test anything")
		}
	}

	queries := make([]*tree.Tree, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, docs[i*37].Tree)
	}
	many := f1.LookupMany(queries, 0.5, wide)
	for i, q := range queries {
		if want := fN.Lookup(q, 0.5); !reflect.DeepEqual(many[i], want) {
			t.Fatalf("LookupMany[%d] differs from Lookup (%d vs %d matches)", i, len(many[i]), len(want))
		}
	}
}

// TestJoinAllPairsParallelEquivalence covers the tau > 1 degenerate path,
// which scores every pair directly.
func TestJoinAllPairsParallelEquivalence(t *testing.T) {
	docs := dblpDocs(80)
	f := forest.New(p33)
	if err := f.AddAll(docs, 0); err != nil {
		t.Fatal(err)
	}
	j1 := f.SimilarityJoinWorkers(1.5, 1)
	jN := f.SimilarityJoinWorkers(1.5, runtime.GOMAXPROCS(0))
	if len(j1) != len(docs)*(len(docs)-1)/2 {
		t.Fatalf("all-pairs join returned %d pairs", len(j1))
	}
	if !reflect.DeepEqual(j1, jN) {
		t.Fatal("parallel all-pairs join differs from serial")
	}
}

// TestAddAllRejectsDuplicates: a batch with an in-batch duplicate or an
// already-indexed ID fails atomically, leaving the forest unchanged.
func TestAddAllRejectsDuplicates(t *testing.T) {
	f := forest.New(p33)
	if err := f.Add("taken", tree.MustParse("a(b)")); err != nil {
		t.Fatal(err)
	}
	batch := []forest.Doc{
		{ID: "x", Tree: tree.MustParse("a(b c)")},
		{ID: "taken", Tree: tree.MustParse("a")},
	}
	if err := f.AddAll(batch, 2); err == nil {
		t.Fatal("batch with indexed ID accepted")
	}
	dup := []forest.Doc{
		{ID: "x", Tree: tree.MustParse("a(b c)")},
		{ID: "x", Tree: tree.MustParse("a")},
	}
	if err := f.AddAll(dup, 2); err == nil {
		t.Fatal("batch with in-batch duplicate accepted")
	}
	if f.Len() != 1 || f.Has("x") {
		t.Fatal("failed batch mutated the forest")
	}
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestPutReplacesAtomically: Put on a taken ID swaps the document and the
// postings follow; Put on a fresh ID adds it.
func TestPutReplacesAtomically(t *testing.T) {
	f := forest.New(p33)
	old := tree.MustParse("a(b c)")
	if n := f.Put("doc", old); n != profile.Count(old, p33) {
		t.Fatalf("Put returned %d grams", n)
	}
	repl := tree.MustParse("x(y z(w))")
	f.Put("doc", repl)
	if f.Len() != 1 {
		t.Fatalf("Len = %d after replace", f.Len())
	}
	if !f.TreeIndex("doc").Equal(profile.BuildIndex(repl, p33)) {
		t.Fatal("Put did not replace the bag")
	}
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if top := f.LookupTop(repl, 1); len(top) != 1 || top[0].Distance != 0 {
		t.Fatalf("lookup after Put = %+v", top)
	}
}
