// Differential and metamorphic battery for top-k lookups: the VP-tree
// metric path must return results byte-identical to the brute-force
// k-smallest scan — same IDs, same float distances, same (distance, id)
// tie-breaks — on every seed, every k shape, and under concurrent
// incremental maintenance. The brute-force reference here is computed
// from scratch via per-tree Index.Distance, so it shares no code with
// either planner path.

package forest_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// bruteTopK is the independent reference: score every indexed tree with
// Index.Distance on a copied bag, sort by (distance, id), truncate to k.
func bruteTopK(f *forest.Index, q profile.Index, k int) []forest.Match {
	if k <= 0 {
		return nil
	}
	var out []forest.Match
	for _, id := range f.IDs() {
		out = append(out, forest.Match{TreeID: id, Distance: q.Distance(f.TreeIndex(id))})
	}
	forest.SortMatchesForTest(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// topkAllModes runs the same top-k query through every planner mode plus
// the independent brute force and fails on any divergence.
func topkAllModes(t *testing.T, f *forest.Index, q profile.Index, k int, ctx string) []forest.Match {
	t.Helper()
	want := bruteTopK(f, q, k)
	modes := []struct {
		name string
		mode forest.PlanMode
	}{
		{"exhaustive", forest.PlanExhaustive},
		{"metric", forest.PlanMetric},
		{"auto", forest.PlanAuto},
		{"pruned", forest.PlanPruned},
	}
	for _, m := range modes {
		f.SetPlanMode(m.mode)
		got := f.LookupIndexTopK(q, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %s top-%d diverged from brute force\ngot:  %v\nwant: %v",
				ctx, m.name, k, got, want)
		}
	}
	f.SetPlanMode(forest.PlanAuto)
	return want
}

// TestTopKDifferential is the randomized sweep: 200 seeds, each building
// a random forest (mixed generators, duplicate documents, occasionally a
// forest of identical trees so every distance ties) and querying it with
// members, perturbed members and unrelated trees at k ∈ {1, 5, |D|,
// |D|+1}. Every planner mode must match the independent brute force
// exactly, top-k must be a prefix of top-(k+1), and top-|D| must agree
// with the full threshold lookup at τ = ∞.
func TestTopKDifferential(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nDocs := rng.Intn(41) // 0..40: includes the empty forest
		identical := seed%23 == 0 && nDocs > 0
		f := forest.New(p33)
		var member *tree.Tree
		for i := 0; i < nDocs; i++ {
			var doc *tree.Tree
			switch {
			case identical:
				doc = tree.MustParse("a(b(c d) e)")
			case i > 0 && rng.Intn(5) == 0:
				doc = gen.RandomTree(rand.New(rand.NewSource(seed*100)), 10) // duplicate cluster
			case rng.Intn(3) == 0:
				doc = gen.RandomTree(rng, 2+rng.Intn(60))
			case rng.Intn(2) == 0:
				doc = gen.DBLP(seed*31+int64(i%4), 20+rng.Intn(80))
			default:
				doc = gen.XMark(seed*37+int64(i%3), 20+rng.Intn(80))
			}
			if err := f.Add(fmt.Sprintf("doc-%03d", i), doc); err != nil {
				t.Fatal(err)
			}
			if member == nil {
				member = doc
			}
		}
		queries := []*tree.Tree{gen.RandomTree(rng, 1+rng.Intn(50))}
		if member != nil {
			queries = append(queries, member)
			if q, _, err := gen.Perturb(rng, member, 1+rng.Intn(12), gen.DefaultMix); err == nil {
				queries = append(queries, q)
			}
		}
		for qi, query := range queries {
			q := profile.BuildIndex(query, p33)
			ctx := fmt.Sprintf("seed %d query %d (|D|=%d)", seed, qi, nDocs)
			for _, k := range []int{1, 5, nDocs, nDocs + 1} {
				topkAllModes(t, f, q, k, ctx)
			}
			// Metamorphic: top-k is a prefix of top-(k+1).
			k := 1 + rng.Intn(nDocs+2)
			small, big := topkAllModes(t, f, q, k, ctx), topkAllModes(t, f, q, k+1, ctx)
			if len(small) > len(big) || !reflect.DeepEqual(small, big[:len(small)]) {
				t.Fatalf("%s: top-%d is not a prefix of top-%d\ntop-k:   %v\ntop-k+1: %v",
					ctx, k, k+1, small, big)
			}
			// Metamorphic: top-|D| is the τ=∞ threshold lookup, ranked.
			all := topkAllModes(t, f, q, nDocs, ctx)
			full := f.LookupIndex(q, 2)
			if nDocs == 0 {
				full = nil
			}
			if !reflect.DeepEqual(all, full) {
				t.Fatalf("%s: top-|D| disagrees with Lookup(τ=∞)\ntopk:   %v\nlookup: %v", ctx, all, full)
			}
		}
		if err := f.SelfCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTopKEdgeCases pins the boundary inputs individually: k ≤ 0, empty
// forest, empty query bag, duplicate trees (distance ties broken by ID),
// and k beyond the collection.
func TestTopKEdgeCases(t *testing.T) {
	empty := forest.New(p33)
	if got := empty.LookupTopK(tree.MustParse("a(b)"), 3); got != nil {
		t.Fatalf("top-k on empty forest = %v, want nil", got)
	}
	if _, ok := empty.LookupNearest(tree.MustParse("a")); ok {
		t.Fatal("nearest on empty forest reported a match")
	}
	twins := buildForest(t, map[string]*tree.Tree{
		"t1": tree.MustParse("a(b c)"), "t2": tree.MustParse("a(b c)"), "t3": tree.MustParse("x(y)"),
	})
	q := profile.BuildIndex(tree.MustParse("a(b c)"), p33)
	for _, k := range []int{-1, 0} {
		twins.SetPlanMode(forest.PlanMetric)
		if got := twins.LookupIndexTopK(q, k); got != nil {
			t.Fatalf("top-%d = %v, want nil", k, got)
		}
	}
	got := topkAllModes(t, twins, q, 2, "twins")
	if len(got) != 2 || got[0].Distance != 0 || got[1].Distance != 0 ||
		got[0].TreeID != "t1" || got[1].TreeID != "t2" {
		t.Fatalf("duplicate trees not tie-broken by ID: %v", got)
	}
	topkAllModes(t, twins, profile.Index{}, 2, "twins, empty query")
	topkAllModes(t, twins, q, 10, "twins, k beyond |D|")
	if m, ok := twins.LookupNearest(tree.MustParse("a(b c)")); !ok || m.TreeID != "t1" || m.Distance != 0 {
		t.Fatalf("nearest = %v, %v; want t1 at 0", m, ok)
	}
}

// TestTopKIncrementalMaintenance drives the metric index through its
// maintenance paths — buffered adds past the flush threshold, removes
// (tombstones), incremental updates of both buffered and tree-resident
// documents, and dirty-subtree rebuilds — re-verifying exactness and the
// structural invariants after every phase.
func TestTopKIncrementalMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := forest.New(p33)
	docs := make(map[string]*tree.Tree)
	for i := 0; i < 80; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		docs[id] = gen.RandomTree(rng, 5+rng.Intn(40))
		if err := f.Add(id, docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	query := gen.RandomTree(rng, 20)
	q := profile.BuildIndex(query, p33)
	// Force the build, then mutate: the structure must stay exact through
	// every incremental phase.
	f.SetPlanMode(forest.PlanMetric)
	f.LookupIndexTopK(q, 5)
	if !f.MetricReady() {
		t.Fatal("metric index not built after a PlanMetric lookup")
	}
	check := func(phase string) {
		t.Helper()
		for _, k := range []int{1, 7, 40, 200} {
			topkAllModes(t, f, q, k, phase)
		}
		f.SetPlanMode(forest.PlanMetric)
		if err := f.SelfCheck(); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
	}
	// Buffered adds, several times past the flush threshold.
	for i := 80; i < 200; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		docs[id] = gen.RandomTree(rng, 5+rng.Intn(40))
		if err := f.Add(id, docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	check("after buffered adds")
	// Tombstone more than half the tree to force dirty-subtree rebuilds.
	for i := 0; i < 150; i += 1 {
		id := fmt.Sprintf("doc-%03d", i)
		if err := f.Remove(id); err != nil {
			t.Fatal(err)
		}
		delete(docs, id)
	}
	check("after mass removal")
	// Incremental updates: some documents are freshly buffered, some are
	// tree residents; both must keep their metric copy in sync.
	for i := 150; i < 190; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		_, log, err := gen.RandomScript(rng, docs[id], 1+rng.Intn(6), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Update(id, docs[id], log); err != nil {
			t.Fatal(err)
		}
	}
	check("after incremental updates")
	// Re-add under previously removed IDs, then update those too.
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		docs[id] = gen.RandomTree(rng, 5+rng.Intn(40))
		if err := f.Add(id, docs[id]); err != nil {
			t.Fatal(err)
		}
		_, log, err := gen.RandomScript(rng, docs[id], 1+rng.Intn(4), gen.DefaultMix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Update(id, docs[id], log); err != nil {
			t.Fatal(err)
		}
	}
	check("after re-adds and updates")
}

// TestTopKUnderConcurrentUpdates runs metric-planned top-k lookups
// concurrently with AddAll batches, removes and incremental updates under
// the race detector, then verifies post-quiescence exactness in every
// planner mode.
func TestTopKUnderConcurrentUpdates(t *testing.T) {
	f := forest.New(p33)
	f.SetPlanMode(forest.PlanMetric)
	rng := rand.New(rand.NewSource(11))
	seedDocs := make([]forest.Doc, 24)
	for i := range seedDocs {
		seedDocs[i] = forest.Doc{ID: fmt.Sprintf("seed-%02d", i), Tree: gen.DBLP(int64(i%3), 40+i)}
	}
	if err := f.AddAll(seedDocs, 2); err != nil {
		t.Fatal(err)
	}
	query, _, err := gen.Perturb(rng, seedDocs[0].Tree, 3, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	q := profile.BuildIndex(query, p33)
	f.LookupIndexTopK(q, 3) // build the metric index before the storm

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				got := f.LookupIndexTopK(q, 1+(w+i)%9)
				for j := 1; j < len(got); j++ {
					if got[j].Distance < got[j-1].Distance ||
						(got[j].Distance == got[j-1].Distance && got[j].TreeID <= got[j-1].TreeID) {
						t.Errorf("unsorted top-k under concurrency: %v", got)
						return
					}
				}
			}
		}(w)
	}
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + b)))
			batch := make([]forest.Doc, 6)
			for i := range batch {
				batch[i] = forest.Doc{
					ID:   fmt.Sprintf("batch-%d-%02d", b, i),
					Tree: gen.DBLP(int64(b*6+i), 30+i*7),
				}
			}
			if err := f.AddAll(batch, 2); err != nil {
				t.Error(err)
				return
			}
			// Each writer owns seed docs i ≡ b (mod 4): update or churn.
			for i := b; i < len(seedDocs); i += 4 {
				doc := seedDocs[i].Tree
				_, log, err := gen.RandomScript(wrng, doc, 1+wrng.Intn(5), gen.DefaultMix)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Update(seedDocs[i].ID, doc, log); err != nil {
					t.Error(err)
					return
				}
				if wrng.Intn(2) == 0 {
					if err := f.Remove(seedDocs[i].ID); err != nil {
						t.Error(err)
						return
					}
					if err := f.Add(seedDocs[i].ID, doc); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 24, 48, 100} {
		topkAllModes(t, f, q, k, "post-concurrency")
	}
}

// TestTopKPrunesObservably attaches a collector and checks that on a
// clustered corpus with a near-duplicate query the VP-tree visits
// strictly fewer nodes than the exhaustive scan examines candidates, and
// that the triangle bound reports actual pruning work.
//
// The corpus is 16 XMark base documents with 8 perturbed versions each —
// the dedup shape top-k queries exist for. On corpora of mutually
// dissimilar documents the k-th best distance sits in the bulk of the
// distance distribution and no exact metric index can prune
// (concentration of measure); with version clusters the k nearest are
// genuinely near and the triangle bound bites.
func TestTopKPrunesObservably(t *testing.T) {
	f := forest.New(p33)
	rng := rand.New(rand.NewSource(5))
	bases := gen.XMarkForest(3, 16, 16*60)
	var docs []*tree.Tree
	for _, b := range bases {
		for v := 0; v < 8; v++ {
			doc := b
			if v > 0 {
				var err error
				doc, _, err = gen.Perturb(rng, b, 1+rng.Intn(5), gen.XMLSafeMix)
				if err != nil {
					t.Fatal(err)
				}
			}
			docs = append(docs, doc)
		}
	}
	for i, d := range docs {
		if err := f.Add(fmt.Sprintf("doc-%03d", i), d); err != nil {
			t.Fatal(err)
		}
	}
	query, _, err := gen.Perturb(rng, bases[5], 3, gen.XMLSafeMix)
	if err != nil {
		t.Fatal(err)
	}
	q := profile.BuildIndex(query, p33)

	col := obs.NewCollector()
	f.SetCollector(col)
	defer f.SetCollector(nil)

	f.SetPlanMode(forest.PlanExhaustive)
	before := col.Snapshot()
	f.LookupIndexTopK(q, 5)
	mid := col.Snapshot()
	f.SetPlanMode(forest.PlanMetric)
	f.LookupIndexTopK(q, 5) // first call may build; second measures steady state
	mid2 := col.Snapshot()
	f.LookupIndexTopK(q, 5)
	after := col.Snapshot()

	exDelta := mid.CounterDeltas(before)
	prDelta := after.CounterDeltas(mid2)
	exExamined := exDelta["forest_lookup_candidates_examined"]
	visited := prDelta["forest_metric_nodes_visited"]
	if exExamined != 128 {
		t.Fatalf("exhaustive top-k examined %d candidates, want 128", exExamined)
	}
	if visited == 0 || visited >= exExamined {
		t.Fatalf("metric top-k visited %d nodes, exhaustive examined %d — no pruning", visited, exExamined)
	}
	if prDelta["forest_metric_pruned_triangle"] == 0 {
		t.Fatal("metric top-k reported no triangle pruning")
	}
}
