// The storage tier hook of the forest: out-of-core document bags.
//
// A segmented store (internal/store, segstore.go) keeps only recently
// mutated documents resident in the forest's in-memory postings; the rest
// live in immutable on-disk segments. The forest stays the single query
// engine for both populations through the Tier interface: every document
// is represented by a treeEntry in the registry (so Has/Len/IDs and the
// cached sizes behave identically), but an evicted entry's bag pointer is
// nil and its postings are absent from the shards — lookups merge the
// tier's overlap contributions instead.
//
// The invariant everything below leans on: a document is resident XOR
// evicted. Its tuples are in the in-memory shards or reachable through
// the tier, never both, so overlap maps merge by plain addition and the
// merged result is byte-identical to the all-in-RAM index (the
// differential tests in internal/store hold the whole stack to that).
//
// Eviction and promotion swap a document between the populations without
// changing its content, so they advance no epoch and leave the metric
// index untouched (it owns cloned bags). Both run under the registry
// write lock together with the store's own bookkeeping (the swap
// callback), which makes the tier handoff atomic with respect to every
// lookup: no lookup can observe a document in both tiers or in neither.
package forest

import (
	"fmt"
	"sort"

	"pqgram/internal/obs"
	"pqgram/internal/profile"
)

// TierPosting is one entry of a tier posting list: a document and the
// tuple's multiplicity in its bag.
type TierPosting struct {
	ID  string
	Cnt int
}

// TierStats is the work one tier read performed, for spans and counters.
type TierStats struct {
	SegmentsProbed  int64 // segments actually probed (bloom said maybe)
	BloomChecks     int64 // (segment, tuple) bloom membership tests
	BloomSkips      int64 // bloom tests that skipped the probe
	PostingsScanned int64 // posting entries decoded and merged
}

// Tier is the storage tier serving evicted documents' bags and postings.
// Implementations are read-side only and must be safe for concurrent
// use; the forest calls them while holding its registry lock (read or
// write), so implementations must not call back into the forest.
//
// Tier methods return no errors: the tier reads immutable, checksummed
// segment files that were verified at open, so a read failing afterwards
// means the storage itself is unrecoverable mid-query — implementations
// panic rather than fabricate an answer (see segstore.go).
type Tier interface {
	// Overlaps accumulates |I(query) ∩ I(T)| for every live evicted
	// document sharing at least one tuple with the query — the tier-side
	// twin of overlapsLocked.
	Overlaps(q profile.Index) (map[string]int, TierStats)

	// Bag returns a fresh copy of one evicted document's bag, or
	// ok=false if the tier does not hold the document.
	Bag(id string) (bag profile.Index, ok bool)

	// ForEachPosting iterates the merged posting lists of every live
	// evicted document in ascending tuple order; entries are sorted by
	// document ID. Iteration stops at the first error, which is returned.
	ForEachPosting(fn func(lt profile.LabelTuple, entries []TierPosting) error) error
}

// SetTier attaches (or, with nil, detaches) the storage tier. The
// segmented store attaches itself at open time, before any lookups run.
func (f *Index) SetTier(t Tier) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tier = t
}

// Evicted reports whether the document is indexed with its bag evicted
// to the storage tier.
func (f *Index) Evicted(id string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.trees[id]
	//pqlint:allow lockcheck only the pointer's nil-ness is read; the pointer swaps only under the registry write lock, which f.mu:r excludes
	return ok && e.idx == nil
}

// ResidentSize returns the total bag cardinality over resident trees
// only — the posting entries the in-memory shards actually hold. Size
// counts evicted trees too (their sizes are cached in the registry), so
// Size minus ResidentSize is how much of the index lives in the storage
// tier; the segments benchmark plots this as resident memory.
func (f *Index) ResidentSize() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := int64(0)
	for _, e := range f.trees {
		//pqlint:allow lockcheck only the pointer's nil-ness is read; the pointer swaps only under the registry write lock, which f.mu:r excludes
		if e.idx != nil {
			n += e.size.Load()
		}
	}
	return int(n)
}

// EvictedLen returns how many indexed documents are currently evicted.
func (f *Index) EvictedLen() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, e := range f.trees {
		//pqlint:allow lockcheck only the pointer's nil-ness is read; the pointer swaps only under the registry write lock, which f.mu:r excludes
		if e.idx == nil {
			n++
		}
	}
	return n
}

// Evict moves documents from the resident population to the tier: their
// postings leave the in-memory shards and their bags are dropped, keeping
// only the cached size and distinct-tuple count. swap (if non-nil) runs
// under the registry write lock after the removal — the store uses it to
// publish the segment that now serves these documents, so the handoff is
// atomic with respect to lookups. The caller must have made the documents
// durable in the tier first.
//
// Evicting changes no document's content, so the epoch does not advance
// and cached lookup results stay valid — by the time Evict runs, the tier
// answers exactly what the shards answered.
func (f *Index) Evict(ids []string, swap func()) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, id := range ids {
		e, ok := f.trees[id]
		if !ok {
			return fmt.Errorf("forest: tree %q not indexed", id)
		}
		if e.idx == nil {
			return fmt.Errorf("forest: tree %q already evicted", id)
		}
	}
	for _, id := range ids {
		e := f.trees[id]
		for lt := range e.idx {
			f.shardOf(lt).remove(lt, id)
		}
		e.distinct = len(e.idx)
		e.idx = nil
	}
	if swap != nil {
		swap()
	}
	return nil
}

// Promote moves one evicted document back into the resident population
// with the given bag (owned by the forest afterwards) — the store calls
// it before applying incremental deltas to a flushed document. swap runs
// under the registry write lock after the postings are re-added; the
// store uses it to drop its tier location and tombstone the stale segment
// copy, so no lookup can count the document twice. Like Evict, promotion
// changes no content: no epoch advance, no metric maintenance.
func (f *Index) Promote(id string, bag profile.Index, swap func()) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.trees[id]
	if !ok {
		return fmt.Errorf("forest: tree %q not indexed", id)
	}
	if e.idx != nil {
		return fmt.Errorf("forest: tree %q already resident", id)
	}
	if bag == nil {
		return fmt.Errorf("forest: promoting %q with nil bag", id)
	}
	e.idx = bag
	e.size.Store(int64(bag.Size()))
	e.distinct = 0
	for lt, c := range bag {
		f.shardOf(lt).add(lt, id, c)
	}
	if swap != nil {
		swap()
	}
	return nil
}

// AddEvicted registers a document that already lives in the tier, storing
// only its cached size and distinct-tuple count — the segmented store's
// open path uses it to rebuild the registry without reading any bag. It
// is an open-time operation: it fails once the metric index is built,
// because the metric needs the bag at insert time.
func (f *Index) AddEvicted(id string, size, distinct int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.trees[id]; ok {
		return fmt.Errorf("forest: tree %q already indexed", id)
	}
	if f.metric.built {
		return fmt.Errorf("forest: cannot add evicted %q with the metric index built", id)
	}
	e := &treeEntry{}
	e.size.Store(int64(size))
	e.distinct = distinct
	f.trees[id] = e
	f.epoch.Add(1)
	if m := f.obs.Load(); m != nil {
		m.adds.Inc()
	}
	return nil
}

// bagOfLocked returns the bag of one entry, fetching evicted bags from
// the tier (the returned copy is the caller's). Requires f.mu held (read
// suffices) and, for resident entries, e.mu if concurrent delta
// application must be excluded. It fails only on a tier inconsistency: an
// evicted entry the tier does not serve.
//
//pqlint:locked f.mu:r
func (f *Index) bagOfLocked(id string, e *treeEntry) (profile.Index, error) {
	if e.idx != nil { //pqlint:allow lockcheck the pointer is stable under f.mu; callers that must exclude concurrent delta application hold e.mu as documented above
		return e.idx, nil
	}
	if f.tier == nil {
		return nil, fmt.Errorf("forest: tree %q is evicted and no tier is attached", id)
	}
	bag, ok := f.tier.Bag(id)
	if !ok {
		return nil, fmt.Errorf("forest: tree %q is evicted but the tier does not hold it", id)
	}
	return bag, nil
}

// tierOverlapsLocked merges the tier's overlap contributions into ov and
// records the tier read's work on the span and counters. A document lives
// in exactly one tier, so merging is plain addition. Requires f.mu held
// (read suffices).
//
//pqlint:locked f.mu:r
func (f *Index) tierOverlapsLocked(q profile.Index, ov map[string]int, m *metrics, sp *obs.Span) {
	if f.tier == nil {
		return
	}
	tsp := sp.Child("tier")
	tov, st := f.tier.Overlaps(q)
	for id, o := range tov {
		ov[id] += o
	}
	tsp.SetAttr("segments_probed", st.SegmentsProbed)
	tsp.SetAttr("bloom_checks", st.BloomChecks)
	tsp.SetAttr("bloom_skips", st.BloomSkips)
	tsp.SetAttr("postings_scanned", st.PostingsScanned)
	tsp.SetAttr("candidates", int64(len(tov)))
	tsp.Finish()
	if m != nil {
		m.bloomChecks.Add(st.BloomChecks)
		m.bloomSkips.Add(st.BloomSkips)
		m.tierSegmentsProbed.Add(st.SegmentsProbed)
		m.tierPostingsScanned.Add(st.PostingsScanned)
	}
}

// joinTierPairsLocked scores the similarity-join pairs with at least one
// evicted member: a sequential sweep of the tier's merged posting lists,
// pairing tier documents with each other and with the resident documents
// on the same tuple. Resident×resident pairs are the stripe sweep's job
// (SimilarityJoinWorkers), so together the two passes cover every
// candidate pair exactly once. Requires f.mu held (read suffices); sizes
// and filter mirror the stripe sweep's arguments.
//
//pqlint:locked f.mu:r
func (f *Index) joinTierPairsLocked(tau float64, sizes map[string]int, filter bool) ([]Pair, int64) {
	if f.tier == nil {
		return nil, 0
	}
	type pairKey struct{ a, b string }
	total := make(map[pairKey]int)
	var pruned int64
	var memIDs []string
	emit := func(a, b string, ca, cb int, szA, szB int) {
		if b < a {
			a, b = b, a
			szA, szB = szB, szA
		}
		if filter {
			maxOv := szA
			if szB < maxOv {
				maxOv = szB
			}
			if distanceFrom(szA, szB, maxOv) >= tau {
				pruned++
				return
			}
		}
		ov := ca
		if cb < ov {
			ov = cb
		}
		total[pairKey{a, b}] += ov
	}
	err := f.tier.ForEachPosting(func(lt profile.LabelTuple, entries []TierPosting) error {
		// Tier × tier pairs on this tuple.
		for i := 0; i < len(entries); i++ {
			szI, okI := sizes[entries[i].ID]
			if !okI {
				continue // racing removal: the document is already gone
			}
			for j := i + 1; j < len(entries); j++ {
				szJ, okJ := sizes[entries[j].ID]
				if !okJ {
					continue
				}
				emit(entries[i].ID, entries[j].ID, entries[i].Cnt, entries[j].Cnt, szI, szJ)
			}
		}
		// Tier × resident pairs: the resident posting list for the same
		// tuple, in sorted order for a deterministic pruned count.
		s := f.shardOf(lt)
		s.mu.RLock()
		mem := s.postings[lt]
		memIDs = memIDs[:0]
		for id := range mem {
			memIDs = append(memIDs, id)
		}
		sort.Strings(memIDs)
		for _, mid := range memIDs {
			szM := sizes[mid]
			for _, te := range entries {
				szT, okT := sizes[te.ID]
				if !okT {
					continue
				}
				emit(te.ID, mid, te.Cnt, mem[mid], szT, szM)
			}
		}
		s.mu.RUnlock()
		return nil
	})
	if err != nil {
		// The callback above never returns an error; a tier read failure
		// panics inside the tier (see Tier).
		panic(err)
	}
	var out []Pair
	for k, ov := range total {
		if d := distanceFrom(sizes[k.a], sizes[k.b], ov); d < tau {
			//pqlint:allow detcheck the caller sortPairs-es the merged result before returning
			out = append(out, Pair{A: k.a, B: k.b, Distance: d})
		}
	}
	return out, pruned
}
