// EXPLAIN for lookups: run the query with tracing forced on and return
// the plan decision plus the span tree of work counters. The explain path
// reuses the exact production lookup code (lookupIndexSpanned /
// lookupIndexTopKSpanned), so what EXPLAIN reports is what a real query
// does — same planner decision, same bounds, same counters — and the
// work-counter attributes are byte-identical across runs for the same
// corpus, query and plan mode (only durations vary; see
// obs.SpanSnapshot.StripDurations).

package forest

import (
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Plan names reported by the explain API and recorded (as planCode) in
// the "plan" span attribute.
const (
	// planScanAll is the τ > 1 whole-forest scan: every tree qualifies
	// at distance 1, so the postings cannot enumerate the answer.
	planScanAll = "scan-all"
	// planExhaustive accumulates the full overlap of every tree sharing
	// at least one tuple (threshold lookups), or scores every tree
	// (top-k).
	planExhaustive = "exhaustive"
	// planPruned is the threshold-aware path: size window, rare-first
	// traversal, o_min early abandon.
	planPruned = "pruned"
	// planMetric answers top-k through the VP-tree metric index.
	planMetric = "metric"
)

// planCode maps a plan name to its integer span-attribute encoding:
// 0 scan-all, 1 exhaustive, 2 pruned, 3 metric (matching the
// PlanExhaustive/PlanPruned/PlanMetric constants).
func planCode(plan string) int {
	switch plan {
	case planExhaustive:
		return int(PlanExhaustive)
	case planPruned:
		return int(PlanPruned)
	case planMetric:
		return int(PlanMetric)
	default:
		return 0
	}
}

// ExplainResult is the structured outcome of an explained query: the
// operation, the candidate strategy the planner chose, the matches, and
// the trace — a JSON-ready span tree whose attributes carry the per-stage
// work counters (see the package comment of internal/obs for the span
// taxonomy and determinism contract).
type ExplainResult struct {
	Op      string           `json:"op"`   // "lookup" or "topk"
	Plan    string           `json:"plan"` // chosen candidate strategy
	Tau     float64          `json:"tau,omitempty"`
	K       int              `json:"k,omitempty"`
	Matches []Match          `json:"matches"`
	Trace   obs.SpanSnapshot `json:"trace"`
}

// ExplainLookup runs Lookup with tracing forced on (no tracer needs to be
// attached, and sampling does not apply) and returns the plan decision,
// matches and work-counter span tree. The query still updates the
// attached metrics like any other lookup.
func (f *Index) ExplainLookup(query *tree.Tree, tau float64) ExplainResult {
	sp := obs.StartSpan("forest.lookup")
	q := profile.BuildIndexSpanned(query, f.pr, sp)
	out, plan := f.lookupIndexSpanned(q, tau, f.obs.Load(), sp)
	sp.Finish()
	return ExplainResult{Op: "lookup", Plan: plan, Tau: tau, Matches: out, Trace: sp.Snapshot()}
}

// ExplainIndexLookup is ExplainLookup for a precomputed query index (no
// profile.build stage in the trace).
func (f *Index) ExplainIndexLookup(q profile.Index, tau float64) ExplainResult {
	sp := obs.StartSpan("forest.lookup")
	out, plan := f.lookupIndexSpanned(q, tau, f.obs.Load(), sp)
	sp.Finish()
	return ExplainResult{Op: "lookup", Plan: plan, Tau: tau, Matches: out, Trace: sp.Snapshot()}
}

// ExplainTopK runs LookupTopK with tracing forced on; see ExplainLookup.
func (f *Index) ExplainTopK(query *tree.Tree, k int) ExplainResult {
	sp := obs.StartSpan("forest.topk")
	q := profile.BuildIndexSpanned(query, f.pr, sp)
	out, plan := f.lookupIndexTopKSpanned(q, k, f.obs.Load(), sp)
	sp.Finish()
	return ExplainResult{Op: "topk", Plan: plan, K: k, Matches: out, Trace: sp.Snapshot()}
}

// ExplainIndexTopK is ExplainTopK for a precomputed query index.
func (f *Index) ExplainIndexTopK(q profile.Index, k int) ExplainResult {
	sp := obs.StartSpan("forest.topk")
	out, plan := f.lookupIndexTopKSpanned(q, k, f.obs.Load(), sp)
	sp.Finish()
	return ExplainResult{Op: "topk", Plan: plan, K: k, Matches: out, Trace: sp.Snapshot()}
}
