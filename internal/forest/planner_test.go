package forest_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// plannerTaus covers the degenerate thresholds (0 admits nothing, 1 admits
// every overlapping tree, >1 admits disjoint trees) and a spread in
// between.
var plannerTaus = []float64{0, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1, 1.5}

// lookupBoth runs the same lookup through both planner paths and fails if
// they differ in any way (IDs, distances, order).
func lookupBoth(t *testing.T, f *forest.Index, q profile.Index, tau float64, ctx string) []forest.Match {
	t.Helper()
	f.SetPlanMode(forest.PlanExhaustive)
	want := f.LookupIndex(q, tau)
	f.SetPlanMode(forest.PlanPruned)
	got := f.LookupIndex(q, tau)
	f.SetPlanMode(forest.PlanAuto)
	auto := f.LookupIndex(q, tau)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: pruned lookup diverged (tau=%v)\npruned:     %v\nexhaustive: %v", ctx, tau, got, want)
	}
	if !reflect.DeepEqual(auto, want) {
		t.Fatalf("%s: auto lookup diverged (tau=%v)\nauto:       %v\nexhaustive: %v", ctx, tau, auto, want)
	}
	return want
}

// joinBoth runs the similarity join with and without the size filter at
// several worker counts and fails on any divergence.
func joinBoth(t *testing.T, f *forest.Index, tau float64, ctx string) []forest.Pair {
	t.Helper()
	f.SetPlanMode(forest.PlanExhaustive)
	want := f.SimilarityJoinWorkers(tau, 1)
	f.SetPlanMode(forest.PlanAuto)
	for _, w := range []int{1, 3} {
		got := f.SimilarityJoinWorkers(tau, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: filtered join diverged (tau=%v, workers=%d)\nfiltered:   %v\nexhaustive: %v", ctx, tau, w, got, want)
		}
	}
	return want
}

// TestPlannerDifferential is the randomized sweep: 200 seeds, each
// building a random forest (mixed generators, sizes crossing the PlanAuto
// threshold in both directions) and querying it with perturbed members,
// unrelated trees and indexed members themselves, across the full tau
// sweep. Pruned results must be deep-equal to exhaustive ones — IDs and
// distances — and the join must agree with its unfiltered self.
func TestPlannerDifferential(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nDocs := 1 + rng.Intn(40)
		f := forest.New(p33)
		var member *tree.Tree
		for i := 0; i < nDocs; i++ {
			var doc *tree.Tree
			switch rng.Intn(3) {
			case 0:
				doc = gen.RandomTree(rng, 2+rng.Intn(60))
			case 1:
				doc = gen.DBLP(seed*31+int64(i%4), 20+rng.Intn(80))
			default:
				doc = gen.XMark(seed*37+int64(i%3), 20+rng.Intn(80))
			}
			if err := f.Add(fmt.Sprintf("doc-%03d", i), doc); err != nil {
				t.Fatal(err)
			}
			if member == nil {
				member = doc
			}
		}
		// Queries: a perturbed member (real candidate sets), an indexed
		// member itself (distance-0 hit), and an unrelated random tree.
		queries := []*tree.Tree{member, gen.RandomTree(rng, 1+rng.Intn(50))}
		if q, _, err := gen.Perturb(rng, member, 1+rng.Intn(12), gen.DefaultMix); err == nil {
			queries = append(queries, q)
		}
		for qi, query := range queries {
			q := profile.BuildIndex(query, p33)
			for _, tau := range plannerTaus {
				lookupBoth(t, f, q, tau, fmt.Sprintf("seed %d query %d", seed, qi))
			}
		}
		// The join sweep is quadratic; run it on a tau subset.
		for _, tau := range []float64{0, 0.3, 0.7, 1} {
			joinBoth(t, f, tau, fmt.Sprintf("seed %d", seed))
		}
	}
}

// TestPlannerEdgeCases pins the boundary inputs individually: empty query
// index, single-tree collection, identical trees, tau at exactly 0 and 1.
func TestPlannerEdgeCases(t *testing.T) {
	single := buildForest(t, map[string]*tree.Tree{"only": tree.MustParse("a(b c(d))")})
	twins := buildForest(t, map[string]*tree.Tree{
		"t1": tree.MustParse("a(b c)"), "t2": tree.MustParse("a(b c)"), "t3": tree.MustParse("x(y)"),
	})
	for _, tc := range []struct {
		name string
		f    *forest.Index
		q    profile.Index
	}{
		{"empty query, single tree", single, profile.Index{}},
		{"empty query, twins", twins, profile.Index{}},
		{"single tree, matching query", single, profile.BuildIndex(tree.MustParse("a(b c(d))"), p33)},
		{"twins, exact-member query", twins, profile.BuildIndex(tree.MustParse("a(b c)"), p33)},
		{"twins, disjoint query", twins, profile.BuildIndex(tree.MustParse("zzz"), p33)},
	} {
		for _, tau := range plannerTaus {
			lookupBoth(t, tc.f, tc.q, tau, tc.name)
		}
	}
	// Exact duplicates must surface at distance 0 for any positive tau on
	// both paths.
	twins.SetPlanMode(forest.PlanPruned)
	got := twins.LookupIndex(profile.BuildIndex(tree.MustParse("a(b c)"), p33), 0.5)
	if len(got) < 2 || got[0].Distance != 0 || got[1].Distance != 0 {
		t.Fatalf("pruned lookup missed exact duplicates: %v", got)
	}
}

// TestPlannerPrunesObservably attaches a collector and checks that on a
// clustered workload with a selective threshold the pruned path (a)
// examines no more candidates than the exhaustive one and (b) actually
// reports pruning work through the new counters.
func TestPlannerPrunesObservably(t *testing.T) {
	f := forest.New(p33)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		var doc *tree.Tree
		if i%2 == 0 {
			doc = gen.DBLP(int64(i%5), 60+i%40)
		} else {
			doc = gen.RandomTree(rng, 5+rng.Intn(200))
		}
		if err := f.Add(fmt.Sprintf("doc-%03d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	query, _, err := gen.Perturb(rng, gen.DBLP(0, 80), 4, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	q := profile.BuildIndex(query, p33)

	col := obs.NewCollector()
	f.SetCollector(col)
	defer f.SetCollector(nil)

	f.SetPlanMode(forest.PlanExhaustive)
	before := col.Snapshot()
	f.LookupIndex(q, 0.3)
	mid := col.Snapshot()
	f.SetPlanMode(forest.PlanPruned)
	f.LookupIndex(q, 0.3)
	after := col.Snapshot()

	exDelta := mid.CounterDeltas(before)
	prDelta := after.CounterDeltas(mid)
	exExamined := exDelta["forest_lookup_candidates_examined"]
	prExamined := prDelta["forest_lookup_candidates_examined"]
	if exExamined == 0 {
		t.Fatal("exhaustive lookup examined no candidates; workload broken")
	}
	if prExamined > exExamined {
		t.Fatalf("pruned path examined %d candidates, exhaustive %d", prExamined, exExamined)
	}
	if prDelta["forest_lookup_pruned_size"]+prDelta["forest_lookup_pruned_abandon"] == 0 {
		t.Fatalf("pruned lookup reported no pruning at tau=0.3 (examined %d of %d)", prExamined, exExamined)
	}
}

// TestPlannerUnderConcurrentAddAll runs pruned lookups and joins
// concurrently with AddAll batches under the race detector, then verifies
// post-quiescence that both paths still agree on the final state.
func TestPlannerUnderConcurrentAddAll(t *testing.T) {
	f := forest.New(p33)
	f.SetPlanMode(forest.PlanPruned)
	rng := rand.New(rand.NewSource(11))
	seedDocs := make([]forest.Doc, 10)
	for i := range seedDocs {
		seedDocs[i] = forest.Doc{ID: fmt.Sprintf("seed-%02d", i), Tree: gen.DBLP(int64(i%3), 40+i)}
	}
	if err := f.AddAll(seedDocs, 2); err != nil {
		t.Fatal(err)
	}
	query, _, err := gen.Perturb(rng, seedDocs[0].Tree, 3, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	q := profile.BuildIndex(query, p33)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				f.LookupIndex(q, 0.1+float64((w+i)%10)/10)
				if i%10 == 0 {
					f.SimilarityJoinWorkers(0.5, 2)
				}
			}
		}(w)
	}
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			batch := make([]forest.Doc, 5)
			for i := range batch {
				batch[i] = forest.Doc{
					ID:   fmt.Sprintf("batch-%d-%02d", b, i),
					Tree: gen.DBLP(int64(b*5+i), 30+i*7),
				}
			}
			if err := f.AddAll(batch, 2); err != nil {
				t.Error(err)
			}
		}(b)
	}
	wg.Wait()
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	for _, tau := range plannerTaus {
		lookupBoth(t, f, q, tau, "post-concurrency")
	}
	joinBoth(t, f, 0.6, "post-concurrency")
}
