package forest_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// fakeTier serves evicted bags straight from a map — the minimal Tier a
// segmented store stands in for. It reports plausible TierStats (every
// held document "probed", a bloom check per (doc, tuple) pair) so the
// span and counter plumbing sees nonzero work.
type fakeTier struct {
	bags map[string]profile.Index
}

func newFakeTier() *fakeTier { return &fakeTier{bags: make(map[string]profile.Index)} }

func (ft *fakeTier) Overlaps(q profile.Index) (map[string]int, forest.TierStats) {
	ov := make(map[string]int)
	var st forest.TierStats
	for id, bag := range ft.bags {
		st.SegmentsProbed++
		o := 0
		for lt, qc := range q {
			st.BloomChecks++
			dc, ok := bag[lt]
			if !ok {
				st.BloomSkips++
				continue
			}
			st.PostingsScanned++
			if dc < qc {
				o += dc
			} else {
				o += qc
			}
		}
		if o > 0 {
			ov[id] = o
		}
	}
	return ov, st
}

func (ft *fakeTier) Bag(id string) (profile.Index, bool) {
	bag, ok := ft.bags[id]
	if !ok {
		return nil, false
	}
	return bag.Clone(), true
}

func (ft *fakeTier) ForEachPosting(fn func(lt profile.LabelTuple, entries []forest.TierPosting) error) error {
	post := make(map[profile.LabelTuple][]forest.TierPosting)
	for id, bag := range ft.bags {
		for lt, c := range bag {
			post[lt] = append(post[lt], forest.TierPosting{ID: id, Cnt: c})
		}
	}
	lts := make([]profile.LabelTuple, 0, len(post))
	for lt := range post {
		lts = append(lts, lt)
	}
	sort.Slice(lts, func(i, j int) bool { return lts[i] < lts[j] })
	for _, lt := range lts {
		es := post[lt]
		sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
		if err := fn(lt, es); err != nil {
			return err
		}
	}
	return nil
}

// tieredCopy builds the same document set twice: once all-resident, once
// with every even-numbered document evicted into a fakeTier. The two
// forests must answer every query identically.
func tieredCopy(t *testing.T, docs []*tree.Tree) (resident, tiered *forest.Index, ft *fakeTier, evicted []string) {
	t.Helper()
	resident = forest.New(p33)
	tiered = forest.New(p33)
	ft = newFakeTier()
	tiered.SetTier(ft)
	for i, d := range docs {
		id := fmt.Sprintf("doc%03d", i)
		if err := resident.Add(id, d); err != nil {
			t.Fatal(err)
		}
		if err := tiered.Add(id, d); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			ft.bags[id] = tiered.TreeIndex(id)
			evicted = append(evicted, id)
		}
	}
	if err := tiered.Evict(evicted, nil); err != nil {
		t.Fatal(err)
	}
	return resident, tiered, ft, evicted
}

func matchesEqual(a, b []forest.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pairsEqual(a, b []forest.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTierLookupDifferential holds the tier-merged lookup paths (pruned,
// exhaustive, and the τ>1 scan-all branch) byte-identical to the
// all-in-RAM forest.
func TestTierLookupDifferential(t *testing.T) {
	docs := gen.XMarkForest(7, 48, 4800)
	resident, tiered, _, _ := tieredCopy(t, docs)
	queries := append([]*tree.Tree{tree.MustParse("a(b c)")}, docs[0], docs[1], docs[7], docs[20])
	for _, mode := range []forest.PlanMode{forest.PlanExhaustive, forest.PlanPruned, forest.PlanAuto} {
		resident.SetPlanMode(mode)
		tiered.SetPlanMode(mode)
		for qi, q := range queries {
			for _, tau := range []float64{0.2, 0.55, 1.5} {
				want := resident.Lookup(q, tau)
				got := tiered.Lookup(q, tau)
				if !matchesEqual(want, got) {
					t.Fatalf("mode %v query %d tau %v: tiered %v, resident %v", mode, qi, tau, got, want)
				}
			}
		}
	}
}

// TestTierTopKDifferential covers the exhaustive top-k scan over a tier
// and the metric build that fetches evicted bags through the tier.
func TestTierTopKDifferential(t *testing.T) {
	docs := gen.XMarkForest(11, 32, 3200)
	resident, tiered, _, _ := tieredCopy(t, docs)
	for _, mode := range []forest.PlanMode{forest.PlanExhaustive, forest.PlanMetric} {
		resident.SetPlanMode(mode)
		tiered.SetPlanMode(mode)
		for _, k := range []int{1, 5, 100} {
			want := resident.LookupTopK(docs[3], k)
			got := tiered.LookupTopK(docs[3], k)
			if !matchesEqual(want, got) {
				t.Fatalf("mode %v k=%d: tiered %v, resident %v", mode, k, got, want)
			}
		}
	}
	if !tiered.MetricReady() {
		t.Fatal("metric index not built by PlanMetric top-k over a tier")
	}
	// The metric build cloned every bag (tier copies included), so the
	// forest must still self-check, and AddEvicted must now refuse.
	if err := tiered.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if err := tiered.AddEvicted("late", 10, 5); err == nil || !strings.Contains(err.Error(), "metric index built") {
		t.Fatalf("AddEvicted after metric build: %v", err)
	}
}

// TestTierJoinDifferential covers both join strategies over a tier: the
// posting-sweep (joinTierPairsLocked merging tier×tier and tier×resident
// pairs) and the τ>1 all-pairs scan that fetches tier bags up front.
func TestTierJoinDifferential(t *testing.T) {
	docs := gen.XMarkForest(13, 28, 2400)
	resident, tiered, _, _ := tieredCopy(t, docs)
	for _, tau := range []float64{0.4, 0.7, 1.5} {
		want := resident.SimilarityJoin(tau)
		got := tiered.SimilarityJoin(tau)
		if !pairsEqual(want, got) {
			t.Fatalf("tau %v: tiered join %v, resident %v", tau, got, want)
		}
	}
}

// TestTierAccessors covers the evicted-document read paths that fetch
// bags through the tier one document at a time.
func TestTierAccessors(t *testing.T) {
	docs := gen.XMarkForest(17, 10, 900)
	resident, tiered, _, evicted := tieredCopy(t, docs)
	ev := evicted[0]
	if !tiered.Evicted(ev) {
		t.Fatalf("Evicted(%q) = false", ev)
	}
	if tiered.Evicted("doc001") || tiered.Evicted("nope") {
		t.Fatal("Evicted true for resident or unknown document")
	}
	if got, want := tiered.EvictedLen(), len(evicted); got != want {
		t.Fatalf("EvictedLen = %d, want %d", got, want)
	}
	if tiered.Len() != resident.Len() || tiered.Size() != resident.Size() {
		t.Fatal("Len/Size changed by eviction")
	}
	if rs := tiered.ResidentSize(); rs >= tiered.Size() || rs <= 0 {
		t.Fatalf("ResidentSize = %d with Size = %d", rs, tiered.Size())
	}
	if resident.ResidentSize() != resident.Size() {
		t.Fatal("ResidentSize != Size on an all-resident forest")
	}

	// TreeIndex and TreeStats on an evicted document.
	if got, want := tiered.TreeIndex(ev), resident.TreeIndex(ev); !got.Equal(want) {
		t.Fatalf("TreeIndex(%q) differs through the tier", ev)
	}
	size, distinct, ok := tiered.TreeStats(ev)
	wsize, wdistinct, _ := resident.TreeStats(ev)
	if !ok || size != wsize || distinct != wdistinct {
		t.Fatalf("TreeStats(%q) = (%d, %d, %v), want (%d, %d, true)", ev, size, distinct, ok, wsize, wdistinct)
	}

	// Distance between an evicted and a resident document, and from a query.
	want, err := resident.Distance(ev, "doc001")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiered.Distance(ev, "doc001")
	if err != nil || got != want {
		t.Fatalf("Distance = %v, %v; want %v", got, err, want)
	}
	wantTo, err := resident.DistanceTo(docs[1], ev)
	if err != nil {
		t.Fatal(err)
	}
	gotTo, err := tiered.DistanceTo(docs[1], ev)
	if err != nil || gotTo != wantTo {
		t.Fatalf("DistanceTo = %v, %v; want %v", gotTo, err, wantTo)
	}

	// ForEachTree traverses evicted documents through the tier.
	seen := make(map[string]int)
	if err := tiered.ForEachTree(func(id string, idx profile.Index) error {
		seen[id] = idx.Size()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != resident.Len() || seen[ev] != wsize {
		t.Fatalf("ForEachTree saw %d trees, %q with size %d", len(seen), ev, seen[ev])
	}

	// SelfCheck validates the cached size/distinct against the tier bag.
	if err := tiered.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTierEvictPromote covers the eviction/promotion error paths, the
// swap callbacks, and that a promoted document answers like it never left.
func TestTierEvictPromote(t *testing.T) {
	docs := gen.XMarkForest(19, 6, 600)
	resident, tiered, ft, _ := tieredCopy(t, docs)

	if err := tiered.Evict([]string{"nope"}, nil); err == nil || !strings.Contains(err.Error(), "not indexed") {
		t.Fatalf("evicting unknown: %v", err)
	}
	if err := tiered.Evict([]string{"doc000"}, nil); err == nil || !strings.Contains(err.Error(), "already evicted") {
		t.Fatalf("double evict: %v", err)
	}
	if err := tiered.Promote("nope", profile.Index{}, nil); err == nil || !strings.Contains(err.Error(), "not indexed") {
		t.Fatalf("promoting unknown: %v", err)
	}
	if err := tiered.Promote("doc001", profile.Index{}, nil); err == nil || !strings.Contains(err.Error(), "already resident") {
		t.Fatalf("promoting resident: %v", err)
	}
	if err := tiered.Promote("doc000", nil, nil); err == nil || !strings.Contains(err.Error(), "nil bag") {
		t.Fatalf("promoting with nil bag: %v", err)
	}

	// Promote doc000 back; the swap callback drops the tier copy under
	// the same lock, like the store does.
	epoch := tiered.Epoch()
	swapped := false
	bag := ft.bags["doc000"]
	if err := tiered.Promote("doc000", bag.Clone(), func() {
		swapped = true
		delete(ft.bags, "doc000")
	}); err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("promote swap callback did not run")
	}
	if tiered.Evicted("doc000") {
		t.Fatal("doc000 still evicted after promotion")
	}
	if tiered.Epoch() != epoch {
		t.Fatal("promotion advanced the epoch")
	}

	// And evict it again with a swap callback, round-tripping the bag.
	swapped = false
	if err := tiered.Evict([]string{"doc000"}, func() {
		swapped = true
		ft.bags["doc000"] = bag
	}); err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("evict swap callback did not run")
	}
	if tiered.Epoch() != epoch {
		t.Fatal("eviction advanced the epoch")
	}
	for _, tau := range []float64{0.5, 1.5} {
		if want, got := resident.Lookup(docs[0], tau), tiered.Lookup(docs[0], tau); !matchesEqual(want, got) {
			t.Fatalf("tau %v after promote/evict round trip: %v, want %v", tau, got, want)
		}
	}
	if err := tiered.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTierAddEvicted covers registering documents that were never
// resident — the segmented store's open path.
func TestTierAddEvicted(t *testing.T) {
	docs := gen.XMarkForest(23, 8, 800)
	resident := forest.New(p33)
	tiered := forest.New(p33)
	ft := newFakeTier()
	tiered.SetTier(ft)
	for i, d := range docs {
		id := fmt.Sprintf("doc%03d", i)
		if err := resident.Add(id, d); err != nil {
			t.Fatal(err)
		}
		bag := profile.BuildIndex(d, p33)
		ft.bags[id] = bag
		epoch := tiered.Epoch()
		if err := tiered.AddEvicted(id, bag.Size(), len(bag)); err != nil {
			t.Fatal(err)
		}
		if tiered.Epoch() == epoch {
			t.Fatal("AddEvicted did not advance the epoch")
		}
	}
	if err := tiered.AddEvicted("doc000", 1, 1); err == nil || !strings.Contains(err.Error(), "already indexed") {
		t.Fatalf("duplicate AddEvicted: %v", err)
	}
	if tiered.Len() != resident.Len() || tiered.Size() != resident.Size() {
		t.Fatal("Len/Size wrong after AddEvicted")
	}
	if tiered.ResidentSize() != 0 {
		t.Fatal("ResidentSize nonzero on a fully evicted forest")
	}
	for _, tau := range []float64{0.3, 0.8} {
		if want, got := resident.Lookup(docs[2], tau), tiered.Lookup(docs[2], tau); !matchesEqual(want, got) {
			t.Fatalf("tau %v: %v, want %v", tau, got, want)
		}
	}
	if err := tiered.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTierDetachedErrors covers the two tier-inconsistency failures:
// an evicted document with no tier attached, and a tier that does not
// hold the document it is supposed to serve.
func TestTierDetachedErrors(t *testing.T) {
	docs := gen.XMarkForest(29, 4, 400)
	_, tiered, ft, evicted := tieredCopy(t, docs)
	ev := evicted[0]

	delete(ft.bags, ev)
	if _, err := tiered.Distance(ev, "doc001"); err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("Distance with a hole in the tier: %v", err)
	}

	tiered.SetTier(nil)
	if got := tiered.TreeIndex(evicted[1]); got != nil {
		t.Fatalf("TreeIndex with no tier = %v, want nil", got)
	}
	if _, err := tiered.DistanceTo(docs[0], evicted[1]); err == nil || !strings.Contains(err.Error(), "no tier is attached") {
		t.Fatalf("DistanceTo with no tier: %v", err)
	}
	if err := tiered.ForEachTree(func(string, profile.Index) error { return nil }); err == nil {
		t.Fatal("ForEachTree with no tier succeeded")
	}
	if err := tiered.SelfCheck(); err == nil {
		t.Fatal("SelfCheck with no tier succeeded")
	}
	// Lookups do not error without a tier: the τ>1 scan-all path scores
	// every registered document from its cached size (overlap 0 for the
	// now-unreachable evicted bags), so nothing is silently dropped.
	if got := tiered.Lookup(docs[1], 1.5); len(got) != tiered.Len() {
		t.Fatalf("detached lookup returned %d matches, want %d", len(got), tiered.Len())
	}
}

// TestTierCounters verifies the tier read's work lands on the
// forest_bloom_* and forest_tier_* counters when a collector is attached.
func TestTierCounters(t *testing.T) {
	docs := gen.XMarkForest(31, 12, 1200)
	_, tiered, _, _ := tieredCopy(t, docs)
	col := obs.NewCollector()
	tiered.SetCollector(col)
	tiered.SetPlanMode(forest.PlanExhaustive)
	if got := tiered.Lookup(docs[0], 0.8); len(got) == 0 {
		t.Fatal("lookup over the tier found nothing")
	}
	if col.Counter("forest_tier_segments_probed").Load() == 0 {
		t.Fatal("forest_tier_segments_probed not incremented")
	}
	if col.Counter("forest_bloom_checks").Load() == 0 {
		t.Fatal("forest_bloom_checks not incremented")
	}
	if col.Counter("forest_bloom_skips").Load() == 0 {
		t.Fatal("forest_bloom_skips not incremented")
	}
	if col.Counter("forest_tier_postings_scanned").Load() == 0 {
		t.Fatal("forest_tier_postings_scanned not incremented")
	}
}
