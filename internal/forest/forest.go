// Package forest implements the persistent pq-gram index of a document
// collection (Augsten, Böhlen and Gamper, VLDB 2006, §3.2 and §9.1): the
// relation (treeId, pqg, cnt) of Figure 4, augmented with inverted postings
// pqg → (treeId, cnt) so that an approximate lookup touches only the trees
// that share at least one pq-gram with the query.
//
// The index supports incremental maintenance: Update applies the deltas of
// Algorithm 1 to both the per-tree bag and the postings, so a document
// change costs time proportional to the log, not to the forest.
package forest

import (
	"fmt"
	"sort"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Index is the pq-gram index of a forest of named trees.
type Index struct {
	pr       profile.Params
	trees    map[string]profile.Index
	postings map[profile.LabelTuple]map[string]int
}

// New creates an empty forest index with the given pq-gram parameters.
func New(pr profile.Params) *Index {
	if err := pr.Validate(); err != nil {
		panic(err)
	}
	return &Index{
		pr:       pr,
		trees:    make(map[string]profile.Index),
		postings: make(map[profile.LabelTuple]map[string]int),
	}
}

// Params returns the pq-gram parameters of the index.
func (f *Index) Params() profile.Params { return f.pr }

// Len returns the number of indexed trees.
func (f *Index) Len() int { return len(f.trees) }

// Has reports whether a tree with the given ID is indexed.
func (f *Index) Has(id string) bool { _, ok := f.trees[id]; return ok }

// IDs returns the indexed tree IDs in ascending order.
func (f *Index) IDs() []string {
	out := make([]string, 0, len(f.trees))
	for id := range f.trees {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Add indexes a tree under the given ID. It fails if the ID is taken.
func (f *Index) Add(id string, t *tree.Tree) error {
	return f.AddIndex(id, profile.BuildIndex(t, f.pr))
}

// AddIndex indexes a precomputed pq-gram index (e.g. one loaded from disk)
// under the given ID. The index is owned by the forest afterwards and must
// not be modified by the caller.
func (f *Index) AddIndex(id string, idx profile.Index) error {
	if _, ok := f.trees[id]; ok {
		return fmt.Errorf("forest: tree %q already indexed", id)
	}
	f.trees[id] = idx
	for lt, c := range idx {
		f.postingAdd(lt, id, c)
	}
	return nil
}

// Remove drops a tree from the index.
func (f *Index) Remove(id string) error {
	idx, ok := f.trees[id]
	if !ok {
		return fmt.Errorf("forest: tree %q not indexed", id)
	}
	for lt := range idx {
		f.postingRemove(lt, id)
	}
	delete(f.trees, id)
	return nil
}

// TreeIndex returns the pq-gram index of one tree, or nil if the ID is
// unknown. The returned bag is owned by the forest; callers must not
// modify it (Clone it first).
func (f *Index) TreeIndex(id string) profile.Index { return f.trees[id] }

// Size returns the total bag cardinality over all trees (the number of
// rows a (treeId, pqg, 1)-normalized relation would have).
func (f *Index) Size() int {
	n := 0
	for _, idx := range f.trees {
		n += idx.Size()
	}
	return n
}

func (f *Index) postingAdd(lt profile.LabelTuple, id string, c int) {
	m := f.postings[lt]
	if m == nil {
		m = make(map[string]int)
		f.postings[lt] = m
	}
	m[id] += c
}

func (f *Index) postingRemove(lt profile.LabelTuple, id string) {
	if m := f.postings[lt]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(f.postings, lt)
		}
	}
}

// Update incrementally maintains the index of one tree after it has been
// edited, given the resulting tree and the log of inverse edit operations
// (Algorithm 1 applied to both the per-tree bag and the postings). It
// returns the per-step statistics of the underlying maintenance run.
func (f *Index) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	if _, ok := f.trees[id]; !ok {
		return core.Stats{}, fmt.Errorf("forest: tree %q not indexed", id)
	}
	iPlus, iMinus, st, err := core.Deltas(tn, log, f.pr)
	if err != nil {
		return st, err
	}
	return st, f.ApplyDeltas(id, iPlus, iMinus)
}

// ApplyDeltas applies precomputed index deltas (I⁺, I⁻ from core.Deltas)
// to one tree's bag and the postings. Callers that persist deltas (e.g.
// the journaled store) use this to replay them.
func (f *Index) ApplyDeltas(id string, iPlus, iMinus profile.Index) error {
	idx, ok := f.trees[id]
	if !ok {
		return fmt.Errorf("forest: tree %q not indexed", id)
	}
	if err := core.ApplyDeltas(idx, iPlus, iMinus); err != nil {
		return fmt.Errorf("forest: tree %q: %w", id, err)
	}
	for lt, c := range iMinus {
		m := f.postings[lt]
		if m == nil || m[id] < c {
			return fmt.Errorf("forest: postings for tree %q underflow", id)
		}
		m[id] -= c
		if m[id] == 0 {
			f.postingRemove(lt, id)
		}
	}
	for lt, c := range iPlus {
		f.postingAdd(lt, id, c)
	}
	return nil
}

// SelfCheck verifies the internal consistency of the index: the inverted
// postings must be exactly the transposition of the per-tree bags. It is
// O(index) and intended for tests and integrity audits after crashes.
func (f *Index) SelfCheck() error {
	want := make(map[profile.LabelTuple]map[string]int)
	for id, idx := range f.trees {
		for lt, c := range idx {
			m := want[lt]
			if m == nil {
				m = make(map[string]int)
				want[lt] = m
			}
			m[id] = c
		}
	}
	if len(want) != len(f.postings) {
		return fmt.Errorf("forest: %d posting keys, want %d", len(f.postings), len(want))
	}
	for lt, m := range want {
		got := f.postings[lt]
		if len(got) != len(m) {
			return fmt.Errorf("forest: posting list size mismatch for one tuple")
		}
		for id, c := range m {
			if got[id] != c {
				return fmt.Errorf("forest: posting count for tree %q is %d, want %d", id, got[id], c)
			}
		}
	}
	return nil
}

// Match is one approximate-lookup result.
type Match struct {
	TreeID   string
	Distance float64
}

// Lookup returns every indexed tree whose pq-gram distance to the query
// tree is strictly below tau, sorted by ascending distance (ties by ID).
// This is the approximate lookup of §3.2: {T ∈ F | dist(X, T) < τ}.
func (f *Index) Lookup(query *tree.Tree, tau float64) []Match {
	return f.LookupIndex(profile.BuildIndex(query, f.pr), tau)
}

// LookupIndex is Lookup for a precomputed query index.
func (f *Index) LookupIndex(q profile.Index, tau float64) []Match {
	overlaps := f.overlaps(q)
	qSize := q.Size()
	var out []Match
	if tau > 1 {
		// Trees sharing no pq-gram (distance exactly 1) can qualify only
		// for thresholds above 1; scan the whole forest then.
		for id, idx := range f.trees {
			if d := distanceFrom(qSize, idx.Size(), overlaps[id]); d < tau {
				out = append(out, Match{TreeID: id, Distance: d})
			}
		}
	} else {
		for id, ov := range overlaps {
			if d := distanceFrom(qSize, f.trees[id].Size(), ov); d < tau {
				out = append(out, Match{TreeID: id, Distance: d})
			}
		}
	}
	sortMatches(out)
	return out
}

// LookupTop returns the k nearest trees by pq-gram distance (fewer if the
// forest is smaller), sorted by ascending distance.
func (f *Index) LookupTop(query *tree.Tree, k int) []Match {
	q := profile.BuildIndex(query, f.pr)
	overlaps := f.overlaps(q)
	qSize := q.Size()
	out := make([]Match, 0, len(f.trees))
	for id, idx := range f.trees {
		out = append(out, Match{TreeID: id, Distance: distanceFrom(qSize, idx.Size(), overlaps[id])})
	}
	sortMatches(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// overlaps accumulates |I(query) ∩ I(T)| per tree via the postings.
func (f *Index) overlaps(q profile.Index) map[string]int {
	ov := make(map[string]int)
	for lt, qc := range q {
		for id, tc := range f.postings[lt] {
			if tc < qc {
				ov[id] += tc
			} else {
				ov[id] += qc
			}
		}
	}
	return ov
}

// Pair is one result of a similarity join: two indexed trees and their
// pq-gram distance, with A < B lexicographically.
type Pair struct {
	A, B     string
	Distance float64
}

// SimilarityJoin returns every unordered pair of indexed trees whose
// pq-gram distance is strictly below tau — the approximate join of the
// paper's related work (Guha et al.), powered by the index: candidate
// pairs are generated from the inverted postings (only trees sharing at
// least one pq-gram can have distance < 1), so disjoint pairs are never
// scored. Results are sorted by distance, then IDs.
//
// For tau > 1 every pair qualifies and the join degenerates to all pairs.
func (f *Index) SimilarityJoin(tau float64) []Pair {
	var out []Pair
	if tau > 1 {
		ids := f.IDs()
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d := f.trees[ids[i]].Distance(f.trees[ids[j]])
				if d < tau {
					out = append(out, Pair{A: ids[i], B: ids[j], Distance: d})
				}
			}
		}
		sortPairs(out)
		return out
	}
	// Accumulate bag-intersection sizes for co-occurring pairs.
	type key struct{ a, b string }
	overlap := make(map[key]int)
	for _, m := range f.postings {
		if len(m) < 2 {
			continue
		}
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				ca, cb := m[ids[i]], m[ids[j]]
				if cb < ca {
					ca = cb
				}
				overlap[key{ids[i], ids[j]}] += ca
			}
		}
	}
	for k, ov := range overlap {
		d := distanceFrom(f.trees[k.a].Size(), f.trees[k.b].Size(), ov)
		if d < tau {
			out = append(out, Pair{A: k.a, B: k.b, Distance: d})
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Distance != ps[j].Distance {
			return ps[i].Distance < ps[j].Distance
		}
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Distance returns the pq-gram distance between two indexed trees.
func (f *Index) Distance(id1, id2 string) (float64, error) {
	a, ok := f.trees[id1]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id1)
	}
	b, ok := f.trees[id2]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id2)
	}
	return a.Distance(b), nil
}

// DistanceTo returns the pq-gram distance between a query tree and one
// indexed tree.
func (f *Index) DistanceTo(query *tree.Tree, id string) (float64, error) {
	idx, ok := f.trees[id]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id)
	}
	return profile.BuildIndex(query, f.pr).Distance(idx), nil
}

func distanceFrom(qSize, tSize, overlap int) float64 {
	u := qSize + tSize
	if u == 0 {
		return 0
	}
	return 1 - 2*float64(overlap)/float64(u)
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return ms[i].TreeID < ms[j].TreeID
	})
}
