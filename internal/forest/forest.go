// Package forest implements the persistent pq-gram index of a document
// collection (Augsten, Böhlen and Gamper, VLDB 2006, §3.2 and §9.1): the
// relation (treeId, pqg, cnt) of Figure 4, augmented with inverted postings
// pqg → (treeId, cnt) so that an approximate lookup touches only the trees
// that share at least one pq-gram with the query.
//
// The index supports incremental maintenance: Update applies the deltas of
// Algorithm 1 to both the per-tree bag and the postings, so a document
// change costs time proportional to the log, not to the forest.
//
// The in-memory postings need not hold the whole collection: a storage
// tier (tier.go, implemented by the segmented store in internal/store)
// can serve evicted documents' bags and postings from immutable on-disk
// segments. Every lookup, join and distance path merges the two
// populations and returns results byte-identical to the all-in-RAM index;
// see tier.go for the resident-XOR-evicted invariant this rests on.
//
// # Concurrency
//
// The index is safe for concurrent use as the shared artifact the paper
// targets: many clients looking up while edit feeds stream in. The inverted
// postings are lock-striped into shards keyed by label-tuple hash, each
// per-tree bag is guarded by its own RWMutex, and a registry RWMutex guards
// the tree table. Lookups, distance queries and incremental updates of
// different documents all proceed in parallel; only the structural
// operations (Add, Remove, Put, AddAll) and SelfCheck take the registry
// write lock and briefly exclude everything else.
//
// Concurrent Update/ApplyDeltas calls against the same document serialize
// on the document's lock and keep the index internally consistent, but the
// logs must still form one coherent edit sequence — interleaving
// independently derived logs for the same document is a logic error, with
// or without locking, exactly as in single-threaded use.
//
// Lock ordering is registry → tree entry → postings shard; shard locks are
// never held while acquiring an entry lock, and multi-entry read locks are
// always taken in ascending tree-ID order. The storage tier's own lock
// nests after all of them: tier reads run under the registry lock and
// never call back into the forest.
package forest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// shardBits fixes the number of postings shards to 1<<shardBits. 32 shards
// keep writer collisions rare at typical GOMAXPROCS without bloating the
// struct; the routing hash is profile.LabelTuple.Shard.
const shardBits = 5

// numShards is the number of lock stripes of the inverted postings.
const numShards = 1 << shardBits

// shard is one stripe of the inverted postings pqg → (treeId, cnt). Its
// mutex guards the outer map and every inner posting list reachable from
// it; structural operations holding the registry write lock exclude
// every shard reader and writer wholesale, which is the Index.mu:w
// alternative of the guard.
type shard struct {
	mu       sync.RWMutex
	postings map[profile.LabelTuple]map[string]int // guarded by mu or Index.mu:w
}

// add merges one posting. Callers hold s.mu for writing, or the registry
// write lock (which excludes all shard access).
//
//pqlint:locked s.mu
func (s *shard) add(lt profile.LabelTuple, id string, c int) {
	m := s.postings[lt]
	if m == nil {
		m = make(map[string]int)
		s.postings[lt] = m
	}
	m[id] += c
}

// remove drops one posting. Same locking contract as add.
//
//pqlint:locked s.mu
func (s *shard) remove(lt profile.LabelTuple, id string) {
	if m := s.postings[lt]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(s.postings, lt)
		}
	}
}

// treeEntry is one indexed tree: its bag, the bag's lock, and the bag
// cardinality cached so that lookups can score candidates without taking
// the bag lock at all.
//
// idx == nil marks an evicted entry (tier.go): the bag lives in the
// storage tier, the postings are absent from the shards, and distinct
// caches the bag's distinct-tuple count (written only under the registry
// write lock, like idx itself on eviction/promotion).
type treeEntry struct {
	mu       sync.RWMutex
	idx      profile.Index // guarded by mu or Index.mu:w
	size     atomic.Int64
	distinct int // guarded by Index.mu
}

// Index is the pq-gram index of a forest of named trees. It is safe for
// concurrent use; see the package comment for the exact guarantees.
type Index struct {
	pr profile.Params

	// mu guards the trees table. Write lock = structural changes
	// (Add/Remove/Put/AddAll) and SelfCheck; every other operation holds
	// the read lock for its full duration, so structural ops never
	// interleave with an in-flight lookup or update.
	mu     sync.RWMutex
	trees  map[string]*treeEntry // guarded by mu
	shards [numShards]shard

	// obs is the attached instrumentation, nil when the index is not
	// observed (the default). Hot paths load it once at entry; see
	// metrics.go.
	obs atomic.Pointer[metrics]

	// plan is the query-planning mode (PlanMode); see planner.go. The
	// zero value is PlanAuto.
	plan atomic.Int32

	// epoch is the mutation epoch of the index: a counter advanced by
	// every operation that can change lookup results (Add, Remove, Put,
	// bulk builds, incremental delta application). Result caches key
	// their entries on it — see Epoch for the exact protocol. Structural
	// ops under the registry write lock advance it once; delta
	// applications, which run concurrently with lookups, advance it both
	// before the first change and after the last one (seqlock-style), so
	// an epoch observed unchanged across a read brackets a window with no
	// completed mutation.
	epoch atomic.Uint64

	// metric is the VP-tree top-k index (metric.go). It starts unbuilt
	// and free; once built it is maintained incrementally by every
	// mutation. Its lock nests strictly after the registry, entry and
	// shard locks.
	metric metricIndex

	// tier is the storage tier serving evicted documents (tier.go), nil
	// when every document is resident. Attached once at open time by the
	// segmented store.
	tier Tier // guarded by mu
}

// The package's lock-acquisition order, enforced by the lockorder
// analyzer. The registry lock is always outermost, per-document bag
// locks nest inside it, postings stripes inside those, and the metric
// index's lock is innermost on the mutation path (it is never held
// while acquiring any other forest lock). Multi-instance acquisitions
// of the same class (two bag locks in Distance, the pairwise join) are
// sanctioned separately: always in ascending tree-ID order.
//
//pqlint:lockorder Index.mu < treeEntry.mu < shard.mu
//pqlint:lockorder treeEntry.mu < metricIndex.mu
//pqlint:lockorder Index.mu < metricIndex.mu

// New creates an empty forest index with the given pq-gram parameters.
func New(pr profile.Params) *Index {
	if err := pr.Validate(); err != nil {
		panic(err)
	}
	f := &Index{
		pr:    pr,
		trees: make(map[string]*treeEntry),
	}
	for i := range f.shards {
		f.shards[i].postings = make(map[profile.LabelTuple]map[string]int)
	}
	return f
}

func (f *Index) shardOf(lt profile.LabelTuple) *shard {
	return &f.shards[lt.Shard(shardBits)]
}

// Params returns the pq-gram parameters of the index.
func (f *Index) Params() profile.Params { return f.pr }

// Epoch returns the current mutation epoch of the index. The epoch
// advances (by at least one) whenever a mutation that can change lookup
// results completes; it never moves backwards. A cached lookup result is
// valid for serving exactly when the epoch it was computed under equals
// the current epoch. Writers advance the epoch before their first
// visible change and after their last one, so the safe caching protocol
// is: read e1 := Epoch(), run the lookup, read e2 := Epoch(); the result
// may be cached under e1 only if e1 == e2. A later read that still
// observes e1 proves no mutation completed in between.
func (f *Index) Epoch() uint64 { return f.epoch.Load() }

// Len returns the number of indexed trees.
func (f *Index) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.trees)
}

// Has reports whether a tree with the given ID is indexed.
func (f *Index) Has(id string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.trees[id]
	return ok
}

// IDs returns the indexed tree IDs in ascending order.
func (f *Index) IDs() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.idsLocked()
}

//pqlint:locked f.mu:r
func (f *Index) idsLocked() []string {
	out := make([]string, 0, len(f.trees))
	for id := range f.trees {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Add indexes a tree under the given ID. It fails if the ID is taken.
func (f *Index) Add(id string, t *tree.Tree) error {
	return f.AddIndex(id, profile.BuildIndex(t, f.pr))
}

// AddIndex indexes a precomputed pq-gram index (e.g. one loaded from disk)
// under the given ID. The index is owned by the forest afterwards and must
// not be modified by the caller.
func (f *Index) AddIndex(id string, idx profile.Index) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addIndexLocked(id, idx)
}

// addIndexLocked requires f.mu held for writing; under the write lock the
// shards need no locking of their own.
//
//pqlint:locked f.mu
func (f *Index) addIndexLocked(id string, idx profile.Index) error {
	if _, ok := f.trees[id]; ok {
		return fmt.Errorf("forest: tree %q already indexed", id)
	}
	e := &treeEntry{idx: idx}
	e.size.Store(int64(idx.Size()))
	f.trees[id] = e
	for lt, c := range idx {
		f.shardOf(lt).add(lt, id, c)
	}
	f.metric.add(id, idx)
	f.epoch.Add(1)
	if m := f.obs.Load(); m != nil {
		m.adds.Inc()
	}
	return nil
}

// Remove drops a tree from the index.
func (f *Index) Remove(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.removeLocked(id)
}

//pqlint:locked f.mu
func (f *Index) removeLocked(id string) error {
	e, ok := f.trees[id]
	if !ok {
		return fmt.Errorf("forest: tree %q not indexed", id)
	}
	for lt := range e.idx {
		f.shardOf(lt).remove(lt, id)
	}
	delete(f.trees, id)
	f.metric.remove(id)
	f.epoch.Add(1)
	if m := f.obs.Load(); m != nil {
		m.removes.Inc()
	}
	return nil
}

// Put indexes t under id, atomically replacing any existing tree with that
// ID, and returns the bag cardinality of the new index. It is the upsert
// the serving path needs: with separate Has/Remove/Add calls two writers
// can interleave, with Put they cannot.
func (f *Index) Put(id string, t *tree.Tree) int {
	idx := profile.BuildIndex(t, f.pr)
	n := idx.Size()
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.trees[id]; ok {
		f.removeLocked(id)
	}
	f.addIndexLocked(id, idx)
	if m := f.obs.Load(); m != nil {
		m.puts.Inc()
	}
	return n
}

// TreeIndex returns a copy of the pq-gram index of one tree, or nil if the
// ID is unknown. The copy is the caller's: mutating it cannot corrupt the
// forest. Callers that only need the cardinalities should use TreeStats,
// which does not copy.
func (f *Index) TreeIndex(id string) profile.Index {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e := f.trees[id]
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.idx == nil {
		// Evicted: the tier hands back a fresh copy already. The registry
		// read lock is held across the fetch so the document cannot be
		// promoted or re-flushed mid-read.
		bag, err := f.bagOfLocked(id, e)
		if err != nil {
			return nil
		}
		return bag
	}
	return e.idx.Clone()
}

// TreeStats returns the bag cardinality and the number of distinct tuples
// of one tree's index without copying the bag.
func (f *Index) TreeStats(id string) (size, distinct int, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e := f.trees[id]
	if e == nil {
		return 0, 0, false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.idx == nil {
		return int(e.size.Load()), e.distinct, true
	}
	return int(e.size.Load()), len(e.idx), true
}

// ForEachTree calls fn once per indexed tree in ascending ID order, passing
// the internal bag (for resident trees) or a tier-fetched copy (for
// evicted ones). fn must treat the bag as read-only and must not retain
// it after returning; the bag's lock is held for the duration of the call.
// Iteration stops at the first error, which is returned. This is the
// traversal the store uses to serialize the forest without copying every
// resident bag.
func (f *Index) ForEachTree(fn func(id string, idx profile.Index) error) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, id := range f.idsLocked() {
		e := f.trees[id]
		e.mu.RLock()
		bag, err := f.bagOfLocked(id, e)
		if err == nil {
			err = fn(id, bag)
		}
		e.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Size returns the total bag cardinality over all trees (the number of
// rows a (treeId, pqg, 1)-normalized relation would have).
func (f *Index) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := int64(0)
	for _, e := range f.trees {
		n += e.size.Load()
	}
	return int(n)
}

// Update incrementally maintains the index of one tree after it has been
// edited, given the resulting tree and the log of inverse edit operations
// (Algorithm 1 applied to both the per-tree bag and the postings). It
// returns the per-step statistics of the underlying maintenance run.
func (f *Index) Update(id string, tn *tree.Tree, log edit.Log) (core.Stats, error) {
	m := f.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.trees[id]
	if !ok {
		return core.Stats{}, fmt.Errorf("forest: tree %q not indexed", id)
	}
	iPlus, iMinus, st, err := core.Deltas(tn, log, f.pr)
	if err != nil {
		return st, err
	}
	err = f.applyDeltasEntry(e, id, iPlus, iMinus)
	if m != nil && err == nil {
		m.updates.Inc()
		m.updateGramsPlus.Add(int64(iPlus.Size()))
		m.updateGramsMinus.Add(int64(iMinus.Size()))
		m.updateNS.ObserveSince(t0)
	}
	return st, err
}

// ApplyDeltas applies precomputed index deltas (I⁺, I⁻ from core.Deltas)
// to one tree's bag and the postings. Callers that persist deltas (e.g.
// the journaled store) use this to replay them.
func (f *Index) ApplyDeltas(id string, iPlus, iMinus profile.Index) error {
	m := f.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.trees[id]
	if !ok {
		return fmt.Errorf("forest: tree %q not indexed", id)
	}
	err := f.applyDeltasEntry(e, id, iPlus, iMinus)
	if m != nil && err == nil {
		m.updates.Inc()
		m.updateGramsPlus.Add(int64(iPlus.Size()))
		m.updateGramsMinus.Add(int64(iMinus.Size()))
		m.updateNS.ObserveSince(t0)
	}
	return err
}

// applyDeltasEntry requires f.mu held for reading. The entry lock is held
// across both the bag and the postings phase so that updates to the same
// document serialize as a whole and never observe each other half-applied.
//
//pqlint:locked f.mu:r
func (f *Index) applyDeltasEntry(e *treeEntry, id string, iPlus, iMinus profile.Index) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.idx == nil {
		// Deltas mutate the resident bag and the in-memory postings; the
		// segmented store promotes a flushed document before updating it.
		return fmt.Errorf("forest: tree %q is evicted; promote it before applying deltas", id)
	}
	// Delta application runs under the registry *read* lock, concurrent
	// with lookups, so the epoch is advanced on both sides of the change
	// (seqlock-style): a lookup that observes the same epoch before and
	// after its traversal is guaranteed not to have raced a completed
	// mutation. The exit bump happens even on error — a failed
	// application may have partially changed the bag, and a spurious
	// cache invalidation is always safe.
	f.epoch.Add(1)
	defer f.epoch.Add(1)
	if err := core.ApplyDeltas(e.idx, iPlus, iMinus); err != nil {
		return fmt.Errorf("forest: tree %q: %w", id, err)
	}
	e.size.Add(int64(iPlus.Size() - iMinus.Size()))
	for lt, c := range iMinus {
		s := f.shardOf(lt)
		s.mu.Lock()
		m := s.postings[lt]
		if m == nil || m[id] < c {
			s.mu.Unlock()
			return fmt.Errorf("forest: postings for tree %q underflow", id)
		}
		m[id] -= c
		if m[id] == 0 {
			s.remove(lt, id)
		}
		s.mu.Unlock()
	}
	for lt, c := range iPlus {
		s := f.shardOf(lt)
		s.mu.Lock()
		s.add(lt, id, c)
		s.mu.Unlock()
	}
	// The metric copy is maintained while e.mu is still held, so deltas to
	// the same document reach the metric index in the order they reached
	// the bag.
	return f.metric.applyDeltas(id, iPlus, iMinus)
}

// SelfCheck verifies the internal consistency of the index: the inverted
// postings must be exactly the transposition of the resident bags, every
// posting must live in the shard its tuple routes to, and the cached bag
// sizes must match the bags. Evicted entries are checked against the
// storage tier instead: the tier must hold their bag and the cached size
// and distinct count must match it. It takes the registry write lock, so
// it is atomic with respect to every other operation. It is O(index) and
// intended for tests and integrity audits after crashes.
func (f *Index) SelfCheck() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	want := make(map[profile.LabelTuple]map[string]int)
	for id, e := range f.trees {
		if e.idx == nil {
			bag, err := f.bagOfLocked(id, e)
			if err != nil {
				return err
			}
			if got := e.size.Load(); got != int64(bag.Size()) {
				return fmt.Errorf("forest: cached size of evicted tree %q is %d, tier bag has %d", id, got, bag.Size())
			}
			if e.distinct != len(bag) {
				return fmt.Errorf("forest: cached distinct of evicted tree %q is %d, tier bag has %d", id, e.distinct, len(bag))
			}
			continue
		}
		n := 0
		for lt, c := range e.idx {
			m := want[lt]
			if m == nil {
				m = make(map[string]int)
				want[lt] = m
			}
			m[id] = c
			n += c
		}
		if got := e.size.Load(); got != int64(n) {
			return fmt.Errorf("forest: cached size of tree %q is %d, want %d", id, got, n)
		}
	}
	total := 0
	for si := range f.shards {
		for lt, m := range f.shards[si].postings {
			if int(lt.Shard(shardBits)) != si {
				return fmt.Errorf("forest: tuple %016x stored in shard %d, routes to %d",
					uint64(lt), si, lt.Shard(shardBits))
			}
			wm := want[lt]
			if len(m) != len(wm) {
				return fmt.Errorf("forest: posting list size mismatch for one tuple")
			}
			for id, c := range m {
				if wm[id] != c {
					return fmt.Errorf("forest: posting count for tree %q is %d, want %d", id, c, wm[id])
				}
			}
			total++
		}
	}
	if total != len(want) {
		return fmt.Errorf("forest: %d posting keys, want %d", total, len(want))
	}
	if f.metric.built {
		if err := f.metricSelfCheckLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Match is one approximate-lookup result.
type Match struct {
	TreeID   string
	Distance float64
}

// Lookup returns every indexed tree whose pq-gram distance to the query
// tree is strictly below tau, sorted by ascending distance (ties by ID).
// This is the approximate lookup of §3.2: {T ∈ F | dist(X, T) < τ}.
func (f *Index) Lookup(query *tree.Tree, tau float64) []Match {
	return f.LookupIndex(profile.BuildIndex(query, f.pr), tau)
}

// LookupIndex is Lookup for a precomputed query index. The candidate
// strategy is a planner decision (see PlanMode in planner.go): by default
// the threshold-aware pruned path handles queries it can provably answer
// identically, and the exhaustive overlap accumulation covers the rest
// (τ ≥ 1, empty query bags, tiny collections).
func (f *Index) LookupIndex(q profile.Index, tau float64) []Match {
	m := f.obs.Load()
	var sp *obs.Span
	if m != nil {
		sp = m.col.StartTrace("forest.lookup")
	}
	out, _ := f.lookupIndexSpanned(q, tau, m, sp)
	sp.Finish()
	return out
}

// lookupIndexSpanned is the LookupIndex body with the trace span threaded
// through: the span (nil-safe) receives the plan decision and per-stage
// work attributes, and the chosen plan's name is returned for the explain
// API. Metric recording lives here too, so explained queries count like
// any other.
func (f *Index) lookupIndexSpanned(q profile.Index, tau float64, m *metrics, sp *obs.Span) ([]Match, string) {
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	qSize := q.Size()
	f.mu.RLock()
	defer f.mu.RUnlock()
	sp.SetAttr("q_size", int64(qSize))
	sp.SetAttr("trees", int64(len(f.trees)))
	var out []Match
	var plan string
	switch {
	case tau > 1:
		// Trees sharing no pq-gram (distance exactly 1) can qualify only
		// for thresholds above 1; scan the whole forest then.
		plan = planScanAll
		scan := sp.Child("scan")
		overlaps, scanned := f.overlapsLocked(q)
		f.tierOverlapsLocked(q, overlaps, m, sp)
		scan.SetAttr("postings_scanned", scanned)
		scan.SetAttr("candidates", int64(len(overlaps)))
		if m != nil {
			m.lookupCandidates.Add(int64(len(overlaps)))
		}
		for id, e := range f.trees {
			if d := distanceFrom(qSize, int(e.size.Load()), overlaps[id]); d < tau {
				out = append(out, Match{TreeID: id, Distance: d})
			}
		}
		sortMatches(out)
		scan.Finish()
	case f.usePrunedLocked(qSize, tau):
		plan = planPruned
		out = f.lookupPrunedLocked(q, qSize, tau, m, sp)
	default:
		plan = planExhaustive
		out = f.lookupExhaustiveLocked(q, qSize, tau, m, sp)
	}
	sp.SetAttr("plan", int64(planCode(plan)))
	sp.SetAttr("matches", int64(len(out)))
	if m != nil {
		m.lookups.Inc()
		m.lookupMatches.Add(int64(len(out)))
		m.lookupNS.ObserveSince(t0)
	}
	return out, plan
}

// lookupExhaustiveLocked accumulates the full overlap of every tree
// sharing at least one tuple with the query and scores them all — the
// reference lookup the pruned path must match. It requires f.mu held
// (read suffices) and tau ≤ 1.
//
//pqlint:locked f.mu:r
func (f *Index) lookupExhaustiveLocked(q profile.Index, qSize int, tau float64, m *metrics, sp *obs.Span) []Match {
	scan := sp.Child("scan")
	overlaps, scanned := f.overlapsLocked(q)
	f.tierOverlapsLocked(q, overlaps, m, sp)
	scan.SetAttr("postings_scanned", scanned)
	scan.SetAttr("candidates", int64(len(overlaps)))
	if m != nil {
		m.lookupCandidates.Add(int64(len(overlaps)))
	}
	var out []Match
	for id, ov := range overlaps {
		e := f.trees[id]
		if e == nil {
			// A tier answer can race a store-level Remove between the
			// registry removal and the tier's own bookkeeping; the
			// document is gone, so scoring it would resurrect it.
			continue
		}
		if d := distanceFrom(qSize, int(e.size.Load()), ov); d < tau {
			out = append(out, Match{TreeID: id, Distance: d})
		}
	}
	sortMatches(out)
	scan.Finish()
	return out
}

// LookupTop returns the k nearest trees by pq-gram distance (fewer if the
// forest is smaller), sorted by ascending distance. It is LookupTopK
// under the planner's candidate strategy; see metric.go.
func (f *Index) LookupTop(query *tree.Tree, k int) []Match {
	return f.LookupIndexTopK(profile.BuildIndex(query, f.pr), k)
}

// overlapsLocked accumulates |I(query) ∩ I(T)| per tree via the postings.
// It requires f.mu held (read suffices); the query tuples are grouped by
// shard so each stripe is locked once. The second result is the number of
// posting entries scanned — the scan stage's work attribute.
//
//pqlint:locked f.mu:r
func (f *Index) overlapsLocked(q profile.Index) (map[string]int, int64) {
	type tupleCount struct {
		lt profile.LabelTuple
		c  int
	}
	var byShard [numShards][]tupleCount
	for lt, qc := range q {
		si := lt.Shard(shardBits)
		byShard[si] = append(byShard[si], tupleCount{lt, qc})
	}
	ov := make(map[string]int)
	var scanned int64
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		s := &f.shards[si]
		s.mu.RLock()
		for _, tc := range byShard[si] {
			scanned += int64(len(s.postings[tc.lt]))
			for id, c := range s.postings[tc.lt] {
				if c < tc.c {
					ov[id] += c
				} else {
					ov[id] += tc.c
				}
			}
		}
		s.mu.RUnlock()
	}
	return ov, scanned
}

// Pair is one result of a similarity join: two indexed trees and their
// pq-gram distance, with A < B lexicographically.
type Pair struct {
	A, B     string
	Distance float64
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Distance != ps[j].Distance {
			return ps[i].Distance < ps[j].Distance
		}
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Distance returns the pq-gram distance between two indexed trees.
func (f *Index) Distance(id1, id2 string) (float64, error) {
	m := f.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
		defer func() {
			m.distOps.Inc()
			m.distNS.ObserveSince(t0)
		}()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	a, ok := f.trees[id1]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id1)
	}
	b, ok := f.trees[id2]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id2)
	}
	if id1 == id2 {
		return 0, nil
	}
	// Both bag locks are needed; take them in ID order (the global
	// multi-entry order) so concurrent distance queries cannot deadlock.
	if id2 < id1 {
		a, b = b, a
		id1, id2 = id2, id1
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	//pqlint:allow lockorder — two bag locks of one class, always in ascending tree-ID order (the global multi-entry order), so concurrent Distance calls cannot deadlock
	b.mu.RLock()
	defer b.mu.RUnlock()
	abag, err := f.bagOfLocked(id1, a)
	if err != nil {
		return 0, err
	}
	bbag, err := f.bagOfLocked(id2, b)
	if err != nil {
		return 0, err
	}
	return abag.Distance(bbag), nil
}

// DistanceTo returns the pq-gram distance between a query tree and one
// indexed tree.
func (f *Index) DistanceTo(query *tree.Tree, id string) (float64, error) {
	m := f.obs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
		defer func() {
			m.distOps.Inc()
			m.distNS.ObserveSince(t0)
		}()
	}
	q := profile.BuildIndex(query, f.pr)
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.trees[id]
	if !ok {
		return 0, fmt.Errorf("forest: tree %q not indexed", id)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	bag, err := f.bagOfLocked(id, e)
	if err != nil {
		return 0, err
	}
	return q.Distance(bag), nil
}

// distanceFrom is the shared scoring expression; it delegates to
// profile.DistanceFrom so the planner's pruning bounds provably evaluate
// the exact formula the scoring path does.
func distanceFrom(qSize, tSize, overlap int) float64 {
	return profile.DistanceFrom(qSize, tSize, overlap)
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return ms[i].TreeID < ms[j].TreeID
	})
}
