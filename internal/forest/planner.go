// Threshold-aware query planning for approximate lookups. The pq-gram
// distance gives hard algebraic bounds (profile.SizeWindow and
// profile.MinOverlap, derived from Definition 3): a candidate within
// threshold τ of the query must have a bag size inside a window around the
// query's, and must share at least o_min tuples with it. The pruned lookup
// path exploits both instead of accumulating the full overlap of every
// tree that shares even one posting:
//
//  1. Size filter — a candidate whose cached bag size falls outside the
//     window is rejected the first time a posting mentions it, before any
//     overlap is accumulated.
//  2. Rare-first traversal with early abandon — the query's tuples are
//     processed in ascending posting-list length; each candidate carries
//     (overlap so far, most the remaining tuples could add) and is dropped
//     the moment the sum falls below its o_min. Once the remaining tuples
//     cannot carry any new candidate past the bound, candidate generation
//     stops and the survivors are finished by probing their bags directly,
//     skipping the longest posting lists entirely.
//  3. Pooled scratch — the traversal state (tuple order, suffix bounds,
//     candidate accumulators) is reused across lookups, so the pruned path
//     allocates for the survivors, not for every posting it touches.
//
// Pruning decisions only ever evaluate the exact scoring expression
// (profile.DistanceFrom) at integer boundaries, so the pruned path returns
// byte-identical results to the exhaustive one; the differential tests in
// planner_test.go hold it to that.

package forest

import (
	"sort"
	"sync"

	"pqgram/internal/obs"
	"pqgram/internal/profile"
)

// PlanMode selects how Lookup, LookupMany and SimilarityJoin gather
// candidates. The zero value PlanAuto is the default.
type PlanMode int32

const (
	// PlanAuto picks the threshold-aware pruned path when the bounds can
	// pay for themselves — τ < 1, a non-empty query index, and at least
	// prunedMinTrees indexed — and the exhaustive path otherwise.
	PlanAuto PlanMode = iota
	// PlanExhaustive always accumulates the full overlap of every tree
	// sharing at least one tuple with the query (the pre-planner
	// behavior) and disables the join's size filter. Benchmarks and the
	// differential tests use it as the reference path.
	PlanExhaustive
	// PlanPruned uses the threshold-aware path whenever it is sound
	// (0 < τ ≤ 1 and a non-empty query index), regardless of collection
	// size.
	PlanPruned
	// PlanMetric answers top-k lookups through the VP-tree metric index
	// (metric.go), building it on first use; threshold lookups keep the
	// PlanAuto strategy. Results are identical in every mode.
	PlanMetric
)

// prunedMinTrees is the smallest collection for which PlanAuto chooses the
// pruned path; below it the exhaustive accumulation is already cheap and
// the planner's bound computations are pure overhead.
const prunedMinTrees = 16

// SetPlanMode selects the query-planning mode. It may be called at any
// time, including concurrently with lookups; in-flight operations keep the
// mode they observed at entry.
func (f *Index) SetPlanMode(mode PlanMode) { f.plan.Store(int32(mode)) }

// PlanMode returns the current query-planning mode.
func (f *Index) PlanMode() PlanMode { return PlanMode(f.plan.Load()) }

// usePrunedLocked is the planner decision for one lookup. It requires
// f.mu held (read suffices). The pruned path is sound only for τ ≤ 1
// (above that, trees sharing no tuple qualify and postings cannot
// enumerate them) and a non-empty query bag.
//
//pqlint:locked f.mu:r
func (f *Index) usePrunedLocked(qSize int, tau float64) bool {
	if tau <= 0 || tau > 1 || qSize == 0 {
		return false
	}
	switch f.PlanMode() {
	case PlanExhaustive:
		return false
	case PlanPruned:
		return true
	default:
		return tau < 1 && len(f.trees) >= prunedMinTrees
	}
}

// useMetricLocked is the planner decision for one top-k lookup (k > 0).
// It requires f.mu held (read suffices). PlanMetric forces the VP-tree,
// PlanExhaustive forbids it; PlanAuto and PlanPruned descend the tree
// when the collection is large enough to amortize the descent and k is a
// small fraction of it — for k near the collection size nearly every
// document is in the answer and the postings scan is already optimal.
// Once the metric index is built (and therefore paid for and maintained),
// the auto mode uses it for any k below the collection size.
//
//pqlint:locked f.mu:r
func (f *Index) useMetricLocked(k int) bool {
	switch f.PlanMode() {
	case PlanExhaustive:
		return false
	case PlanMetric:
		return true
	default:
		if f.metric.built {
			return k < len(f.trees)
		}
		return len(f.trees) >= metricMinTrees && k*metricKFactor <= len(f.trees)
	}
}

// queryTuple is one distinct label-tuple of the query during a pruned
// lookup: its multiplicity in the query bag and the length of its posting
// list at planning time.
type queryTuple struct {
	lt      profile.LabelTuple
	qc      int
	listLen int
}

// candState is the pruned path's per-candidate accumulator. ov < 0 marks a
// candidate that was rejected (size filter) or abandoned (overlap bound)
// and must not be touched again.
type candState struct {
	ov   int // overlap accumulated so far; -1 = dead
	need int // o_min for this candidate's size
	size int // cached bag size at first touch
}

// lookupScratch is the pooled per-query traversal state of the pruned
// path.
type lookupScratch struct {
	tuples  []queryTuple
	suffix  []int
	byShard [numShards][]int32
	cands   map[string]candState
}

var scratchPool = sync.Pool{
	New: func() any { return &lookupScratch{cands: make(map[string]candState)} },
}

func (sc *lookupScratch) release() {
	sc.tuples = sc.tuples[:0]
	sc.suffix = sc.suffix[:0]
	for i := range sc.byShard {
		sc.byShard[i] = sc.byShard[i][:0]
	}
	clear(sc.cands)
	scratchPool.Put(sc)
}

// lookupPrunedLocked is the threshold-aware lookup. It requires f.mu held
// (read suffices) and 0 < tau ≤ 1, qSize > 0. The result is identical to
// lookupExhaustiveLocked on the same index state. The span (nil-safe)
// receives a "generate" child covering the rare-first candidate
// generation — with the Def-3 size window and the loosest o_min bound as
// attributes — and a "verify" child covering the bag-probe finish.
//
//pqlint:locked f.mu:r
func (f *Index) lookupPrunedLocked(q profile.Index, qSize int, tau float64, m *metrics, sp *obs.Span) []Match {
	sc := scratchPool.Get().(*lookupScratch)
	defer sc.release()

	for lt, qc := range q {
		sc.tuples = append(sc.tuples, queryTuple{lt: lt, qc: qc})
	}
	// Read every posting-list length, one stripe lock per touched stripe.
	for i := range sc.tuples {
		si := sc.tuples[i].lt.Shard(shardBits)
		sc.byShard[si] = append(sc.byShard[si], int32(i))
	}
	for si := range sc.byShard {
		if len(sc.byShard[si]) == 0 {
			continue
		}
		s := &f.shards[si]
		s.mu.RLock()
		for _, ti := range sc.byShard[si] {
			sc.tuples[ti].listLen = len(s.postings[sc.tuples[ti].lt])
		}
		s.mu.RUnlock()
	}
	// Rare first: ascending posting-list length, ties broken by tuple
	// value so the traversal order is deterministic.
	sort.Slice(sc.tuples, func(i, j int) bool {
		if sc.tuples[i].listLen != sc.tuples[j].listLen {
			return sc.tuples[i].listLen < sc.tuples[j].listLen
		}
		return sc.tuples[i].lt < sc.tuples[j].lt
	})
	// suffix[i] = the most overlap tuples i.. could still contribute.
	n := len(sc.tuples)
	if cap(sc.suffix) < n+1 {
		sc.suffix = make([]int, n+1)
	} else {
		sc.suffix = sc.suffix[:n+1]
	}
	sc.suffix[n] = 0
	for i := n - 1; i >= 0; i-- {
		sc.suffix[i] = sc.suffix[i+1] + sc.tuples[i].qc
	}

	sizeLo, sizeHi := profile.SizeWindow(qSize, tau)
	// The loosest per-candidate bound over the window; once the remaining
	// tuples cannot reach even this, no new candidate can qualify.
	needMin := profile.MinOverlap(qSize, sizeLo, tau)
	var examined, prunedSize, abandonGen, abandonVerify int64
	var scanned int64

	// Phase 1 — candidate generation over the rarest posting lists.
	gen := sp.Child("generate")
	verifyFrom := n
	for i := 0; i < n; i++ {
		if sc.suffix[i] < needMin {
			verifyFrom = i
			break
		}
		t := &sc.tuples[i]
		if t.listLen == 0 {
			continue
		}
		s := f.shardOf(t.lt)
		s.mu.RLock()
		scanned += int64(len(s.postings[t.lt]))
		for id, c := range s.postings[t.lt] {
			st, seen := sc.cands[id]
			if seen && st.ov < 0 {
				continue
			}
			if !seen {
				size := int(f.trees[id].size.Load())
				if size < sizeLo || size > sizeHi {
					sc.cands[id] = candState{ov: -1}
					prunedSize++
					continue
				}
				st = candState{size: size, need: profile.MinOverlap(qSize, size, tau)}
			}
			if c > t.qc {
				c = t.qc
			}
			st.ov += c
			if st.ov+sc.suffix[i+1] < st.need {
				st.ov = -1
				abandonGen++
			}
			sc.cands[id] = st
		}
		s.mu.RUnlock()
	}
	gen.SetAttr("distinct_tuples", int64(n))
	gen.SetAttr("postings_scanned", scanned)
	gen.SetAttr("size_lo", int64(sizeLo))
	gen.SetAttr("size_hi", int64(sizeHi))
	gen.SetAttr("o_min", int64(needMin))
	gen.SetAttr("verify_from", int64(verifyFrom))
	gen.SetAttr("pruned_size", prunedSize)
	gen.SetAttr("pruned_abandon", abandonGen)
	gen.Finish()

	// Phase 2 — finish the survivors against their bags, skipping the
	// longest posting lists; abandon as soon as the bound closes.
	verify := sp.Child("verify")
	var out []Match
	for id, st := range sc.cands {
		if st.ov < 0 {
			continue
		}
		ov := st.ov
		if verifyFrom < n {
			e := f.trees[id]
			e.mu.RLock()
			for j := verifyFrom; j < n; j++ {
				if ov+sc.suffix[j] < st.need {
					ov = -1
					break
				}
				if c := e.idx[sc.tuples[j].lt]; c > 0 {
					if c > sc.tuples[j].qc {
						c = sc.tuples[j].qc
					}
					ov += c
				}
			}
			e.mu.RUnlock()
			if ov < 0 {
				abandonVerify++
				continue
			}
		}
		// Only candidates that make it here are fully scored; size-killed
		// and abandoned ones land in their own counters, so the three
		// buckets partition every candidate the traversal touched.
		examined++
		if d := distanceFrom(qSize, st.size, ov); d < tau {
			out = append(out, Match{TreeID: id, Distance: d})
		}
	}
	verify.SetAttr("candidates", examined)
	verify.SetAttr("pruned_abandon", abandonVerify)
	verify.Finish()

	// Phase 3 — storage-tier candidates (tier.go). The tier accumulates
	// full overlaps on its own (with bloom-filter skip per segment), so
	// they need no generate/verify phases: only the Def-3 size filter and
	// the final scoring, exactly what the exhaustive path applies to them.
	if f.tier != nil {
		tov := make(map[string]int)
		f.tierOverlapsLocked(q, tov, m, sp)
		for id, ov := range tov {
			e := f.trees[id]
			if e == nil {
				continue // racing store-level removal; the document is gone
			}
			size := int(e.size.Load())
			if size < sizeLo || size > sizeHi {
				prunedSize++
				continue
			}
			examined++
			if d := distanceFrom(qSize, size, ov); d < tau {
				out = append(out, Match{TreeID: id, Distance: d})
			}
		}
	}
	sortMatches(out)
	if m != nil {
		m.lookupCandidates.Add(examined)
		m.lookupPrunedSize.Add(prunedSize)
		m.lookupPrunedAbandon.Add(abandonGen + abandonVerify)
	}
	return out
}
