// Tests for the mutation epoch — the counter the serving tier's result
// cache keys its entries on. The contract (see Index.Epoch): every
// completed mutation advances the epoch, it is monotone under
// concurrency, and delta applications bump it on both sides of the
// change so a lookup bracketed by an unchanged epoch cannot have raced a
// completed mutation.

package forest_test

import (
	"fmt"
	"sync"
	"testing"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/tree"

	"math/rand"
)

// TestEpochAdvancesOnEveryMutation pins that each mutating entry point
// moves the epoch and that read-only operations do not.
func TestEpochAdvancesOnEveryMutation(t *testing.T) {
	f := forest.New(p33)
	e0 := f.Epoch()
	if e0 != 0 {
		t.Fatalf("fresh index epoch = %d, want 0", e0)
	}

	step := func(name string, mutate bool, op func() error) {
		t.Helper()
		before := f.Epoch()
		if err := op(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		after := f.Epoch()
		if mutate && after <= before {
			t.Fatalf("%s: epoch %d -> %d, want an advance", name, before, after)
		}
		if !mutate && after != before {
			t.Fatalf("%s: epoch %d -> %d, want unchanged", name, before, after)
		}
	}

	doc := tree.MustParse("a(b(c) d)")
	step("Add", true, func() error { return f.Add("t1", doc) })
	step("Put", true, func() error { f.Put("t2", tree.MustParse("a(x y)")); return nil })
	step("Lookup", false, func() error { f.Lookup(doc, 0.8); return nil })
	step("LookupTopK", false, func() error { f.LookupTopK(doc, 2); return nil })

	// Update through the incremental path (delta application).
	rng := rand.New(rand.NewSource(7))
	working := gen.DBLP(1, 60)
	step("Add working", true, func() error { return f.Add("t3", working) })
	_, log, err := gen.RandomScript(rng, working, 4, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Epoch()
	if _, err := f.Update("t3", working, log); err != nil {
		t.Fatal(err)
	}
	if after := f.Epoch(); after < before+2 {
		t.Fatalf("Update: epoch %d -> %d, want a bump on both sides (>= +2)", before, after)
	}

	step("Remove", true, func() error { return f.Remove("t1") })

	// Failed mutations of unknown trees must not be able to un-advance
	// or freeze the epoch for subsequent real mutations.
	if err := f.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown tree succeeded")
	}
	step("Add after failed remove", true, func() error { return f.Add("t4", doc) })
}

// TestEpochBulkBuild: AddAll advances the epoch at least once per added
// document, so a cache keyed on the pre-build epoch cannot survive it.
func TestEpochBulkBuild(t *testing.T) {
	f := forest.New(p33)
	docs := make([]forest.Doc, 20)
	for i := range docs {
		docs[i] = forest.Doc{ID: fmt.Sprintf("d%02d", i), Tree: gen.DBLP(int64(i), 40)}
	}
	before := f.Epoch()
	if err := f.AddAll(docs, 4); err != nil {
		t.Fatal(err)
	}
	if after := f.Epoch(); after < before+uint64(len(docs)) {
		t.Fatalf("AddAll(%d docs): epoch %d -> %d, want >= +%d", len(docs), before, after, len(docs))
	}
}

// TestEpochSeqlockBracket is the property the serving tier's cache relies
// on: with a writer continuously applying deltas, a reader that observes
// the same epoch before and after copying a document's bag must have seen
// a bag identical to one of the committed states — never a torn one. The
// committed states here alternate a tuple's count between two values, so
// a torn read is detectable.
func TestEpochSeqlockBracket(t *testing.T) {
	f := forest.New(p33)
	base := gen.DBLP(3, 80)
	if err := f.Add("doc", base); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	working := base

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, log, err := gen.RandomScript(rng, working, 3, gen.DefaultMix)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Update("doc", working, log); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var last uint64
	brackets := 0
	for i := 0; i < 2000; i++ {
		e1 := f.Epoch()
		if e1 < last {
			t.Fatalf("epoch moved backwards: %d after %d", e1, last)
		}
		last = e1
		size, _, ok := f.TreeStats("doc")
		e2 := f.Epoch()
		if !ok {
			t.Fatal("doc vanished")
		}
		if e1 == e2 {
			brackets++
			// An unchanged epoch brackets a quiescent window; the size
			// read inside it must match a re-read that also brackets.
			size2, _, _ := f.TreeStats("doc")
			if e3 := f.Epoch(); e3 == e1 && size2 != size {
				t.Fatalf("two reads under epoch %d disagree: %d vs %d", e1, size, size2)
			}
		}
	}
	close(stop)
	wg.Wait()
	if brackets == 0 {
		t.Log("no quiescent bracket observed (heavily loaded scheduler); monotonicity still verified")
	}
	if err := f.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
