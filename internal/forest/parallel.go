// Parallel entry points of the forest index: bulk build over a worker
// pool, a fan-out similarity join, and batched lookups. All of them are
// deterministic — the same inputs produce identical results at any worker
// count — so callers can scale with GOMAXPROCS without changing behavior.

package forest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// Doc is one named document of a bulk build.
type Doc struct {
	ID   string
	Tree *tree.Tree
}

// normWorkers clamps a worker count: values below 1 mean "use every CPU".
func normWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// BuildIndexes profiles the documents concurrently on a pool of workers
// and returns one pq-gram index per document, in input order. Profiling is
// the expensive phase of a bulk build (O(document) per tree), so this is
// where the parallelism pays; the forest itself is not touched.
func BuildIndexes(docs []Doc, pr profile.Params, workers int) []profile.Index {
	workers = normWorkers(workers)
	if workers > len(docs) {
		workers = len(docs)
	}
	bags := make([]profile.Index, len(docs))
	if workers <= 1 {
		for i, d := range docs {
			bags[i] = profile.BuildIndex(d.Tree, pr)
		}
		return bags
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				bags[i] = profile.BuildIndex(docs[i].Tree, pr)
			}
		}()
	}
	wg.Wait()
	return bags
}

// AddAll bulk-indexes the documents: trees are profiled concurrently on a
// worker pool, then merged into the sharded postings with one worker per
// stripe. If any ID is already indexed or appears twice in the batch, the
// whole batch is rejected and the forest is unchanged. workers < 1 means
// GOMAXPROCS.
func (f *Index) AddAll(docs []Doc, workers int) error {
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	return f.AddIndexes(ids, BuildIndexes(docs, f.pr, workers), workers)
}

// AddIndexes bulk-indexes precomputed bags (e.g. from BuildIndexes or a
// snapshot loader) under the given IDs. The bags are owned by the forest
// afterwards. The merge into the postings runs with one worker per shard
// stripe; because the stripes partition the tuple space, the workers never
// contend and the result is identical to a serial merge.
func (f *Index) AddIndexes(ids []string, bags []profile.Index, workers int) error {
	if len(ids) != len(bags) {
		return fmt.Errorf("forest: %d ids for %d bags", len(ids), len(bags))
	}
	workers = normWorkers(workers)
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := f.trees[id]; ok {
			return fmt.Errorf("forest: tree %q already indexed", id)
		}
		if seen[id] {
			return fmt.Errorf("forest: tree %q appears twice in batch", id)
		}
		seen[id] = true
	}
	for i, id := range ids {
		e := &treeEntry{idx: bags[i]}
		e.size.Store(int64(bags[i].Size()))
		f.trees[id] = e
		f.metric.add(id, bags[i])
	}
	// One epoch advance per added document, matching the serial path, so
	// result caches see the same invalidation cadence either way.
	f.epoch.Add(uint64(len(ids)))
	if m := f.obs.Load(); m != nil {
		m.bulkOps.Inc()
		m.adds.Add(int64(len(ids)))
	}
	if workers == 1 || len(bags) == 1 {
		// Serial fast path: merge directly, no bucketing pass.
		for i, id := range ids {
			for lt, c := range bags[i] {
				f.shardOf(lt).add(lt, id, c)
			}
		}
		return nil
	}
	// Bucket each bag's tuples by shard (parallel over docs), then merge
	// (parallel over shards). Each merge worker owns a disjoint set of
	// stripes, so no shard locking is needed under the registry write
	// lock.
	type postDelta struct {
		lt profile.LabelTuple
		c  int
	}
	buckets := make([][numShards][]postDelta, len(bags))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bags) {
					return
				}
				for lt, c := range bags[i] {
					si := lt.Shard(shardBits)
					buckets[i][si] = append(buckets[i][si], postDelta{lt, c})
				}
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := w; si < numShards; si += workers {
				s := &f.shards[si]
				for i := range buckets {
					for _, pd := range buckets[i][si] {
						s.add(pd.lt, ids[i], pd.c)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// LookupMany runs one approximate lookup per query concurrently and
// returns the result slices in query order. Each element equals what
// Lookup would return for that query. workers < 1 means GOMAXPROCS.
func (f *Index) LookupMany(queries []*tree.Tree, tau float64, workers int) [][]Match {
	workers = normWorkers(workers)
	if workers > len(queries) {
		workers = len(queries)
	}
	m := f.obs.Load()
	if m != nil {
		m.batchLookups.Inc()
		m.poolDepth.Set(int64(len(queries)))
	}
	out := make([][]Match, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = f.Lookup(queries[i], tau)
				if m != nil {
					// Remaining unclaimed work = the pool's queue depth.
					if d := int64(len(queries)) - next.Load(); d >= 0 {
						m.poolDepth.Set(d)
					} else {
						m.poolDepth.Set(0)
					}
				}
			}
		}()
	}
	wg.Wait()
	if m != nil {
		m.poolDepth.Set(0)
	}
	return out
}

// SimilarityJoin returns every unordered pair of indexed trees whose
// pq-gram distance is strictly below tau — the approximate join of the
// paper's related work (Guha et al.), powered by the index: candidate
// pairs are generated from the inverted postings (only trees sharing at
// least one pq-gram can have distance < 1), so disjoint pairs are never
// scored. Results are sorted by distance, then IDs. The join fans out
// across GOMAXPROCS workers; use SimilarityJoinWorkers to pick the width.
//
// For tau > 1 every pair qualifies and the join degenerates to all pairs.
func (f *Index) SimilarityJoin(tau float64) []Pair {
	return f.SimilarityJoinWorkers(tau, 0)
}

// SimilarityJoinWorkers is SimilarityJoin with an explicit worker count
// (< 1 means GOMAXPROCS). The result is identical at every worker count.
func (f *Index) SimilarityJoinWorkers(tau float64, workers int) (pairs []Pair) {
	workers = normWorkers(workers)
	var prunedPairs atomic.Int64
	var sp *obs.Span
	if m := f.obs.Load(); m != nil {
		sp = m.col.StartTrace("forest.join")
		t0 := time.Now()
		defer func() {
			sp.SetAttr("pairs", int64(len(pairs)))
			sp.SetAttr("pruned_size", prunedPairs.Load())
			sp.Finish()
			m.joins.Inc()
			m.joinPairs.Add(int64(len(pairs)))
			m.joinPrunedSize.Add(prunedPairs.Load())
			m.joinNS.ObserveSince(t0)
		}()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	sp.SetAttr("trees", int64(len(f.trees)))
	sp.SetAttr("workers", int64(workers))
	if tau > 1 {
		return f.joinAllPairsLocked(tau, workers)
	}
	// Candidate generation is a map-reduce over the postings stripes:
	// accumulators sweep disjoint stripes summing per-pair overlaps,
	// partitioned by the first ID's hash (computed once per posting row);
	// reducers own disjoint pair partitions, merge the per-worker
	// fragments and score them. Overlap counts are integers, so the
	// grouping order cannot change any result.
	//
	// Unless the planner is PlanExhaustive, pair emission applies the
	// size filter of planner.go: a pair whose bag sizes cannot be within
	// tau even at maximal overlap never enters an accumulator. The filter
	// evaluates the exact scoring expression, so the surviving pairs —
	// and therefore the join result — are identical with it on or off.
	type pairKey struct{ a, b string }
	filter := f.PlanMode() != PlanExhaustive
	sizes := make(map[string]int, len(f.trees))
	for id, e := range f.trees {
		sizes[id] = int(e.size.Load())
	}
	// Pairs with at least one evicted member come from a sequential sweep
	// of the storage tier's posting lists (tier.go); the stripe sweep
	// below covers exactly the resident×resident pairs, so the union is
	// every candidate pair once.
	tierPairs, tierPruned := f.joinTierPairsLocked(tau, sizes, filter)
	prunedPairs.Add(tierPruned)
	score := func(total map[pairKey]int, out []Pair) []Pair {
		for k, ov := range total {
			if d := distanceFrom(sizes[k.a], sizes[k.b], ov); d < tau {
				//pqlint:allow detcheck joinAllPairsLocked sortPairs-es the merged result before returning
				out = append(out, Pair{A: k.a, B: k.b, Distance: d})
			}
		}
		return out
	}
	accumulate := func(from, stride int, emit func(part int, k pairKey, ov int)) {
		var ids []string
		var part []int
		var szs []int
		pruned := int64(0)
		for si := from; si < numShards; si += stride {
			s := &f.shards[si]
			s.mu.RLock()
			for _, m := range s.postings {
				if len(m) < 2 {
					continue
				}
				ids = ids[:0]
				for id := range m {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				part = part[:0]
				szs = szs[:0]
				for _, id := range ids {
					part = append(part, idPart(id, workers))
					szs = append(szs, sizes[id])
				}
				for i := 0; i < len(ids); i++ {
					for j := i + 1; j < len(ids); j++ {
						if filter {
							maxOv := szs[i]
							if szs[j] < maxOv {
								maxOv = szs[j]
							}
							if distanceFrom(szs[i], szs[j], maxOv) >= tau {
								pruned++
								continue
							}
						}
						ov := m[ids[i]]
						if c := m[ids[j]]; c < ov {
							ov = c
						}
						emit(part[i], pairKey{ids[i], ids[j]}, ov)
					}
				}
			}
			s.mu.RUnlock()
		}
		prunedPairs.Add(pruned)
	}
	if workers == 1 {
		// Serial fast path: one accumulator map, no shuffle.
		total := make(map[pairKey]int)
		accumulate(0, 1, func(_ int, k pairKey, ov int) { total[k] += ov })
		out := append(score(total, nil), tierPairs...)
		sortPairs(out)
		return out
	}
	parts := make([][]map[pairKey]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]map[pairKey]int, workers)
			for i := range local {
				local[i] = make(map[pairKey]int)
			}
			accumulate(w, workers, func(part int, k pairKey, ov int) { local[part][k] += ov })
			parts[w] = local
		}(w)
	}
	wg.Wait()
	outs := make([][]Pair, workers)
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			total := parts[0][r]
			for w := 1; w < workers; w++ {
				for k, v := range parts[w][r] {
					total[k] += v
				}
			}
			outs[r] = score(total, nil)
		}(r)
	}
	wg.Wait()
	var out []Pair
	for _, o := range outs {
		out = append(out, o...)
	}
	out = append(out, tierPairs...)
	sortPairs(out)
	return out
}

// joinAllPairsLocked scores every pair directly; it requires f.mu held
// (read suffices). Rows are strided across workers; bag read locks are
// taken in ascending ID order, the global multi-entry order. Evicted
// bags are prefetched from the storage tier once up front — the all-pairs
// join reads every bag O(n) times, and tier fetches are positioned disk
// reads.
//
//pqlint:locked f.mu:r
func (f *Index) joinAllPairsLocked(tau float64, workers int) []Pair {
	ids := f.idsLocked()
	var tierBags map[string]profile.Index
	if f.tier != nil {
		tierBags = make(map[string]profile.Index)
		for _, id := range ids {
			//pqlint:allow lockcheck only the pointer's nil-ness is read; the pointer swaps only under the registry write lock, which f.mu:r excludes
			if f.trees[id].idx == nil {
				if bag, ok := f.tier.Bag(id); ok {
					tierBags[id] = bag
				}
			}
		}
	}
	bagOf := func(id string, e *treeEntry) profile.Index {
		if e.idx != nil { //pqlint:allow lockcheck every caller holds e.mu read-locked around the call, which excludes delta application
			return e.idx
		}
		return tierBags[id]
	}
	outs := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []Pair
			for i := w; i < len(ids); i += workers {
				a := f.trees[ids[i]]
				a.mu.RLock()
				abag := bagOf(ids[i], a)
				for j := i + 1; j < len(ids); j++ {
					b := f.trees[ids[j]]
					//pqlint:allow lockorder two bag locks of one class, taken in ascending tree-ID order (the global multi-entry order), so workers cannot deadlock
					b.mu.RLock()
					d := abag.Distance(bagOf(ids[j], b))
					b.mu.RUnlock()
					if d < tau {
						out = append(out, Pair{A: ids[i], B: ids[j], Distance: d})
					}
				}
				a.mu.RUnlock()
			}
			outs[w] = out
		}(w)
	}
	wg.Wait()
	var out []Pair
	for _, o := range outs {
		out = append(out, o...)
	}
	sortPairs(out)
	return out
}

// idPart routes a tree ID to one of n reduce partitions (FNV-1a). Pairs
// are partitioned by their first ID so the hash is computed once per
// posting row, not once per pair; any deterministic function of the pair
// keeps the join exact, the choice only balances the reducers.
func idPart(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % uint32(n))
}
