package profile_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pqgram/internal/edit"
	"pqgram/internal/fingerprint"
	"pqgram/internal/paperfix"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

var p33 = profile.Params{P: 3, Q: 3}

func TestParamsValidate(t *testing.T) {
	for _, pr := range []profile.Params{{0, 1}, {1, 0}, {-1, 3}, {3, -1}} {
		if pr.Validate() == nil {
			t.Errorf("Params%v validated", pr)
		}
	}
	for _, pr := range []profile.Params{{1, 1}, {2, 3}, {3, 3}, {1, 2}} {
		if err := pr.Validate(); err != nil {
			t.Errorf("Params%v rejected: %v", pr, err)
		}
	}
	if profile.Default != (profile.Params{P: 3, Q: 3}) {
		t.Error("Default should be 3,3")
	}
}

// TestExample1Count verifies "The total number of pq-grams of T0 is 13".
func TestExample1Count(t *testing.T) {
	t0 := paperfix.T0()
	prof := profile.Build(t0, p33)
	if len(prof) != 13 {
		t.Fatalf("|P0| = %d, want 13", len(prof))
	}
	if c := profile.Count(t0, p33); c != 13 {
		t.Fatalf("Count = %d, want 13", c)
	}
}

// TestExample1Grams verifies the two pq-grams g1, g2 shown in Figure 3.
func TestExample1Grams(t *testing.T) {
	t0 := paperfix.T0()
	prof := profile.Build(t0, p33)
	g1 := paperfix.GramOf(0, 0, 1, 4, 0, 0) // (•,•,n1,n4,•,•)
	g2 := paperfix.GramOf(1, 3, 5, 0, 0, 0) // (n1,n3,n5,•,•,•)
	if _, ok := prof[g1.Key()]; !ok {
		t.Error("g1 of Example 1 missing from profile")
	}
	if _, ok := prof[g2.Key()]; !ok {
		t.Error("g2 of Example 1 missing from profile")
	}
	if g1.Anchor(p33).ID != 1 {
		t.Errorf("g1 anchor = %d, want 1", g1.Anchor(p33).ID)
	}
	if g2.Anchor(p33).ID != 5 {
		t.Errorf("g2 anchor = %d, want 5", g2.Anchor(p33).ID)
	}
}

// TestExample2Profiles verifies the full listed profiles P0 and P2.
func TestExample2Profiles(t *testing.T) {
	t0 := paperfix.T0()
	if got, want := profile.Build(t0, p33), paperfix.ProfileT0(); !got.Equal(want) {
		t.Errorf("P0 mismatch:\n got  %d grams\n want %d grams", len(got), len(want))
	}
	t2, _ := paperfix.T2()
	if got, want := profile.Build(t2, p33), paperfix.ProfileT2(); !got.Equal(want) {
		t.Errorf("P2 mismatch: got %d grams, want %d", len(got), len(want))
	}
}

// TestExample5Deltas verifies Δ2⁺ = P2 \ P0 and Δ2⁻ = P0 \ P2 computed by
// brute-force profile difference (Definition 6 with C2 = P0 ∩ P1 ∩ P2; here
// the diffs of first and last profile coincide with the listed deltas).
func TestExample5BruteForceDeltas(t *testing.T) {
	t0 := paperfix.T0()
	t2, _ := paperfix.T2()
	p0 := profile.Build(t0, p33)
	p2 := profile.Build(t2, p33)

	// For this example the intermediate tree T1 only adds pq-grams around
	// n7, so P2\P0 and P0\P2 match the paper's Δ sets exactly.
	if got, want := p2.Diff(p0), paperfix.DeltaPlus2(); !got.Equal(want) {
		t.Errorf("P2\\P0 has %d grams, want %d", len(got), len(want))
	}
	if got, want := p0.Diff(p2), paperfix.DeltaMinus2(); !got.Equal(want) {
		t.Errorf("P0\\P2 has %d grams, want %d", len(got), len(want))
	}
}

// TestExample5LambdaSets verifies the label-tuple images λ(Δ2⁻), λ(Δ2⁺).
func TestExample5LambdaSets(t *testing.T) {
	if got, want := paperfix.DeltaMinus2().Index(), paperfix.LambdaDeltaMinus2(); !got.Equal(want) {
		t.Errorf("λ(Δ2⁻) mismatch")
	}
	if got, want := paperfix.DeltaPlus2().Index(), paperfix.LambdaDeltaPlus2(); !got.Equal(want) {
		t.Errorf("λ(Δ2⁺) mismatch")
	}
}

// TestExample3DuplicateTuple verifies that the label-tuple (*,a,c,*,*,*)
// occurs twice in the index of T0 (pq-grams anchored at n2 and n4), the
// cnt=2 row of Figure 4.
func TestExample3DuplicateTuple(t *testing.T) {
	idx := profile.BuildIndex(paperfix.T0(), p33)
	lt := profile.TupleOfLabels("*", "a", "c", "*", "*", "*")
	if idx[lt] != 2 {
		t.Fatalf("count of (*,a,c,*,*,*) = %d, want 2", idx[lt])
	}
	if idx.Size() != 13 {
		t.Fatalf("index size = %d, want 13", idx.Size())
	}
	if idx.Distinct() != 12 {
		t.Fatalf("distinct tuples = %d, want 12", idx.Distinct())
	}
}

func TestSingleNodeProfile(t *testing.T) {
	tr := tree.New("x")
	for _, pr := range []profile.Params{{1, 1}, {2, 2}, {3, 3}, {1, 4}} {
		prof := profile.Build(tr, pr)
		if len(prof) != 1 {
			t.Fatalf("params %v: |P| = %d, want 1", pr, len(prof))
		}
		for _, g := range prof {
			if len(g) != pr.Len() {
				t.Fatalf("gram length %d, want %d", len(g), pr.Len())
			}
			if g.Anchor(pr).ID != 1 {
				t.Fatalf("anchor should be the root")
			}
			for i, r := range g {
				if i == pr.P-1 {
					continue
				}
				if r != profile.NullRef {
					t.Fatalf("position %d should be null", i)
				}
			}
		}
	}
}

func TestCountFormulaMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		tr := randomTree(rng, 1+rng.Intn(120))
		for _, pr := range []profile.Params{{1, 1}, {1, 2}, {2, 2}, {3, 3}, {2, 4}, {4, 2}} {
			prof := profile.Build(tr, pr)
			if got, want := len(prof), profile.Count(tr, pr); got != want {
				t.Fatalf("iteration %d params %v: enumerated %d, formula %d", i, pr, got, want)
			}
		}
	}
}

func TestProfileSetOps(t *testing.T) {
	a := profile.Build(paperfix.T0(), p33)
	t2, _ := paperfix.T2()
	b := profile.Build(t2, p33)
	inter := a.Intersect(b)
	union := a.Union(b)
	diffAB := a.Diff(b)
	diffBA := b.Diff(a)
	if len(inter)+len(diffAB) != len(a) {
		t.Error("intersect + diff != a")
	}
	if len(union) != len(a)+len(diffBA) {
		t.Error("union size wrong")
	}
	for k := range inter {
		if _, ok := a[k]; !ok {
			t.Fatal("intersection not subset of a")
		}
		if _, ok := b[k]; !ok {
			t.Fatal("intersection not subset of b")
		}
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal misbehaves")
	}
}

func TestIndexAddSub(t *testing.T) {
	idx := make(profile.Index)
	lt := profile.TupleOfLabels("a", "b")
	idx.Add(lt)
	idx.Add(lt)
	if idx.Size() != 2 || idx.Distinct() != 1 {
		t.Fatal("add counting wrong")
	}
	if err := idx.Sub(lt); err != nil {
		t.Fatal(err)
	}
	if idx[lt] != 1 {
		t.Fatal("sub did not decrement")
	}
	if err := idx.Sub(lt); err != nil {
		t.Fatal(err)
	}
	if idx.Distinct() != 0 {
		t.Fatal("tuple with count 0 should be removed")
	}
	if err := idx.Sub(lt); err == nil {
		t.Fatal("underflow not detected")
	}
}

func TestIndexCloneEqual(t *testing.T) {
	idx := profile.BuildIndex(paperfix.T0(), p33)
	cl := idx.Clone()
	if !idx.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.Add(profile.TupleOfLabels("z"))
	if idx.Equal(cl) {
		t.Fatal("clone aliased")
	}
	cl2 := idx.Clone()
	lt := profile.TupleOfLabels("*", "a", "c", "*", "*", "*")
	cl2[lt] = 99
	if idx.Equal(cl2) {
		t.Fatal("Equal must compare multiplicities")
	}
}

func TestDistanceIdentical(t *testing.T) {
	tr := paperfix.T0()
	if d := profile.Distance(tr, tr.Clone(), p33); d != 0 {
		t.Fatalf("distance to identical tree = %g, want 0", d)
	}
}

func TestDistanceDisjoint(t *testing.T) {
	a := tree.MustParse("a(b c)")
	b := tree.MustParse("x(y z)")
	if d := profile.Distance(a, b, p33); d != 1 {
		t.Fatalf("distance of label-disjoint trees = %g, want 1", d)
	}
}

func TestDistanceEmptyIndexes(t *testing.T) {
	var a, b profile.Index
	if d := a.Distance(b); d != 0 {
		t.Fatalf("distance of empty indexes = %g, want 0", d)
	}
}

func TestDistanceSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := randomTree(rng, 1+rng.Intn(60))
		b := randomTree(rng, 1+rng.Intn(60))
		ia := profile.BuildIndex(a, p33)
		ib := profile.BuildIndex(b, p33)
		dab := ia.Distance(ib)
		dba := ib.Distance(ia)
		if dab != dba {
			t.Fatalf("asymmetric: %g vs %g", dab, dba)
		}
		if dab < 0 || dab > 1 || math.IsNaN(dab) {
			t.Fatalf("distance out of range: %g", dab)
		}
	}
}

func TestDistanceDecreasesWithSmallEdit(t *testing.T) {
	// An edited tree should be closer to the original than an unrelated one.
	rng := rand.New(rand.NewSource(9))
	orig := randomTree(rng, 80)
	edited := orig.Clone()
	leaf := edited.Leaves()[0]
	if _, err := edit.Ren(leaf.ID(), "renamed-once").Apply(edited); err != nil {
		t.Fatal(err)
	}
	unrelated := tree.MustParse("q(w e r t y)")
	dEdit := profile.Distance(orig, edited, p33)
	dFar := profile.Distance(orig, unrelated, p33)
	if dEdit <= 0 {
		t.Fatalf("edited tree distance = %g, want > 0", dEdit)
	}
	if dEdit >= dFar {
		t.Fatalf("edited distance %g not smaller than unrelated %g", dEdit, dFar)
	}
}

func TestLabelTupleSensitivity(t *testing.T) {
	// The tuple fingerprint must distinguish order, content and length.
	a := profile.TupleOfLabels("a", "b", "c")
	if a != profile.TupleOfLabels("a", "b", "c") {
		t.Fatal("tuple fingerprint not deterministic")
	}
	distinct := []profile.LabelTuple{
		a,
		profile.TupleOfLabels("a", "c", "b"),
		profile.TupleOfLabels("c", "b", "a"),
		profile.TupleOfLabels("a", "b"),
		profile.TupleOfLabels("a", "b", "c", "*"),
		profile.TupleOfLabels("*", "a", "b", "c"),
		profile.TupleOfLabels("a", "b", "*"),
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if distinct[i] == distinct[j] {
				t.Fatalf("tuples %d and %d collide", i, j)
			}
		}
	}
}

func TestGramKeyDistinguishesIDs(t *testing.T) {
	// Equal labels, different node IDs: profiles must distinguish them.
	a := paperfix.GramOf(0, 0, 1, 2, 3, 4)
	h := fingerprint.Of
	b := profile.Gram{
		profile.NullRef, profile.NullRef,
		{ID: 1, Label: h("a")}, {ID: 9, Label: h("c")},
		{ID: 3, Label: h("b")}, {ID: 4, Label: h("c")},
	}
	if a.Key() == b.Key() {
		t.Fatal("keys should differ for different IDs")
	}
	if a.LabelTuple() != b.LabelTuple() {
		t.Fatal("label tuples should match for equal labels")
	}
}

func TestForEachGramBufferReuseSafe(t *testing.T) {
	// Build copies grams; two consecutive builds must agree.
	tr := paperfix.T0()
	p1 := profile.Build(tr, p33)
	p2 := profile.Build(tr, p33)
	if !p1.Equal(p2) {
		t.Fatal("repeated builds disagree")
	}
}

func TestQuickProfileIndexConsistency(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, int(sz%100)+1)
		prof := profile.Build(tr, p33)
		return prof.Index().Equal(profile.BuildIndex(tr, p33))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectBound(t *testing.T) {
	f := func(s1, s2 int64) bool {
		rng1 := rand.New(rand.NewSource(s1))
		rng2 := rand.New(rand.NewSource(s2))
		a := profile.BuildIndex(randomTree(rng1, 40), p33)
		b := profile.BuildIndex(randomTree(rng2, 40), p33)
		i := a.IntersectSize(b)
		return i >= 0 && i <= a.Size() && i <= b.Size() &&
			a.UnionSize(b) == a.Size()+b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, n int) *tree.Tree {
	labels := []string{"a", "b", "c", "d", "e", "f"}
	tr := tree.New(labels[rng.Intn(len(labels))])
	nodes := []*tree.Node{tr.Root()}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		pos := rng.Intn(parent.Fanout()+1) + 1
		c := tr.AddChildAt(parent, labels[rng.Intn(len(labels))], pos)
		nodes = append(nodes, c)
	}
	return tr
}

// TestShardRouting: the shard hash stays in range, is deterministic, and
// spreads the tuples of a real document across stripes well enough that a
// lock-striped index actually stripes (no stripe hoards more than a few
// times its fair share).
func TestShardRouting(t *testing.T) {
	const bits = 5
	rng := rand.New(rand.NewSource(7))
	idx := profile.BuildIndex(randomTestTree(rng, 600), p33)
	if len(idx) < 200 {
		t.Fatalf("fixture too small: %d distinct tuples", len(idx))
	}
	counts := make([]int, 1<<bits)
	for lt := range idx {
		s := lt.Shard(bits)
		if s >= 1<<bits {
			t.Fatalf("Shard(%d) = %d out of range", bits, s)
		}
		if s != lt.Shard(bits) {
			t.Fatal("Shard not deterministic")
		}
		counts[s]++
	}
	fair := len(idx) / (1 << bits)
	for s, c := range counts {
		if c > 4*fair+8 {
			t.Fatalf("shard %d holds %d of %d tuples (fair share %d)", s, c, len(idx), fair)
		}
	}
}

// randomTestTree builds a random labeled tree of n nodes for routing tests.
func randomTestTree(rng *rand.Rand, n int) *tree.Tree {
	tr := tree.New("root")
	nodes := []*tree.Node{tr.Root()}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		nd := tr.AddChild(parent, string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26))))
		nodes = append(nodes, nd)
	}
	return tr
}
