package profile

import "math"

// Threshold bounds derived from the pq-gram distance (Definition 3):
//
//	dist(T, T') = 1 − 2·|I ∩ I'| / (|I| + |I'|)
//
// For a fixed threshold τ the formula is a hard algebraic filter: a
// candidate can satisfy dist < τ only if its bag size lies in a window
// around the query's, and only if the bag overlap reaches a minimum that
// grows with the combined size. Lookup planners use these bounds to skip
// candidates before — or while — accumulating their overlap.
//
// Every function here decides feasibility by evaluating DistanceFrom, the
// exact expression the scoring path evaluates, so a candidate pruned by a
// bound is provably one the exhaustive path would have rejected: the float
// estimates only seed the search, the boundaries are fixed up against the
// real formula. That is what makes pruned and exhaustive lookups
// byte-identical.

// DistanceFrom computes the pq-gram distance from the two bag sizes and
// the bag overlap, without materializing either bag:
//
//	1 − 2·overlap / (size1 + size2)
//
// It is the single scoring expression shared by the forest's lookup, join
// and planner bounds; Index.Distance agrees with it by construction. Two
// empty bags have distance 0.
func DistanceFrom(size1, size2, overlap int) float64 {
	u := size1 + size2
	if u == 0 {
		return 0
	}
	return 1 - 2*float64(overlap)/float64(u)
}

// maxOverlap is the largest overlap two bags of the given sizes can have.
func maxOverlap(size1, size2 int) int {
	if size1 < size2 {
		return size1
	}
	return size2
}

// sizeFeasible reports whether a candidate bag of size t can possibly be
// within distance tau of a query bag of size q: the best case is full
// containment of the smaller bag, overlap = min(q, t).
func sizeFeasible(q, t int, tau float64) bool {
	return DistanceFrom(q, t, maxOverlap(q, t)) < tau
}

// SizeWindow returns the inclusive range [lo, hi] of candidate bag sizes
// |I'| that can be strictly within distance tau of a query bag of size
// qSize. Candidates outside the window cannot qualify no matter how many
// tuples they share. Algebraically (for 0 < τ < 1):
//
//	qSize·(1−τ)/(1+τ)  ≤  |I'|  ≤  qSize·(1+τ)/(1−τ)
//
// For τ ≥ 1 the upper bound is unbounded and hi is math.MaxInt. An empty
// window is returned as lo > hi (e.g. τ ≤ 0, where no distance can be
// strictly below the threshold). The boundaries are verified against
// DistanceFrom, so the window is exact, not an estimate.
func SizeWindow(qSize int, tau float64) (lo, hi int) {
	if tau <= 0 {
		return 1, 0
	}
	// Lower edge: distance at t ≤ qSize improves as t grows; find the
	// smallest feasible t starting from the algebraic estimate.
	lo = int(float64(qSize) * (1 - tau) / (1 + tau))
	if lo < 0 {
		lo = 0
	}
	for lo > 0 && sizeFeasible(qSize, lo-1, tau) {
		lo--
	}
	for lo <= qSize && !sizeFeasible(qSize, lo, tau) {
		lo++
	}
	// Upper edge: distance at t ≥ qSize worsens as t grows.
	if tau >= 1 {
		if !sizeFeasible(qSize, qSize+1, tau) {
			// Only reachable for qSize = 0, τ = 1: a non-empty candidate
			// is at distance exactly 1 from an empty query.
			return lo, qSize
		}
		return lo, math.MaxInt
	}
	est := float64(qSize) * (1 + tau) / (1 - tau)
	if est >= float64(math.MaxInt/2) {
		// τ close enough to 1 that the algebraic bound overflows; an
		// unbounded window is merely loose, never wrong.
		return lo, math.MaxInt
	}
	hi = int(est) + 1
	if hi < qSize {
		hi = qSize
	}
	for sizeFeasible(qSize, hi+1, tau) {
		hi++
	}
	for hi >= lo && !sizeFeasible(qSize, hi, tau) {
		hi--
	}
	return lo, hi
}

// MinOverlap returns the smallest bag overlap o_min for which two bags of
// the given sizes are strictly within distance tau — the pruning bound
//
//	o_min = ⌈(1−τ)·(|I| + |I'|)/2⌉ (adjusted to the strict inequality)
//
// A candidate whose achievable overlap (accumulated so far plus the most
// the remaining tuples could add) falls below o_min can be abandoned. The
// returned value may exceed min(size1, size2), in which case no overlap
// qualifies at all. The boundary is verified against DistanceFrom.
func MinOverlap(size1, size2 int, tau float64) int {
	u := size1 + size2
	if u == 0 {
		// Two empty bags are at distance 0; they qualify iff 0 < tau.
		if tau > 0 {
			return 0
		}
		return 1
	}
	o := int(math.Ceil((1 - tau) * float64(u) / 2))
	if o < 0 {
		o = 0
	}
	if o > u {
		o = u
	}
	for o > 0 && DistanceFrom(size1, size2, o-1) < tau {
		o--
	}
	for o <= u && DistanceFrom(size1, size2, o) >= tau {
		o++
	}
	return o
}
