// Package profile implements pq-gram profiles and the pq-gram index of
// Augsten, Böhlen and Gamper (VLDB 2006), §3.2.
//
// A pq-gram (Definition 1) is a small subtree of the extended tree T'
// consisting of an anchor node a, its p-1 ancestors, and q contiguous
// (possibly null) children of a. The profile (Definition 2) is the set of
// all pq-grams of a tree, where nodes retain their identity. The index
// (Definition 3) is the bag of label-tuples of the profile, with labels
// replaced by fixed-width fingerprints.
package profile

import (
	"fmt"

	"pqgram/internal/fingerprint"
	"pqgram/internal/tree"
)

// Params holds the pq-gram shape parameters p and q. Both must be at least 1.
// The paper's default is p = q = 3.
type Params struct {
	P, Q int
}

// Default is the paper's standard parameterization, 3,3-grams.
var Default = Params{P: 3, Q: 3}

// Validate returns an error if the parameters are out of range.
func (pr Params) Validate() error {
	if pr.P < 1 || pr.Q < 1 {
		return fmt.Errorf("profile: p and q must be >= 1, got p=%d q=%d", pr.P, pr.Q)
	}
	return nil
}

// Len returns the number of nodes in one pq-gram, p+q.
func (pr Params) Len() int { return pr.P + pr.Q }

// NodeRef identifies one position of a pq-gram: a node ID plus its label
// fingerprint. Null (dummy) nodes have ID 0 and the Null fingerprint.
type NodeRef struct {
	ID    tree.NodeID
	Label fingerprint.Hash
}

// NullRef is the dummy node • of the extended tree.
var NullRef = NodeRef{ID: 0, Label: fingerprint.Null}

// Gram is a pq-gram in the linear encoding (a_{p-1}, ..., a_1, a,
// c_i, ..., c_{i+q-1}) of Definition 1. Index P-1 is the anchor node.
type Gram []NodeRef

// Anchor returns the anchor node of the gram.
func (g Gram) Anchor(pr Params) NodeRef { return g[pr.P-1] }

// Key returns a string that uniquely identifies the gram including node
// identity; equal keys mean equal pq-grams in the sense of the paper
// (identifiers and labels both match position-wise).
func (g Gram) Key() string {
	buf := make([]byte, 0, 16*len(g))
	for _, r := range g {
		buf = appendUint64(buf, uint64(r.ID))
		buf = appendUint64(buf, uint64(r.Label))
	}
	return string(buf)
}

// LabelTuple returns λ(g): the fingerprint of the concatenated label
// fingerprints of the gram's nodes, the unit stored in the pq-gram index.
func (g Gram) LabelTuple() LabelTuple {
	hs := make([]fingerprint.Hash, len(g))
	for i, r := range g {
		hs[i] = r.Label
	}
	return TupleOf(hs...)
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Profile is the set of all pq-grams of a tree, keyed by Gram.Key.
type Profile map[string]Gram

// Build computes the pq-gram profile of t (Definition 2).
func Build(t *tree.Tree, pr Params) Profile {
	if err := pr.Validate(); err != nil {
		panic(err)
	}
	prof := make(Profile, t.Size()*2)
	ForEachGram(t, pr, func(g Gram) {
		// Copy: the callback buffer is reused.
		cp := make(Gram, len(g))
		copy(cp, g)
		prof[cp.Key()] = cp
	})
	return prof
}

// ForEachGram enumerates every pq-gram of t exactly once and calls fn with a
// shared buffer that is overwritten between calls; fn must copy the gram if
// it retains it. Enumeration order is: anchors in preorder, q-windows left
// to right.
func ForEachGram(t *tree.Tree, pr Params, fn func(Gram)) {
	if err := pr.Validate(); err != nil {
		panic(err)
	}
	p, q := pr.P, pr.Q
	buf := make(Gram, p+q)
	// anc is the register of the last p node refs on the root path,
	// anc[0] = farthest ancestor ... anc[p-1] = current node. It starts
	// filled with null refs (the extended tree adds p-1 null ancestors).
	anc := make([]NodeRef, p)
	for i := range anc {
		anc[i] = NullRef
	}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		// Shift the ancestor register and append n.
		old := anc[0]
		copy(anc, anc[1:])
		anc[p-1] = NodeRef{ID: n.ID(), Label: fingerprint.Of(n.Label())}
		copy(buf[:p], anc)

		kids := n.Children()
		if len(kids) == 0 {
			for i := 0; i < q; i++ {
				buf[p+i] = NullRef
			}
			fn(buf)
		} else {
			// Sliding q-window over •^{q-1} ++ children ++ •^{q-1}.
			win := make([]NodeRef, 0, len(kids)+2*(q-1))
			for i := 0; i < q-1; i++ {
				win = append(win, NullRef)
			}
			for _, c := range kids {
				win = append(win, NodeRef{ID: c.ID(), Label: fingerprint.Of(c.Label())})
			}
			for i := 0; i < q-1; i++ {
				win = append(win, NullRef)
			}
			for s := 0; s+q <= len(win); s++ {
				copy(buf[p:], win[s:s+q])
				fn(buf)
			}
		}
		for _, c := range kids {
			walk(c)
		}
		// Restore the register.
		copy(anc[1:], anc)
		anc[0] = old
	}
	walk(t.Root())
}

// Count returns the number of pq-grams of t without materializing them:
// f+q-1 per non-leaf node with fanout f, and 1 per leaf.
func Count(t *tree.Tree, pr Params) int {
	total := 0
	t.PreOrder(func(n *tree.Node) bool {
		if f := n.Fanout(); f > 0 {
			total += f + pr.Q - 1
		} else {
			total++
		}
		return true
	})
	return total
}

// Index returns λ(P): the bag of label-tuples of the profile (Definition 3).
func (prof Profile) Index() Index {
	idx := make(Index, len(prof))
	for _, g := range prof {
		idx[g.LabelTuple()]++
	}
	return idx
}

// Diff returns the set difference prof \ other.
func (prof Profile) Diff(other Profile) Profile {
	out := make(Profile)
	for k, g := range prof {
		if _, ok := other[k]; !ok {
			out[k] = g
		}
	}
	return out
}

// Intersect returns the set intersection of two profiles.
func (prof Profile) Intersect(other Profile) Profile {
	out := make(Profile)
	for k, g := range prof {
		if _, ok := other[k]; ok {
			out[k] = g
		}
	}
	return out
}

// Union returns the set union of two profiles.
func (prof Profile) Union(other Profile) Profile {
	out := make(Profile, len(prof)+len(other))
	for k, g := range prof {
		out[k] = g
	}
	for k, g := range other {
		out[k] = g
	}
	return out
}

// Equal reports whether two profiles contain exactly the same pq-grams.
func (prof Profile) Equal(other Profile) bool {
	if len(prof) != len(other) {
		return false
	}
	for k := range prof {
		if _, ok := other[k]; !ok {
			return false
		}
	}
	return true
}
