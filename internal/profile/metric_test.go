package profile_test

import (
	"testing"

	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// decodeTree builds a deterministic tree from fuzz bytes: each byte
// either descends into a new child, adds a sibling leaf, climbs back up,
// or starts a new subtree at the root, with the label drawn from a small
// alphabet so that bags genuinely collide.
func decodeTree(data []byte) *tree.Tree {
	labels := [...]string{"a", "b", "c", "d"}
	if len(data) > 96 {
		data = data[:96]
	}
	t := tree.New(labels[0])
	cur := t.Root()
	for _, b := range data {
		l := labels[b&3]
		switch (b >> 2) & 3 {
		case 0:
			cur = t.AddChild(cur, l)
		case 1:
			t.AddChild(cur, l)
		case 2:
			if p := cur.Parent(); p != nil {
				cur = p
			} else {
				t.AddChild(cur, l)
			}
		default:
			cur = t.AddChild(t.Root(), l)
		}
	}
	return t
}

// FuzzDistanceMetric fuzzes the metric axioms of the absolute pq-gram
// distance D on random tree triples: non-negativity, identity on equal
// bags, symmetry, the triangle inequality — the invariant the VP-tree
// pruning in internal/forest silently depends on — plus the exact
// relation between D and the normalized Definition-3 distance. The
// normalized distance itself violates the triangle inequality, which is
// precisely why the metric index is built over D; the seed corpus pins
// the known counterexample shape.
func FuzzDistanceMetric(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{5, 6}, []byte{9}, uint8(3), uint8(3))
	f.Add([]byte{}, []byte{0}, []byte{0, 0}, uint8(1), uint8(1))
	f.Add([]byte{13, 13, 13}, []byte{13, 13, 13}, []byte{2, 4, 8}, uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, ab, bb, cb []byte, p, q uint8) {
		pr := profile.Params{P: 1 + int(p%4), Q: 1 + int(q%4)}
		ta, tb, tc := decodeTree(ab), decodeTree(bb), decodeTree(cb)
		ia, ib, ic := profile.BuildIndex(ta, pr), profile.BuildIndex(tb, pr), profile.BuildIndex(tc, pr)

		bags := []profile.Index{ia, ib, ic}
		for _, x := range bags {
			if d := x.MetricDistance(x); d != 0 {
				t.Fatalf("D(x, x) = %d, want 0", d)
			}
			for _, y := range bags {
				dxy := x.MetricDistance(y)
				if dxy < 0 {
					t.Fatalf("D = %d < 0", dxy)
				}
				if dyx := y.MetricDistance(x); dyx != dxy {
					t.Fatalf("asymmetric: D(x,y)=%d, D(y,x)=%d", dxy, dyx)
				}
				if (dxy == 0) != x.Equal(y) {
					t.Fatalf("D(x,y)=%d but bags equal=%v", dxy, x.Equal(y))
				}
				// D determines the normalized Definition-3 distance.
				u := x.Size() + y.Size()
				want := profile.DistanceFrom(x.Size(), y.Size(), (u-dxy)/2)
				if got := x.Distance(y); got != want {
					t.Fatalf("normalized distance %v, want %v from D=%d", got, want, dxy)
				}
				if profile.MetricDistanceFrom(x.Size(), y.Size(), x.IntersectSize(y)) != dxy {
					t.Fatal("MetricDistanceFrom disagrees with MetricDistance")
				}
			}
		}
		// Triangle inequality on every ordering of the triple.
		dab, dbc, dac := ia.MetricDistance(ib), ib.MetricDistance(ic), ia.MetricDistance(ic)
		if dac > dab+dbc {
			t.Fatalf("triangle violated: D(a,c)=%d > D(a,b)+D(b,c)=%d+%d", dac, dab, dbc)
		}
		if dab > dac+dbc {
			t.Fatalf("triangle violated: D(a,b)=%d > D(a,c)+D(c,b)=%d+%d", dab, dac, dbc)
		}
		if dbc > dab+dac {
			t.Fatalf("triangle violated: D(b,c)=%d > D(b,a)+D(a,c)=%d+%d", dbc, dab, dac)
		}
	})
}

// TestNormalizedDistanceIsNotAMetric pins the counterexample that forces
// the VP-tree onto the absolute distance: three bags for which the
// normalized pq-gram distance violates the triangle inequality. If a
// refactor ever made the normalized distance look triangular enough to
// build the index on, this test is the record of why it must not be.
func TestNormalizedDistanceIsNotAMetric(t *testing.T) {
	a := profile.Index{profile.TupleOfLabels("a", "a", "a"): 1}
	b := profile.Index{profile.TupleOfLabels("b", "b", "b"): 1}
	c := profile.Index{
		profile.TupleOfLabels("a", "a", "a"): 1,
		profile.TupleOfLabels("b", "b", "b"): 1,
	}
	dab, dac, dcb := a.Distance(b), a.Distance(c), c.Distance(b)
	if dab <= dac+dcb {
		t.Fatalf("expected a triangle violation, got %v ≤ %v + %v", dab, dac, dcb)
	}
	// The absolute distance on the same triple is triangular.
	if a.MetricDistance(b) > a.MetricDistance(c)+c.MetricDistance(b) {
		t.Fatal("absolute distance violated the triangle inequality")
	}
}
