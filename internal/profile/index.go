package profile

import (
	"fmt"
	"time"

	"pqgram/internal/fingerprint"
	"pqgram/internal/obs"
	"pqgram/internal/tree"
)

// LabelTuple is the unit stored in a pq-gram index: a fixed-width
// fingerprint of the concatenated p+q label fingerprints of one pq-gram
// (§3.2: "we store the concatenation of the hashed labels", mapped to a
// fixed length that is unique with high probability). Equality is the only
// operation the index ever performs on tuples.
type LabelTuple uint64

// TupleOf builds a LabelTuple from label fingerprints.
func TupleOf(hs ...fingerprint.Hash) LabelTuple {
	return LabelTuple(fingerprint.Combine(hs))
}

// Shard maps the tuple to one of 1<<bits shard indexes. The tuple is
// already a fingerprint, but its low bits live in a Mersenne field and are
// not guaranteed uniform, so the value is mixed multiplicatively (Fibonacci
// hashing) and the top bits are used. Shard is the routing function of
// lock-striped index layouts; it is deterministic across processes.
func (lt LabelTuple) Shard(bits uint) uint64 {
	return (uint64(lt) * 0x9e3779b97f4a7c15) >> (64 - bits)
}

// TupleOfLabels builds a LabelTuple from plain labels, hashing each; the
// label "*" denotes the null label and maps to fingerprint.Null. Intended
// for tests and fixtures mirroring the paper's notation.
func TupleOfLabels(labels ...string) LabelTuple {
	hs := make([]fingerprint.Hash, len(labels))
	for i, l := range labels {
		if l == "*" {
			hs[i] = fingerprint.Null
		} else {
			hs[i] = fingerprint.Of(l)
		}
	}
	return TupleOf(hs...)
}

// Index is the pq-gram index of a single tree: the bag of label-tuples of
// its profile, represented as tuple -> multiplicity (Definition 3; the
// relation of Figure 4 restricted to one tree).
type Index map[LabelTuple]int

// BuildIndex computes the pq-gram index of t directly, without materializing
// the profile. When the global collector carries a tracer, sampled builds
// publish a standalone "profile.build" trace.
func BuildIndex(t *tree.Tree, pr Params) Index {
	m := buildObs.Load()
	var t0 time.Time
	var sp *obs.Span
	if m != nil {
		t0 = time.Now()
		sp = m.col.StartTrace("profile.build")
	}
	idx := make(Index, t.Size())
	ForEachGram(t, pr, func(g Gram) {
		idx[g.LabelTuple()]++
	})
	recordBuild(m, idx, t0)
	if sp != nil {
		setBuildAttrs(sp, t, idx)
		sp.Finish()
	}
	return idx
}

// BuildIndexSpanned is BuildIndex recording its work into a
// "profile.build" child of parent (nil-safe) instead of sampling through
// the tracer — the explain path, where tracing is forced.
func BuildIndexSpanned(t *tree.Tree, pr Params, parent *obs.Span) Index {
	m := buildObs.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	sp := parent.Child("profile.build")
	idx := make(Index, t.Size())
	ForEachGram(t, pr, func(g Gram) {
		idx[g.LabelTuple()]++
	})
	recordBuild(m, idx, t0)
	setBuildAttrs(sp, t, idx)
	sp.Finish()
	return idx
}

// setBuildAttrs records the finished bag's work counters on the span.
func setBuildAttrs(sp *obs.Span, t *tree.Tree, idx Index) {
	sp.SetAttr("nodes", int64(t.Size()))
	sp.SetAttr("grams", int64(idx.Size()))
	sp.SetAttr("distinct_tuples", int64(len(idx)))
}

// Size returns the bag cardinality |I| (the sum of multiplicities).
func (idx Index) Size() int {
	n := 0
	for _, c := range idx {
		n += c
	}
	return n
}

// Distinct returns the number of distinct label-tuples.
func (idx Index) Distinct() int { return len(idx) }

// Add inserts one occurrence of the tuple.
func (idx Index) Add(lt LabelTuple) { idx[lt]++ }

// Sub removes one occurrence of the tuple. It returns an error if the tuple
// is not present: by Lemma 2, λ(Δ⁻) ⊆ λ(P₀) always holds for a correct
// maintenance run, so underflow indicates a bug or a corrupted log.
func (idx Index) Sub(lt LabelTuple) error {
	c, ok := idx[lt]
	if !ok {
		return fmt.Errorf("profile: removing tuple %016x not in index", uint64(lt))
	}
	if c == 1 {
		delete(idx, lt)
	} else {
		idx[lt] = c - 1
	}
	return nil
}

// Clone returns a copy of the index.
func (idx Index) Clone() Index {
	out := make(Index, len(idx))
	for k, v := range idx {
		out[k] = v
	}
	return out
}

// Equal reports whether two indexes are equal as bags.
func (idx Index) Equal(other Index) bool {
	if len(idx) != len(other) {
		return false
	}
	for k, v := range idx {
		if other[k] != v {
			return false
		}
	}
	return true
}

// IntersectSize returns the bag intersection cardinality |I ∩ I'|:
// Σ min(multiplicity, multiplicity').
func (idx Index) IntersectSize(other Index) int {
	a, b := idx, other
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				n += w
			} else {
				n += v
			}
		}
	}
	return n
}

// UnionSize returns the bag union cardinality |I ⊎ I'| = |I| + |I'|.
func (idx Index) UnionSize(other Index) int { return idx.Size() + other.Size() }

// Distance returns the pq-gram distance between the trees represented by the
// two indexes:
//
//	dist(T, T') = 1 − 2·|I(T) ∩ I(T')| / |I(T) ⊎ I(T')|
//
// The result is in [0, 1]; 0 means the indexes are identical bags. Two empty
// indexes have distance 0.
func (idx Index) Distance(other Index) float64 {
	u := idx.UnionSize(other)
	if u == 0 {
		return 0
	}
	return 1 - 2*float64(idx.IntersectSize(other))/float64(u)
}

// Distance computes the pq-gram distance between two trees, building both
// indexes from scratch. This is the "on the fly" path of the paper's §9.1
// experiment; precomputed indexes should use Index.Distance.
func Distance(a, b *tree.Tree, pr Params) float64 {
	return BuildIndex(a, pr).Distance(BuildIndex(b, pr))
}
