// Instrumentation of profiling (pq-gram extraction). BuildIndex is a pure
// function with no receiver to hang per-instance state on, so the collector
// is package-global: SetCollector swaps an atomic pointer, and an
// uninstrumented build costs one atomic load. Per-gram work is never
// instrumented — the counters are fed once per build from the finished bag.

package profile

import (
	"sync/atomic"
	"time"

	"pqgram/internal/obs"
)

// buildMetrics holds the preresolved profiling metric handles.
type buildMetrics struct {
	col      *obs.Collector
	builds   *obs.Counter   // profile_builds
	grams    *obs.Counter   // profile_grams (bag cardinality produced)
	distinct *obs.Counter   // profile_distinct_tuples
	bagSize  *obs.Histogram // profile_bag_size
	buildNS  *obs.Histogram // profile_build_ns
}

var buildObs atomic.Pointer[buildMetrics]

// SetCollector attaches (or, with nil, detaches) the process-global
// profiling collector. Safe to call concurrently with builds.
func SetCollector(c *obs.Collector) {
	if c == nil {
		buildObs.Store(nil)
		return
	}
	buildObs.Store(&buildMetrics{
		col:      c,
		builds:   c.Counter("profile_builds"),
		grams:    c.Counter("profile_grams"),
		distinct: c.Counter("profile_distinct_tuples"),
		bagSize:  c.Histogram("profile_bag_size"),
		buildNS:  c.Histogram("profile_build_ns"),
	})
}

// Collector returns the attached profiling collector, or nil.
func Collector() *obs.Collector {
	if m := buildObs.Load(); m != nil {
		return m.col
	}
	return nil
}

// recordBuild feeds one finished build into the metrics; no-op when
// uninstrumented.
func recordBuild(m *buildMetrics, idx Index, t0 time.Time) {
	if m == nil {
		return
	}
	size := idx.Size()
	m.builds.Inc()
	m.grams.Add(int64(size))
	m.distinct.Add(int64(len(idx)))
	m.bagSize.Observe(int64(size))
	m.buildNS.ObserveSince(t0)
}
