package profile

import (
	"math"
	"math/rand"
	"testing"
)

// TestDistanceFromMatchesIndexDistance pins the shared scoring expression
// to Index.Distance on random bags: the planner bounds are only sound if
// both paths evaluate the identical formula.
func TestDistanceFromMatchesIndexDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 500; it++ {
		a := make(Index)
		b := make(Index)
		for i := 0; i < rng.Intn(40); i++ {
			a[LabelTuple(rng.Intn(30))] += 1 + rng.Intn(3)
		}
		for i := 0; i < rng.Intn(40); i++ {
			b[LabelTuple(rng.Intn(30))] += 1 + rng.Intn(3)
		}
		want := a.Distance(b)
		got := DistanceFrom(a.Size(), b.Size(), a.IntersectSize(b))
		if got != want {
			t.Fatalf("DistanceFrom=%v, Index.Distance=%v (sizes %d,%d overlap %d)",
				got, want, a.Size(), b.Size(), a.IntersectSize(b))
		}
	}
}

// bruteFeasible is the defining property of the size window: some overlap
// (necessarily ≤ min of the sizes) puts the pair strictly below tau.
func bruteFeasible(q, t int, tau float64) bool {
	m := q
	if t < m {
		m = t
	}
	return DistanceFrom(q, t, m) < tau
}

// TestSizeWindowExact sweeps query sizes and thresholds and checks every
// candidate size near the window edges against the brute-force criterion:
// the window must contain exactly the feasible sizes.
func TestSizeWindowExact(t *testing.T) {
	taus := []float64{0.001, 0.1, 0.25, 1.0 / 3, 0.5, 0.7, 2.0 / 3, 0.9, 0.999, 1}
	for _, tau := range taus {
		for q := 0; q <= 120; q++ {
			lo, hi := SizeWindow(q, tau)
			limit := 4 * (q + 4)
			for s := 0; s <= limit; s++ {
				in := lo <= s && s <= hi
				if want := bruteFeasible(q, s, tau); in != want {
					t.Fatalf("SizeWindow(%d, %v)=[%d,%d]: size %d in-window=%v, feasible=%v",
						q, tau, lo, hi, s, in, want)
				}
			}
			// τ ≥ 1 admits arbitrarily large candidates — except the
			// empty query at exactly τ = 1, where any non-empty
			// candidate sits at distance exactly 1.
			if tau >= 1 && q > 0 && hi != math.MaxInt {
				t.Fatalf("SizeWindow(%d, %v) hi=%d, want unbounded", q, tau, hi)
			}
		}
	}
}

// TestSizeWindowEmpty checks the degenerate thresholds: τ ≤ 0 admits
// nothing (the distance is never negative), reported as lo > hi.
func TestSizeWindowEmpty(t *testing.T) {
	for _, tau := range []float64{-1, 0} {
		if lo, hi := SizeWindow(50, tau); lo <= hi {
			t.Fatalf("SizeWindow(50, %v)=[%d,%d], want empty", tau, lo, hi)
		}
	}
}

// TestMinOverlapExact checks o_min against the brute-force minimum on a
// sweep of size pairs and thresholds: every overlap ≥ o_min scores below
// tau, every overlap < o_min does not.
func TestMinOverlapExact(t *testing.T) {
	taus := []float64{0, 0.1, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.9, 1}
	for _, tau := range taus {
		for a := 0; a <= 60; a++ {
			for b := 0; b <= 60; b += 1 + a%3 {
				need := MinOverlap(a, b, tau)
				u := a + b
				for ov := 0; ov <= u; ov++ {
					below := DistanceFrom(a, b, ov) < tau
					if below != (ov >= need) {
						t.Fatalf("MinOverlap(%d,%d,%v)=%d: overlap %d below-tau=%v",
							a, b, tau, need, ov, below)
					}
				}
			}
		}
	}
}

// TestMinOverlapMonotoneInSize pins the property the planner's phase-1
// cutoff relies on: o_min never shrinks as the candidate size grows, so
// the window's lower edge carries the loosest bound.
func TestMinOverlapMonotoneInSize(t *testing.T) {
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		for q := 1; q <= 80; q++ {
			prev := -1
			for s := 0; s <= 200; s++ {
				need := MinOverlap(q, s, tau)
				if need < prev {
					t.Fatalf("MinOverlap(%d,%d,%v)=%d < MinOverlap at size %d (%d)",
						q, s, tau, need, s-1, prev)
				}
				prev = need
			}
		}
	}
}
