package profile

// Metric-space view of pq-gram indexes.
//
// The normalized pq-gram distance of Definition 3,
//
//	dist(T, T') = 1 − 2·|I ∩ I'| / (|I| + |I'|),
//
// is only a *pseudo*-metric on trees and, worse for index structures, it
// violates the triangle inequality: with I = {x}, I' = {y}, I'' = {x, y},
// dist(I, I') = 1 but dist(I, I'') + dist(I'', I') = 1/3 + 1/3. A
// vantage-point tree pruning on it directly would be unsound.
//
// The *absolute* bag distance
//
//	D(I, I') = |I| + |I'| − 2·|I ∩ I'| = Σ_t |I(t) − I'(t)|
//
// is the L1 distance between the multiplicity vectors, hence a true
// metric (non-negative, symmetric, zero on equal bags, triangular). The
// metric index is built over D; FuzzDistanceMetric in metric_test.go
// fuzzes exactly the properties the VP-tree pruning depends on. The two
// distances determine each other given the bag sizes:
//
//	dist(T, T') = D(I, I') / (|I| + |I'|)        (0 when both are empty)
//
// so exact normalized nearest-neighbor queries can be answered with
// triangle-inequality bounds on D plus size bounds (forest/metric.go).

// MetricDistanceFrom computes the absolute pq-gram distance D from the
// two bag sizes and the bag overlap:
//
//	D = size1 + size2 − 2·overlap
//
// It is related to the normalized distance by
// DistanceFrom(s1, s2, ov) = MetricDistanceFrom(s1, s2, ov) / (s1 + s2).
func MetricDistanceFrom(size1, size2, overlap int) int {
	return size1 + size2 - 2*overlap
}

// MetricDistance returns the absolute pq-gram distance D(idx, other), the
// L1 distance between the two multiplicity vectors. Unlike the normalized
// Index.Distance it satisfies the triangle inequality, which makes it the
// distance the metric index (internal/forest) organizes documents by.
func (idx Index) MetricDistance(other Index) int {
	return MetricDistanceFrom(idx.Size(), other.Size(), idx.IntersectSize(other))
}
