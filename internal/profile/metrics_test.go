package profile_test

import (
	"testing"

	"pqgram/internal/obs"
	"pqgram/internal/paperfix"
	"pqgram/internal/profile"
)

// TestBuildInstrumented attaches a collector and checks that one build
// feeds the profiling counters with the finished bag's numbers.
func TestBuildInstrumented(t *testing.T) {
	col := obs.NewCollector()
	profile.SetCollector(col)
	defer profile.SetCollector(nil)
	if profile.Collector() != col {
		t.Fatal("Collector() should return the attached collector")
	}

	before := col.Snapshot()
	idx := profile.BuildIndex(paperfix.T0(), p33)
	d := col.Snapshot().CounterDeltas(before)

	if d["profile_builds"] != 1 {
		t.Errorf("profile_builds delta = %d, want 1", d["profile_builds"])
	}
	if d["profile_grams"] != int64(idx.Size()) {
		t.Errorf("profile_grams delta = %d, want bag size %d", d["profile_grams"], idx.Size())
	}
	if d["profile_distinct_tuples"] != int64(len(idx)) {
		t.Errorf("profile_distinct_tuples delta = %d, want %d", d["profile_distinct_tuples"], len(idx))
	}
	h, ok := col.Snapshot().Histograms["profile_bag_size"]
	if !ok || h.Count != 1 {
		t.Errorf("profile_bag_size histogram count = %+v, want one observation", h)
	}
}

// TestBuildTraced samples every build through a tracer and checks the
// published "profile.build" trace mirrors the bag.
func TestBuildTraced(t *testing.T) {
	col := obs.NewCollector()
	col.SetTracer(obs.NewTracer(1, 8))
	profile.SetCollector(col)
	defer profile.SetCollector(nil)

	t0 := paperfix.T0()
	idx := profile.BuildIndex(t0, p33)
	traces := col.Tracer().RecentTraces(1)
	if len(traces) != 1 {
		t.Fatalf("RecentTraces = %d traces, want 1", len(traces))
	}
	root := traces[0].Root
	if root.Name != "profile.build" {
		t.Fatalf("trace root = %q, want profile.build", root.Name)
	}
	want := map[string]int64{
		"nodes":           int64(t0.Size()),
		"grams":           int64(idx.Size()),
		"distinct_tuples": int64(len(idx)),
	}
	for k, v := range want {
		if root.Attrs[k] != v {
			t.Errorf("attr %s = %d, want %d", k, root.Attrs[k], v)
		}
	}
}

// TestBuildIndexSpanned checks the explain path: the build becomes a
// child span of the caller's span, carrying the same attrs, and the bag
// agrees with the plain builder — instrumented or not.
func TestBuildIndexSpanned(t *testing.T) {
	t0 := paperfix.T0()
	plain := profile.BuildIndex(t0, p33)

	// Uninstrumented: no collector attached at all.
	profile.SetCollector(nil)
	parent := obs.StartSpan("test.parent")
	idx := profile.BuildIndexSpanned(t0, p33, parent)
	parent.Finish()
	if !idx.Equal(plain) {
		t.Fatal("spanned build disagrees with plain build")
	}
	snap := parent.Snapshot()
	if len(snap.Children) != 1 || snap.Children[0].Name != "profile.build" {
		t.Fatalf("parent children = %+v, want one profile.build", snap.Children)
	}
	if got := snap.Children[0].Attrs["grams"]; got != int64(idx.Size()) {
		t.Errorf("grams attr = %d, want %d", got, idx.Size())
	}

	// Instrumented: the same call must also feed the counters.
	col := obs.NewCollector()
	profile.SetCollector(col)
	defer profile.SetCollector(nil)
	before := col.Snapshot()
	idx2 := profile.BuildIndexSpanned(t0, p33, nil) // nil parent is legal
	if d := col.Snapshot().CounterDeltas(before); d["profile_builds"] != 1 {
		t.Errorf("profile_builds delta = %d, want 1", d["profile_builds"])
	}
	if !idx2.Equal(plain) {
		t.Fatal("instrumented spanned build disagrees with plain build")
	}
}
