// Package xmlconv converts between XML documents and the ordered labeled
// trees of package tree, the representation used by the pq-gram index
// experiments of Augsten et al. (VLDB 2006), §9.
//
// The mapping follows the convention of the pq-gram literature:
//
//   - an element becomes a node labeled with the element name;
//   - an attribute becomes a leaf child labeled "@name=value" (attributes
//     are sorted by name so the conversion is deterministic);
//   - character data becomes a leaf child labeled "=text".
//
// The prefixes make the conversion invertible: Write turns "@..." labels
// back into attributes and "=..." labels back into character data.
package xmlconv

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"pqgram/internal/tree"
)

// Options controls the XML-to-tree conversion.
type Options struct {
	// SkipAttributes drops attributes instead of adding "@name=value" leaves.
	SkipAttributes bool
	// SkipText drops character data instead of adding "=text" leaves.
	SkipText bool
	// KeepWhitespaceText keeps character data that is entirely whitespace
	// (by default it is dropped, as it is formatting noise).
	KeepWhitespaceText bool
}

// Parse reads one XML document from r and returns it as a tree. Node IDs are
// assigned in document order starting at 1.
func Parse(r io.Reader, opts Options) (*tree.Tree, error) {
	dec := xml.NewDecoder(r)
	var t *tree.Tree
	var stack []*tree.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlconv: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			var n *tree.Node
			if t == nil {
				t = tree.New(tk.Name.Local)
				n = t.Root()
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmlconv: multiple root elements")
				}
				n = t.AddChild(stack[len(stack)-1], tk.Name.Local)
			}
			if !opts.SkipAttributes && len(tk.Attr) > 0 {
				attrs := make([]xml.Attr, len(tk.Attr))
				copy(attrs, tk.Attr)
				sort.Slice(attrs, func(i, j int) bool {
					return attrs[i].Name.Local < attrs[j].Name.Local
				})
				for _, a := range attrs {
					t.AddChild(n, "@"+a.Name.Local+"="+a.Value)
				}
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlconv: unbalanced end element %s", tk.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if opts.SkipText || t == nil || len(stack) == 0 {
				continue
			}
			text := string(tk)
			if !opts.KeepWhitespaceText && strings.TrimSpace(text) == "" {
				continue
			}
			t.AddChild(stack[len(stack)-1], "="+text)
		}
	}
	if t == nil {
		return nil, fmt.Errorf("xmlconv: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlconv: %d unclosed elements", len(stack))
	}
	return t, nil
}

// ParseString is Parse on a string.
func ParseString(s string, opts Options) (*tree.Tree, error) {
	return Parse(strings.NewReader(s), opts)
}

// Write serializes the tree back to XML using the label conventions
// described in the package comment.
func Write(w io.Writer, t *tree.Tree) error {
	enc := xml.NewEncoder(w)
	if err := writeNode(enc, t.Root()); err != nil {
		return fmt.Errorf("xmlconv: %w", err)
	}
	return enc.Flush()
}

// WriteString serializes the tree to an XML string.
func WriteString(t *tree.Tree) (string, error) {
	var b strings.Builder
	if err := Write(&b, t); err != nil {
		return "", err
	}
	return b.String(), nil
}

func writeNode(enc *xml.Encoder, n *tree.Node) error {
	label := n.Label()
	switch {
	case strings.HasPrefix(label, "="):
		return enc.EncodeToken(xml.CharData(label[1:]))
	case strings.HasPrefix(label, "@"):
		// Attributes are emitted by the parent element; a bare attribute
		// node (e.g. moved by an edit) degrades to an empty element.
		return encodeEmpty(enc, strings.TrimPrefix(label, "@"))
	}
	start := xml.StartElement{Name: xml.Name{Local: label}}
	var kids []*tree.Node
	for _, c := range n.Children() {
		if cl := c.Label(); strings.HasPrefix(cl, "@") && c.IsLeaf() {
			if eq := strings.IndexByte(cl, '='); eq > 1 {
				start.Attr = append(start.Attr, xml.Attr{
					Name:  xml.Name{Local: cl[1:eq]},
					Value: cl[eq+1:],
				})
				continue
			}
		}
		kids = append(kids, c)
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range kids {
		if err := writeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(xml.EndElement{Name: start.Name})
}

func encodeEmpty(enc *xml.Encoder, name string) error {
	if i := strings.IndexByte(name, '='); i >= 0 {
		name = name[:i]
	}
	if name == "" {
		name = "attr"
	}
	start := xml.StartElement{Name: xml.Name{Local: name}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	return enc.EncodeToken(xml.EndElement{Name: start.Name})
}
