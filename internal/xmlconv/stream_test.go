package xmlconv

import (
	"strings"
	"testing"

	"pqgram/internal/gen"
	"pqgram/internal/profile"
)

// streamMatchesTreeBuild asserts that StreamIndex equals parsing the tree
// and building the index from it.
func streamMatchesTreeBuild(t *testing.T, doc string, opts Options, pr profile.Params) {
	t.Helper()
	tr, err := ParseString(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := profile.BuildIndex(tr, pr)
	got, err := StreamIndex(strings.NewReader(doc), opts, pr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("stream index differs from tree build (doc %q, params %v): %d vs %d tuples",
			truncate(doc), pr, got.Size(), want.Size())
	}
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}

func TestStreamIndexSmallDocs(t *testing.T) {
	docs := []string{
		`<a/>`,
		`<a><b/></a>`,
		`<a><b/><c/><d/></a>`,
		`<a x="1" y="2"><b>text</b>tail</a>`,
		`<a><b><c><d><e/></d></c></b></a>`,
		`<r>one<m/>two<m/>three</r>`,
	}
	params := []profile.Params{{P: 1, Q: 1}, {P: 1, Q: 2}, {P: 2, Q: 2}, {P: 3, Q: 3}, {P: 4, Q: 2}, {P: 2, Q: 4}}
	for _, doc := range docs {
		for _, pr := range params {
			streamMatchesTreeBuild(t, doc, Options{}, pr)
		}
	}
}

func TestStreamIndexOptions(t *testing.T) {
	doc := `<a x="1">hello<b y="2"> </b></a>`
	for _, opts := range []Options{
		{},
		{SkipAttributes: true},
		{SkipText: true},
		{SkipAttributes: true, SkipText: true},
		{KeepWhitespaceText: true},
	} {
		streamMatchesTreeBuild(t, doc, opts, profile.Params{P: 3, Q: 3})
	}
}

func TestStreamIndexGeneratedDocs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		var doc string
		var err error
		if seed%2 == 0 {
			doc, err = WriteString(gen.XMark(seed, 2000))
		} else {
			doc, err = WriteString(gen.DBLP(seed, 2000))
		}
		if err != nil {
			t.Fatal(err)
		}
		streamMatchesTreeBuild(t, doc, Options{}, profile.Params{P: 3, Q: 3})
		streamMatchesTreeBuild(t, doc, Options{}, profile.Params{P: 1, Q: 2})
	}
}

func TestStreamIndexErrors(t *testing.T) {
	bad := []string{``, `<a>`, `</a>`, `<a/><b/>`, `text`}
	for _, doc := range bad {
		if _, err := StreamIndex(strings.NewReader(doc), Options{}, profile.Params{P: 3, Q: 3}); err == nil {
			t.Errorf("StreamIndex(%q) succeeded", doc)
		}
	}
	if _, err := StreamIndex(strings.NewReader(`<a/>`), Options{}, profile.Params{P: 0, Q: 3}); err == nil {
		t.Error("invalid params accepted")
	}
}

func BenchmarkStreamIndex(b *testing.B) {
	doc, err := WriteString(gen.DBLP(1, 50000))
	if err != nil {
		b.Fatal(err)
	}
	pr := profile.Params{P: 3, Q: 3}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := StreamIndex(strings.NewReader(doc), Options{}, pr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-then-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := ParseString(doc, Options{})
			if err != nil {
				b.Fatal(err)
			}
			_ = profile.BuildIndex(tr, pr)
		}
	})
}
