package xmlconv

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"pqgram/internal/fingerprint"
	"pqgram/internal/profile"
)

// StreamIndex computes the pq-gram index of an XML document directly from
// the token stream, without materializing the tree. Memory is bounded by
// the document depth plus the child counts along one root path — for the
// paper's DBLP scale (211MB, 11M nodes) this is a few megabytes instead of
// gigabytes. The result is identical to Parse followed by
// profile.BuildIndex with the same options.
func StreamIndex(r io.Reader, opts Options, pr profile.Params) (profile.Index, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	dec := xml.NewDecoder(r)
	s := &streamer{opts: opts, pr: pr, idx: make(profile.Index)}
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlconv: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if len(s.stack) == 0 {
				if sawRoot {
					return nil, fmt.Errorf("xmlconv: multiple root elements")
				}
				sawRoot = true
			}
			s.open(tk.Name.Local)
			if !opts.SkipAttributes && len(tk.Attr) > 0 {
				attrs := make([]xml.Attr, len(tk.Attr))
				copy(attrs, tk.Attr)
				sort.Slice(attrs, func(i, j int) bool {
					return attrs[i].Name.Local < attrs[j].Name.Local
				})
				for _, a := range attrs {
					s.leafChild("@" + a.Name.Local + "=" + a.Value)
				}
			}
		case xml.EndElement:
			if len(s.stack) == 0 {
				return nil, fmt.Errorf("xmlconv: unbalanced end element %s", tk.Name.Local)
			}
			s.close()
		case xml.CharData:
			if opts.SkipText || len(s.stack) == 0 {
				continue
			}
			text := string(tk)
			if !opts.KeepWhitespaceText && strings.TrimSpace(text) == "" {
				continue
			}
			s.leafChild("=" + text)
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("xmlconv: no root element")
	}
	if len(s.stack) != 0 {
		return nil, fmt.Errorf("xmlconv: %d unclosed elements", len(s.stack))
	}
	return s.idx, nil
}

// frame is one open element: its label fingerprint and the fingerprints of
// the children seen so far.
type frame struct {
	label    fingerprint.Hash
	children []fingerprint.Hash
}

type streamer struct {
	opts  Options
	pr    profile.Params
	idx   profile.Index
	stack []frame
}

// open pushes an element with the given label.
func (s *streamer) open(label string) {
	s.stack = append(s.stack, frame{label: fingerprint.Of(label)})
}

// registerAt builds the null-padded p-part register for the node at stack
// depth `depth` (1-based innermost). Recomputing from the stack is cheap:
// p is a small constant.
func (s *streamer) registerAt(depth int) []fingerprint.Hash {
	reg := make([]fingerprint.Hash, s.pr.P)
	for i := 0; i < s.pr.P && i < depth; i++ {
		reg[s.pr.P-1-i] = s.stack[depth-1-i].label
	}
	return reg
}

// leafChild records a leaf (attribute or text) under the current element
// and emits its single pq-gram.
func (s *streamer) leafChild(label string) {
	h := fingerprint.Of(label)
	top := len(s.stack) - 1
	s.stack[top].children = append(s.stack[top].children, h)
	// The leaf's p-part: the last p-1 stack labels plus the leaf.
	tuple := make([]fingerprint.Hash, s.pr.Len())
	for i := 0; i < s.pr.P-1 && i < len(s.stack); i++ {
		tuple[s.pr.P-2-i] = s.stack[len(s.stack)-1-i].label
	}
	tuple[s.pr.P-1] = h
	// q-part: all nulls (already zero).
	s.idx.Add(profile.TupleOf(tuple...))
}

// close pops the current element, emitting its anchor pq-grams.
func (s *streamer) close() {
	top := len(s.stack) - 1
	f := s.stack[top]
	p, q := s.pr.P, s.pr.Q

	tuple := make([]fingerprint.Hash, p+q)
	copy(tuple[:p], s.registerAt(len(s.stack)))

	if len(f.children) == 0 {
		// Leaf element: single all-null q-part.
		s.idx.Add(profile.TupleOf(tuple...))
	} else {
		win := make([]fingerprint.Hash, 0, len(f.children)+2*(q-1))
		win = append(win, make([]fingerprint.Hash, q-1)...)
		win = append(win, f.children...)
		win = append(win, make([]fingerprint.Hash, q-1)...)
		for st := 0; st+q <= len(win); st++ {
			copy(tuple[p:], win[st:st+q])
			s.idx.Add(profile.TupleOf(tuple...))
		}
	}

	s.stack = s.stack[:top]
	if top > 0 {
		s.stack[top-1].children = append(s.stack[top-1].children, f.label)
	}
}
