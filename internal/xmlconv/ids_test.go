package xmlconv

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pqgram/internal/core"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

func TestIDsRoundTrip(t *testing.T) {
	// Parse, edit, serialize with sidecar, reparse, restore: identities
	// must match exactly.
	orig := mustParse(t, `<a><b x="1">text</b><c/></a>`, Options{})
	// Give it non-preorder IDs by editing.
	orig.AddChild(orig.Root(), "late")

	var doc, ids bytes.Buffer
	if err := Write(&doc, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDs(&ids, orig); err != nil {
		t.Fatal(err)
	}
	re, err := Parse(&doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyIDs(&ids, re); err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(orig, re) {
		t.Fatalf("identity not restored:\n%s\nvs\n%s", orig, re)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyIDsSizeMismatch(t *testing.T) {
	tr := mustParse(t, `<a><b/></a>`, Options{})
	if err := ApplyIDs(strings.NewReader("1\n2\n3\n"), tr); err == nil {
		t.Fatal("size mismatch not detected")
	}
	if err := ApplyIDs(strings.NewReader("1\n1\n"), tr); err == nil {
		t.Fatal("duplicate id not detected")
	}
	if err := ApplyIDs(strings.NewReader("1\nx\n"), tr); err == nil {
		t.Fatal("garbage id not detected")
	}
	if err := ApplyIDs(strings.NewReader("0\n2\n"), tr); err == nil {
		t.Fatal("non-positive id not detected")
	}
}

// TestXMLPipelineMaintenance replays the full CLI flow in-process: a
// document round-trips through XML with its ID sidecar and the log still
// drives a correct incremental index update.
func TestXMLPipelineMaintenance(t *testing.T) {
	p33 := profile.Params{P: 3, Q: 3}
	for seed := int64(0); seed < 10; seed++ {
		// Base document as it would be parsed from disk.
		var buf bytes.Buffer
		if err := Write(&buf, gen.DBLP(seed, 600)); err != nil {
			t.Fatal(err)
		}
		base, err := Parse(bytes.NewReader(buf.Bytes()), Options{})
		if err != nil {
			t.Fatal(err)
		}
		i0 := profile.BuildIndex(base, p33)

		// Edit with XML-safe operations, then serialize doc + sidecar.
		rng := rand.New(rand.NewSource(seed * 31))
		_, log, err := gen.RandomScript(rng, base, 30, gen.XMLSafeMix)
		if err != nil {
			t.Fatal(err)
		}
		var doc2, ids bytes.Buffer
		if err := Write(&doc2, base); err != nil {
			t.Fatal(err)
		}
		if err := WriteIDs(&ids, base); err != nil {
			t.Fatal(err)
		}

		// The "update side" sees only doc2 + sidecar + log + old index.
		tn, err := Parse(bytes.NewReader(doc2.Bytes()), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.EqualLabels(base, tn) {
			t.Fatalf("seed %d: XML-safe edits did not round-trip", seed)
		}
		if err := ApplyIDs(bytes.NewReader(ids.Bytes()), tn); err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(base, tn) {
			t.Fatalf("seed %d: identities not restored", seed)
		}
		in, err := core.UpdateIndex(i0, tn, log, p33)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Equal(profile.BuildIndex(tn, p33)) {
			t.Fatalf("seed %d: incremental index differs from rebuild", seed)
		}
	}
}
