package xmlconv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"pqgram/internal/tree"
)

// XML does not carry node identities, but the incremental index
// maintenance requires the edit log and the resulting tree to agree on
// them. WriteIDs/ApplyIDs persist and restore the preorder node-ID
// assignment of a tree as a small sidecar, so a document can round-trip
// through XML without losing identity.

// WriteIDs writes the tree's node identifiers in preorder, one decimal per
// line, preceded by a header line.
func WriteIDs(w io.Writer, t *tree.Tree) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pqgram node ids, preorder, %d nodes\n", t.Size()); err != nil {
		return err
	}
	for _, id := range t.PreorderIDs() {
		if _, err := fmt.Fprintln(bw, int64(id)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ApplyIDs reads a sidecar written by WriteIDs and renumbers the tree's
// nodes accordingly. The sidecar must describe a tree of the same size.
func ApplyIDs(r io.Reader, t *tree.Tree) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ids := make([]tree.NodeID, 0, t.Size())
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return fmt.Errorf("xmlconv: bad node id %q: %v", line, err)
		}
		ids = append(ids, tree.NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return t.SetIDs(ids)
}
