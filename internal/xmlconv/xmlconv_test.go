package xmlconv

import (
	"strings"
	"testing"

	"pqgram/internal/tree"
)

func mustParse(t *testing.T, s string, opts Options) *tree.Tree {
	t.Helper()
	tr, err := ParseString(s, opts)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("parsed tree invalid: %v", err)
	}
	return tr
}

func TestParseSimpleElement(t *testing.T) {
	tr := mustParse(t, `<a><b/><c/></a>`, Options{})
	if got := tr.Format(); got != "a(b c)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestParseNested(t *testing.T) {
	tr := mustParse(t, `<dblp><article><author>x</author></article></dblp>`, Options{})
	want := `dblp(article(author(=x)))`
	if got := tr.Format(); got != want {
		t.Fatalf("tree = %q, want %q", got, want)
	}
}

func TestParseAttributesSorted(t *testing.T) {
	tr := mustParse(t, `<a z="1" b="2"/>`, Options{})
	r := tr.Root()
	if r.Fanout() != 2 {
		t.Fatalf("fanout = %d", r.Fanout())
	}
	if r.Child(1).Label() != "@b=2" || r.Child(2).Label() != "@z=1" {
		t.Fatalf("attrs = %q, %q", r.Child(1).Label(), r.Child(2).Label())
	}
}

func TestParseSkipAttributes(t *testing.T) {
	tr := mustParse(t, `<a z="1" b="2"><c/></a>`, Options{SkipAttributes: true})
	if got := tr.Format(); got != "a(c)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestParseSkipText(t *testing.T) {
	tr := mustParse(t, `<a>hello<b/></a>`, Options{SkipText: true})
	if got := tr.Format(); got != "a(b)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestParseWhitespaceDropped(t *testing.T) {
	tr := mustParse(t, "<a>\n  <b/>\n</a>", Options{})
	if got := tr.Format(); got != "a(b)" {
		t.Fatalf("tree = %q", got)
	}
	tr2 := mustParse(t, "<a> <b/> </a>", Options{KeepWhitespaceText: true})
	if tr2.Root().Fanout() != 3 {
		t.Fatalf("whitespace not kept: fanout = %d", tr2.Root().Fanout())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<a>`,
		`</a>`,
		`<a></b>`,
		`<a/><b/>`,
		`text only`,
	}
	for _, s := range bad {
		if _, err := ParseString(s, Options{}); err == nil {
			t.Errorf("ParseString(%q) succeeded", s)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	docs := []string{
		`<a><b>text</b><c x="1"></c></a>`,
		`<dblp><article key="x"><author>A</author><title>T</title></article></dblp>`,
		`<r>mixed<e></e>tail</r>`,
	}
	for _, doc := range docs {
		tr := mustParse(t, doc, Options{})
		out, err := WriteString(tr)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		tr2 := mustParse(t, out, Options{})
		if !tree.EqualLabels(tr, tr2) {
			t.Errorf("round trip changed tree:\nin:  %s\nout: %s\n%s vs %s",
				doc, out, tr.Format(), tr2.Format())
		}
	}
}

func TestWriteEscaping(t *testing.T) {
	tr := tree.New("a")
	// Attributes precede content after a parse, so build in canonical order.
	tr.AddChild(tr.Root(), `@attr=va"lue`)
	tr.AddChild(tr.Root(), `=<&>`)
	out, err := WriteString(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := mustParse(t, out, Options{})
	if !tree.EqualLabels(tr, tr2) {
		t.Fatalf("escaping round trip failed: %q -> %q", tr.Format(), tr2.Format())
	}
}

func TestWriteBareAttributeNode(t *testing.T) {
	// An attribute label that ended up as a non-leaf or detached node
	// degrades to an empty element rather than failing.
	tr := tree.New("a")
	n := tr.AddChild(tr.Root(), "@x=1")
	tr.AddChild(n, "b")
	out, err := WriteString(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<x") {
		t.Fatalf("output = %q", out)
	}
}

func TestParseIDsAreDocumentOrder(t *testing.T) {
	tr := mustParse(t, `<a><b><c/></b><d/></a>`, Options{})
	labels := map[tree.NodeID]string{1: "a", 2: "b", 3: "c", 4: "d"}
	for id, want := range labels {
		n := tr.Node(id)
		if n == nil || n.Label() != want {
			t.Fatalf("node %d = %v, want %s", id, n, want)
		}
	}
}

func TestLargeFlatDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<item><name>n</name></item>")
	}
	b.WriteString("</root>")
	tr := mustParse(t, b.String(), Options{})
	if tr.Size() != 1+5000*3 {
		t.Fatalf("size = %d", tr.Size())
	}
	if tr.Root().Fanout() != 5000 {
		t.Fatalf("fanout = %d", tr.Root().Fanout())
	}
}
