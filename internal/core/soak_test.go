package core_test

import (
	"math/rand"
	"testing"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
)

// TestSoakIncrementalMaintenance stresses the full maintenance pipeline at
// realistic scales: document-shaped trees (XMark and DBLP generators, up
// to several thousand nodes), long mixed logs (up to 500 operations),
// optimizer preprocessing, and a spread of (p,q) values. Skipped in -short
// mode; it is the heavyweight companion of TestIncrementalMatchesRebuild.
func TestSoakIncrementalMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(2025))
	params := []profile.Params{{P: 1, Q: 2}, {P: 2, Q: 2}, {P: 3, Q: 3}, {P: 5, Q: 2}, {P: 2, Q: 5}, {P: 5, Q: 5}}
	mixes := []gen.OpMix{
		gen.DefaultMix,
		{Insert: 3, Delete: 1, Rename: 1},
		{Insert: 1, Delete: 3, Rename: 1},
		{Insert: 0, Delete: 0, Rename: 1},
		{Insert: 1, Delete: 1, Rename: 0},
	}
	for iter := 0; iter < 30; iter++ {
		pr := params[iter%len(params)]
		mix := mixes[iter%len(mixes)]
		var t0size = 500 + rng.Intn(4500)
		var doc = gen.XMark(int64(iter), t0size)
		if iter%2 == 1 {
			doc = gen.DBLP(int64(iter), t0size)
		}
		i0 := profile.BuildIndex(doc, pr)

		nOps := 50 + rng.Intn(451)
		_, log, err := gen.RandomScript(rng, doc, nOps, mix)
		if err != nil {
			t.Fatal(err)
		}
		// Half the iterations preprocess the log first (§10 future work).
		used := log
		if iter%2 == 0 {
			used = edit.OptimizeLog(doc, log)
		}
		in, st, err := core.UpdateIndexStats(i0, doc, used, pr)
		if err != nil {
			t.Fatalf("iter %d (params %v, %d ops): %v", iter, pr, nOps, err)
		}
		want := profile.BuildIndex(doc, pr)
		if !in.Equal(want) {
			t.Fatalf("iter %d (params %v, %d ops, optimized=%v): index mismatch",
				iter, pr, nOps, iter%2 == 0)
		}
		if st.PlusGrams == 0 && nOps > 0 && st.SkippedOps < len(used) {
			t.Fatalf("iter %d: no new pq-grams for a %d-op log", iter, nOps)
		}
	}
}
