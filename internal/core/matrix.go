package core

import (
	"fmt"

	"pqgram/internal/fingerprint"
)

// window is the splice representation of a q-(sub)matrix Q^{k..m}(a) of §7.2:
// the rows of the sub-matrix are exactly the sliding q-windows over the
// label sequence  left ++ diag ++ right, where diag holds the labels of the
// children c_k..c_m (the matrix diagonals of Figure 10) and left/right hold
// the q-1 context labels on either side (null-padded at the child-list
// boundaries). All // operators of the paper reduce to replacing diag and
// re-emitting windows.
type window struct {
	left  []fingerprint.Hash // length q-1
	diag  []fingerprint.Hash // length m-k+1 (may be 0)
	right []fingerprint.Hash // length q-1
}

func nullCtx(q int) []fingerprint.Hash { return make([]fingerprint.Hash, q-1) }

// extractWindow rebuilds the splice representation from the stored rows
// k..m+q-1 of a sub-matrix (as returned by qTable.getRange). rows may be
// empty only when the range itself is empty (q = 1 and m = k-1).
func extractWindow(rows []qRow, k, m, q int) (window, error) {
	nSeq := (m + q - 1) - (k - q + 1) + 1 // = m-k+1 + 2(q-1)
	if nSeq < 0 {
		nSeq = 0
	}
	seq := make([]fingerprint.Hash, nSeq)
	for idx := range seq {
		j := k - q + 1 + idx // sequence position (child index, may be out of [1,f])
		i := j
		if i < k {
			i = k
		}
		rowIdx := i - k
		if rowIdx >= len(rows) {
			return window{}, fmt.Errorf("core: sub-matrix rows %d..%d incomplete (have %d rows)", k, m+q-1, len(rows))
		}
		r := rows[rowIdx]
		if r.row != i {
			return window{}, fmt.Errorf("core: sub-matrix row %d numbered %d", i, r.row)
		}
		part := j - (i - q + 1)
		seq[idx] = r.part[part]
	}
	w := window{
		left:  seq[:q-1],
		diag:  seq[q-1 : q-1+(m-k+1)],
		right: seq[q-1+(m-k+1):],
	}
	return w, nil
}

// leafWindow is the splice representation of a leaf's (•…•) matrix: no
// diagonals, all-null context.
func leafWindow(q int) window {
	return window{left: nullCtx(q), diag: nil, right: nullCtx(q)}
}

// emitWindows materializes the rows of the sub-matrix obtained by replacing
// the window's diagonals with diag (the A//B operator): sliding q-windows
// over left ++ diag ++ right, numbered from startRow. Following §7.2's
// special cases, a result with no diagonals and all-null context is the
// empty matrix (the caller's replaceRange turns an anchor with no rows left
// into a leaf row).
func (w window) emitWindows(startRow int, diag []fingerprint.Hash, q int) []qRow {
	if len(diag) == 0 && allNull(w.left) && allNull(w.right) {
		return nil
	}
	seq := make([]fingerprint.Hash, 0, len(w.left)+len(diag)+len(w.right))
	seq = append(seq, w.left...)
	seq = append(seq, diag...)
	seq = append(seq, w.right...)
	n := len(seq) - q + 1
	if n <= 0 {
		return nil
	}
	rows := make([]qRow, n)
	for i := 0; i < n; i++ {
		part := make([]fingerprint.Hash, q)
		copy(part, seq[i:i+q])
		rows[i] = qRow{row: startRow + i, part: part}
	}
	return rows
}

// matrixShape reads the fanout and diagonal labels of a full q-matrix as
// stored in the Q table (rows 1..f+q-1, or the single all-null leaf row).
func matrixShape(rows []qRow, q int) (fanout int, diag []fingerprint.Hash, err error) {
	if len(rows) == 0 {
		return 0, nil, fmt.Errorf("core: empty q-matrix")
	}
	if isLeafMatrix(rows) {
		return 0, nil, nil
	}
	f := len(rows) - (q - 1)
	if f < 1 {
		return 0, nil, fmt.Errorf("core: q-matrix with %d rows cannot be full for q=%d", len(rows), q)
	}
	w, err := extractWindow(rows, 1, f, q)
	if err != nil {
		return 0, nil, err
	}
	return f, w.diag, nil
}
