package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/paperfix"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

var p33 = profile.Params{P: 3, Q: 3}

// anchored converts a profile (grams with full node identity) into the
// sorted bag of (anchor, label-tuple) pairs that Tables.Snapshot reports.
func anchored(prof profile.Profile, pr profile.Params) []core.AnchoredTuple {
	var out []core.AnchoredTuple
	for _, g := range prof {
		out = append(out, core.AnchoredTuple{Anchor: g.Anchor(pr).ID, Tuple: g.LabelTuple()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Anchor != out[j].Anchor {
			return out[i].Anchor < out[j].Anchor
		}
		return out[i].Tuple < out[j].Tuple
	})
	return out
}

func sameAnchored(t *testing.T, what string, got, want []core.AnchoredTuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d anchored tuples, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: anchor %d vs %d", what, i, got[i].Anchor, want[i].Anchor)
		}
	}
}

// supersetWithin asserts that got ⊇ want and that every extra element of
// got is drawn from allowed (the invariant pq-grams that the widened delta
// of AddDelta may legitimately over-include). All slices are sorted bags.
func supersetWithin(t *testing.T, what string, got, want, allowed []core.AnchoredTuple) {
	t.Helper()
	count := func(s []core.AnchoredTuple) map[core.AnchoredTuple]int {
		m := make(map[core.AnchoredTuple]int, len(s))
		for _, a := range s {
			m[a]++
		}
		return m
	}
	gm, am := count(got), count(allowed)
	for _, w := range want {
		if gm[w] == 0 {
			t.Fatalf("%s: missing required pq-gram at anchor %d", what, w.Anchor)
		}
		gm[w]--
	}
	for extra, c := range gm {
		if c > 0 && am[extra] < c {
			t.Fatalf("%s: %d extra pq-grams at anchor %d are not invariant", what, c, extra.Anchor)
		}
	}
}

// TestExample5DeltaPlus replays the paper's Example 5: Δ2⁺ computed on T2
// from the log (ē1 = DEL(n7), ē2 = INS(n3, n1, 2, 3)).
func TestExample5DeltaPlus(t *testing.T) {
	t2, log := paperfix.T2()
	tables := core.DeltaPlus(t2, log, p33)
	sameAnchored(t, "Δ2⁺", tables.Snapshot(), anchored(paperfix.DeltaPlus2(), p33))

	iPlus, err := tables.Lambda()
	if err != nil {
		t.Fatal(err)
	}
	if !iPlus.Equal(paperfix.LambdaDeltaPlus2()) {
		t.Error("λ(Δ2⁺) does not match Example 5")
	}
}

// TestExample5UpdateStep checks the intermediate state 𝒰(Δ2⁺, ē2) listed in
// Example 5, then the final Δ2⁻ and λ(Δ2⁻).
func TestExample5UpdateStep(t *testing.T) {
	t2, log := paperfix.T2()
	tables := core.DeltaPlus(t2, log, p33)

	if err := tables.Update(log[1]); err != nil { // ē2 = INS(n3, n1, 2, 3)
		t.Fatal(err)
	}
	sameAnchored(t, "𝒰(Δ2⁺, ē2)", tables.Snapshot(), anchored(paperfix.DeltaU2(), p33))

	if err := tables.Update(log[0]); err != nil { // ē1 = DEL(n7)
		t.Fatal(err)
	}
	sameAnchored(t, "Δ2⁻", tables.Snapshot(), anchored(paperfix.DeltaMinus2(), p33))

	iMinus, err := tables.Lambda()
	if err != nil {
		t.Fatal(err)
	}
	if !iMinus.Equal(paperfix.LambdaDeltaMinus2()) {
		t.Error("λ(Δ2⁻) does not match Example 5")
	}
}

// TestExample5FullUpdate runs Algorithm 1 end to end on the paper's example.
func TestExample5FullUpdate(t *testing.T) {
	t0 := paperfix.T0()
	i0 := profile.BuildIndex(t0, p33)
	t2, log := paperfix.T2()

	in, st, err := core.UpdateIndexStats(i0, t2, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	want := profile.BuildIndex(t2, p33)
	if !in.Equal(want) {
		t.Fatal("updated index differs from rebuilt index")
	}
	if st.PlusGrams != 9 || st.MinusGrams != 9 {
		t.Errorf("|Δ⁺|=%d |Δ⁻|=%d, want 9 and 9", st.PlusGrams, st.MinusGrams)
	}
	if st.SkippedOps != 0 {
		t.Errorf("skipped ops = %d, want 0", st.SkippedOps)
	}
	// I0 must be untouched.
	if !i0.Equal(profile.BuildIndex(t0, p33)) {
		t.Error("UpdateIndex mutated I0")
	}
}

// TestExample5ThreeOps extends the example with the third edit operation.
func TestExample5ThreeOps(t *testing.T) {
	t0 := paperfix.T0()
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	log, err := paperfix.ScriptWithThird().Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.UpdateIndex(i0, tn, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("updated index differs from rebuilt index")
	}
}

// TestDeltaAgainstBruteForce checks Algorithm 2 against Definition 4
// (δ(T_j, ē) = P_j \ P_i) for single random operations of every kind.
func TestDeltaAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	params := []profile.Params{pp(1, 1), pp(1, 2), pp(2, 1), pp(2, 2), pp(3, 3), pp(2, 4), pp(4, 2)}
	for iter := 0; iter < 200; iter++ {
		pr := params[iter%len(params)]
		ti := randomTree(rng, 2+rng.Intn(40))
		tj := ti.Clone()
		nextID := tj.MaxID() + 100
		op := randomOp(rng, tj, &nextID)
		inv, err := op.Apply(tj)
		if err != nil {
			t.Fatal(err)
		}
		tables := core.NewTables(pr)
		if !tables.AddDelta(tj, inv) {
			t.Fatalf("iter %d: inverse %v not applicable on T_j", iter, inv)
		}
		// AddDelta may over-approximate (identity widening): the result must
		// contain δ(T_j, ē) = P_j \ P_i exactly, plus at most invariant
		// pq-grams shared by both versions.
		pj, pi := profile.Build(tj, pr), profile.Build(ti, pr)
		supersetWithin(t, "δ", tables.Snapshot(),
			anchored(pj.Diff(pi), pr), anchored(pj.Intersect(pi), pr))
	}
}

// TestDeltaInapplicable checks Definition 4's empty case: operations that
// are not defined on the tree produce an empty delta.
func TestDeltaInapplicable(t *testing.T) {
	tr := tree.MustParse("a(b c)")
	tables := core.NewTables(p33)
	ops := []edit.Op{
		edit.Del(99),                // node not in tree
		edit.Ren(99, "x"),           // node not in tree
		edit.Ren(2, "b"),            // label unchanged
		edit.Ins(2, "x", 1, 1, 0),   // ID already present
		edit.Ins(10, "x", 99, 1, 0), // parent missing
		edit.Ins(10, "x", 1, 1, 5),  // m out of range
	}
	for _, op := range ops {
		if tables.AddDelta(tr, op) {
			t.Errorf("%v: delta should be empty", op)
		}
	}
	if tables.Len() != 0 {
		t.Fatalf("tables not empty: %d grams", tables.Len())
	}
}

// TestSingleStepFullProfile checks equation (10): 𝒰(P_j, ē_j) = P_i, by
// loading the complete profile of T_j into the tables and rewinding one op.
func TestSingleStepFullProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	params := []profile.Params{pp(1, 1), pp(2, 2), pp(3, 3), pp(1, 3), pp(3, 1), pp(2, 3), pp(4, 4)}
	for iter := 0; iter < 200; iter++ {
		pr := params[iter%len(params)]
		ti := randomTree(rng, 2+rng.Intn(30))
		tj := ti.Clone()
		nextID := tj.MaxID() + 100
		op := randomOp(rng, tj, &nextID)
		inv, err := op.Apply(tj)
		if err != nil {
			t.Fatal(err)
		}
		tables := core.NewTables(pr)
		tables.AddTree(tj)
		if err := tables.Update(inv); err != nil {
			t.Fatalf("iter %d (%v, params %v): %v", iter, inv, pr, err)
		}
		want := profile.Build(ti, pr)
		sameAnchored(t, "𝒰(P_j)", tables.Snapshot(), anchored(want, pr))
	}
}

// TestUpdateSymmetry checks 𝒰(δ(T_j, ē), ē) = δ(T_i, e): the rewound new
// pq-grams are exactly the old pq-grams.
func TestUpdateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 150; iter++ {
		ti := randomTree(rng, 2+rng.Intn(30))
		tj := ti.Clone()
		nextID := tj.MaxID() + 100
		op := randomOp(rng, tj, &nextID)
		inv, err := op.Apply(tj)
		if err != nil {
			t.Fatal(err)
		}
		tables := core.NewTables(p33)
		tables.AddDelta(tj, inv)
		if err := tables.Update(inv); err != nil {
			t.Fatalf("iter %d (%v): %v", iter, inv, err)
		}
		// The rewound set must contain δ(T_i, e) = P_i \ P_j exactly, plus
		// at most invariant pq-grams (from the widened input delta, which
		// pass through 𝒰 unchanged).
		pi, pj := profile.Build(ti, p33), profile.Build(tj, p33)
		supersetWithin(t, "old pq-grams", tables.Snapshot(),
			anchored(pi.Diff(pj), p33), anchored(pi.Intersect(pj), p33))
	}
}

// TestIncrementalMatchesRebuild is the master property test (Theorems 1, 2
// and Lemma 2 combined): for random trees and random edit scripts, the
// incrementally updated index equals the index rebuilt from scratch.
func TestIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	params := []profile.Params{pp(1, 1), pp(1, 2), pp(2, 1), pp(2, 2), pp(3, 3), pp(2, 4), pp(4, 2), pp(4, 4)}
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for iter := 0; iter < iters; iter++ {
		pr := params[iter%len(params)]
		t0 := randomTree(rng, 1+rng.Intn(60))
		i0 := profile.BuildIndex(t0, pr)
		tn := t0.Clone()
		nextID := tn.MaxID() + 1000
		nOps := 1 + rng.Intn(25)
		var script edit.Script
		var log edit.Log
		for i := 0; i < nOps; i++ {
			op := randomOp(rng, tn, &nextID)
			inv, err := op.Apply(tn)
			if err != nil {
				t.Fatalf("iter %d: %v: %v", iter, op, err)
			}
			script = append(script, op)
			log = append(log, inv)
		}
		in, err := core.UpdateIndex(i0, tn, log, pr)
		if err != nil {
			t.Fatalf("iter %d params %v script %v: %v", iter, pr, script, err)
		}
		want := profile.BuildIndex(tn, pr)
		if !in.Equal(want) {
			t.Fatalf("iter %d params %v: incremental index differs from rebuild\nscript: %v\nT0: %sTn: %s",
				iter, pr, script, t0, tn)
		}
	}
}

// TestScenarioRenameThenDelete: the rename's inverse is inapplicable on Tn
// (the node is gone), exercising Definition 4's empty case inside a log.
func TestScenarioRenameThenDelete(t *testing.T) {
	t0 := tree.MustParse("a(b(c d) e)")
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	script := edit.Script{edit.Ren(2, "x"), edit.Del(2)}
	log, err := script.Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	in, st, err := core.UpdateIndexStats(i0, tn, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedOps != 1 {
		t.Errorf("skipped ops = %d, want 1 (ē1 = REN back is inapplicable)", st.SkippedOps)
	}
	if !in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("index mismatch")
	}
}

// TestScenarioInsertThenDeleteSameNode: a node inserted and then deleted
// never appears in Tn; both inverses interact.
func TestScenarioInsertThenDeleteSameNode(t *testing.T) {
	t0 := tree.MustParse("a(b c d)")
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	script := edit.Script{
		edit.Ins(50, "n", 1, 2, 3), // adopt c, d... wait IDs: 1:a 2:b 3:c 4:d
		edit.Del(50),
	}
	log, err := script.Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.EqualLabels(t0, tn) {
		t.Fatal("script should be a no-op on labels")
	}
	in, err := core.UpdateIndex(i0, tn, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("index mismatch")
	}
}

// TestScenarioMoveWithFreshID: a "move" simulated as DEL + INS, giving the
// re-inserted node a fresh identity (the supported encoding; see
// TestIDReuseUnsupported for why the identity must be fresh).
func TestScenarioMoveWithFreshID(t *testing.T) {
	t0 := tree.MustParse("a(b(x y) c)")
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	// Delete b (splices x,y under a), then insert a new b leaf at the end.
	script := edit.Script{edit.Del(2), edit.Ins(50, "b", 1, 4, 3)}
	log, err := script.Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.UpdateIndex(i0, tn, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("index mismatch")
	}
}

// TestIDReuseUnsupported documents a limitation inherited from the paper:
// re-inserting a previously deleted node identity breaks Lemma 3 (the
// inverse of the earlier delete is inapplicable on Tn per Definition 4, so
// its delta is empty and the rewind chain lacks pq-grams it needs). The
// implementation must fail loudly rather than return a silently wrong
// index. edit.CheckFreshIDs detects such scripts up front.
func TestIDReuseUnsupported(t *testing.T) {
	t0 := tree.MustParse("a(b(x y) c)")
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	script := edit.Script{edit.Del(2), edit.Ins(2, "b", 1, 4, 3)} // reuses ID 2
	if err := edit.CheckFreshIDs(t0, script); err == nil {
		t.Error("CheckFreshIDs missed the ID reuse")
	}
	log, err := script.Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.UpdateIndex(i0, tn, log, p33)
	if err == nil && in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("ID reuse unexpectedly produced a correct index; tighten the test")
	}
	if err == nil {
		t.Fatal("ID reuse produced a wrong index without an error")
	}
}

// TestScenarioAdjacentSiblingOps: overlapping delta regions under one parent.
func TestScenarioAdjacentSiblingOps(t *testing.T) {
	t0 := tree.MustParse("a(b c d e f)")
	i0 := profile.BuildIndex(t0, p33)
	tn := t0.Clone()
	script := edit.Script{
		edit.Del(3),                // delete c
		edit.Del(4),                // delete d (now 2nd pos)
		edit.Ins(60, "g", 1, 2, 3), // group b's neighbors
		edit.Ren(5, "E"),
	}
	log, err := script.Apply(tn)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.UpdateIndex(i0, tn, log, p33)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(profile.BuildIndex(tn, p33)) {
		t.Fatal("index mismatch")
	}
}

// TestScenarioDeepChain exercises the p boundary on a path-shaped tree.
func TestScenarioDeepChain(t *testing.T) {
	t0 := tree.MustParse("a(b(c(d(e(f(g))))))")
	for _, pr := range []profile.Params{pp(1, 1), pp(3, 3), pp(5, 2), pp(7, 1)} {
		i0 := profile.BuildIndex(t0, pr)
		tn := t0.Clone()
		script := edit.Script{
			edit.Ren(4, "D"),
			edit.Del(3),
			edit.Ins(70, "x", 2, 1, 1),
		}
		log, err := script.Apply(tn)
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.UpdateIndex(i0, tn, log, pr)
		if err != nil {
			t.Fatalf("params %v: %v", pr, err)
		}
		if !in.Equal(profile.BuildIndex(tn, pr)) {
			t.Fatalf("params %v: index mismatch", pr)
		}
	}
}

// TestScenarioWideNode exercises the q boundary on a star-shaped tree.
func TestScenarioWideNode(t *testing.T) {
	t0 := tree.New("r")
	for i := 0; i < 20; i++ {
		t0.AddChild(t0.Root(), "c")
	}
	for _, pr := range []profile.Params{pp(1, 1), pp(3, 3), pp(2, 5), pp(1, 8)} {
		i0 := profile.BuildIndex(t0, pr)
		tn := t0.Clone()
		script := edit.Script{
			edit.Del(5),
			edit.Ins(100, "m", 1, 3, 10),
			edit.Ren(12, "C"),
			edit.Del(100),
		}
		log, err := script.Apply(tn)
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.UpdateIndex(i0, tn, log, pr)
		if err != nil {
			t.Fatalf("params %v: %v", pr, err)
		}
		if !in.Equal(profile.BuildIndex(tn, pr)) {
			t.Fatalf("params %v: index mismatch", pr)
		}
	}
}

// TestEmptyLog: no operations, index unchanged.
func TestEmptyLog(t *testing.T) {
	t0 := paperfix.T0()
	i0 := profile.BuildIndex(t0, p33)
	in, st, err := core.UpdateIndexStats(i0, t0, nil, p33)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(i0) {
		t.Fatal("empty log changed index")
	}
	if st.PlusGrams != 0 || st.MinusGrams != 0 {
		t.Fatal("empty log produced deltas")
	}
}

// TestBogusLogFails: a log that does not belong to the tree must surface an
// error rather than silently corrupting the index.
func TestBogusLogFails(t *testing.T) {
	t0 := paperfix.T0()
	i0 := profile.BuildIndex(t0, p33)
	// DEL(2) is applicable on T0 so the delta is non-empty, but rewinding
	// INS for a node that was never deleted gives inconsistent tables or a
	// wrong index; the weaker guarantee is: either error or detectably
	// wrong result. Use a log whose rewind references missing anchors.
	bogus := edit.Log{edit.Ins(999, "z", 888, 1, 0)}
	_, err := core.UpdateIndex(i0, t0, bogus, p33)
	if err == nil {
		t.Fatal("bogus log did not error")
	}
}

// TestWrongBaseIndexFails: I⁻ not contained in I₀ is reported.
func TestWrongBaseIndexFails(t *testing.T) {
	tn, log := paperfix.T2()
	empty := make(profile.Index) // wrong I0
	_, err := core.UpdateIndex(empty, tn, log, p33)
	if err == nil {
		t.Fatal("expected containment error")
	}
}

// TestTablesLambdaConsistency: Lambda equals the index of the loaded tree.
func TestTablesLambdaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 20; i++ {
		tr := randomTree(rng, 1+rng.Intn(50))
		tables := core.NewTables(p33)
		tables.AddTree(tr)
		got, err := tables.Lambda()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(profile.BuildIndex(tr, p33)) {
			t.Fatal("Lambda differs from BuildIndex")
		}
		if tables.Len() != profile.Count(tr, p33) {
			t.Fatal("Len differs from Count")
		}
	}
}

// TestUnindexedTablesAgree: the parId secondary index is an optimization
// only; results must be identical without it.
func TestUnindexedTablesAgree(t *testing.T) {
	t2, log := paperfix.T2()
	a := core.NewTablesIndexed(p33, true)
	b := core.NewTablesIndexed(p33, false)
	for _, op := range log {
		a.AddDelta(t2, op)
		b.AddDelta(t2, op)
	}
	if err := a.Rewind(log); err != nil {
		t.Fatal(err)
	}
	if err := b.Rewind(log); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sameAnchored(t, "unindexed", sb, sa)
}

// TestAnchors reports the distinct anchors present.
func TestAnchors(t *testing.T) {
	t2, log := paperfix.T2()
	tables := core.DeltaPlus(t2, log, p33)
	got := tables.Anchors()
	want := []tree.NodeID{1, 5, 6, 7} // anchors of Δ2⁺
	if len(got) != len(want) {
		t.Fatalf("anchors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("anchors = %v, want %v", got, want)
		}
	}
}

// randomTree builds a random tree with n nodes.
func randomTree(rng *rand.Rand, n int) *tree.Tree {
	labels := []string{"a", "b", "c", "d", "e"}
	tr := tree.New(labels[rng.Intn(len(labels))])
	nodes := []*tree.Node{tr.Root()}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		pos := rng.Intn(parent.Fanout()+1) + 1
		c := tr.AddChildAt(parent, labels[rng.Intn(len(labels))], pos)
		nodes = append(nodes, c)
	}
	return tr
}

// randomOp picks a random applicable operation for tr.
func randomOp(rng *rand.Rand, tr *tree.Tree, nextID *tree.NodeID) edit.Op {
	labels := []string{"a", "b", "c", "d", "e"}
	nodes := tr.Nodes()
	for {
		switch rng.Intn(3) {
		case 0:
			v := nodes[rng.Intn(len(nodes))]
			k := 1
			if v.Fanout() > 0 {
				k = rng.Intn(v.Fanout()) + 1
			}
			m := k - 1 + rng.Intn(v.Fanout()-k+2)
			*nextID++
			return edit.Ins(*nextID, labels[rng.Intn(len(labels))], v.ID(), k, m)
		case 1:
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			return edit.Del(n.ID())
		default:
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			l := labels[rng.Intn(len(labels))]
			if n.Label() == l {
				continue
			}
			return edit.Ren(n.ID(), l)
		}
	}
}

// pp builds profile parameters concisely in test tables.
func pp(p, q int) profile.Params { return profile.Params{P: p, Q: q} }

// TestSubtreeOperationLogs: logs produced by compiled subtree operations
// (delete, insert, move — §10 future work) drive correct maintenance.
func TestSubtreeOperationLogs(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 60; iter++ {
		t0 := randomTree(rng, 5+rng.Intn(40))
		i0 := profile.BuildIndex(t0, p33)
		tn := t0.Clone()
		nodes := tn.Nodes()
		var script edit.Script
		var err error
		switch iter % 3 {
		case 0:
			n := nodes[1+rng.Intn(len(nodes)-1)]
			script, err = edit.SubtreeDelete(tn, n.ID())
		case 1:
			sub := randomTree(rng, 1+rng.Intn(8))
			v := nodes[rng.Intn(len(nodes))]
			script, _, err = edit.SubtreeInsert(sub, v.ID(), rng.Intn(v.Fanout()+1)+1, tn.MaxID()+1000)
		default:
			n := nodes[1+rng.Intn(len(nodes)-1)]
			// Pick a target outside n's subtree.
			var v *tree.Node
			for _, cand := range nodes {
				if cand != n && !n.IsAncestorOf(cand) {
					v = cand
					break
				}
			}
			if v == nil {
				continue
			}
			// Position on v after n's subtree is removed: clamp to the
			// post-delete fanout lower bound 1.
			script, _, err = edit.SubtreeMove(tn, n.ID(), v.ID(), 1, tn.MaxID()+1000)
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		log, err := script.Apply(tn)
		if err != nil {
			t.Fatalf("iter %d: apply: %v", iter, err)
		}
		in, err := core.UpdateIndex(i0, tn, log, p33)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !in.Equal(profile.BuildIndex(tn, p33)) {
			t.Fatalf("iter %d: subtree-op log produced wrong index", iter)
		}
	}
}

// TestOptimizedLogsMaintainCorrectly: logs shrunk by edit.OptimizeLog drive
// the same, correct index update.
func TestOptimizedLogsMaintainCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	shrunk := 0
	for iter := 0; iter < 150; iter++ {
		t0 := randomTree(rng, 3+rng.Intn(30))
		i0 := profile.BuildIndex(t0, p33)
		tn := t0.Clone()
		nextID := tn.MaxID() + 1000
		var log edit.Log
		for i := 0; i < 2+rng.Intn(16); i++ {
			op := randomOp(rng, tn, &nextID)
			inv, err := op.Apply(tn)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, inv)
			// Inject redundancy: rename chains.
			if op.Kind == edit.Rename && rng.Intn(2) == 0 {
				op2 := edit.Ren(op.Node, op.Label+"-again")
				if inv2, err := op2.Apply(tn); err == nil {
					log = append(log, inv2)
				}
			}
		}
		opt := edit.OptimizeLog(tn, log)
		if len(opt) < len(log) {
			shrunk++
		}
		in, err := core.UpdateIndex(i0, tn, opt, p33)
		if err != nil {
			t.Fatalf("iter %d: %v\nlog: %v\nopt: %v", iter, err, log, opt)
		}
		if !in.Equal(profile.BuildIndex(tn, p33)) {
			t.Fatalf("iter %d: optimized log produced wrong index\nlog: %v\nopt: %v", iter, log, opt)
		}
	}
	if shrunk == 0 {
		t.Fatal("optimizer never shrank a log; redundancy injection broken")
	}
}
