// Package core implements the incremental maintenance of the pq-gram index
// (Augsten, Böhlen and Gamper, VLDB 2006, §4–§8): given the old index I₀,
// the resulting tree Tₙ, and the log of inverse edit operations
// (ē₁, ..., ēₙ), it computes the new index Iₙ without reconstructing any
// intermediate tree version.
//
// The pq-grams touched by the log are held in the temporary table pair
// (P, Q) of §8.1: P stores one tuple (anchId, sibPos, parId, ppart) per
// anchor node, Q stores the rows (anchId, row, qpart) of each anchor's
// q-matrix. The delta function (Algorithm 2) fills the tables from Tₙ; the
// profile update function (Algorithm 3) rewinds them, one log entry at a
// time, into the old pq-grams.
package core

import (
	"fmt"
	"sort"

	"pqgram/internal/fingerprint"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// pEntry is one P tuple: the p-part of all pq-grams anchored at a node,
// together with the structural bookkeeping the update function needs
// (sibling position and parent, Figure 12).
type pEntry struct {
	anch   tree.NodeID
	sibPos int                // 1-based position among the parent's children; 0 for the root
	parent tree.NodeID        // NilID for the root
	ppart  []fingerprint.Hash // length p: (a_{p-1}, ..., a_1, anch) label hashes
	fanout int                // number of children in the current tree version
}

// pTable is the P relation, keyed by anchor ID with a secondary index on
// parId (the paper reports that an index on the anchor IDs gives a
// substantial performance advantage; the parId index serves the
// σ_{parId=v} selections of Algorithm 3).
type pTable struct {
	byAnchor map[tree.NodeID]*pEntry
	byParent map[tree.NodeID]map[tree.NodeID]*pEntry
	indexed  bool // maintain byParent (ablation knob; on by default)
}

func newPTable(indexed bool) *pTable {
	return &pTable{
		byAnchor: make(map[tree.NodeID]*pEntry),
		byParent: make(map[tree.NodeID]map[tree.NodeID]*pEntry),
		indexed:  indexed,
	}
}

func (p *pTable) get(anch tree.NodeID) *pEntry { return p.byAnchor[anch] }

// put inserts the entry if its anchor is not yet present (the duplicate
// prevention of §8.1). It reports whether the entry was inserted.
func (p *pTable) put(e *pEntry) bool {
	if _, ok := p.byAnchor[e.anch]; ok {
		return false
	}
	p.byAnchor[e.anch] = e
	p.indexAdd(e)
	return true
}

func (p *pTable) indexAdd(e *pEntry) {
	if !p.indexed {
		return
	}
	m := p.byParent[e.parent]
	if m == nil {
		m = make(map[tree.NodeID]*pEntry)
		p.byParent[e.parent] = m
	}
	m[e.anch] = e
}

func (p *pTable) indexRemove(e *pEntry) {
	if !p.indexed {
		return
	}
	if m := p.byParent[e.parent]; m != nil {
		delete(m, e.anch)
		if len(m) == 0 {
			delete(p.byParent, e.parent)
		}
	}
}

func (p *pTable) delete(anch tree.NodeID) {
	if e, ok := p.byAnchor[anch]; ok {
		p.indexRemove(e)
		delete(p.byAnchor, anch)
	}
}

// setParent rewires the parent/sibPos of an existing entry, keeping the
// secondary index consistent.
func (p *pTable) setParent(e *pEntry, parent tree.NodeID, sibPos int) {
	p.indexRemove(e)
	e.parent = parent
	e.sibPos = sibPos
	p.indexAdd(e)
}

// childrenOf returns the entries with parId = v, i.e. σ_{parId=v}(P).
func (p *pTable) childrenOf(v tree.NodeID) []*pEntry {
	var out []*pEntry
	if p.indexed {
		for _, e := range p.byParent[v] {
			out = append(out, e)
		}
	} else {
		for _, e := range p.byAnchor {
			if e.parent == v {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sibPos < out[j].sibPos })
	return out
}

// childrenInRange returns σ_{parId=v, k<=sibPos<=m}(P), ordered by sibPos.
func (p *pTable) childrenInRange(v tree.NodeID, k, m int) []*pEntry {
	all := p.childrenOf(v)
	out := all[:0:0]
	for _, e := range all {
		if e.sibPos >= k && e.sibPos <= m {
			out = append(out, e)
		}
	}
	return out
}

// shiftSiblings adds delta to the sibPos of every entry with parId = v and
// sibPos > after.
func (p *pTable) shiftSiblings(v tree.NodeID, after, delta int) {
	if delta == 0 {
		return
	}
	for _, e := range p.childrenOf(v) {
		if e.sibPos > after {
			e.sibPos += delta
		}
	}
}

func (p *pTable) len() int { return len(p.byAnchor) }

// qRow is one Q tuple: row `row` of the anchor's q-matrix.
type qRow struct {
	row  int
	part []fingerprint.Hash // length q
}

// qTable is the Q relation: per anchor, the stored rows of its q-matrix
// ordered by row number. A leaf anchor is represented by a single all-null
// row with row number 1, exactly as the paper's Q-matrix of a leaf.
type qTable struct {
	rows map[tree.NodeID][]qRow
}

func newQTable() *qTable { return &qTable{rows: make(map[tree.NodeID][]qRow)} }

// put inserts the row if (anchor, row) is not yet present (duplicate
// prevention). It reports whether it was inserted.
func (q *qTable) put(anch tree.NodeID, r qRow) bool {
	rows := q.rows[anch]
	i := sort.Search(len(rows), func(i int) bool { return rows[i].row >= r.row })
	if i < len(rows) && rows[i].row == r.row {
		return false
	}
	rows = append(rows, qRow{})
	copy(rows[i+1:], rows[i:])
	rows[i] = r
	q.rows[anch] = rows
	return true
}

// all returns every stored row of the anchor, ordered by row number.
func (q *qTable) all(anch tree.NodeID) []qRow { return q.rows[anch] }

// getRange returns the stored rows with lo <= row <= hi, ordered. It
// reports an error if any row in the range is missing: the maintenance
// invariants (Lemma 7) guarantee presence, so a gap indicates a corrupted
// log or a bug.
func (q *qTable) getRange(anch tree.NodeID, lo, hi int) ([]qRow, error) {
	if hi < lo {
		return nil, nil
	}
	rows := q.rows[anch]
	i := sort.Search(len(rows), func(i int) bool { return rows[i].row >= lo })
	want := hi - lo + 1
	if i+want > len(rows) {
		return nil, fmt.Errorf("core: anchor %d rows %d..%d not all present", anch, lo, hi)
	}
	out := rows[i : i+want]
	for j, r := range out {
		if r.row != lo+j {
			return nil, fmt.Errorf("core: anchor %d missing row %d in range %d..%d", anch, lo+j, lo, hi)
		}
	}
	return out, nil
}

// replaceRange removes rows lo..hi of the anchor, inserts the replacement
// rows (already numbered starting at lo), and shifts every subsequent row
// number by len(repl) - (hi-lo+1). Rows below lo are untouched. Callers are
// responsible for storing the (•…•) leaf row when the anchor becomes a true
// leaf — the tables alone cannot tell a leaf from an anchor with no stored
// rows (for q = 1 there is no context), so the fanout bookkeeping in P
// decides.
func (q *qTable) replaceRange(anch tree.NodeID, lo, hi int, repl []qRow) {
	rows := q.rows[anch]
	i := sort.Search(len(rows), func(i int) bool { return rows[i].row >= lo })
	j := sort.Search(len(rows), func(i int) bool { return rows[i].row > hi })
	shift := len(repl) - (hi - lo + 1)
	out := make([]qRow, 0, i+len(repl)+len(rows)-j)
	out = append(out, rows[:i]...)
	out = append(out, repl...)
	for _, r := range rows[j:] {
		r.row += shift
		out = append(out, r)
	}
	q.setAll(anch, out)
}

// deleteAnchor removes every row of the anchor.
func (q *qTable) deleteAnchor(anch tree.NodeID) { delete(q.rows, anch) }

// setAll replaces the anchor's rows wholesale.
func (q *qTable) setAll(anch tree.NodeID, rows []qRow) {
	if len(rows) == 0 {
		delete(q.rows, anch)
		return
	}
	q.rows[anch] = rows
}

func (q *qTable) rowCount() int {
	n := 0
	for _, rs := range q.rows {
		n += len(rs)
	}
	return n
}

// leafRow is the single all-null row representing the q-matrix of a leaf.
func leafRow(qlen int) qRow {
	return qRow{row: 1, part: make([]fingerprint.Hash, qlen)}
}

func allNull(part []fingerprint.Hash) bool {
	for _, h := range part {
		if h != fingerprint.Null {
			return false
		}
	}
	return true
}

// isLeafMatrix reports whether the stored rows represent a leaf anchor.
func isLeafMatrix(rows []qRow) bool {
	return len(rows) == 1 && rows[0].row == 1 && allNull(rows[0].part)
}

// Tables is the temporary (P, Q) table pair holding a set of pq-grams
// during index maintenance.
type Tables struct {
	pr profile.Params
	p  *pTable
	q  *qTable
}

// NewTables creates an empty table pair for the given parameters.
func NewTables(pr profile.Params) *Tables {
	return NewTablesIndexed(pr, true)
}

// NewTablesIndexed creates an empty table pair, optionally without the
// parId secondary index (for the ablation benchmark of §8.1's claim).
func NewTablesIndexed(pr profile.Params, indexed bool) *Tables {
	if err := pr.Validate(); err != nil {
		panic(err)
	}
	return &Tables{pr: pr, p: newPTable(indexed), q: newQTable()}
}

// Params returns the pq-gram parameters of the table pair.
func (t *Tables) Params() profile.Params { return t.pr }

// Len returns the number of pq-grams currently represented: the number of
// (P ⋈ Q) join results.
func (t *Tables) Len() int {
	n := 0
	for anch := range t.p.byAnchor {
		n += len(t.q.all(anch))
	}
	return n
}

// Anchors returns the anchor IDs present, in ascending order.
func (t *Tables) Anchors() []tree.NodeID {
	out := make([]tree.NodeID, 0, t.p.len())
	for id := range t.p.byAnchor {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lambda computes λ(P, Q) (equation 31): the bag of label-tuples obtained
// by joining P and Q on the anchor ID and concatenating ppart with each
// qpart. It reports an error if the join is lossy (an anchor present in one
// table but not the other), which indicates a maintenance bug.
func (t *Tables) Lambda() (profile.Index, error) {
	idx := make(profile.Index, t.p.len()*2)
	for anch, e := range t.p.byAnchor {
		// A p-part without q-parts represents no pq-grams: it is retained
		// metadata (see AddDelta on degenerate q=1 leaf inserts).
		for _, r := range t.q.all(anch) {
			tuple := make([]fingerprint.Hash, 0, t.pr.Len())
			tuple = append(tuple, e.ppart...)
			tuple = append(tuple, r.part...)
			idx.Add(profile.TupleOf(tuple...))
		}
	}
	for anch := range t.q.rows {
		if t.p.get(anch) == nil {
			return nil, fmt.Errorf("core: anchor %d has q-parts but no p-part", anch)
		}
	}
	return idx, nil
}

// Snapshot returns the represented pq-grams as (anchor, label-tuple) pairs
// for inspection in tests: node identity of the anchor plus the full label
// tuple. The slice is sorted for stable comparison.
func (t *Tables) Snapshot() []AnchoredTuple {
	var out []AnchoredTuple
	for anch, e := range t.p.byAnchor {
		for _, r := range t.q.all(anch) {
			tuple := make([]fingerprint.Hash, 0, t.pr.Len())
			tuple = append(tuple, e.ppart...)
			tuple = append(tuple, r.part...)
			out = append(out, AnchoredTuple{Anchor: anch, Tuple: profile.TupleOf(tuple...)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Anchor != out[j].Anchor {
			return out[i].Anchor < out[j].Anchor
		}
		return out[i].Tuple < out[j].Tuple
	})
	return out
}

// AnchoredTuple pairs a pq-gram's anchor node ID with its label tuple.
type AnchoredTuple struct {
	Anchor tree.NodeID
	Tuple  profile.LabelTuple
}
