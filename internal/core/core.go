package core

import (
	"fmt"
	"time"

	"pqgram/internal/edit"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// DeltaPlus computes Δₙ⁺ (Theorem 1): the table pair holding
// ⋃ₖ δ(Tₙ, ēₖ) for every operation of the log, evaluated on the resulting
// tree Tₙ.
func DeltaPlus(tn *tree.Tree, log edit.Log, pr profile.Params) *Tables {
	t := NewTables(pr)
	for _, op := range log {
		t.AddDelta(tn, op)
	}
	return t
}

// Rewind applies the profile update function for every log entry in reverse
// order (ēₙ, ..., ē₁), transforming Δₙ⁺ into Δₙ⁻ in place (Theorem 2).
func (t *Tables) Rewind(log edit.Log) error {
	for i := len(log) - 1; i >= 0; i-- {
		if err := t.Update(log[i]); err != nil {
			return fmt.Errorf("core: rewinding log entry %d: %w", i+1, err)
		}
	}
	return nil
}

// UpdateIndex implements Algorithm 1: it computes the index Iₙ of the tree
// Tₙ from the old index I₀ (of the unavailable tree T₀), the resulting tree
// Tₙ, and the log of inverse edit operations, without reconstructing any
// intermediate tree version:
//
//	Δₙ⁺ = δ(Tₙ,ē₁) ∪ … ∪ δ(Tₙ,ēₙ)
//	Δₙ⁻ = 𝒰(…𝒰(Δₙ⁺, ēₙ)…, ē₁)
//	Iₙ  = I₀ ∖ λ(Δₙ⁻) ⊎ λ(Δₙ⁺)
//
// I₀ is not modified. The returned error is non-nil only if the log does
// not belong to the tree/index pair (or the index is corrupt).
func UpdateIndex(i0 profile.Index, tn *tree.Tree, log edit.Log, pr profile.Params) (profile.Index, error) {
	idx, _, err := UpdateIndexStats(i0, tn, log, pr)
	return idx, err
}

// Stats is the per-step timing breakdown of one UpdateIndex run, mirroring
// the rows of Table 2 of the paper.
type Stats struct {
	DeltaPlus   time.Duration // computing Δₙ⁺ on Tₙ (Algorithm 2, |L| times)
	LambdaPlus  time.Duration // I⁺ = λ(Δₙ⁺)
	DeltaMinus  time.Duration // rewinding Δₙ⁺ to Δₙ⁻ (Algorithm 3, |L| times)
	LambdaMinus time.Duration // I⁻ = λ(Δₙ⁻)
	ApplyIndex  time.Duration // Iₙ = I₀ ∖ I⁻ ⊎ I⁺
	Total       time.Duration

	PlusGrams  int // |Δₙ⁺|
	MinusGrams int // |Δₙ⁻|
	SkippedOps int // log entries with empty delta (not applicable on Tₙ)
}

// UpdateIndexStats is UpdateIndex with a per-step timing breakdown.
func UpdateIndexStats(i0 profile.Index, tn *tree.Tree, log edit.Log, pr profile.Params) (profile.Index, Stats, error) {
	iPlus, iMinus, st, err := Deltas(tn, log, pr)
	if err != nil {
		return nil, st, err
	}
	t0 := time.Now()
	in := i0.Clone()
	if err := ApplyDeltas(in, iPlus, iMinus); err != nil {
		return nil, st, err
	}
	st.ApplyIndex = time.Since(t0)
	st.Total += st.ApplyIndex
	return in, st, nil
}

// UpdateIndexInPlace is UpdateIndex applied destructively to i0, matching
// the paper's implementation where I₀ ∖ I⁻ ⊎ I⁺ is an UPDATE on the stored
// relation. On error i0 may hold a partially applied delta and must be
// discarded.
func UpdateIndexInPlace(i0 profile.Index, tn *tree.Tree, log edit.Log, pr profile.Params) (Stats, error) {
	iPlus, iMinus, st, err := Deltas(tn, log, pr)
	if err != nil {
		return st, err
	}
	t0 := time.Now()
	if err := ApplyDeltas(i0, iPlus, iMinus); err != nil {
		return st, err
	}
	st.ApplyIndex = time.Since(t0)
	st.Total += st.ApplyIndex
	return st, nil
}

// Deltas computes the index-level deltas of Algorithm 1 without applying
// them: I⁺ = λ(Δₙ⁺) and I⁻ = λ(Δₙ⁻). Callers that maintain additional
// structures keyed by label-tuple (e.g. the inverted postings of a forest
// index) can apply the same deltas everywhere.
func Deltas(tn *tree.Tree, log edit.Log, pr profile.Params) (iPlus, iMinus profile.Index, st Stats, err error) {
	start := time.Now()

	t0 := time.Now()
	tables := NewTables(pr)
	for _, op := range log {
		if !tables.AddDelta(tn, op) {
			st.SkippedOps++
		}
	}
	st.DeltaPlus = time.Since(t0)
	st.PlusGrams = tables.Len()

	t0 = time.Now()
	iPlus, err = tables.Lambda()
	if err != nil {
		return nil, nil, st, err
	}
	st.LambdaPlus = time.Since(t0)

	t0 = time.Now()
	if err = tables.Rewind(log); err != nil {
		return nil, nil, st, err
	}
	st.DeltaMinus = time.Since(t0)
	st.MinusGrams = tables.Len()

	t0 = time.Now()
	iMinus, err = tables.Lambda()
	if err != nil {
		return nil, nil, st, err
	}
	st.LambdaMinus = time.Since(t0)
	st.Total = time.Since(start)
	return iPlus, iMinus, st, nil
}

// ApplyDeltas performs in = in ∖ iMinus ⊎ iPlus in place. It fails if
// iMinus is not contained in the index, which indicates that the log does
// not belong to the index's tree.
func ApplyDeltas(in, iPlus, iMinus profile.Index) error {
	for lt, c := range iMinus {
		for i := 0; i < c; i++ {
			if err := in.Sub(lt); err != nil {
				return fmt.Errorf("core: I⁻ not contained in I₀: %w", err)
			}
		}
	}
	for lt, c := range iPlus {
		for i := 0; i < c; i++ {
			in.Add(lt)
		}
	}
	return nil
}
