package core_test

import (
	"testing"

	"pqgram/internal/core"
	"pqgram/internal/edit"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// FuzzUpdateIndex drives the master invariant — incremental update equals
// rebuild — from a fuzzer-controlled byte string that deterministically
// selects a start tree, (p,q), and an edit sequence. The decoder only ever
// produces valid scripts with fresh IDs, so every accepted input must
// yield an exactly correct index.
func FuzzUpdateIndex(f *testing.F) {
	f.Add([]byte{3, 3, 7, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{1, 1, 2, 9, 9, 9, 9})
	f.Add([]byte{2, 4, 12, 200, 100, 50, 25, 12, 6, 3, 1})
	f.Add([]byte{4, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		pr := profile.Params{P: int(next()%4) + 1, Q: int(next()%4) + 1}
		// Build a small start tree.
		t0 := tree.New("r")
		nodes := []*tree.Node{t0.Root()}
		for i := 0; i < int(next()%20); i++ {
			b := next()
			parent := nodes[int(b)%len(nodes)]
			label := string(rune('a' + b%5))
			nodes = append(nodes, t0.AddChildAt(parent, label, int(b/16)%(parent.Fanout()+1)+1))
		}
		i0 := profile.BuildIndex(t0, pr)
		tn := t0.Clone()
		nextID := tn.MaxID() + 100

		// Decode an edit sequence; stop when the data runs out.
		var log edit.Log
		for len(data) >= 3 {
			kind, sel, pos := next(), next(), next()
			all := tn.Nodes()
			var op edit.Op
			switch kind % 3 {
			case 0:
				v := all[int(sel)%len(all)]
				k := int(pos)%(v.Fanout()+1) + 1
				m := k - 1
				if pos%2 == 0 {
					m = k - 1 + int(pos/2)%(v.Fanout()-k+2)
				}
				nextID++
				op = edit.Ins(nextID, string(rune('a'+kind%5)), v.ID(), k, m)
			case 1:
				n := all[int(sel)%len(all)]
				if n.IsRoot() {
					continue
				}
				op = edit.Del(n.ID())
			default:
				n := all[int(sel)%len(all)]
				if n.IsRoot() {
					continue
				}
				l := string(rune('a' + pos%5))
				if n.Label() == l {
					l += "x"
				}
				op = edit.Ren(n.ID(), l)
			}
			inv, err := op.Apply(tn)
			if err != nil {
				t.Fatalf("decoder produced invalid op %v: %v", op, err)
			}
			log = append(log, inv)
		}

		in, err := core.UpdateIndex(i0, tn, log, pr)
		if err != nil {
			t.Fatalf("UpdateIndex failed on valid log: %v\nlog: %v", err, log)
		}
		if !in.Equal(profile.BuildIndex(tn, pr)) {
			t.Fatalf("incremental index differs from rebuild\nlog: %v\nT0:\n%sTn:\n%s", log, t0, tn)
		}
	})
}
