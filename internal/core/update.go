package core

import (
	"fmt"

	"pqgram/internal/edit"
	"pqgram/internal/fingerprint"
	"pqgram/internal/tree"
)

// Update applies the profile update function 𝒰(P, Q, ē) of Definition 5 /
// Algorithm 3 to the table pair: the pq-grams of δ(T, ē) currently in the
// tables are replaced in place by the pq-grams 𝒰(δ(T, ē), ē) of the
// previous tree version; all other pq-grams pass through untouched (modulo
// the row-number and sibling-position renumbering of §8.4).
//
// Update must be called for the log entries in reverse order (ēₙ first);
// Lemma 7 then guarantees that every pq-gram a step needs is present. A
// missing tuple therefore indicates a log that does not belong to the tree,
// and is reported as an error.
func (t *Tables) Update(op edit.Op) error {
	switch op.Kind {
	case edit.Rename:
		return t.updateRename(op)
	case edit.Delete:
		return t.updateDelete(op)
	case edit.Insert:
		return t.updateInsert(op)
	}
	return fmt.Errorf("core: unknown edit operation kind %d", op.Kind)
}

// updateRename handles ē = REN(n, l'): every stored pq-gram containing n
// gets n's label replaced by l'.
func (t *Tables) updateRename(op edit.Op) error {
	p, q := t.pr.P, t.pr.Q
	e := t.p.get(op.Node)
	if e == nil {
		return fmt.Errorf("core: REN %d: anchor not in delta tables", op.Node)
	}
	if e.parent == tree.NilID {
		return fmt.Errorf("core: REN %d: cannot rename the root", op.Node)
	}
	v, k := e.parent, e.sibPos
	newLabel := fingerprint.Of(op.Label)

	// Q ← Q \ Q^{k..k}(v) ∪ [Q^{k..k}(v) // D((id(n), l'))].
	rows, err := t.q.getRange(v, k, k+q-1)
	if err != nil {
		return fmt.Errorf("core: REN %d: %w", op.Node, err)
	}
	w, err := extractWindow(rows, k, k, q)
	if err != nil {
		return fmt.Errorf("core: REN %d: %w", op.Node, err)
	}
	repl := w.emitWindows(k, []fingerprint.Hash{newLabel}, q)
	t.q.replaceRange(v, k, k+q-1, repl)

	// P: changePParts(P, n, subStr(ppart, 1, p-1) ∘ l', p-1).
	s := make([]fingerprint.Hash, p)
	copy(s, e.ppart[:p-1])
	s[p-1] = newLabel
	t.changePParts(op.Node, s, p-1, false)
	return nil
}

// updateDelete handles ē = DEL(n) (the forward operation inserted n):
// n disappears, its children are spliced into its position under v.
func (t *Tables) updateDelete(op edit.Op) error {
	p, q := t.pr.P, t.pr.Q
	e := t.p.get(op.Node)
	if e == nil {
		return fmt.Errorf("core: DEL %d: anchor not in delta tables", op.Node)
	}
	if e.parent == tree.NilID {
		return fmt.Errorf("core: DEL %d: cannot delete the root", op.Node)
	}
	v, k := e.parent, e.sibPos
	eV := t.p.get(v)
	if eV == nil {
		return fmt.Errorf("core: DEL %d: parent %d not in delta tables", op.Node, v)
	}

	// Shape of n's own matrix: its children become v's.
	nRows := t.q.all(op.Node)
	fN, diagN, err := matrixShape(nRows, q)
	if err != nil {
		return fmt.Errorf("core: DEL %d: %w", op.Node, err)
	}
	if fN != e.fanout {
		return fmt.Errorf("core: DEL %d: stored matrix fanout %d, bookkeeping %d", op.Node, fN, e.fanout)
	}

	// Q ← Q \ [Q^{k..k}(v) ∪ Q(n)] ∪ [Q^{k..k}(v) // Q(n)].
	rows, err := t.q.getRange(v, k, k+q-1)
	if err != nil {
		return fmt.Errorf("core: DEL %d: %w", op.Node, err)
	}
	w, err := extractWindow(rows, k, k, q)
	if err != nil {
		return fmt.Errorf("core: DEL %d: %w", op.Node, err)
	}
	newFanV := eV.fanout - 1 + fN
	repl := w.emitWindows(k, diagN, q)
	if newFanV == 0 {
		// v becomes a leaf in the older version: Q^{k..k}(v) was its whole
		// matrix and the replacement is the (•…•) leaf row (§7.2).
		repl = []qRow{leafRow(q)}
	}
	t.q.replaceRange(v, k, k+q-1, repl)
	t.q.deleteAnchor(op.Node)

	// P: new p-parts for n's descendants within p-1 (n itself is removed):
	// s = λ(•) ∘ subStr(ppart(n), 1, p-1).
	s := make([]fingerprint.Hash, p)
	copy(s[1:], e.ppart[:p-1])
	t.changePParts(op.Node, s, p-1, true)

	// Structural bookkeeping (§8.4): siblings of n after position k shift
	// right by fanout(n)-1, n's children move under v at positions k.. .
	t.p.shiftSiblings(v, k, fN-1)
	for _, c := range t.p.childrenOf(op.Node) {
		t.p.setParent(c, v, c.sibPos+k-1)
	}
	t.p.delete(op.Node)
	eV.fanout = newFanV
	return nil
}

// updateInsert handles ē = INS(n, v, k, m) (the forward operation deleted
// n): n reappears as the k-th child of v, adopting v's children c_k..c_m.
func (t *Tables) updateInsert(op edit.Op) error {
	p, q := t.pr.P, t.pr.Q
	n, v, k, m := op.Node, op.Parent, op.K, op.M
	nLabel := fingerprint.Of(op.Label)
	eV := t.p.get(v)
	if eV == nil {
		return fmt.Errorf("core: INS %d: parent %d not in delta tables", n, v)
	}
	if k < 1 || m < k-1 || m > eV.fanout {
		return fmt.Errorf("core: INS %d: positions k=%d m=%d invalid for fanout %d of %d",
			n, k, m, eV.fanout, v)
	}

	// Q side. Read the affected sub-matrix of v (special-casing a leaf v,
	// whose stored matrix is the single (•…•) row that the replacement
	// consumes).
	var w window
	if eV.fanout == 0 {
		w = leafWindow(q)
		t.q.replaceRange(v, 1, 1, w.emitWindows(1, []fingerprint.Hash{nLabel}, q))
	} else {
		rows, err := t.q.getRange(v, k, m+q-1)
		if err != nil {
			return fmt.Errorf("core: INS %d: %w", n, err)
		}
		w, err = extractWindow(rows, k, m, q)
		if err != nil {
			return fmt.Errorf("core: INS %d: %w", n, err)
		}
		// Q^{k..m}(v) // D(n): v's side, children c_k..c_m replaced by n.
		t.q.replaceRange(v, k, m+q-1, w.emitWindows(k, []fingerprint.Hash{nLabel}, q))
	}
	// D_n(•) // Q^{k..m}(v): n's new matrix with diagonals c_k..c_m.
	nRows := leafWindow(q).emitWindows(1, w.diag, q)
	if len(nRows) == 0 {
		nRows = []qRow{leafRow(q)}
	}
	t.q.setAll(n, nRows)

	// P side. s = subStr(ppart(v), 2, p) ∘ λ(n) is n's new p-part.
	s := make([]fingerprint.Hash, p)
	copy(s, eV.ppart[1:])
	s[p-1] = nLabel

	// For each adopted child c: s' = subStr(s, 2, p) ∘ λ(c), updating c and
	// its descendants within p-2. Gather before mutating.
	children := t.p.childrenInRange(v, k, m)
	if p >= 2 {
		for _, c := range children {
			sc := make([]fingerprint.Hash, p)
			copy(sc, s[1:])
			sc[p-1] = c.ppart[p-1]
			t.changePParts(c.anch, sc, p-2, false)
		}
	}

	// Structural bookkeeping: adopted children move under n (positions
	// 1..m-k+1), later siblings of v shift left by m-k, and n's own tuple
	// (n, k, v, s) is added.
	for _, c := range children {
		t.p.setParent(c, n, c.sibPos-k+1)
	}
	t.p.shiftSiblings(v, m, -(m - k))
	if !t.p.put(&pEntry{anch: n, sibPos: k, parent: v, ppart: s, fanout: m - k + 1}) {
		return fmt.Errorf("core: INS %d: anchor already present (node ID reused? see package doc)", n)
	}
	eV.fanout -= m - k
	return nil
}

// changePParts implements Algorithm 4: it rewrites the p-part of anchor n
// and of every anchor in the tables that is a descendant of n within
// distance d. s is the new p-part of n; for an anchor x at distance i the
// new p-part is the last p-i labels of s followed by the last i labels of
// x's old p-part (the invariant part below n). When skipSelf is set, n's
// own tuple is left alone (the caller is about to remove it).
func (t *Tables) changePParts(n tree.NodeID, s []fingerprint.Hash, d int, skipSelf bool) {
	if d < 0 {
		return
	}
	p := t.pr.P
	level := []*pEntry{}
	if e := t.p.get(n); e != nil {
		level = append(level, e)
	}
	for i := 0; i <= d && len(level) > 0; i++ {
		for _, e := range level {
			if i == 0 && skipSelf {
				continue
			}
			np := make([]fingerprint.Hash, p)
			copy(np, s[i:])
			copy(np[p-i:], e.ppart[p-i:])
			e.ppart = np
		}
		if i == d {
			break
		}
		var next []*pEntry
		for _, e := range level {
			next = append(next, t.p.childrenOf(e.anch)...)
		}
		level = next
	}
}
