package core

import (
	"testing"

	"pqgram/internal/fingerprint"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

func h(s string) fingerprint.Hash { return fingerprint.Of(s) }

// rowsOf builds stored rows numbered from lo with the given parts.
func rowsOf(lo int, parts ...[]fingerprint.Hash) []qRow {
	out := make([]qRow, len(parts))
	for i, p := range parts {
		out[i] = qRow{row: lo + i, part: p}
	}
	return out
}

func hs(labels ...string) []fingerprint.Hash {
	out := make([]fingerprint.Hash, len(labels))
	for i, l := range labels {
		if l != "*" {
			out[i] = h(l)
		}
	}
	return out
}

func TestExtractWindowSingleDiagonal(t *testing.T) {
	// Q^{2..2} of a node with children (a b c d), q=3: rows 2..4.
	rows := rowsOf(2, hs("*", "a", "b"), hs("a", "b", "c"), hs("b", "c", "d"))
	w, err := extractWindow(rows, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.left) != 2 || w.left[0] != 0 || w.left[1] != h("a") {
		t.Fatalf("left = %v", w.left)
	}
	if len(w.diag) != 1 || w.diag[0] != h("b") {
		t.Fatalf("diag = %v", w.diag)
	}
	if len(w.right) != 2 || w.right[0] != h("c") || w.right[1] != h("d") {
		t.Fatalf("right = %v", w.right)
	}
}

func TestExtractWindowMultiDiagonal(t *testing.T) {
	// Q^{1..3} of children (a b c), q=2: rows 1..4.
	rows := rowsOf(1, hs("*", "a"), hs("a", "b"), hs("b", "c"), hs("c", "*"))
	w, err := extractWindow(rows, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.diag) != 3 || w.diag[0] != h("a") || w.diag[2] != h("c") {
		t.Fatalf("diag = %v", w.diag)
	}
	if len(w.left) != 1 || w.left[0] != 0 {
		t.Fatalf("left = %v", w.left)
	}
	if len(w.right) != 1 || w.right[0] != 0 {
		t.Fatalf("right = %v", w.right)
	}
}

func TestExtractWindowEmptyRange(t *testing.T) {
	// m = k-1 with q=1: no rows, empty window.
	w, err := extractWindow(nil, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.left)+len(w.diag)+len(w.right) != 0 {
		t.Fatalf("window not empty: %+v", w)
	}
}

func TestExtractWindowGapDetection(t *testing.T) {
	rows := rowsOf(2, hs("*", "a", "b"))
	rows = append(rows, qRow{row: 9, part: hs("x", "y", "z")})
	if _, err := extractWindow(rows, 2, 3, 3); err == nil {
		t.Fatal("row-number gap not detected")
	}
}

func TestEmitWindowsReplaceDiagonal(t *testing.T) {
	// Replace diagonal with a single new label n: windows over left+n+right.
	w := window{left: hs("a", "b"), diag: hs("x"), right: hs("c", "*")}
	rows := w.emitWindows(4, hs("n"), 3)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].row != 4 || rows[2].row != 6 {
		t.Fatalf("row numbers %d..%d", rows[0].row, rows[2].row)
	}
	want := [][]fingerprint.Hash{hs("a", "b", "n"), hs("b", "n", "c"), hs("n", "c", "*")}
	for i := range want {
		for j := range want[i] {
			if rows[i].part[j] != want[i][j] {
				t.Fatalf("row %d = %v, want %v", i, rows[i].part, want[i])
			}
		}
	}
}

func TestEmitWindowsDeleteAllDiagonals(t *testing.T) {
	// diag removed, non-null context remains: q-1 rows over the context.
	w := window{left: hs("a", "b"), diag: hs("x", "y"), right: hs("c", "d")}
	rows := w.emitWindows(1, nil, 3)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
}

func TestEmitWindowsAllNullCollapse(t *testing.T) {
	// diag removed, all-null context: the (•…•) special case — no rows;
	// the caller decides whether a leaf row replaces them.
	w := window{left: hs("*", "*"), diag: hs("x"), right: hs("*", "*")}
	if rows := w.emitWindows(1, nil, 3); rows != nil {
		t.Fatalf("rows = %v, want nil", rows)
	}
}

func TestLeafWindowInsert(t *testing.T) {
	// (•…•) // D(n) = D(n): q rows with the single diagonal n.
	rows := leafWindow(3).emitWindows(1, hs("n"), 3)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].part[2] != h("n") || rows[2].part[0] != h("n") {
		t.Fatalf("diagonal misplaced: %v", rows)
	}
}

func TestMatrixShape(t *testing.T) {
	// Full matrix of children (a b), q=2: rows 1..3.
	rows := rowsOf(1, hs("*", "a"), hs("a", "b"), hs("b", "*"))
	f, diag, err := matrixShape(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 || len(diag) != 2 || diag[0] != h("a") || diag[1] != h("b") {
		t.Fatalf("fanout %d diag %v", f, diag)
	}
	// Leaf matrix.
	f, diag, err = matrixShape([]qRow{leafRow(2)}, 2)
	if err != nil || f != 0 || diag != nil {
		t.Fatalf("leaf: f=%d diag=%v err=%v", f, diag, err)
	}
	// Degenerate.
	if _, _, err := matrixShape(nil, 2); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, _, err := matrixShape(rowsOf(1, hs("a", "b")), 3); err == nil {
		t.Fatal("underfull matrix accepted")
	}
}

func TestQTableReplaceRangeRenumbers(t *testing.T) {
	q := newQTable()
	for i := 1; i <= 6; i++ {
		q.put(7, qRow{row: i, part: hs("x")})
	}
	// Replace rows 2..4 (3 rows) with 1 row: rows 5,6 shift to 3,4.
	q.replaceRange(7, 2, 4, rowsOf(2, hs("r")))
	rows := q.all(7)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, want := range []int{1, 2, 3, 4} {
		if rows[i].row != want {
			t.Fatalf("row %d numbered %d, want %d", i, rows[i].row, want)
		}
	}
	if rows[1].part[0] != h("r") {
		t.Fatal("replacement not in place")
	}
}

func TestQTableReplaceRangeGrows(t *testing.T) {
	q := newQTable()
	q.put(7, qRow{row: 1, part: hs("a")})
	q.put(7, qRow{row: 2, part: hs("b")})
	// Insert 2 rows at position 2 (replacing zero rows).
	q.replaceRange(7, 2, 1, rowsOf(2, hs("n1"), hs("n2")))
	rows := q.all(7)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[3].part[0] != h("b") || rows[3].row != 4 {
		t.Fatalf("old row not shifted: %+v", rows[3])
	}
}

func TestQTableGetRangeChecks(t *testing.T) {
	q := newQTable()
	q.put(7, qRow{row: 2, part: hs("a")})
	if _, err := q.getRange(7, 1, 2); err == nil {
		t.Fatal("missing row 1 not detected")
	}
	if _, err := q.getRange(7, 2, 3); err == nil {
		t.Fatal("missing row 3 not detected")
	}
	got, err := q.getRange(7, 2, 2)
	if err != nil || len(got) != 1 {
		t.Fatalf("getRange = %v, %v", got, err)
	}
	if got, err := q.getRange(7, 5, 4); err != nil || got != nil {
		t.Fatalf("empty range = %v, %v", got, err)
	}
}

func TestPTableParentIndexConsistency(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		p := newPTable(indexed)
		p.put(&pEntry{anch: 1, parent: 0, ppart: hs("r")})
		p.put(&pEntry{anch: 2, parent: 1, sibPos: 1, ppart: hs("a")})
		p.put(&pEntry{anch: 3, parent: 1, sibPos: 2, ppart: hs("b")})
		p.put(&pEntry{anch: 4, parent: 2, sibPos: 1, ppart: hs("c")})

		kids := p.childrenOf(1)
		if len(kids) != 2 || kids[0].anch != 2 || kids[1].anch != 3 {
			t.Fatalf("indexed=%v: childrenOf(1) = %v", indexed, kids)
		}
		if got := p.childrenInRange(1, 2, 2); len(got) != 1 || got[0].anch != 3 {
			t.Fatalf("indexed=%v: childrenInRange = %v", indexed, got)
		}

		// Reparent 4 under 1 at position 3.
		p.setParent(p.get(4), 1, 3)
		if len(p.childrenOf(2)) != 0 {
			t.Fatalf("indexed=%v: stale child under 2", indexed)
		}
		if len(p.childrenOf(1)) != 3 {
			t.Fatalf("indexed=%v: reparent lost", indexed)
		}

		// Shift siblings after position 1 by +5.
		p.shiftSiblings(1, 1, 5)
		if p.get(3).sibPos != 7 || p.get(4).sibPos != 8 || p.get(2).sibPos != 1 {
			t.Fatalf("indexed=%v: shift wrong: %d %d %d", indexed,
				p.get(2).sibPos, p.get(3).sibPos, p.get(4).sibPos)
		}

		p.delete(3)
		if p.get(3) != nil || len(p.childrenOf(1)) != 2 {
			t.Fatalf("indexed=%v: delete incomplete", indexed)
		}
		// Duplicate put is refused.
		if p.put(&pEntry{anch: 2}) {
			t.Fatalf("indexed=%v: duplicate put accepted", indexed)
		}
	}
}

func TestChangePPartsLevels(t *testing.T) {
	// Chain 1 -> 2 -> 3 -> 4, p=3. Rename node 2's label from b to B.
	tb := NewTables(p33())
	tb.p.put(&pEntry{anch: 2, parent: 1, sibPos: 1, ppart: hs("*", "a", "b")})
	tb.p.put(&pEntry{anch: 3, parent: 2, sibPos: 1, ppart: hs("a", "b", "c")})
	tb.p.put(&pEntry{anch: 4, parent: 3, sibPos: 1, ppart: hs("b", "c", "d")})

	s := hs("*", "a", "B")
	tb.changePParts(2, s, 2, false)

	check := func(anch int, want []fingerprint.Hash) {
		t.Helper()
		got := tb.p.get(int64ToNodeID(anch)).ppart
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("anchor %d ppart = %v, want %v", anch, got, want)
			}
		}
	}
	check(2, hs("*", "a", "B"))
	check(3, hs("a", "B", "c"))
	check(4, hs("B", "c", "d"))
}

func TestChangePPartsSkipSelf(t *testing.T) {
	tb := NewTables(p33())
	tb.p.put(&pEntry{anch: 2, parent: 1, sibPos: 1, ppart: hs("*", "a", "b")})
	tb.p.put(&pEntry{anch: 3, parent: 2, sibPos: 1, ppart: hs("a", "b", "c")})
	s := hs("*", "*", "a") // node 2 deleted: its descendants lose it
	tb.changePParts(2, s, 2, true)
	if got := tb.p.get(2).ppart; got[2] != h("b") {
		t.Fatalf("self was modified: %v", got)
	}
	// Child at distance 1: new ppart = s[1:] ++ old tail = (•, •, c)... with
	// s = (•,•,a): (•, a, c).
	want := hs("*", "a", "c")
	got := tb.p.get(3).ppart
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("child ppart = %v, want %v", got, want)
		}
	}
}

func p33() profile.Params { return profile.Params{P: 3, Q: 3} }

func int64ToNodeID(v int) tree.NodeID { return tree.NodeID(v) }
