package core

import (
	"pqgram/internal/edit"
	"pqgram/internal/fingerprint"
	"pqgram/internal/tree"
)

// AddDelta computes the delta function δ(T, ē) of Definition 4 / Algorithm 2
// on the tree T and unions the resulting pq-grams into the table pair,
// preventing duplicates (§8.1). It reports whether any pq-grams were added;
// per Definition 4, δ is empty for operations that are not defined on T.
//
// For rename and delete operations δ is every pq-gram containing the
// operated node; for an insert it is every pq-gram containing the parent v
// and at least one of the children c_k..c_m (Lemma 1).
//
// For inverse inserts the positional region k..m is widened by the recorded
// identities of the adopted children (Op.Adopted): the proofs of Lemmas 1
// and 3 characterize the delta by node membership, but sibling positions on
// Tn can differ from the positions on the intermediate tree the operation
// was recorded against (a later operation inserted or removed a sibling).
// The widened region covers the adopted children wherever they sit under v
// on Tn, which is exactly the per-step delta portion that survives to Tn.
// Without the widening the rewind can miss pq-grams it needs (detected as
// an error) or, worse, produce a silently wrong index.
func (t *Tables) AddDelta(tn *tree.Tree, op edit.Op) bool {
	added := false
	switch op.Kind {
	case edit.Rename, edit.Delete:
		if op.Check(tn) != nil {
			return false
		}
		n := tn.Node(op.Node)
		v := n.Parent()
		k := n.SiblingPos()
		t.addSubMatrix(v, k, k)
		for _, x := range tree.DescendantsWithin(n, t.pr.P-1) {
			t.addFullMatrix(x)
		}
		added = true
	case edit.Insert:
		if op.Check(tn) == nil {
			v := tn.Node(op.Parent)
			t.addSubMatrix(v, op.K, op.M)
			for i := op.K; i <= op.M; i++ {
				for _, x := range tree.DescendantsWithin(v.Child(i), t.pr.P-2) {
					t.addFullMatrix(x)
				}
			}
			added = true
		}
		// Identity widening over the adopted children and the splice-region
		// neighbors that still sit under v on Tn. Every added pq-gram is a
		// genuine pq-gram of Tn, so over-adding is safe: pq-grams that turn
		// out invariant pass through the rewind unchanged and cancel in
		// I₀ ∖ λ(Δ⁻) ⊎ λ(Δ⁺).
		if v := tn.Node(op.Parent); v != nil && !tn.Contains(op.Node) {
			for _, cid := range op.Adopted {
				c := tn.Node(cid)
				if c == nil || c.Parent() != v {
					continue
				}
				pos := c.SiblingPos()
				t.addSubMatrix(v, pos, pos)
				for _, x := range tree.DescendantsWithin(c, t.pr.P-2) {
					t.addFullMatrix(x)
				}
				added = true
			}
			// For an inverse leaf insert (no adopted children) the delta's
			// q-windows span the gap left by the removed node; they contain
			// no adopted child, so they are anchored by the recorded
			// splice-region neighbors instead.
			if len(op.Adopted) == 0 {
				for _, nid := range []tree.NodeID{op.NbrLeft, op.NbrRight} {
					c := tn.Node(nid)
					if nid == 0 || c == nil || c.Parent() != v {
						continue
					}
					pos := c.SiblingPos()
					t.addSubMatrix(v, pos, pos)
					added = true
				}
				// A gap with no context at all: v's only child was removed,
				// so the delta is the leaf pq-gram of v if v is still a
				// leaf on Tn.
				if op.NbrLeft == 0 && op.NbrRight == 0 && v.IsLeaf() {
					t.addFullMatrix(v)
					added = true
				}
			}
		}
	}
	return added
}

// AddTree loads the complete profile of tn into the tables: every node
// becomes an anchor with its full q-matrix. Useful for building an index
// through the table representation and for single-step update tests
// (equation 10: 𝒰(P_j, ē_j) = P_i).
func (t *Tables) AddTree(tn *tree.Tree) {
	tn.PreOrder(func(n *tree.Node) bool {
		t.addFullMatrix(n)
		return true
	})
}

// addSubMatrix adds (P_T(v), Q_T^{k..m}(v)): v's p-part and the rows k to
// m+q-1 of its q-matrix, read from the tree.
func (t *Tables) addSubMatrix(v *tree.Node, k, m int) {
	t.p.put(pEntryOf(v, t.pr.P))
	q := t.pr.Q
	if v.IsLeaf() {
		// Q^{k..m} of a leaf is the (•…•) matrix (§7.2 special case).
		t.q.put(v.ID(), leafRow(q))
		return
	}
	for row := k; row <= m+q-1; row++ {
		t.q.put(v.ID(), qRowOf(v, row, q))
	}
}

// addFullMatrix adds (P_T(x), Q_T(x)): x's p-part and its complete q-matrix.
func (t *Tables) addFullMatrix(x *tree.Node) {
	t.p.put(pEntryOf(x, t.pr.P))
	q := t.pr.Q
	if x.IsLeaf() {
		t.q.put(x.ID(), leafRow(q))
		return
	}
	for row := 1; row <= x.Fanout()+q-1; row++ {
		t.q.put(x.ID(), qRowOf(x, row, q))
	}
}

// pEntryOf builds the P tuple of a node from the tree: its ancestor label
// chain of length p (null-padded above the root), sibling position and
// parent ID.
func pEntryOf(n *tree.Node, p int) *pEntry {
	ppart := make([]fingerprint.Hash, p)
	a := n
	for i := p - 1; i >= 0; i-- {
		if a == nil {
			break // remaining slots stay Null
		}
		ppart[i] = fingerprint.Of(a.Label())
		a = a.Parent()
	}
	e := &pEntry{anch: n.ID(), ppart: ppart, fanout: n.Fanout()}
	if par := n.Parent(); par != nil {
		e.parent = par.ID()
		e.sibPos = n.SiblingPos()
	}
	return e
}

// qRowOf builds row `row` of the q-matrix of non-leaf node v: the labels of
// children c_{row-q+1} .. c_{row}, with nulls outside [1, fanout].
func qRowOf(v *tree.Node, row, q int) qRow {
	part := make([]fingerprint.Hash, q)
	f := v.Fanout()
	for j := 0; j < q; j++ {
		ci := row - q + 1 + j
		if ci >= 1 && ci <= f {
			part[j] = fingerprint.Of(v.Child(ci).Label())
		}
	}
	return qRow{row: row, part: part}
}
