// Package linttest checks analyzers against fixture packages under
// testdata, in the style of golang.org/x/tools/go/analysis/analysistest
// but built only on the standard library: a fixture source line states
// the diagnostics it expects in a trailing comment
//
//	f.Close() // want `error from f\.Close is discarded`
//
// and Run fails the test for every produced diagnostic no want matches
// and every want no diagnostic satisfies.
//
// Expectations are regular expressions matched against the diagnostic
// message, written between double quotes or backquotes after the word
// "want"; several on one line mean several diagnostics on that line. The
// text between the quotes is taken verbatim (no Go unescaping), so `\.`
// is the regexp escape for a literal dot. Because extraction stops at
// the closing delimiter, a pattern cannot itself contain that delimiter
// — match quoted message fragments with `.` instead.
//
// Fixtures live under testdata/src/... with their real directory as the
// import path, e.g. testdata/src/internal/store/errcheckfix, so the
// path-segment scoping of the analyzers (Package.Within) sees the same
// "internal/store" run the production tree has.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"pqgram/internal/lint"
)

// want is one expectation: a regexp that some diagnostic on this line
// must match.
type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantRe = regexp.MustCompile("\\bwant((?:\\s+(?:\"[^\"]*\"|`[^`]*`))+)")
	exprRe = regexp.MustCompile("\"([^\"]*)\"|`([^`]*)`")
)

// Run loads the single fixture package in dir, runs the analyzers over
// it through lint.Run (so //pqlint:allow suppression applies exactly as
// in production), and matches the diagnostics against the fixture's
// want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	diags, wants, err := run(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !consume(wants[key{d.File, d.Line}], d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", filepath.Base(d.File), d.Line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s:%d matched %q", filepath.Base(k.file), k.line, w.re.String())
			}
		}
	}
}

type key struct {
	file string
	line int
}

func run(dir string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, map[key][]*want, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.Load(abs)
	if err != nil {
		return nil, nil, fmt.Errorf("loading fixture %s: %w", dir, err)
	}
	wants := make(map[key][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, w := range parseWants(c.Text) {
						re, err := regexp.Compile(w)
						if err != nil {
							return nil, nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, w, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}
	return lint.Run(pkgs, analyzers), wants, nil
}

// parseWants extracts the expectation patterns of one comment, verbatim
// (the text between the quotes is the regexp — no unescaping).
func parseWants(comment string) []string {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []string
	for _, q := range exprRe.FindAllStringSubmatch(m[1], -1) {
		if q[1] != "" {
			out = append(out, q[1])
		} else {
			out = append(out, q[2])
		}
	}
	return out
}

func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
