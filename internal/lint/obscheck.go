package lint

import (
	"go/ast"
	"go/types"
)

// ObsCheck enforces the observability contract established by the metrics
// layer: outside internal/obs, a struct of preresolved metric handles
// (the `metrics` pattern) must be reachable only through an
// atomic.Pointer — so attaching and detaching a collector is race-free —
// and every dereference of a possibly-nil metrics pointer must sit behind
// a nil guard, because the uninstrumented fast path hands out nil. A
// direct field of metrics-struct-pointer type would let SetCollector race
// with readers; an unguarded dereference panics the first unobserved
// operation.
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "metric-handle structs must sit behind atomic.Pointer and be nil-guarded at use",
	Run:  runObsCheck,
}

func runObsCheck(p *Pass) {
	if p.Pkg.Within("internal/obs") {
		return
	}
	for _, f := range p.Pkg.Files {
		checkMetricsFields(p, f)
		checkNilGuards(p, f)
	}
}

// checkMetricsFields flags plain struct fields whose type is a pointer to
// a metrics struct: the only sanctioned container is atomic.Pointer[T].
func checkMetricsFields(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			t := p.Pkg.Info.TypeOf(field.Type)
			if t == nil || !metricsStructPtr(t) {
				continue
			}
			p.ReportHintf(field.Pos(),
				"hold the handles behind atomic.Pointer[T] and resolve them with Load(), so SetCollector cannot race with readers",
				"metric-handle struct stored in a plain field of type %s", t.String())
		}
		return true
	})
}

// checkNilGuards flags dereferences of metrics-struct pointers that no
// dominating nil check protects.
func checkNilGuards(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	nonNil := provablyNonNilVars(info, f)
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if !metricsStructPtr(obj.Type()) {
			return true
		}
		if nonNil[obj] || nilGuarded(info, n, obj, stack) {
			return true
		}
		p.ReportHintf(sel.Pos(),
			"metrics pointers are nil when no collector is attached; wrap the use in `if "+id.Name+" != nil { ... }` (or early-return on nil)",
			"possibly-nil metrics pointer %q dereferenced without a nil guard", id.Name)
		return true
	})
}

// provablyNonNilVars collects variables every assignment of which is the
// address of a composite literal — `m := &metrics{...}` cannot be nil, so
// the construction site in SetCollector needs no guard.
func provablyNonNilVars(info *types.Info, f *ast.File) map[types.Object]bool {
	sources := make(map[types.Object][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		sources[obj] = append(sources[obj], rhs)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	out := make(map[types.Object]bool)
	for obj, rhss := range sources {
		ok := true
		for _, rhs := range rhss {
			u, isUnary := ast.Unparen(rhs).(*ast.UnaryExpr)
			if !isUnary {
				ok = false
				break
			}
			if _, isLit := u.X.(*ast.CompositeLit); !isLit {
				ok = false
				break
			}
		}
		if ok {
			out[obj] = true
		}
	}
	return out
}

// nilGuarded reports whether a dominating check proves obj is non-nil at
// n: an enclosing `if obj != nil` (or the else branch of `if obj == nil`),
// or an earlier `if obj == nil { return/continue/... }` in a statement
// list on the path to n.
func nilGuarded(info *types.Info, n ast.Node, obj types.Object, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if within(n, anc.Body) && guaranteesNonNil(info, anc.Cond, obj) {
				return true
			}
			if anc.Else != nil && within(n, anc.Else) && triggersOnNil(info, anc.Cond, obj) {
				return true
			}
		case *ast.FuncLit:
			// A closure may run long after the guards around its creation
			// ceased to hold — but metrics pointers are immutable locals,
			// so a lexical guard outside the closure still proves the
			// pointer non-nil inside it. Keep walking outward.
		default:
			for _, list := range stmtLists(stack[i]) {
				for _, stmt := range list {
					if !before(stmt, n) {
						break
					}
					ifs, ok := stmt.(*ast.IfStmt)
					if ok && triggersOnNil(info, ifs.Cond, obj) && terminates(ifs.Body) {
						return true
					}
				}
			}
		}
	}
	return false
}

// within reports whether n lies inside node's source range.
func within(n, node ast.Node) bool {
	return node.Pos() <= n.Pos() && n.Pos() < node.End()
}

// before reports whether stmt ends before n starts.
func before(stmt ast.Stmt, n ast.Node) bool {
	return stmt.End() <= n.Pos()
}
