// Package lint is a dependency-free static-analysis driver for this
// module: a small framework (loader, analyzer interface, suppression
// comments, diagnostics) plus the analyzers that enforce the repository's
// crash-safety, concurrency and determinism invariants. It is built only
// on the standard library go/* packages — the module stays at zero
// external dependencies — and is wired into `make lint` / `make check`
// through cmd/pqlint.
//
// # Invariants enforced
//
//   - fsiocheck: store code must perform every filesystem mutation through
//     the fsio.FS it was opened with, never the os package directly, so the
//     fault-injection and crash-consistency harness covers every byte that
//     reaches disk.
//   - obscheck: metric-handle structs must sit behind atomic.Pointer and
//     every dereference of a possibly-nil metrics pointer must be
//     nil-guarded — the "one atomic load when off" observability contract.
//   - spancheck: every call that starts a trace span (*obs.Span result)
//     must bind it and finish it on all return paths, by a defer or a
//     Finish before each return — an unfinished root span is a trace that
//     never publishes.
//   - aliascheck: exported index/profile/store API must not return
//     internal slice or map fields without copying (the TreeIndex bug
//     class).
//   - errcheck-durability: Sync/Close/Rename/Remove/Truncate/rollback
//     errors on the durability path must not be discarded.
//   - detcheck: iteration over a map must not feed a returned slice or an
//     output stream without an intervening sort, and a top-k ranking
//     drained from a heap must be sorted with the tie-broken comparator
//     before it is returned (the nondeterminism bug class).
//   - lockcheck: fields annotated `// guarded by <mu>` are only accessed
//     while that mutex is held (write-held for writes), and every
//     acquired lock is released on all return paths.
//   - lockorder: lock acquisitions follow the package's declared
//     //pqlint:lockorder partial order; same-class nesting is flagged as
//     a potential deadlock.
//   - atomiccheck: a field ever accessed via sync/atomic (or a typed
//     atomic) is never accessed non-atomically outside its init path.
//   - goroutinecheck: every go statement has a provable join (WaitGroup
//     Add-before-go / Done-on-all-paths) or shutdown (stop channel) path.
//
// # Suppression
//
// A finding can be silenced with a comment naming the analyzer:
//
//	//pqlint:allow fsiocheck — reason the invariant holds anyway
//
// The comment applies to the line it is on and to the next line only.
// The file-scoped variant
//
//	//pqlint:allowfile goroutinecheck — reason the whole file is exempt
//
// suppresses the named analyzers everywhere in its file. Unknown
// analyzer names in either form are themselves reported, so a typo
// cannot silently disable checking.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: the violated invariant at a position, with a
// hint describing how to fix it.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Hint     string         `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += "\n\thint: " + d.Hint
	}
	return s
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportHintf(pos, "", format, args...)
}

// ReportHintf records a finding at pos with a fix hint.
func (p *Pass) ReportHintf(pos token.Pos, hint, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		FsioCheck, ObsCheck, SpanCheck, AliasCheck, ErrcheckDurability, DetCheck,
		LockCheck, LockOrder, AtomicCheck, GoroutineCheck,
	}
}

// ByName resolves analyzer names (e.g. from -only/-skip flags) against
// the registry, failing on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(Names(All()), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names returns the names of the given analyzers.
func Names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// allowPrefix is the suppression-comment marker. The full form is
// "//pqlint:allow name1,name2 optional reason". The file-scoped variant
// "//pqlint:allowfile name1,name2 reason" suppresses the named
// analyzers for the whole file.
const (
	allowPrefix     = "pqlint:allow"
	allowFilePrefix = "pqlint:allowfile"
)

// Run executes the analyzers over the packages, applies the
// //pqlint:allow suppressions, and returns the surviving diagnostics
// sorted by position. Malformed or unknown-analyzer allow comments are
// reported as diagnostics of the pseudo-analyzer "pqlint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	// allowed[file][line] = analyzer names suppressed at that line. An
	// allow comment on line N covers findings on N (trailing comments)
	// and on N+1, and nothing else. allowedFile[file] = analyzer names
	// suppressed for the entire file by //pqlint:allowfile.
	allowed := make(map[string]map[int]map[string]bool)
	allowedFile := make(map[string]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			scanAllows(pkg, f, allowed, allowedFile, known, report)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: report}
			a.Run(pass)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "pqlint" && (suppressed(allowed, d) || allowedFile[d.File][d.Analyzer]) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

func suppressed(allowed map[string]map[int]map[string]bool, d Diagnostic) bool {
	lines := allowed[d.File]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{d.Line, d.Line - 1} {
		if lines[l][d.Analyzer] {
			return true
		}
	}
	return false
}

// scanAllows indexes every //pqlint:allow and //pqlint:allowfile
// comment of the file and reports malformed ones.
func scanAllows(pkg *Package, f *ast.File, allowed map[string]map[int]map[string]bool, allowedFile map[string]map[string]bool, known map[string]bool, report func(Diagnostic)) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			// allowPrefix is a prefix of allowFilePrefix: distinguish first.
			fileScoped := strings.HasPrefix(text, allowFilePrefix)
			marker, prefix := "//pqlint:allow", allowPrefix
			if fileScoped {
				marker, prefix = "//pqlint:allowfile", allowFilePrefix
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
			pos := pkg.Fset.Position(c.Pos())
			names := ""
			if fields := strings.Fields(rest); len(fields) > 0 {
				names = fields[0]
			}
			if names == "" {
				report(Diagnostic{
					Analyzer: "pqlint", Pos: pos,
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: marker + " comment names no analyzer",
					Hint:    "write " + marker + " <analyzer>[,<analyzer>...] <reason>",
				})
				continue
			}
			for _, name := range strings.Split(names, ",") {
				if !known[name] {
					report(Diagnostic{
						Analyzer: "pqlint", Pos: pos,
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("unknown analyzer %q in %s comment", name, marker),
						Hint:    "known analyzers: " + strings.Join(Names(All()), ", "),
					})
					continue
				}
				if fileScoped {
					if allowedFile[pos.Filename] == nil {
						allowedFile[pos.Filename] = make(map[string]bool)
					}
					allowedFile[pos.Filename][name] = true
					continue
				}
				if allowed[pos.Filename] == nil {
					allowed[pos.Filename] = make(map[int]map[string]bool)
				}
				if allowed[pos.Filename][pos.Line] == nil {
					allowed[pos.Filename][pos.Line] = make(map[string]bool)
				}
				allowed[pos.Filename][pos.Line][name] = true
			}
		}
	}
}
