// Shared AST and type predicates for the analyzers: ancestor-stack
// traversal, nil-comparison matching, and recognition of the repo's
// metric-handle types.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkStack traverses the file, calling fn for every node with the stack
// of its ancestors (outermost first, n excluded). Returning false prunes
// the subtree below n.
func walkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// calleeName returns the bare name of the function or method a call
// invokes, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isNilComparison reports whether expr is `x <op> nil` or `nil <op> x`
// where x denotes the given object.
func isNilComparison(info *types.Info, expr ast.Expr, op token.Token, obj types.Object) bool {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op != op {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.ObjectOf(id) == types.Universe.Lookup("nil")
	}
	return (matches(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && matches(bin.Y))
}

// guaranteesNonNil reports whether cond being true proves obj != nil:
// the comparison itself, or a conjunction containing one.
func guaranteesNonNil(info *types.Info, cond ast.Expr, obj types.Object) bool {
	if isNilComparison(info, cond, token.NEQ, obj) {
		return true
	}
	if bin, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && bin.Op == token.LAND {
		return guaranteesNonNil(info, bin.X, obj) || guaranteesNonNil(info, bin.Y, obj)
	}
	return false
}

// triggersOnNil reports whether cond is true whenever obj == nil: the
// comparison itself, or a disjunction containing one. An if with such a
// condition and a terminating body guards everything after it.
func triggersOnNil(info *types.Info, cond ast.Expr, obj types.Object) bool {
	if isNilComparison(info, cond, token.EQL, obj) {
		return true
	}
	if bin, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && bin.Op == token.LOR {
		return triggersOnNil(info, bin.X, obj) || triggersOnNil(info, bin.Y, obj)
	}
	return false
}

// terminates reports whether the block always leaves the enclosing scope:
// its last statement is a return, a branch, or a panic call.
func terminates(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		return ok && calleeName(call) == "panic"
	}
	return false
}

// stmtLists yields the statement list a node carries, if any — blocks
// plus the bare lists of switch/select clauses.
func stmtLists(n ast.Node) [][]ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{n.List}
	case *ast.CaseClause:
		return [][]ast.Stmt{n.Body}
	case *ast.CommClause:
		return [][]ast.Stmt{n.Body}
	}
	return nil
}

// obsHandle reports whether t is a pointer to one of internal/obs's
// metric handle types (*obs.Counter, *obs.Gauge, *obs.Histogram). The
// collector itself is not a handle: a bare *obs.Collector is nil-safe
// and safe for concurrent use, so holding one in a plain field is fine.
func obsHandle(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathWithin(obj.Pkg().Path(), "internal/obs") {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// metricsStructPtr reports whether t is a pointer to a struct holding at
// least one obs metric handle — the shape of the preresolved metrics
// structs the instrumented packages keep behind atomic.Pointer.
func metricsStructPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if obsHandle(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// pathWithin reports whether the import path contains rel as a
// path-segment run (e.g. pathWithin("pqgram/internal/obs", "internal/obs")).
func pathWithin(path, rel string) bool {
	return strings.Contains("/"+path+"/", "/"+rel+"/")
}
