package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetCheck enforces the determinism contract of results and encodings:
// lookup/join results are byte-for-byte identical at any worker count and
// every persisted encoding is canonical, so iterating a Go map (whose
// order is deliberately randomized) may not feed a returned slice or an
// output stream unless the data is sorted on the way, and a top-k
// ranking drained from a heap must be sorted with the total, tie-broken
// comparator before it escapes (a binary heap orders only its root — the
// rest of the backing array is an arbitrary permutation that depends on
// insertion order). The three flagged shapes are
//
//   - `for k := range m { out = append(out, ...) }` where out is returned
//     and no sort call touches it afterwards,
//   - any write to an io.Writer-like destination from inside the body of
//     a range over a map, and
//   - a returned slice filled from a heap (copy from it, append of its
//     elements, or a direct alias of it) with no sort call afterwards.
//
// The canonical fix is the collect-sort-emit pattern; order-insensitive
// reductions (sums, map-to-map merges) are not flagged.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "map iteration and heap drains must not feed returned slices or output streams without a sort",
	Run:  runDetCheck,
}

// detScopes: the result-producing packages and every codec that persists
// bytes (the journal and snapshot writers live in internal/store).
var detScopes = []string{
	"internal/forest",
	"internal/profile",
	"internal/store",
	"internal/edit",
	"internal/jsonconv",
	"internal/xmlconv",
}

func runDetCheck(p *Pass) {
	inScope := false
	for _, s := range detScopes {
		inScope = inScope || p.Pkg.Within(s)
	}
	if !inScope {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncDeterminism(p, n.Body, n.Type)
				}
			case *ast.FuncLit:
				checkFuncDeterminism(p, n.Body, n.Type)
			}
			return true
		})
	}
}

// checkFuncDeterminism inspects one function body (closures are handled
// as their own functions and skipped here).
func checkFuncDeterminism(p *Pass, body *ast.BlockStmt, ftype *ast.FuncType) {
	info := p.Pkg.Info
	returned := returnedVars(info, body, ftype)
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				checkMapRangeBody(p, body, n, returned)
				return
			}
			if isHeapExpr(n.X) {
				checkHeapRangeBody(p, body, n, returned)
			}
		case *ast.AssignStmt:
			checkHeapAssign(p, body, n, returned)
		case *ast.CallExpr:
			checkHeapCopy(p, body, n, returned)
		}
	})
}

// isHeapExpr reports whether the expression's text names a heap — the
// repo's convention for bounded top-k selection state (vpSearch.heap,
// container/heap calls). Text matching is deliberate: the invariant is
// about intent, and every partial-selection structure here says so in
// its name.
func isHeapExpr(x ast.Expr) bool {
	return strings.Contains(strings.ToLower(types.ExprString(ast.Unparen(x))), "heap")
}

const heapHint = "a binary heap orders only its root; sort the drained slice with the total, tie-broken comparator (sortMatches: ascending distance, ties by ID) before it escapes"

// checkHeapAssign flags `out = append(out, <heap element>)` and
// `out := <heap slice>` where out is returned and never sorted after: the
// heap's backing array is an arbitrary permutation past index 0, so a
// ranking built from it is nondeterministic until the final sort.
func checkHeapAssign(p *Pass, fnBody *ast.BlockStmt, n *ast.AssignStmt, returned map[types.Object]bool) {
	info := p.Pkg.Info
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(id)
		if obj == nil || !returned[obj] {
			continue
		}
		src := ast.Unparen(rhs)
		heapFed := false
		switch src := src.(type) {
		case *ast.CallExpr:
			if calleeName(src) == "append" {
				for _, arg := range src.Args[1:] {
					heapFed = heapFed || isHeapExpr(arg)
				}
			}
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
			// Direct aliases of the heap (out := s.heap, out := s.heap[:k]).
			// Other expressions merely mentioning it — make() sized by
			// len(s.heap), arithmetic on it — are not drains.
			heapFed = isHeapExpr(src)
		}
		if !heapFed || sortedAfter(info, fnBody, n.End(), obj) {
			continue
		}
		p.ReportHintf(n.Pos(), heapHint,
			"top-k ranking %q drained from a heap without a following sort", id.Name)
	}
}

// checkHeapCopy flags `copy(out, <heap slice>)` where out is returned and
// never sorted after — the drain shape of lookupTopMetricLocked.
func checkHeapCopy(p *Pass, fnBody *ast.BlockStmt, call *ast.CallExpr, returned map[types.Object]bool) {
	info := p.Pkg.Info
	if calleeName(call) != "copy" || len(call.Args) != 2 || !isHeapExpr(call.Args[1]) {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil || !returned[obj] || sortedAfter(info, fnBody, call.End(), obj) {
		return
	}
	p.ReportHintf(call.Pos(), heapHint,
		"top-k ranking %q drained from a heap without a following sort", id.Name)
}

// checkHeapRangeBody flags appends to a returned slice from inside a
// range over a heap, unless the slice is sorted after the loop. Appends
// whose source is itself heap-shaped are left to checkHeapAssign.
func checkHeapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, returned map[types.Object]bool) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || calleeName(call) != "append" || i >= len(asg.Lhs) {
				continue
			}
			srcIsHeap := false
			for _, arg := range call.Args[1:] {
				srcIsHeap = srcIsHeap || isHeapExpr(arg)
			}
			if srcIsHeap {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil || !returned[obj] || sortedAfter(info, fnBody, rng.End(), obj) {
				continue
			}
			p.ReportHintf(asg.Pos(), heapHint,
				"top-k ranking %q drained from a heap without a following sort", id.Name)
		}
		return true
	})
}

// checkMapRangeBody flags nondeterministic appends and writes inside the
// body of one range-over-map.
func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, returned map[types.Object]bool) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || !returned[obj] {
					continue
				}
				if sortedAfter(info, fnBody, rng.End(), obj) {
					continue
				}
				p.ReportHintf(n.Pos(),
					"map iteration order is randomized; sort the slice after the loop (or collect sorted keys first) so the returned result is deterministic",
					"append to returned slice %q inside range over map without a following sort", id.Name)
			}
		case *ast.CallExpr:
			if isOutputCall(info, n) {
				p.ReportHintf(n.Pos(),
					"collect the keys, sort them, then emit in sorted order — encodings written in map order differ from run to run",
					"output written inside range over map: %s", types.ExprString(n.Fun))
			}
		}
		return true
	})
}

// returnedVars collects the objects whose value escapes as a result:
// named results plus every plain identifier appearing in a return
// statement of this function (closures excluded).
func returnedVars(info *types.Info, body *ast.BlockStmt, ftype *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	inspectShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
	})
	return out
}

// sortedAfter reports whether, after the given position, the function
// calls something sort-shaped on obj: a call whose name contains "sort"
// (sort.Slice, sort.Strings, slices.SortFunc, sortMatches, ...) taking
// the variable as an argument or receiver.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	inspectShallow(fnBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return
		}
		// Match on the full callee text so both sortMatches(out) and
		// sort.Strings(out) / slices.SortFunc(out, ...) qualify.
		if !strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "sort") {
			return
		}
		args := call.Args
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args[:len(args):len(args)], sel.X)
		}
		for _, arg := range args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
				return
			}
		}
	})
	return found
}

// writeLike method names on any receiver count as output.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
}

// isOutputCall reports whether the call emits bytes to a destination
// whose content order matters: a Write*/Fprint*/Print*/Encode* call, or
// any call handed an argument with a Write([]byte) (int, error) method
// (io.Writer and friends, *bytes.Buffer, the codec helpers).
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(call)
	if writeMethods[name] || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Encode") {
		return true
	}
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t != nil && hasWriteMethod(t) {
			return true
		}
	}
	return false
}

func hasWriteMethod(t types.Type) bool {
	if lookupWrite(t) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok && !types.IsInterface(t) {
		return lookupWrite(types.NewPointer(t))
	}
	return false
}

func lookupWrite(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Write")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() == 1 && sig.Results().Len() == 2
}

// inspectShallow walks the body like ast.Inspect but does not descend
// into nested function literals — they are analyzed as functions of
// their own.
func inspectShallow(body *ast.BlockStmt, fn func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
