package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetCheck enforces the determinism contract of results and encodings:
// lookup/join results are byte-for-byte identical at any worker count and
// every persisted encoding is canonical, so iterating a Go map (whose
// order is deliberately randomized) may not feed a returned slice or an
// output stream unless the data is sorted on the way. The two flagged
// shapes are
//
//   - `for k := range m { out = append(out, ...) }` where out is returned
//     and no sort call touches it afterwards, and
//   - any write to an io.Writer-like destination from inside the body of
//     a range over a map.
//
// The canonical fix is the collect-sort-emit pattern; order-insensitive
// reductions (sums, map-to-map merges) are not flagged.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "map iteration must not feed returned slices or output streams without a sort",
	Run:  runDetCheck,
}

// detScopes: the result-producing packages and every codec that persists
// bytes (the journal and snapshot writers live in internal/store).
var detScopes = []string{
	"internal/forest",
	"internal/profile",
	"internal/store",
	"internal/edit",
	"internal/jsonconv",
	"internal/xmlconv",
}

func runDetCheck(p *Pass) {
	inScope := false
	for _, s := range detScopes {
		inScope = inScope || p.Pkg.Within(s)
	}
	if !inScope {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncDeterminism(p, n.Body, n.Type)
				}
			case *ast.FuncLit:
				checkFuncDeterminism(p, n.Body, n.Type)
			}
			return true
		})
	}
}

// checkFuncDeterminism inspects one function body (closures are handled
// as their own functions and skipped here).
func checkFuncDeterminism(p *Pass, body *ast.BlockStmt, ftype *ast.FuncType) {
	info := p.Pkg.Info
	returned := returnedVars(info, body, ftype)
	inspectShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRangeBody(p, body, rng, returned)
	})
}

// checkMapRangeBody flags nondeterministic appends and writes inside the
// body of one range-over-map.
func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, returned map[types.Object]bool) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || !returned[obj] {
					continue
				}
				if sortedAfter(info, fnBody, rng, obj) {
					continue
				}
				p.ReportHintf(n.Pos(),
					"map iteration order is randomized; sort the slice after the loop (or collect sorted keys first) so the returned result is deterministic",
					"append to returned slice %q inside range over map without a following sort", id.Name)
			}
		case *ast.CallExpr:
			if isOutputCall(info, n) {
				p.ReportHintf(n.Pos(),
					"collect the keys, sort them, then emit in sorted order — encodings written in map order differ from run to run",
					"output written inside range over map: %s", types.ExprString(n.Fun))
			}
		}
		return true
	})
}

// returnedVars collects the objects whose value escapes as a result:
// named results plus every plain identifier appearing in a return
// statement of this function (closures excluded).
func returnedVars(info *types.Info, body *ast.BlockStmt, ftype *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	inspectShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
	})
	return out
}

// sortedAfter reports whether, after the range statement, the function
// calls something sort-shaped on obj: a call whose name contains "sort"
// (sort.Slice, sort.Strings, slices.SortFunc, sortMatches, ...) taking
// the variable as an argument or receiver.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	inspectShallow(fnBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return
		}
		// Match on the full callee text so both sortMatches(out) and
		// sort.Strings(out) / slices.SortFunc(out, ...) qualify.
		if !strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "sort") {
			return
		}
		args := call.Args
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args[:len(args):len(args)], sel.X)
		}
		for _, arg := range args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
				return
			}
		}
	})
	return found
}

// writeLike method names on any receiver count as output.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
}

// isOutputCall reports whether the call emits bytes to a destination
// whose content order matters: a Write*/Fprint*/Print*/Encode* call, or
// any call handed an argument with a Write([]byte) (int, error) method
// (io.Writer and friends, *bytes.Buffer, the codec helpers).
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(call)
	if writeMethods[name] || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Encode") {
		return true
	}
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t != nil && hasWriteMethod(t) {
			return true
		}
	}
	return false
}

func hasWriteMethod(t types.Type) bool {
	if lookupWrite(t) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok && !types.IsInterface(t) {
		return lookupWrite(types.NewPointer(t))
	}
	return false
}

func lookupWrite(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Write")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() == 1 && sig.Results().Len() == 2
}

// inspectShallow walks the body like ast.Inspect but does not descend
// into nested function literals — they are analyzed as functions of
// their own.
func inspectShallow(body *ast.BlockStmt, fn func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
