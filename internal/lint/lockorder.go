package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockOrder enforces a declared global lock-acquisition order. A
// package that nests locks declares the partial order in one or more
// manifest comments (line or block form, anywhere in the package):
//
//	//pqlint:lockorder Index.mu < treeEntry.mu < shard.mu
//
// Each chain contributes pairwise edges and the relation is closed
// transitively. Inside a manifest package, every nested acquisition
// must follow a declared edge: acquiring against the order is a
// potential deadlock cycle, and an edge the manifest does not cover is
// reported so the declaration stays complete. Packages without a
// manifest are only checked for same-class nesting (acquiring a lock
// of a class already held — self-deadlock with a plain Mutex, a
// writer-starvation deadlock with an RWMutex), which is suspect
// everywhere; two instances of a class may only be nested under a
// sanctioned total order (this repo uses ascending document ID), which
// is what the //pqlint:allow comment documents.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions follow the //pqlint:lockorder manifest; same-class nesting flagged",
	Run:  runLockOrder,
}

const lockorderPrefix = "pqlint:lockorder"

type lockOrderDecl struct {
	present bool
	less    map[lockClass]map[lockClass]bool
	classes []lockClass
	pos     token.Pos
}

func runLockOrder(p *Pass) {
	order := collectLockOrder(p)
	ann := collectLockAnnotations(p, nil) // lockcheck reports malformed annotations
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{info: info}
			w.hooks = lockHooks{
				acquire: func(l *heldLock, prior []*heldLock) {
					checkAcquisition(p, order, l, prior)
				},
			}
			w.walkFuncBody(fd.Body, entryState(ann, fd))
		}
	}
}

func checkAcquisition(p *Pass, order *lockOrderDecl, l *heldLock, prior []*heldLock) {
	seen := make(map[lockClass]bool)
	for _, h := range prior {
		if seen[h.class] {
			continue
		}
		seen[h.class] = true
		if h.class == l.class {
			p.ReportHintf(l.pos,
				"nest two instances of one class only under a sanctioned total order (e.g. ascending ID) and //pqlint:allow lockorder with that reason",
				"acquires %s while already holding %s (same lock class)", l.class, h.class)
			continue
		}
		if !order.present {
			continue
		}
		if order.less[h.class][l.class] {
			continue
		}
		if order.less[l.class][h.class] {
			p.ReportHintf(l.pos,
				"release the held lock first, or change the declared order if this nesting is the intended one",
				"acquires %s while holding %s, violating the declared lock order (%s < %s)",
				l.class, h.class, l.class, h.class)
			continue
		}
		p.ReportHintf(l.pos,
			"add the edge to a //pqlint:lockorder manifest comment, or //pqlint:allow lockorder with a reason",
			"acquisition edge %s -> %s is not covered by the //pqlint:lockorder manifest", h.class, l.class)
	}
}

// collectLockOrder parses the package's manifest comments, validates
// the named classes, builds the transitive closure, and reports
// malformed manifests and declared cycles.
func collectLockOrder(p *Pass) *lockOrderDecl {
	order := &lockOrderDecl{less: make(map[lockClass]map[lockClass]bool)}
	addEdge := func(a, b lockClass) {
		if order.less[a] == nil {
			order.less[a] = make(map[lockClass]bool)
		}
		order.less[a][b] = true
	}
	addClass := func(c lockClass) {
		for _, have := range order.classes {
			if have == c {
				return
			}
		}
		order.classes = append(order.classes, c)
	}
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := commentText(c.Text)
				rest, ok := strings.CutPrefix(text, lockorderPrefix)
				if !ok {
					continue
				}
				if order.pos == token.NoPos {
					order.pos = c.Pos()
				}
				chain, bad := parseLockOrderChain(p, rest)
				if bad != "" {
					p.ReportHintf(c.Pos(),
						"write //pqlint:lockorder A.mu < B.mu < C.mu with each class a mutex field of a struct in this package",
						"malformed //pqlint:lockorder manifest: %s", bad)
					continue
				}
				order.present = true
				for i := 0; i+1 < len(chain); i++ {
					addEdge(chain[i], chain[i+1])
					addClass(chain[i])
					addClass(chain[i+1])
				}
			}
		}
	}
	if !order.present {
		return order
	}
	// Transitive closure, then cycle detection: a < a after closure
	// means the declared chains contradict each other.
	for _, k := range order.classes {
		for _, a := range order.classes {
			for _, b := range order.classes {
				if order.less[a][k] && order.less[k][b] {
					addEdge(a, b)
				}
			}
		}
	}
	for _, a := range order.classes {
		if order.less[a][a] {
			p.Reportf(order.pos, "//pqlint:lockorder manifest declares a cycle through %s", a)
			break
		}
	}
	return order
}

// parseLockOrderChain parses "A.mu < B.mu < C.mu" into classes,
// validating Type.field names against the package scope. Bare names
// (package-level or local mutex variables) are accepted unvalidated.
func parseLockOrderChain(p *Pass, spec string) ([]lockClass, string) {
	var chain []lockClass
	parts := strings.Split(spec, "<")
	if len(parts) < 2 {
		return nil, "a manifest needs at least two classes separated by <"
	}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" || strings.ContainsAny(part, " \t") {
			return nil, "class " + "\"" + part + "\"" + " is not a single Type.field or mutex name"
		}
		c := lockClass{field: part}
		if dot := strings.IndexByte(part, '.'); dot >= 0 {
			c = lockClass{typeName: part[:dot], field: part[dot+1:]}
			if _, ok := packageMutexField(p, c.typeName, c.field); !ok {
				return nil, "class " + part + " does not name a sync.Mutex/RWMutex field of a struct type in this package"
			}
		}
		chain = append(chain, c)
	}
	return chain, ""
}

// commentText strips the comment markers from a line or block comment.
func commentText(text string) string {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		return strings.TrimSpace(rest)
	}
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	return strings.TrimSpace(text)
}
