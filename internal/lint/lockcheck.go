package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces the `// guarded by` contract: a struct field
// annotated with its guard may only be read while the guard is held and
// only be written while it is held exclusively, and every lock a
// function acquires must be released on all return paths (directly or
// by defer). The walk is intraprocedural and defer-aware; functions the
// caller locks for are annotated `//pqlint:locked <recv>.<path>` (add
// `:r` for a read-hold), which the analyzer trusts at entry.
//
// Guard grammar, written in the field's trailing or doc comment:
//
//	// guarded by mu                  sibling mutex field
//	// guarded by Index.mu            any held lock of that class
//	// guarded by mu or Index.mu:w    alternatives; :w = only a
//	//                                write-hold sanctions the access
//
// Fresh values (locals bound to composite literals or new) are exempt —
// that is the constructor init path, before the value is shared.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "guarded-by fields accessed only under their lock; every acquired lock released on all return paths",
	Run:  runLockCheck,
}

func runLockCheck(p *Pass) {
	ann := collectLockAnnotations(p, func(pos token.Pos, format string, args ...any) {
		p.ReportHintf(pos, "see the concurrency-annotations guide in the README", format, args...)
	})
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshLocals(info, fd.Body)
			w := &lockWalker{info: info}
			w.hooks = lockHooks{
				access: func(sel *ast.SelectorExpr, fld *types.Var, write bool, st *lockState) {
					checkGuardedAccess(p, ann, fresh, sel, fld, write, st)
				},
				ret: func(st *lockState, pos token.Pos) {
					for _, l := range st.held {
						if l.acquiredHere && !l.deferred {
							p.ReportHintf(pos,
								"defer the unlock right after acquiring, or release it before this return",
								"%s acquired at line %d is still held when the function returns here",
								l.class, p.Pkg.Fset.Position(l.pos).Line)
						}
					}
				},
			}
			w.walkFuncBody(fd.Body, entryState(ann, fd))
		}
	}
}

// checkGuardedAccess verifies one field access against the field's
// guard alternatives and the held-lock set.
func checkGuardedAccess(p *Pass, ann *lockAnnotations, fresh map[types.Object]bool, sel *ast.SelectorExpr, fld *types.Var, write bool, st *lockState) {
	alts := ann.guards[fld]
	if len(alts) == 0 {
		return
	}
	root, basePath, keyOK := exprKey(p.Pkg.Info, sel.X)
	if keyOK && fresh[root] {
		return // init path: the value is not shared yet
	}
	insufficient := false
	for _, alt := range alts {
		if alt.typeName == "" {
			// Sibling guard: the lock at the access's own base must be
			// held — s.mu for s.postings, f.metric.mu for f.metric.byID.
			if !keyOK {
				continue
			}
			path := alt.field
			if basePath != "" {
				path = basePath + "." + alt.field
			}
			l := st.held[heldKey{root: root, path: path}]
			if l == nil {
				continue
			}
			if holdSuffices(l, alt, write) {
				return
			}
			insufficient = true
			continue
		}
		// Cross-struct guard: any held lock of the class counts.
		for _, l := range st.held {
			if l.class.typeName == alt.typeName && l.class.field == alt.field {
				if holdSuffices(l, alt, write) {
					return
				}
				insufficient = true
			}
		}
	}
	kind := "read"
	if write {
		kind = "write"
	}
	hint := "acquire the guard, annotate the function //pqlint:locked if the caller holds it, or //pqlint:allow lockcheck with a reason"
	if insufficient {
		p.ReportHintf(sel.Pos(), hint,
			"%s of %s while holding its guard (%s) read-only", kind, types.ExprString(sel), guardSpec(alts))
		return
	}
	p.ReportHintf(sel.Pos(), hint,
		"%s of %s without holding its guard (%s)", kind, types.ExprString(sel), guardSpec(alts))
}

// holdSuffices reports whether the held lock sanctions the access under
// the given guard alternative: writes need an exclusive hold, reads any
// hold, and a `:w` alternative always needs an exclusive hold.
func holdSuffices(l *heldLock, alt guardAlt, write bool) bool {
	if write || alt.exclusive {
		return l.write
	}
	return true
}

func guardSpec(alts []guardAlt) string {
	parts := make([]string, len(alts))
	for i, a := range alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " or ")
}
