package lint

import (
	"strings"
	"testing"
)

func TestWithin(t *testing.T) {
	cases := []struct {
		path, rel string
		want      bool
	}{
		{"pqgram/internal/store", "internal/store", true},
		{"pqgram/internal/store/sub", "internal/store", true},
		{"pqgram/internal/lint/testdata/src/internal/store/errcheckfix", "internal/store", true},
		{"pqgram/internal/storex", "internal/store", false},
		{"pqgram/internal/fsio", "internal/store", false},
		{"pqgram", "internal/store", false},
	}
	for _, c := range cases {
		p := &Package{Path: c.path}
		if got := p.Within(c.rel); got != c.want {
			t.Errorf("Within(%q, %q) = %v, want %v", c.path, c.rel, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	got, err := ByName([]string{"fsiocheck", "detcheck"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "fsiocheck" || got[1].Name != "detcheck" {
		t.Errorf("ByName returned %v", Names(got))
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Error("ByName(nosuch) succeeded, want error")
	} else if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error %q does not name the unknown analyzer", err)
	}
}

func TestAllRegistered(t *testing.T) {
	want := []string{
		"fsiocheck", "obscheck", "spancheck", "aliascheck", "errcheck-durability", "detcheck",
		"lockcheck", "lockorder", "atomiccheck", "goroutinecheck",
	}
	got := Names(All())
	if len(got) != len(want) {
		t.Fatalf("All() = %v, want %v", got, want)
	}
	have := make(map[string]bool, len(got))
	for _, n := range got {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("analyzer %q missing from All()", n)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "detcheck", File: "a.go", Line: 3, Col: 7, Message: "boom", Hint: "sort it"}
	got := d.String()
	if !strings.HasPrefix(got, "a.go:3:7: [detcheck] boom") || !strings.Contains(got, "hint: sort it") {
		t.Errorf("String() = %q", got)
	}
}
