// Fixture for aliascheck: exported API must not return internal slice or
// map fields without copying.
package aliasfix

type Profile struct {
	bag []uint64
	idx map[uint64]int
}

func (p *Profile) Bag() []uint64 {
	return p.bag // want `exported Bag returns internal slice field p\.bag without copying`
}

func (p *Profile) Index() map[uint64]int {
	return p.idx // want `exported Index returns internal map field p\.idx without copying`
}

func Bags(p *Profile) []uint64 {
	return p.bag // want `exported Bags returns internal slice field p\.bag without copying`
}

// Copying before returning satisfies the contract.
func (p *Profile) BagCopy() []uint64 {
	return append([]uint64(nil), p.bag...)
}

// Scalars are not aliases.
func (p *Profile) Len() int { return len(p.bag) }

// Methods on unexported types are not reachable API.
type hidden struct{ bag []uint64 }

func (h *hidden) Bag() []uint64 { return h.bag }

// Unexported functions may share internal state freely.
func (p *Profile) share() []uint64 { return p.bag }
