// Package atomicfix exercises atomiccheck: all-or-nothing atomicity for
// plain fields driven through sync/atomic and for typed atomics.
package atomicfix

import "sync/atomic"

type stats struct {
	hits  atomic.Int64
	state atomic.Pointer[string]
	total int64 // driven through atomic.AddInt64 below
	name  string
}

func newStats() *stats {
	s := &stats{}
	s.total = 0 // fresh local: init path
	return s
}

func (s *stats) bump() {
	atomic.AddInt64(&s.total, 1)
	s.hits.Add(1)
}

func (s *stats) read() (int64, int64) {
	return atomic.LoadInt64(&s.total), s.hits.Load()
}

func (s *stats) plainRead() int64 {
	return s.total // want `non-atomic access to s\.total, which is accessed via sync/atomic elsewhere`
}

func (s *stats) plainWrite() {
	s.total = 0 // want `non-atomic access to s\.total, which is accessed via sync/atomic elsewhere`
}

func (s *stats) typedReinit() {
	s.hits = atomic.Int64{} // want `non-atomic reinitialization of atomic field s\.hits`
}

func (s *stats) typedCopy() atomic.Int64 {
	return s.hits // want `atomic field s\.hits copied by value`
}

func (s *stats) pointerStore(v *string) {
	s.state.Store(v) // generic typed atomic: method call is fine
}

func (s *stats) addressTaken() *atomic.Int64 {
	return &s.hits // taking the address keeps the atomic shared, not copied
}

// name is never touched atomically, so plain access is fine.
func (s *stats) label() string {
	s.name = "x"
	return s.name
}
