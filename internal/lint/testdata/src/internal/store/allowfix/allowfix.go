// Fixture for the //pqlint:allow suppression semantics: a comment covers
// its own line and the next line only, and a malformed or unknown name
// is a finding in its own right.
package allowfix

import "os"

// A trailing comment suppresses its own line.
func sameLine(f *os.File) {
	f.Close() //pqlint:allow errcheck-durability fixture: best-effort
}

// A comment line suppresses the line below it.
func lineAbove(f *os.File) {
	//pqlint:allow errcheck-durability fixture: best-effort
	f.Close()
}

// Two lines above is out of range: the finding survives.
func tooFar(f *os.File) {
	//pqlint:allow errcheck-durability fixture: best-effort

	f.Close() // want `error from f\.Close is discarded on the durability path`
}

// Naming a different (valid) analyzer does not suppress this one.
func wrongAnalyzer(f *os.File) {
	//pqlint:allow detcheck fixture: names the wrong analyzer
	f.Close() // want `error from f\.Close is discarded on the durability path`
}

// An unknown analyzer name is reported and suppresses nothing.
func unknownName(f *os.File) {
	//pqlint:allow nosuchcheck fixture // want `unknown analyzer "nosuchcheck" in //pqlint:allow comment`
	f.Close() // want `error from f\.Close is discarded on the durability path`
}

// An allow comment naming no analyzer at all is reported.
func emptyAllow(f *os.File) {
	/* want `names no analyzer` */ //pqlint:allow
	f.Close()                      // want `error from f\.Close is discarded on the durability path`
}

// A comma list suppresses every named analyzer.
func commaList(f *os.File) {
	//pqlint:allow errcheck-durability,fsiocheck fixture: both named
	f.Close()
}

// Inside a switch case body both placements still work: comments in
// clause bodies reach the file's comment list like any other.
func switchCase(f *os.File, n int) {
	switch n {
	case 0:
		f.Close() //pqlint:allow errcheck-durability fixture: best-effort
	case 1:
		//pqlint:allow errcheck-durability fixture: best-effort
		f.Close()
	default:
		f.Close() // want `error from f\.Close is discarded on the durability path`
	}
}

// Inside select case bodies.
func selectCase(f *os.File, ch chan int) {
	select {
	case <-ch:
		f.Close() //pqlint:allow errcheck-durability fixture: best-effort
	default:
		//pqlint:allow errcheck-durability fixture: best-effort
		f.Close()
	}
}

// On a defer line, trailing and line-above.
func deferTrailing(f *os.File) {
	defer f.Close() //pqlint:allow errcheck-durability fixture: best-effort
}

func deferLineAbove(f *os.File) {
	//pqlint:allow errcheck-durability fixture: best-effort
	defer f.Close()
}
