// Fixture for fsiocheck: filesystem mutations inside internal/store must
// flow through fsio.FS, never the os package directly.
package fsiofix

import "os"

func createDirect(path string) error {
	f, err := os.Create(path) // want `direct call to os\.Create bypasses the fsio layer`
	if err != nil {
		return err
	}
	return f.Close()
}

func renameDirect(a, b string) error {
	return os.Rename(a, b) // want `direct call to os\.Rename bypasses the fsio layer`
}

func writeDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct call to os\.WriteFile bypasses the fsio layer`
}

func mkdirDirect(path string) error {
	return os.MkdirAll(path, 0o755) // want `direct call to os\.MkdirAll bypasses the fsio layer`
}

// Reads cannot lose data and are not flagged.
func readOK(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// The sanctioned passthrough shape: suppressed with a named reason.
func allowedPassthrough(path string) error {
	//pqlint:allow fsiocheck fixture models the fsio.OS passthrough
	return os.Remove(path)
}
