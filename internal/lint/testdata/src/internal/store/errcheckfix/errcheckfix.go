// Fixture for errcheck-durability: discarded Sync/Close/rollback errors
// on the durability path.
package errcheckfix

import "os"

type journal struct{}

func (j *journal) rollback() error { return nil }

func bare(f *os.File) {
	f.Close() // want `error from f\.Close is discarded on the durability path`
}

func deferred(f *os.File) {
	defer f.Close() // want `error from f\.Close is discarded on the durability path`
}

func blankAssign(f *os.File) {
	_ = f.Sync() // want `error from f\.Sync is discarded on the durability path`
}

func rollbackBare(j *journal) {
	j.rollback() // want `error from j\.rollback is discarded on the durability path`
}

// Failure-path cleanup is exempt: the discard is immediately followed by
// returning the error that caused it.
func failurePath(f *os.File, err error) error {
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// A deferred close is never exempt, even right before an error return:
// it runs outside the statement order the exemption reasons about.
func deferredNotExempt(f *os.File, err error) error {
	if err != nil {
		defer f.Close() // want `error from f\.Close is discarded on the durability path`
		return err
	}
	return nil
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
