// Fixture for the //pqlint:allowfile file-scoped escape hatch: the
// named analyzers are suppressed everywhere in the file (no line range),
// analyzers it does not name keep reporting, and unknown names are
// findings that suppress nothing.
//
//pqlint:allowfile errcheck-durability fixture: every close in this file is best-effort cleanup
package allowfilefix

import "os"

// Suppressed without a nearby comment: file scope has no line range.
func farFromTheComment(f *os.File) {
	f.Close()
}

func deferredToo(f *os.File) {
	defer f.Close()
}

// The allowfile names only errcheck-durability, so fsiocheck still
// reports in this file.
func stillDirty(a, b string) error {
	return os.Rename(a, b) // want `direct call to os\.Rename bypasses the fsio layer`
}

// An unknown analyzer in an allowfile comment is a finding.
func unknownName(f *os.File) {
	//pqlint:allowfile nosuchcheck fixture // want `unknown analyzer "nosuchcheck" in //pqlint:allowfile comment`
	f.Close()
}

// An allowfile comment naming no analyzer at all is reported.
func emptyAllowFile(f *os.File) {
	/* want `//pqlint:allowfile comment names no analyzer` */ //pqlint:allowfile
	f.Close()
}
