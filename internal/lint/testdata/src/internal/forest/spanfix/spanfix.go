// Fixture for spancheck: every call that produces a *obs.Span must bind
// the result, and the span must be finished on every return path —
// either by a defer right after the start or by an explicit
// Finish/FinishWithDuration before each return.
package spanfix

import (
	"time"

	"pqgram/internal/obs"
)

// The canonical pattern: defer covers every path, including panics.
func goodDefer(work func() error) error {
	sp := obs.StartSpan("good.defer")
	defer sp.Finish()
	return work()
}

// Per-branch finishes are fine when every return is preceded by one.
func goodPerBranch(cond bool) int {
	sp := obs.StartSpan("good.branch")
	if cond {
		sp.SetAttr("taken", 1)
		sp.Finish()
		return 1
	}
	sp.Finish()
	return 0
}

// A finish inside a deferred function literal also covers every path.
func goodDeferredClosure(col *obs.Collector) {
	sp := col.StartTrace("good.closure")
	defer func() {
		sp.SetAttr("done", 1)
		sp.Finish()
	}()
	sp.AddAttr("work", 1)
}

// FinishWithDuration counts as finishing.
func goodSynthesized(t0 time.Time) {
	sp := obs.StartSpan("good.synthesized")
	sp.FinishWithDuration(time.Since(t0))
}

// Returning the span transfers ownership to the caller.
func goodHandoff() *obs.Span {
	sp := obs.StartSpan("good.handoff")
	return sp
}

// Passing a span down as an argument is fine: the starter still owns the
// Finish, and here it happens on the only path out.
func goodChildThreaded(sp *obs.Span) {
	child := sp.Child("good.child")
	child.SetAttr("n", 1)
	child.Finish()
}

// A span whose result is thrown away can never be finished.
func badDiscarded() {
	obs.StartSpan("bad.discarded") // want `result of StartSpan\(\) is discarded`
}

// Blank assignment is the same bug with extra steps.
func badBlank() {
	_ = obs.StartSpan("bad.blank") // want `span from StartSpan\(\) is not bound to a single variable`
}

// The error path leaks the span: only the success return finishes it.
func badEarlyReturn(work func() error) error {
	sp := obs.StartSpan("bad.early")
	if err := work(); err != nil {
		return err // want `span "sp" started from StartSpan\(\) is not finished on this return path`
	}
	sp.Finish()
	return nil
}

// No finish anywhere: the function falls off the end with the span open.
func badFallsOffEnd(tr *obs.Tracer) {
	sp := tr.Start("bad.fallthrough") // want `span "sp" started from Start\(\) is never finished before the function falls off the end`
	sp.SetAttr("n", 1)
}

// Child spans are held to the same contract as roots.
func badChildLeak(parent *obs.Span, cond bool) int {
	child := parent.Child("bad.child")
	if cond {
		return 1 // want `span "child" started from Child\(\) is not finished on this return path`
	}
	child.Finish()
	return 0
}

// The escape hatch names the analyzer and documents why.
func allowedLeak() {
	sp := obs.StartSpan("allowed") //pqlint:allow spancheck — intentionally unfinished in this fixture
	sp.SetAttr("n", 1)
}
