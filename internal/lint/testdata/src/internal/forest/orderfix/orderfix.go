// Package orderfix exercises lockorder: the //pqlint:lockorder
// manifest, transitive closure, violation and uncovered-edge reporting,
// and same-class nesting.
//
//pqlint:lockorder registry.mu < entry.mu < shard.mu
package orderfix

import "sync"

type registry struct{ mu sync.RWMutex }

type entry struct{ mu sync.Mutex }

type shard struct{ mu sync.Mutex }

type misc struct{ mu sync.Mutex }

func inOrder(r *registry, e *entry, s *shard) {
	r.mu.Lock()
	e.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	e.mu.Unlock()
	r.mu.Unlock()
}

// transitiveSkip holds registry and goes straight to shard: covered by
// the closure of the declared chain.
func transitiveSkip(r *registry, s *shard) {
	r.mu.RLock()
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.RUnlock()
}

func inverted(r *registry, e *entry) {
	e.mu.Lock()
	r.mu.Lock() // want `acquires registry\.mu while holding entry\.mu, violating the declared lock order`
	r.mu.Unlock()
	e.mu.Unlock()
}

func selfNested(a, b *entry) {
	a.mu.Lock()
	b.mu.Lock() // want `acquires entry\.mu while already holding entry\.mu \(same lock class\)`
	b.mu.Unlock()
	a.mu.Unlock()
}

func uncovered(m *misc, e *entry) {
	e.mu.Lock()
	m.mu.Lock() // want `acquisition edge entry\.mu -> misc\.mu is not covered by the //pqlint:lockorder manifest`
	m.mu.Unlock()
	e.mu.Unlock()
}

// sequential lock/unlock pairs never nest, so no edges arise.
func sequential(m *misc, e *entry) {
	e.mu.Lock()
	e.mu.Unlock()
	m.mu.Lock()
	m.mu.Unlock()
}

// assertionSeeded: the entry assertion participates in ordering edges
// exactly like a lock taken in the body.
//
//pqlint:locked e.mu
func assertionSeeded(e *entry, r *registry) {
	r.mu.Lock() // want `acquires registry\.mu while holding entry\.mu, violating the declared lock order`
	r.mu.Unlock()
}

/*pqlint:lockorder nothere.mu < entry.mu*/ // want `malformed //pqlint:lockorder manifest`
