// Package lockfix exercises lockcheck: guarded-by access discipline,
// //pqlint:locked entry assertions, the init-path exemption, and
// unlock-on-all-paths.
package lockfix

import (
	"errors"
	"sync"
)

var errEmpty = errors.New("empty")

type counterShard struct {
	mu   sync.RWMutex
	vals map[string]int // guarded by mu
}

type registry struct {
	mu     sync.RWMutex
	shards [4]counterShard
	epoch  int // guarded by mu
}

// table's rows are protected by its own mutex, or excluded wholesale by
// the registry write lock (the "registry write covers everything"
// pattern): a read-hold of registry.mu is NOT enough.
type table struct {
	mu   sync.Mutex
	rows map[string]int // guarded by mu or registry.mu:w
}

type broken struct {
	mu    sync.Mutex
	count int // guarded by lock — want "bad .guarded by. annotation on count"
}

func newShard() *counterShard {
	s := &counterShard{}
	s.vals = make(map[string]int) // fresh local: init path, no lock needed
	return s
}

func (s *counterShard) get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vals[k]
}

func (s *counterShard) badGet(k string) int {
	return s.vals[k] // want `read of s\.vals without holding its guard \(mu\)`
}

func (s *counterShard) badWriteUnderRead(k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.vals[k]++ // want `write of s\.vals while holding its guard \(mu\) read-only`
}

func (s *counterShard) put(k string, v int) {
	s.mu.Lock()
	s.vals[k] = v
	s.mu.Unlock()
}

// leakOnError forgets the unlock on its error path.
func (s *counterShard) leakOnError(k string) error {
	s.mu.Lock()
	if len(s.vals) == 0 {
		return errEmpty // want `counterShard\.mu acquired at line \d+ is still held when the function returns here`
	}
	s.vals[k]++
	s.mu.Unlock()
	return nil
}

// multiReturn releases on every path, manually.
func (s *counterShard) multiReturn(k string) (int, error) {
	s.mu.RLock()
	if s.vals == nil {
		s.mu.RUnlock()
		return 0, errEmpty
	}
	v, ok := s.vals[k]
	s.mu.RUnlock()
	if !ok {
		return 0, errEmpty
	}
	return v, nil
}

// addLocked is a *Locked helper: the caller holds s.mu for writing.
//
//pqlint:locked s.mu
func (s *counterShard) addLocked(k string) { s.vals[k]++ }

// sizeLocked only needs a read-hold.
//
//pqlint:locked s.mu:r
func (s *counterShard) sizeLocked() int { return len(s.vals) }

// badAssertion names a variable that is not a receiver or parameter;
// the guarded access below stays unchecked because nothing resolved.
//
/*pqlint:locked q.mu*/ // want `bad //pqlint:locked assertion "q\.mu"`
func (s *counterShard) badAssertion(k string) int {
	return s.vals[k] // want `read of s\.vals without holding its guard \(mu\)`
}

// nestedPath locks through a multi-step selector path; accesses through
// the same spelling match the held key.
func (r *registry) nestedPath(i int, k string) int {
	r.shards[i].mu.RLock()
	v := r.shards[i].vals[k]
	r.shards[i].mu.RUnlock()
	return v
}

// crossStructWrite rewrites a table under the registry write lock — the
// :w alternative sanctions it without taking t.mu.
//
//pqlint:locked r.mu
func (r *registry) crossStructWrite(t *table) {
	t.rows = make(map[string]int)
}

// crossStructReadHold holds the registry lock read-only, which the :w
// alternative does not accept (and t.mu is not held either).
//
//pqlint:locked r.mu:r
func (r *registry) crossStructReadHold(t *table) int {
	return len(t.rows) // want `read of t\.rows while holding its guard \(mu or registry\.mu:w\) read-only`
}

// branchesMerge: both branches acquire the lock, so the merged state
// still holds it (read-mode, the weaker of the two).
func (s *counterShard) branchesMerge(exclusive bool) int {
	if exclusive {
		s.mu.Lock()
	} else {
		s.mu.RLock()
	}
	n := len(s.vals)
	if exclusive {
		s.mu.Unlock()
	} else {
		s.mu.RUnlock()
	}
	return n
}

// oneBranchOnly: the lock is only held on one path, so the access after
// the merge is unguarded.
func (s *counterShard) oneBranchOnly(lock bool) int {
	if lock {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return len(s.vals) // want `read of s\.vals without holding its guard \(mu\)`
}

// closureUnderLock: an inline closure (sort-comparator shape) runs
// under the caller's lock and may touch guarded state.
func (s *counterShard) closureUnderLock(keys []string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	walk := func(k string) { total += s.vals[k] }
	for _, k := range keys {
		walk(k)
	}
	return total
}

// goroutineNoLock: a spawned goroutine does not inherit the lock
// discipline of its spawner; it acquires for itself.
func (s *counterShard) goroutineNoLock(done chan struct{}) {
	go func() {
		s.mu.Lock()
		s.vals["bg"]++
		s.mu.Unlock()
		<-done
	}()
}

// deferredClosureUnlock: the unlock lives inside a deferred closure.
func (s *counterShard) deferredClosureUnlock(k string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	s.vals[k]++
	return s.vals[k]
}

func (b *broken) use() int {
	return b.count
}
