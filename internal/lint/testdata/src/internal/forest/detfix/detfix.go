// Fixture for detcheck: iterating a map (randomized order) must not feed
// a returned slice or an output stream without an intervening sort, and
// a top-k ranking drained from a heap must be sorted (tie-broken) before
// it is returned.
package detfix

import (
	"fmt"
	"io"
	"sort"
)

func badKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to returned slice "out" inside range over map without a following sort`
	}
	return out
}

// collect-sort-return is the canonical fix.
func goodKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A sort-shaped helper counts too.
func goodHelperSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []string) { sort.Strings(ks) }

// Order-insensitive reductions are not flagged.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// A slice that never escapes as a result is not flagged.
func localOnly(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	return len(tmp)
}

func badWrite(w io.Writer, m map[string]int) error {
	for k, v := range m {
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, v); err != nil { // want `output written inside range over map`
			return err
		}
	}
	return nil
}

func goodWrite(w io.Writer, m map[string]int) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, m[k]); err != nil {
			return err
		}
	}
	return nil
}

// --- top-k ranking drains ---------------------------------------------

// match mirrors the forest's Match: a ranking entry ordered by distance
// with ties broken by ID.
type match struct {
	ID   string
	Dist float64
}

// search mirrors vpSearch: a bounded max-heap of the best k seen, whose
// backing array beyond index 0 is an arbitrary permutation.
type search struct {
	heap []match
}

func badHeapCopy(s *search) []match {
	out := make([]match, len(s.heap))
	copy(out, s.heap) // want `top-k ranking "out" drained from a heap without a following sort`
	return out
}

// copy-then-sort is the canonical drain (lookupTopMetricLocked's shape).
func goodHeapCopy(s *search) []match {
	out := make([]match, len(s.heap))
	copy(out, s.heap)
	sortRanking(out)
	return out
}

func badHeapAppend(s *search) []match {
	var out []match
	for _, m := range s.heap {
		out = append(out, m) // want `top-k ranking "out" drained from a heap without a following sort`
	}
	return out
}

func goodHeapAppend(s *search) []match {
	var out []match
	out = append(out, s.heap...)
	sortRanking(out)
	return out
}

func badHeapAlias(s *search) []match {
	out := s.heap // want `top-k ranking "out" drained from a heap without a following sort`
	return out
}

// A drain that never escapes as a result is not a ranking.
func heapLocalOnly(s *search) int {
	tmp := make([]match, len(s.heap))
	copy(tmp, s.heap)
	return len(tmp)
}

func sortRanking(ms []match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].ID < ms[j].ID
	})
}
