// Fixture for obscheck: metric-handle structs must sit behind
// atomic.Pointer, and a possibly-nil metrics pointer may only be
// dereferenced under a nil guard.
package obsfix

import (
	"sync/atomic"

	"pqgram/internal/obs"
)

// metrics is the preresolved-handle shape the analyzer recognizes.
type metrics struct {
	lookups *obs.Counter
	latency *obs.Histogram
}

// A plain field of metrics-pointer type lets SetCollector race readers.
type badIndex struct {
	m *metrics // want `metric-handle struct stored in a plain field`
}

// The sanctioned container, plus a bare collector pointer (nil-safe by
// construction, so a plain field is fine).
type goodIndex struct {
	m atomic.Pointer[metrics]
	c *obs.Collector
}

// Load-then-guard is the canonical read pattern.
func (x *goodIndex) observe() {
	m := x.m.Load()
	if m != nil {
		m.lookups.Inc()
	}
}

func unguarded(m *metrics) {
	m.lookups.Inc() // want `possibly-nil metrics pointer "m" dereferenced without a nil guard`
}

func guardedIf(m *metrics) {
	if m != nil {
		m.lookups.Inc()
	}
}

func guardedEarlyReturn(m *metrics) {
	if m == nil {
		return
	}
	m.lookups.Inc()
}

func guardedConjunction(m *metrics, on bool) {
	if on && m != nil {
		m.latency.Observe(1)
	}
}

func guardedElseBranch(m *metrics) {
	if m == nil {
		println("uninstrumented")
	} else {
		m.lookups.Inc()
	}
}

// A lexical guard outside a closure still holds inside it: metrics
// pointers are immutable locals.
func guardedClosure(m *metrics) func() {
	if m == nil {
		return func() {}
	}
	return func() {
		m.lookups.Inc()
	}
}

// A pointer built from a composite literal is provably non-nil.
func newMetrics(c *obs.Collector) *metrics {
	m := &metrics{
		lookups: c.Counter("lookups"),
		latency: c.Histogram("latency"),
	}
	m.lookups.Inc()
	return m
}
