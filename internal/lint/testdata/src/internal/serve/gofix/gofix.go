// Package gofix exercises goroutinecheck: WaitGroup join discipline,
// stop-channel shutdown paths, and the unresolvable-target case.
package gofix

import "sync"

func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func leak() {
	go func() { // want `goroutine has no provable join or shutdown path`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls Done on a WaitGroup but no matching Add appears before the go statement`
		defer wg.Done()
	}()
	wg.Wait()
}

func addAfterGo() {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls Done on a WaitGroup but no matching Add appears before the go statement`
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

func stopChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

type server struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

// fieldWaitGroup: the spawner Adds on s.wg and the worker method Dones
// on its own receiver's wg — matched by field-path tail.
func (s *server) start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *server) loop() {
	defer s.wg.Done()
	<-s.quit
}

// namedWorker joins through a WaitGroup passed as a parameter.
func spawnNamed(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(jobs, &wg)
	close(jobs)
	wg.Wait()
}

func worker(jobs chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	for range jobs {
	}
}

// rangeDrain: ranging over a channel is a shutdown path — the producer
// closing the channel joins the consumer.
func rangeDrain(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
	close(jobs)
}

// doneOnAllPaths: non-deferred Done, covering every return lexically.
func doneOnAllPaths(wg *sync.WaitGroup, cond bool) {
	wg.Add(1)
	go func() {
		if cond {
			wg.Done()
			return
		}
		wg.Done()
	}()
}

func unresolvable() {
	go println("x") // want `goroutine has no provable join or shutdown path \(target is not declared in this package\)`
}
