package lint

import (
	"go/ast"
	"go/types"
)

// AliasCheck enforces the no-aliasing contract of the exported index
// surface (the PR 1 TreeIndex bug class): an exported function or method
// of the index, profile, store or core packages must not return an
// internal slice or map field directly. A caller mutating the returned
// value would corrupt index state behind the locks, and a concurrent
// reader would race with internal writers the locks no longer cover.
var AliasCheck = &Analyzer{
	Name: "aliascheck",
	Doc:  "exported index/profile/store API must not return internal slice/map fields without copying",
	Run:  runAliasCheck,
}

// aliasScopes are the packages whose exported API carries the contract.
// internal/tree is deliberately out of scope: its Node accessors hand out
// live structure by design — the tree is the mutable input, not index
// state guarded by invariants.
var aliasScopes = []string{
	"internal/forest",
	"internal/profile",
	"internal/store",
	"internal/core",
}

func runAliasCheck(p *Pass) {
	inScope := p.Pkg.IsModuleRoot()
	for _, s := range aliasScopes {
		inScope = inScope || p.Pkg.Within(s)
	}
	if !inScope {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !receiverExported(fd) {
				continue
			}
			checkReturns(p, fd)
		}
	}
}

// receiverExported reports whether the declaration is a plain function or
// a method on an exported type — methods of unexported types are not
// reachable API.
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func checkReturns(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside belong to the closure
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				continue
			}
			kind := ""
			switch selection.Type().Underlying().(type) {
			case *types.Slice:
				kind = "slice"
			case *types.Map:
				kind = "map"
			default:
				continue
			}
			p.ReportHintf(res.Pos(),
				"return a copy (append([]T(nil), x...), a Clone method, or rebuild the map) so callers cannot mutate index state through the alias",
				"exported %s returns internal %s field %s without copying", fd.Name.Name, kind, types.ExprString(sel))
		}
		return true
	})
}
