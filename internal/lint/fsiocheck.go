package lint

import (
	"go/ast"
	"go/types"
)

// FsioCheck enforces the fault-injection coverage invariant of the
// persistence layer: inside internal/store and internal/fsio, every
// filesystem mutation must flow through the fsio.FS interface, never the
// os package directly. A mutation that bypasses fsio is invisible to the
// crash-consistency harness — the durability proof no longer covers it.
// The fsio.OS passthrough itself is the one legitimate caller and carries
// //pqlint:allow fsiocheck comments.
var FsioCheck = &Analyzer{
	Name: "fsiocheck",
	Doc:  "store/fsio code must mutate the filesystem through fsio.FS, not the os package",
	Run:  runFsioCheck,
}

// osMutators are the os entry points that change filesystem state. Reads
// (os.Open, os.Stat, os.ReadFile) are not listed: they cannot lose data,
// and the store's read paths already go through fsio for fault coverage.
var osMutators = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"WriteFile":  true,
	"Truncate":   true,
	"Mkdir":      true,
	"MkdirAll":   true,
}

func runFsioCheck(p *Pass) {
	if !p.Pkg.Within("internal/store") && !p.Pkg.Within("internal/fsio") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "os" {
				return true
			}
			if osMutators[sel.Sel.Name] {
				p.ReportHintf(call.Pos(),
					"route the mutation through the fsio.FS the store was opened with, so fault injection and the crash-consistency harness cover it",
					"direct call to os.%s bypasses the fsio layer", sel.Sel.Name)
			}
			return true
		})
	}
}
