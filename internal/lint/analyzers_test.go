package lint_test

import (
	"testing"

	"pqgram/internal/lint"
	"pqgram/internal/lint/linttest"
)

// Each analyzer is checked against a fixture package whose directory
// mirrors the real tree under testdata/src, so the path-segment scoping
// (Package.Within) behaves exactly as it does on production packages.

func TestFsioCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/fsiofix", lint.FsioCheck)
}

func TestErrcheckDurability(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/errcheckfix", lint.ErrcheckDurability)
}

func TestObsCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/obsfix", lint.ObsCheck)
}

func TestSpanCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/spanfix", lint.SpanCheck)
}

func TestDetCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/detfix", lint.DetCheck)
}

func TestAliasCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/profile/aliasfix", lint.AliasCheck)
}

// TestAllowSemantics proves the escape hatch is honored on the comment's
// own line and the next line only, that naming the wrong analyzer does
// not suppress, and that unknown or missing names are findings.
func TestAllowSemantics(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/allowfix", lint.ErrcheckDurability)
}
