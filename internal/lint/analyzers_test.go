package lint_test

import (
	"testing"

	"pqgram/internal/lint"
	"pqgram/internal/lint/linttest"
)

// Each analyzer is checked against a fixture package whose directory
// mirrors the real tree under testdata/src, so the path-segment scoping
// (Package.Within) behaves exactly as it does on production packages.

func TestFsioCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/fsiofix", lint.FsioCheck)
}

func TestErrcheckDurability(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/errcheckfix", lint.ErrcheckDurability)
}

func TestObsCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/obsfix", lint.ObsCheck)
}

func TestSpanCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/spanfix", lint.SpanCheck)
}

func TestDetCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/detfix", lint.DetCheck)
}

func TestAliasCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/profile/aliasfix", lint.AliasCheck)
}

func TestLockCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/lockfix", lint.LockCheck)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/forest/orderfix", lint.LockOrder)
}

func TestAtomicCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/atomicfix", lint.AtomicCheck)
}

func TestGoroutineCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/serve/gofix", lint.GoroutineCheck)
}

// TestAllowSemantics proves the escape hatch is honored on the comment's
// own line and the next line only — including inside switch and select
// case bodies and on defer lines — that naming the wrong analyzer does
// not suppress, and that unknown or missing names are findings.
func TestAllowSemantics(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/allowfix", lint.ErrcheckDurability)
}

// TestAllowFileSemantics proves //pqlint:allowfile suppresses the named
// analyzers for the whole file, leaves unnamed analyzers reporting, and
// reports unknown or missing names.
func TestAllowFileSemantics(t *testing.T) {
	linttest.Run(t, "testdata/src/internal/store/allowfilefix", lint.ErrcheckDurability, lint.FsioCheck)
}
