package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanCheck enforces the tracing layer's ownership contract: whoever
// starts a span (obs.StartSpan, Collector.StartTrace, Tracer.Start,
// Span.Child — any call returning *obs.Span) must finish it. An
// unfinished span from a tracer is a trace that never publishes; an
// unfinished child never records its duration. The check is lexical, in
// the spirit of the other analyzers: a span-typed call result must be
// bound to a variable (not discarded), and every return statement after
// the start — plus the fall-off-the-end path — must be preceded by a
// Finish/FinishWithDuration on that variable, by a `defer` of one
// (directly or inside a deferred function literal), or by returning the
// span itself (ownership transfer). Binding the span to another variable
// or a field transfers ownership out of the analyzer's sight and is not
// checked. False positives are silenced with //pqlint:allow spancheck.
var SpanCheck = &Analyzer{
	Name: "spancheck",
	Doc:  "every started span must be finished on all return paths (defer or per-branch)",
	Run:  runSpanCheck,
}

func runSpanCheck(p *Pass) {
	// The tracing layer itself constructs and hands out unfinished spans
	// by design.
	if p.Pkg.Within("internal/obs") {
		return
	}
	for _, f := range p.Pkg.Files {
		checkSpanOwnership(p, f)
	}
}

// spanStart is one span-creating call bound to a variable inside fn.
type spanStart struct {
	fn   ast.Node // *ast.FuncDecl or *ast.FuncLit owning the creation
	obj  types.Object
	call *ast.CallExpr
}

func checkSpanOwnership(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	var starts []spanStart
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !spanPtr(info.TypeOf(call)) {
			return true
		}
		fn := enclosingFunc(stack)
		if fn == nil {
			return true
		}
		// How is the result consumed? The direct parent decides.
		parent := stack[len(stack)-1]
		switch pn := parent.(type) {
		case *ast.AssignStmt:
			if obj := singleAssignTarget(info, pn, call); obj != nil {
				starts = append(starts, spanStart{fn: fn, obj: obj, call: call})
				return true
			}
			p.ReportHintf(call.Pos(),
				"bind the span to its own variable so each return path can finish it",
				"span from %s() is not bound to a single variable; its Finish cannot be checked", calleeName(call))
		case *ast.ExprStmt:
			p.ReportHintf(call.Pos(),
				"assign the result and call Finish on it (or defer it)",
				"result of %s() is discarded; the span is never finished", calleeName(call))
		}
		// Other consumers (call argument, return value, composite literal)
		// pass the span along; the receiver owns finishing it.
		return true
	})
	for _, st := range starts {
		checkSpanFinished(p, f, st)
	}
}

// checkSpanFinished verifies one bound span: a defer covers every path;
// otherwise each return statement after the start (and the implicit
// return at the end of a non-terminating body) needs a lexically
// preceding finish call on the variable.
func checkSpanFinished(p *Pass, f *ast.File, st spanStart) {
	body := funcBody(st.fn)
	if body == nil {
		return
	}
	info := p.Pkg.Info
	var deferred, escaped bool
	var finishes []token.Pos
	var returns []*ast.ReturnStmt
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		if isFunc(n) && n != st.fn {
			// Descend through ancestors to reach st.fn, but do not enter
			// nested function literals: their return paths (and any finish
			// inside them, unless deferred) prove nothing about this
			// function's.
			return nodeWithin(st.fn, n)
		}
		if !nodeWithin(n, st.fn) {
			return true
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if callsFinish(info, n.Call, st.obj) || containsFinish(info, n.Call, st.obj) {
				deferred = true
			}
		case *ast.CallExpr:
			if callsFinish(info, n, st.obj) {
				finishes = append(finishes, n.Pos())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObj(info, res, st.obj) {
					escaped = true
				}
			}
			returns = append(returns, n)
		case *ast.AssignStmt:
			// Re-binding the span (alias, field store) transfers ownership
			// beyond lexical reach.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && info.ObjectOf(id) == st.obj {
					escaped = true
				}
			}
		}
		return true
	})
	if deferred || escaped {
		return
	}
	start := st.call.End()
	covered := func(at token.Pos) bool {
		for _, fp := range finishes {
			if fp > start && fp < at {
				return true
			}
		}
		return false
	}
	hint := "call " + st.obj.Name() + ".Finish() before returning, or defer it right after the span starts"
	for _, r := range returns {
		if r.Pos() <= start {
			continue
		}
		if !covered(r.Pos()) {
			p.ReportHintf(r.Pos(), hint,
				"span %q started from %s() is not finished on this return path", st.obj.Name(), calleeName(st.call))
		}
	}
	if !terminates(body) && !covered(body.End()) {
		p.ReportHintf(st.call.Pos(), hint,
			"span %q started from %s() is never finished before the function falls off the end", st.obj.Name(), calleeName(st.call))
	}
}

// spanPtr reports whether t is *obs.Span.
func spanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && pathWithin(obj.Pkg().Path(), "internal/obs")
}

// callsFinish reports whether call is obj.Finish(...) or
// obj.FinishWithDuration(...).
func callsFinish(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Finish" && sel.Sel.Name != "FinishWithDuration") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// containsFinish reports whether any descendant of n (e.g. the body of a
// deferred function literal) finishes obj.
func containsFinish(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && callsFinish(info, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsObj reports whether expr references obj anywhere.
func mentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// singleAssignTarget returns the variable object the call's result is
// bound to, when the assignment maps it to exactly one named variable
// (v := call(), v = call(), or the matching position of a parallel
// assignment); nil otherwise (blank, swapped, multi-value).
func singleAssignTarget(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) != call {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return info.ObjectOf(id)
	}
	return nil
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil at file scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if isFunc(stack[i]) {
			return stack[i]
		}
	}
	return nil
}

func isFunc(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return true
	}
	return false
}

func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// nodeWithin reports whether n lies inside container's source range.
func nodeWithin(n, container ast.Node) bool {
	return n.Pos() >= container.Pos() && n.End() <= container.End()
}
