package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadError is a loader failure pinned to the source position that
// caused it, when one is known: a syntax error points at its token, a
// type-check or import-resolution failure at the offending line. The
// driver prints it like a diagnostic (file:line:col: message) instead of
// a bare exit-2 string.
type LoadError struct {
	Pos token.Position // Line == 0 when no position is known
	Msg string
}

func (e *LoadError) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// loadError pins err to a position if it carries one (parser syntax
// errors arrive as a scanner.ErrorList, type-check failures as a
// types.Error) and wraps it in a LoadError either way.
func (l *Loader) loadError(context string, err error) error {
	le := &LoadError{Msg: err.Error()}
	if context != "" {
		le.Msg = context + ": " + le.Msg
	}
	var list scanner.ErrorList
	var terr types.Error
	switch {
	case errors.As(err, &list) && len(list) > 0:
		le.Pos = list[0].Pos
		le.Msg = list[0].Msg
		if context != "" {
			le.Msg = context + ": " + le.Msg
		}
	case errors.As(err, &terr):
		le.Pos = terr.Fset.Position(terr.Pos)
		le.Msg = terr.Msg
		if context != "" {
			le.Msg = context + ": " + le.Msg
		}
	}
	return le
}

// Package is one type-checked package plus everything an analyzer needs
// to inspect it.
type Package struct {
	Path   string // import path; fixture packages use a synthetic one
	Module string // module path of the loader that produced the package
	Dir    string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Within reports whether the package lives at or under the given
// module-relative path (e.g. "internal/store"). Matching is by path
// segment, so synthetic fixture import paths such as
// "fixture/internal/store" scope the same way the real tree does.
func (p *Package) Within(rel string) bool {
	path := "/" + p.Path + "/"
	return strings.Contains(path, "/"+rel+"/")
}

// IsModuleRoot reports whether the package is the module's root package.
func (p *Package) IsModuleRoot() bool { return p.Path == p.Module }

// Loader loads and type-checks packages of one module using only the
// standard library: imports inside the module are resolved by path under
// the module directory, and everything else (the standard library) falls
// back to go/importer's source importer over GOROOT. Test files are
// skipped — the analyzers police production code, and fixtures with
// deliberate violations live under testdata, which the walker ignores.
type Loader struct {
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // keyed by directory
	loading map[string]bool
}

// NewLoader finds the enclosing module of dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns ("./...", "./dir/...", "./dir" or a
// module-relative directory) to packages and type-checks them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = l.ModuleDir
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleDir, pat)
		}
		if !recursive {
			dirs[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	out := make([]*Package, 0, len(sorted))
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir, l.importPathOf(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if sourceFile(e) {
			return true
		}
	}
	return false
}

func sourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

func (l *Loader) importPathOf(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Fixture harnesses use it directly with a synthetic
// path so package-scoped analyzers treat the fixture as the real package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[key]; ok {
		return pkg, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		if !sourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, l.loadError("lint: syntax error", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &LoadError{Msg: fmt.Sprintf("lint: no Go files in %s", dir)}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		return l.importPkg(path)
	})}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, l.loadError("lint: type-checking "+importPath, err)
	}
	pkg := &Package{
		Path:   importPath,
		Module: l.ModulePath,
		Dir:    key,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[key] = pkg
	return pkg, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
