package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheck enforces all-or-nothing atomicity per field: a struct
// field that is ever accessed through sync/atomic must never be
// accessed non-atomically, because a single plain load or store next to
// atomic ones is a data race. Two field shapes are covered:
//
//   - typed atomics (atomic.Int64, atomic.Pointer[T], atomic.Value, ...):
//     the field may only be used as a method receiver or have its
//     address taken — assigning over it or copying it by value bypasses
//     the atomicity (and copies the internal state);
//   - plain integer/pointer fields passed as &x.f to sync/atomic
//     functions anywhere in the package: every other access must also
//     go through sync/atomic.
//
// The constructor init path is exempt: accesses through a local bound
// to a fresh composite literal or new(T) happen before the value is
// shared.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically outside init",
	Run:  runAtomicCheck,
}

func runAtomicCheck(p *Pass) {
	info := p.Pkg.Info
	// Pass 1: fields whose address feeds a sync/atomic call.
	plain := make(map[*types.Var]token.Pos)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !atomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVarOf(info, sel); v != nil {
					if _, seen := plain[v]; !seen {
						plain[v] = call.Pos()
					}
				}
			}
			return true
		})
	}
	// Pass 2: check every field access against both shapes.
	for _, f := range p.Pkg.Files {
		freshByFunc := make(map[ast.Node]map[types.Object]bool)
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldVarOf(info, sel)
			if v == nil {
				return true
			}
			typed := typedAtomic(v.Type())
			_, isPlain := plain[v]
			if !typed && !isPlain {
				return true
			}
			if freshBase(info, freshByFunc, stack, sel) {
				return true
			}
			if typed {
				checkTypedAtomicUse(p, info, sel, stack)
				return true
			}
			if !atomicArgContext(info, stack) {
				p.ReportHintf(sel.Pos(),
					"go through sync/atomic for every access, or drop atomics and guard the field with a mutex",
					"non-atomic access to %s, which is accessed via sync/atomic elsewhere (line %d)",
					types.ExprString(sel), p.Pkg.Fset.Position(plain[v]).Line)
			}
			return true
		})
	}
}

// checkTypedAtomicUse flags uses of a typed-atomic field other than
// method calls and address-taking.
func checkTypedAtomicUse(p *Pass, info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) {
	parent := parentNode(stack)
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[pn]; s != nil && s.Kind() == types.MethodVal {
			return // x.f.Load(), x.f.Store(...), ...
		}
	case *ast.UnaryExpr:
		if pn.Op == token.AND {
			return // &x.f: passing the atomic by pointer keeps it atomic
		}
	case *ast.AssignStmt:
		for _, lhs := range pn.Lhs {
			if ast.Unparen(lhs) == sel {
				p.ReportHintf(sel.Pos(), "use the field's Store method",
					"non-atomic reinitialization of atomic field %s", types.ExprString(sel))
				return
			}
		}
	}
	p.ReportHintf(sel.Pos(), "call Load() on the field instead of copying the atomic by value",
		"atomic field %s copied by value", types.ExprString(sel))
}

// atomicArgContext reports whether the node on top of the stack sits in
// the sanctioned &x.f position of a sync/atomic call.
func atomicArgContext(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	ue, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return atomicPkgCall(info, n)
		default:
			return false
		}
	}
	return false
}

// freshBase reports whether the access base is a fresh local of the
// enclosing function (the constructor init-path exemption), computing
// the function's fresh set on first use.
func freshBase(info *types.Info, cache map[ast.Node]map[types.Object]bool, stack []ast.Node, sel *ast.SelectorExpr) bool {
	root, _, ok := exprKey(info, sel.X)
	if !ok {
		return false
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return false
	}
	fresh, ok := cache[fn]
	if !ok {
		fresh = freshLocals(info, funcBody(fn))
		cache[fn] = fresh
	}
	return fresh[root]
}

func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// typedAtomic reports whether t is one of sync/atomic's typed atomics.
func typedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicPkgCall reports whether call invokes a sync/atomic package
// function (atomic.AddInt64, atomic.LoadPointer, ...).
func atomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}
