package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GoroutineCheck demands a provable join or shutdown path for every
// goroutine in non-test code, so the background workers the storage
// engine is growing cannot leak. Accepted disciplines, checked on the
// goroutine body (a function literal, or the body of a function
// declared in the same package):
//
//   - WaitGroup: the body calls wg.Done (deferred, or lexically before
//     every return), and a matching wg.Add appears before the go
//     statement in the spawning function;
//   - stop channel: the body receives from or ranges over a channel
//     whose name signals shutdown (stop/done/quit/exit/shutdown/close/
//     ctx...), or ranges over any channel (a producer closing the
//     channel joins the consumer).
//
// Anything else — including goroutines whose target is declared outside
// the package — is reported; a deliberate process-lifetime goroutine is
// documented with //pqlint:allow goroutinecheck and a reason.
var GoroutineCheck = &Analyzer{
	Name: "goroutinecheck",
	Doc:  "every go statement needs a provable join (WaitGroup) or shutdown (stop channel) path",
	Run:  runGoroutineCheck,
}

var stopChanRe = regexp.MustCompile(`(?i)(stop|done|quit|exit|shut|close|closing|cancel|ctx)`)

func runGoroutineCheck(p *Pass) {
	info := p.Pkg.Info
	decls := packageFuncDecls(p)
	for _, f := range p.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, info, decls, g, enclosingFunc(stack))
			return true
		})
	}
}

func checkGoStmt(p *Pass, info *types.Info, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt, spawner ast.Node) {
	hint := "add wg.Add(1) before the go and defer wg.Done() inside, select on a stop channel, or //pqlint:allow goroutinecheck with a reason"
	body := goTargetBody(info, decls, g.Call)
	if body == nil {
		p.ReportHintf(g.Pos(), hint,
			"goroutine has no provable join or shutdown path (target is not declared in this package)")
		return
	}
	if wg, ok := waitGroupDiscipline(info, body); ok {
		if spawner == nil || !addBeforeGo(info, funcBody(spawner), wg, g.Pos()) {
			p.ReportHintf(g.Pos(), hint,
				"goroutine calls Done on a WaitGroup but no matching Add appears before the go statement")
		}
		return
	}
	if hasShutdownReceive(info, body) {
		return
	}
	p.ReportHintf(g.Pos(), hint, "goroutine has no provable join or shutdown path")
}

// goTargetBody resolves the body the goroutine will run: the literal's
// own, or the body of a same-package function declaration.
func goTargetBody(info *types.Info, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[info.ObjectOf(fun)]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[info.ObjectOf(fun.Sel)]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

func packageFuncDecls(p *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// waitGroupDiscipline reports whether the goroutine body releases a
// WaitGroup on every path: a deferred Done (directly or inside a
// deferred closure), or a Done lexically preceding every return and the
// fall-off-the-end point. Returns the Done receiver's key for matching
// against the spawner's Add.
func waitGroupDiscipline(info *types.Info, body *ast.BlockStmt) (heldKey, bool) {
	var wg heldKey
	deferred := false
	var donePos []token.Pos
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, ok := waitGroupDoneCall(info, n.Call); ok {
				wg, deferred = key, true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok {
						if key, ok := waitGroupDoneCall(info, call); ok {
							wg, deferred = key, true
						}
					}
					return !deferred
				})
				return false
			}
		case *ast.CallExpr:
			if key, ok := waitGroupDoneCall(info, n); ok {
				wg = key
				donePos = append(donePos, n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})
	if deferred {
		return wg, true
	}
	if len(donePos) == 0 {
		return heldKey{}, false
	}
	covered := func(at token.Pos) bool {
		for _, dp := range donePos {
			if dp < at {
				return true
			}
		}
		return false
	}
	for _, r := range returns {
		if !covered(r) {
			return heldKey{}, false
		}
	}
	if !terminates(body) && !covered(body.End()) {
		return heldKey{}, false
	}
	return wg, true
}

// waitGroupDoneCall matches wg.Done() on a sync.WaitGroup and returns
// the receiver's key.
func waitGroupDoneCall(info *types.Info, call *ast.CallExpr) (heldKey, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || !waitGroupType(info.TypeOf(sel.X)) {
		return heldKey{}, false
	}
	return keyOf(info, sel.X)
}

// addBeforeGo reports whether the spawning function calls Add on a
// matching WaitGroup lexically before the go statement. Matching is by
// object identity (closure capture) or by field-path tail (the
// `go s.worker()` shape, where the spawner adds on s.wg and the worker
// Dones on its receiver's wg).
func addBeforeGo(info *types.Info, spawnBody *ast.BlockStmt, wg heldKey, goPos token.Pos) bool {
	if spawnBody == nil {
		return false
	}
	found := false
	ast.Inspect(spawnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || !waitGroupType(info.TypeOf(sel.X)) {
			return true
		}
		if call.End() >= goPos {
			return true
		}
		key, ok := keyOf(info, sel.X)
		if !ok {
			return true
		}
		if key == wg || pathTail(key.path) == pathTail(wg.path) {
			found = true
		}
		return !found
	})
	return found
}

func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[i+1:]
		}
	}
	return path
}

func waitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasShutdownReceive reports whether the body observes a shutdown
// signal: a receive from a stop-named channel (or ctx.Done()), or a
// range over any channel (closing it joins the consumer).
func hasShutdownReceive(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	chanType := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanType(n.X) && stopChanRe.MatchString(types.ExprString(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if chanType(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}
