// Lock-flow engine shared by lockcheck and lockorder: parsing of the
// concurrency annotations (`// guarded by <mu>` on struct fields,
// `//pqlint:locked <expr>` entry assertions on functions, and the
// package-level `//pqlint:lockorder` manifests) plus a structured,
// defer-aware abstract interpretation of function bodies that tracks
// the set of held locks through branches, loops, switches and selects.
//
// The analysis is intraprocedural by design (the issue-#10 contract):
// a `//pqlint:locked` assertion is trusted at function entry and never
// re-proven at call sites. The walk merges branch states by
// intersection, so a lock is considered held only on paths where it
// provably is — false negatives are possible, silent false positives
// are not supposed to be (and are //pqlint:allow-able when they are).

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ---------------------------------------------------------------------
// Lock identity
// ---------------------------------------------------------------------

// lockClass identifies a lock by its declaration site: the struct type
// that declares the mutex field, or just the variable name for a bare
// package-level / local mutex. Lock-order manifests rank classes.
type lockClass struct {
	typeName string // declaring struct type; "" for a bare mutex variable
	field    string // field or variable name
}

func (c lockClass) String() string {
	if c.typeName == "" {
		return c.field
	}
	return c.typeName + "." + c.field
}

// heldKey identifies a lock *instance* as precisely as the source lets
// us: the root object of the expression that was locked plus the
// rendered selector/index path below it. `f.shards[si].mu` and
// `s.mu` (with s := &f.shards[si]) are different keys — the engine
// tracks whichever spelling the code locks through, and guarded-field
// accesses must go through the same spelling to match.
type heldKey struct {
	root types.Object
	path string
}

// heldLock is one lock in the abstract state.
type heldLock struct {
	key          heldKey
	class        lockClass
	rw           bool // the lock is an RWMutex
	write        bool // held exclusively (Lock, not RLock)
	acquiredHere bool // acquired in this function (vs asserted at entry)
	deferred     bool // a defer releases it on every outgoing path
	pos          token.Pos
}

// lockState is the set of locks held at a program point.
type lockState struct {
	held map[heldKey]*heldLock
}

func newLockState() *lockState { return &lockState{held: make(map[heldKey]*heldLock)} }

func (s *lockState) clone() *lockState {
	out := newLockState()
	for k, l := range s.held {
		cp := *l
		out.held[k] = &cp
	}
	return out
}

// intersect merges two branch exits: a lock survives only if held on
// both, exclusively only if exclusive on both, deferred-released only
// if deferred on both.
func (s *lockState) intersect(o *lockState) {
	for k, l := range s.held {
		ol, ok := o.held[k]
		if !ok {
			delete(s.held, k)
			continue
		}
		l.write = l.write && ol.write
		l.deferred = l.deferred && ol.deferred
		l.acquiredHere = l.acquiredHere || ol.acquiredHere
	}
}

func (s *lockState) list() []*heldLock {
	out := make([]*heldLock, 0, len(s.held))
	for _, l := range s.held {
		out = append(out, l)
	}
	return out
}

// ---------------------------------------------------------------------
// Type and expression predicates
// ---------------------------------------------------------------------

// mutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex; rw distinguishes the two.
func mutexType(t types.Type) (rw, ok bool) {
	if t == nil {
		return false, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockCall matches `expr.Lock()`, `expr.RLock()`, `expr.Unlock()`,
// `expr.RUnlock()` on a sync.Mutex / sync.RWMutex and decomposes it.
func lockCall(info *types.Info, call *ast.CallExpr) (lockExpr ast.Expr, acquire, write, rw, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		acquire, write = true, true
	case "RLock":
		acquire, write = true, false
	case "Unlock":
		acquire, write = false, true
	case "RUnlock":
		acquire, write = false, false
	default:
		return nil, false, false, false, false
	}
	rw, ok = mutexType(info.TypeOf(sel.X))
	if !ok {
		return nil, false, false, false, false
	}
	return sel.X, acquire, write, rw, true
}

// exprKey renders an expression as a trackable (root object, path) key.
// Index expressions embed their printed index, so f.shards[si].mu keyed
// under one spelling matches accesses spelled identically. Call results
// and other dynamic bases are not keyable.
func exprKey(info *types.Info, e ast.Expr) (root types.Object, path string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		root, p, ok := exprKey(info, e.X)
		if !ok {
			return nil, "", false
		}
		if p == "" {
			return root, e.Sel.Name, true
		}
		return root, p + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		root, p, ok := exprKey(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, p + "[" + types.ExprString(e.Index) + "]", true
	case *ast.StarExpr:
		return exprKey(info, e.X)
	}
	return nil, "", false
}

// classOf resolves the lock class of a locked expression: the declaring
// struct's type name for a field, the bare name for a variable.
func classOf(info *types.Info, e ast.Expr) lockClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return lockClass{typeName: namedName(sel.Recv()), field: e.Sel.Name}
		}
		return lockClass{field: e.Sel.Name}
	case *ast.Ident:
		return lockClass{field: e.Name}
	case *ast.StarExpr:
		return classOf(info, e.X)
	case *ast.IndexExpr:
		return classOf(info, e.X)
	}
	return lockClass{}
}

// namedName returns the name of the named type behind t (derefing one
// pointer), or "".
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// fieldVarOf returns the struct field a selector expression reads or
// writes, or nil when the selector is not a field access.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// ---------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------

// guardAlt is one alternative of a `// guarded by` annotation. A field
// may list several guards separated by " or "; holding any one of them
// (write-held for writes when the guard is an RWMutex) sanctions the
// access. A `:w` suffix marks an exclusion-only alternative: only a
// write-hold sanctions any access through it, even a read — the shape
// of "the registry write lock excludes everyone" guards.
type guardAlt struct {
	typeName  string // "" = sibling field of the guarded field's struct
	field     string
	rw        bool // guard is an RWMutex
	exclusive bool // ":w": only a write-hold counts, even for reads
}

func (a guardAlt) String() string {
	s := a.field
	if a.typeName != "" {
		s = a.typeName + "." + a.field
	}
	if a.exclusive {
		s += ":w"
	}
	return s
}

// entryLock is one `//pqlint:locked` assertion: the named lock is held
// at function entry (read-held with the `:r` suffix).
type entryLock struct {
	key   heldKey
	class lockClass
	rw    bool
	write bool
	pos   token.Pos
}

// lockAnnotations is the package-wide annotation index the analyzers
// share. Collected once per (analyzer, package) pass; only lockcheck
// reports malformed guard/locked annotations and only lockorder reports
// malformed manifests, so a broken annotation is a single finding.
type lockAnnotations struct {
	guards map[*types.Var][]guardAlt
	entry  map[*ast.FuncDecl][]entryLock
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][\w.:]*(?:\s+or\s+[A-Za-z_][\w.:]*)*)`)

// collectLockAnnotations indexes the package's guard and entry
// annotations. When report is non-nil, malformed annotations are
// reported through it.
func collectLockAnnotations(p *Pass, report func(pos token.Pos, format string, args ...any)) *lockAnnotations {
	ann := &lockAnnotations{
		guards: make(map[*types.Var][]guardAlt),
		entry:  make(map[*ast.FuncDecl][]entryLock),
	}
	for _, f := range p.Pkg.Files {
		collectGuardComments(p, f, ann, report)
		collectEntryAssertions(p, f, ann, report)
	}
	return ann
}

// collectGuardComments finds `guarded by` annotations on struct fields.
func collectGuardComments(p *Pass, f *ast.File, ann *lockAnnotations, report func(token.Pos, string, ...any)) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			text := fieldCommentText(fld)
			m := guardedByRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			alts, err := parseGuardAlts(p, st, m[1])
			if err != "" {
				if report != nil {
					report(fld.Pos(), "bad `guarded by` annotation on %s: %s", fieldNames(fld), err)
				}
				continue
			}
			for _, name := range fld.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					ann.guards[v] = alts
				}
			}
		}
		return true
	})
}

func fieldNames(fld *ast.Field) string {
	names := make([]string, len(fld.Names))
	for i, n := range fld.Names {
		names[i] = n.Name
	}
	if len(names) == 0 {
		return "embedded field"
	}
	return strings.Join(names, ", ")
}

func fieldCommentText(fld *ast.Field) string {
	var b strings.Builder
	if fld.Doc != nil {
		b.WriteString(fld.Doc.Text())
		b.WriteByte(' ')
	}
	if fld.Comment != nil {
		b.WriteString(fld.Comment.Text())
	}
	// Collapse newlines so an annotation split across doc lines parses.
	return strings.Join(strings.Fields(b.String()), " ")
}

// parseGuardAlts parses "mu or Index.mu:w" into guard alternatives,
// validating each against the declaring struct (siblings) or the
// package scope (Type.field). Returns an error description or "".
func parseGuardAlts(p *Pass, st *ast.StructType, spec string) ([]guardAlt, string) {
	var alts []guardAlt
	for _, part := range strings.Split(spec, " or ") {
		part = strings.Trim(strings.TrimSpace(part), ".,;")
		if part == "" {
			continue
		}
		alt := guardAlt{}
		if rest, ok := strings.CutSuffix(part, ":w"); ok {
			alt.exclusive = true
			part = rest
		}
		if dot := strings.IndexByte(part, '.'); dot >= 0 {
			alt.typeName, alt.field = part[:dot], part[dot+1:]
			rw, ok := packageMutexField(p, alt.typeName, alt.field)
			if !ok {
				return nil, "guard " + part + " does not name a sync.Mutex/RWMutex field of a struct type in this package"
			}
			alt.rw = rw
		} else {
			alt.field = part
			rw, ok := siblingMutexField(p, st, part)
			if !ok {
				return nil, "guard " + part + " is not a sibling sync.Mutex/RWMutex field (use Type.field for a cross-struct guard)"
			}
			alt.rw = rw
		}
		alts = append(alts, alt)
	}
	if len(alts) == 0 {
		return nil, "no guard named"
	}
	return alts, ""
}

func siblingMutexField(p *Pass, st *ast.StructType, name string) (rw, ok bool) {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return mutexType(p.Pkg.Info.TypeOf(fld.Type))
			}
		}
	}
	return false, false
}

// packageMutexField resolves Type.field against the package scope.
func packageMutexField(p *Pass, typeName, field string) (rw, ok bool) {
	obj := p.Pkg.Types.Scope().Lookup(typeName)
	tn, isType := obj.(*types.TypeName)
	if !isType {
		return false, false
	}
	st, isStruct := tn.Type().Underlying().(*types.Struct)
	if !isStruct {
		return false, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return mutexType(st.Field(i).Type())
		}
	}
	return false, false
}

const lockedPrefix = "pqlint:locked"

// collectEntryAssertions finds `//pqlint:locked f.mu[:r]` comments in
// function doc comments and resolves them against the receiver and
// parameters.
func collectEntryAssertions(p *Pass, f *ast.File, ann *lockAnnotations, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rest, ok := strings.CutPrefix(commentText(c.Text), lockedPrefix)
			if !ok {
				continue
			}
			for _, spec := range strings.Fields(rest) {
				el, err := resolveEntryLock(p, fd, strings.TrimSuffix(spec, ","), c.Pos())
				if err != "" {
					if report != nil {
						report(c.Pos(), "bad //pqlint:locked assertion %q: %s", spec, err)
					}
					continue
				}
				ann.entry[fd] = append(ann.entry[fd], el)
			}
		}
	}
}

// resolveEntryLock resolves "f.mu" / "f.metric.mu" / "f.mu:r" against
// the function's receiver and parameters, walking field types to the
// final mutex field.
func resolveEntryLock(p *Pass, fd *ast.FuncDecl, spec string, pos token.Pos) (entryLock, string) {
	el := entryLock{write: true, pos: pos}
	if rest, ok := strings.CutSuffix(spec, ":r"); ok {
		el.write = false
		spec = rest
	}
	parts := strings.Split(spec, ".")
	if len(parts) < 2 {
		return el, "want <receiver-or-param>.<path>.<mutex-field>"
	}
	root := lookupFuncVar(p, fd, parts[0])
	if root == nil {
		return el, parts[0] + " is not the receiver or a parameter of this function"
	}
	t := root.Type()
	ownerName := ""
	for _, field := range parts[1:] {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		ownerName = namedName(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return el, spec + " does not resolve to a struct field path"
		}
		var next types.Type
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == field {
				next = st.Field(i).Type()
				break
			}
		}
		if next == nil {
			return el, "no field " + field + " on " + ownerName
		}
		t = next
	}
	rw, ok := mutexType(t)
	if !ok {
		return el, spec + " is not a sync.Mutex/RWMutex field"
	}
	el.rw = rw
	if !el.write && !rw {
		return el, "a plain sync.Mutex has no read mode; drop the :r suffix"
	}
	el.key = heldKey{root: root, path: strings.Join(parts[1:], ".")}
	el.class = lockClass{typeName: ownerName, field: parts[len(parts)-1]}
	return el, ""
}

// lookupFuncVar finds the receiver or parameter of fd with the given
// name.
func lookupFuncVar(p *Pass, fd *ast.FuncDecl, name string) types.Object {
	info := p.Pkg.Info
	check := func(fields *ast.FieldList) types.Object {
		if fields == nil {
			return nil
		}
		for _, fld := range fields.List {
			for _, id := range fld.Names {
				if id.Name == name {
					return info.Defs[id]
				}
			}
		}
		return nil
	}
	if obj := check(fd.Recv); obj != nil {
		return obj
	}
	return check(fd.Type.Params)
}

// entryState builds the initial lock state of a function from its
// assertions.
func entryState(ann *lockAnnotations, fd *ast.FuncDecl) *lockState {
	st := newLockState()
	for _, el := range ann.entry[fd] {
		cp := el
		st.held[el.key] = &heldLock{
			key: el.key, class: el.class, rw: el.rw, write: el.write, pos: cp.pos,
		}
	}
	return st
}

// ---------------------------------------------------------------------
// Fresh (not-yet-shared) objects: the init-path exemption
// ---------------------------------------------------------------------

// freshLocals collects local variables bound to freshly constructed
// values (composite literals, &composite, new(T)) anywhere in the
// function. A value no other goroutine can reach yet needs no locking,
// which is how constructors initialize guarded fields.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	isFreshRHS := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		case *ast.CallExpr:
			id, ok := ast.Unparen(e.Fun).(*ast.Ident)
			return ok && id.Name == "new" && info.ObjectOf(id) == types.Universe.Lookup("new")
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || !isFreshRHS(n.Rhs[i]) {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if len(n.Values) == 0 {
					// var x T: zero value, fresh by construction.
					if obj := info.ObjectOf(id); obj != nil {
						fresh[obj] = true
					}
				} else if i < len(n.Values) && isFreshRHS(n.Values[i]) {
					if obj := info.ObjectOf(id); obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// ---------------------------------------------------------------------
// The structured walker
// ---------------------------------------------------------------------

// lockHooks are the analyzer callbacks of one function walk.
type lockHooks struct {
	// access fires for every struct-field selector, with the statically
	// known held set. write reports mutation context (assignment target,
	// ++/--, &x.f, delete/append first argument).
	access func(sel *ast.SelectorExpr, fld *types.Var, write bool, st *lockState)
	// acquire fires at every Lock/RLock with the locks held just before.
	acquire func(l *heldLock, prior []*heldLock)
	// ret fires at every return statement and at the fall-off-the-end
	// point of a non-terminating body.
	ret func(st *lockState, pos token.Pos)
}

type lockWalker struct {
	info  *types.Info
	hooks lockHooks
}

// walkFuncBody runs the abstract interpretation over one function body.
func (w *lockWalker) walkFuncBody(body *ast.BlockStmt, entry *lockState) {
	st := entry.clone()
	if !w.walkStmts(body.List, st) {
		if w.hooks.ret != nil {
			w.hooks.ret(st, body.Rbrace)
		}
	}
}

// walkStmts interprets a statement list, mutating st; the result
// reports whether every path through the list leaves the function or
// the enclosing loop (return, branch, or panic).
func (w *lockWalker) walkStmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		w.walkStmt(s.Init, st)
		w.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			elseTerm := w.walkStmt(s.Else, elseSt)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				*st = *elseSt
			case elseTerm:
				*st = *thenSt
			default:
				thenSt.intersect(elseSt)
				*st = *thenSt
			}
			return false
		}
		if !thenTerm {
			st.intersect(thenSt)
		}
		return false
	case *ast.ForStmt:
		w.walkStmt(s.Init, st)
		w.scanExpr(s.Cond, st)
		bodySt := st.clone()
		if !w.walkStmt(s.Body, bodySt) {
			w.walkStmt(s.Post, bodySt)
			st.intersect(bodySt)
		}
		return false
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		bodySt := st.clone()
		if !w.walkStmt(s.Body, bodySt) {
			st.intersect(bodySt)
		}
		return false
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, st)
		w.scanExpr(s.Tag, st)
		return w.walkClauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkStmt(s.Assign, st)
		return w.walkClauses(s.Body, st, false)
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st)
		}
		if w.hooks.ret != nil {
			w.hooks.ret(st, s.Pos())
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current construct; the path no
		// longer reaches the statements below, so it drops out of the
		// merge the same way a return does (returns on the far side of
		// the jump are checked where they occur).
		return true
	case *ast.DeferStmt:
		w.walkDefer(s, st)
		return false
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkNestedFunc(lit, st)
		}
		return false
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.ExprStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		w.scanExpr(s, st)
		return false
	}
	return false
}

// walkClauses interprets switch/select clause bodies from a shared
// entry state and merges the non-terminating exits. Without a default
// (or for select, always) the fall-past path keeps the entry state.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, st *lockState, isSelect bool) bool {
	var exits []*lockState
	hasDefault := false
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		clSt := st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.scanExpr(e, clSt)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(cl.Comm, clSt)
			stmts = cl.Body
		}
		if !w.walkStmts(stmts, clSt) {
			exits = append(exits, clSt)
			allTerm = false
		}
	}
	covered := hasDefault || (isSelect && len(body.List) > 0)
	if allTerm && covered {
		return true
	}
	if len(exits) > 0 {
		merged := exits[0]
		for _, e := range exits[1:] {
			merged.intersect(e)
		}
		if !covered {
			merged.intersect(st)
		}
		*st = *merged
	}
	return false
}

// walkDefer handles a defer statement: a deferred unlock (direct or
// inside a deferred closure) marks the lock released-on-exit; a
// deferred closure body is then interpreted as its own function.
func (w *lockWalker) walkDefer(s *ast.DeferStmt, st *lockState) {
	call := s.Call
	if lockExpr, acquire, _, _, ok := lockCall(w.info, call); ok {
		if !acquire {
			if key, keyOK := keyOf(w.info, lockExpr); keyOK {
				if l := st.held[key]; l != nil {
					l.deferred = true
				}
			}
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Unlocks of currently-held locks inside the deferred closure
		// release them on every outgoing path.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lockExpr, acquire, _, _, ok := lockCall(w.info, c); ok && !acquire {
				if key, keyOK := keyOf(w.info, lockExpr); keyOK {
					if l := st.held[key]; l != nil {
						l.deferred = true
					}
				}
			}
			return true
		})
		w.walkNestedFunc(lit, st)
		return
	}
	// Arguments of a deferred call are evaluated now.
	for _, arg := range call.Args {
		w.scanExpr(arg, st)
	}
}

// walkNestedFunc interprets a function literal under a snapshot of the
// current state: closures invoked inline (sort comparators, ForEach
// callbacks) run under the caller's locks. Inherited locks are demoted
// to not-acquired-here so the literal's own return paths only answer
// for locks it acquired itself. (For `go` literals this inherits locks
// the goroutine will not actually hold — lenient, never a false
// positive.)
func (w *lockWalker) walkNestedFunc(lit *ast.FuncLit, st *lockState) {
	inner := st.clone()
	for _, l := range inner.held {
		l.acquiredHere = false
	}
	w.walkFuncBody(lit.Body, inner)
}

// keyOf is exprKey with the root/path pair packed into a heldKey.
func keyOf(info *types.Info, e ast.Expr) (heldKey, bool) {
	root, path, ok := exprKey(info, e)
	if !ok {
		return heldKey{}, false
	}
	return heldKey{root: root, path: path}, true
}

// scanExpr interprets one simple statement or expression in evaluation
// order: lock calls mutate the state, field selectors fire the access
// hook, nested function literals are interpreted under a state
// snapshot.
func (w *lockWalker) scanExpr(n ast.Node, st *lockState) {
	if n == nil {
		return
	}
	writes := make(map[ast.Node]bool)
	markWrites(n, writes)
	w.scanNode(n, st, writes)
}

func (w *lockWalker) scanNode(n ast.Node, st *lockState, writes map[ast.Node]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			w.walkNestedFunc(c, st)
			return false
		case *ast.CallExpr:
			if lockExpr, acquire, write, rw, ok := lockCall(w.info, c); ok {
				w.applyLockCall(lockExpr, acquire, write, rw, c.Pos(), st)
				return false
			}
			return true
		case *ast.SelectorExpr:
			if fld := fieldVarOf(w.info, c); fld != nil && w.hooks.access != nil {
				w.hooks.access(c, fld, writes[c], st)
			}
			return true
		}
		return true
	})
}

func (w *lockWalker) applyLockCall(lockExpr ast.Expr, acquire, write, rw bool, pos token.Pos, st *lockState) {
	key, keyOK := keyOf(w.info, lockExpr)
	if acquire {
		l := &heldLock{
			class: classOf(w.info, lockExpr), rw: rw, write: write,
			acquiredHere: true, pos: pos,
		}
		if keyOK {
			l.key = key
		}
		if w.hooks.acquire != nil {
			w.hooks.acquire(l, st.list())
		}
		if keyOK {
			st.held[key] = l
		}
		return
	}
	if keyOK {
		delete(st.held, key)
	}
}

// markWrites records the expressions a statement mutates: assignment
// targets (descending through index and deref), ++/-- operands,
// address-taken operands, and the container arguments of delete, append
// and copy.
func markWrites(n ast.Node, marks map[ast.Node]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range c.Lhs {
				markWriteTarget(lhs, marks)
			}
		case *ast.IncDecStmt:
			markWriteTarget(c.X, marks)
		case *ast.UnaryExpr:
			if c.Op == token.AND {
				markWriteTarget(c.X, marks)
			}
		case *ast.CallExpr:
			switch calleeName(c) {
			case "delete", "append", "copy":
				if len(c.Args) > 0 {
					markWriteTarget(c.Args[0], marks)
				}
			}
		}
		return true
	})
}

func markWriteTarget(e ast.Expr, marks map[ast.Node]bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		marks[e] = true
	case *ast.IndexExpr:
		markWriteTarget(e.X, marks)
	case *ast.StarExpr:
		markWriteTarget(e.X, marks)
	case *ast.SliceExpr:
		markWriteTarget(e.X, marks)
	}
}
