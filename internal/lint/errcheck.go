package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckDurability enforces the durability error contract of
// internal/store and internal/fsio: the error results of Sync, Close,
// Rename, Remove, Truncate and rollback-style calls must not be discarded
// with a bare call, a defer, or `_ =`. A swallowed error on this path can
// acknowledge an operation whose bytes never became durable.
//
// One shape is exempt: cleanup immediately before returning an error
// (`f.Close(); return err`) — the operation already failed and the
// original error is the one the caller must see. Genuinely best-effort
// discards (e.g. removing a temp file whose rename already decided the
// outcome) must say so with //pqlint:allow errcheck-durability.
var ErrcheckDurability = &Analyzer{
	Name: "errcheck-durability",
	Doc:  "Sync/Close/Rename/Remove/Truncate/rollback errors in store and fsio must be handled",
	Run:  runErrcheckDurability,
}

var durabilityCalls = map[string]bool{
	"Sync":     true,
	"Close":    true,
	"Rename":   true,
	"Remove":   true,
	"Truncate": true,
}

func durabilityCall(name string) bool {
	return durabilityCalls[name] || strings.Contains(strings.ToLower(name), "rollback")
}

func runErrcheckDurability(p *Pass) {
	if !p.Pkg.Within("internal/store") && !p.Pkg.Within("internal/fsio") {
		return
	}
	info := p.Pkg.Info
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, list := range stmtLists(n) {
				for i, stmt := range list {
					call, deferred := discardedCall(stmt)
					if call == nil {
						continue
					}
					name := calleeName(call)
					if !durabilityCall(name) {
						continue
					}
					tv, ok := info.Types[call]
					if !ok || !types.Identical(tv.Type, errType) {
						continue
					}
					// Failure-path cleanup: a discard immediately followed
					// by `return <err>` in the same block is reporting the
					// error that caused it; the close is best-effort by
					// construction. Defers never qualify — they outlive
					// the statement order the exemption reasons about.
					if !deferred && i+1 < len(list) && returnsError(info, list[i+1], errType) {
						continue
					}
					p.ReportHintf(call.Pos(),
						"check the error (rolling back or poisoning the store if the disk state is now unknown); use //pqlint:allow errcheck-durability only for provably best-effort cleanup",
						"error from %s is discarded on the durability path", types.ExprString(call.Fun))
				}
			}
			return true
		})
	}
}

// discardedCall returns the call whose results stmt throws away: a bare
// call statement, a deferred call, or an assignment of every result to
// blank.
func discardedCall(stmt ast.Stmt) (call *ast.CallExpr, deferred bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c, _ := s.X.(*ast.CallExpr)
		return c, false
	case *ast.DeferStmt:
		return s.Call, true
	case *ast.GoStmt:
		return s.Call, true
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil, false
		}
		c, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		for _, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" {
				return nil, false
			}
		}
		return c, false
	}
	return nil, false
}

// returnsError reports whether stmt is a return carrying a non-nil
// error-typed value (an err variable, a wrapped fmt.Errorf, ...).
func returnsError(info *types.Info, stmt ast.Stmt, errType types.Type) bool {
	ret, ok := stmt.(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.ObjectOf(id) == types.Universe.Lookup("nil") {
			continue
		}
		tv, ok := info.Types[res]
		if ok && tv.Type != nil && types.AssignableTo(tv.Type, errType) {
			return true
		}
	}
	return false
}
