package lint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempModule writes a minimal module with the given files (name → source)
// and returns a loader rooted at it.
func tempModule(t *testing.T, files map[string]string) (*Loader, string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l, dir
}

// loadErr runs Load and requires a *LoadError back.
func loadErr(t *testing.T, l *Loader, pattern string) *LoadError {
	t.Helper()
	_, err := l.Load(pattern)
	if err == nil {
		t.Fatalf("Load(%q) succeeded, want error", pattern)
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("Load(%q) error is %T (%v), want *LoadError", pattern, err, err)
	}
	return le
}

// A syntax error must come back positioned at the offending file and
// line, not as an unlocated string.
func TestLoadSyntaxError(t *testing.T) {
	l, _ := tempModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc broken( {\n",
	})
	le := loadErr(t, l, "p")
	if !strings.HasSuffix(le.Pos.Filename, "p.go") || le.Pos.Line != 3 {
		t.Errorf("error position = %v, want p.go line 3", le.Pos)
	}
	if !strings.Contains(le.Msg, "syntax error") {
		t.Errorf("error message %q does not say syntax error", le.Msg)
	}
	if s := le.Error(); !strings.Contains(s, "p.go:3:") {
		t.Errorf("Error() = %q, want file:line rendering", s)
	}
}

// An unresolvable import is reported at the import declaration.
func TestLoadUnresolvableImport(t *testing.T) {
	l, _ := tempModule(t, map[string]string{
		"p/p.go": "package p\n\nimport _ \"no/such/dependency\"\n",
	})
	le := loadErr(t, l, "p")
	if !strings.HasSuffix(le.Pos.Filename, "p.go") || le.Pos.Line != 3 {
		t.Errorf("error position = %v, want p.go line 3", le.Pos)
	}
	if !strings.Contains(le.Msg, "no/such/dependency") {
		t.Errorf("error message %q does not name the import", le.Msg)
	}
}

// A module-internal import of a broken package surfaces the inner
// package's positioned error, not a generic failure on the importer.
func TestLoadBrokenInternalImport(t *testing.T) {
	l, _ := tempModule(t, map[string]string{
		"p/p.go": "package p\n\nimport _ \"fixturemod/q\"\n",
		"q/q.go": "package q\n\nvar x undefinedType\n",
	})
	le := loadErr(t, l, "p")
	if !strings.Contains(le.Msg, "fixturemod/q") && !strings.Contains(le.Msg, "undefinedType") {
		t.Errorf("error message %q does not point into package q", le.Msg)
	}
}

// Asking for a directory with no Go files is an explicit error naming
// the directory (no position exists to attach).
func TestLoadEmptyDir(t *testing.T) {
	l, dir := tempModule(t, map[string]string{
		"empty/README.txt": "not a Go file\n",
	})
	le := loadErr(t, l, "empty")
	if le.Pos.Line != 0 {
		t.Errorf("error position = %v, want none", le.Pos)
	}
	if !strings.Contains(le.Msg, "no Go files") || !strings.Contains(le.Msg, filepath.Join(dir, "empty")) {
		t.Errorf("error message %q does not name the empty directory", le.Msg)
	}
}

// Two package clauses in one directory are a load failure.
func TestLoadMixedPackages(t *testing.T) {
	l, _ := tempModule(t, map[string]string{
		"p/a.go": "package p\n",
		"p/b.go": "package q\n",
	})
	if _, err := l.Load("p"); err == nil || !strings.Contains(err.Error(), "mixed packages") {
		t.Errorf("Load(mixed) error = %v, want mixed-packages failure", err)
	}
}
