package ted

import (
	"math/rand"
	"testing"

	"pqgram/internal/edit"
	"pqgram/internal/gen"
	"pqgram/internal/tree"
)

func dist(t *testing.T, a, b string) int {
	t.Helper()
	return Distance(tree.MustParse(a), tree.MustParse(b))
}

func TestIdentical(t *testing.T) {
	for _, s := range []string{"a", "a(b c)", "a(b(c d) e(f))"} {
		if d := dist(t, s, s); d != 0 {
			t.Errorf("Distance(%s, %s) = %d, want 0", s, s, d)
		}
	}
}

func TestSingleOps(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a", "b", 1},                           // rename root
		{"a(b)", "a(c)", 1},                     // rename leaf
		{"a(b)", "a", 1},                        // delete leaf
		{"a", "a(b)", 1},                        // insert leaf
		{"a(b c)", "a(b x c)", 1},               // insert middle leaf
		{"a(b(c))", "a(c)", 1},                  // delete inner node
		{"a(b c)", "a(x(b c))", 1},              // insert inner node
		{"a(b c)", "a(c b)", 2},                 // swap = two renames
		{"a(b(c d))", "a(x(c y))", 2},           // two renames
		{"a(b c d)", "a", 3},                    // delete all leaves
		{"f(d(a c(b)) e)", "f(c(d(a b)) e)", 2}, // Zhang-Shasha's classic example
	}
	for _, c := range cases {
		if d := dist(t, c.a, c.b); d != c.want {
			t.Errorf("Distance(%s, %s) = %d, want %d", c.a, c.b, d, c.want)
		}
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		a := gen.RandomTree(rng, 1+rng.Intn(15))
		b := gen.RandomTree(rng, 1+rng.Intn(15))
		if d1, d2 := Distance(a, b), Distance(b, a); d1 != d2 {
			t.Fatalf("asymmetric: %d vs %d\n%s\n%s", d1, d2, a, b)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := gen.RandomTree(rng, 1+rng.Intn(12))
		b := gen.RandomTree(rng, 1+rng.Intn(12))
		c := gen.RandomTree(rng, 1+rng.Intn(12))
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d", ac, ab, bc)
		}
	}
}

// TestEditScriptUpperBound: applying k edit operations moves the tree at
// most k units of edit distance.
func TestEditScriptUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		a := gen.RandomTree(rng, 3+rng.Intn(12))
		b := a.Clone()
		k := 1 + rng.Intn(5)
		if _, _, err := gen.RandomScript(rng, b, k, gen.DefaultMix); err != nil {
			t.Fatal(err)
		}
		if d := Distance(a, b); d > k {
			t.Fatalf("distance %d exceeds script length %d", d, k)
		}
	}
}

// TestSizeDifferenceLowerBound: |size(a) - size(b)| is a lower bound.
func TestSizeDifferenceLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		a := gen.RandomTree(rng, 1+rng.Intn(15))
		b := gen.RandomTree(rng, 1+rng.Intn(15))
		lower := a.Size() - b.Size()
		if lower < 0 {
			lower = -lower
		}
		if d := Distance(a, b); d < lower {
			t.Fatalf("distance %d below size-difference bound %d", d, lower)
		}
	}
}

// TestBruteForceSmall compares against an exhaustive search over short
// scripts: if some script of length k transforms a into b, the distance is
// at most k; we verify the distance is reached by BFS over edit scripts on
// tiny trees.
func TestBruteForceSmall(t *testing.T) {
	start := tree.MustParse("a(b c)")
	targets := []string{"a(b c)", "a(b)", "a(x c)", "a(b c d)", "x(b c)", "a"}
	for _, tgt := range targets {
		want := bfsDistance(t, start, tree.MustParse(tgt), 3)
		if want < 0 {
			continue // farther than the BFS horizon
		}
		if d := Distance(start, tree.MustParse(tgt)); d != want {
			t.Errorf("Distance(a(b c), %s) = %d, want %d (BFS)", tgt, d, want)
		}
	}
}

// bfsDistance finds the true shortest edit script length up to maxDepth by
// breadth-first search over label-shapes, or -1 if unreachable.
func bfsDistance(t *testing.T, from, to *tree.Tree, maxDepth int) int {
	t.Helper()
	type state struct {
		tr    *tree.Tree
		depth int
	}
	target := to.Format()
	seen := map[string]bool{from.Format(): true}
	queue := []state{{from, 0}}
	labels := []string{"a", "b", "c", "d", "x"}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.tr.Format() == target {
			return cur.depth
		}
		if cur.depth == maxDepth {
			continue
		}
		var candidates []edit.Op
		nextID := cur.tr.MaxID() + 1
		for _, n := range cur.tr.Nodes() {
			if !n.IsRoot() {
				candidates = append(candidates, edit.Del(n.ID()))
			}
			for _, l := range labels {
				if n.Label() != l {
					candidates = append(candidates, edit.Ren(n.ID(), l))
				}
			}
			for k := 1; k <= n.Fanout()+1; k++ {
				for m := k - 1; m <= n.Fanout(); m++ {
					for _, l := range labels {
						candidates = append(candidates, edit.Ins(nextID, l, n.ID(), k, m))
					}
				}
			}
		}
		for _, op := range candidates {
			c := cur.tr.Clone()
			if _, err := op.Apply(c); err != nil {
				continue
			}
			key := c.Format()
			if !seen[key] {
				seen[key] = true
				queue = append(queue, state{c, cur.depth + 1})
			}
		}
	}
	return -1
}

// Renaming the root is allowed by TED even though the maintenance
// framework excludes it; check it costs 1.
func TestRootRename(t *testing.T) {
	if d := dist(t, "a(b c)", "z(b c)"); d != 1 {
		t.Errorf("root rename distance = %d, want 1", d)
	}
}
