// Package ted implements the tree edit distance of Zhang and Shasha (SIAM
// J. Comput. 1989), the reference measure that the pq-gram distance
// approximates (paper reference [20]). It is used to validate that the
// pq-gram distance tracks true edit distance and as a comparator in the
// examples; its cost is O(|T1|·|T2|·min(depth,leaves)²), so it is only
// practical for small trees — which is precisely the point of the pq-gram
// approximation.
package ted

import "pqgram/internal/tree"

// flat is the postorder-array form of a tree that the algorithm works on.
type flat struct {
	labels []string // labels[i] = label of the (i+1)-th node in postorder
	lml    []int    // lml[i] = postorder index (1-based) of the leftmost leaf
	// of the subtree rooted at node i+1
	keyroots []int // postorder indexes (1-based) of the LR-keyroots, ascending
}

func flatten(t *tree.Tree) flat {
	var f flat
	var walk func(n *tree.Node) int // returns leftmost-leaf index of n's subtree
	walk = func(n *tree.Node) int {
		lml := 0
		for i, c := range n.Children() {
			cl := walk(c)
			if i == 0 {
				lml = cl
			}
		}
		f.labels = append(f.labels, n.Label())
		if n.IsLeaf() {
			lml = len(f.labels)
		}
		f.lml = append(f.lml, lml)
		return lml
	}
	walk(t.Root())
	// A node is an LR-keyroot iff no proper ancestor shares its leftmost
	// leaf, i.e. it is the root or has a left sibling.
	seen := make(map[int]bool)
	for i := len(f.labels); i >= 1; i-- {
		if !seen[f.lml[i-1]] {
			f.keyroots = append(f.keyroots, i)
			seen[f.lml[i-1]] = true
		}
	}
	// Reverse into ascending order.
	for a, b := 0, len(f.keyroots)-1; a < b; a, b = a+1, b-1 {
		f.keyroots[a], f.keyroots[b] = f.keyroots[b], f.keyroots[a]
	}
	return f
}

// Distance returns the minimum number of node inserts, deletes and renames
// that transform a into b (unit costs).
func Distance(a, b *tree.Tree) int {
	fa, fb := flatten(a), flatten(b)
	n, m := len(fa.labels), len(fb.labels)
	td := make([][]int, n+1)
	for i := range td {
		td[i] = make([]int, m+1)
	}
	// Forest-distance scratch table, sized for the largest subproblem.
	fd := make([][]int, n+2)
	for i := range fd {
		fd[i] = make([]int, m+2)
	}
	for _, i := range fa.keyroots {
		for _, j := range fb.keyroots {
			treedist(fa, fb, i, j, td, fd)
		}
	}
	return td[n][m]
}

func treedist(fa, fb flat, i, j int, td, fd [][]int) {
	li, lj := fa.lml[i-1], fb.lml[j-1]
	// fd indexes are shifted: fd[x][y] is the distance between the forests
	// fa[li..x] and fb[lj..y]; x = li-1 / y = lj-1 denote empty forests.
	fd[li-1][lj-1] = 0
	for x := li; x <= i; x++ {
		fd[x][lj-1] = fd[x-1][lj-1] + 1 // delete
	}
	for y := lj; y <= j; y++ {
		fd[li-1][y] = fd[li-1][y-1] + 1 // insert
	}
	for x := li; x <= i; x++ {
		for y := lj; y <= j; y++ {
			if fa.lml[x-1] == li && fb.lml[y-1] == lj {
				// Both prefixes are whole trees: full edit choice.
				ren := 0
				if fa.labels[x-1] != fb.labels[y-1] {
					ren = 1
				}
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[x-1][y-1]+ren,
				)
				td[x][y] = fd[x][y]
			} else {
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[fa.lml[x-1]-1][fb.lml[y-1]-1]+td[x][y],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
