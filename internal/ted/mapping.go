package ted

import "pqgram/internal/tree"

// MatchedPair is one element of an edit mapping: node A of the first tree
// corresponds to node B of the second (same node kept, possibly renamed).
type MatchedPair struct {
	A, B tree.NodeID
}

// Mapping computes a minimum-cost edit mapping between a and b: a set of
// node pairs, preserving ancestorship and sibling order, such that
//
//	cost = renames(pairs) + (|a| − |pairs|) + (|b| − |pairs|)
//
// is the tree edit distance. It returns the pairs (in no particular order)
// and the cost, which always equals Distance(a, b).
func Mapping(a, b *tree.Tree) ([]MatchedPair, int) {
	fa, fb := flattenWithIDs(a), flattenWithIDs(b)
	n, m := len(fa.labels), len(fb.labels)
	td := make([][]int, n+1)
	for i := range td {
		td[i] = make([]int, m+1)
	}
	fd := make([][]int, n+2)
	for i := range fd {
		fd[i] = make([]int, m+2)
	}
	for _, i := range fa.keyroots {
		for _, j := range fb.keyroots {
			treedist(fa.flat, fb.flat, i, j, td, fd)
		}
	}

	var pairs []MatchedPair
	var backtrace func(i, j int)
	backtrace = func(i, j int) {
		// Rebuild the forest-distance table of the (i, j) subproblem, then
		// walk it backwards.
		treedist(fa.flat, fb.flat, i, j, td, fd)
		li, lj := fa.lml[i-1], fb.lml[j-1]
		x, y := i, j
		for x >= li || y >= lj {
			switch {
			case x >= li && fd[x][y] == fd[x-1][y]+1:
				x-- // node x deleted
			case y >= lj && fd[x][y] == fd[x][y-1]+1:
				y-- // node y inserted
			default:
				if fa.lml[x-1] == li && fb.lml[y-1] == lj {
					// Both prefixes are whole trees: x pairs with y.
					pairs = append(pairs, MatchedPair{A: fa.ids[x-1], B: fb.ids[y-1]})
					x--
					y--
				} else {
					// Descend into the subtree pair, then skip past it.
					lx, ly := fa.lml[x-1], fb.lml[y-1]
					backtrace(x, y)
					// The recursion clobbered fd; rebuild this subproblem.
					treedist(fa.flat, fb.flat, i, j, td, fd)
					x, y = lx-1, ly-1
				}
			}
		}
	}
	backtrace(n, m)

	cost := td[n][m]
	return pairs, cost
}

type flatIDs struct {
	flat
	ids []tree.NodeID // ids[i] = NodeID of the (i+1)-th node in postorder
}

func flattenWithIDs(t *tree.Tree) flatIDs {
	f := flatIDs{flat: flatten(t)}
	f.ids = make([]tree.NodeID, 0, len(f.labels))
	t.PostOrder(func(n *tree.Node) bool {
		f.ids = append(f.ids, n.ID())
		return true
	})
	return f
}
