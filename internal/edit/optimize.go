package edit

import "pqgram/internal/tree"

// Log preprocessing. The paper's §10 proposes eliminating redundant edit
// operations from the log before the index update ("Later edit operations
// in the log might undo earlier ones. In future we will investigate how
// the log can be preprocessed..."). OptimizeLog implements two such
// rewrites. Both produce a log that is again a valid sequence of inverse
// operations from Tn with the same endpoint T0, so the correctness of the
// incremental maintenance carries over unchanged — the update just
// processes fewer operations.
//
// Rule 1 — rename collapsing. All renames of one node collapse into at
// most one: the rewind only ever needs to restore the node's original
// label (the label carried by the node's earliest log entry). If the node
// was inserted by the forward script (the log deletes it), its renames are
// dropped entirely — the rewind removes the node anyway. If the original
// label equals the node's label on Tn (a rename chain that returned to its
// start), all renames for the node disappear.
//
// Rule 2 — insert/delete annihilation. A node that the forward script
// leaf-inserted and immediately deleted again (adjacent log entries
// DEL(x), INS(x, v, k, k-1)) never affected any other node; the pair is
// dropped.

// OptimizeLog returns an equivalent, possibly shorter log. tn is the
// resulting tree the log belongs to (needed to resolve current labels);
// it is not modified. The input log is not modified either.
func OptimizeLog(tn *tree.Tree, log Log) Log {
	keep := make([]bool, len(log))
	for i := range keep {
		keep[i] = true
	}
	replace := make(map[int]Op)

	// Gather per-node facts.
	deleted := make(map[tree.NodeID]bool)    // node has a DEL entry (forward insert)
	inserted := make(map[tree.NodeID]string) // node's INS entry label (forward delete)
	renPositions := make(map[tree.NodeID][]int)
	for i, op := range log {
		switch op.Kind {
		case Delete:
			deleted[op.Node] = true
		case Insert:
			inserted[op.Node] = op.Label
		case Rename:
			renPositions[op.Node] = append(renPositions[op.Node], i)
		}
	}

	// Rule 1: collapse rename chains.
	for n, positions := range renPositions {
		if deleted[n] {
			// The rewind removes n; its renames have no effect on T0.
			for _, i := range positions {
				keep[i] = false
			}
			continue
		}
		target := log[positions[0]].Label // the original (T0) label
		// The label the node carries when the first (in rewind order, the
		// last remaining) rename applies: the label on Tn, or — if the
		// forward script deleted the node — the label its log INS restores.
		var current string
		if lbl, ok := inserted[n]; ok {
			current = lbl
		} else if node := tn.Node(n); node != nil {
			current = node.Label()
		} else {
			continue // node unknown; leave the entries alone
		}
		for _, i := range positions[1:] {
			keep[i] = false
		}
		if current == target {
			keep[positions[0]] = false // chain returned to the start
		} else {
			replace[positions[0]] = Ren(n, target)
		}
	}

	// Rule 2: annihilate adjacent leaf insert/delete pairs.
	for i := 0; i+1 < len(log); i++ {
		if !keep[i] || !keep[i+1] {
			continue
		}
		a, b := log[i], log[i+1]
		if a.Kind == Delete && b.Kind == Insert && a.Node == b.Node && b.M == b.K-1 {
			keep[i] = false
			keep[i+1] = false
		}
	}

	out := make(Log, 0, len(log))
	for i, op := range log {
		if !keep[i] {
			continue
		}
		if r, ok := replace[i]; ok {
			op = r
		}
		out = append(out, op)
	}
	return out
}
