package edit

import (
	"fmt"

	"pqgram/internal/tree"
)

// Subtree operations. The paper's §10 notes that operations on whole
// subtrees — deletion, insertion, move — are simulated by sequences of
// node edit operations, and names native support as future work. This file
// implements the simulation: each subtree operation compiles into a
// minimal node-operation script whose application (and whose inverse log)
// composes with everything else in the package, including incremental
// index maintenance.

// SubtreeDelete compiles the removal of the entire subtree rooted at n
// into a node-operation script: the subtree's nodes are deleted bottom-up
// (children before parents), so every DEL removes a leaf-at-that-moment
// and no node is ever spliced upward out of the subtree.
func SubtreeDelete(t *tree.Tree, n tree.NodeID) (Script, error) {
	root := t.Node(n)
	if root == nil {
		return nil, fmt.Errorf("edit: subtree root %d not in tree", n)
	}
	if root.IsRoot() {
		return nil, fmt.Errorf("edit: cannot delete the subtree of the tree root")
	}
	var script Script
	var walk func(x *tree.Node)
	walk = func(x *tree.Node) {
		for _, c := range x.Children() {
			walk(c)
		}
		script = append(script, Del(x.ID()))
	}
	walk(root)
	return script, nil
}

// SubtreeInsert compiles the insertion of a whole subtree (given as a
// separate tree) as the k-th child of node v into a node-operation script.
// Node IDs for the new nodes are allocated sequentially from firstID,
// which must be fresh for the target tree (see CheckFreshIDs); the
// function returns the script and the ID assigned to the subtree's root.
// The subtree's internal node ids are not reused.
//
// The compilation inserts nodes top-down, each as a leaf at its final
// position, so every INS is a plain leaf insert.
func SubtreeInsert(sub *tree.Tree, v tree.NodeID, k int, firstID tree.NodeID) (Script, tree.NodeID, error) {
	if firstID <= 0 {
		return nil, 0, fmt.Errorf("edit: firstID must be positive")
	}
	var script Script
	next := firstID
	var walk func(x *tree.Node, parent tree.NodeID, pos int)
	walk = func(x *tree.Node, parent tree.NodeID, pos int) {
		id := next
		next++
		script = append(script, Ins(id, x.Label(), parent, pos, pos-1))
		for i, c := range x.Children() {
			walk(c, id, i+1)
		}
	}
	walk(sub.Root(), v, k)
	return script, firstID, nil
}

// SubtreeMove compiles moving the subtree rooted at n to become the k-th
// child of node v into a node-operation script: the subtree is deleted
// bottom-up and re-inserted top-down with fresh node IDs starting at
// firstID (incremental index maintenance requires fresh identities; the
// moved nodes get new ones). It returns the script and the new ID of the
// moved subtree's root.
//
// v must not be inside the moved subtree. The position k refers to v's
// child list after the subtree has been removed.
func SubtreeMove(t *tree.Tree, n, v tree.NodeID, k int, firstID tree.NodeID) (Script, tree.NodeID, error) {
	root := t.Node(n)
	if root == nil {
		return nil, 0, fmt.Errorf("edit: subtree root %d not in tree", n)
	}
	target := t.Node(v)
	if target == nil {
		return nil, 0, fmt.Errorf("edit: move target %d not in tree", v)
	}
	if target == root || root.IsAncestorOf(target) {
		return nil, 0, fmt.Errorf("edit: move target %d is inside the moved subtree", v)
	}
	del, err := SubtreeDelete(t, n)
	if err != nil {
		return nil, 0, err
	}
	// Snapshot the subtree shape before it is deleted.
	snapshot := snapshotSubtree(root)
	ins, newRoot, err := SubtreeInsert(snapshot, v, k, firstID)
	if err != nil {
		return nil, 0, err
	}
	return append(del, ins...), newRoot, nil
}

// snapshotSubtree copies the subtree rooted at n into a fresh tree
// (labels and order only; IDs are renumbered).
func snapshotSubtree(n *tree.Node) *tree.Tree {
	t := tree.New(n.Label())
	var walk func(src *tree.Node, dst *tree.Node)
	walk = func(src *tree.Node, dst *tree.Node) {
		for _, c := range src.Children() {
			walk(c, t.AddChild(dst, c.Label()))
		}
	}
	walk(n, t.Root())
	return t
}
