// Package edit implements the standard tree edit operations of Zhang and
// Shasha as used by Augsten, Böhlen and Gamper (VLDB 2006), §3.1:
//
//	INS(n, v, k, m) — insert node n as the k-th child of v, substituting
//	    v's children c_k..c_m with n and re-attaching them as n's children.
//	DEL(n)          — delete n, splicing its children into its position.
//	REN(n, l')      — change the label of n to l'.
//
// Every operation has an inverse; applying a sequence of operations yields
// the log of inverse operations that the incremental index maintenance of
// package core consumes.
package edit

import (
	"fmt"
	"strconv"

	"pqgram/internal/tree"
)

// Kind distinguishes the three edit operations.
type Kind uint8

const (
	// Insert is INS(n, v, k, m).
	Insert Kind = iota + 1
	// Delete is DEL(n).
	Delete
	// Rename is REN(n, l').
	Rename
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "INS"
	case Delete:
		return "DEL"
	case Rename:
		return "REN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is a single tree edit operation.
type Op struct {
	Kind Kind
	// Node is the operated node: the inserted node for Insert, the deleted
	// node for Delete, the renamed node for Rename.
	Node tree.NodeID
	// Label is the label of the inserted node (Insert) or the new label
	// (Rename). Unused for Delete.
	Label string
	// Parent is v, the parent under which Node is inserted. Insert only.
	Parent tree.NodeID
	// K and M delimit the children c_K..c_M of Parent that the inserted
	// node adopts. M = K-1 denotes a leaf insert. Insert only.
	K, M int
	// Adopted records the identities of the children c_K..c_M at the time
	// the operation was constructed. It is filled in by Apply when building
	// the inverse of a Delete and is carried in logs: the incremental index
	// maintenance needs the identities (not just the positions) to locate
	// an operation's region on the resulting tree Tn after later operations
	// have shifted sibling positions. Optional for forward scripts.
	Adopted []tree.NodeID
	// NbrLeft and NbrRight record the identities of the siblings bordering
	// the splice region (the children of Parent at positions K-1 and M+1 at
	// construction time; NilID if the region touches the child-list
	// boundary). Like Adopted they are filled in for inverse inserts and
	// anchor the operation's context windows on Tn when sibling positions
	// shifted — essential for inverse leaf inserts, whose Adopted list is
	// empty. Optional for forward scripts.
	NbrLeft, NbrRight tree.NodeID
}

// Ins constructs an INS(n, v, k, m) operation.
func Ins(n tree.NodeID, label string, v tree.NodeID, k, m int) Op {
	return Op{Kind: Insert, Node: n, Label: label, Parent: v, K: k, M: m}
}

// Del constructs a DEL(n) operation.
func Del(n tree.NodeID) Op { return Op{Kind: Delete, Node: n} }

// Ren constructs a REN(n, l') operation.
func Ren(n tree.NodeID, label string) Op { return Op{Kind: Rename, Node: n, Label: label} }

// String renders the operation in the log text format, e.g.
// `INS 7 g 6 1 0`, `DEL 3`, `REN 5 s`.
func (op Op) String() string {
	switch op.Kind {
	case Insert:
		s := fmt.Sprintf("INS %d %s %d %d %d", op.Node, quote(op.Label), op.Parent, op.K, op.M)
		if op.NbrLeft != 0 {
			s += fmt.Sprintf(" L=%d", op.NbrLeft)
		}
		if op.NbrRight != 0 {
			s += fmt.Sprintf(" R=%d", op.NbrRight)
		}
		for _, c := range op.Adopted {
			s += fmt.Sprintf(" %d", c)
		}
		return s
	case Delete:
		return fmt.Sprintf("DEL %d", op.Node)
	case Rename:
		return fmt.Sprintf("REN %d %s", op.Node, quote(op.Label))
	}
	return fmt.Sprintf("?%d", op.Kind)
}

func quote(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '"':
			return strconv.Quote(s)
		}
	}
	return s
}

// Check reports whether op is applicable to t, i.e. whether a tree T_i with
// T_j = op(T_i) ... more precisely whether op(t) is defined (Definition 4 of
// the paper needs this to decide whether the delta function is empty). It
// returns nil if applicable, otherwise a descriptive error.
//
// The paper assumes the root node is never changed: deleting or renaming the
// root is not applicable.
func (op Op) Check(t *tree.Tree) error {
	switch op.Kind {
	case Insert:
		v := t.Node(op.Parent)
		if v == nil {
			return fmt.Errorf("edit: INS parent %d not in tree", op.Parent)
		}
		if op.Node <= 0 {
			return fmt.Errorf("edit: INS node ID %d must be positive", op.Node)
		}
		if t.Contains(op.Node) {
			return fmt.Errorf("edit: INS node %d already in tree", op.Node)
		}
		if op.K < 1 || op.M < op.K-1 || op.M > v.Fanout() {
			return fmt.Errorf("edit: INS positions k=%d m=%d invalid for fanout %d of node %d",
				op.K, op.M, v.Fanout(), op.Parent)
		}
		return nil
	case Delete:
		n := t.Node(op.Node)
		if n == nil {
			return fmt.Errorf("edit: DEL node %d not in tree", op.Node)
		}
		if n.IsRoot() {
			return fmt.Errorf("edit: DEL of root node %d not allowed", op.Node)
		}
		return nil
	case Rename:
		n := t.Node(op.Node)
		if n == nil {
			return fmt.Errorf("edit: REN node %d not in tree", op.Node)
		}
		if n.IsRoot() {
			return fmt.Errorf("edit: REN of root node %d not allowed", op.Node)
		}
		if n.Label() == op.Label {
			return fmt.Errorf("edit: REN node %d already labeled %q", op.Node, op.Label)
		}
		return nil
	}
	return fmt.Errorf("edit: unknown operation kind %d", op.Kind)
}

// Applicable reports whether op can be applied to t.
func (op Op) Applicable(t *tree.Tree) bool { return op.Check(t) == nil }

// Apply applies op to t in place and returns the inverse operation ē such
// that ē(op(t)) = t. It returns an error (leaving t unchanged) if op is not
// applicable.
func (op Op) Apply(t *tree.Tree) (inverse Op, err error) {
	if err := op.Check(t); err != nil {
		return Op{}, err
	}
	switch op.Kind {
	case Insert:
		v := t.Node(op.Parent)
		t.Insert(op.Node, op.Label, v, op.K, op.M)
		return Del(op.Node), nil
	case Delete:
		n := t.Node(op.Node)
		v := n.Parent()
		k := n.SiblingPos()
		f := n.Fanout()
		label := n.Label()
		adopted := make([]tree.NodeID, f)
		for i, c := range n.Children() {
			adopted[i] = c.ID()
		}
		inv := Ins(op.Node, label, v.ID(), k, k+f-1)
		inv.Adopted = adopted
		if k > 1 {
			inv.NbrLeft = v.Child(k - 1).ID()
		}
		if k < v.Fanout() {
			inv.NbrRight = v.Child(k + 1).ID()
		}
		t.Delete(n)
		return inv, nil
	case Rename:
		n := t.Node(op.Node)
		old := n.Label()
		t.Rename(n, op.Label)
		return Ren(op.Node, old), nil
	}
	return Op{}, fmt.Errorf("edit: unknown operation kind %d", op.Kind)
}

// Script is a sequence of edit operations (e_1, ..., e_n), applied in order.
type Script []Op

// Log is the sequence of inverse edit operations (ē_1, ..., ē_n): entry i
// undoes e_i. Applying ē_n, ..., ē_1 in that (reverse) order transforms T_n
// back to T_0.
type Log []Op

// Apply applies the script to t in place and returns the log of inverse
// operations. If an operation fails, t is left in the state produced by the
// preceding operations and the partial log is returned with the error.
func (s Script) Apply(t *tree.Tree) (Log, error) {
	log := make(Log, 0, len(s))
	for i, op := range s {
		inv, err := op.Apply(t)
		if err != nil {
			return log, fmt.Errorf("edit: op %d (%s): %w", i+1, op, err)
		}
		log = append(log, inv)
	}
	return log, nil
}

// Undo applies the inverse operations ē_n, ..., ē_1 to t in place,
// transforming T_n back to T_0.
func (l Log) Undo(t *tree.Tree) error {
	for i := len(l) - 1; i >= 0; i-- {
		if _, err := l[i].Apply(t); err != nil {
			return fmt.Errorf("edit: log entry %d (%s): %w", i+1, l[i], err)
		}
	}
	return nil
}

// Equal reports whether two operations are identical, including the
// adopted-children identities of inverse inserts.
func (op Op) Equal(other Op) bool {
	if op.Kind != other.Kind || op.Node != other.Node || op.Label != other.Label ||
		op.Parent != other.Parent || op.K != other.K || op.M != other.M ||
		op.NbrLeft != other.NbrLeft || op.NbrRight != other.NbrRight ||
		len(op.Adopted) != len(other.Adopted) {
		return false
	}
	for i := range op.Adopted {
		if op.Adopted[i] != other.Adopted[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the log.
func (l Log) Clone() Log {
	out := make(Log, len(l))
	copy(out, l)
	return out
}
