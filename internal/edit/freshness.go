package edit

import (
	"fmt"

	"pqgram/internal/tree"
)

// CheckFreshIDs verifies that a script uses fresh node identities: every
// inserted node ID must never have occurred before — neither in the initial
// tree t0 nor as an earlier insert, even if the node was deleted in between.
//
// The incremental index maintenance of package core inherits this
// requirement from the paper: Lemma 3 (and with it Theorems 1 and 2)
// implicitly assumes node identities are stable across the edit sequence.
// Re-inserting a deleted identity makes the inverse of the earlier delete
// inapplicable on Tn, its delta collapses to the empty set (Definition 4),
// and the rewind chain is left without pq-grams it needs. Real change feeds
// assign new identities on insert, so the restriction is natural — but a
// violating log would otherwise fail late (or worse); this check fails it
// early with a precise reason.
//
// The script is not applied; only ID bookkeeping is simulated, so t0 may be
// the tree before or a clone.
// VerifyLog checks that a log is a valid sequence of inverse operations
// for the tree tn: applied in reverse order to a clone, every operation is
// applicable. It returns the reconstructed original tree T0 on success.
// Use it to vet logs from untrusted feeds before UpdateIndex; it costs a
// tree copy plus the replay, which index maintenance itself avoids.
func VerifyLog(tn *tree.Tree, log Log) (*tree.Tree, error) {
	t0 := tn.Clone()
	if err := log.Undo(t0); err != nil {
		return nil, err
	}
	return t0, nil
}

func CheckFreshIDs(t0 *tree.Tree, s Script) error {
	used := make(map[tree.NodeID]bool, t0.Size()+len(s))
	for _, id := range t0.IDs() {
		used[id] = true
	}
	for i, op := range s {
		if op.Kind != Insert {
			continue
		}
		if used[op.Node] {
			return fmt.Errorf("edit: op %d (%s) re-inserts node ID %d, which was already used", i+1, op, op.Node)
		}
		used[op.Node] = true
	}
	return nil
}
