package edit

import (
	"strings"
	"testing"
)

// FuzzParseOp checks that the log line parser never panics and that
// accepted operations round-trip through String.
func FuzzParseOp(f *testing.F) {
	seeds := []string{
		"DEL 3", "REN 5 s", "INS 7 g 6 1 0", "INS 3 b 1 2 3 L=2 R=6 4 5",
		`REN 5 "two words"`, "INS", "DEL x y", "XXX 1 2", `REN 1 "unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		op, err := ParseOp(line)
		if err != nil {
			return
		}
		re, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("String output %q does not reparse: %v", op.String(), err)
		}
		if !re.Equal(op) {
			t.Fatalf("round trip changed op: %v -> %v", op, re)
		}
	})
}

// FuzzReadLog checks the multi-line log reader on arbitrary inputs.
func FuzzReadLog(f *testing.F) {
	f.Add("DEL 3\nREN 5 s\n")
	f.Add("# comment\n\nINS 7 g 6 1 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		ops, err := ReadLog(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, op := range ops {
			if _, err := ParseOp(op.String()); err != nil {
				t.Fatalf("accepted op %v does not round-trip: %v", op, err)
			}
		}
	})
}
