package edit

import (
	"math/rand"
	"testing"

	"pqgram/internal/tree"
)

// applyAll applies a forward script and returns the log.
func applyAll(t *testing.T, tr *tree.Tree, ops ...Op) Log {
	t.Helper()
	log, err := Script(ops).Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// checkEquivalent verifies that the optimized log reaches the same T0.
func checkEquivalent(t *testing.T, tn *tree.Tree, orig, opt Log) {
	t.Helper()
	a := tn.Clone()
	if err := orig.Undo(a); err != nil {
		t.Fatalf("original log invalid: %v", err)
	}
	b := tn.Clone()
	if err := opt.Undo(b); err != nil {
		t.Fatalf("optimized log invalid: %v", err)
	}
	if !tree.Equal(a, b) {
		t.Fatalf("optimized log reaches a different T0:\n%s\nvs\n%s", a, b)
	}
}

func TestOptimizeRenameChainCollapses(t *testing.T) {
	tr := tree.MustParse("a(b c)")
	log := applyAll(t, tr, Ren(2, "x"), Ren(2, "y"), Ren(2, "z"))
	opt := OptimizeLog(tr, log)
	if len(opt) != 1 {
		t.Fatalf("optimized length %d, want 1 (%v)", len(opt), opt)
	}
	if opt[0].Kind != Rename || opt[0].Label != "b" {
		t.Fatalf("merged rename = %v, want REN 2 b", opt[0])
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeRenameBackToStart(t *testing.T) {
	tr := tree.MustParse("a(b c)")
	log := applyAll(t, tr, Ren(2, "x"), Ren(2, "b"))
	opt := OptimizeLog(tr, log)
	if len(opt) != 0 {
		t.Fatalf("optimized length %d, want 0 (%v)", len(opt), opt)
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeRenameOfInsertedNodeDropped(t *testing.T) {
	tr := tree.MustParse("a(b)")
	log := applyAll(t, tr, Ins(50, "n", 1, 1, 0), Ren(50, "m"), Ren(50, "o"))
	opt := OptimizeLog(tr, log)
	if len(opt) != 1 || opt[0].Kind != Delete {
		t.Fatalf("optimized = %v, want only DEL 50", opt)
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeInsertDeletePairDropped(t *testing.T) {
	tr := tree.MustParse("a(b c)")
	log := applyAll(t, tr, Ins(50, "n", 1, 2, 1), Del(50))
	opt := OptimizeLog(tr, log)
	if len(opt) != 0 {
		t.Fatalf("optimized = %v, want empty", opt)
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeAdoptingInsertDeleteKept(t *testing.T) {
	// The node adopted children; the pair is not a no-op for its log
	// (the inverse INS has m > k-1), so it must be kept.
	tr := tree.MustParse("a(b c)")
	log := applyAll(t, tr, Ins(50, "n", 1, 1, 2), Del(50))
	opt := OptimizeLog(tr, log)
	if len(opt) != 2 {
		t.Fatalf("optimized = %v, want both entries kept", opt)
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeSeparatedPairKept(t *testing.T) {
	// An operation between the insert and the delete: conservative rule
	// keeps the pair.
	tr := tree.MustParse("a(b c)")
	log := applyAll(t, tr, Ins(50, "n", 1, 2, 1), Ren(2, "x"), Del(50))
	opt := OptimizeLog(tr, log)
	if len(opt) != 3 {
		t.Fatalf("optimized = %v, want all three kept", opt)
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeRenameOfDeletedNode(t *testing.T) {
	// Rename then delete: the rename must survive (restoring the label is
	// needed after the rewind re-inserts the node), merged to the original.
	tr := tree.MustParse("a(b(x) c)")
	log := applyAll(t, tr, Ren(2, "q"), Ren(2, "r"), Del(2))
	opt := OptimizeLog(tr, log)
	if len(opt) != 2 {
		t.Fatalf("optimized = %v, want merged REN + INS", opt)
	}
	if opt[0].Kind != Rename || opt[0].Label != "b" {
		t.Fatalf("first entry = %v, want REN 2 b", opt[0])
	}
	checkEquivalent(t, tr, log, opt)
}

func TestOptimizeMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		tr := randomSubtreeTestTree(rng, 3+rng.Intn(25))
		orig := tr.Clone()
		nextID := tr.MaxID() + 100

		// Random ops with deliberately injected redundancy.
		var script Script
		for i := 0; i < 2+rng.Intn(15); i++ {
			nodes := tr.Nodes()
			n := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(4) {
			case 0: // rename chain
				if n.IsRoot() {
					continue
				}
				script = append(script, Ren(n.ID(), "r1-"+n.Label()), Ren(n.ID(), "r2-"+n.Label()))
			case 1: // insert+delete churn
				nextID++
				script = append(script, Ins(nextID, "tmp", n.ID(), 1, 0), Del(nextID))
			case 2:
				if n.IsRoot() {
					continue
				}
				script = append(script, Del(n.ID()))
			default:
				nextID++
				k := 1
				if n.Fanout() > 0 {
					k = rng.Intn(n.Fanout()) + 1
				}
				script = append(script, Ins(nextID, "ins", n.ID(), k, k-1))
			}
		}
		var log Log
		ok := true
		for _, op := range script {
			inv, err := op.Apply(tr)
			if err != nil {
				ok = false
				break
			}
			log = append(log, inv)
		}
		if !ok {
			continue
		}
		opt := OptimizeLog(tr, log)
		if len(opt) > len(log) {
			t.Fatal("optimizer grew the log")
		}
		checkEquivalent(t, tr, log, opt)
		_ = orig
	}
}

func TestOptimizeEmptyAndUntouched(t *testing.T) {
	tr := tree.MustParse("a(b)")
	if got := OptimizeLog(tr, nil); len(got) != 0 {
		t.Fatal("empty log not empty")
	}
	log := applyAll(t, tr, Del(2))
	opt := OptimizeLog(tr, log)
	if len(opt) != 1 || !opt[0].Equal(log[0]) {
		t.Fatalf("irreducible log changed: %v vs %v", opt, log)
	}
	// Input must not be modified.
	if len(log) != 1 {
		t.Fatal("input log mutated")
	}
}
