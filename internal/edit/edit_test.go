package edit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pqgram/internal/tree"
)

func sample() *tree.Tree { return tree.MustParse("a(c b(e f) c)") }

func TestInsertApply(t *testing.T) {
	tr := sample()
	// Insert node with fresh ID 7 labeled g under node 4 (=e? preorder ids:
	// 1:a 2:c 3:b 4:e 5:f 6:c). Insert under b (id 3) adopting e,f.
	op := Ins(10, "n", 3, 1, 2)
	inv, err := op.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(c b(n(e f)) c)" {
		t.Fatalf("tree = %q", got)
	}
	if !inv.Equal(Del(10)) {
		t.Fatalf("inverse = %v, want DEL 10", inv)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteApply(t *testing.T) {
	tr := sample()
	op := Del(3) // delete b, splicing e,f under root
	inv, err := op.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(c e f c)" {
		t.Fatalf("tree = %q", got)
	}
	want := Ins(3, "b", 1, 2, 3)
	want.Adopted = []tree.NodeID{4, 5} // e, f move back under b
	want.NbrLeft, want.NbrRight = 2, 6 // c on either side of the region
	if !inv.Equal(want) {
		t.Fatalf("inverse = %v, want %v", inv, want)
	}
}

func TestDeleteLeafInverseIsLeafInsert(t *testing.T) {
	tr := sample()
	inv, err := Del(4).Apply(tr) // delete leaf e (k=1 under b, fanout 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Ins(4, "e", 3, 1, 0) // m = k-1: leaf insert
	want.Adopted = []tree.NodeID{}
	want.NbrRight = 5 // f follows the gap; nothing precedes it
	if !inv.Equal(want) {
		t.Fatalf("inverse = %v, want %v", inv, want)
	}
}

func TestRenameApply(t *testing.T) {
	tr := sample()
	inv, err := Ren(3, "z").Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(c z(e f) c)" {
		t.Fatalf("tree = %q", got)
	}
	if !inv.Equal(Ren(3, "b")) {
		t.Fatalf("inverse = %v", inv)
	}
}

func TestCheckRejections(t *testing.T) {
	tr := sample()
	cases := []struct {
		name string
		op   Op
	}{
		{"ins parent missing", Ins(10, "x", 99, 1, 0)},
		{"ins id exists", Ins(3, "x", 1, 1, 0)},
		{"ins id non-positive", Ins(0, "x", 1, 1, 0)},
		{"ins k too small", Ins(10, "x", 1, 0, 0)},
		{"ins m too large", Ins(10, "x", 1, 1, 4)},
		{"ins m below k-1", Ins(10, "x", 1, 3, 1)},
		{"del missing", Del(99)},
		{"del root", Del(1)},
		{"ren missing", Ren(99, "x")},
		{"ren root", Ren(1, "x")},
		{"ren same label", Ren(3, "b")},
		{"unknown kind", Op{Kind: 0}},
	}
	for _, c := range cases {
		if c.op.Check(tr) == nil {
			t.Errorf("%s: Check succeeded, want error", c.name)
		}
		if c.op.Applicable(tr) {
			t.Errorf("%s: Applicable true", c.name)
		}
		if _, err := c.op.Apply(tr); err == nil {
			t.Errorf("%s: Apply succeeded", c.name)
		}
	}
	// Tree must be unchanged after failed applies.
	if got := tr.Format(); got != "a(c b(e f) c)" {
		t.Fatalf("tree mutated by failed ops: %q", got)
	}
}

func TestApplyInverseRoundTrip(t *testing.T) {
	ops := []Op{
		Ins(10, "n", 3, 1, 2),
		Ins(11, "m", 1, 2, 1), // leaf insert at position 2
		Del(3),
		Del(4),
		Ren(3, "zz"),
	}
	for _, op := range ops {
		tr := sample()
		before := tr.Format()
		inv, err := op.Apply(tr)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if _, err := inv.Apply(tr); err != nil {
			t.Fatalf("inverse of %v: %v", op, err)
		}
		if got := tr.Format(); got != before {
			t.Fatalf("%v round trip: %q != %q", op, got, before)
		}
	}
}

func TestScriptApplyAndUndo(t *testing.T) {
	tr := sample()
	orig := tr.Clone()
	s := Script{
		Ins(10, "x", 1, 1, 2),
		Ren(10, "y"),
		Del(2),
		Ins(11, "z", 10, 1, 0),
	}
	log, err := s.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(s) {
		t.Fatalf("log length %d, want %d", len(log), len(s))
	}
	if err := log.Undo(tr); err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(tr, orig) {
		t.Fatalf("undo did not restore tree:\n%s\nwant\n%s", tr, orig)
	}
}

func TestScriptApplyPartialFailure(t *testing.T) {
	tr := sample()
	s := Script{Ren(3, "x"), Del(999), Ren(3, "y")}
	log, err := s.Apply(tr)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(log) != 1 {
		t.Fatalf("partial log length %d, want 1", len(log))
	}
	// The first op was applied.
	if tr.Node(3).Label() != "x" {
		t.Fatal("first op not applied")
	}
}

func TestOpString(t *testing.T) {
	cases := map[string]Op{
		"INS 7 g 6 1 0":     Ins(7, "g", 6, 1, 0),
		"DEL 3":             Del(3),
		"REN 5 s":           Ren(5, "s"),
		`REN 5 "two words"`: Ren(5, "two words"),
		`INS 7 "" 6 1 0`:    Ins(7, "", 6, 1, 0),
		`REN 5 "a\"b"`:      Ren(5, `a"b`),
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestLogCodecRoundTrip(t *testing.T) {
	ops := []Op{
		Ins(7, "g", 6, 1, 0),
		Del(3),
		Ren(5, "s"),
		Ren(5, "two words"),
		Ins(9, `quote"inside`, 1, 2, 4),
		Ins(8, "", 1, 1, 0),
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !got[i].Equal(ops[i]) {
			t.Errorf("op %d: %v != %v", i, got[i], ops[i])
		}
	}
}

func TestReadLogSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nDEL 3\n  \n# trailer\nREN 5 s\n"
	ops, err := ReadLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || !ops[0].Equal(Del(3)) || !ops[1].Equal(Ren(5, "s")) {
		t.Fatalf("ops = %v", ops)
	}
}

func TestParseOpErrors(t *testing.T) {
	bad := []string{
		"",
		"XYZ 1",
		"DEL",
		"DEL x",
		"DEL 1 2",
		"REN 1",
		"REN x y",
		"INS 1 l 2 3",
		"INS a l 2 3 4",
		"INS 1 l 2 x 4",
		`REN 1 "unterminated`,
	}
	for _, s := range bad {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q) succeeded", s)
		}
	}
}

// randomOp picks a random applicable operation for tr.
func randomOp(rng *rand.Rand, tr *tree.Tree, nextID *tree.NodeID) Op {
	nodes := tr.Nodes()
	for {
		switch rng.Intn(3) {
		case 0: // insert
			v := nodes[rng.Intn(len(nodes))]
			k := 1
			if v.Fanout() > 0 {
				k = rng.Intn(v.Fanout()) + 1
			}
			m := k - 1 + rng.Intn(v.Fanout()-k+2)
			*nextID++
			return Ins(*nextID, "n"+string(rune('a'+rng.Intn(6))), v.ID(), k, m)
		case 1: // delete
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			return Del(n.ID())
		default: // rename
			n := nodes[rng.Intn(len(nodes))]
			if n.IsRoot() {
				continue
			}
			l := "r" + string(rune('a'+rng.Intn(6)))
			if n.Label() == l {
				continue
			}
			return Ren(n.ID(), l)
		}
	}
}

func TestQuickScriptUndoRestores(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := sample()
		orig := tr.Clone()
		nextID := tr.MaxID() + 100
		var s Script
		for i := 0; i < int(nOps%24)+1; i++ {
			op := randomOp(rng, tr, &nextID)
			if _, err := op.Apply(tr); err != nil {
				return false
			}
			s = append(s, op)
		}
		// Re-derive log on a fresh copy and undo.
		tr2 := orig.Clone()
		log, err := s.Apply(tr2)
		if err != nil {
			return false
		}
		if !tree.Equal(tr, tr2) {
			return false
		}
		if err := log.Undo(tr2); err != nil {
			return false
		}
		return tree.Equal(tr2, orig) && tr2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLogClone(t *testing.T) {
	l := Log{Del(3), Ren(5, "x")}
	c := l.Clone()
	c[0] = Del(9)
	if !l[0].Equal(Del(3)) {
		t.Fatal("Clone aliases underlying array")
	}
}

func TestKindString(t *testing.T) {
	if Insert.String() != "INS" || Delete.String() != "DEL" || Rename.String() != "REN" {
		t.Fatal("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}
