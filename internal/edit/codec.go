package edit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pqgram/internal/tree"
)

// WriteLog writes ops in the line-oriented text format, one operation per
// line (see Op.String). The format is stable and round-trips through
// ReadLog.
func WriteLog(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := bw.WriteString(op.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log written by WriteLog. Blank lines and lines starting
// with '#' are ignored.
func ReadLog(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := ParseOp(line)
		if err != nil {
			return nil, fmt.Errorf("edit: line %d: %w", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// ParseOp parses a single operation in the text format of Op.String.
func ParseOp(line string) (Op, error) {
	fields, err := splitFields(line)
	if err != nil {
		return Op{}, err
	}
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("empty operation")
	}
	switch fields[0] {
	case "INS":
		if len(fields) < 6 {
			return Op{}, fmt.Errorf("INS wants at least 5 arguments, got %d", len(fields)-1)
		}
		n, err1 := parseID(fields[1])
		v, err2 := parseID(fields[3])
		k, err3 := strconv.Atoi(fields[4])
		m, err4 := strconv.Atoi(fields[5])
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return Op{}, fmt.Errorf("INS: %w", err)
		}
		op := Ins(n, fields[2], v, k, m)
		for _, f := range fields[6:] {
			switch {
			case strings.HasPrefix(f, "L="):
				op.NbrLeft, err = parseID(f[2:])
			case strings.HasPrefix(f, "R="):
				op.NbrRight, err = parseID(f[2:])
			default:
				var c tree.NodeID
				c, err = parseID(f)
				op.Adopted = append(op.Adopted, c)
			}
			if err != nil {
				return Op{}, fmt.Errorf("INS context field %q: %w", f, err)
			}
		}
		return op, nil
	case "DEL":
		if len(fields) != 2 {
			return Op{}, fmt.Errorf("DEL wants 1 argument, got %d", len(fields)-1)
		}
		n, err := parseID(fields[1])
		if err != nil {
			return Op{}, fmt.Errorf("DEL: %w", err)
		}
		return Del(n), nil
	case "REN":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("REN wants 2 arguments, got %d", len(fields)-1)
		}
		n, err := parseID(fields[1])
		if err != nil {
			return Op{}, fmt.Errorf("REN: %w", err)
		}
		return Ren(n, fields[2]), nil
	}
	return Op{}, fmt.Errorf("unknown operation %q", fields[0])
}

func parseID(s string) (tree.NodeID, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	return tree.NodeID(v), err
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// splitFields splits on spaces but honors double-quoted Go string literals,
// so labels containing spaces round-trip.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %s: %v", line[i:j+1], err)
			}
			out = append(out, s)
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}
