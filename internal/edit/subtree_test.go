package edit

import (
	"math/rand"
	"testing"

	"pqgram/internal/tree"
)

func TestSubtreeDelete(t *testing.T) {
	tr := tree.MustParse("a(b(c d(e)) f)")
	script, err := SubtreeDelete(tr, 2) // subtree b(c d(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(script) != 4 {
		t.Fatalf("script length %d, want 4", len(script))
	}
	if _, err := script.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(f)" {
		t.Fatalf("tree = %q", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeDeleteLeaf(t *testing.T) {
	tr := tree.MustParse("a(b c)")
	script, err := SubtreeDelete(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(script) != 1 {
		t.Fatalf("script length %d, want 1", len(script))
	}
	if _, err := script.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(b)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestSubtreeDeleteErrors(t *testing.T) {
	tr := tree.MustParse("a(b)")
	if _, err := SubtreeDelete(tr, 99); err == nil {
		t.Error("missing node accepted")
	}
	if _, err := SubtreeDelete(tr, 1); err == nil {
		t.Error("deleting the root subtree accepted")
	}
}

func TestSubtreeInsert(t *testing.T) {
	tr := tree.MustParse("a(x y)")
	sub := tree.MustParse("b(c d(e))")
	script, rootID, err := SubtreeInsert(sub, 1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rootID != 100 {
		t.Fatalf("root ID = %d", rootID)
	}
	if len(script) != sub.Size() {
		t.Fatalf("script length %d, want %d", len(script), sub.Size())
	}
	if err := CheckFreshIDs(tr, script); err != nil {
		t.Fatal(err)
	}
	if _, err := script.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(x b(c d(e)) y)" {
		t.Fatalf("tree = %q", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The inserted root carries the requested ID.
	if tr.Node(100) == nil || tr.Node(100).Label() != "b" {
		t.Fatal("inserted root not at requested ID")
	}
}

func TestSubtreeInsertBadFirstID(t *testing.T) {
	if _, _, err := SubtreeInsert(tree.MustParse("b"), 1, 1, 0); err == nil {
		t.Fatal("non-positive firstID accepted")
	}
}

func TestSubtreeMove(t *testing.T) {
	tr := tree.MustParse("a(b(c d) e(f))")
	// Move subtree b(c d) under e at position 2 (after f).
	script, newRoot, err := SubtreeMove(tr, 2, 5, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := script.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); got != "a(e(f b(c d)))" {
		t.Fatalf("tree = %q", got)
	}
	if tr.Node(newRoot) == nil || tr.Node(newRoot).Label() != "b" {
		t.Fatal("moved root not found under new ID")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeMoveIntoItselfRejected(t *testing.T) {
	tr := tree.MustParse("a(b(c d) e)")
	if _, _, err := SubtreeMove(tr, 2, 3, 1, 200); err == nil {
		t.Fatal("move into own subtree accepted")
	}
	if _, _, err := SubtreeMove(tr, 2, 2, 1, 200); err == nil {
		t.Fatal("move onto itself accepted")
	}
	if _, _, err := SubtreeMove(tr, 99, 1, 1, 200); err == nil {
		t.Fatal("missing subtree accepted")
	}
	if _, _, err := SubtreeMove(tr, 2, 99, 1, 200); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestSubtreeOpsUndo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		tr := randomSubtreeTestTree(rng, 4+rng.Intn(30))
		orig := tr.Clone()
		nodes := tr.Nodes()
		n := nodes[1+rng.Intn(len(nodes)-1)]
		script, err := SubtreeDelete(tr, n.ID())
		if err != nil {
			t.Fatal(err)
		}
		log, err := script.Apply(tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Undo(tr); err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(tr, orig) {
			t.Fatal("subtree delete log does not undo")
		}
	}
}

func randomSubtreeTestTree(rng *rand.Rand, n int) *tree.Tree {
	tr := tree.New("r")
	nodes := []*tree.Node{tr.Root()}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, tr.AddChildAt(p, string(rune('a'+rng.Intn(6))), rng.Intn(p.Fanout()+1)+1))
	}
	return tr
}
