package tree

import (
	"sort"

	"pqgram/internal/fingerprint"
)

// CanonicalClone returns a copy of the tree in which every node's children
// are sorted into a canonical order: by label, ties broken by a structural
// fingerprint of the whole subtree (and ties after that are genuinely
// identical subtrees, whose order cannot matter). Two trees that are equal
// as *unordered* trees have label-equal canonical clones, so ordinary
// (ordered) pq-gram machinery on canonical clones yields an
// order-insensitive similarity: permuting siblings costs nothing, while
// real structural change costs the same as before.
//
// Node IDs are freshly assigned in preorder of the canonical order; the
// clone is meant for distance computation and indexing, not for editing
// the original.
func (t *Tree) CanonicalClone() *Tree {
	type summary struct {
		node *Node
		hash fingerprint.Hash
	}
	// Compute structural fingerprints bottom-up over the canonical order.
	var canon func(n *Node) summary
	canon = func(n *Node) summary {
		kids := make([]summary, len(n.children))
		for i, c := range n.children {
			kids[i] = canon(c)
		}
		sort.SliceStable(kids, func(i, j int) bool {
			li, lj := kids[i].node.label, kids[j].node.label
			if li != lj {
				return li < lj
			}
			return kids[i].hash < kids[j].hash
		})
		hs := make([]fingerprint.Hash, 0, len(kids)+1)
		hs = append(hs, fingerprint.Of(n.label))
		for _, k := range kids {
			hs = append(hs, k.hash)
		}
		// Remember the canonical child order for the rebuild below.
		ordered := make([]*Node, len(kids))
		for i, k := range kids {
			ordered[i] = k.node
		}
		n2 := &Node{label: n.label, children: ordered}
		return summary{node: n2, hash: fingerprint.Combine(hs)}
	}
	shadow := canon(t.root)

	// Materialize the shadow structure as a fresh, valid tree.
	out := New(shadow.node.label)
	var build func(src *Node, dst *Node)
	build = func(src *Node, dst *Node) {
		for _, c := range src.children {
			build(c, out.AddChild(dst, c.label))
		}
	}
	build(shadow.node, out.root)
	return out
}
