package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Tree {
	t.Helper()
	tr := MustParse("a(c b(e f) c)")
	if err := tr.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	return tr
}

func TestNewSingleNode(t *testing.T) {
	tr := New("root")
	if tr.Size() != 1 {
		t.Fatalf("size = %d, want 1", tr.Size())
	}
	r := tr.Root()
	if r.ID() != 1 || r.Label() != "root" || !r.IsRoot() || !r.IsLeaf() {
		t.Fatalf("unexpected root %+v", r)
	}
	if r.SiblingPos() != 0 {
		t.Fatalf("root sibling pos = %d, want 0", r.SiblingPos())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b c d)",
		"a(c b(e f) c)",
		`a("b c"(d) ")")`,
		`x(y(z(w(v))))`,
	}
	for _, s := range cases {
		tr, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Parse(%q) invalid: %v", s, err)
		}
		got := tr.Format()
		tr2, err := Parse(got)
		if err != nil {
			t.Fatalf("reparse of %q: %v", got, err)
		}
		if !Equal(tr, tr2) {
			t.Fatalf("round trip of %q changed tree: %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"a(b",
		"a)b",
		"a(b))",
		`a("unterminated)`,
		"a(b) trailing",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestChildNavigation(t *testing.T) {
	tr := buildSample(t)
	r := tr.Root()
	if r.Fanout() != 3 {
		t.Fatalf("root fanout = %d, want 3", r.Fanout())
	}
	if got := r.Child(1).Label(); got != "c" {
		t.Errorf("child 1 = %q", got)
	}
	if got := r.Child(2).Label(); got != "b" {
		t.Errorf("child 2 = %q", got)
	}
	if got := r.Child(3).Label(); got != "c" {
		t.Errorf("child 3 = %q", got)
	}
	b := r.Child(2)
	if b.SiblingPos() != 2 {
		t.Errorf("b sibling pos = %d, want 2", b.SiblingPos())
	}
	if b.Child(1).Label() != "e" || b.Child(2).Label() != "f" {
		t.Errorf("b children wrong: %v %v", b.Child(1).Label(), b.Child(2).Label())
	}
	if b.Child(1).Parent() != b {
		t.Error("parent link broken")
	}
}

func TestChildPanicsOutOfRange(t *testing.T) {
	tr := buildSample(t)
	for _, i := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Child(%d) did not panic", i)
				}
			}()
			tr.Root().Child(i)
		}()
	}
}

func TestAncestorAndDepth(t *testing.T) {
	tr := buildSample(t)
	e := tr.Root().Child(2).Child(1)
	if e.Label() != "e" {
		t.Fatalf("wrong node: %s", e.Label())
	}
	if e.Depth() != 2 {
		t.Errorf("depth = %d, want 2", e.Depth())
	}
	if e.Ancestor(0) != e {
		t.Error("Ancestor(0) != self")
	}
	if e.Ancestor(1).Label() != "b" {
		t.Error("Ancestor(1) wrong")
	}
	if e.Ancestor(2) != tr.Root() {
		t.Error("Ancestor(2) != root")
	}
	if e.Ancestor(3) != nil {
		t.Error("Ancestor(3) should be nil")
	}
	if !tr.Root().IsAncestorOf(e) {
		t.Error("root should be ancestor of e")
	}
	if e.IsAncestorOf(tr.Root()) {
		t.Error("e should not be ancestor of root")
	}
	if e.IsAncestorOf(e) {
		t.Error("IsAncestorOf must be proper")
	}
}

func TestDist(t *testing.T) {
	tr := buildSample(t)
	r := tr.Root()
	e := r.Child(2).Child(1)
	if d := Dist(r, e); d != 2 {
		t.Errorf("Dist(root, e) = %d, want 2", d)
	}
	if d := Dist(e, e); d != 0 {
		t.Errorf("Dist(e, e) = %d, want 0", d)
	}
	if d := Dist(e, r); d != -1 {
		t.Errorf("Dist(e, root) = %d, want -1", d)
	}
	if d := Dist(r.Child(1), e); d != -1 {
		t.Errorf("Dist(sibling, e) = %d, want -1", d)
	}
}

func TestAddChildAtPositions(t *testing.T) {
	tr := New("r")
	r := tr.Root()
	b := tr.AddChildAt(r, "b", 1)
	tr.AddChildAt(r, "a", 1)
	tr.AddChildAt(r, "c", 3)
	d := tr.AddChildAt(b, "d", 1)
	want := "r(a b(d) c)"
	if got := tr.Format(); got != want {
		t.Fatalf("tree = %q, want %q", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.SiblingPos() != 1 || b.SiblingPos() != 2 {
		t.Errorf("sibling positions wrong: d=%d b=%d", d.SiblingPos(), b.SiblingPos())
	}
}

func TestAddChildWithIDConflict(t *testing.T) {
	tr := New("r")
	tr.AddChildWithID(tr.Root(), 10, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID did not panic")
		}
	}()
	tr.AddChildWithID(tr.Root(), 10, "y", 1)
}

func TestInsertAdoptsChildren(t *testing.T) {
	// Mirrors the paper's INS(n, v, k, m): children c_k..c_m move under n.
	tr := MustParse("r(a b c d)")
	r := tr.Root()
	n := tr.Insert(0, "n", r, 2, 3) // adopt b, c
	if got := tr.Format(); got != "r(a n(b c) d)" {
		t.Fatalf("tree = %q", got)
	}
	if n.SiblingPos() != 2 || n.Fanout() != 2 {
		t.Errorf("inserted node pos=%d fanout=%d", n.SiblingPos(), n.Fanout())
	}
	if r.Child(3).Label() != "d" || r.Child(3).SiblingPos() != 3 {
		t.Errorf("sibling shift wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLeaf(t *testing.T) {
	// m = k-1: the new node adopts no children (leaf insert).
	tr := MustParse("r(a b)")
	tr.Insert(0, "n", tr.Root(), 2, 1)
	if got := tr.Format(); got != "r(a n b)" {
		t.Fatalf("tree = %q", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertUnderLeaf(t *testing.T) {
	tr := MustParse("r(a)")
	a := tr.Root().Child(1)
	tr.Insert(0, "n", a, 1, 0)
	if got := tr.Format(); got != "r(a(n))" {
		t.Fatalf("tree = %q", got)
	}
}

func TestInsertAllChildren(t *testing.T) {
	tr := MustParse("r(a b c)")
	tr.Insert(0, "n", tr.Root(), 1, 3)
	if got := tr.Format(); got != "r(n(a b c))" {
		t.Fatalf("tree = %q", got)
	}
}

func TestDeleteSplicesChildren(t *testing.T) {
	tr := MustParse("r(a n(b c) d)")
	n := tr.Root().Child(2)
	id := n.ID()
	tr.Delete(n)
	if got := tr.Format(); got != "r(a b c d)" {
		t.Fatalf("tree = %q", got)
	}
	if tr.Contains(id) {
		t.Error("deleted node still in ID map")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if tr.Root().Child(i).SiblingPos() != i {
			t.Errorf("child %d has wrong sibling pos", i)
		}
	}
}

func TestDeleteLeaf(t *testing.T) {
	tr := MustParse("r(a b)")
	tr.Delete(tr.Root().Child(1))
	if got := tr.Format(); got != "r(b)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestDeleteRootPanics(t *testing.T) {
	tr := New("r")
	defer func() {
		if recover() == nil {
			t.Fatal("deleting root did not panic")
		}
	}()
	tr.Delete(tr.Root())
}

func TestInsertDeleteInverse(t *testing.T) {
	tr := MustParse("r(a b c d)")
	want := tr.Format()
	n := tr.Insert(0, "n", tr.Root(), 2, 3)
	tr.Delete(n)
	if got := tr.Format(); got != want {
		t.Fatalf("insert+delete not identity: %q != %q", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	tr := MustParse("r(a)")
	tr.Rename(tr.Root().Child(1), "z")
	if got := tr.Format(); got != "r(z)" {
		t.Fatalf("tree = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildSample(t)
	cl := tr.Clone()
	if !Equal(tr, cl) {
		t.Fatal("clone not equal")
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	cl.Rename(cl.Root().Child(1), "zzz")
	cl.AddChild(cl.Root(), "new")
	if Equal(tr, cl) {
		t.Fatal("mutating clone affected comparison")
	}
	if tr.Root().Child(1).Label() != "c" {
		t.Fatal("mutating clone affected original")
	}
	if tr.Size() == cl.Size() {
		t.Fatal("sizes should differ after AddChild on clone")
	}
}

func TestCloneFreshIDsContinue(t *testing.T) {
	tr := buildSample(t)
	cl := tr.Clone()
	n := cl.AddChild(cl.Root(), "x")
	if cl.Node(n.ID()) != n {
		t.Fatal("new node not registered")
	}
	if tr.Contains(n.ID()) {
		t.Fatal("fresh clone ID collides with original map")
	}
}

func TestEqualAndEqualLabels(t *testing.T) {
	a := MustParse("a(b c)")
	b := MustParse("a(b c)")
	if !Equal(a, b) || !EqualLabels(a, b) {
		t.Fatal("identical parses should be equal")
	}
	// Same labels, different IDs.
	c := New("a")
	c.AddChildWithID(c.Root(), 7, "b", 1)
	c.AddChildWithID(c.Root(), 8, "c", 2)
	if Equal(a, c) {
		t.Fatal("Equal must compare IDs")
	}
	if !EqualLabels(a, c) {
		t.Fatal("EqualLabels must ignore IDs")
	}
	d := MustParse("a(c b)")
	if EqualLabels(a, d) {
		t.Fatal("sibling order must matter")
	}
}

func TestTraversalOrders(t *testing.T) {
	tr := buildSample(t)
	var pre, post []string
	tr.PreOrder(func(n *Node) bool { pre = append(pre, n.Label()); return true })
	tr.PostOrder(func(n *Node) bool { post = append(post, n.Label()); return true })
	if got := strings.Join(pre, ""); got != "acbefc" {
		t.Errorf("preorder = %q, want acbefc", got)
	}
	if got := strings.Join(post, ""); got != "cefbca" {
		t.Errorf("postorder = %q, want cefbca", got)
	}
}

func TestTraversalEarlyStop(t *testing.T) {
	tr := buildSample(t)
	count := 0
	tr.PreOrder(func(n *Node) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestNodesAndLeaves(t *testing.T) {
	tr := buildSample(t)
	if got := len(tr.Nodes()); got != 6 {
		t.Errorf("Nodes() = %d, want 6", got)
	}
	leaves := tr.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("Leaves() = %d, want 4", len(leaves))
	}
	var ls []string
	for _, l := range leaves {
		ls = append(ls, l.Label())
	}
	if got := strings.Join(ls, ""); got != "cefc" {
		t.Errorf("leaf order = %q, want cefc", got)
	}
}

func TestHeight(t *testing.T) {
	if h := New("a").Height(); h != 0 {
		t.Errorf("single node height = %d", h)
	}
	if h := buildSample(t).Height(); h != 2 {
		t.Errorf("sample height = %d, want 2", h)
	}
	if h := MustParse("a(b(c(d(e))))").Height(); h != 4 {
		t.Errorf("chain height = %d, want 4", h)
	}
}

func TestDescendantsWithin(t *testing.T) {
	tr := buildSample(t)
	r := tr.Root()
	if got := len(DescendantsWithin(r, 0)); got != 1 {
		t.Errorf("desc_0 = %d nodes, want 1", got)
	}
	if got := len(DescendantsWithin(r, 1)); got != 4 {
		t.Errorf("desc_1 = %d nodes, want 4", got)
	}
	if got := len(DescendantsWithin(r, 2)); got != 6 {
		t.Errorf("desc_2 = %d nodes, want 6", got)
	}
	if got := len(DescendantsWithin(r, 99)); got != 6 {
		t.Errorf("desc_99 = %d nodes, want 6", got)
	}
	if got := DescendantsWithin(r, -1); got != nil {
		t.Errorf("desc_-1 = %v, want nil", got)
	}
	set := DescendantsWithinSet([]*Node{r.Child(1), r.Child(2)}, 1)
	if len(set) != 4 { // c; b, e, f
		t.Errorf("desc set = %d nodes, want 4", len(set))
	}
}

func TestIDs(t *testing.T) {
	tr := buildSample(t)
	ids := tr.IDs()
	if len(ids) != 6 {
		t.Fatalf("IDs len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not ascending")
		}
	}
}

// randomTree builds a random tree with n nodes for property tests.
func randomTree(rng *rand.Rand, n int) *Tree {
	tr := New("L0")
	nodes := []*Node{tr.Root()}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		pos := rng.Intn(parent.Fanout()+1) + 1
		c := tr.AddChildAt(parent, "L"+string(rune('a'+rng.Intn(8))), pos)
		nodes = append(nodes, c)
	}
	return tr
}

func TestRandomTreesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 1+rng.Intn(200))
		if err := tr.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if tr.Size() != len(tr.Nodes()) {
			t.Fatalf("iteration %d: size mismatch", i)
		}
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, int(sz%64)+1)
		cl := tr.Clone()
		return Equal(tr, cl) && cl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, int(sz%64)+2)
		before := tr.Format()
		nodes := tr.Nodes()
		v := nodes[rng.Intn(len(nodes))]
		k := 1
		m := 0
		if v.Fanout() > 0 {
			k = rng.Intn(v.Fanout()) + 1
			m = k - 1 + rng.Intn(v.Fanout()-k+2)
		}
		n := tr.Insert(0, "fresh", v, k, m)
		if tr.Validate() != nil {
			return false
		}
		tr.Delete(n)
		return tr.Validate() == nil && tr.Format() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := buildSample(t)
	// Corrupt a childIdx directly.
	tr.Root().children[0].childIdx = 5
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate missed corrupted childIdx")
	}
}

func TestStringRendering(t *testing.T) {
	tr := MustParse("a(b)")
	s := tr.String()
	if !strings.Contains(s, "1:a") || !strings.Contains(s, "2:b") {
		t.Errorf("String() = %q", s)
	}
}

func TestCanonicalCloneSortsSiblings(t *testing.T) {
	a := MustParse("r(c a b)")
	c := a.CanonicalClone()
	if got := c.Format(); got != "r(a b c)" {
		t.Fatalf("canonical = %q", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if a.Format() != "r(c a b)" {
		t.Fatal("original mutated")
	}
}

func TestCanonicalCloneUnorderedEquality(t *testing.T) {
	a := MustParse("r(x(p q) y(s t) x(q p))")
	b := MustParse("r(x(q p) x(p q) y(t s))")
	ca, cb := a.CanonicalClone(), b.CanonicalClone()
	if !EqualLabels(ca, cb) {
		t.Fatalf("unordered-equal trees canonicalize differently:\n%s\nvs\n%s", ca.Format(), cb.Format())
	}
}

func TestCanonicalCloneTieBreakByStructure(t *testing.T) {
	// Two children with the same label but different subtrees must sort
	// deterministically regardless of input order.
	a := MustParse("r(x(deep(er)) x(flat))")
	b := MustParse("r(x(flat) x(deep(er)))")
	if !EqualLabels(a.CanonicalClone(), b.CanonicalClone()) {
		t.Fatal("structural tie-break not deterministic")
	}
}

func TestCanonicalCloneDistinguishesRealDifference(t *testing.T) {
	a := MustParse("r(x(p) y)")
	b := MustParse("r(x y(p))")
	if EqualLabels(a.CanonicalClone(), b.CanonicalClone()) {
		t.Fatal("different unordered trees canonicalize equal")
	}
}

func TestQuickCanonicalPermutationInvariant(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, int(sz%50)+2)
		// Shuffle every node's children into a random order.
		b := a.Clone()
		b.PostOrder(func(n *Node) bool {
			kids := n.children
			rng.Shuffle(len(kids), func(i, j int) {
				kids[i], kids[j] = kids[j], kids[i]
			})
			for i, c := range kids {
				c.childIdx = i
			}
			return true
		})
		if b.Validate() != nil {
			return false
		}
		return EqualLabels(a.CanonicalClone(), b.CanonicalClone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
