// Package tree implements the ordered labeled trees of Augsten, Böhlen and
// Gamper (VLDB 2006), §3.1: a tree is a directed, acyclic, connected,
// non-empty graph whose nodes are (identifier, label) pairs. Identifiers are
// unique within a tree, siblings are ordered, and node equality across trees
// is defined as equality of both identifier and label.
//
// Trees are mutable: the edit operations of the paper (INS, DEL, REN) are
// provided as primitive structural mutations here and wrapped with
// applicability checking and inverses in package edit.
package tree

import (
	"fmt"
	"sort"
)

// NodeID identifies a node uniquely within a tree. IDs are never reused by a
// tree, even after the node is deleted.
type NodeID int64

// NilID is the zero NodeID; it never identifies a real node.
const NilID NodeID = 0

// Node is a single tree node: an (identifier, label) pair together with its
// position in the tree. Nodes are created through Tree methods and must not
// be shared between trees.
type Node struct {
	id       NodeID
	label    string
	parent   *Node
	children []*Node
	childIdx int // index in parent.children; -1 for the root
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Label returns the node label.
func (n *Node) Label() string { return n.label }

// Parent returns the parent node, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the ordered child slice. The returned slice is owned by
// the tree and must not be modified by the caller.
func (n *Node) Children() []*Node { return n.children }

// Fanout returns the number of children of n.
func (n *Node) Fanout() int { return len(n.children) }

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// IsRoot reports whether n has no parent.
func (n *Node) IsRoot() bool { return n.parent == nil }

// Child returns the i-th child of n (1-based, following the paper's
// convention "c_i is the i-th child of v"). It panics if i is out of range.
func (n *Node) Child(i int) *Node {
	if i < 1 || i > len(n.children) {
		panic(fmt.Sprintf("tree: child index %d out of range [1,%d] on node %d", i, len(n.children), n.id))
	}
	return n.children[i-1]
}

// SiblingPos returns k such that n is the k-th child of its parent (1-based).
// It returns 0 for the root.
func (n *Node) SiblingPos() int {
	if n.parent == nil {
		return 0
	}
	return n.childIdx + 1
}

// Ancestor returns the ancestor of n at distance k (k=1 is the parent), or
// nil if the path to the root is shorter than k. Ancestor(0) returns n.
func (n *Node) Ancestor(k int) *Node {
	a := n
	for i := 0; i < k; i++ {
		if a == nil {
			return nil
		}
		a = a.parent
	}
	return a
}

// Depth returns the distance from the root to n (0 for the root).
func (n *Node) Depth() int {
	d := 0
	for a := n.parent; a != nil; a = a.parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of d.
func (n *Node) IsAncestorOf(d *Node) bool {
	for a := d.parent; a != nil; a = a.parent {
		if a == n {
			return true
		}
	}
	return false
}

// Tree is an ordered labeled tree with unique node identifiers.
type Tree struct {
	root   *Node
	nodes  map[NodeID]*Node
	nextID NodeID
}

// New creates a tree consisting of a single root node with the given label.
// The root receives ID 1.
func New(rootLabel string) *Tree {
	t := &Tree{nodes: make(map[NodeID]*Node), nextID: 1}
	t.root = t.newNode(rootLabel)
	t.root.childIdx = -1
	return t
}

// NewWithRootID creates a tree whose root has the given explicit ID. It is
// intended for constructing fixtures that must match published examples.
func NewWithRootID(id NodeID, rootLabel string) *Tree {
	if id <= 0 {
		panic("tree: root ID must be positive")
	}
	t := &Tree{nodes: make(map[NodeID]*Node), nextID: id}
	t.root = t.newNode(rootLabel)
	t.root.childIdx = -1
	return t
}

func (t *Tree) newNode(label string) *Node {
	n := &Node{id: t.nextID, label: label, childIdx: -1}
	t.nextID++
	t.nodes[n.id] = n
	return n
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return len(t.nodes) }

// Node returns the node with the given ID, or nil if no such node exists.
func (t *Tree) Node(id NodeID) *Node { return t.nodes[id] }

// Contains reports whether a node with the given ID exists in the tree.
func (t *Tree) Contains(id NodeID) bool { _, ok := t.nodes[id]; return ok }

// MaxID returns the largest node ID ever allocated in this tree.
func (t *Tree) MaxID() NodeID { return t.nextID - 1 }

// IDs returns all node IDs in ascending order.
func (t *Tree) IDs() []NodeID {
	ids := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AddChild appends a new leaf node with the given label as the last child of
// parent and returns it.
func (t *Tree) AddChild(parent *Node, label string) *Node {
	return t.AddChildAt(parent, label, parent.Fanout()+1)
}

// AddChildAt inserts a new leaf node with the given label as the k-th child
// of parent (1-based) and returns it. Existing children at positions >= k
// shift right.
func (t *Tree) AddChildAt(parent *Node, label string, k int) *Node {
	t.mustOwn(parent)
	if k < 1 || k > parent.Fanout()+1 {
		panic(fmt.Sprintf("tree: insert position %d out of range [1,%d]", k, parent.Fanout()+1))
	}
	n := t.newNode(label)
	t.attach(n, parent, k)
	return n
}

// AddChildWithID is AddChildAt with an explicit node ID, for fixtures. It
// panics if the ID is already used.
func (t *Tree) AddChildWithID(parent *Node, id NodeID, label string, k int) *Node {
	t.mustOwn(parent)
	if id <= 0 {
		panic("tree: node ID must be positive")
	}
	if _, ok := t.nodes[id]; ok {
		panic(fmt.Sprintf("tree: duplicate node ID %d", id))
	}
	if k < 1 || k > parent.Fanout()+1 {
		panic(fmt.Sprintf("tree: insert position %d out of range [1,%d]", k, parent.Fanout()+1))
	}
	n := &Node{id: id, label: label, childIdx: -1}
	if id >= t.nextID {
		t.nextID = id + 1
	}
	t.nodes[id] = n
	t.attach(n, parent, k)
	return n
}

// attach links n (which must be detached) as the k-th child of parent.
func (t *Tree) attach(n *Node, parent *Node, k int) {
	parent.children = append(parent.children, nil)
	copy(parent.children[k:], parent.children[k-1:])
	parent.children[k-1] = n
	n.parent = parent
	for i := k - 1; i < len(parent.children); i++ {
		parent.children[i].childIdx = i
	}
}

// Insert performs the paper's INS(n, v, k, m): a fresh node with the given
// label (and explicit ID, if id > 0) becomes the k-th child of v, and v's
// previous children c_k..c_m become the children of the new node, preserving
// order. m = k-1 denotes a leaf insert (the new node adopts no children).
// It returns the inserted node. The caller must have validated k, m.
func (t *Tree) Insert(id NodeID, label string, v *Node, k, m int) *Node {
	t.mustOwn(v)
	if k < 1 || m > v.Fanout() || m < k-1 {
		panic(fmt.Sprintf("tree: INS positions k=%d m=%d invalid for fanout %d", k, m, v.Fanout()))
	}
	var n *Node
	if id > 0 {
		if _, ok := t.nodes[id]; ok {
			panic(fmt.Sprintf("tree: duplicate node ID %d", id))
		}
		n = &Node{id: id, label: label, childIdx: -1}
		if id >= t.nextID {
			t.nextID = id + 1
		}
		t.nodes[id] = n
	} else {
		n = t.newNode(label)
	}
	// Adopt c_k..c_m.
	adopted := make([]*Node, m-k+1)
	copy(adopted, v.children[k-1:m])
	n.children = adopted
	for i, c := range adopted {
		c.parent = n
		c.childIdx = i
	}
	// Replace the adopted range with n in v's child list.
	rest := append([]*Node{n}, v.children[m:]...)
	v.children = append(v.children[:k-1], rest...)
	n.parent = v
	for i := k - 1; i < len(v.children); i++ {
		v.children[i].childIdx = i
	}
	return n
}

// Delete performs the paper's DEL(n): n is removed and its children are
// spliced into n's former position among its parent's children, preserving
// order. The root cannot be deleted.
func (t *Tree) Delete(n *Node) {
	t.mustOwn(n)
	if n.parent == nil {
		panic("tree: cannot delete the root node")
	}
	v := n.parent
	k := n.childIdx // 0-based position of n in v.children
	grand := make([]*Node, 0, len(v.children)-1+len(n.children))
	grand = append(grand, v.children[:k]...)
	grand = append(grand, n.children...)
	grand = append(grand, v.children[k+1:]...)
	v.children = grand
	for i := k; i < len(v.children); i++ {
		v.children[i].parent = v
		v.children[i].childIdx = i
	}
	n.parent = nil
	n.children = nil
	n.childIdx = -1
	delete(t.nodes, n.id)
}

// Rename performs the paper's REN(n, l'): the label of n is replaced.
func (t *Tree) Rename(n *Node, label string) {
	t.mustOwn(n)
	n.label = label
}

func (t *Tree) mustOwn(n *Node) {
	if n == nil {
		panic("tree: nil node")
	}
	if t.nodes[n.id] != n {
		panic(fmt.Sprintf("tree: node %d does not belong to this tree", n.id))
	}
}

// SetIDs renumbers every node of the tree: ids[i] becomes the identifier
// of the i-th node in preorder. It is used to restore persistent node
// identities after parsing a serialization (like XML) that does not carry
// them — the incremental index maintenance needs log and tree to agree on
// node identity. The ids must be positive, unique, and exactly Size() many.
func (t *Tree) SetIDs(ids []NodeID) error {
	if len(ids) != t.Size() {
		return fmt.Errorf("tree: %d ids for %d nodes", len(ids), t.Size())
	}
	seen := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		if id <= 0 {
			return fmt.Errorf("tree: non-positive node ID %d", id)
		}
		if seen[id] {
			return fmt.Errorf("tree: duplicate node ID %d", id)
		}
		seen[id] = true
	}
	nodes := make(map[NodeID]*Node, len(ids))
	i := 0
	maxID := NodeID(0)
	t.PreOrder(func(n *Node) bool {
		n.id = ids[i]
		nodes[n.id] = n
		if n.id > maxID {
			maxID = n.id
		}
		i++
		return true
	})
	t.nodes = nodes
	if maxID >= t.nextID {
		t.nextID = maxID + 1
	}
	return nil
}

// PreorderIDs returns the node identifiers in preorder — the inverse of
// SetIDs, suitable for persisting identities alongside a serialization.
func (t *Tree) PreorderIDs() []NodeID {
	out := make([]NodeID, 0, t.Size())
	t.PreOrder(func(n *Node) bool { out = append(out, n.id); return true })
	return out
}

// Clone returns a deep copy of the tree. Node IDs are preserved.
func (t *Tree) Clone() *Tree {
	c := &Tree{nodes: make(map[NodeID]*Node, len(t.nodes)), nextID: t.nextID}
	c.root = cloneNode(t.root, nil, c.nodes)
	return c
}

func cloneNode(n *Node, parent *Node, into map[NodeID]*Node) *Node {
	m := &Node{id: n.id, label: n.label, parent: parent, childIdx: n.childIdx}
	into[m.id] = m
	if len(n.children) > 0 {
		m.children = make([]*Node, len(n.children))
		for i, c := range n.children {
			m.children[i] = cloneNode(c, m, into)
		}
	}
	return m
}

// Equal reports whether two trees are identical in structure, node IDs and
// labels (the paper's node equality, extended to whole trees).
func Equal(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	return nodeEqual(a.root, b.root)
}

func nodeEqual(x, y *Node) bool {
	if x.id != y.id || x.label != y.label || len(x.children) != len(y.children) {
		return false
	}
	for i := range x.children {
		if !nodeEqual(x.children[i], y.children[i]) {
			return false
		}
	}
	return true
}

// EqualLabels reports whether two trees have identical shape and labels,
// ignoring node IDs. This is what the pq-gram index can distinguish.
func EqualLabels(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if x.label != y.label || len(x.children) != len(y.children) {
			return false
		}
		for i := range x.children {
			if !eq(x.children[i], y.children[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.root, b.root)
}
