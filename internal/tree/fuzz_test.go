package tree

import "testing"

// FuzzParse checks that Parse never panics, that accepted inputs produce
// valid trees, and that Format round-trips exactly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"a", "a(b c)", "a(c b(e f) c)", `a("b c"(d) ")")`, "a(", "a))",
		"((((", `a("" "")`, "a(b(c(d(e(f)))))", "\"\\\"\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Parse(s)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted tree invalid: %v (input %q)", err, s)
		}
		out := tr.Format()
		tr2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output %q does not reparse: %v", out, err)
		}
		if !Equal(tr, tr2) {
			t.Fatalf("round trip changed tree: %q -> %q", s, out)
		}
	})
}
