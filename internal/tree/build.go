package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a tree from a compact parenthesized notation:
//
//	a(c b(e f) c)
//
// denotes a root labeled "a" with children "c", "b" (which has children "e"
// and "f") and "c". Labels are runs of non-space, non-parenthesis characters,
// or double-quoted Go string literals for labels containing such characters.
// Node IDs are assigned in preorder starting at 1.
func Parse(s string) (*Tree, error) {
	p := &parser{in: s}
	p.skipSpace()
	label, err := p.label()
	if err != nil {
		return nil, err
	}
	t := New(label)
	if err := p.children(t, t.root); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("tree: trailing input at byte %d: %q", p.pos, p.in[p.pos:])
	}
	return t, nil
}

// MustParse is Parse that panics on error, for fixtures.
func MustParse(s string) *Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) label() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return "", fmt.Errorf("tree: expected label at byte %d", p.pos)
	}
	if p.in[p.pos] == '"' {
		rest := p.in[p.pos:]
		// Find the closing quote of a Go string literal.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return "", fmt.Errorf("tree: unterminated quoted label at byte %d", p.pos)
		}
		lit := rest[:end+1]
		s, err := strconv.Unquote(lit)
		if err != nil {
			return "", fmt.Errorf("tree: bad quoted label %s: %v", lit, err)
		}
		p.pos += len(lit)
		return s, nil
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '(' || c == ')' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("tree: expected label at byte %d, found %q", p.pos, p.in[p.pos])
	}
	return p.in[start:p.pos], nil
}

func (p *parser) children(t *Tree, n *Node) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return nil // leaf
	}
	p.pos++ // consume '('
	for {
		p.skipSpace()
		if p.pos >= len(p.in) {
			return fmt.Errorf("tree: unterminated child list for node %d", n.id)
		}
		if p.in[p.pos] == ')' {
			p.pos++
			return nil
		}
		label, err := p.label()
		if err != nil {
			return err
		}
		c := t.AddChild(n, label)
		if err := p.children(t, c); err != nil {
			return err
		}
	}
}

// Format renders the tree in the notation accepted by Parse. Labels that
// contain spaces, parentheses or quotes are emitted as quoted literals.
func (t *Tree) Format() string {
	var b strings.Builder
	formatNode(&b, t.root)
	return b.String()
}

func formatNode(b *strings.Builder, n *Node) {
	b.WriteString(quoteLabel(n.label))
	if len(n.children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.children {
		if i > 0 {
			b.WriteByte(' ')
		}
		formatNode(b, c)
	}
	b.WriteByte(')')
}

func quoteLabel(s string) string {
	if s == "" || strings.ContainsAny(s, "() \t\n\r\"") {
		return strconv.Quote(s)
	}
	return s
}

// String renders the tree as an indented outline with node IDs, for
// debugging and error messages.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%d:%s\n", n.id, quoteLabel(n.label))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// Validate checks the structural invariants of the tree: the ID map matches
// the nodes reachable from the root, parent/childIdx links are consistent,
// IDs are positive and below nextID, and the graph is acyclic. It returns a
// descriptive error for the first violation found.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("tree: nil root")
	}
	if t.root.parent != nil {
		return fmt.Errorf("tree: root %d has a parent", t.root.id)
	}
	seen := make(map[NodeID]bool, len(t.nodes))
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.id <= 0 {
			return fmt.Errorf("tree: node with non-positive ID %d", n.id)
		}
		if n.id >= t.nextID {
			return fmt.Errorf("tree: node ID %d >= nextID %d", n.id, t.nextID)
		}
		if seen[n.id] {
			return fmt.Errorf("tree: duplicate or cyclic node ID %d", n.id)
		}
		seen[n.id] = true
		if t.nodes[n.id] != n {
			return fmt.Errorf("tree: node %d not registered in ID map", n.id)
		}
		for i, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("tree: node %d has wrong parent link (child of %d)", c.id, n.id)
			}
			if c.childIdx != i {
				return fmt.Errorf("tree: node %d has childIdx %d, want %d", c.id, c.childIdx, i)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if len(seen) != len(t.nodes) {
		return fmt.Errorf("tree: ID map has %d entries but %d nodes reachable", len(t.nodes), len(seen))
	}
	return nil
}
