package tree

// PreOrder visits every node of the tree in document order (node before its
// children) and calls f for each. If f returns false, the walk stops.
func (t *Tree) PreOrder(f func(*Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if !f(n) {
			return false
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// PostOrder visits every node with children before their parent and calls f
// for each. If f returns false, the walk stops.
func (t *Tree) PostOrder(f func(*Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return f(n)
	}
	walk(t.root)
}

// Nodes returns all nodes in preorder.
func (t *Tree) Nodes() []*Node {
	out := make([]*Node, 0, len(t.nodes))
	t.PreOrder(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// Leaves returns all leaf nodes in document order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.PreOrder(func(n *Node) bool {
		if n.IsLeaf() {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Height returns the length of the longest root-to-leaf path (0 for a
// single-node tree).
func (t *Tree) Height() int {
	var h func(n *Node) int
	h = func(n *Node) int {
		best := 0
		for _, c := range n.children {
			if d := h(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return h(t.root)
}

// DescendantsWithin returns n and all descendants of n at distance at most d,
// in preorder. This is the paper's desc_d(n) (§7.2). d < 0 yields nil.
func DescendantsWithin(n *Node, d int) []*Node {
	if d < 0 {
		return nil
	}
	var out []*Node
	var walk func(x *Node, left int)
	walk = func(x *Node, left int) {
		out = append(out, x)
		if left == 0 {
			return
		}
		for _, c := range x.children {
			walk(c, left-1)
		}
	}
	walk(n, d)
	return out
}

// DescendantsWithinSet returns desc_d(n_1, ..., n_j): the union of
// DescendantsWithin over the given nodes, in order.
func DescendantsWithinSet(nodes []*Node, d int) []*Node {
	var out []*Node
	for _, n := range nodes {
		out = append(out, DescendantsWithin(n, d)...)
	}
	return out
}

// Dist returns the ancestor distance dist(a, n): the length of the path from
// a down to n, with Dist(n, n) = 0. It returns -1 if a is not n or an
// ancestor of n.
func Dist(a, n *Node) int {
	d := 0
	for x := n; x != nil; x = x.parent {
		if x == a {
			return d
		}
		d++
	}
	return -1
}
