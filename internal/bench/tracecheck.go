package bench

import (
	"fmt"

	"pqgram/internal/obs"
)

// tracedCounters runs one fully-traced pass of an experiment's query
// batch and cross-checks the tracing layer against the metrics registry:
// a tracer sampling every operation is attached, runBatch executes the
// batch (publishing one trace per operation), and for every attr→counter
// pair the attribute sums over the published span trees must equal the
// registry counter deltas of the same pass. A disagreement means the
// span attribution drifted from the counters it mirrors — exactly the
// bug class this guard exists for — and fails the experiment.
//
// The returned map is keyed by registry counter name, so it drops into
// the BENCH json next to the sampled averages as exact traced totals.
func tracedCounters(col *obs.Collector, ops int, runBatch func(), attrToCounter map[string]string) (map[string]int64, error) {
	// Capacity 2*ops keeps every sequence number of the pass on a unique
	// ring slot, so no trace of the batch is evicted before it is read.
	tr := obs.NewTracer(1, 2*ops+traceStripesSlack)
	col.SetTracer(tr)
	defer col.SetTracer(nil)
	before := col.Snapshot()
	runBatch()
	deltas := col.Snapshot().CounterDeltas(before)
	traces := tr.RecentTraces(ops)
	if len(traces) != ops {
		return nil, fmt.Errorf("bench: traced pass published %d traces, want %d", len(traces), ops)
	}
	out := make(map[string]int64, len(attrToCounter))
	for attr, counter := range attrToCounter {
		var sum int64
		for _, t := range traces {
			sum += t.Root.SumAttr(attr)
		}
		if sum != deltas[counter] {
			return nil, fmt.Errorf("bench: traced attr %q sums to %d but registry counter %s moved by %d — span attribution disagrees with the metrics registry",
				attr, sum, counter, deltas[counter])
		}
		out[counter] = sum
	}
	return out, nil
}

// traceStripesSlack rounds the tracer capacity up past the ring's stripe
// granularity so a batch smaller than one stripe row still fits.
const traceStripesSlack = 8
